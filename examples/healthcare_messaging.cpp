// Role-based secure messaging for health care — the application of the
// paper's related work [3] (Casassa Mont et al.), rebuilt on this
// library's public API to show the system is not utility-specific:
// clinical devices deposit observations encrypted to *roles*
// (CARDIOLOGY, PHARMACY, BILLING); staff systems retrieve what their
// role grants.
//
//   ./healthcare_messaging

#include <cstdio>

#include "src/client/receiving_client.h"
#include "src/client/smart_device.h"
#include "src/crypto/drbg.h"
#include "src/math/params.h"
#include "src/mws/mws_service.h"
#include "src/pkg/pkg_service.h"
#include "src/store/kvstore.h"
#include "src/wire/auth.h"

int main() {
  using namespace mws;

  // Assemble a fresh deployment by hand (no scenario helper) — this is
  // the "integrator's view" of the public API.
  util::SystemClock clock;
  crypto::HmacDrbg rng = crypto::HmacDrbg::FromOsEntropy();
  auto storage = store::KvStore::Open({.path = ""});
  if (!storage.ok()) return 1;

  util::Bytes service_key = rng.Generate(32);
  ::mws::mws::MwsService warehouse(storage->get(), service_key, &clock, &rng);
  ::mws::pkg::PkgService pkg(math::GetParams(math::ParamPreset::kSmall),
                      service_key, &clock, &rng);

  wire::InProcessTransport transport(wire::NetworkModel::Lan());
  warehouse.RegisterEndpoints(&transport);
  pkg.RegisterEndpoints(&transport);

  // A bedside monitor (the depositing client).
  util::Bytes monitor_key = rng.Generate(32);
  if (!warehouse.RegisterDevice("MONITOR-ICU-7", monitor_key).ok()) return 1;
  client::SmartDevice monitor("MONITOR-ICU-7", monitor_key,
                              pkg.PublicParams(), crypto::CipherKind::kDes,
                              &transport, &clock, &rng);

  // Staff systems (receiving clients) and their role grants.
  struct Staff {
    const char* identity;
    const char* password;
    std::vector<const char*> roles;
  };
  const Staff staff[] = {
      {"DR-WARD-SYSTEM", "pw-ward", {"CARDIOLOGY", "PHARMACY"}},
      {"PHARMACY-SYSTEM", "pw-pharm", {"PHARMACY"}},
      {"BILLING-SYSTEM", "pw-bill", {"BILLING"}},
  };
  std::vector<std::unique_ptr<client::ReceivingClient>> clients;
  for (const Staff& member : staff) {
    auto keys = crypto::RsaGenerateKeyPair(768, rng);
    if (!keys.ok()) return 1;
    if (!warehouse
             .RegisterReceivingClient(
                 member.identity, wire::HashPassword(member.password),
                 crypto::SerializeRsaPublicKey(keys->public_key))
             .ok()) {
      return 1;
    }
    for (const char* role : member.roles) {
      if (!warehouse.GrantAttribute(member.identity, role).ok()) return 1;
    }
    clients.push_back(std::make_unique<client::ReceivingClient>(
        member.identity, member.password, std::move(keys).value(),
        pkg.PublicParams(), crypto::CipherKind::kDes,
        crypto::CipherKind::kDes, &transport, &clock, &rng));
  }

  // The monitor deposits observations with per-segment roles — the
  // paper's §VIII "divide a message into segments, where each segment
  // has a different attribute assigned".
  struct Segment {
    const char* role;
    const char* text;
  };
  const Segment segments[] = {
      {"CARDIOLOGY", "patient=4711 hr=112bpm arrhythmia=afib"},
      {"PHARMACY", "patient=4711 administer=metoprolol dose=25mg"},
      {"BILLING", "patient=4711 procedure=ECG units=1"},
  };
  std::printf("== clinical messaging over the MWS ==\n\n");
  for (const Segment& segment : segments) {
    auto id = monitor.DepositMessage(segment.role,
                                     util::BytesFromString(segment.text));
    if (!id.ok()) {
      std::fprintf(stderr, "deposit failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    std::printf("monitor deposited to role %-11s (msg #%llu)\n", segment.role,
                static_cast<unsigned long long>(id.value()));
  }
  std::printf("\n");

  for (auto& rc : clients) {
    auto messages = rc->FetchAndDecrypt();
    if (!messages.ok()) {
      std::fprintf(stderr, "%s fetch failed: %s\n", rc->identity().c_str(),
                   messages.status().ToString().c_str());
      return 1;
    }
    std::printf("%s sees %zu segment(s):\n", rc->identity().c_str(),
                messages->size());
    for (const auto& m : messages.value()) {
      std::printf("  %s\n", util::StringFromBytes(m.plaintext).c_str());
    }
    std::printf("\n");
  }
  std::printf("the ward system reads cardiology+pharmacy, the pharmacy only\n"
              "its orders, billing only billable events — and the warehouse\n"
              "operator none of it.\n");
  return 0;
}
