// Billing-period retrieval: the utility use case that motivates the
// paper. A month of encrypted readings accumulates at the warehouse;
// C-Services retrieves only its billing window [day 10, day 20),
// decrypts, and totals the consumption — the MWS filters by time without
// ever seeing a single reading.
//
//   ./billing_period

#include <cstdio>

#include "src/sim/scenario.h"

int main() {
  using namespace mws;
  auto scenario = sim::UtilityScenario::Create({});
  if (!scenario.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  auto& s = *scenario.value();

  // A month of daily readings from every meter (simulated clock steps
  // one day per reading inside DepositReadings' 1s steps — use manual
  // deposits with day-sized steps instead).
  const int64_t kDay = 86'400'000'000ll;
  const int64_t month_start = s.clock().NowMicros();
  auto& device = s.devices()[0];  // the electric meter
  for (int day = 0; day < 30; ++day) {
    s.clock().SetMicros(month_start + day * kDay);
    sim::MeterReading reading = s.workload().Next(
        device.device_id(), sim::MeterClass::kElectric, s.clock().NowMicros());
    auto id = device.DepositMessage(sim::UtilityScenario::kElectricAttr,
                                    reading.ToPayload());
    if (!id.ok()) {
      std::fprintf(stderr, "deposit failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("deposited 30 daily electric readings (all ciphertext at "
              "the MWS)\n\n");

  // C-Services pulls only the billing window [day 10, day 20).
  auto window = s.company(sim::UtilityScenario::kCServices)
                    .FetchAndDecrypt(/*after_id=*/0,
                                     month_start + 10 * kDay,
                                     month_start + 20 * kDay);
  if (!window.ok()) {
    std::fprintf(stderr, "retrieval failed: %s\n",
                 window.status().ToString().c_str());
    return 1;
  }
  std::printf("billing window [day 10, day 20): %zu readings\n",
              window->size());
  double total = 0;
  for (const auto& m : window.value()) {
    auto reading = sim::MeterReading::FromPayload(m.plaintext);
    if (!reading.ok()) continue;
    int64_t day = (reading->timestamp_micros - month_start) / kDay;
    std::printf("  day %2lld: %.3f kWh\n", static_cast<long long>(day),
                reading->consumption);
    total += reading->consumption;
  }
  std::printf("\nbill for the period: %.3f kWh\n", total);
  std::printf("(the warehouse performed the time filtering on its "
              "timestamp index,\n without the ability to read any "
              "reading it filtered)\n");
  return 0;
}
