// Walkthrough of the paper's revocation requirement (§III iii): when
// C-Services drops the apartment complex, revoking its grant means
// messages deposited *after* the policy change are no longer accessible,
// without touching a single smart device — the per-message nonce gives
// every message a fresh key pair, and the PKG only extracts keys for
// AIDs present in a current ticket.
//
//   ./revocation_demo

#include <cstdio>

#include "src/sim/scenario.h"

int main() {
  using namespace mws;
  auto scenario = sim::UtilityScenario::Create({});
  if (!scenario.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  auto& s = *scenario.value();
  const char* company = sim::UtilityScenario::kCServices;

  auto count = [&](const char* label) {
    auto messages = s.RetrieveFor(company);
    std::printf("%-46s -> C-Services reads %zu message(s)\n", label,
                messages.ok() ? messages->size() : 0);
  };

  std::printf("== revocation walkthrough ==\n\n");
  s.DepositReadings(1).value();
  count("3 readings deposited (electric/water/gas)");

  std::printf("\n* C-Services discontinues service; MWS operator revokes "
              "all three grants *\n\n");
  for (const char* attr : {sim::UtilityScenario::kElectricAttr,
                           sim::UtilityScenario::kWaterAttr,
                           sim::UtilityScenario::kGasAttr}) {
    if (!s.mws().RevokeAttribute(company, attr).ok()) return 1;
  }
  count("after revocation, same warehouse content");

  s.DepositReadings(1).value();
  count("3 more readings deposited post-revocation");

  std::printf("\n* complex switches back: operator re-grants electric *\n\n");
  s.mws().GrantAttribute(company, sim::UtilityScenario::kElectricAttr)
      .value();
  count("after re-grant");

  std::printf("\nNote the smart devices never changed: attributes and the "
              "per-message\nnonce mean policy flips are entirely a "
              "warehouse-side operation.\n");
  return 0;
}
