// The paper's Fig. 1 utility scenario, end to end: electric, water and
// gas meters deposit encrypted readings at the Message Warehousing
// Service; three utility companies retrieve exactly the classes their
// policies grant, decrypting via PKG-extracted per-message keys.
//
//   ./smart_metering [devices_per_class] [readings_per_device]

#include <cstdio>
#include <cstdlib>

#include "src/sim/scenario.h"

int main(int argc, char** argv) {
  using namespace mws;
  size_t devices = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2;
  size_t readings = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;

  sim::UtilityScenario::Options options;
  options.devices_per_class = devices;
  options.network = wire::NetworkModel::Wan();
  auto scenario = sim::UtilityScenario::Create(options);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario setup failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  auto& s = *scenario.value();

  std::printf("== Fig. 1 utility scenario ==\n");
  std::printf("%zu devices/class x 3 classes, 3 companies\n\n", devices);

  // Phase 1: deposits.
  auto deposited = s.DepositReadings(readings);
  if (!deposited.ok()) {
    std::fprintf(stderr, "deposit failed: %s\n",
                 deposited.status().ToString().c_str());
    return 1;
  }
  std::printf("deposited %zu encrypted readings at the MWS\n",
              deposited.value());
  std::printf("MWS message db now holds %zu records "
              "(ciphertext + attribute + nonce; no keys)\n\n",
              s.mws().message_db().Count());

  // The policy table (paper Table 1 for this world).
  std::printf("Identity-Attribute mapping (Table 1 shape):\n");
  std::printf("  %-22s %-26s %s\n", "Identity", "Attribute", "AID");
  const auto policy_rows = s.mws().PolicyTable().value();
  for (const auto& row : policy_rows) {
    std::printf("  %-22s %-26s %llu\n", row.identity.c_str(),
                row.attribute.c_str(),
                static_cast<unsigned long long>(row.aid));
  }
  std::printf("\n");

  // Phase 2+3: each company retrieves and decrypts.
  for (const std::string& company : s.company_names()) {
    auto messages = s.RetrieveFor(company);
    if (!messages.ok()) {
      std::fprintf(stderr, "%s retrieval failed: %s\n", company.c_str(),
                   messages.status().ToString().c_str());
      return 1;
    }
    std::printf("%s retrieved %zu readings:\n", company.c_str(),
                messages->size());
    size_t shown = 0;
    for (const auto& m : messages.value()) {
      if (shown++ == 4) {
        std::printf("  ... (%zu more)\n", messages->size() - 4);
        break;
      }
      std::printf("  [msg %llu, aid %llu] %s\n",
                  static_cast<unsigned long long>(m.message_id),
                  static_cast<unsigned long long>(m.aid),
                  util::StringFromBytes(m.plaintext).c_str());
    }
    std::printf("\n");
  }

  const wire::TransportStats& stats = s.transport().stats();
  std::printf("transport: %llu calls, %llu B up, %llu B down, "
              "%.1f ms simulated WAN time\n",
              static_cast<unsigned long long>(stats.calls),
              static_cast<unsigned long long>(stats.request_bytes),
              static_cast<unsigned long long>(stats.response_bytes),
              stats.simulated_network_micros / 1000.0);
  return 0;
}
