// Quickstart: the core IBE library in ~60 lines.
//
// A sender encrypts a message to an *attribute* (not an identity); the
// PKG extracts the matching private key; the receiver decrypts. This is
// the cryptographic heart of the paper, without the warehouse around it.
//
//   ./quickstart

#include <cstdio>

#include "src/crypto/drbg.h"
#include "src/ibe/attribute.h"
#include "src/ibe/hybrid.h"
#include "src/math/params.h"
#include "src/util/hex.h"

int main() {
  using namespace mws;

  // 1. Pick a pairing parameter preset (the 160/512-bit "test" preset is
  //    the same shape as the PBC a.param the paper's prototype used).
  const math::TypeAParams& group = math::GetParams(math::ParamPreset::kTest);
  crypto::HmacDrbg rng(util::BytesFromString("quickstart-demo-seed"));

  // 2. PKG side: run Setup. `params` is public; `master` never leaves
  //    the PKG.
  ibe::BfIbe ibe(group);
  auto [params, master] = ibe.Setup(rng);
  std::printf("IBE setup on %s (q: %zu bits, p: %zu bits)\n",
              math::ParamPresetName(math::ParamPreset::kTest),
              group.q().BitLength(), group.p().BitLength());

  // 3. Sender side: encrypt a meter reading to whoever holds the
  //    ELECTRIC-BAYTOWER-SV-CA attribute. A fresh nonce makes this a
  //    one-off key pair (the paper's revocation mechanism).
  ibe::Attribute attribute = "ELECTRIC-BAYTOWER-SV-CA";
  ibe::MessageNonce nonce = ibe::GenerateNonce(rng);
  util::Bytes message =
      util::BytesFromString("meter=E-2201 kWh=13.37 ts=2010-03-01T09:00Z");

  ibe::HybridSealer sealer(group, crypto::CipherKind::kDes);
  auto sealed = sealer.Seal(params, attribute, nonce, message, rng);
  if (!sealed.ok()) {
    std::fprintf(stderr, "seal failed: %s\n",
                 sealed.status().ToString().c_str());
    return 1;
  }
  std::printf("sealed %zu-byte message -> U (%zu bytes) + DEM ct (%zu bytes)\n",
              message.size(), group.PointBytes(),
              sealed->dem_ciphertext.size());

  // 4. PKG side: extract the private key for SHA1(attribute || nonce).
  util::Bytes identity = ibe::DeriveIdentity(attribute, nonce);
  ibe::IbePrivateKey key = ibe.Extract(master, identity);
  std::printf("extracted private key for identity %s\n",
              util::HexEncode(identity).c_str());

  // 5. Receiver side: decrypt.
  auto opened = sealer.Open(key, sealed.value());
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::printf("decrypted: %s\n", util::StringFromBytes(*opened).c_str());

  // 6. Anyone without the extracted key — including the warehouse that
  //    stores the ciphertext — gets nothing.
  ibe::IbePrivateKey wrong =
      ibe.Extract(master, util::BytesFromString("some-other-identity"));
  auto failed = sealer.Open(wrong, sealed.value());
  std::printf("wrong key decrypts: %s\n",
              failed.ok() ? "garbage (padding accident)" : "nothing (rejected)");
  return 0;
}
