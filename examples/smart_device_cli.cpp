// CLI replacement for the paper's Fig. 5 smart-device web form: take a
// message and an attribute from the command line, deposit it, then show
// (a) what the warehouse actually stores — ciphertext, not plaintext —
// and (b) the message arriving readable at an authorized receiving
// client.
//
//   ./smart_device_cli [ATTRIBUTE] [message text...]

#include <cstdio>
#include <string>

#include "src/sim/scenario.h"
#include "src/util/hex.h"

int main(int argc, char** argv) {
  using namespace mws;

  std::string attribute =
      argc > 1 ? argv[1] : sim::UtilityScenario::kElectricAttr;
  std::string text;
  for (int i = 2; i < argc; ++i) {
    if (!text.empty()) text += ' ';
    text += argv[i];
  }
  if (text.empty()) text = "meter=E-2201 kWh=42.0 event=none";

  auto scenario = sim::UtilityScenario::Create({});
  if (!scenario.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  auto& s = *scenario.value();

  std::printf("-- smart device console (Fig. 5 substitute) --\n");
  std::printf("attribute: %s\n", attribute.c_str());
  std::printf("message:   %s\n\n", text.c_str());

  client::SmartDevice& device = s.devices()[0];
  auto id = device.DepositMessage(attribute, util::BytesFromString(text));
  if (!id.ok()) {
    std::fprintf(stderr, "deposit rejected: %s\n",
                 id.status().ToString().c_str());
    return 1;
  }
  std::printf("deposited as message #%llu\n\n",
              static_cast<unsigned long long>(id.value()));

  // Show the warehouse's view: it holds rP, C, A, Nonce — and cannot read C.
  auto stored = s.mws().message_db().Get(id.value());
  if (stored.ok()) {
    std::printf("what the MWS stores (its complete view of the message):\n");
    std::printf("  rP:         %s...\n",
                util::HexEncode(util::Bytes(stored->u.begin(),
                                            stored->u.begin() + 16))
                    .c_str());
    std::printf("  ciphertext: %s...\n",
                util::HexEncode(util::Bytes(
                                    stored->ciphertext.begin(),
                                    stored->ciphertext.begin() +
                                        std::min<size_t>(
                                            16, stored->ciphertext.size())))
                    .c_str());
    std::printf("  attribute:  %s (routing only)\n",
                stored->attribute.c_str());
    std::printf("  nonce:      %s\n\n",
                util::HexEncode(stored->nonce).c_str());
  }

  // Retrieve as each company; only the eligible ones see it.
  for (const std::string& company : s.company_names()) {
    auto messages = s.RetrieveFor(company);
    bool readable = false;
    if (messages.ok()) {
      for (const auto& m : messages.value()) {
        if (m.message_id == id.value()) {
          std::printf("%s decrypts it: %s\n", company.c_str(),
                      util::StringFromBytes(m.plaintext).c_str());
          readable = true;
        }
      }
    }
    if (!readable) {
      std::printf("%s cannot see this message\n", company.c_str());
    }
  }
  return 0;
}
