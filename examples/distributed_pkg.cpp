// The paper's §VIII hardening ideas, working together: a *distributed*
// PKG (threshold extraction — no single key escrow) and identity-based
// *signatures* (devices sign deposits under their identity string; no
// shared-key table).
//
//   ./distributed_pkg [threshold] [servers]

#include <cstdio>
#include <cstdlib>

#include "src/crypto/drbg.h"
#include "src/ibe/hybrid.h"
#include "src/ibe/ibs.h"
#include "src/math/params.h"
#include "src/pkg/threshold.h"

int main(int argc, char** argv) {
  using namespace mws;
  size_t threshold = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  size_t servers = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 5;

  const math::TypeAParams& group = math::GetParams(math::ParamPreset::kTest);
  crypto::HmacDrbg rng = crypto::HmacDrbg::FromOsEntropy();

  std::printf("== distributed PKG: %zu-of-%zu threshold ==\n\n", threshold,
              servers);

  // Dealer splits the master secret; each share is publicly verifiable.
  pkg::ThresholdPkg tpkg(group, threshold, servers);
  auto dealing = tpkg.Deal(rng);
  if (!dealing.ok()) {
    std::fprintf(stderr, "dealing failed: %s\n",
                 dealing.status().ToString().c_str());
    return 1;
  }
  for (const auto& share : dealing->shares) {
    bool ok = tpkg.VerifyShare(dealing->commitments, share);
    std::printf("server %llu received share: %s\n",
                static_cast<unsigned long long>(share.index),
                ok ? "verified against Feldman commitments" : "INVALID");
  }

  // A smart device encrypts to an attribute as usual — the system
  // parameters look identical to the centralized deployment.
  ibe::BfIbe ibe(group);
  ibe::HybridSealer sealer(group, crypto::CipherKind::kDes);
  ibe::MessageNonce nonce = ibe::GenerateNonce(rng);
  util::Bytes message =
      util::BytesFromString("meter=E-9 kWh=8.15 ts=2010-03-02T10:00Z");
  auto sealed = sealer.Seal(dealing->params, "ELECTRIC-BAYTOWER-SV-CA",
                            nonce, message, rng);
  if (!sealed.ok()) return 1;
  std::printf("\ndevice sealed a reading to ELECTRIC-BAYTOWER-SV-CA\n");

  // The RC asks `threshold` servers for partials; each is verified
  // before use, so a malicious server cannot poison the combination.
  util::Bytes identity =
      ibe::DeriveIdentity("ELECTRIC-BAYTOWER-SV-CA", nonce);
  math::EcPoint q_id = ibe.HashToPoint(identity);
  std::vector<pkg::ThresholdPkg::PartialKey> partials;
  for (size_t i = 0; i < threshold; ++i) {
    auto partial = tpkg.PartialExtract(dealing->shares[i], q_id);
    bool ok = tpkg.VerifyPartial(dealing->commitments, q_id, partial);
    std::printf("server %llu partial: %s\n",
                static_cast<unsigned long long>(partial.index),
                ok ? "verified" : "REJECTED");
    partials.push_back(partial);
  }
  auto key = tpkg.Combine(partials);
  if (!key.ok()) {
    std::fprintf(stderr, "combine failed: %s\n",
                 key.status().ToString().c_str());
    return 1;
  }
  auto opened = sealer.Open(key.value(), sealed.value());
  std::printf("combined key decrypts: %s\n\n",
              opened.ok() ? util::StringFromBytes(*opened).c_str()
                          : "FAILED");

  // Fewer than `threshold` partials reconstruct nothing.
  if (threshold > 1) {
    partials.pop_back();
    std::printf("with only %zu partial(s): %s\n\n", partials.size(),
                tpkg.Combine(partials).ok() ? "combined (BUG!)"
                                            : "refused, as designed");
  }

  // Identity-based signatures with the same extracted key material: the
  // device signs its reading under its identity string.
  ibe::IbSignatures ibs(group);
  auto device_key = key.value();  // reuse the threshold-extracted key
  auto signature = ibs.Sign(device_key, message);
  bool verified = ibs.Verify(dealing->params, identity, message, signature);
  std::printf("IBS over the reading (%zu-byte signature): %s\n",
              ibs.Serialize(signature).size(),
              verified ? "verifies" : "FAILED");
  util::Bytes tampered = message;
  tampered[0] ^= 1;
  std::printf("tampered reading: %s\n",
              ibs.Verify(dealing->params, identity, tampered, signature)
                  ? "verifies (BUG!)"
                  : "rejected");
  return 0;
}
