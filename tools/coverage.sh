#!/usr/bin/env bash
# Line-coverage report for the whole test suite, with no dependency on
# lcov/gcovr: configures a gcov-instrumented build, runs ctest, then
# aggregates `gcov --json-format` output with python3.
#
#   tools/coverage.sh [build-dir]           # default build-cov
#
# Prints per-file and per-module line coverage for src/ plus a total;
# the measured number is recorded in DESIGN.md §11.

set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO/build-cov}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$BUILD" -S "$REPO" -DMWSIBE_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug \
      >/dev/null
cmake --build "$BUILD" -j "$JOBS"

# A fresh run: drop counters from any previous invocation.
find "$BUILD" -name '*.gcda' -delete

ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

# gcov writes its JSON next to the cwd; work inside the build tree.
cd "$BUILD"
find . -name '*.gcda' | while read -r gcda; do
  gcov --json-format --stdout "$gcda" 2>/dev/null
done > coverage-raw.jsonl

python3 - "$REPO" coverage-raw.jsonl <<'EOF'
import collections
import json
import sys

repo = sys.argv[1]
# (file -> line -> hit?) merged across every test binary's counters.
lines = collections.defaultdict(dict)
for raw in open(sys.argv[2]):
    raw = raw.strip()
    if not raw:
        continue
    try:
        report = json.loads(raw)
    except json.JSONDecodeError:
        continue
    for f in report.get("files", []):
        name = f["file"]
        if not name.startswith("src/") and f"{repo}/src/" not in name:
            continue
        name = name.split(f"{repo}/")[-1]
        for line in f.get("lines", []):
            n = line["line_number"]
            lines[name][n] = lines[name].get(n, False) or line["count"] > 0

per_module = collections.defaultdict(lambda: [0, 0])
total_hit = total_all = 0
print(f"{'file':56s} {'lines':>7s} {'cov%':>7s}")
for name in sorted(lines):
    hits = sum(1 for h in lines[name].values() if h)
    count = len(lines[name])
    total_hit += hits
    total_all += count
    module = "/".join(name.split("/")[:2])
    per_module[module][0] += hits
    per_module[module][1] += count
    print(f"{name:56s} {count:7d} {100.0 * hits / count:6.1f}%")

print()
print(f"{'module':56s} {'lines':>7s} {'cov%':>7s}")
for module in sorted(per_module):
    hits, count = per_module[module]
    print(f"{module:56s} {count:7d} {100.0 * hits / count:6.1f}%")
print()
if total_all:
    print(f"TOTAL src/ line coverage: {100.0 * total_hit / total_all:.1f}% "
          f"({total_hit}/{total_all} lines)")
EOF
