// Operations tool: fetches and prints the observability snapshot of a
// running MWS node over the TCP wire (the `obs.stats` endpoint).
//
//   ./mws_stats <host> <port> [--json] [--spans]
//
// Default output is the human-readable text rendering (one line per
// counter/gauge, a block per histogram); --json emits the machine form.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/wire/stats.h"
#include "src/wire/tcp.h"

int main(int argc, char** argv) {
  using namespace mws;
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <host> <port> [--json] [--spans]\n",
                 argv[0]);
    return 2;
  }
  bool json = false;
  bool spans = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--spans") == 0) {
      spans = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  wire::TcpClientTransport transport(
      argv[1], static_cast<uint16_t>(std::atoi(argv[2])));
  auto dump = wire::FetchStats(&transport, spans);
  if (!dump.ok()) {
    std::fprintf(stderr, "stats fetch failed: %s\n",
                 dump.status().ToString().c_str());
    return 1;
  }

  if (json) {
    std::printf("%s\n", dump->registry.ToJson().c_str());
  } else {
    std::fputs(dump->registry.ToText().c_str(), stdout);
  }
  if (spans) {
    std::printf("\nspans (%zu, oldest first):\n", dump->spans.size());
    for (const obs::SpanRecord& span : dump->spans) {
      std::printf(
          "  trace=%llu span=%llu parent=%llu %-24s %lld us\n",
          static_cast<unsigned long long>(span.trace_id),
          static_cast<unsigned long long>(span.span_id),
          static_cast<unsigned long long>(span.parent_id), span.name.c_str(),
          static_cast<long long>(span.DurationMicros()));
    }
  }
  return 0;
}
