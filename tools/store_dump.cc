// Operations tool: dumps the contents of an MWS KV store log — keys,
// value sizes, and a decoded view of the typed records (messages, policy
// rows, users, devices).
//
//   ./store_dump <path-to-store-log> [--values]

#include <cstdio>
#include <cstring>

#include "src/store/kvstore.h"
#include "src/store/message_db.h"
#include "src/store/policy_db.h"
#include "src/util/hex.h"

int main(int argc, char** argv) {
  using namespace mws;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <store-log> [--values]\n", argv[0]);
    return 2;
  }
  bool show_values = argc > 2 && std::strcmp(argv[2], "--values") == 0;

  auto store = store::KvStore::Open({.path = argv[1]});
  if (!store.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  auto& kv = *store.value();
  std::printf("%s: %zu live keys, %zu log records\n\n", argv[1], kv.Size(),
              kv.log_records());

  size_t messages = 0, grants = 0, users = 0, devices = 0, expressions = 0,
         other = 0;
  for (const auto& [key, value] : kv.Scan("")) {
    char kind = key.empty() ? '?' : key[0];
    switch (kind) {
      case 'm':
        if (key.rfind("m/", 0) == 0) ++messages;
        break;
      case 'p':
        if (key.rfind("p/", 0) == 0) ++grants;
        break;
      case 'u':
        ++users;
        break;
      case 'd':
        ++devices;
        break;
      case 'e':
        if (key.rfind("e/", 0) == 0) ++expressions;
        break;
      default:
        ++other;
    }
    if (show_values) {
      std::printf("%-40s %6zu B  %s\n", key.c_str(), value.size(),
                  util::HexEncode(util::Bytes(
                                      value.begin(),
                                      value.begin() +
                                          std::min<size_t>(16, value.size())))
                      .c_str());
    }
  }
  std::printf("messages: %zu  policy grants: %zu  expressions: %zu  "
              "users: %zu  devices: %zu  other: %zu\n",
              messages, grants, expressions, users, devices, other);

  // Typed views.
  store::MessageDb message_db(&kv);
  store::PolicyDb policy_db(&kv);
  auto rows = policy_db.AllRows();
  if (rows.ok() && !rows->empty()) {
    std::printf("\nIdentity-Attribute mapping:\n");
    for (const auto& row : rows.value()) {
      std::printf("  %-24s %-28s aid=%llu%s\n", row.identity.c_str(),
                  row.attribute.c_str(),
                  static_cast<unsigned long long>(row.aid),
                  row.origin ? " (from expression)" : "");
    }
  }
  if (messages > 0) {
    std::printf("\nstored messages by attribute:\n");
    for (const std::string& attribute : message_db.DistinctAttributes()) {
      auto batch = message_db.FindByAttribute(attribute);
      std::printf("  %-28s %zu message(s)\n", attribute.c_str(),
                  batch.ok() ? batch->size() : 0);
    }
  }
  return 0;
}
