#!/usr/bin/env bash
# Runs every bench binary and stamps each recorded BENCH_*.json with a
# uniform provenance block (git commit, build flags, thread count, run
# time), so recorded artifacts are traceable to the build that produced
# them.
#
# Usage: tools/bench_all.sh [BUILD_DIR] [--smoke]
#
#   BUILD_DIR  cmake build tree holding bench/ (default: ./build)
#   --smoke    pass --smoke to every bench (short run, same artifacts)
#
# JSON-emitting benches write into bench/BENCH_<exp>.json in the source
# tree; the remaining benches print their reproduced artifact to stdout.
set -euo pipefail

repo_dir="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_dir}/build"
smoke=""
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke="--smoke" ;;
    *) build_dir="$(cd "$arg" && pwd)" ;;
  esac
done
bench_dir="${build_dir}/bench"
[ -d "$bench_dir" ] || { echo "no bench dir at ${bench_dir} — build first" >&2; exit 1; }

# --- Provenance, shared by every artifact this run produces ---
git_commit="$(git -C "$repo_dir" rev-parse HEAD 2>/dev/null || echo unknown)"
git_dirty=false
[ -n "$(git -C "$repo_dir" status --porcelain 2>/dev/null)" ] && git_dirty=true
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${build_dir}/CMakeCache.txt" 2>/dev/null || true)"
cxx_flags="$(sed -n 's/^CMAKE_CXX_FLAGS:[^=]*=//p' "${build_dir}/CMakeCache.txt" 2>/dev/null || true)"
threads="$(nproc 2>/dev/null || echo 1)"
run_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

provenance=$(printf '  "provenance": {"git_commit": "%s", "git_dirty": %s, "build_type": "%s", "cxx_flags": "%s", "hardware_threads": %s, "run_utc": "%s", "args": "%s"},' \
  "$git_commit" "$git_dirty" "${build_type:-unset}" "${cxx_flags:-}" "$threads" "$run_utc" "${smoke:-full}")

# Injects the provenance block right after the opening brace of a
# BENCH_*.json written by a bench binary this run. Drops any previous
# stamp first, so re-stamping a file the bench did not rewrite (e.g. a
# mode that skips the JSON artifact) cannot accumulate duplicates.
stamp() {
  local json="$1"
  [ -f "$json" ] || return 0
  awk -v prov="$provenance" \
    '/^  "provenance": / {next} NR==1 {print; print prov; next} {print}' \
    "$json" > "${json}.tmp" && mv "${json}.tmp" "$json"
  echo "stamped $(basename "$json")"
}

# Benches that record a JSON artifact: name -> BENCH file.
declare -A json_benches=(
  [bench_e7_ibe_primitives]=BENCH_e7.json
  [bench_e8_scalability]=BENCH_e8.json
  [bench_e15_resilience]=BENCH_e15.json
  [bench_e16_observability]=BENCH_e16.json
  [bench_e17_batching]=BENCH_e17.json
  [bench_e18_fleet]=BENCH_e18.json
  [bench_e19_shardscale]=BENCH_e19.json
  [bench_e20_controlplane]=BENCH_e20.json
)

# Benches that understand --smoke themselves. The rest are plain
# google-benchmark binaries, which reject unknown flags — for those,
# smoke mode prints the reproduced artifact and filters out every timed
# suite instead.
declare -A smoke_aware=(
  [bench_e7_ibe_primitives]=1 [bench_e8_scalability]=1
  [bench_e15_resilience]=1 [bench_e16_observability]=1
  [bench_e17_batching]=1 [bench_e18_fleet]=1
  [bench_e19_shardscale]=1 [bench_e20_controlplane]=1
  [bench_fig2_key_retrieval]=1 [bench_fig3_components]=1
)

# Per-bench extra flags. E8 records its JSON only in concurrent-
# deployment mode, and the recorded sweep covers 1..8 dispatch workers.
declare -A extra_flags=(
  [bench_e8_scalability]="--threads=8"
)

failures=0
for bin in "$bench_dir"/bench_*; do
  [ -x "$bin" ] || continue
  name="$(basename "$bin")"
  flags=()
  if [ -n "${extra_flags[$name]:-}" ]; then flags+=(${extra_flags[$name]}); fi
  if [ -n "$smoke" ]; then
    if [ -n "${smoke_aware[$name]:-}" ]; then flags+=("--smoke")
    else flags+=("--benchmark_filter=^\$"); fi
  fi
  if [ -n "${json_benches[$name]:-}" ]; then
    flags+=("--json=${repo_dir}/bench/${json_benches[$name]}")
  fi
  echo
  echo "=== ${name} ${flags[*]:-} ==="
  if "$bin" "${flags[@]}"; then
    if [ -n "${json_benches[$name]:-}" ]; then
      stamp "${repo_dir}/bench/${json_benches[$name]}"
    fi
  else
    echo "FAILED: ${name}" >&2
    failures=$((failures + 1))
  fi
done

echo
if [ "$failures" -ne 0 ]; then
  echo "${failures} bench(es) failed" >&2
  exit 1
fi
echo "all benches completed; artifacts stamped with commit ${git_commit}"
