// Generates the pre-baked type-A pairing parameter presets in
// src/math/params.cc. Run manually; output is C++-pasteable hex.
//
//   ./gen_params <qbits> <pbits>

#include <cstdio>
#include <cstdlib>

#include "src/math/pairing.h"
#include "src/util/random.h"

int main(int argc, char** argv) {
  size_t qbits = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 160;
  size_t pbits = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 512;
  auto params = mws::math::TypeAParams::Generate(
      qbits, pbits, mws::util::OsRandom::Instance());
  if (!params.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 params.status().ToString().c_str());
    return 1;
  }
  const auto& tp = *params.value();
  std::printf("// q=%zu bits, p=%zu bits\n", qbits, pbits);
  std::printf("p  = \"%s\"\n", tp.p().ToHex().c_str());
  std::printf("q  = \"%s\"\n", tp.q().ToHex().c_str());
  std::printf("gx = \"%s\"\n", tp.generator().x().ToBigInt().ToHex().c_str());
  std::printf("gy = \"%s\"\n", tp.generator().y().ToBigInt().ToHex().c_str());

  // Smoke-test bilinearity before accepting the parameters.
  auto& rng = mws::util::OsRandom::Instance();
  mws::math::BigInt a = tp.RandomScalar(rng);
  mws::math::BigInt b = tp.RandomScalar(rng);
  auto P = tp.RandomPoint(rng);
  auto Q = tp.RandomPoint(rng);
  auto lhs = tp.Pairing(tp.curve().ScalarMul(a, P), tp.curve().ScalarMul(b, Q));
  auto rhs = tp.Pairing(P, Q).Pow(mws::math::BigInt::Mod(a * b, tp.q()));
  auto unity = tp.Pairing(P, Q).Pow(tp.q());
  std::printf("bilinear: %s\n", lhs == rhs ? "OK" : "FAIL");
  std::printf("order-q:  %s\n", unity.IsOne() ? "OK" : "FAIL");
  std::printf("nondegen: %s\n", !tp.Pairing(P, P).IsOne() ? "OK" : "FAIL");
  return (lhs == rhs && unity.IsOne()) ? 0 : 2;
}
