// E13 — §VIII future-work extensions, implemented and measured:
//   * identity-based signatures for deposit authentication vs the
//     paper's HMAC (what replacing the shared-key table costs), and
//   * threshold PKG extraction vs the centralized escrow (what removing
//     the single point of trust costs), swept over (t, n).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/crypto/hmac.h"
#include "src/ibe/ibs.h"
#include "src/math/params.h"
#include "src/pkg/threshold.h"
#include "src/util/random.h"

namespace {

using mws::ibe::BfIbe;
using mws::ibe::IbSignatures;
using mws::math::GetParams;
using mws::math::ParamPreset;
using mws::pkg::ThresholdPkg;
using mws::util::Bytes;
using mws::util::BytesFromString;
using mws::util::DeterministicRandom;

struct IbsFixture {
  const mws::math::TypeAParams& group = GetParams(ParamPreset::kSmall);
  BfIbe ibe{group};
  IbSignatures ibs{group};
  DeterministicRandom rng{1};
  mws::ibe::SystemParams params;
  mws::ibe::MasterKey master;
  mws::ibe::IbePrivateKey key;

  IbsFixture() {
    auto setup = ibe.Setup(rng);
    params = setup.first;
    master = setup.second;
    key = ibe.Extract(master, BytesFromString("SD-1"));
  }
};

IbsFixture& SharedIbs() {
  static IbsFixture& f = *new IbsFixture();
  return f;
}

void BM_DepositAuth_HmacSign(benchmark::State& state) {
  Bytes key(32, 0x11);
  Bytes message(state.range(0), 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(mws::crypto::HmacSha256(key, message));
  }
  state.SetLabel("HMAC (paper), " + std::to_string(state.range(0)) + " B");
}
BENCHMARK(BM_DepositAuth_HmacSign)->Arg(128)->Arg(4096);

void BM_DepositAuth_IbsSign(benchmark::State& state) {
  IbsFixture& f = SharedIbs();
  Bytes message(state.range(0), 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ibs.Sign(f.key, message));
  }
  state.SetLabel("IBS (future work), " + std::to_string(state.range(0)) +
                 " B");
}
BENCHMARK(BM_DepositAuth_IbsSign)->Arg(128)->Arg(4096);

void BM_DepositAuth_HmacVerify(benchmark::State& state) {
  Bytes key(32, 0x11);
  Bytes message(128, 'm');
  Bytes mac = mws::crypto::HmacSha256(key, message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mws::crypto::VerifyHmac(
        mws::crypto::HashKind::kSha256, key, message, mac));
  }
  state.SetLabel("HMAC verify (needs shared-key table)");
}
BENCHMARK(BM_DepositAuth_HmacVerify);

void BM_DepositAuth_IbsVerify(benchmark::State& state) {
  IbsFixture& f = SharedIbs();
  Bytes message(128, 'm');
  auto signature = f.ibs.Sign(f.key, message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ibs.Verify(f.params, BytesFromString("SD-1"),
                                          message, signature));
  }
  state.SetLabel("IBS verify (2 pairings, no key table)");
}
BENCHMARK(BM_DepositAuth_IbsVerify);

// --- Threshold PKG ---

void BM_Threshold_PartialExtract(benchmark::State& state) {
  const auto& group = GetParams(ParamPreset::kSmall);
  DeterministicRandom rng(2);
  ThresholdPkg tpkg(group, state.range(0), state.range(1));
  auto dealing = tpkg.Deal(rng).value();
  BfIbe ibe(group);
  auto q_id = ibe.HashToPoint(BytesFromString("id"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tpkg.PartialExtract(dealing.shares[0], q_id));
  }
  state.SetLabel("per server");
}
BENCHMARK(BM_Threshold_PartialExtract)->Args({3, 5});

void BM_Threshold_Combine(benchmark::State& state) {
  const auto& group = GetParams(ParamPreset::kSmall);
  DeterministicRandom rng(3);
  ThresholdPkg tpkg(group, state.range(0), state.range(1));
  auto dealing = tpkg.Deal(rng).value();
  BfIbe ibe(group);
  auto q_id = ibe.HashToPoint(BytesFromString("id"));
  std::vector<ThresholdPkg::PartialKey> partials;
  for (int64_t i = 0; i < state.range(0); ++i) {
    partials.push_back(tpkg.PartialExtract(dealing.shares[i], q_id));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tpkg.Combine(partials));
  }
  state.SetLabel("t=" + std::to_string(state.range(0)) + " of n=" +
                 std::to_string(state.range(1)));
}
BENCHMARK(BM_Threshold_Combine)
    ->Args({1, 1})
    ->Args({2, 3})
    ->Args({3, 5})
    ->Args({5, 9})
    ->Args({9, 15});

void BM_Threshold_VerifyPartial(benchmark::State& state) {
  const auto& group = GetParams(ParamPreset::kSmall);
  DeterministicRandom rng(4);
  ThresholdPkg tpkg(group, 3, 5);
  auto dealing = tpkg.Deal(rng).value();
  BfIbe ibe(group);
  auto q_id = ibe.HashToPoint(BytesFromString("id"));
  auto partial = tpkg.PartialExtract(dealing.shares[0], q_id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tpkg.VerifyPartial(dealing.commitments, q_id, partial));
  }
  state.SetLabel("Feldman check, 2 pairings");
}
BENCHMARK(BM_Threshold_VerifyPartial);

/// The centralized baseline the threshold design replaces.
void BM_Threshold_CentralizedExtract(benchmark::State& state) {
  IbsFixture& f = SharedIbs();
  auto q_id = f.ibe.HashToPoint(BytesFromString("id"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ibe.ExtractFromPoint(f.master, q_id));
  }
  state.SetLabel("single escrow PKG");
}
BENCHMARK(BM_Threshold_CentralizedExtract);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E13: future-work extensions (IBS, threshold PKG) ===\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
