// E7 — §IV primitive costs: the four Boneh–Franklin algorithms (Setup,
// Extract, Encrypt, Decrypt) across security presets, plus the pairing
// breakdown (Miller loop vs final exponentiation) and hash-to-point.
//
// Besides the Google Benchmark suite, this binary emits a machine-
// readable comparison of every precomputation fast path against its
// reference implementation:
//
//   bench_e7_ibe_primitives --json=BENCH_e7.json   # write the report
//   bench_e7_ibe_primitives --no-precompute        # report reference ns
//   bench_e7_ibe_primitives --smoke                # quick ctest pass
//
// The JSON records ns/op for the fast path, ns/op for the reference,
// and the speedup ratio per primitive.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/crypto/drbg.h"
#include "src/ibe/bf_ibe.h"
#include "src/math/params.h"
#include "src/math/precompute.h"

namespace {

using mws::crypto::HmacDrbg;
using mws::ibe::BasicCiphertext;
using mws::ibe::BfIbe;
using mws::math::BigInt;
using mws::math::EcPoint;
using mws::math::Fp2;
using mws::math::GetParams;
using mws::math::PairingPrecomp;
using mws::math::ParamPreset;
using mws::math::TypeAParams;
using mws::util::Bytes;
using mws::util::BytesFromString;

const TypeAParams& Preset(int64_t index) {
  switch (index) {
    case 0:
      return GetParams(ParamPreset::kSmall);
    case 2:
      return GetParams(ParamPreset::kLarge);
    default:
      return GetParams(ParamPreset::kTest);
  }
}

void SetPresetLabel(benchmark::State& state) {
  state.SetLabel(ParamPresetName(state.range(0) == 0   ? ParamPreset::kSmall
                                 : state.range(0) == 2 ? ParamPreset::kLarge
                                                       : ParamPreset::kTest));
}

HmacDrbg MakeRng() { return HmacDrbg(BytesFromString("bench-seed")); }

void BM_IbeSetup(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  BfIbe ibe(group);
  HmacDrbg rng = MakeRng();
  for (auto _ : state) {
    auto setup = ibe.Setup(rng);
    benchmark::DoNotOptimize(setup);
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_IbeSetup)->Arg(0)->Arg(1)->Arg(2);

void BM_IbeHashToPoint(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  BfIbe ibe(group);
  uint64_t i = 0;
  for (auto _ : state) {
    Bytes id = BytesFromString("identity-" + std::to_string(i++));
    benchmark::DoNotOptimize(ibe.HashToPoint(id));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_IbeHashToPoint)->Arg(0)->Arg(1)->Arg(2);

void BM_IbeExtract(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  BfIbe ibe(group);
  HmacDrbg rng = MakeRng();
  auto [params, master] = ibe.Setup(rng);
  uint64_t i = 0;
  for (auto _ : state) {
    Bytes id = BytesFromString("identity-" + std::to_string(i++));
    benchmark::DoNotOptimize(ibe.Extract(master, id));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_IbeExtract)->Arg(0)->Arg(1)->Arg(2);

void BM_IbeEncrypt(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  BfIbe ibe(group);
  HmacDrbg rng = MakeRng();
  auto [params, master] = ibe.Setup(rng);
  Bytes id = BytesFromString("recipient");
  Bytes message(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibe.Encrypt(params, id, message, rng));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_IbeEncrypt)->Arg(0)->Arg(1)->Arg(2);

void BM_IbeDecrypt(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  BfIbe ibe(group);
  HmacDrbg rng = MakeRng();
  auto [params, master] = ibe.Setup(rng);
  Bytes id = BytesFromString("recipient");
  BasicCiphertext ct = ibe.Encrypt(params, id, Bytes(64, 'x'), rng);
  auto key = ibe.Extract(master, id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibe.Decrypt(params, key, ct));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_IbeDecrypt)->Arg(0)->Arg(1)->Arg(2);

void BM_IbeEncryptFull(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  BfIbe ibe(group);
  HmacDrbg rng = MakeRng();
  auto [params, master] = ibe.Setup(rng);
  Bytes id = BytesFromString("recipient");
  Bytes message(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibe.EncryptFull(params, id, message, rng));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_IbeEncryptFull)->Arg(0)->Arg(1)->Arg(2);

void BM_IbeDecryptFull(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  BfIbe ibe(group);
  HmacDrbg rng = MakeRng();
  auto [params, master] = ibe.Setup(rng);
  Bytes id = BytesFromString("recipient");
  auto ct = ibe.EncryptFull(params, id, Bytes(64, 'x'), rng);
  auto key = ibe.Extract(master, id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibe.DecryptFull(params, key, ct));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_IbeDecryptFull)->Arg(0)->Arg(1)->Arg(2);

// --- Pairing breakdown ---

void BM_PairingFull(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  HmacDrbg rng = MakeRng();
  auto p = group.RandomPoint(rng);
  auto q = group.RandomPoint(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.Pairing(p, q));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_PairingFull)->Arg(0)->Arg(1)->Arg(2);

void BM_PairingMillerLoop(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  HmacDrbg rng = MakeRng();
  auto p = group.RandomPoint(rng);
  auto q = group.RandomPoint(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.MillerLoop(p, q));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_PairingMillerLoop)->Arg(0)->Arg(1)->Arg(2);

void BM_PairingFinalExp(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  HmacDrbg rng = MakeRng();
  auto z = group.MillerLoop(group.RandomPoint(rng), group.RandomPoint(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.FinalExponentiation(z));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_PairingFinalExp)->Arg(0)->Arg(1)->Arg(2);

void BM_ScalarMul(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  HmacDrbg rng = MakeRng();
  auto p = group.RandomPoint(rng);
  auto k = group.RandomScalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.curve().ScalarMul(k, p));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_ScalarMul)->Arg(0)->Arg(1)->Arg(2);

// --- Precomputation fast paths ---

void BM_ScalarMulFixedBase(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  HmacDrbg rng = MakeRng();
  auto k = group.RandomScalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.MulGenerator(k));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_ScalarMulFixedBase)->Arg(0)->Arg(1)->Arg(2);

void BM_PairingPrecompEval(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  HmacDrbg rng = MakeRng();
  auto q = group.RandomPoint(rng);
  const PairingPrecomp& precomp = group.generator_pairing();
  for (auto _ : state) {
    benchmark::DoNotOptimize(precomp.Pairing(q));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_PairingPrecompEval)->Arg(0)->Arg(1)->Arg(2);

// --- Machine-readable fast-path vs reference report ---

struct Row {
  std::string name;
  double fast_ns = 0;
  double reference_ns = 0;
};

/// ns/op via steady_clock: one warmup call, then the best (minimum)
/// mean over three independent measurement windows, each of at least
/// `min_iters` iterations and `min_ms` of wall time. The minimum is
/// the standard noise-robust estimator on a shared host — interference
/// only ever inflates a window's mean, so the smallest window is the
/// closest to the true cost.
template <typename F>
double MeasureNs(F&& fn, int min_iters, double min_ms) {
  fn();
  double best = 0;
  for (int window = 0; window < 3; ++window) {
    int iters = 0;
    auto start = std::chrono::steady_clock::now();
    double elapsed_ns = 0;
    do {
      fn();
      ++iters;
      elapsed_ns = std::chrono::duration<double, std::nano>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    } while (iters < min_iters || elapsed_ns < min_ms * 1e6);
    const double mean = elapsed_ns / iters;
    if (window == 0 || mean < best) best = mean;
  }
  return best;
}

std::vector<Row> MeasureFastPaths(const TypeAParams& group, bool smoke) {
  // Smoke still needs a floor of real measurement time: at two bare
  // iterations the millisecond-scale batch rows jitter by 3-4x on a
  // loaded single-core host, which would make the regression check
  // below meaningless.
  const int min_iters = smoke ? 5 : 20;
  const double min_ms = smoke ? 10.0 : 100.0;
  const mws::math::CurveGroup& curve = group.curve();

  BfIbe ibe(group);
  HmacDrbg rng = MakeRng();
  auto [params, master] = ibe.Setup(rng);

  // Rotating pre-generated inputs so no iteration sees a warm value twice.
  constexpr size_t kInputs = 16;
  std::vector<BigInt> scalars;
  std::vector<EcPoint> points;
  for (size_t i = 0; i < kInputs; ++i) {
    scalars.push_back(group.RandomScalar(rng));
    points.push_back(group.RandomPoint(rng));
  }
  Fp2 unit = group.Pairing(points[0], points[1]);

  std::vector<Row> rows;
  size_t n = 0;

  rows.push_back(
      {"scalar_mul_fixed_base",
       MeasureNs([&] { benchmark::DoNotOptimize(
                           group.MulGenerator(scalars[n++ % kInputs])); },
                 min_iters, min_ms),
       MeasureNs([&] { benchmark::DoNotOptimize(curve.ScalarMulBinary(
                           scalars[n++ % kInputs], group.generator())); },
                 min_iters, min_ms)});

  rows.push_back(
      {"scalar_mul_p_pub_fixed_base",
       MeasureNs([&] { benchmark::DoNotOptimize(
                           params.p_pub_table->Mul(scalars[n++ % kInputs])); },
                 min_iters, min_ms),
       MeasureNs([&] { benchmark::DoNotOptimize(curve.ScalarMulBinary(
                           scalars[n++ % kInputs], params.p_pub)); },
                 min_iters, min_ms)});

  rows.push_back(
      {"scalar_mul_variable_base",
       MeasureNs(
           [&] {
             const size_t k = n++ % kInputs;
             benchmark::DoNotOptimize(curve.ScalarMul(scalars[k], points[k]));
           },
           min_iters, min_ms),
       MeasureNs(
           [&] {
             const size_t k = n++ % kInputs;
             benchmark::DoNotOptimize(
                 curve.ScalarMulBinary(scalars[k], points[k]));
           },
           min_iters, min_ms)});

  const PairingPrecomp& precomp = *params.p_pub_pairing;
  rows.push_back(
      {"miller_loop_fixed_g1",
       MeasureNs([&] { benchmark::DoNotOptimize(
                           precomp.Miller(points[n++ % kInputs])); },
                 min_iters, min_ms),
       MeasureNs([&] { benchmark::DoNotOptimize(group.MillerLoop(
                           params.p_pub, points[n++ % kInputs])); },
                 min_iters, min_ms)});

  // Reference is the pre-v2 engine (binary Miller loop, unbatched
  // final exponentiation); group.Pairing now IS a fast path.
  rows.push_back(
      {"pairing_fixed_g1",
       MeasureNs([&] { benchmark::DoNotOptimize(
                           precomp.Pairing(points[n++ % kInputs])); },
                 min_iters, min_ms),
       MeasureNs([&] { benchmark::DoNotOptimize(group.PairingReference(
                           params.p_pub, points[n++ % kInputs])); },
                 min_iters, min_ms)});

  // Two-term product e(P_pub, q1) * e(P, q2) — the IBS Verify /
  // threshold VerifyPartial shape — against two reference pairings
  // multiplied in F_p2.
  rows.push_back(
      {"pairing_product",
       MeasureNs(
           [&] {
             const size_t k = n++ % (kInputs - 1);
             std::vector<mws::math::PairingTerm> terms;
             terms.push_back({params.p_pub_pairing.get(), {}, points[k]});
             terms.push_back(
                 {&group.generator_pairing(), {}, points[k + 1]});
             benchmark::DoNotOptimize(group.PairingProduct(terms));
           },
           min_iters, min_ms),
       MeasureNs(
           [&] {
             const size_t k = n++ % (kInputs - 1);
             benchmark::DoNotOptimize(
                 group.PairingReference(params.p_pub, points[k]) *
                 group.PairingReference(group.generator(), points[k + 1]));
           },
           min_iters, min_ms)});

  // Eight pairings sharing one fixed argument: cached lines + batched
  // final exponentiation (PairingMany) vs eight pre-v2 reference
  // pairings, mirroring the pairing_fixed_g1 row's reference. Both
  // columns are ns per 8-element batch. (Against eight independent
  // fast pairings the batch saves only the per-value easy-part
  // inversion, a ~5% effect that this host's noise floor swallows.)
  constexpr size_t kBatch = 8;
  rows.push_back(
      {"pairing_many_8",
       MeasureNs(
           [&] {
             std::vector<EcPoint> qs;
             for (size_t i = 0; i < kBatch; ++i) {
               qs.push_back(points[(n + i) % kInputs]);
             }
             ++n;
             benchmark::DoNotOptimize(precomp.PairingMany(qs));
           },
           min_iters, min_ms),
       MeasureNs(
           [&] {
             std::vector<Fp2> out;
             for (size_t i = 0; i < kBatch; ++i) {
               out.push_back(group.PairingReference(
                   params.p_pub, points[(n + i) % kInputs]));
             }
             ++n;
             benchmark::DoNotOptimize(out);
           },
           min_iters, min_ms)});

  // Bulk BasicIdent decryption under one key: DecryptMany (shared
  // precomp + batched final exp) vs a per-message Decrypt loop. Both
  // columns are ns per 8-message batch.
  {
    Bytes bulk_id = BytesFromString("bulk-bench");
    mws::ibe::IbePrivateKey bulk_key = ibe.Extract(master, bulk_id);
    std::vector<BasicCiphertext> cts;
    for (size_t i = 0; i < kBatch; ++i) {
      cts.push_back(ibe.Encrypt(params, bulk_id,
                                BytesFromString("bulk message payload"),
                                rng));
    }
    rows.push_back(
        {"bulk_decrypt_basic_8",
         MeasureNs([&] { benchmark::DoNotOptimize(
                             ibe.DecryptMany(params, bulk_key, cts)); },
                   min_iters, min_ms),
         MeasureNs(
             [&] {
               std::vector<Bytes> out;
               for (const BasicCiphertext& ct : cts) {
                 out.push_back(ibe.Decrypt(params, bulk_key, ct));
               }
               benchmark::DoNotOptimize(out);
             },
             min_iters, min_ms)});
  }

  // Dedicated Montgomery squaring (SOS kernel, dispatched by Fp::Sqr)
  // vs the fused-CIOS general product MontMul(a, a). Below the
  // kMontSqrMinLimbs threshold (the kSmall preset) Sqr intentionally
  // falls back to MontMul, so this row sits at ~1.0x there. The win is
  // compiler-sensitive (see kMontSqrMinLimbs in fp.h): ~1.1-1.2x at
  // kTest under the default -O2 build, parity-to-slightly-behind under
  // -O3 — the gate's slack guards "never materially slower".
  {
    std::vector<mws::math::Fp> elems;
    for (size_t i = 0; i < kInputs; ++i) {
      elems.push_back(mws::math::Fp::FromBigInt(group.ctx(), scalars[i]));
    }
    rows.push_back(
        {"mont_sqr",
         MeasureNs(
             [&] { benchmark::DoNotOptimize(elems[n++ % kInputs].Sqr()); },
             min_iters, min_ms),
         MeasureNs(
             [&] {
               const mws::math::Fp& a = elems[n++ % kInputs];
               benchmark::DoNotOptimize(a * a);
             },
             min_iters, min_ms)});
  }

  rows.push_back(
      {"fp2_pow_window",
       MeasureNs([&] { benchmark::DoNotOptimize(
                           unit.Pow(scalars[n++ % kInputs])); },
                 min_iters, min_ms),
       MeasureNs([&] { benchmark::DoNotOptimize(
                           unit.PowBinary(scalars[n++ % kInputs])); },
                 min_iters, min_ms)});

  // LRU-hit hash-to-point vs a cold cache: rotate over 8 ids (all warm
  // after one pass) against fresh never-seen identities.
  std::vector<Bytes> warm_ids;
  for (int i = 0; i < 8; ++i) {
    warm_ids.push_back(BytesFromString("warm-" + std::to_string(i)));
    ibe.HashToPoint(warm_ids.back());
  }
  uint64_t cold = 0;
  rows.push_back(
      {"hash_to_point_lru",
       MeasureNs([&] { benchmark::DoNotOptimize(
                           ibe.HashToPoint(warm_ids[n++ % 8])); },
                 min_iters, min_ms),
       MeasureNs([&] { benchmark::DoNotOptimize(ibe.HashToPoint(
                           BytesFromString("cold-" +
                                           std::to_string(cold++)))); },
                 min_iters, min_ms)});

  return rows;
}

/// Returns false if any fast path measured slower than its reference
/// beyond the noise allowance — the smoke run turns that into a test
/// failure, so an accidental de-optimization of the v2 engine cannot
/// land silently.
bool EmitJson(const std::string& path, bool no_precompute, bool smoke) {
  // Smoke keeps ctest fast: the tiny preset with a couple iterations.
  ParamPreset preset = smoke ? ParamPreset::kSmall : ParamPreset::kTest;
  const TypeAParams& group = GetParams(preset);
  std::vector<Row> rows = MeasureFastPaths(group, smoke);

  std::string out = "{\n";
  out += "  \"preset\": \"" + std::string(ParamPresetName(preset)) + "\",\n";
  out += std::string("  \"no_precompute\": ") +
         (no_precompute ? "true" : "false") + ",\n";
  out += "  \"results\": [\n";
  char buf[256];
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    // Under --no-precompute the primary column reports the reference
    // path — the "before" numbers a regression check diffs against.
    double primary = no_precompute ? r.reference_ns : r.fast_ns;
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                  "\"reference_ns_per_op\": %.1f, \"speedup\": %.2f}%s\n",
                  r.name.c_str(), primary, r.reference_ns,
                  r.reference_ns / r.fast_ns,
                  i + 1 < rows.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";

  if (path.empty()) {
    std::printf("%s", out.c_str());
  } else {
    std::ofstream f(path);
    f << out;
    std::printf("wrote %s\n", path.c_str());
  }
  bool ok = true;
  // 25% slack absorbs smoke-mode timing noise (two iterations on the
  // tiny preset); the tightest real fast path (fp2_pow_window, ~1.1x)
  // still clears it, and a fast path that fell behind its reference
  // trips it.
  constexpr double kSlack = 1.25;
  for (const Row& r : rows) {
    std::printf("  %-28s fast %10.1f ns  reference %12.1f ns  (%.2fx)\n",
                r.name.c_str(), r.fast_ns, r.reference_ns,
                r.reference_ns / r.fast_ns);
    if (r.fast_ns > r.reference_ns * kSlack) {
      std::printf("  REGRESSION: %s fast path slower than reference\n",
                  r.name.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool no_precompute = false;
  std::string json_path;
  // Strip our flags before benchmark::Initialize — gbench only consumes
  // --benchmark_* and aborts on anything it does not recognize.
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-precompute") == 0) {
      no_precompute = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  std::printf("=== E7: IBE primitive costs ===\n\n");
  bool ok = EmitJson(json_path, no_precompute, smoke);
  if (smoke) return ok ? 0 : 1;

  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
