// E7 — §IV primitive costs: the four Boneh–Franklin algorithms (Setup,
// Extract, Encrypt, Decrypt) across security presets, plus the pairing
// breakdown (Miller loop vs final exponentiation) and hash-to-point.

#include <benchmark/benchmark.h>

#include "src/crypto/drbg.h"
#include "src/ibe/bf_ibe.h"
#include "src/math/params.h"

namespace {

using mws::crypto::HmacDrbg;
using mws::ibe::BasicCiphertext;
using mws::ibe::BfIbe;
using mws::math::GetParams;
using mws::math::ParamPreset;
using mws::math::TypeAParams;
using mws::util::Bytes;
using mws::util::BytesFromString;

const TypeAParams& Preset(int64_t index) {
  switch (index) {
    case 0:
      return GetParams(ParamPreset::kSmall);
    case 2:
      return GetParams(ParamPreset::kLarge);
    default:
      return GetParams(ParamPreset::kTest);
  }
}

void SetPresetLabel(benchmark::State& state) {
  state.SetLabel(ParamPresetName(state.range(0) == 0   ? ParamPreset::kSmall
                                 : state.range(0) == 2 ? ParamPreset::kLarge
                                                       : ParamPreset::kTest));
}

HmacDrbg MakeRng() { return HmacDrbg(BytesFromString("bench-seed")); }

void BM_IbeSetup(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  BfIbe ibe(group);
  HmacDrbg rng = MakeRng();
  for (auto _ : state) {
    auto setup = ibe.Setup(rng);
    benchmark::DoNotOptimize(setup);
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_IbeSetup)->Arg(0)->Arg(1)->Arg(2);

void BM_IbeHashToPoint(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  BfIbe ibe(group);
  uint64_t i = 0;
  for (auto _ : state) {
    Bytes id = BytesFromString("identity-" + std::to_string(i++));
    benchmark::DoNotOptimize(ibe.HashToPoint(id));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_IbeHashToPoint)->Arg(0)->Arg(1)->Arg(2);

void BM_IbeExtract(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  BfIbe ibe(group);
  HmacDrbg rng = MakeRng();
  auto [params, master] = ibe.Setup(rng);
  uint64_t i = 0;
  for (auto _ : state) {
    Bytes id = BytesFromString("identity-" + std::to_string(i++));
    benchmark::DoNotOptimize(ibe.Extract(master, id));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_IbeExtract)->Arg(0)->Arg(1)->Arg(2);

void BM_IbeEncrypt(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  BfIbe ibe(group);
  HmacDrbg rng = MakeRng();
  auto [params, master] = ibe.Setup(rng);
  Bytes id = BytesFromString("recipient");
  Bytes message(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibe.Encrypt(params, id, message, rng));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_IbeEncrypt)->Arg(0)->Arg(1)->Arg(2);

void BM_IbeDecrypt(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  BfIbe ibe(group);
  HmacDrbg rng = MakeRng();
  auto [params, master] = ibe.Setup(rng);
  Bytes id = BytesFromString("recipient");
  BasicCiphertext ct = ibe.Encrypt(params, id, Bytes(64, 'x'), rng);
  auto key = ibe.Extract(master, id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibe.Decrypt(params, key, ct));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_IbeDecrypt)->Arg(0)->Arg(1)->Arg(2);

void BM_IbeEncryptFull(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  BfIbe ibe(group);
  HmacDrbg rng = MakeRng();
  auto [params, master] = ibe.Setup(rng);
  Bytes id = BytesFromString("recipient");
  Bytes message(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibe.EncryptFull(params, id, message, rng));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_IbeEncryptFull)->Arg(0)->Arg(1)->Arg(2);

void BM_IbeDecryptFull(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  BfIbe ibe(group);
  HmacDrbg rng = MakeRng();
  auto [params, master] = ibe.Setup(rng);
  Bytes id = BytesFromString("recipient");
  auto ct = ibe.EncryptFull(params, id, Bytes(64, 'x'), rng);
  auto key = ibe.Extract(master, id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ibe.DecryptFull(params, key, ct));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_IbeDecryptFull)->Arg(0)->Arg(1)->Arg(2);

// --- Pairing breakdown ---

void BM_PairingFull(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  HmacDrbg rng = MakeRng();
  auto p = group.RandomPoint(rng);
  auto q = group.RandomPoint(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.Pairing(p, q));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_PairingFull)->Arg(0)->Arg(1)->Arg(2);

void BM_PairingMillerLoop(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  HmacDrbg rng = MakeRng();
  auto p = group.RandomPoint(rng);
  auto q = group.RandomPoint(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.MillerLoop(p, q));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_PairingMillerLoop)->Arg(0)->Arg(1)->Arg(2);

void BM_PairingFinalExp(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  HmacDrbg rng = MakeRng();
  auto z = group.MillerLoop(group.RandomPoint(rng), group.RandomPoint(rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.FinalExponentiation(z));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_PairingFinalExp)->Arg(0)->Arg(1)->Arg(2);

void BM_ScalarMul(benchmark::State& state) {
  const TypeAParams& group = Preset(state.range(0));
  HmacDrbg rng = MakeRng();
  auto p = group.RandomPoint(rng);
  auto k = group.RandomScalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(group.curve().ScalarMul(k, p));
  }
  SetPresetLabel(state);
}
BENCHMARK(BM_ScalarMul)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
