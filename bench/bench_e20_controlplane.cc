// E20 — million-identity control plane: the auth / token-issuance /
// AID-resolution hot paths at 10^6 registered identities and grants,
// swept across a worker pool, tuned vs the retained pre-PR-10 baseline.
//
// The two configurations differ only in control-plane options over the
// *same* loaded store:
//
//   baseline — ControlPlaneTuning.reference_mode (single-mutex session
//   registry + full-registry sweep inside every authentication),
//   PolicyDb with the secondary index disabled (reads are table prefix
//   scans) and the AID cache off;
//
//   tuned — striped TTL session registry with the amortized sweep, the
//   ordered (identity, attribute) secondary index, and the
//   invalidate-on-Revoke AID LRU.
//
// Phases per (mode, workers) point: the RC auth handshake
// (Authenticate + GetSession + CloseSession) against a pre-populated
// session registry, token issuance (GrantsFor + IssueToken), AID
// resolution (RowForAid + RowsForIdentity, 80/20 hot/cold), and a PEKS
// TestMany sweep over a tag corpus. A bounded-memory sub-run caps
// max_sessions and verifies the `gatekeeper.sessions` gauge never
// exceeds it.
//
// Gates (exit 1 on violation): zero op failures, correct PEKS match
// counts, session bound respected, and — full mode — aggregate
// auth+resolution throughput at the widest worker count >= 3x baseline,
// tuned auth p95 <= baseline's, tuned resolution throughput >= 2x.
// `--smoke` shrinks to 10^4 identities with generous bounds (a
// correctness + gross-regression check for ctest). `--json=PATH`
// records the sweep (BENCH_e20.json).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/crypto/modes.h"
#include "src/crypto/rsa.h"
#include "src/ibe/peks.h"
#include "src/math/params.h"
#include "src/mws/mws_service.h"
#include "src/obs/metrics.h"
#include "src/store/kvstore.h"
#include "src/util/clock.h"
#include "src/wire/auth.h"

namespace {

using mws::util::Bytes;

struct Scale {
  size_t identities;
  size_t prepop_sessions;  // live sessions during the auth phase
  size_t auth_ops;         // per worker
  size_t issue_ops;        // per worker
  size_t resolve_ops;      // per worker
  size_t peks_corpus;      // tags, split across workers
  std::vector<size_t> workers;
};

struct PhaseStats {
  size_t ops = 0;
  double ops_per_sec = 0;
  double p50_us = 0;
  double p95_us = 0;
};

struct Point {
  size_t workers = 0;
  PhaseStats auth, issue, resolve, peks;
};

std::atomic<size_t> g_failures{0};

/// Runs `ops_per_worker` calls of `fn(worker, op)` on each of `workers`
/// threads, recording per-op latency. Workers start together.
template <typename Fn>
PhaseStats RunPhase(size_t workers, size_t ops_per_worker, Fn&& fn) {
  mws::obs::Histogram hist;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (size_t op = 0; op < ops_per_worker; ++op) {
        int64_t t0 = mws::obs::SteadyNowMicros();
        fn(w, op);
        hist.Record(
            static_cast<uint64_t>(mws::obs::SteadyNowMicros() - t0));
      }
    });
  }
  int64_t start = mws::obs::SteadyNowMicros();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  double wall_us =
      static_cast<double>(mws::obs::SteadyNowMicros() - start);
  auto snap = hist.Snapshot();
  PhaseStats stats;
  stats.ops = workers * ops_per_worker;
  stats.ops_per_sec = wall_us > 0 ? stats.ops / (wall_us / 1e6) : 0;
  stats.p50_us = snap.Percentile(0.50);
  stats.p95_us = snap.Percentile(0.95);
  return stats;
}

/// Everything both modes share: the loaded store and client-side
/// materials (one RSA pair and one password hash serve every identity —
/// the warehouse only ever stores the serialized public key).
struct LoadedCorpus {
  std::unique_ptr<mws::store::KvStore> storage;
  std::vector<std::string> identities;
  std::vector<uint64_t> sample_aids;
  mws::crypto::RsaKeyPair rsa;
  Bytes rsa_public;
  Bytes password_hash;
  Bytes auth_key;
};

LoadedCorpus LoadCorpus(const Scale& scale, mws::util::SimulatedClock& clock,
                        mws::util::DeterministicRandom& rng) {
  LoadedCorpus corpus;
  corpus.storage = mws::store::KvStore::Open({.path = ""}).value();
  corpus.rsa = mws::crypto::RsaGenerateKeyPair(768, rng).value();
  corpus.rsa_public =
      mws::crypto::SerializeRsaPublicKey(corpus.rsa.public_key);
  corpus.password_hash = mws::wire::HashPassword("pw");
  corpus.auth_key = mws::wire::DeriveAuthKey(corpus.password_hash,
                                             mws::crypto::CipherKind::kDes);
  // Registration runs through the service so the stored records are
  // exactly what production writes.
  mws::mws::MwsService loader(corpus.storage.get(), Bytes(32, 0x5a), &clock,
                              &rng);
  corpus.identities.reserve(scale.identities);
  int64_t t0 = mws::obs::SteadyNowMicros();
  for (size_t i = 0; i < scale.identities; ++i) {
    corpus.identities.push_back("RC" + std::to_string(i));
    const std::string& id = corpus.identities.back();
    if (!loader
             .RegisterReceivingClient(id, corpus.password_hash,
                                      corpus.rsa_public)
             .ok()) {
      std::fprintf(stderr, "register failed at %zu\n", i);
      std::abort();
    }
    auto aid = loader.GrantAttribute(id, "A" + std::to_string(i % 64));
    if (!aid.ok()) {
      std::fprintf(stderr, "grant failed at %zu\n", i);
      std::abort();
    }
    if (i % 97 == 0) corpus.sample_aids.push_back(aid.value());
    if ((i + 1) % 100000 == 0) {
      std::printf("  loaded %zu identities...\n", i + 1);
    }
  }
  std::printf("loaded %zu identities + grants in %.1fs\n", scale.identities,
              (mws::obs::SteadyNowMicros() - t0) / 1e6);
  return corpus;
}

mws::wire::RcAuthRequest BuildAuthRequest(const LoadedCorpus& corpus,
                                          const std::string& identity,
                                          int64_t now,
                                          mws::util::RandomSource& rng) {
  mws::wire::RcAuthPlain plain;
  plain.rc_identity = identity;
  plain.timestamp_micros = now;
  plain.client_nonce = rng.Generate(16);
  mws::wire::RcAuthRequest request;
  request.rc_identity = identity;
  request.rsa_public_key = corpus.rsa_public;
  request.auth_ciphertext =
      mws::crypto::CbcEncrypt(mws::crypto::CipherKind::kDes, corpus.auth_key,
                              plain.Encode(), rng)
          .value();
  return request;
}

/// One (mode, workers) sweep point over a live service.
Point RunPoint(mws::mws::MwsService& service, const LoadedCorpus& corpus,
               const Scale& scale, size_t workers,
               mws::util::SimulatedClock& clock, const mws::ibe::Peks& peks,
               const std::vector<mws::ibe::Peks::Tag>& tags,
               const mws::ibe::Peks::Trapdoor& trapdoor,
               size_t expected_matches) {
  Point point;
  point.workers = workers;
  const size_t n = corpus.identities.size();

  // --- auth handshake ---
  std::vector<std::vector<mws::wire::RcAuthRequest>> pools(workers);
  {
    mws::util::DeterministicRandom pool_rng(9000 + workers);
    for (size_t w = 0; w < workers; ++w) {
      pools[w].reserve(scale.auth_ops);
      for (size_t i = 0; i < scale.auth_ops; ++i) {
        size_t idx = (w * scale.auth_ops + i) * 131 % n;
        pools[w].push_back(BuildAuthRequest(corpus, corpus.identities[idx],
                                            clock.NowMicros(), pool_rng));
      }
    }
  }
  point.auth = RunPhase(workers, scale.auth_ops, [&](size_t w, size_t op) {
    auto response = service.Authenticate(pools[w][op]);
    if (!response.ok()) {
      g_failures.fetch_add(1);
      return;
    }
    auto session = service.gatekeeper().GetSession(response->session_id);
    if (!session.ok()) g_failures.fetch_add(1);
    service.gatekeeper().CloseSession(response->session_id);
  });

  // --- token issuance (GrantsFor + IssueToken) ---
  point.issue = RunPhase(workers, scale.issue_ops, [&](size_t w, size_t op) {
    const std::string& id =
        corpus.identities[(w * scale.issue_ops + op) * 257 % n];
    auto grants = service.mms().GrantsFor(id);
    if (!grants.ok() || grants->empty()) {
      g_failures.fetch_add(1);
      return;
    }
    auto token = service.token_generator().IssueToken(id, corpus.rsa_public,
                                                      grants.value());
    if (!token.ok()) g_failures.fetch_add(1);
  });

  // --- AID resolution (80% hot set / 20% cold) + identity range read ---
  const size_t hot = std::min<size_t>(64, corpus.sample_aids.size());
  point.resolve =
      RunPhase(workers, scale.resolve_ops, [&](size_t w, size_t op) {
        size_t seq = w * scale.resolve_ops + op;
        uint64_t aid = seq % 5 == 0
                           ? corpus.sample_aids[seq % corpus.sample_aids.size()]
                           : corpus.sample_aids[seq % hot];
        if (!service.policy_db().RowForAid(aid).ok()) g_failures.fetch_add(1);
        const std::string& id = corpus.identities[seq * 389 % n];
        auto rows = service.policy_db().RowsForIdentity(id);
        if (!rows.ok() || rows->empty()) g_failures.fetch_add(1);
      });

  // --- PEKS mailbox sweep: each worker tests a slice of the corpus ---
  std::atomic<size_t> matches{0};
  point.peks = RunPhase(workers, 1, [&](size_t w, size_t) {
    size_t begin = w * tags.size() / workers;
    size_t end = (w + 1) * tags.size() / workers;
    std::vector<mws::ibe::Peks::Tag> slice(tags.begin() + begin,
                                           tags.begin() + end);
    auto hits = peks.TestMany(slice, trapdoor);
    size_t found = 0;
    for (bool hit : hits) found += hit ? 1 : 0;
    matches.fetch_add(found);
  });
  // RunPhase counted one op per worker (a whole corpus slice); rescale
  // to tags tested.
  point.peks.ops_per_sec *= tags.size() / static_cast<double>(workers);
  point.peks.ops = tags.size();
  if (matches.load() != expected_matches) {
    std::fprintf(stderr, "PEKS matches %zu != expected %zu\n", matches.load(),
                 expected_matches);
    g_failures.fetch_add(1);
  }
  return point;
}

void PrintPoint(const char* mode, const Point& p) {
  std::printf(
      "%8s w=%zu | auth %8.0f/s p95 %6.0fus | issue %7.0f/s | "
      "resolve %8.0f/s p95 %6.0fus | peks %7.0f tags/s\n",
      mode, p.workers, p.auth.ops_per_sec, p.auth.p95_us, p.issue.ops_per_sec,
      p.resolve.ops_per_sec, p.resolve.p95_us, p.peks.ops_per_sec);
}

std::string PhaseJson(const char* name, const PhaseStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"%s\": {\"ops\": %zu, \"ops_per_sec\": %.1f, "
                "\"p50_us\": %.1f, \"p95_us\": %.1f}",
                name, s.ops, s.ops_per_sec, s.p50_us, s.p95_us);
  return buf;
}

int Run(bool smoke, const std::string& json_path) {
  Scale scale;
  if (smoke) {
    scale = {10'000, 500, 50, 20, 100, 32, {1, 2}};
  } else {
    scale = {1'000'000, 10'000, 400, 100, 500, 512, {1, 2, 4, 8}};
  }
  mws::util::SimulatedClock clock(1'000'000'000);
  mws::util::DeterministicRandom rng(42);
  LoadedCorpus corpus = LoadCorpus(scale, clock, rng);

  // PEKS corpus: 8 keywords round-robin, trapdoor for one of them.
  const auto& group = mws::math::GetParams(mws::math::ParamPreset::kSmall);
  mws::ibe::Peks peks(group);
  auto peks_keys = peks.GenerateKeyPair(rng);
  std::vector<mws::ibe::Peks::Tag> tags;
  size_t expected_matches = 0;
  for (size_t i = 0; i < scale.peks_corpus; ++i) {
    Bytes keyword =
        mws::util::BytesFromString("KW" + std::to_string(i % 8));
    tags.push_back(peks.MakeTag(peks_keys.public_key, keyword, rng));
    if (i % 8 == 3) ++expected_matches;
  }
  auto trapdoor = peks.MakeTrapdoor(peks_keys.secret,
                                    mws::util::BytesFromString("KW3"));

  struct ModeResult {
    const char* name;
    std::vector<Point> points;
  };
  std::vector<ModeResult> results;
  double hydration_ms = 0;

  for (bool tuned : {false, true}) {
    mws::mws::MwsOptions options;
    mws::obs::Registry metrics;
    options.metrics = &metrics;
    if (!tuned) {
      options.tuning.reference_mode = true;
      options.policy.enable_index = false;
      options.policy.aid_cache_capacity = 0;
    }
    int64_t t0 = mws::obs::SteadyNowMicros();
    mws::mws::MwsService service(corpus.storage.get(), Bytes(32, 0x5a),
                                 &clock, &rng, options);
    if (tuned) {
      hydration_ms = (mws::obs::SteadyNowMicros() - t0) / 1e3;
      std::printf("index hydration over %zu grants: %.1fms\n",
                  scale.identities, hydration_ms);
    }
    // Pre-populate the session registry so the auth phase measures the
    // marginal handshake against a realistically busy gatekeeper (in
    // reference mode every auth sweeps all of these).
    {
      mws::util::DeterministicRandom prepop_rng(7777);
      for (size_t i = 0; i < scale.prepop_sessions; ++i) {
        auto r = service.Authenticate(BuildAuthRequest(
            corpus, corpus.identities[i * 131 % corpus.identities.size()],
            clock.NowMicros(), prepop_rng));
        if (!r.ok()) {
          std::fprintf(stderr, "prepop auth failed at %zu\n", i);
          return 1;
        }
      }
    }
    ModeResult mode{tuned ? "tuned" : "baseline", {}};
    for (size_t workers : scale.workers) {
      mode.points.push_back(RunPoint(service, corpus, scale, workers, clock,
                                     peks, tags, trapdoor,
                                     expected_matches));
      PrintPoint(mode.name, mode.points.back());
    }
    results.push_back(std::move(mode));
  }

  // --- Bounded-memory sub-run: session registry hard-capped ---
  size_t bounded_cap = 256;
  size_t bounded_auths = smoke ? 1000 : 4000;
  size_t bounded_peak = 0;
  uint64_t bounded_evictions = 0;
  bool gauge_consistent = true;
  {
    mws::mws::MwsOptions options;
    mws::obs::Registry metrics;
    options.metrics = &metrics;
    options.tuning.max_sessions = bounded_cap;
    options.policy.enable_index = false;  // gatekeeper-only sub-run
    options.policy.aid_cache_capacity = 0;
    mws::mws::MwsService service(corpus.storage.get(), Bytes(32, 0x5a),
                                 &clock, &rng, options);
    mws::util::DeterministicRandom bounded_rng(31337);
    for (size_t i = 0; i < bounded_auths; ++i) {
      auto r = service.Authenticate(BuildAuthRequest(
          corpus, corpus.identities[i % corpus.identities.size()],
          clock.NowMicros(), bounded_rng));
      if (!r.ok()) {
        std::fprintf(stderr, "bounded auth failed at %zu\n", i);
        return 1;
      }
      size_t live = service.gatekeeper().ActiveSessions();
      bounded_peak = std::max(bounded_peak, live);
      auto snap = metrics.Snapshot();
      const int64_t* gauge = snap.gauge("gatekeeper.sessions");
      if (gauge == nullptr || *gauge != static_cast<int64_t>(live)) {
        gauge_consistent = false;
      }
    }
    auto snap = metrics.Snapshot();
    const uint64_t* evicted = snap.counter("gatekeeper.sessions_evicted");
    bounded_evictions = evicted != nullptr ? *evicted : 0;
  }
  std::printf(
      "\nbounded sub-run: cap %zu, %zu auths -> peak %zu sessions, "
      "%llu evictions, gauge %s\n",
      bounded_cap, bounded_auths, bounded_peak,
      static_cast<unsigned long long>(bounded_evictions),
      gauge_consistent ? "consistent" : "INCONSISTENT");

  // --- Gates ---
  const Point& base = results[0].points.back();
  const Point& tuned = results[1].points.back();
  double base_agg = base.auth.ops_per_sec + base.resolve.ops_per_sec;
  double tuned_agg = tuned.auth.ops_per_sec + tuned.resolve.ops_per_sec;
  double speedup = base_agg > 0 ? tuned_agg / base_agg : 0;
  double agg_floor = smoke ? 0.7 : 3.0;
  double p95_slack = smoke ? 5.0 : 1.0;
  double resolve_floor = smoke ? 0.7 : 2.0;
  std::printf(
      "\naggregate auth+resolution at %zu workers: tuned %.0f/s vs "
      "baseline %.0f/s -> %.2fx (floor %.1fx)\n",
      tuned.workers, tuned_agg, base_agg, speedup, agg_floor);

  bool pass = true;
  if (g_failures.load() != 0) {
    std::printf("ERROR: %zu op failures\n", g_failures.load());
    pass = false;
  }
  if (bounded_peak > bounded_cap || !gauge_consistent) {
    std::printf("ERROR: session bound or gauge violated\n");
    pass = false;
  }
  if (speedup < agg_floor) {
    std::printf("ERROR: aggregate speedup %.2fx below %.1fx floor\n", speedup,
                agg_floor);
    pass = false;
  }
  if (tuned.auth.p95_us > base.auth.p95_us * p95_slack) {
    std::printf("ERROR: tuned auth p95 %.0fus exceeds baseline %.0fus x%.1f\n",
                tuned.auth.p95_us, base.auth.p95_us, p95_slack);
    pass = false;
  }
  if (tuned.resolve.ops_per_sec < base.resolve.ops_per_sec * resolve_floor) {
    std::printf("ERROR: tuned resolution %.0f/s below baseline %.0f/s x%.1f\n",
                tuned.resolve.ops_per_sec, base.resolve.ops_per_sec,
                resolve_floor);
    pass = false;
  }

  // --- JSON ---
  std::string out = "{\n";
  out += "  \"experiment\": \"e20_controlplane\",\n";
  out += "  \"identities\": " + std::to_string(scale.identities) + ",\n";
  out += "  \"grants\": " + std::to_string(scale.identities) + ",\n";
  out += "  \"prepop_sessions\": " + std::to_string(scale.prepop_sessions) +
         ",\n";
  out += "  \"peks_corpus\": " + std::to_string(scale.peks_corpus) + ",\n";
  out += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf), "  \"index_hydration_ms\": %.1f,\n",
                hydration_ms);
  out += buf;
  out += "  \"modes\": [\n";
  for (size_t m = 0; m < results.size(); ++m) {
    out += "    {\"mode\": \"" + std::string(results[m].name) +
           "\", \"points\": [\n";
    for (size_t i = 0; i < results[m].points.size(); ++i) {
      const Point& p = results[m].points[i];
      out += "      {\"workers\": " + std::to_string(p.workers) + ", " +
             PhaseJson("auth", p.auth) + ", " + PhaseJson("issue", p.issue) +
             ", " + PhaseJson("resolve", p.resolve) + ", " +
             PhaseJson("peks", p.peks) + "}" +
             (i + 1 < results[m].points.size() ? "," : "") + "\n";
    }
    out += std::string("    ]}") + (m + 1 < results.size() ? "," : "") + "\n";
  }
  out += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"bounded\": {\"max_sessions\": %zu, \"auths\": %zu, "
                "\"peak_sessions\": %zu, \"evictions\": %llu, "
                "\"gauge_consistent\": %s},\n",
                bounded_cap, bounded_auths, bounded_peak,
                static_cast<unsigned long long>(bounded_evictions),
                gauge_consistent ? "true" : "false");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"gate\": {\"aggregate_speedup\": %.2f, \"floor\": %.1f, "
                "\"auth_p95_slack\": %.1f, \"resolve_floor\": %.1f, "
                "\"pass\": %s}\n",
                speedup, agg_floor, p95_slack, resolve_floor,
                pass ? "true" : "false");
  out += buf;
  out += "}\n";
  if (json_path.empty()) {
    std::printf("\n%s", out.c_str());
  } else {
    std::ofstream f(json_path);
    f << out;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  std::printf("=== E20: million-identity control plane ===\n\n");
  return Run(smoke, json_path);
}
