// E11 — §VI storage ablation: the prototype's flat files vs the
// log-structured KV store the paper proposes as future work ("It would
// definitely be advantageous ... to move to a database system").
// Expected shape: flat-file writes degrade linearly with table size
// (full rewrite per mutation); the KV store's appends stay flat.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "src/store/flatfile.h"
#include "src/store/kvstore.h"
#include "src/store/message_db.h"

namespace {

using mws::store::FlatFileStore;
using mws::store::KvStore;
using mws::store::MessageDb;
using mws::store::StoredMessage;
using mws::store::Table;
using mws::util::Bytes;

std::string BenchPath(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("mwsibe_bench_") + tag + "_" +
           std::to_string(::getpid())))
      .string();
}

std::unique_ptr<Table> MakeBackend(int64_t kind, const std::string& path) {
  KvStore::RemoveFiles(path);
  if (kind == 0) return std::move(KvStore::Open({.path = path}).value());
  return std::move(FlatFileStore::Open({.path = path}).value());
}

const char* BackendName(int64_t kind) {
  return kind == 0 ? "kvstore(WAL)" : "flatfile(prototype)";
}

StoredMessage SampleMessage() {
  StoredMessage m;
  m.u = Bytes(65, 1);
  m.ciphertext = Bytes(128, 2);
  m.attribute = "ELECTRIC-BAYTOWER-SV-CA";
  m.nonce = Bytes(16, 3);
  m.device_id = "ELECTRIC-METER-0";
  m.timestamp_micros = 1;
  return m;
}

/// Deposit (append) cost after `preload` messages already stored.
void BM_StoreAppend(benchmark::State& state) {
  std::string path = BenchPath("append");
  auto backend = MakeBackend(state.range(0), path);
  MessageDb db(backend.get());
  StoredMessage m = SampleMessage();
  for (int64_t i = 0; i < state.range(1); ++i) db.Append(m).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Append(m));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(BackendName(state.range(0))) + ", preload " +
                 std::to_string(state.range(1)));
  backend.reset();
  KvStore::RemoveFiles(path);
}
BENCHMARK(BM_StoreAppend)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1000})
    ->Args({1, 1000})
    ->Args({0, 4000})
    ->Args({1, 4000});

/// Point lookup by attribute at size.
void BM_StoreLookup(benchmark::State& state) {
  std::string path = BenchPath("lookup");
  auto backend = MakeBackend(state.range(0), path);
  MessageDb db(backend.get());
  StoredMessage m = SampleMessage();
  for (int64_t i = 0; i < state.range(1); ++i) db.Append(m).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.FindByAttributeAfter(
        m.attribute, static_cast<uint64_t>(state.range(1)) - 1));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string(BackendName(state.range(0))) + ", " +
                 std::to_string(state.range(1)) + " stored");
  backend.reset();
  KvStore::RemoveFiles(path);
}
BENCHMARK(BM_StoreLookup)->Args({0, 1000})->Args({1, 1000});

/// Recovery (reopen) time at size — the WAL replay vs flat-file parse.
void BM_StoreRecovery(benchmark::State& state) {
  std::string path = BenchPath("recover");
  {
    auto backend = MakeBackend(state.range(0), path);
    MessageDb db(backend.get());
    StoredMessage m = SampleMessage();
    for (int64_t i = 0; i < state.range(1); ++i) db.Append(m).value();
    backend->Flush().ok();
  }
  for (auto _ : state) {
    std::unique_ptr<Table> reopened;
    if (state.range(0) == 0) {
      reopened = std::move(KvStore::Open({.path = path}).value());
    } else {
      reopened = std::move(FlatFileStore::Open({.path = path}).value());
    }
    benchmark::DoNotOptimize(reopened->Size());
  }
  state.SetLabel(std::string(BackendName(state.range(0))) + ", " +
                 std::to_string(state.range(1)) + " msgs");
  KvStore::RemoveFiles(path);
}
BENCHMARK(BM_StoreRecovery)->Args({0, 2000})->Args({1, 2000});

/// KV store compaction at size.
void BM_KvCompaction(benchmark::State& state) {
  std::string path = BenchPath("compact");
  for (auto _ : state) {
    state.PauseTiming();
    KvStore::RemoveFiles(path);
    auto store = KvStore::Open({.path = path}).value();
    // Half the records are overwrites (dead weight).
    for (int64_t i = 0; i < state.range(0); ++i) {
      store->Put("key-" + std::to_string(i % (state.range(0) / 2)),
                 Bytes(64, 1))
          .ok();
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store->Compact());
  }
  state.SetLabel(std::to_string(state.range(0)) + " log records");
  KvStore::RemoveFiles(path);
}
BENCHMARK(BM_KvCompaction)->Arg(2000);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E11: flat-file (prototype) vs KV store (future work) ===\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
