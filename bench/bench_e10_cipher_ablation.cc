// E10 — §V.C cipher choice ("We have used DES encryption method
// throughout this protocol"): ablation of the data-encapsulation
// mechanism. Sweeps message size for
//   * hybrid IBE-KEM + DES / 3DES / AES-128 CBC (the paper's design and
//     the modern variants),
//   * pure BasicIdent (XOR pad over the whole message; one pairing, no
//     block cipher),
//   * FullIdent (CCA-secure variant).
// The expected shape: one pairing dominates at small sizes (all
// variants tie); at large sizes the DEM cipher's per-byte cost decides.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/crypto/drbg.h"
#include "src/crypto/modes.h"
#include "src/ibe/attribute.h"
#include "src/ibe/bf_ibe.h"
#include "src/ibe/hybrid.h"
#include "src/math/params.h"

namespace {

using namespace mws::ibe;
using mws::crypto::CipherKind;
using mws::crypto::CipherKindName;
using mws::crypto::HmacDrbg;
using mws::math::GetParams;
using mws::math::ParamPreset;
using mws::util::Bytes;
using mws::util::BytesFromString;

struct Setup {
  const mws::math::TypeAParams& group;
  BfIbe ibe;
  HmacDrbg rng;
  SystemParams params;
  MasterKey master;

  Setup()
      : group(GetParams(ParamPreset::kSmall)),
        ibe(group),
        rng(BytesFromString("e10-bench")) {
    auto setup = ibe.Setup(rng);
    params = setup.first;
    master = setup.second;
  }
};

Setup& Shared() {
  static Setup& instance = *new Setup();
  return instance;
}

void BM_HybridSeal(benchmark::State& state) {
  Setup& s = Shared();
  HybridSealer sealer(s.group, static_cast<CipherKind>(state.range(0)));
  MessageNonce nonce = GenerateNonce(s.rng);
  Bytes message(state.range(1), 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sealer.Seal(s.params, "ATTR", nonce, message, s.rng));
  }
  state.SetBytesProcessed(state.iterations() * state.range(1));
  state.SetLabel(std::string(CipherKindName(
                     static_cast<CipherKind>(state.range(0)))) +
                 " dem, " + std::to_string(state.range(1)) + " B");
}
BENCHMARK(BM_HybridSeal)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({0, 4096})
    ->Args({1, 4096})
    ->Args({2, 4096})
    ->Args({0, 65536})
    ->Args({1, 65536})
    ->Args({2, 65536});

void BM_HybridOpen(benchmark::State& state) {
  Setup& s = Shared();
  HybridSealer sealer(s.group, static_cast<CipherKind>(state.range(0)));
  MessageNonce nonce = GenerateNonce(s.rng);
  Bytes message(state.range(1), 'm');
  auto ct = sealer.Seal(s.params, "ATTR", nonce, message, s.rng).value();
  IbePrivateKey key =
      s.ibe.Extract(s.master, DeriveIdentity("ATTR", nonce));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sealer.Open(key, ct));
  }
  state.SetBytesProcessed(state.iterations() * state.range(1));
  state.SetLabel(std::string(CipherKindName(
                     static_cast<CipherKind>(state.range(0)))) +
                 " dem, " + std::to_string(state.range(1)) + " B");
}
BENCHMARK(BM_HybridOpen)
    ->Args({0, 64})
    ->Args({2, 64})
    ->Args({0, 65536})
    ->Args({2, 65536});

void BM_PureBasicIdent(benchmark::State& state) {
  Setup& s = Shared();
  Bytes id = BytesFromString("ATTR-nonce");
  Bytes message(state.range(0), 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.ibe.Encrypt(s.params, id, message, s.rng));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel("XOR pad, " + std::to_string(state.range(0)) + " B");
}
BENCHMARK(BM_PureBasicIdent)->Arg(64)->Arg(4096)->Arg(65536);

void BM_FullIdent(benchmark::State& state) {
  Setup& s = Shared();
  Bytes id = BytesFromString("ATTR-nonce");
  Bytes message(state.range(0), 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.ibe.EncryptFull(s.params, id, message, s.rng));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel("FullIdent CCA, " + std::to_string(state.range(0)) + " B");
}
BENCHMARK(BM_FullIdent)->Arg(64)->Arg(4096)->Arg(65536);

/// Raw DEM throughput without the KEM, to expose the cipher gap that the
/// pairing otherwise masks.
void BM_DemOnly(benchmark::State& state) {
  Setup& s = Shared();
  CipherKind kind = static_cast<CipherKind>(state.range(0));
  Bytes key = s.rng.Generate(mws::crypto::KeyLength(kind));
  Bytes message(state.range(1), 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mws::crypto::CbcEncrypt(kind, key, message, s.rng));
  }
  state.SetBytesProcessed(state.iterations() * state.range(1));
  state.SetLabel(CipherKindName(kind));
}
BENCHMARK(BM_DemOnly)
    ->Args({0, 65536})
    ->Args({1, 65536})
    ->Args({2, 65536});

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E10: DEM cipher ablation (paper fixes DES) ===\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
