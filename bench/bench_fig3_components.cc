// E4 — Paper Fig. 3: the high-level architecture, component by
// component. Microbenchmarks for each box in the diagram: Smart Device
// encryption, SDA verification, Message Database store/fetch, MMS
// resolution, Token Generator, Gatekeeper, PKG extraction.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "src/crypto/drbg.h"
#include "src/ibe/bf_ibe.h"
#include "src/sim/scenario.h"

namespace {

using mws::sim::UtilityScenario;
using mws::util::Bytes;
using mws::util::BytesFromString;

std::unique_ptr<UtilityScenario> NewScenario() {
  return std::move(UtilityScenario::Create({}).value());
}

/// Smart Device (client side): seal + MAC, no network or server work.
void BM_Component_SmartDeviceSeal(benchmark::State& state) {
  auto s = NewScenario();
  auto& device = s->devices()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.BuildDeposit(
        UtilityScenario::kElectricAttr, BytesFromString("kWh=1.0")));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("warm: P_pub precompute tables amortized");
}
BENCHMARK(BM_Component_SmartDeviceSeal);

/// The cold counterpart: the device's very first seal after receiving
/// system params pays the P_pub table construction; here every
/// iteration rebuilds the tables before encapsulating.
void BM_Component_SmartDeviceSealCold(benchmark::State& state) {
  auto s = NewScenario();
  mws::ibe::SystemParams params = s->pkg().PublicParams();
  mws::ibe::IbeKem kem(*params.group, 8);
  mws::crypto::HmacDrbg rng(BytesFromString("fig3-cold"));
  Bytes attr = BytesFromString(UtilityScenario::kElectricAttr);
  for (auto _ : state) {
    params.ClearPrecompute();
    params.Precompute();
    benchmark::DoNotOptimize(kem.Encapsulate(params, attr, rng));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("cold: P_pub table construction + encapsulation");
}
BENCHMARK(BM_Component_SmartDeviceSealCold);

/// Smart Device Authenticator: MAC + freshness verification only.
void BM_Component_SdaVerify(benchmark::State& state) {
  auto s = NewScenario();
  auto request = s->devices()[0]
                     .BuildDeposit(UtilityScenario::kElectricAttr,
                                   BytesFromString("kWh=1.0"))
                     .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s->mws().sda().Verify(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Component_SdaVerify);

/// Message Database: append.
void BM_Component_MessageDbAppend(benchmark::State& state) {
  auto s = NewScenario();
  mws::store::StoredMessage m;
  m.u = Bytes(65, 1);
  m.ciphertext = Bytes(64, 2);
  m.attribute = UtilityScenario::kElectricAttr;
  m.nonce = Bytes(16, 3);
  m.device_id = "ELECTRIC-METER-0";
  // Benchmark through the service's own db reference.
  auto& db = const_cast<mws::store::MessageDb&>(s->mws().message_db());
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Append(m));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Component_MessageDbAppend);

/// MMS: grant resolution + record fetch, with a loaded warehouse.
void BM_Component_MmsFetch(benchmark::State& state) {
  auto s = NewScenario();
  s->DepositReadings(state.range(0)).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s->mws().mms().FetchFor(UtilityScenario::kCServices, 0));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(3 * state.range(0)) + " stored messages");
}
BENCHMARK(BM_Component_MmsFetch)->Arg(1)->Arg(10)->Arg(100);

/// Gatekeeper: one full password-challenge authentication.
void BM_Component_GatekeeperAuth(benchmark::State& state) {
  auto s = NewScenario();
  auto& rc = s->company(UtilityScenario::kCServices);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rc.Authenticate());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Component_GatekeeperAuth);

/// Token Generator: mint one token (RSA seal dominates).
void BM_Component_TokenGenerator(benchmark::State& state) {
  auto s = NewScenario();
  auto& rc = s->company(UtilityScenario::kCServices);
  auto grants =
      s->mws().mms().GrantsFor(UtilityScenario::kCServices).value();
  Bytes pub = mws::crypto::SerializeRsaPublicKey(rc.public_key());
  for (auto _ : state) {
    benchmark::DoNotOptimize(s->mws().token_generator().IssueToken(
        UtilityScenario::kCServices, pub, grants));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Component_TokenGenerator);

/// PKG: raw Extract (hash-to-point + scalar multiplication).
void BM_Component_PkgExtract(benchmark::State& state) {
  auto s = NewScenario();
  uint64_t n = 0;
  for (auto _ : state) {
    Bytes identity = BytesFromString("identity-" + std::to_string(n++));
    benchmark::DoNotOptimize(s->pkg().ExtractForIdentity(identity));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Component_PkgExtract);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E4: paper Fig. 3 component microbenchmarks ===\n");
  std::printf("components: SD, SDA, MD, MMS, Gatekeeper, TG, PKG\n\n");
  // --smoke: construction of the scenario exercised the stack; skip the
  // timed runs for ctest.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
