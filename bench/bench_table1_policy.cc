// E1 — Paper Table 1: the identity–attribute–AID mapping.
//
// Regenerates the table's exact rows, then measures the policy database
// operations that back it (grant, lookup, revoke, per-identity scan) as
// the table grows.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/store/kvstore.h"
#include "src/store/policy_db.h"

namespace {

using mws::store::KvStore;
using mws::store::PolicyDb;
using mws::store::PolicyRow;

void PrintPaperTable1() {
  auto table = KvStore::Open({.path = ""}).value();
  PolicyDb db(table.get());
  // The paper's exact five grants, in its order.
  db.Grant("IDRC1", "A1").value();
  db.Grant("IDRC1", "A2").value();
  db.Grant("IDRC2", "A1").value();
  db.Grant("IDRC3", "A3").value();
  db.Grant("IDRC4", "A4").value();
  std::printf("TABLE 1  Identity - Attribute Mapping\n");
  std::printf("  %-10s %-10s %s\n", "Identity", "Attribute", "Attribute ID");
  const auto rows = db.AllRows().value();
  for (const PolicyRow& row : rows) {
    std::printf("  %-10s %-10s %llu\n", row.identity.c_str(),
                row.attribute.c_str(),
                static_cast<unsigned long long>(row.aid));
  }
  std::printf("\n");
}

/// A policy table with `identities` RCs x `attrs_per` grants each.
struct Fixture {
  std::unique_ptr<KvStore> table;
  std::unique_ptr<PolicyDb> db;
};

Fixture BuildTable(int64_t identities, int64_t attrs_per) {
  Fixture f;
  f.table = KvStore::Open({.path = ""}).value();
  f.db = std::make_unique<PolicyDb>(f.table.get());
  for (int64_t i = 0; i < identities; ++i) {
    for (int64_t a = 0; a < attrs_per; ++a) {
      f.db->Grant("RC-" + std::to_string(i), "ATTR-" + std::to_string(a))
          .value();
    }
  }
  return f;
}

void BM_PolicyGrant(benchmark::State& state) {
  auto table = KvStore::Open({.path = ""}).value();
  PolicyDb db(table.get());
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.Grant("RC-" + std::to_string(i), "A").value());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyGrant);

void BM_PolicyRowsForIdentity(benchmark::State& state) {
  Fixture f = BuildTable(state.range(0), state.range(1));
  int64_t i = 0;
  for (auto _ : state) {
    auto rows = f.db->RowsForIdentity(
        "RC-" + std::to_string(i++ % state.range(0)));
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(state.range(0)) + " identities x " +
                 std::to_string(state.range(1)) + " attrs");
}
BENCHMARK(BM_PolicyRowsForIdentity)
    ->Args({10, 2})
    ->Args({100, 5})
    ->Args({1000, 5})
    ->Args({10000, 5});

void BM_PolicyAidLookup(benchmark::State& state) {
  Fixture f = BuildTable(state.range(0), 5);
  uint64_t aid = 1;
  uint64_t max_aid = static_cast<uint64_t>(state.range(0)) * 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.db->RowForAid(aid));
    aid = aid % max_aid + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyAidLookup)->Arg(100)->Arg(10000);

void BM_PolicyRevokeRegrant(benchmark::State& state) {
  Fixture f = BuildTable(100, 5);
  for (auto _ : state) {
    f.db->Revoke("RC-7", "ATTR-3").ok();
    benchmark::DoNotOptimize(f.db->Grant("RC-7", "ATTR-3").value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyRevokeRegrant);

void BM_PolicyHasAccess(benchmark::State& state) {
  Fixture f = BuildTable(1000, 5);
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.db->HasAccess("RC-" + std::to_string(i++ % 1000), "ATTR-2"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyHasAccess);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E1: paper Table 1 reproduction ===\n\n");
  PrintPaperTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
