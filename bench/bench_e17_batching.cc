// E17 — batching and amortization: end-to-end throughput of the batch
// data plane versus the single-shot protocol, swept over batch sizes.
// One electric meter deposits `--messages` readings (as DepositMessage
// calls at batch 1, as DepositMany batches otherwise), then C-Services
// drains the backlog (Retrieve + per-message RequestKey + DecryptMessage
// at batch 1; RetrieveChunked + DecryptAll over batch-sized slices
// otherwise).
//
// The claim under test (DESIGN.md §12): batching amortizes the per-item
// costs — one service round trip and one MessageDb lock acquisition per
// batch, one RequestKeysBatch extraction sharing a Montgomery batch
// inversion, and a DecryptAll worker pool fanning the pairings — while
// every plaintext stays bit-identical to the single-shot path. The
// sweep asserts that equivalence directly.
//
// Each batch size runs under two network profiles:
//
//   * loopback — the raw in-process cost. Dominated by the per-message
//     pairing (~0.3ms) and per-identity extraction (~0.15ms), which no
//     batch size can amortize away, so the speedup here is modest.
//   * wan — the paper's deployment shape (utility company reaching the
//     warehouse across a WAN), reproduced on loopback by realizing the
//     modeled 20ms round-trip latency (set_realize_network). This is
//     where batching earns its keep: batch 1 pays one round trip per
//     message, batch 64 pays one per batch. The >= 3x acceptance bar
//     for batch 64 vs batch 1 is measured on this profile.
//
// `--json=PATH` records the sweep (BENCH_e17.json); `--smoke` shortens
// the run for ctest and exits non-zero if batch-64 retrieve+decrypt
// throughput regresses: below 0.8x single-shot on loopback (generous —
// batching must never cost throughput) or below 2x on the WAN profile
// (where the full-run bar is >= 3x).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/sim/scenario.h"

namespace {

using mws::sim::UtilityScenario;
using mws::util::Bytes;

struct Phase {
  double seconds = 0.0;
  double msgs_per_sec = 0.0;
};

struct NetworkProfile {
  const char* name;
  mws::wire::NetworkModel model;
  bool realize;  // sleep the modeled latency instead of only charging it
};

struct SweepResult {
  size_t batch = 0;
  const char* network = "loopback";
  Phase deposit;
  Phase fetch;  // retrieve + key extraction + decryption
  /// (message id, plaintext) in retrieval order — the equivalence
  /// witness compared across batch sizes and network profiles.
  std::vector<std::pair<uint64_t, Bytes>> plain;
};

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One full deposit-then-drain cycle at batch size `batch` under the
/// given network profile.
SweepResult RunSweep(size_t batch, size_t total,
                     const NetworkProfile& network) {
  SweepResult result;
  result.batch = batch;
  result.network = network.name;

  UtilityScenario::Options options;
  options.network = network.model;
  auto scenario = UtilityScenario::Create(options).value();
  // Realized after Create() so registration traffic stays instant; no
  // calls are in flight yet, which is what set-before-serving requires.
  scenario->transport().set_realize_network(network.realize);
  mws::client::SmartDevice& device = scenario->devices().front();

  // Generate the workload up front on the shared deterministic schedule
  // so every sweep deposits byte-identical payloads regardless of how
  // they are grouped on the wire.
  std::vector<std::pair<mws::ibe::Attribute, Bytes>> readings;
  readings.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    scenario->clock().AdvanceMicros(1'000'000);
    mws::sim::MeterReading reading =
        scenario->workload().Next(device.device_id(),
                                  mws::sim::MeterClass::kElectric,
                                  scenario->clock().NowMicros());
    readings.emplace_back(UtilityScenario::kElectricAttr,
                          scenario->workload().Pad(reading.ToPayload()));
  }

  const auto deposit_start = std::chrono::steady_clock::now();
  if (batch <= 1) {
    for (const auto& [attribute, payload] : readings) {
      device.DepositMessage(attribute, payload).value();
    }
  } else {
    for (size_t offset = 0; offset < readings.size(); offset += batch) {
      const size_t count = std::min(batch, readings.size() - offset);
      std::vector<std::pair<mws::ibe::Attribute, Bytes>> group(
          readings.begin() + offset, readings.begin() + offset + count);
      auto outcomes = device.DepositMany(group).value();
      for (const auto& outcome : outcomes) outcome.value();
    }
  }
  result.deposit.seconds = Seconds(deposit_start);
  result.deposit.msgs_per_sec = total / result.deposit.seconds;

  mws::client::ReceivingClient& rc =
      scenario->company(UtilityScenario::kCServices);
  const auto fetch_start = std::chrono::steady_clock::now();
  if (!rc.Authenticate().ok()) std::abort();
  if (batch <= 1) {
    // The single-shot protocol: one retrieve, then one PKG round trip
    // and one decryption per message.
    auto response = rc.Retrieve().value();
    if (!rc.AuthenticateWithPkg(response.token).ok()) std::abort();
    for (const mws::wire::RetrievedMessage& m : response.messages) {
      auto key = rc.RequestKey(m.aid, m.nonce).value();
      result.plain.emplace_back(m.message_id,
                                rc.DecryptMessage(m, key).value());
    }
  } else {
    // The batch plane: chunked retrieval, then DecryptAll over
    // batch-sized slices (keys batched, pairings fanned out).
    auto response = rc.RetrieveChunked(0, 0, 0, batch).value();
    if (!rc.AuthenticateWithPkg(response.token).ok()) std::abort();
    for (size_t offset = 0; offset < response.messages.size();
         offset += batch) {
      const size_t count = std::min(batch, response.messages.size() - offset);
      std::vector<mws::wire::RetrievedMessage> slice(
          response.messages.begin() + offset,
          response.messages.begin() + offset + count);
      std::vector<mws::client::ReceivedMessage> decrypted =
          rc.DecryptAll(slice).value();
      for (mws::client::ReceivedMessage& m : decrypted) {
        result.plain.emplace_back(m.message_id, std::move(m.plaintext));
      }
    }
  }
  result.fetch.seconds = Seconds(fetch_start);
  result.fetch.msgs_per_sec = result.plain.size() / result.fetch.seconds;
  return result;
}

void PrintSweep(const SweepResult& s) {
  std::printf("%-8s batch %4zu   deposit %8.1f msg/s (%.3fs)   "
              "retrieve+decrypt %8.1f msg/s (%.3fs)\n",
              s.network, s.batch, s.deposit.msgs_per_sec, s.deposit.seconds,
              s.fetch.msgs_per_sec, s.fetch.seconds);
}

const SweepResult* FindSweep(const std::vector<SweepResult>& sweeps,
                             const char* network, size_t batch) {
  for (const SweepResult& s : sweeps) {
    if (s.batch == batch && std::strcmp(s.network, network) == 0) return &s;
  }
  return nullptr;
}

double FetchSpeedup(const std::vector<SweepResult>& sweeps,
                    const char* network) {
  const SweepResult* b1 = FindSweep(sweeps, network, 1);
  const SweepResult* b64 = FindSweep(sweeps, network, 64);
  if (b1 == nullptr || b64 == nullptr) return 0.0;
  return b64->fetch.msgs_per_sec / b1->fetch.msgs_per_sec;
}

int Run(bool smoke, const std::string& json_path) {
  const size_t messages = smoke ? 64 : 256;
  const std::vector<size_t> batches =
      smoke ? std::vector<size_t>{1, 64} : std::vector<size_t>{1, 8, 64, 256};
  const NetworkProfile profiles[] = {
      {"loopback", mws::wire::NetworkModel::Loopback(), false},
      {"wan", mws::wire::NetworkModel::Wan(), true},
  };
  std::printf("%zu messages per sweep, %u hardware threads\n\n", messages,
              std::thread::hardware_concurrency());

  std::vector<SweepResult> sweeps;
  for (const NetworkProfile& profile : profiles) {
    for (size_t batch : batches) {
      sweeps.push_back(RunSweep(batch, messages, profile));
      PrintSweep(sweeps.back());
    }
  }

  // Equivalence across the sweep: every batch size, under every network
  // profile, must deliver the same (id, plaintext) sequence bit for bit.
  for (size_t i = 1; i < sweeps.size(); ++i) {
    if (sweeps[i].plain != sweeps[0].plain) {
      std::fprintf(stderr,
                   "FAIL: %s batch %zu plaintexts differ from %s batch %zu\n",
                   sweeps[i].network, sweeps[i].batch, sweeps[0].network,
                   sweeps[0].batch);
      return 1;
    }
  }
  std::printf("\nequivalence: all %zu sweeps bit-identical\n", sweeps.size());

  const double loopback_speedup = FetchSpeedup(sweeps, "loopback");
  const double wan_speedup = FetchSpeedup(sweeps, "wan");
  std::printf("batch 64 vs 1 retrieve+decrypt: %.2fx loopback, %.2fx wan\n",
              loopback_speedup, wan_speedup);

  std::string out = "{\n";
  out += "  \"experiment\": \"e17_batching\",\n";
  out += "  \"messages\": " + std::to_string(messages) + ",\n";
  out += "  \"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  out += "  \"sweeps\": [\n";
  for (size_t i = 0; i < sweeps.size(); ++i) {
    const SweepResult& s = sweeps[i];
    char buf[288];
    std::snprintf(buf, sizeof(buf),
                  "    {\"network\": \"%s\", \"batch\": %zu, "
                  "\"deposit_msgs_per_sec\": %.1f, "
                  "\"fetch_msgs_per_sec\": %.1f, \"deposit_seconds\": %.4f, "
                  "\"fetch_seconds\": %.4f}%s\n",
                  s.network, s.batch, s.deposit.msgs_per_sec,
                  s.fetch.msgs_per_sec, s.deposit.seconds, s.fetch.seconds,
                  i + 1 < sweeps.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"fetch_speedup_batch64_vs_1\": %.2f,\n"
                "  \"fetch_speedup_batch64_vs_1_loopback\": %.2f,\n"
                "  \"headline_network\": \"wan\",\n",
                wan_speedup, loopback_speedup);
  out += buf;
  out += "  \"equivalence\": \"bit-identical\"\n";
  out += "}\n";
  if (json_path.empty()) {
    std::printf("\n%s", out.c_str());
  } else {
    std::ofstream f(json_path);
    f << out;
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // Smoke regression gates. Loopback: batching must never cost
  // throughput (0.6x keeps a loaded CI machine from flaking the check
  // while still catching a batch path that fell off its fast path).
  // WAN: the round-trip amortization must survive — 2x is generous
  // against the >= 3x full-run bar.
  if (smoke && loopback_speedup < 0.6) {
    std::fprintf(stderr,
                 "FAIL: loopback batch-64 retrieve+decrypt %.2fx slower "
                 "than single-shot\n",
                 loopback_speedup);
    return 1;
  }
  if (smoke && wan_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: wan batch-64 retrieve+decrypt speedup %.2fx below "
                 "the 2x smoke floor\n",
                 wan_speedup);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  std::printf("=== E17: batching and amortization ===\n\n");
  return Run(smoke, json_path);
}
