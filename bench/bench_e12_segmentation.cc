// E12 — §VIII message segmentation (the paper's future-work feature,
// implemented here): a reading split into per-attribute segments (e.g.
// consumption / errors / events for different stakeholders) vs one
// monolithic message. Measures the sender-side overhead (k seals = k
// pairings) and the receiver-side selectivity win (decrypt only your
// segment).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/sim/scenario.h"

namespace {

using mws::sim::UtilityScenario;
using mws::util::Bytes;
using mws::util::BytesFromString;

/// Sender: deposit one reading as `k` attribute-scoped segments.
void BM_Segmented_Deposit(benchmark::State& state) {
  auto s = UtilityScenario::Create({}).value();
  auto& device = s->devices()[0];
  const int64_t segments = state.range(0);
  // Pre-grant segment attributes to C-Services.
  for (int64_t k = 0; k < segments; ++k) {
    s->mws()
        .GrantAttribute(UtilityScenario::kCServices,
                        "SEGMENT-" + std::to_string(k))
        .value();
  }
  Bytes part = BytesFromString("segment-payload kWh=1.0 fragment");
  for (auto _ : state) {
    for (int64_t k = 0; k < segments; ++k) {
      benchmark::DoNotOptimize(
          device.DepositMessage("SEGMENT-" + std::to_string(k), part));
    }
  }
  state.SetItemsProcessed(state.iterations() * segments);
  state.SetLabel(std::to_string(segments) + " segments");
}
BENCHMARK(BM_Segmented_Deposit)->Arg(1)->Arg(3)->Arg(8);

/// Receiver selectivity: a stakeholder granted only one of k segment
/// attributes pays one extraction regardless of k.
void BM_Segmented_SelectiveRetrieve(benchmark::State& state) {
  auto s = UtilityScenario::Create({}).value();
  auto& device = s->devices()[0];
  const int64_t segments = state.range(0);
  // WATER-RESOURCES-CO gets exactly one segment attribute.
  s->mws()
      .GrantAttribute(UtilityScenario::kWaterResources, "SEGMENT-0")
      .value();
  Bytes part = BytesFromString("segment-payload kWh=1.0 fragment");
  for (int64_t k = 0; k < segments; ++k) {
    device.DepositMessage("SEGMENT-" + std::to_string(k), part).value();
  }
  auto& rc = s->company(UtilityScenario::kWaterResources);
  for (auto _ : state) {
    auto messages = rc.FetchAndDecrypt();
    if (messages->size() != 1u) {
      state.SkipWithError("selectivity violated");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("1 of " + std::to_string(segments) + " segments readable");
}
BENCHMARK(BM_Segmented_SelectiveRetrieve)->Arg(1)->Arg(3)->Arg(8);

/// The monolithic baseline: same total payload, single attribute, so a
/// stakeholder needing any part must be granted (and decrypt) all of it.
void BM_Monolithic_Deposit(benchmark::State& state) {
  auto s = UtilityScenario::Create({}).value();
  auto& device = s->devices()[0];
  Bytes whole(static_cast<size_t>(state.range(0)) * 33, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        device.DepositMessage(UtilityScenario::kElectricAttr, whole));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("1 message = " + std::to_string(state.range(0)) +
                 " segments' payload");
}
BENCHMARK(BM_Monolithic_Deposit)->Arg(1)->Arg(3)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E12: message segmentation (paper future work §VIII) ===\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
