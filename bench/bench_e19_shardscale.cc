// E19 — sharded warehouse soak: one message stream pushed through the
// consistent-hash router at 1/2/4/8 shards, with retention pruning and
// WAL compaction running against live traffic, then crash-restart of
// every shard to measure recovery cost.
//
// Two claims under test (DESIGN.md §14):
//   1. Aggregate deposit capacity scales with the shard count. The
//      harness is a single process on (possibly) a single core, so
//      capacity is measured the way a sharded deployment realizes it:
//      each deposit's measured service time is charged to the timeline
//      of the shard that served it, and the fleet's makespan is the
//      busiest shard's total — shards are independent nodes in the
//      deployment this models, so wall-clock on N nodes is max, not
//      sum. Gate (full mode): ≥3x aggregate throughput at 4 shards
//      vs 1.
//   2. Checkpoint compaction makes recovery O(live set), not O(full
//      history). After the soak prunes 90% retention, a compacted
//      shard must reopen ≥10x faster than the same workload replayed
//      from an uncompacted WAL. Gate (full mode): ≥10x.
//
// Deposits are synthetic: random u/ciphertext under a real HMAC with a
// registered device key. The warehouse is ciphertext-opaque — deposit
// cost is MAC verify + dedup + store append, identical for garbage and
// genuine IBE ciphertexts — so the soak exercises the full admission
// path without paying a pairing per message. Retrieval sweeps run
// against a real authenticated company session (tokens, sessions, and
// the router's merge are all genuine); only decryption is skipped.
//
// `--smoke` shrinks the stream for ctest; `--json=PATH` records the
// sweep (BENCH_e19.json).

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "src/crypto/hmac.h"
#include "src/sim/sharded.h"
#include "src/store/kvstore.h"
#include "src/wire/messages.h"
#include "src/wire/router.h"

namespace {

using mws::sim::ShardedWarehouse;
using mws::util::Bytes;

constexpr size_t kAttrCount = 256;  // deposit key space
constexpr size_t kGrantCount = 32;  // subset the company retrieves
constexpr char kDeviceId[] = "E19-SD";

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<std::string> MakeAttributes() {
  std::vector<std::string> attrs;
  attrs.reserve(kAttrCount);
  for (size_t i = 0; i < kAttrCount; ++i) {
    attrs.push_back("FEEDER-" + std::to_string(i));
  }
  return attrs;
}

/// Cheap deterministic byte stream for synthetic ciphertexts.
struct XorShift {
  uint64_t state = 0x9e3779b97f4a7c15ull;
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  Bytes Fill(size_t n) {
    Bytes out(n);
    for (size_t i = 0; i < n; i += 8) {
      uint64_t v = Next();
      std::memcpy(out.data() + i, &v, std::min<size_t>(8, n - i));
    }
    return out;
  }
};

[[noreturn]] void Die(const std::string& what, const mws::util::Status& s) {
  std::fprintf(stderr, "FATAL: %s: %s\n", what.c_str(),
               std::string(s.message()).c_str());
  std::exit(2);
}

struct SoakResult {
  size_t shards = 0;
  size_t messages = 0;
  double deposit_wall_s = 0;    // full loop incl. client-side stamping
  double makespan_s = 0;        // busiest shard's service-time total
  double throughput_per_s = 0;  // messages / makespan
  double p50_us = 0;
  double p99_us = 0;
  double retrieve_s = 0;
  size_t retrieved = 0;
  size_t pruned = 0;
  size_t retained = 0;
  double compact_s = 0;
  double reopen_max_s = 0;  // slowest shard's recovery (per-node reopen)
  size_t checkpoint_records = 0;
  size_t replayed_records = 0;
};

/// One full soak at `shards` shards. With `compaction` false the store
/// never checkpoints (threshold 0, no CompactAll) — the reopen number
/// is then the full-history WAL replay this bench's compacted configs
/// are measured against.
SoakResult RunSoak(size_t shards, size_t messages, const std::string& base,
                   bool compaction) {
  ShardedWarehouse::Options options;
  options.shard_count = shards;
  options.store_path_base = base;
  options.compact_threshold_bytes = compaction ? 32u * 1024 * 1024 : 0;
  for (size_t s = 0; s < shards; ++s) {
    mws::store::KvStore::RemoveFiles(base + ".s" + std::to_string(s));
  }
  auto created = ShardedWarehouse::Create(options);
  if (!created.ok()) Die("create warehouse", created.status());
  std::unique_ptr<ShardedWarehouse> warehouse = std::move(created.value());

  const std::vector<std::string> attrs = MakeAttributes();
  XorShift prng;
  const Bytes mac_key = prng.Fill(32);
  if (auto s = warehouse->RegisterDevice(kDeviceId, mac_key); !s.ok()) {
    Die("register device", s);
  }
  std::vector<std::string> granted(attrs.begin(),
                                   attrs.begin() + kGrantCount);
  auto company = warehouse->MakeCompany("E19-RC", granted);
  if (!company.ok()) Die("make company", company.status());
  std::set<std::string> granted_set(granted.begin(), granted.end());

  // Balance by construction: message i goes to shard i % N, cycling
  // through that shard's attributes. Real deployments balance offered
  // load across shards; a skewed-key experiment would vary this.
  std::vector<std::vector<const std::string*>> shard_attrs(shards);
  for (const std::string& attr : attrs) {
    shard_attrs[warehouse->router().map().ShardFor(attr)].push_back(&attr);
  }
  for (size_t s = 0; s < shards; ++s) {
    if (shard_attrs[s].empty()) {
      Die("attribute space leaves shard " + std::to_string(s) + " empty",
          mws::util::Status::Internal("rebalance kAttrCount"));
    }
  }

  SoakResult result;
  result.shards = shards;
  result.messages = messages;

  // --- Deposit soak ---
  const int64_t stamp_micros = warehouse->clock().NowMicros();
  std::vector<double> busy_us(shards, 0.0);
  std::vector<uint32_t> latencies;
  latencies.reserve(messages);
  std::vector<size_t> round_robin(shards, 0);
  size_t expected_retrieved = 0;
  uint64_t max_id = 0;
  const double wall0 = Now();
  for (size_t i = 0; i < messages; ++i) {
    const size_t shard = i % shards;
    const std::string& attr =
        *shard_attrs[shard][round_robin[shard]++ % shard_attrs[shard].size()];
    if (granted_set.count(attr) != 0) ++expected_retrieved;

    mws::wire::DepositRequest request;
    request.u = prng.Fill(32);
    request.ciphertext = prng.Fill(96);
    request.attribute = attr;
    request.nonce.resize(16);
    const uint64_t seq = static_cast<uint64_t>(i);
    std::memcpy(request.nonce.data(), &seq, sizeof(seq));
    request.device_id = kDeviceId;
    request.timestamp_micros = stamp_micros;
    request.mac =
        mws::crypto::HmacSha256(mac_key, request.AuthenticatedBytes());
    const Bytes encoded = request.Encode();

    const double t0 = Now();
    auto raw = warehouse->client_transport()->Call("mws.deposit", encoded);
    const double elapsed_us = (Now() - t0) * 1e6;
    if (!raw.ok()) Die("deposit " + std::to_string(i), raw.status());
    auto response = mws::wire::DepositResponse::Decode(raw.value());
    if (!response.ok()) Die("deposit decode", response.status());
    max_id = std::max(max_id, response.value().message_id);

    busy_us[shard] += elapsed_us;
    latencies.push_back(static_cast<uint32_t>(elapsed_us));
  }
  result.deposit_wall_s = Now() - wall0;
  result.makespan_s = *std::max_element(busy_us.begin(), busy_us.end()) / 1e6;
  result.throughput_per_s = static_cast<double>(messages) / result.makespan_s;
  std::nth_element(latencies.begin(), latencies.begin() + latencies.size() / 2,
                   latencies.end());
  result.p50_us = latencies[latencies.size() / 2];
  const size_t p99_index = latencies.size() * 99 / 100;
  std::nth_element(latencies.begin(), latencies.begin() + p99_index,
                   latencies.end());
  result.p99_us = latencies[p99_index];
  if (warehouse->TotalStored() != messages) {
    Die("stored count", mws::util::Status::Internal(
                            "expected " + std::to_string(messages) + " got " +
                            std::to_string(warehouse->TotalStored())));
  }

  // --- Retrieve-chunk sweep (real session, merged across shards) ---
  if (auto s = company.value()->Authenticate(); !s.ok()) Die("auth", s);
  const double r0 = Now();
  uint64_t after = 0;
  for (;;) {
    auto chunk = company.value()->RetrieveChunk(after, 0, 0, 2000);
    if (!chunk.ok()) Die("retrieve_chunk", chunk.status());
    result.retrieved += chunk.value().messages.size();
    if (!chunk.value().has_more) break;
    after = chunk.value().next_after_id;
  }
  result.retrieve_s = Now() - r0;
  if (result.retrieved != expected_retrieved) {
    Die("retrieve sweep",
        mws::util::Status::Internal(
            "expected " + std::to_string(expected_retrieved) + " got " +
            std::to_string(result.retrieved)));
  }

  // --- Retention prune + compaction ---
  auto pruned = warehouse->PruneThrough(max_id - max_id / 10);
  if (!pruned.ok()) Die("prune", pruned.status());
  result.pruned = pruned.value();
  result.retained = warehouse->TotalStored();
  const double c0 = Now();
  if (compaction) {
    if (auto dropped = warehouse->CompactAll(); !dropped.ok()) {
      Die("compact", dropped.status());
    }
  }
  result.compact_s = Now() - c0;

  // --- Crash-restart every shard; recovery cost is the reopen path ---
  for (size_t s = 0; s < shards; ++s) {
    const double t0 = Now();
    if (auto status = warehouse->RestartShard(s); !status.ok()) {
      Die("restart shard " + std::to_string(s), status);
    }
    result.reopen_max_s = std::max(result.reopen_max_s, Now() - t0);
    const auto& stats = warehouse->shard_store(s).recovery_stats();
    result.checkpoint_records += stats.checkpoint_records;
    result.replayed_records += stats.records_replayed;
  }
  if (warehouse->TotalStored() != result.retained) {
    Die("post-restart stored count",
        mws::util::Status::Internal("recovery lost or resurrected rows"));
  }

  warehouse.reset();
  for (size_t s = 0; s < shards; ++s) {
    mws::store::KvStore::RemoveFiles(base + ".s" + std::to_string(s));
  }
  return result;
}

int RunSweep(bool smoke, const std::string& json_path) {
  const size_t messages = smoke ? 20'000 : 1'000'000;
  std::vector<size_t> shard_counts = smoke ? std::vector<size_t>{1, 2}
                                           : std::vector<size_t>{1, 2, 4, 8};
  const std::string base =
      (std::filesystem::temp_directory_path() /
       ("bench_e19_" + std::to_string(::getpid())))
          .string();

  std::printf("%zu messages, %zu attributes (%zu granted), chunk 2000, "
              "90%% retention prune\n\n",
              messages, kAttrCount, kGrantCount);
  std::printf("%7s %10s %12s %8s %8s %9s %9s %8s %10s %10s\n", "shards",
              "wall_s", "msgs/s", "p50_us", "p99_us", "retr_s", "pruned",
              "compact", "reopen_ms", "replayed");

  std::vector<SoakResult> rows;
  for (size_t shards : shard_counts) {
    SoakResult row = RunSoak(shards, messages,
                             base + ".n" + std::to_string(shards),
                             /*compaction=*/true);
    std::printf("%7zu %10.2f %12.0f %8.0f %8.0f %9.2f %9zu %8.2f %10.1f "
                "%10zu\n",
                row.shards, row.deposit_wall_s, row.throughput_per_s,
                row.p50_us, row.p99_us, row.retrieve_s, row.pruned,
                row.compact_s, row.reopen_max_s * 1000.0,
                row.replayed_records);
    rows.push_back(row);
  }

  // The no-compaction control: same 1-shard workload, recovery must
  // replay the full WAL history (deposits AND prune tombstones).
  SoakResult control =
      RunSoak(1, messages, base + ".ctrl", /*compaction=*/false);
  std::printf("%7s %10.2f %12.0f %8.0f %8.0f %9.2f %9zu %8.2f %10.1f "
              "%10zu   (no compaction)\n",
              "1*", control.deposit_wall_s, control.throughput_per_s,
              control.p50_us, control.p99_us, control.retrieve_s,
              control.pruned, control.compact_s,
              control.reopen_max_s * 1000.0, control.replayed_records);

  const SoakResult& one = rows.front();
  const SoakResult& widest = rows.back();
  const SoakResult* four = nullptr;
  for (const SoakResult& row : rows) {
    if (row.shards == 4) four = &row;
  }
  const double scale_ref_throughput =
      (four != nullptr ? four : &widest)->throughput_per_s;
  const double speedup = scale_ref_throughput / one.throughput_per_s;
  const double reopen_speedup =
      control.reopen_max_s > 0 ? control.reopen_max_s / one.reopen_max_s : 0;
  std::printf("\naggregate speedup @%zu shards: %.2fx   "
              "reopen speedup (compaction vs full replay): %.1fx\n",
              (four != nullptr ? four : &widest)->shards, speedup,
              reopen_speedup);

  std::string out = "{\n";
  out += "  \"experiment\": \"e19_shardscale\",\n";
  out += "  \"messages\": " + std::to_string(messages) + ",\n";
  out += "  \"attributes\": " + std::to_string(kAttrCount) + ",\n";
  out += "  \"granted_attributes\": " + std::to_string(kGrantCount) + ",\n";
  out += "  \"retention\": 0.1,\n";
  out += "  \"throughput_model\": \"per-shard service-time attribution; "
         "makespan = busiest shard\",\n";
  out += "  \"results\": [\n";
  char buf[512];
  auto emit = [&](const SoakResult& r, const char* tag, bool last) {
    std::snprintf(
        buf, sizeof(buf),
        "    {\"config\": \"%s\", \"shards\": %zu, \"deposit_wall_s\": %.3f, "
        "\"makespan_s\": %.3f, \"throughput_per_s\": %.0f, "
        "\"p50_us\": %.0f, \"p99_us\": %.0f, \"retrieve_s\": %.3f, "
        "\"retrieved\": %zu, \"pruned\": %zu, \"retained\": %zu, "
        "\"compact_s\": %.3f, \"reopen_max_s\": %.4f, "
        "\"checkpoint_records\": %zu, \"replayed_records\": %zu}%s\n",
        tag, r.shards, r.deposit_wall_s, r.makespan_s, r.throughput_per_s,
        r.p50_us, r.p99_us, r.retrieve_s, r.retrieved, r.pruned, r.retained,
        r.compact_s, r.reopen_max_s, r.checkpoint_records,
        r.replayed_records, last ? "" : ",");
    out += buf;
  };
  for (size_t i = 0; i < rows.size(); ++i) {
    emit(rows[i], "compacted", false);
  }
  emit(control, "no_compaction", true);
  out += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"aggregate_speedup\": %.2f,\n"
                "  \"reopen_speedup\": %.1f\n}\n",
                speedup, reopen_speedup);
  out += buf;
  if (json_path.empty()) {
    std::printf("\n%s", out.c_str());
  } else {
    std::ofstream f(json_path);
    f << out;
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  // Gates hold only at full scale: a smoke stream is too short for the
  // fixed per-call overheads to amortize.
  if (!smoke) {
    if (four != nullptr && speedup < 3.0) {
      std::printf("\nERROR: aggregate throughput at 4 shards is %.2fx the "
                  "1-shard baseline (gate: >=3x)\n",
                  speedup);
      return 1;
    }
    if (reopen_speedup < 10.0) {
      std::printf("\nERROR: compacted reopen is only %.1fx faster than full "
                  "WAL replay (gate: >=10x)\n",
                  reopen_speedup);
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  std::printf("=== E19: sharded warehouse soak (router + compaction) ===\n\n");
  return RunSweep(smoke, json_path);
}
