// E16 — observability overhead: the cost of the metrics/tracing layer
// on the protocol hot path. Runs the same Baytower deposit+retrieve
// workload twice — once with the scenario's obs::Registry/Tracer wired
// into every component (`metrics = true`, the default) and once fully
// uninstrumented — and compares per-deposit wall-time percentiles.
//
// The claim under test (DESIGN.md §11): instrumentation is a handful of
// relaxed atomic adds per operation against millisecond-scale IBE
// arithmetic, so the enabled/disabled delta stays under 5%. Each mode
// runs `--runs` times and the best (lowest-p50) run represents it, which
// damps scheduler noise on small machines; `--json=PATH` records both
// modes (BENCH_e16.json), `--smoke` shortens for ctest, `--no-metrics`
// runs only the uninstrumented mode.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/scenario.h"

namespace {

using mws::sim::UtilityScenario;

struct ModeResult {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  uint64_t deposits = 0;
  uint64_t retrieves = 0;
};

/// One run: `messages` deposits round-robin over the fleet plus one full
/// retrieve per company, per-deposit wall time recorded into a local
/// histogram (identical in both modes, so the measurement cost cancels).
ModeResult RunOnce(bool metrics_on, size_t messages) {
  UtilityScenario::Options options;
  options.metrics = metrics_on;
  auto s = UtilityScenario::Create(options).value();

  mws::obs::Histogram wall_hist;
  ModeResult result;

  size_t device_index = 0;
  for (size_t i = 0; i < messages; ++i) {
    auto& device = s->devices()[device_index++ % s->devices().size()];
    mws::sim::MeterClass klass = mws::sim::MeterClass::kElectric;
    if (device.device_id().rfind("WATER", 0) == 0) {
      klass = mws::sim::MeterClass::kWater;
    } else if (device.device_id().rfind("GAS", 0) == 0) {
      klass = mws::sim::MeterClass::kGas;
    }
    s->clock().AdvanceMicros(1'000'000);
    mws::sim::MeterReading reading =
        s->workload().Next(device.device_id(), klass, s->clock().NowMicros());
    {
      mws::obs::ScopedTimer timer(&wall_hist);
      device
          .DepositMessage(UtilityScenario::AttributeFor(klass),
                          s->workload().Pad(reading.ToPayload()))
          .value();
    }
    ++result.deposits;
  }
  for (const std::string& name : s->company_names()) {
    s->RetrieveFor(name).value();
    ++result.retrieves;
  }

  const mws::obs::HistogramSnapshot wall = wall_hist.Snapshot();
  result.p50_us = wall.Percentile(0.50);
  result.p95_us = wall.Percentile(0.95);
  result.p99_us = wall.Percentile(0.99);
  result.mean_us = wall.Mean();
  return result;
}

/// Best-of-`runs` for one mode (lowest p50 wins — on a shared machine
/// the minimum is the least-perturbed observation).
ModeResult RunMode(bool metrics_on, size_t messages, int runs) {
  ModeResult best;
  for (int r = 0; r < runs; ++r) {
    ModeResult run = RunOnce(metrics_on, messages);
    if (r == 0 || run.p50_us < best.p50_us) best = run;
  }
  return best;
}

void PrintMode(const char* label, const ModeResult& m) {
  std::printf("%-12s %8llu deposits  p50 %8.1f us  p95 %8.1f us  "
              "p99 %8.1f us  mean %8.1f us\n",
              label, static_cast<unsigned long long>(m.deposits), m.p50_us,
              m.p95_us, m.p99_us, m.mean_us);
}

std::string ModeJson(const char* key, const ModeResult& m) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\"deposits\": %llu, \"retrieves\": %llu, "
                "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
                "\"mean_us\": %.1f}",
                key, static_cast<unsigned long long>(m.deposits),
                static_cast<unsigned long long>(m.retrieves), m.p50_us,
                m.p95_us, m.p99_us, m.mean_us);
  return buf;
}

int Run(bool smoke, bool only_off, const std::string& json_path) {
  const size_t messages = smoke ? 30 : 200;
  const int runs = smoke ? 2 : 3;
  std::printf("%zu deposits + 3 retrieves per run, best of %d runs\n\n",
              messages, runs);

  ModeResult off = RunMode(/*metrics_on=*/false, messages, runs);
  PrintMode("no-metrics", off);
  if (only_off) return 0;

  ModeResult on = RunMode(/*metrics_on=*/true, messages, runs);
  PrintMode("metrics", on);

  const double overhead_pct =
      off.p50_us > 0 ? 100.0 * (on.p50_us - off.p50_us) / off.p50_us : 0.0;
  const double mean_overhead_pct =
      off.mean_us > 0 ? 100.0 * (on.mean_us - off.mean_us) / off.mean_us : 0.0;
  std::printf("\noverhead: %+.2f%% at p50, %+.2f%% at mean\n", overhead_pct,
              mean_overhead_pct);

  std::string out = "{\n";
  out += "  \"experiment\": \"e16_observability_overhead\",\n";
  out += "  \"messages_per_run\": " + std::to_string(messages) + ",\n";
  out += "  \"runs\": " + std::to_string(runs) + ",\n";
  out += ModeJson("metrics_on", on) + ",\n";
  out += ModeJson("metrics_off", off) + ",\n";
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "  \"overhead_p50_pct\": %.2f,\n"
                "  \"overhead_mean_pct\": %.2f\n",
                overhead_pct, mean_overhead_pct);
  out += buf;
  out += "}\n";
  if (json_path.empty()) {
    std::printf("\n%s", out.c_str());
  } else {
    std::ofstream f(json_path);
    f << out;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool only_off = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-metrics") == 0) {
      only_off = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  std::printf("=== E16: observability overhead ===\n\n");
  return Run(smoke, only_off, json_path);
}
