// E18 — fleet-scale store-and-forward: a ≥1000-device metering fleet
// where every device seals its readings into a durable on-disk outbox
// and drains over a flaky link, with crash-restart churn injected at
// the two dangerous windows (power loss mid-append, power loss between
// the warehouse ack and the outbox reclaim) plus device disk_full on
// the append path.
//
// The claim under test (DESIGN.md §13): with the CRC-framed segment
// log below and (ID_SD, nonce) dedup in the MWS above, every reading
// the outbox accepted is warehoused *exactly once* under any crash /
// retry / replay interleaving the churn schedule produces — zero lost,
// zero duplicated — and end-to-end delivery latency (seal -> warehouse
// ack, simulated clock) stays bounded by the drain cadence. Reports
// per-severity delivery latency percentiles; `--json=PATH` records the
// sweep (BENCH_e18.json), `--smoke` shrinks the fleet for ctest.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/sim/fleet.h"

namespace {

using mws::sim::FleetSimulator;

struct Severity {
  const char* name;
  double link_fault_rate;   // request loss AND response drop, each
  double store_fault_rate;  // torn MWS store writes
  double disk_full_rate;    // device outbox append failures
  double crash_rate;        // each crash window, per device-round
};

FleetSimulator::Options MakeOptions(const Severity& severity,
                                    size_t devices_per_class, size_t rounds,
                                    const std::string& outbox_root) {
  FleetSimulator::Options options;
  options.scenario.devices_per_class = devices_per_class;
  options.scenario.resilience.enable = true;
  options.scenario.resilience.request_loss_rate = severity.link_fault_rate;
  options.scenario.resilience.response_drop_rate = severity.link_fault_rate;
  options.scenario.resilience.store_fault_rate = severity.store_fault_rate;
  // Steady-state delivery, not admission control: give retries room
  // (budget/deadline experiments live in the retry unit tests).
  options.scenario.resilience.retry.max_attempts = 10;
  options.scenario.resilience.retry.call_deadline_micros = 0;
  options.scenario.resilience.retry.retry_budget = 1e9;
  options.scenario.resilience.retry.budget_refund = 1.0;
  options.outbox_root = outbox_root;
  options.rounds = rounds;
  options.readings_per_round = 2;
  options.drain_batch = 32;
  options.crash_mid_enqueue_rate = severity.crash_rate;
  options.crash_before_ack_rate = severity.crash_rate;
  options.disk_full_rate = severity.disk_full_rate;
  options.max_segment_bytes = 4 * 1024;  // multi-segment queues
  return options;
}

int RunSweep(bool smoke, const std::string& json_path) {
  const size_t devices_per_class = smoke ? 4 : 334;  // 12 / 1002 devices
  const size_t rounds = smoke ? 2 : 3;
  std::vector<Severity> severities = {
      {"calm", 0.0, 0.0, 0.0, 0.0},
      {"flaky", 0.05, 0.03, 0.02, 0.10},
      {"brutal", 0.10, 0.05, 0.05, 0.20},
  };
  if (smoke) severities.resize(2);

  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("bench_e18_" + std::to_string(::getpid())))
          .string();

  std::printf("%zu devices, %zu rounds x 2 readings, drain batch 32\n\n",
              3 * devices_per_class, rounds);
  std::printf("%8s %8s %6s %8s %7s %7s %5s %4s %4s %10s %10s %10s\n",
              "severity", "enqueued", "rej", "fresh", "dedup", "crashes",
              "torn", "lost", "dup", "p50_ms", "p90_ms", "p99_ms");

  struct Row {
    Severity severity;
    FleetSimulator::Report report;
  };
  std::vector<Row> rows;
  bool violated = false;
  for (const Severity& severity : severities) {
    const std::string outbox_root = root + "/" + severity.name;
    auto fleet =
        FleetSimulator::Create(
            MakeOptions(severity, devices_per_class, rounds, outbox_root))
            .value();
    FleetSimulator::Report report = fleet->Run().value();
    std::filesystem::remove_all(outbox_root);

    std::printf(
        "%8s %8zu %6zu %8zu %7zu %7zu %5zu %4zu %4zu %10.2f %10.2f %10.2f\n",
        severity.name, report.enqueued, report.enqueue_rejected,
        report.delivered_fresh, report.dedup_absorbed,
        report.crashes_mid_enqueue + report.crashes_before_ack,
        report.torn_tails_recovered, report.lost, report.duplicates,
        report.latency_p50_us / 1000.0, report.latency_p90_us / 1000.0,
        report.latency_p99_us / 1000.0);
    if (!report.ExactlyOnce()) violated = true;
    rows.push_back({severity, report});
  }
  std::filesystem::remove_all(root);

  std::string out = "{\n";
  out += "  \"experiment\": \"e18_fleet\",\n";
  out += "  \"devices\": " + std::to_string(3 * devices_per_class) + ",\n";
  out += "  \"rounds\": " + std::to_string(rounds) + ",\n";
  out += "  \"readings_per_round\": 2,\n";
  out += "  \"crash_windows\": [\"mid_enqueue_torn_append\", "
         "\"after_warehouse_ack_before_reclaim\"],\n";
  out += "  \"results\": [\n";
  char buf[768];
  for (size_t i = 0; i < rows.size(); ++i) {
    const Severity& s = rows[i].severity;
    const FleetSimulator::Report& r = rows[i].report;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"severity\": \"%s\", \"link_fault_rate\": %.2f, "
        "\"store_fault_rate\": %.2f, \"disk_full_rate\": %.2f, "
        "\"crash_rate\": %.2f, \"enqueued\": %zu, "
        "\"enqueue_rejected\": %zu, \"crashes_mid_enqueue\": %zu, "
        "\"crashes_before_ack\": %zu, \"torn_tails_recovered\": %zu, "
        "\"records_recovered\": %zu, \"drain_calls\": %zu, "
        "\"drain_failures\": %zu, \"settlement_passes\": %zu, "
        "\"delivered_fresh\": %zu, \"dedup_absorbed\": %zu, "
        "\"warehoused\": %zu, \"lost\": %zu, \"duplicates\": %zu, "
        "\"unexpected\": %zu, \"final_depth\": %zu, "
        "\"latency_samples\": %llu, \"latency_p50_us\": %.1f, "
        "\"latency_p90_us\": %.1f, \"latency_p99_us\": %.1f, "
        "\"latency_max_us\": %llu}%s\n",
        s.name, s.link_fault_rate, s.store_fault_rate, s.disk_full_rate,
        s.crash_rate, r.enqueued, r.enqueue_rejected, r.crashes_mid_enqueue,
        r.crashes_before_ack, r.torn_tails_recovered, r.records_recovered,
        r.drain_calls, r.drain_failures, r.settlement_passes,
        r.delivered_fresh, r.dedup_absorbed, r.warehoused, r.lost,
        r.duplicates, r.unexpected, r.final_depth,
        static_cast<unsigned long long>(r.latency_samples), r.latency_p50_us,
        r.latency_p90_us, r.latency_p99_us,
        static_cast<unsigned long long>(r.latency_max_us),
        i + 1 < rows.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  if (json_path.empty()) {
    std::printf("\n%s", out.c_str());
  } else {
    std::ofstream f(json_path);
    f << out;
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (violated) {
    std::printf("\nERROR: exactly-once delivery violated (lost, duplicated, "
                "unexpected, or undrained readings)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  std::printf("=== E18: durable-outbox fleet under crash churn ===\n\n");
  return RunSweep(smoke, json_path);
}
