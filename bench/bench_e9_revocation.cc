// E9 — §III requirement iii (revocation): what the per-message-nonce
// design costs and buys. Measures the policy flip itself, the price an
// RC pays in PKG extractions (one per message — the revocation
// mechanism's running cost), and proves the end-to-end effect.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/sim/scenario.h"

namespace {

using mws::sim::UtilityScenario;

void PrintRevocationProof() {
  std::printf("revocation effect (C-Services loses ELECTRIC):\n");
  auto s = UtilityScenario::Create({}).value();
  s->DepositReadings(1).value();
  size_t before = s->RetrieveFor(UtilityScenario::kCServices)->size();
  s->mws()
      .RevokeAttribute(UtilityScenario::kCServices,
                       UtilityScenario::kElectricAttr)
      .ok();
  s->DepositReadings(1).value();
  size_t after = s->RetrieveFor(UtilityScenario::kCServices)->size();
  std::printf("  readable before revocation: %zu of 3\n", before);
  std::printf("  readable after (3 old + 3 new deposited): %zu "
              "(electric excluded)\n\n", after);
}

/// The policy flip itself: revoke + re-grant round.
void BM_RevokeGrantRound(benchmark::State& state) {
  auto s = UtilityScenario::Create({}).value();
  for (auto _ : state) {
    s->mws()
        .RevokeAttribute(UtilityScenario::kCServices,
                         UtilityScenario::kElectricAttr)
        .ok();
    benchmark::DoNotOptimize(
        s->mws()
            .GrantAttribute(UtilityScenario::kCServices,
                            UtilityScenario::kElectricAttr)
            .value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RevokeGrantRound);

/// The running cost revocation imposes: every message needs its own PKG
/// extraction (fresh nonce => fresh key). This measures an RC draining a
/// backlog of N messages: N extract round trips + N decryptions.
void BM_PerMessageExtractionCost(benchmark::State& state) {
  auto s = UtilityScenario::Create({}).value();
  s->DepositReadings(state.range(0)).value();
  auto& rc = s->company(UtilityScenario::kWaterResources);
  for (auto _ : state) {
    auto messages = rc.FetchAndDecrypt();
    if (static_cast<int64_t>(messages->size()) != state.range(0)) {
      state.SkipWithError("unexpected message count");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(std::to_string(state.range(0)) + " msgs = " +
                 std::to_string(state.range(0)) + " extracts");
}
BENCHMARK(BM_PerMessageExtractionCost)->Arg(1)->Arg(4)->Arg(16);

/// The counterfactual WITHOUT per-message nonces: one extraction per
/// attribute, keys cached across messages. This is what the paper gave
/// up for revocation; the gap to BM_PerMessageExtractionCost is the
/// price of requirement iii.
void BM_CounterfactualSharedKey(benchmark::State& state) {
  auto s = UtilityScenario::Create({}).value();
  s->DepositReadings(state.range(0)).value();
  auto& rc = s->company(UtilityScenario::kWaterResources);
  for (auto _ : state) {
    rc.Authenticate().ok();
    auto retrieved = rc.Retrieve().value();
    rc.AuthenticateWithPkg(retrieved.token).ok();
    // One extraction (first message), reused for decryption of all —
    // decrypts succeed only for the first message; we time the protocol
    // cost shape, not correctness (which the nonce design prevents).
    auto key = rc.RequestKey(retrieved.messages[0].aid,
                             retrieved.messages[0].nonce)
                   .value();
    size_t decrypted = 0;
    for (const auto& m : retrieved.messages) {
      auto plaintext = rc.DecryptMessage(m, key);
      decrypted += plaintext.ok() ? 1 : 0;
    }
    benchmark::DoNotOptimize(decrypted);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(std::to_string(state.range(0)) + " msgs = 1 extract");
}
BENCHMARK(BM_CounterfactualSharedKey)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E9: revocation (requirement iii) ===\n\n");
  PrintRevocationProof();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
