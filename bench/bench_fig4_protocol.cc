// E5 — Paper Fig. 4: the full three-phase protocol.
//
// First prints the protocol interaction trace (the sequence the paper's
// UML diagram shows), then measures the phases end to end: deposit
// (SD–MWS), authenticate+retrieve (MWS–RC), ticket auth + key extraction
// (RC–PKG), and the complete pipeline.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/sim/scenario.h"

namespace {

using mws::sim::UtilityScenario;
using mws::util::BytesFromString;

std::unique_ptr<UtilityScenario> NewScenario() {
  UtilityScenario::Options options;
  options.devices_per_class = 1;
  return std::move(UtilityScenario::Create(options).value());
}

void PrintProtocolTrace() {
  std::printf("FIG. 4  Protocol interactions (one message, one RC)\n\n");
  auto s = NewScenario();
  auto& device = s->devices()[0];
  auto& rc = s->company(UtilityScenario::kCServices);

  std::printf("  SD  -> MWS : rP || C || (A||Nonce) || IDSD || T || MAC\n");
  auto id = device.DepositMessage(UtilityScenario::kElectricAttr,
                                  BytesFromString("kWh=1.0"));
  std::printf("  MWS        : SDA verifies MAC; stores record #%llu\n",
              static_cast<unsigned long long>(id.value()));

  std::printf("  RC  -> MWS : IDRC || PubKRC || E(HashPassword, IDRC||T||N)\n");
  rc.Authenticate().ok();
  std::printf("  MWS -> RC  : session established by Gatekeeper\n");
  auto retrieved = rc.Retrieve().value();
  std::printf("  MWS -> RC  : %zu x (rP || C || AID || Nonce) + Token\n",
              retrieved.messages.size());

  std::printf("  RC  -> PKG : IDRC || Ticket || Authenticator\n");
  rc.AuthenticateWithPkg(retrieved.token).ok();
  std::printf("  PKG        : ticket verified; session opened\n");
  const auto& m = retrieved.messages[0];
  std::printf("  RC  -> PKG : AID(%llu) || Nonce\n",
              static_cast<unsigned long long>(m.aid));
  auto key = rc.RequestKey(m.aid, m.nonce).value();
  std::printf("  PKG -> RC  : E(SecK, sI)\n");
  auto plaintext = rc.DecryptMessage(m, key).value();
  std::printf("  RC         : e(rP, sI) -> K; D(K, C) = \"%s\"\n\n",
              mws::util::StringFromBytes(plaintext).c_str());
}

/// Phase 1: one deposit (seal + MAC + SDA verify + store).
void BM_Phase1_Deposit(benchmark::State& state) {
  auto s = NewScenario();
  auto& device = s->devices()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.DepositMessage(
        UtilityScenario::kElectricAttr, BytesFromString("kWh=1.0")));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Phase1_Deposit);

/// Phase 2: RC auth + retrieve (includes token issuance).
void BM_Phase2_AuthRetrieve(benchmark::State& state) {
  auto s = NewScenario();
  s->DepositReadings(1).value();
  auto& rc = s->company(UtilityScenario::kCServices);
  for (auto _ : state) {
    rc.Authenticate().ok();
    benchmark::DoNotOptimize(rc.Retrieve());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Phase2_AuthRetrieve);

/// Phase 3: PKG ticket auth.
void BM_Phase3_PkgAuth(benchmark::State& state) {
  auto s = NewScenario();
  s->DepositReadings(1).value();
  auto& rc = s->company(UtilityScenario::kCServices);
  rc.Authenticate().ok();
  for (auto _ : state) {
    state.PauseTiming();
    auto retrieved = rc.Retrieve().value();  // fresh token per iteration
    state.ResumeTiming();
    benchmark::DoNotOptimize(rc.AuthenticateWithPkg(retrieved.token));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Phase3_PkgAuth);

/// Phase 3: one key extraction round trip (AID||Nonce -> sI).
void BM_Phase3_KeyExtraction(benchmark::State& state) {
  auto s = NewScenario();
  s->DepositReadings(1).value();
  auto& rc = s->company(UtilityScenario::kCServices);
  rc.Authenticate().ok();
  auto retrieved = rc.Retrieve().value();
  rc.AuthenticateWithPkg(retrieved.token).ok();
  const auto& m = retrieved.messages[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(rc.RequestKey(m.aid, m.nonce));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Phase3_KeyExtraction);

/// Phase 3 tail: decryption only (key in hand).
void BM_Phase3_Decrypt(benchmark::State& state) {
  auto s = NewScenario();
  s->DepositReadings(1).value();
  auto& rc = s->company(UtilityScenario::kCServices);
  rc.Authenticate().ok();
  auto retrieved = rc.Retrieve().value();
  rc.AuthenticateWithPkg(retrieved.token).ok();
  const auto& m = retrieved.messages[0];
  auto key = rc.RequestKey(m.aid, m.nonce).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rc.DecryptMessage(m, key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Phase3_Decrypt);

/// The complete pipeline: deposit one message, retrieve + decrypt it.
void BM_EndToEnd_OneMessage(benchmark::State& state) {
  auto s = NewScenario();
  auto& device = s->devices()[0];
  auto& rc = s->company(UtilityScenario::kCServices);
  uint64_t last_id = 0;
  for (auto _ : state) {
    uint64_t id = device
                      .DepositMessage(UtilityScenario::kElectricAttr,
                                      BytesFromString("kWh=1.0"))
                      .value();
    auto messages = rc.FetchAndDecrypt(last_id).value();
    benchmark::DoNotOptimize(messages);
    last_id = id;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EndToEnd_OneMessage);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E5: paper Fig. 4 protocol reproduction ===\n\n");
  PrintProtocolTrace();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
