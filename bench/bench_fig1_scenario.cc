// E2 — Paper Fig. 1: the utility-industry scenario.
//
// Prints the access matrix the figure describes (who reads which meter
// class), then benchmarks the scenario under different deployment
// network models — loopback, LAN, WAN, and a 2010 GPRS meter uplink —
// reporting both CPU time and modeled network time.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/sim/scenario.h"

namespace {

using mws::sim::MeterClass;
using mws::sim::UtilityScenario;
using mws::wire::NetworkModel;

void PrintAccessMatrix() {
  std::printf("FIG. 1  Utility scenario access matrix\n\n");
  auto s = UtilityScenario::Create({}).value();
  s->DepositReadings(1).value();
  std::printf("  %-22s %-9s %-7s %-5s\n", "", "ELECTRIC", "WATER", "GAS");
  for (const std::string& company : s->company_names()) {
    int per_class[3] = {0, 0, 0};
    auto messages = s->RetrieveFor(company).value();
    for (const auto& m : messages) {
      auto reading = mws::sim::MeterReading::FromPayload(m.plaintext);
      if (reading.ok()) per_class[static_cast<int>(reading->klass)]++;
    }
    std::printf("  %-22s %-9s %-7s %-5s\n", company.c_str(),
                per_class[0] ? "yes" : "-", per_class[1] ? "yes" : "-",
                per_class[2] ? "yes" : "-");
  }
  std::printf("\n");
}

NetworkModel ModelFor(int64_t index) {
  switch (index) {
    case 1:
      return NetworkModel::Lan();
    case 2:
      return NetworkModel::Wan();
    case 3:
      return NetworkModel::MeterUplink();
    default:
      return NetworkModel::Loopback();
  }
}

const char* ModelName(int64_t index) {
  switch (index) {
    case 1:
      return "LAN";
    case 2:
      return "WAN";
    case 3:
      return "GPRS meter uplink";
    default:
      return "loopback";
  }
}

/// One full scenario round: every device deposits once, every company
/// retrieves everything. Reports modeled network time as a counter.
void BM_ScenarioRound(benchmark::State& state) {
  UtilityScenario::Options options;
  options.devices_per_class = state.range(0);
  options.network = ModelFor(state.range(1));
  auto s = UtilityScenario::Create(options).value();
  uint64_t last_id = 0;
  for (auto _ : state) {
    s->DepositReadings(1).value();
    size_t total = 0;
    for (const std::string& company : s->company_names()) {
      total += s->RetrieveFor(company, last_id).value().size();
    }
    last_id += 3 * state.range(0);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 3 * state.range(0));
  state.counters["sim_net_ms"] = benchmark::Counter(
      static_cast<double>(s->transport().stats().simulated_network_micros) /
          1000.0,
      benchmark::Counter::kAvgIterations);
  state.SetLabel(std::string(ModelName(state.range(1))) + ", " +
                 std::to_string(3 * state.range(0)) + " devices");
}
BENCHMARK(BM_ScenarioRound)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({1, 3})
    ->Args({4, 0})
    ->Args({4, 3});

/// Deposit-side throughput only, per network model.
void BM_ScenarioDepositOnly(benchmark::State& state) {
  UtilityScenario::Options options;
  options.network = ModelFor(state.range(0));
  auto s = UtilityScenario::Create(options).value();
  for (auto _ : state) {
    s->DepositReadings(1).value();
  }
  state.SetItemsProcessed(state.iterations() * 3);
  state.counters["sim_net_ms"] = benchmark::Counter(
      static_cast<double>(s->transport().stats().simulated_network_micros) /
          1000.0,
      benchmark::Counter::kAvgIterations);
  state.SetLabel(ModelName(state.range(0)));
}
BENCHMARK(BM_ScenarioDepositOnly)->Arg(0)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E2: paper Fig. 1 scenario reproduction ===\n\n");
  PrintAccessMatrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
