// E14 — routing extensions beyond the paper's plaintext attributes:
//   * PEKS searchable tags (related work [1]): the MWS routes on
//     encrypted keywords; measures tag creation, trapdoor generation,
//     per-record test cost, and a warehouse scan with N tagged records.
//   * Policy expressions (§VIII XACML direction): parse + match cost and
//     grant materialization against a growing attribute universe.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/ibe/peks.h"
#include "src/math/params.h"
#include "src/mws/policy_expr.h"
#include "src/util/random.h"

namespace {

using mws::ibe::Peks;
using mws::math::GetParams;
using mws::math::ParamPreset;
using mws::mws::PolicyExpression;
using mws::util::Bytes;
using mws::util::BytesFromString;
using mws::util::DeterministicRandom;

struct PeksFixture {
  const mws::math::TypeAParams& group = GetParams(ParamPreset::kSmall);
  Peks peks{group};
  DeterministicRandom rng{1};
  Peks::KeyPair keys;

  PeksFixture() { keys = peks.GenerateKeyPair(rng); }
};

PeksFixture& Shared() {
  static PeksFixture& f = *new PeksFixture();
  return f;
}

void BM_PeksMakeTag(benchmark::State& state) {
  PeksFixture& f = Shared();
  uint64_t i = 0;
  for (auto _ : state) {
    Bytes keyword = BytesFromString("KEYWORD-" + std::to_string(i++ % 16));
    benchmark::DoNotOptimize(f.peks.MakeTag(f.keys.public_key, keyword,
                                            f.rng));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("device side, 1 pairing");
}
BENCHMARK(BM_PeksMakeTag);

void BM_PeksTrapdoor(benchmark::State& state) {
  PeksFixture& f = Shared();
  uint64_t i = 0;
  for (auto _ : state) {
    Bytes keyword = BytesFromString("KEYWORD-" + std::to_string(i++ % 16));
    benchmark::DoNotOptimize(f.peks.MakeTrapdoor(f.keys.secret, keyword));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("RC side, hash-to-point + scalar mul");
}
BENCHMARK(BM_PeksTrapdoor);

void BM_PeksTest(benchmark::State& state) {
  PeksFixture& f = Shared();
  Bytes keyword = BytesFromString("ELECTRIC");
  Peks::Tag tag = f.peks.MakeTag(f.keys.public_key, keyword, f.rng);
  Peks::Trapdoor trapdoor = f.peks.MakeTrapdoor(f.keys.secret, keyword);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.peks.Test(tag, trapdoor));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("warehouse side, 1 pairing per record");
}
BENCHMARK(BM_PeksTest);

void BM_PeksWarehouseScan(benchmark::State& state) {
  PeksFixture& f = Shared();
  std::vector<Peks::Tag> tags;
  for (int64_t i = 0; i < state.range(0); ++i) {
    Bytes keyword = BytesFromString("KW-" + std::to_string(i % 8));
    tags.push_back(f.peks.MakeTag(f.keys.public_key, keyword, f.rng));
  }
  Peks::Trapdoor trapdoor =
      f.peks.MakeTrapdoor(f.keys.secret, BytesFromString("KW-3"));
  for (auto _ : state) {
    int matches = 0;
    for (const auto& tag : tags) {
      matches += f.peks.Test(tag, trapdoor) ? 1 : 0;
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(std::to_string(state.range(0)) + " tagged records");
}
BENCHMARK(BM_PeksWarehouseScan)->Arg(8)->Arg(64);

// --- Policy expressions ---

void BM_PolicyExprParse(benchmark::State& state) {
  const char* text =
      "(ELECTRIC-*-SV-CA OR GAS-*-SV-CA) AND NOT *-DECOMMISSIONED";
  for (auto _ : state) {
    benchmark::DoNotOptimize(PolicyExpression::Parse(text));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyExprParse);

void BM_PolicyExprMatch(benchmark::State& state) {
  auto expr = PolicyExpression::Parse(
                  "(ELECTRIC-*-SV-CA OR GAS-*-SV-CA) AND NOT "
                  "*-DECOMMISSIONED")
                  .value();
  std::vector<std::string> attrs;
  for (int i = 0; i < 64; ++i) {
    attrs.push_back("ELECTRIC-BLOCK" + std::to_string(i) + "-SV-CA");
    attrs.push_back("WATER-BLOCK" + std::to_string(i) + "-SV-CA");
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr.Matches(attrs[i++ % attrs.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyExprMatch);

void BM_GlobMatchWorstCase(benchmark::State& state) {
  // Backtracking-heavy pattern over a long attribute.
  std::string pattern = "*A*A*A*A*A*B";
  std::string text(state.range(0), 'A');
  for (auto _ : state) {
    benchmark::DoNotOptimize(mws::mws::GlobMatch(pattern, text));
  }
  state.SetLabel(std::to_string(state.range(0)) + " chars, no match");
}
BENCHMARK(BM_GlobMatchWorstCase)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E14: private routing (PEKS) and policy expressions ===\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
