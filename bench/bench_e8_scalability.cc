// E8 — §III requirement iv (scalability): throughput as the deployment
// grows. Sweeps the number of devices, the number of stored messages,
// the number of grants per RC, and the number of registered RCs.
//
// `--threads=N` switches to the concurrent-deployment mode: MWS and PKG
// run as real TCP servers with an N-worker dispatch pool, and 1..N
// client threads (each a SmartDevice + ReceivingClient pair on its own
// connections) drive deposits and incremental retrieves for a fixed
// wall-clock interval. Reports aggregate ops/sec per thread count and
// the speedup over one thread; `--json=PATH` records the sweep
// (BENCH_e8.json), `--smoke` shortens it for ctest.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/client/receiving_client.h"
#include "src/client/smart_device.h"
#include "src/crypto/rsa.h"
#include "src/math/params.h"
#include "src/mws/mws_service.h"
#include "src/obs/metrics.h"
#include "src/pkg/pkg_service.h"
#include "src/sim/scenario.h"
#include "src/store/kvstore.h"
#include "src/wire/auth.h"
#include "src/wire/tcp.h"

namespace {

using mws::sim::UtilityScenario;
using mws::util::BytesFromString;

/// Deposit throughput vs fleet size.
void BM_Scale_DepositVsFleet(benchmark::State& state) {
  UtilityScenario::Options options;
  options.devices_per_class = state.range(0);
  auto s = UtilityScenario::Create(options).value();
  size_t device = 0;
  for (auto _ : state) {
    auto& d = s->devices()[device++ % s->devices().size()];
    benchmark::DoNotOptimize(d.DepositMessage(
        UtilityScenario::kElectricAttr, BytesFromString("kWh=1.0")));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(3 * state.range(0)) + " devices");
}
BENCHMARK(BM_Scale_DepositVsFleet)->Arg(1)->Arg(10)->Arg(50);

/// Retrieval cost vs warehouse size (messages visible to the RC grows).
void BM_Scale_RetrieveVsWarehouseSize(benchmark::State& state) {
  auto s = UtilityScenario::Create({}).value();
  s->DepositReadings(state.range(0)).value();
  auto& rc = s->company(UtilityScenario::kWaterResources);
  for (auto _ : state) {
    auto messages = rc.FetchAndDecrypt();
    benchmark::DoNotOptimize(messages);
  }
  // Water company sees 1/3 of the warehouse.
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(std::to_string(3 * state.range(0)) + " stored, " +
                 std::to_string(state.range(0)) + " visible");
}
BENCHMARK(BM_Scale_RetrieveVsWarehouseSize)->Arg(1)->Arg(4)->Arg(16);

/// MMS policy resolution vs number of registered RCs (the paper expects
/// "a large number of other classes of clients").
void BM_Scale_PolicyResolutionVsRcCount(benchmark::State& state) {
  auto s = UtilityScenario::Create({}).value();
  // Register extra RCs with one grant each.
  for (int64_t i = 0; i < state.range(0); ++i) {
    std::string identity = "EXTRA-RC-" + std::to_string(i);
    auto keys = mws::crypto::RsaGenerateKeyPair(768, s->rng()).value();
    s->mws()
        .RegisterReceivingClient(
            identity, mws::wire::HashPassword("pw"),
            mws::crypto::SerializeRsaPublicKey(keys.public_key))
        .ok();
    s->mws()
        .GrantAttribute(identity, "EXTRA-ATTR-" + std::to_string(i % 50))
        .value();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s->mws().mms().GrantsFor(UtilityScenario::kCServices));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(state.range(0) + 3) + " registered RCs");
}
BENCHMARK(BM_Scale_PolicyResolutionVsRcCount)->Arg(10)->Arg(100)->Arg(300);

/// Incremental retrieval: cost of fetching only the delta is flat even
/// as the warehouse grows.
void BM_Scale_IncrementalRetrieve(benchmark::State& state) {
  auto s = UtilityScenario::Create({}).value();
  s->DepositReadings(state.range(0)).value();
  auto& rc = s->company(UtilityScenario::kCServices);
  uint64_t high_water = 3 * state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    s->DepositReadings(1).value();  // 3 fresh messages
    state.ResumeTiming();
    auto messages = rc.FetchAndDecrypt(high_water);
    benchmark::DoNotOptimize(messages);
    high_water += 3;
  }
  state.SetItemsProcessed(state.iterations() * 3);
  state.SetLabel("backlog " + std::to_string(3 * state.range(0)));
}
BENCHMARK(BM_Scale_IncrementalRetrieve)->Arg(1)->Arg(32)->Arg(128);

/// Sequential vs batched key extraction for an N-message backlog: the
/// batch API collapses N PKG round trips into one, which dominates on
/// high-latency links (sim_net_ms counter shows the modeled gap).
void BM_Scale_KeyExtraction(benchmark::State& state) {
  const bool batched = state.range(1) != 0;
  UtilityScenario::Options options;
  options.network = mws::wire::NetworkModel::Wan();
  auto s = UtilityScenario::Create(options).value();
  s->DepositReadings(state.range(0)).value();
  auto& rc = s->company(UtilityScenario::kWaterResources);
  rc.Authenticate().ok();
  auto retrieved = rc.Retrieve().value();
  rc.AuthenticateWithPkg(retrieved.token).ok();
  s->transport().ResetStats();
  for (auto _ : state) {
    if (batched) {
      std::vector<std::pair<uint64_t, mws::util::Bytes>> items;
      for (const auto& m : retrieved.messages) {
        items.emplace_back(m.aid, m.nonce);
      }
      benchmark::DoNotOptimize(rc.RequestKeysBatch(items));
    } else {
      for (const auto& m : retrieved.messages) {
        benchmark::DoNotOptimize(rc.RequestKey(m.aid, m.nonce));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["sim_net_ms"] = benchmark::Counter(
      static_cast<double>(s->transport().stats().simulated_network_micros) /
          1000.0,
      benchmark::Counter::kAvgIterations);
  state.SetLabel(std::string(batched ? "batched" : "sequential") + ", " +
                 std::to_string(state.range(0)) + " keys");
}
BENCHMARK(BM_Scale_KeyExtraction)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({32, 0})
    ->Args({32, 1});

// ---------------------------------------------------------------------
// Concurrent-deployment mode (--threads=N)
// ---------------------------------------------------------------------

/// Client-side endpoint router: mws.* and pkg.* live on separate servers
/// (the paper's multi-server deployment).
class EndpointMux : public mws::wire::Transport {
 public:
  EndpointMux(mws::wire::Transport* mws, mws::wire::Transport* pkg)
      : mws_(mws), pkg_(pkg) {}
  mws::util::Result<mws::util::Bytes> Call(
      const std::string& endpoint, const mws::util::Bytes& request) override {
    if (endpoint.rfind("pkg.", 0) == 0) return pkg_->Call(endpoint, request);
    return mws_->Call(endpoint, request);
  }

 private:
  mws::wire::Transport* mws_;
  mws::wire::Transport* pkg_;
};

struct ThroughputPoint {
  int threads = 0;
  uint64_t deposits = 0;
  uint64_t retrieves = 0;
  uint64_t messages_decrypted = 0;
  uint64_t errors = 0;
  double seconds = 0.0;
  // Server-side per-op latency, read from the warehouse's obs registry
  // (`mws.latency_us{op=...}`) after the run.
  double deposit_p50_us = 0.0;
  double deposit_p95_us = 0.0;
  double deposit_p99_us = 0.0;
  double retrieve_p95_us = 0.0;

  double TotalOpsPerSec() const {
    return seconds > 0
               ? static_cast<double>(deposits + retrieves) / seconds
               : 0.0;
  }
};

/// One sweep point: a fresh warehouse + PKG behind TCP servers with
/// `n_threads` dispatch workers, loaded by `n_threads` client threads.
/// Every thread owns its device, RC, connections and rng; the only
/// cross-thread state is the (thread-safe) services themselves.
ThroughputPoint RunThroughputPoint(int n_threads, double duration_s) {
  namespace wire = mws::wire;
  using mws::util::Bytes;

  mws::util::SimulatedClock clock(1'000'000'000);
  mws::util::DeterministicRandom setup_rng(42);
  mws::obs::Registry registry;
  auto storage =
      mws::store::KvStore::Open({.path = "", .metrics = &registry}).value();
  Bytes service_key(32, 0x3c);
  mws::mws::MwsOptions mws_options;
  mws_options.metrics = &registry;
  mws::mws::MwsService warehouse(storage.get(), service_key, &clock,
                                 &setup_rng, mws_options);
  mws::pkg::PkgOptions pkg_options;
  pkg_options.metrics = &registry;
  mws::pkg::PkgService pkg(mws::math::GetParams(mws::math::ParamPreset::kSmall),
                           service_key, &clock, &setup_rng, pkg_options);

  // Deployment-shaped load: the WAN model's latency is realized as real
  // wall time inside the dispatch worker. One client thread is then
  // latency-bound; the speedup at N threads measures how well the worker
  // pool overlaps that latency (the old serialized dispatch could not).
  wire::InProcessTransport mws_backend, pkg_backend;
  mws_backend.set_model(wire::NetworkModel::Wan());
  mws_backend.set_realize_network(true);
  pkg_backend.set_model(wire::NetworkModel::Wan());
  pkg_backend.set_realize_network(true);
  warehouse.RegisterEndpoints(&mws_backend);
  pkg.RegisterEndpoints(&pkg_backend);
  wire::TcpServer::Options server_options;
  server_options.worker_threads = n_threads;
  server_options.metrics = &registry;
  auto mws_server = wire::TcpServer::Start(&mws_backend, 0, server_options)
                        .value();
  auto pkg_server = wire::TcpServer::Start(&pkg_backend, 0, server_options)
                        .value();

  // Per-thread registration: own device, own RC, own attribute.
  struct Lane {
    std::string attribute;
    Bytes mac_key;
    mws::crypto::RsaKeyPair keys;
  };
  std::vector<Lane> lanes;
  lanes.reserve(static_cast<size_t>(n_threads));
  for (int i = 0; i < n_threads; ++i) {
    Lane lane;
    lane.attribute = "SCALE-ATTR-" + std::to_string(i);
    lane.mac_key = Bytes(32, static_cast<uint8_t>(i + 1));
    lane.keys = mws::crypto::RsaGenerateKeyPair(768, setup_rng).value();
    warehouse.RegisterDevice("SD-" + std::to_string(i), lane.mac_key)
        .ok();
    warehouse
        .RegisterReceivingClient(
            "RC-" + std::to_string(i), mws::wire::HashPassword("pw"),
            mws::crypto::SerializeRsaPublicKey(lane.keys.public_key))
        .ok();
    warehouse.GrantAttribute("RC-" + std::to_string(i), lane.attribute)
        .value();
    lanes.push_back(std::move(lane));
  }

  std::atomic<bool> go{false};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> deposits{0};
  std::atomic<uint64_t> retrieves{0};
  std::atomic<uint64_t> decrypted{0};
  std::atomic<uint64_t> errors{0};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(n_threads));
  for (int i = 0; i < n_threads; ++i) {
    threads.emplace_back([&, i] {
      mws::util::DeterministicRandom rng(1000 + i);
      wire::TcpClientTransport mws_conn("127.0.0.1", mws_server->port());
      wire::TcpClientTransport pkg_conn("127.0.0.1", pkg_server->port());
      EndpointMux mux(&mws_conn, &pkg_conn);
      mws::client::SmartDevice device(
          "SD-" + std::to_string(i), lanes[i].mac_key, pkg.PublicParams(),
          mws::crypto::CipherKind::kDes, &mux, &clock, &rng);
      mws::client::ReceivingClient rc(
          "RC-" + std::to_string(i), "pw", lanes[i].keys, pkg.PublicParams(),
          mws::crypto::CipherKind::kDes, mws::crypto::CipherKind::kDes, &mux,
          &clock, &rng);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      uint64_t after_id = 0;
      int step = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto id = device.DepositMessage(lanes[i].attribute,
                                        BytesFromString("kWh=1.0"));
        if (!id.ok()) {
          ++errors;
          break;
        }
        ++deposits;
        // ~1 incremental retrieve (auth + fetch + key batch + decrypt)
        // per 4 deposits, the paper's read-mostly-writes mix.
        if (++step % 4 == 0) {
          auto messages = rc.FetchAndDecrypt(after_id);
          if (!messages.ok()) {
            ++errors;
            break;
          }
          for (const auto& m : messages.value()) {
            after_id = std::max(after_id, m.message_id);
          }
          decrypted += messages->size();
          ++retrieves;
        }
      }
    });
  }

  auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  ThroughputPoint point;
  point.threads = n_threads;
  point.deposits = deposits.load();
  point.retrieves = retrieves.load();
  point.messages_decrypted = decrypted.load();
  point.errors = errors.load();
  point.seconds = elapsed;
  const mws::obs::RegistrySnapshot snap = registry.Snapshot();
  if (const auto* h = snap.histogram("mws.latency_us{op=deposit}")) {
    point.deposit_p50_us = h->Percentile(0.50);
    point.deposit_p95_us = h->Percentile(0.95);
    point.deposit_p99_us = h->Percentile(0.99);
  }
  if (const auto* h = snap.histogram("mws.latency_us{op=retrieve}")) {
    point.retrieve_p95_us = h->Percentile(0.95);
  }
  return point;
}

int RunThreadedSweep(int max_threads, bool smoke,
                     const std::string& json_path) {
  const double duration_s = smoke ? 0.5 : 2.0;
  std::vector<int> counts;
  for (int t = 1; t < max_threads; t *= 2) counts.push_back(t);
  counts.push_back(max_threads);

  std::printf("TCP deployment, %d-worker dispatch pool, %.2fs per point\n\n",
              max_threads, duration_s);
  std::printf("%8s %10s %10s %12s %10s %8s %10s %10s\n", "threads",
              "deposits", "retrieves", "total_ops/s", "msgs_dec", "speedup",
              "dep_p95us", "ret_p95us");

  std::vector<ThroughputPoint> points;
  for (int t : counts) points.push_back(RunThroughputPoint(t, duration_s));
  const double base = points.front().TotalOpsPerSec();

  uint64_t total_errors = 0;
  for (const ThroughputPoint& p : points) {
    std::printf("%8d %10llu %10llu %12.1f %10llu %7.2fx %10.1f %10.1f\n",
                p.threads, static_cast<unsigned long long>(p.deposits),
                static_cast<unsigned long long>(p.retrieves),
                p.TotalOpsPerSec(),
                static_cast<unsigned long long>(p.messages_decrypted),
                base > 0 ? p.TotalOpsPerSec() / base : 0.0, p.deposit_p95_us,
                p.retrieve_p95_us);
    total_errors += p.errors;
  }
  if (total_errors > 0) {
    std::printf("\nERROR: %llu client operations failed\n",
                static_cast<unsigned long long>(total_errors));
  }

  std::string out = "{\n";
  out += "  \"experiment\": \"e8_concurrent_dispatch\",\n";
  out += "  \"preset\": \"small\",\n";
  out += "  \"network\": \"wan_realized\",\n";
  out += "  \"duration_s\": " + std::to_string(duration_s) + ",\n";
  out += "  \"results\": [\n";
  char buf[512];
  for (size_t i = 0; i < points.size(); ++i) {
    const ThroughputPoint& p = points[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"threads\": %d, \"deposits\": %llu, \"retrieves\": %llu, "
        "\"total_ops_per_sec\": %.1f, \"speedup\": %.2f, \"errors\": %llu, "
        "\"deposit_p50_us\": %.1f, \"deposit_p95_us\": %.1f, "
        "\"deposit_p99_us\": %.1f, \"retrieve_p95_us\": %.1f}%s\n",
        p.threads, static_cast<unsigned long long>(p.deposits),
        static_cast<unsigned long long>(p.retrieves), p.TotalOpsPerSec(),
        base > 0 ? p.TotalOpsPerSec() / base : 0.0,
        static_cast<unsigned long long>(p.errors), p.deposit_p50_us,
        p.deposit_p95_us, p.deposit_p99_us, p.retrieve_p95_us,
        i + 1 < points.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  if (json_path.empty()) {
    std::printf("\n%s", out.c_str());
  } else {
    std::ofstream f(json_path);
    f << out;
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return total_errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 0;
  bool smoke = false;
  std::string json_path;
  // Strip our flags before benchmark::Initialize — gbench only consumes
  // --benchmark_* and aborts on anything it does not recognize.
  int out_argc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[out_argc++] = argv[i];
    }
  }
  argc = out_argc;

  std::printf("=== E8: scalability (requirement iv) ===\n\n");
  if (threads > 0) {
    return RunThreadedSweep(threads, smoke, json_path);
  }
  if (smoke) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
