// E8 — §III requirement iv (scalability): throughput as the deployment
// grows. Sweeps the number of devices, the number of stored messages,
// the number of grants per RC, and the number of registered RCs.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/sim/scenario.h"
#include "src/wire/auth.h"

namespace {

using mws::sim::UtilityScenario;
using mws::util::BytesFromString;

/// Deposit throughput vs fleet size.
void BM_Scale_DepositVsFleet(benchmark::State& state) {
  UtilityScenario::Options options;
  options.devices_per_class = state.range(0);
  auto s = UtilityScenario::Create(options).value();
  size_t device = 0;
  for (auto _ : state) {
    auto& d = s->devices()[device++ % s->devices().size()];
    benchmark::DoNotOptimize(d.DepositMessage(
        UtilityScenario::kElectricAttr, BytesFromString("kWh=1.0")));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(3 * state.range(0)) + " devices");
}
BENCHMARK(BM_Scale_DepositVsFleet)->Arg(1)->Arg(10)->Arg(50);

/// Retrieval cost vs warehouse size (messages visible to the RC grows).
void BM_Scale_RetrieveVsWarehouseSize(benchmark::State& state) {
  auto s = UtilityScenario::Create({}).value();
  s->DepositReadings(state.range(0)).value();
  auto& rc = s->company(UtilityScenario::kWaterResources);
  for (auto _ : state) {
    auto messages = rc.FetchAndDecrypt();
    benchmark::DoNotOptimize(messages);
  }
  // Water company sees 1/3 of the warehouse.
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel(std::to_string(3 * state.range(0)) + " stored, " +
                 std::to_string(state.range(0)) + " visible");
}
BENCHMARK(BM_Scale_RetrieveVsWarehouseSize)->Arg(1)->Arg(4)->Arg(16);

/// MMS policy resolution vs number of registered RCs (the paper expects
/// "a large number of other classes of clients").
void BM_Scale_PolicyResolutionVsRcCount(benchmark::State& state) {
  auto s = UtilityScenario::Create({}).value();
  // Register extra RCs with one grant each.
  for (int64_t i = 0; i < state.range(0); ++i) {
    std::string identity = "EXTRA-RC-" + std::to_string(i);
    auto keys = mws::crypto::RsaGenerateKeyPair(768, s->rng()).value();
    s->mws()
        .RegisterReceivingClient(
            identity, mws::wire::HashPassword("pw"),
            mws::crypto::SerializeRsaPublicKey(keys.public_key))
        .ok();
    s->mws()
        .GrantAttribute(identity, "EXTRA-ATTR-" + std::to_string(i % 50))
        .value();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s->mws().mms().GrantsFor(UtilityScenario::kCServices));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(state.range(0) + 3) + " registered RCs");
}
BENCHMARK(BM_Scale_PolicyResolutionVsRcCount)->Arg(10)->Arg(100)->Arg(300);

/// Incremental retrieval: cost of fetching only the delta is flat even
/// as the warehouse grows.
void BM_Scale_IncrementalRetrieve(benchmark::State& state) {
  auto s = UtilityScenario::Create({}).value();
  s->DepositReadings(state.range(0)).value();
  auto& rc = s->company(UtilityScenario::kCServices);
  uint64_t high_water = 3 * state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    s->DepositReadings(1).value();  // 3 fresh messages
    state.ResumeTiming();
    auto messages = rc.FetchAndDecrypt(high_water);
    benchmark::DoNotOptimize(messages);
    high_water += 3;
  }
  state.SetItemsProcessed(state.iterations() * 3);
  state.SetLabel("backlog " + std::to_string(3 * state.range(0)));
}
BENCHMARK(BM_Scale_IncrementalRetrieve)->Arg(1)->Arg(32)->Arg(128);

/// Sequential vs batched key extraction for an N-message backlog: the
/// batch API collapses N PKG round trips into one, which dominates on
/// high-latency links (sim_net_ms counter shows the modeled gap).
void BM_Scale_KeyExtraction(benchmark::State& state) {
  const bool batched = state.range(1) != 0;
  UtilityScenario::Options options;
  options.network = mws::wire::NetworkModel::Wan();
  auto s = UtilityScenario::Create(options).value();
  s->DepositReadings(state.range(0)).value();
  auto& rc = s->company(UtilityScenario::kWaterResources);
  rc.Authenticate().ok();
  auto retrieved = rc.Retrieve().value();
  rc.AuthenticateWithPkg(retrieved.token).ok();
  s->transport().ResetStats();
  for (auto _ : state) {
    if (batched) {
      std::vector<std::pair<uint64_t, mws::util::Bytes>> items;
      for (const auto& m : retrieved.messages) {
        items.emplace_back(m.aid, m.nonce);
      }
      benchmark::DoNotOptimize(rc.RequestKeysBatch(items));
    } else {
      for (const auto& m : retrieved.messages) {
        benchmark::DoNotOptimize(rc.RequestKey(m.aid, m.nonce));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["sim_net_ms"] = benchmark::Counter(
      static_cast<double>(s->transport().stats().simulated_network_micros) /
          1000.0,
      benchmark::Counter::kAvgIterations);
  state.SetLabel(std::string(batched ? "batched" : "sequential") + ", " +
                 std::to_string(state.range(0)) + " keys");
}
BENCHMARK(BM_Scale_KeyExtraction)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({32, 0})
    ->Args({32, 1});

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E8: scalability (requirement iv) ===\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
