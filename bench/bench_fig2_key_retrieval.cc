// E3 — Paper Fig. 2: the private-key retrieval flow.
//
// Prints the step trace (token -> ticket -> authenticator -> extraction)
// and measures each step in isolation: token issuance at the MWS, token
// opening at the RC, ticket verification at the PKG, and extraction as a
// function of the number of attributes in the ticket.

#include <benchmark/benchmark.h>

#include <cstdio>

#include <cstring>

#include "src/crypto/drbg.h"
#include "src/crypto/modes.h"
#include "src/crypto/sealed_box.h"
#include "src/ibe/bf_ibe.h"
#include "src/math/params.h"
#include "src/mws/mws_service.h"
#include "src/pkg/pkg_service.h"
#include "src/store/kvstore.h"
#include "src/wire/auth.h"

namespace {

using namespace mws::util;
using namespace mws::crypto;
using namespace mws::wire;
using mws::math::GetParams;
using mws::math::ParamPreset;
using MwsSvc = mws::mws::MwsService;
using PkgSvc = mws::pkg::PkgService;
namespace store = mws::store;

/// A standalone MWS+PKG pair with one RC holding `attrs` grants.
struct Fixture {
  std::unique_ptr<store::KvStore> storage;
  SimulatedClock clock{1'000'000'000};
  std::unique_ptr<HmacDrbg> rng;
  std::unique_ptr<MwsSvc> warehouse;
  std::unique_ptr<PkgSvc> pkg;
  RsaKeyPair rc_keys;
  std::vector<store::PolicyRow> grants;

  explicit Fixture(int64_t attrs) {
    rng = std::make_unique<HmacDrbg>(BytesFromString("fig2-bench"));
    storage = std::move(store::KvStore::Open({.path = ""}).value());
    Bytes service_key(32, 0x44);
    warehouse = std::make_unique<MwsSvc>(storage.get(), service_key, &clock,
                                         rng.get());
    pkg = std::make_unique<PkgSvc>(GetParams(ParamPreset::kSmall),
                                   service_key, &clock, rng.get());
    rc_keys = RsaGenerateKeyPair(768, *rng).value();
    warehouse
        ->RegisterReceivingClient("RC", HashPassword("pw"),
                                  SerializeRsaPublicKey(rc_keys.public_key))
        .ok();
    for (int64_t a = 0; a < attrs; ++a) {
      warehouse->GrantAttribute("RC", "ATTR-" + std::to_string(a)).value();
    }
    grants = warehouse->mms().GrantsFor("RC").value();
  }

  Bytes IssueToken() {
    return warehouse->token_generator()
        .IssueToken("RC", SerializeRsaPublicKey(rc_keys.public_key), grants)
        .value();
  }

  PkgAuthRequest MakePkgAuth(const Bytes& token) {
    auto token_bytes =
        OpenSealedBox(rc_keys.private_key, CipherKind::kDes, token);
    auto token_plain = TokenPlain::Decode(token_bytes.value()).value();
    AuthenticatorPlain auth{"RC", clock.NowMicros()};
    Bytes auth_key = DeriveChannelKey(token_plain.session_key,
                                      CipherKind::kDes,
                                      "rc-pkg-authenticator");
    PkgAuthRequest request;
    request.rc_identity = "RC";
    request.ticket = token_plain.ticket;
    request.authenticator =
        CbcEncrypt(CipherKind::kDes, auth_key, auth.Encode(), *rng).value();
    return request;
  }
};

void PrintTrace() {
  std::printf("FIG. 2  Private key retrieval\n\n");
  Fixture f(3);
  Bytes token = f.IssueToken();
  std::printf("  MWS TokenGenerator -> RC : token (%zu bytes, sealed to "
              "PubKRC)\n", token.size());
  auto request = f.MakePkgAuth(token);
  std::printf("  RC -> PKG               : ticket (%zu bytes) + "
              "authenticator (%zu bytes)\n",
              request.ticket.size(), request.authenticator.size());
  auto session = f.pkg->Authenticate(request).value();
  std::printf("  PKG                     : ticket verified, session open\n");
  KeyRequest key_request;
  key_request.session_id = session.session_id;
  key_request.aid = f.grants[0].aid;
  key_request.nonce = Bytes(16, 0x01);
  auto key = f.pkg->ExtractKey(key_request).value();
  std::printf("  PKG -> RC               : E(SecK, sI) (%zu bytes)\n\n",
              key.encrypted_private_key.size());
}

void BM_TokenIssue(benchmark::State& state) {
  Fixture f(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.IssueToken());
  }
  state.SetLabel(std::to_string(state.range(0)) + " attrs in ticket");
}
BENCHMARK(BM_TokenIssue)->Arg(1)->Arg(10)->Arg(100);

void BM_TokenOpenAtRc(benchmark::State& state) {
  Fixture f(state.range(0));
  Bytes token = f.IssueToken();
  for (auto _ : state) {
    auto opened =
        OpenSealedBox(f.rc_keys.private_key, CipherKind::kDes, token);
    benchmark::DoNotOptimize(opened);
  }
  state.SetLabel(std::to_string(state.range(0)) + " attrs in ticket");
}
BENCHMARK(BM_TokenOpenAtRc)->Arg(1)->Arg(100);

void BM_PkgTicketAuth(benchmark::State& state) {
  Fixture f(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto request = f.MakePkgAuth(f.IssueToken());
    state.ResumeTiming();
    benchmark::DoNotOptimize(f.pkg->Authenticate(request));
  }
  state.SetLabel(std::to_string(state.range(0)) + " attrs in ticket");
}
BENCHMARK(BM_PkgTicketAuth)->Arg(1)->Arg(100);

void BM_PkgExtract(benchmark::State& state) {
  Fixture f(1);
  auto session = f.pkg->Authenticate(f.MakePkgAuth(f.IssueToken())).value();
  KeyRequest request;
  request.session_id = session.session_id;
  request.aid = f.grants[0].aid;
  uint64_t n = 0;
  for (auto _ : state) {
    // Fresh nonce per iteration: each extract is a distinct identity, as
    // in real operation.
    request.nonce = BytesFromString("nonce-" + std::to_string(n++));
    benchmark::DoNotOptimize(f.pkg->ExtractKey(request));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("warm: precompute tables amortized across extracts");
}
BENCHMARK(BM_PkgExtract);

/// The cold counterpart to BM_PkgExtract: every iteration stands up a
/// fresh PKG — master-key draw plus P_pub precomputation tables — before
/// the extract itself, the cost paid once at PKG boot rather than per
/// request.
void BM_PkgExtractCold(benchmark::State& state) {
  const auto& group = GetParams(ParamPreset::kSmall);
  mws::ibe::BfIbe ibe(group);
  HmacDrbg rng(BytesFromString("fig2-cold"));
  uint64_t n = 0;
  for (auto _ : state) {
    auto setup = ibe.Setup(rng);
    benchmark::DoNotOptimize(setup);
    benchmark::DoNotOptimize(ibe.Extract(
        setup.second, BytesFromString("identity-" + std::to_string(n++))));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("cold: includes Setup + P_pub table construction");
}
BENCHMARK(BM_PkgExtractCold);

void BM_Fig2_WholeFlow(benchmark::State& state) {
  Fixture f(3);
  uint64_t n = 0;
  for (auto _ : state) {
    Bytes token = f.IssueToken();
    auto session = f.pkg->Authenticate(f.MakePkgAuth(token)).value();
    KeyRequest request;
    request.session_id = session.session_id;
    request.aid = f.grants[0].aid;
    request.nonce = BytesFromString("nonce-" + std::to_string(n++));
    benchmark::DoNotOptimize(f.pkg->ExtractKey(request));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig2_WholeFlow);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== E3: paper Fig. 2 key-retrieval reproduction ===\n\n");
  PrintTrace();
  // --smoke: the trace above is the whole ctest payload.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return 0;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
