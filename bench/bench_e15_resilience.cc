// E15 — failure-domain hardening: end-to-end goodput under injected
// faults. Sweeps a fault rate over both failure domains at once —
// torn store writes (applied but acked as failed) and dropped transport
// responses (handler ran, ack lost) — and drives a deposit workload
// through the FaultyTransport -> RetryingTransport client chain.
//
// The claim under test (DESIGN.md §10): with at-least-once retries on
// the client and (ID_SD, nonce) dedup in the MWS, *every acked deposit
// is stored exactly once* — zero lost, zero duplicated — at any fault
// rate the retry policy can absorb. Reports goodput, retry counts,
// dedup hits and per-deposit latency percentiles (from an
// obs::Histogram, so the same bucketed numbers the STATS endpoint would
// report); `--json=PATH` records the sweep (BENCH_e15.json), `--smoke`
// shortens it for ctest.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sim/scenario.h"
#include "src/store/message_db.h"

namespace {

using mws::sim::UtilityScenario;

struct SweepPoint {
  double fault_rate = 0.0;
  size_t attempted = 0;
  size_t acked = 0;     // deposits the client saw succeed
  size_t stored = 0;    // messages in the warehouse afterwards
  size_t lost = 0;      // acked ids not retrievable
  size_t duplicated = 0;  // stored (device, nonce) pairs seen twice
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t dedup_hits = 0;
  uint64_t torn_store_writes = 0;
  uint64_t requests_lost = 0;
  uint64_t responses_lost = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double sim_backoff_ms = 0.0;

  double Goodput() const {
    return attempted > 0 ? static_cast<double>(acked) / attempted : 0.0;
  }
};

/// One sweep point: `messages` deposits from the Baytower fleet with
/// both fault domains armed at `rate`, then a full audit of the
/// warehouse against the client-side ack log.
SweepPoint RunPoint(double rate, size_t messages) {
  UtilityScenario::Options options;
  options.resilience.enable = true;
  options.resilience.store_fault_rate = rate;
  options.resilience.response_drop_rate = rate;
  // The bench measures steady-state goodput, not admission control:
  // give retries room (the budget and deadline experiments live in the
  // retry unit tests).
  options.resilience.retry.max_attempts = 10;
  options.resilience.retry.call_deadline_micros = 0;
  options.resilience.retry.retry_budget = 1e9;
  options.resilience.retry.budget_refund = 1.0;
  auto s = UtilityScenario::Create(options).value();

  SweepPoint point;
  point.fault_rate = rate;

  // Per-deposit wall time goes through the same histogram type the
  // services publish, so the reported percentiles are the bucketed
  // figures an operator would read off the STATS endpoint.
  mws::obs::Histogram wall_hist;
  std::vector<uint64_t> acked_ids;
  acked_ids.reserve(messages);
  int64_t backoff_micros = 0;

  size_t device_index = 0;
  for (size_t i = 0; i < messages; ++i) {
    auto& device = s->devices()[device_index++ % s->devices().size()];
    mws::sim::MeterClass klass = mws::sim::MeterClass::kElectric;
    if (device.device_id().rfind("WATER", 0) == 0) {
      klass = mws::sim::MeterClass::kWater;
    } else if (device.device_id().rfind("GAS", 0) == 0) {
      klass = mws::sim::MeterClass::kGas;
    }
    s->clock().AdvanceMicros(1'000'000);
    mws::sim::MeterReading reading = s->workload().Next(
        device.device_id(), klass, s->clock().NowMicros());

    ++point.attempted;
    // Backoff sleeps advance the simulated clock; the delta isolates
    // time spent waiting out faults from the 1 s inter-reading cadence.
    int64_t sim_before = s->clock().NowMicros();
    mws::util::Result<uint64_t> id = [&] {
      mws::obs::ScopedTimer timer(&wall_hist);
      return device.DepositMessage(UtilityScenario::AttributeFor(klass),
                                   s->workload().Pad(reading.ToPayload()));
    }();
    backoff_micros += s->clock().NowMicros() - sim_before;
    if (id.ok()) {
      ++point.acked;
      acked_ids.push_back(id.value());
    }
  }

  // --- Audit: zero lost, zero duplicated ---
  const auto& db = s->mws().message_db();
  point.stored = db.Count();
  std::sort(acked_ids.begin(), acked_ids.end());
  for (size_t i = 0; i < acked_ids.size(); ++i) {
    if (i > 0 && acked_ids[i] == acked_ids[i - 1]) ++point.duplicated;
    if (!db.Get(acked_ids[i]).ok()) ++point.lost;
  }
  // Retransmits that slipped past dedup would store one (ID_SD, nonce)
  // under two ids; scan the whole warehouse for repeats.
  std::map<std::string, uint64_t> seen;
  for (const char* attribute :
       {UtilityScenario::kElectricAttr, UtilityScenario::kWaterAttr,
        UtilityScenario::kGasAttr}) {
    // Keep the Result alive across the loop (a temporary in the range
    // expression would dangle before C++23).
    auto messages = db.FindByAttribute(attribute).value();
    for (const auto& m : messages) {
      std::string key(m.device_id);
      key.push_back('/');
      key.append(m.nonce.begin(), m.nonce.end());
      if (!seen.emplace(key, m.id).second) ++point.duplicated;
    }
  }

  // Counters come off the scenario's registry snapshot — the same path
  // the STATS wire endpoint serves — not the components' private stats.
  const mws::obs::RegistrySnapshot snap = s->metrics()->Snapshot();
  auto counter_or_zero = [&snap](const char* full_name) -> uint64_t {
    const uint64_t* v = snap.counter(full_name);
    return v != nullptr ? *v : 0;
  };
  point.attempts = counter_or_zero("retry.attempts");
  point.retries = counter_or_zero("retry.retries");
  point.dedup_hits = counter_or_zero("md.dedup_hits");
  point.torn_store_writes = s->faulty_table()->torn_writes();
  point.requests_lost = s->faulty_transport()->requests_lost();
  point.responses_lost = s->faulty_transport()->responses_lost();

  const mws::obs::HistogramSnapshot wall = wall_hist.Snapshot();
  point.p50_us = wall.Percentile(0.50);
  point.p95_us = wall.Percentile(0.95);
  point.p99_us = wall.Percentile(0.99);
  point.sim_backoff_ms = static_cast<double>(backoff_micros) / 1000.0;
  return point;
}

int RunSweep(bool smoke, const std::string& json_path) {
  const size_t messages = smoke ? 120 : 1000;
  std::vector<double> rates = {0.0, 0.01, 0.05, 0.10};
  if (smoke) rates = {0.0, 0.05};

  std::printf("%zu deposits per point, both fault domains armed\n\n",
              messages);
  std::printf("%7s %8s %8s %7s %5s %5s %8s %6s %10s %10s %10s %12s\n",
              "fault%", "acked", "goodput", "retries", "lost", "dup",
              "dedup", "torn", "p50_us", "p95_us", "p99_us", "backoff_ms");

  std::vector<SweepPoint> points;
  bool violated = false;
  for (double rate : rates) {
    SweepPoint p = RunPoint(rate, messages);
    std::printf("%7.1f %8zu %7.1f%% %7llu %5zu %5zu %8llu %6llu %10.1f "
                "%10.1f %10.1f %12.1f\n",
                100.0 * p.fault_rate, p.acked, 100.0 * p.Goodput(),
                static_cast<unsigned long long>(p.retries), p.lost,
                p.duplicated, static_cast<unsigned long long>(p.dedup_hits),
                static_cast<unsigned long long>(p.torn_store_writes),
                p.p50_us, p.p95_us, p.p99_us, p.sim_backoff_ms);
    if (p.lost > 0 || p.duplicated > 0) violated = true;
    points.push_back(p);
  }

  std::string out = "{\n";
  out += "  \"experiment\": \"e15_resilience\",\n";
  out += "  \"messages_per_point\": " + std::to_string(messages) + ",\n";
  out += "  \"fault_domains\": [\"store_torn_write\", "
         "\"transport_response_drop\"],\n";
  out += "  \"results\": [\n";
  char buf[512];
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"fault_rate\": %.2f, \"attempted\": %zu, \"acked\": %zu, "
        "\"goodput\": %.4f, \"stored\": %zu, \"lost\": %zu, "
        "\"duplicated\": %zu, \"attempts\": %llu, \"retries\": %llu, "
        "\"dedup_hits\": %llu, \"torn_store_writes\": %llu, "
        "\"requests_lost\": %llu, \"responses_lost\": %llu, "
        "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
        "\"sim_backoff_ms\": %.1f}%s\n",
        p.fault_rate, p.attempted, p.acked, p.Goodput(), p.stored, p.lost,
        p.duplicated, static_cast<unsigned long long>(p.attempts),
        static_cast<unsigned long long>(p.retries),
        static_cast<unsigned long long>(p.dedup_hits),
        static_cast<unsigned long long>(p.torn_store_writes),
        static_cast<unsigned long long>(p.requests_lost),
        static_cast<unsigned long long>(p.responses_lost), p.p50_us,
        p.p95_us, p.p99_us, p.sim_backoff_ms,
        i + 1 < points.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  if (json_path.empty()) {
    std::printf("\n%s", out.c_str());
  } else {
    std::ofstream f(json_path);
    f << out;
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (violated) {
    std::printf("\nERROR: at-least-once safety violated (lost or "
                "duplicated deposits)\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  std::printf("=== E15: resilience under injected faults ===\n\n");
  return RunSweep(smoke, json_path);
}
