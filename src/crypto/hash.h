#ifndef MWSIBE_CRYPTO_HASH_H_
#define MWSIBE_CRYPTO_HASH_H_

#include <cstdint>
#include <memory>

#include "src/util/bytes.h"

namespace mws::crypto {

/// Supported digest algorithms. The paper's prototype used SHA-1 and MD5
/// (Perl Digest::SHA1/MD5); SHA-256 is provided as the modern default for
/// MACs and KDFs.
enum class HashKind {
  kSha1,
  kSha256,
  kMd5,
};

const char* HashKindName(HashKind kind);

/// Digest length in bytes for `kind`.
size_t DigestLength(HashKind kind);

/// Streaming hash interface.
class Hasher {
 public:
  virtual ~Hasher() = default;

  virtual void Update(const uint8_t* data, size_t len) = 0;
  void Update(const util::Bytes& data) { Update(data.data(), data.size()); }

  /// Finalizes and returns the digest. The hasher must not be used after.
  virtual util::Bytes Finalize() = 0;

  virtual size_t DigestLength() const = 0;
  virtual size_t BlockLength() const = 0;
};

/// Creates a streaming hasher for `kind`.
std::unique_ptr<Hasher> NewHasher(HashKind kind);

/// One-shot helpers.
util::Bytes Hash(HashKind kind, const util::Bytes& data);
util::Bytes Sha1(const util::Bytes& data);
util::Bytes Sha256(const util::Bytes& data);
util::Bytes Md5(const util::Bytes& data);

}  // namespace mws::crypto

#endif  // MWSIBE_CRYPTO_HASH_H_
