#ifndef MWSIBE_CRYPTO_BLOCK_CIPHER_H_
#define MWSIBE_CRYPTO_BLOCK_CIPHER_H_

#include <memory>

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace mws::crypto {

/// Data-encapsulation ciphers available to the protocol. The paper fixes
/// DES ("We have used DES encryption method throughout this protocol");
/// 3DES and AES-128 are provided for the E10 cipher ablation.
enum class CipherKind {
  kDes,
  kTripleDes,
  kAes128,
};

const char* CipherKindName(CipherKind kind);

/// Key length in bytes (8 / 24 / 16).
size_t KeyLength(CipherKind kind);

/// Block length in bytes (8 / 8 / 16).
size_t BlockLength(CipherKind kind);

/// A keyed block cipher operating on single blocks. Obtain instances via
/// NewBlockCipher; use the mode functions in modes.h for full messages.
class BlockCipher {
 public:
  virtual ~BlockCipher() = default;

  virtual size_t block_length() const = 0;

  /// Encrypts exactly one block. `in` and `out` may alias.
  virtual void EncryptBlock(const uint8_t* in, uint8_t* out) const = 0;
  /// Decrypts exactly one block. `in` and `out` may alias.
  virtual void DecryptBlock(const uint8_t* in, uint8_t* out) const = 0;
};

/// Creates a keyed cipher; fails if `key` has the wrong length.
util::Result<std::unique_ptr<BlockCipher>> NewBlockCipher(
    CipherKind kind, const util::Bytes& key);

}  // namespace mws::crypto

#endif  // MWSIBE_CRYPTO_BLOCK_CIPHER_H_
