#include "src/crypto/block_cipher.h"

#include "src/crypto/des_internal.h"

namespace mws::crypto {

const char* CipherKindName(CipherKind kind) {
  switch (kind) {
    case CipherKind::kDes:
      return "DES";
    case CipherKind::kTripleDes:
      return "3DES";
    case CipherKind::kAes128:
      return "AES-128";
  }
  return "unknown";
}

size_t KeyLength(CipherKind kind) {
  switch (kind) {
    case CipherKind::kDes:
      return 8;
    case CipherKind::kTripleDes:
      return 24;
    case CipherKind::kAes128:
      return 16;
  }
  return 0;
}

size_t BlockLength(CipherKind kind) {
  switch (kind) {
    case CipherKind::kDes:
    case CipherKind::kTripleDes:
      return 8;
    case CipherKind::kAes128:
      return 16;
  }
  return 0;
}

util::Result<std::unique_ptr<BlockCipher>> NewBlockCipher(
    CipherKind kind, const util::Bytes& key) {
  if (key.size() != KeyLength(kind)) {
    return util::Status::InvalidArgument(
        std::string(CipherKindName(kind)) + " key must be " +
        std::to_string(KeyLength(kind)) + " bytes");
  }
  switch (kind) {
    case CipherKind::kDes:
      return NewDesCipher(key);
    case CipherKind::kTripleDes:
      return NewTripleDesCipher(key);
    case CipherKind::kAes128:
      return NewAes128Cipher(key);
  }
  return util::Status::InvalidArgument("unknown cipher kind");
}

}  // namespace mws::crypto
