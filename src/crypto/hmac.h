#ifndef MWSIBE_CRYPTO_HMAC_H_
#define MWSIBE_CRYPTO_HMAC_H_

#include "src/crypto/hash.h"
#include "src/util/bytes.h"

namespace mws::crypto {

/// HMAC (RFC 2104) over any supported hash. This is the protocol's MAC:
/// the paper's "HK(SecK_SD-MWS, ...)" message authentication code.
util::Bytes Hmac(HashKind kind, const util::Bytes& key,
                 const util::Bytes& data);

/// Convenience: HMAC-SHA-256.
util::Bytes HmacSha256(const util::Bytes& key, const util::Bytes& data);

/// Constant-time verification of `mac` against HMAC(kind, key, data).
bool VerifyHmac(HashKind kind, const util::Bytes& key, const util::Bytes& data,
                const util::Bytes& mac);

}  // namespace mws::crypto

#endif  // MWSIBE_CRYPTO_HMAC_H_
