#include "src/crypto/hmac.h"

namespace mws::crypto {

util::Bytes Hmac(HashKind kind, const util::Bytes& key,
                 const util::Bytes& data) {
  auto hasher = NewHasher(kind);
  const size_t block = hasher->BlockLength();

  util::Bytes k = key;
  if (k.size() > block) {
    k = Hash(kind, k);
  }
  k.resize(block, 0x00);

  util::Bytes ipad(block), opad(block);
  for (size_t i = 0; i < block; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  hasher->Update(ipad);
  hasher->Update(data);
  util::Bytes inner = hasher->Finalize();

  auto outer = NewHasher(kind);
  outer->Update(opad);
  outer->Update(inner);
  return outer->Finalize();
}

util::Bytes HmacSha256(const util::Bytes& key, const util::Bytes& data) {
  return Hmac(HashKind::kSha256, key, data);
}

bool VerifyHmac(HashKind kind, const util::Bytes& key, const util::Bytes& data,
                const util::Bytes& mac) {
  return util::ConstantTimeEqual(Hmac(kind, key, data), mac);
}

}  // namespace mws::crypto
