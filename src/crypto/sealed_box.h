#ifndef MWSIBE_CRYPTO_SEALED_BOX_H_
#define MWSIBE_CRYPTO_SEALED_BOX_H_

#include "src/crypto/block_cipher.h"
#include "src/crypto/rsa.h"

namespace mws::crypto {

/// Hybrid RSA sealing: RSA-OAEP wraps a fresh symmetric key, the body is
/// CBC-encrypted under it. The paper writes the token as a direct
/// E(PubKRC, ...) — infeasible for multi-attribute tickets, which exceed
/// OAEP capacity, so the MWS token generator uses this box instead
/// (deviation recorded in DESIGN.md).
///
/// Layout: u32 rsa_len | RSA-OAEP(wrap_key) | CBC(wrap_key, plaintext).
util::Result<util::Bytes> SealToPublicKey(const RsaPublicKey& key,
                                          CipherKind cipher,
                                          const util::Bytes& plaintext,
                                          util::RandomSource& rng);

util::Result<util::Bytes> OpenSealedBox(const RsaPrivateKey& key,
                                        CipherKind cipher,
                                        const util::Bytes& sealed);

}  // namespace mws::crypto

#endif  // MWSIBE_CRYPTO_SEALED_BOX_H_
