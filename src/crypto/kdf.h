#ifndef MWSIBE_CRYPTO_KDF_H_
#define MWSIBE_CRYPTO_KDF_H_

#include "src/crypto/hash.h"
#include "src/util/bytes.h"

namespace mws::crypto {

/// HKDF (RFC 5869) over SHA-256.
///
/// The protocol uses this to turn pairing values (elements of F_p2) into
/// symmetric DEM keys: key = HkdfExpand(HkdfExtract(salt, e(...)), info, n).
util::Bytes HkdfExtract(const util::Bytes& salt, const util::Bytes& ikm);
util::Bytes HkdfExpand(const util::Bytes& prk, const util::Bytes& info,
                       size_t out_len);
/// Extract-then-expand in one call.
util::Bytes Hkdf(const util::Bytes& salt, const util::Bytes& ikm,
                 const util::Bytes& info, size_t out_len);

/// The Boneh–Franklin H2-style hash: expands `input` into a mask of
/// `out_len` bytes via counter-mode hashing with `kind` (used by the
/// BasicIdent XOR pad and MapToPoint).
util::Bytes HashExpand(HashKind kind, const util::Bytes& input,
                       size_t out_len);

}  // namespace mws::crypto

#endif  // MWSIBE_CRYPTO_KDF_H_
