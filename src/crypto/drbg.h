#ifndef MWSIBE_CRYPTO_DRBG_H_
#define MWSIBE_CRYPTO_DRBG_H_

#include "src/crypto/hash.h"
#include "src/util/random.h"

namespace mws::crypto {

/// HMAC-DRBG (NIST SP 800-90A) over SHA-256.
///
/// The library's cryptographically secure RandomSource: seed once from
/// OS entropy (or a fixed seed in tests for reproducible transcripts)
/// and draw all protocol randomness from it.
class HmacDrbg : public util::RandomSource {
 public:
  /// Instantiates with `seed` as entropy input (any length > 0).
  explicit HmacDrbg(const util::Bytes& seed);

  /// Convenience: instantiate from 48 bytes of OS entropy.
  static HmacDrbg FromOsEntropy();

  void Fill(uint8_t* out, size_t len) override;

  /// Mixes fresh entropy into the state.
  void Reseed(const util::Bytes& entropy);

 private:
  void UpdateState(const util::Bytes* provided);

  util::Bytes key_;  // K, 32 bytes
  util::Bytes v_;    // V, 32 bytes
};

}  // namespace mws::crypto

#endif  // MWSIBE_CRYPTO_DRBG_H_
