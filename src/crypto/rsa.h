#ifndef MWSIBE_CRYPTO_RSA_H_
#define MWSIBE_CRYPTO_RSA_H_

#include "src/math/bigint.h"
#include "src/util/bytes.h"
#include "src/util/random.h"
#include "src/util/result.h"

namespace mws::crypto {

/// RSA public key (n, e). In the protocol the MWS token generator wraps
/// the RC's token under this key (the paper's "E(PubKRC, ...)").
struct RsaPublicKey {
  math::BigInt n;
  math::BigInt e;

  /// Modulus size in bytes.
  size_t ByteLength() const { return (n.BitLength() + 7) / 8; }
};

/// RSA private key with CRT components.
struct RsaPrivateKey {
  math::BigInt n;
  math::BigInt e;
  math::BigInt d;
  math::BigInt p;
  math::BigInt q;
  math::BigInt dp;    // d mod (p-1)
  math::BigInt dq;    // d mod (q-1)
  math::BigInt qinv;  // q^-1 mod p

  RsaPublicKey PublicKey() const { return {n, e}; }
};

struct RsaKeyPair {
  RsaPublicKey public_key;
  RsaPrivateKey private_key;
};

/// Generates an RSA key with a modulus of `bits` bits (e = 65537).
/// Pre: bits >= 512 (OAEP needs room for two SHA-256 digests).
util::Result<RsaKeyPair> RsaGenerateKeyPair(size_t bits,
                                            util::RandomSource& rng);

/// RSA-OAEP (SHA-256, MGF1-SHA-256, empty label).
/// Message capacity: ByteLength() - 66 bytes.
util::Result<util::Bytes> RsaOaepEncrypt(const RsaPublicKey& key,
                                         const util::Bytes& message,
                                         util::RandomSource& rng);
util::Result<util::Bytes> RsaOaepDecrypt(const RsaPrivateKey& key,
                                         const util::Bytes& ciphertext);

/// Compact serialization of a public key (length-prefixed n and e), used
/// by the MWS user database.
util::Bytes SerializeRsaPublicKey(const RsaPublicKey& key);
util::Result<RsaPublicKey> ParseRsaPublicKey(const util::Bytes& data);

}  // namespace mws::crypto

#endif  // MWSIBE_CRYPTO_RSA_H_
