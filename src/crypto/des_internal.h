#ifndef MWSIBE_CRYPTO_DES_INTERNAL_H_
#define MWSIBE_CRYPTO_DES_INTERNAL_H_

// Internal DES plumbing shared between des.cc and block_cipher.cc.
// Not part of the public API.

#include <cstdint>
#include <memory>

#include "src/crypto/block_cipher.h"
#include "src/util/bytes.h"

namespace mws::crypto {

/// Expands an 8-byte DES key into the 16 round subkeys.
void ComputeDesSubkeys(const uint8_t key[8], uint64_t subkeys[16]);

/// Runs the 16-round Feistel network (decrypt reverses the key order).
void DesProcessBlock(const uint64_t subkeys[16], bool decrypt,
                     const uint8_t in[8], uint8_t out[8]);

/// Factories used by NewBlockCipher. Pre: key length already validated
/// (8 bytes for DES, 24 for 3DES).
std::unique_ptr<BlockCipher> NewDesCipher(const util::Bytes& key);
std::unique_ptr<BlockCipher> NewTripleDesCipher(const util::Bytes& key);
std::unique_ptr<BlockCipher> NewAes128Cipher(const util::Bytes& key);

}  // namespace mws::crypto

#endif  // MWSIBE_CRYPTO_DES_INTERNAL_H_
