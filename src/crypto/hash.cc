#include "src/crypto/hash.h"

#include <cassert>
#include <cstring>

namespace mws::crypto {

namespace {

uint32_t Rotl32(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }
uint32_t Rotr32(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

/// Common Merkle–Damgard machinery for 64-byte-block hashes.
template <typename Derived, size_t kDigestLen, bool kBigEndianLength>
class Md64Base : public Hasher {
 public:
  void Update(const uint8_t* data, size_t len) override {
    total_bytes_ += len;
    while (len > 0) {
      size_t take = std::min(len, size_t{64} - buffer_len_);
      std::memcpy(buffer_ + buffer_len_, data, take);
      buffer_len_ += take;
      data += take;
      len -= take;
      if (buffer_len_ == 64) {
        static_cast<Derived*>(this)->Compress(buffer_);
        buffer_len_ = 0;
      }
    }
  }

  util::Bytes Finalize() override {
    uint64_t bit_len = total_bytes_ * 8;
    uint8_t pad = 0x80;
    Update(&pad, 1);
    uint8_t zero = 0x00;
    while (buffer_len_ != 56) Update(&zero, 1);
    uint8_t len_bytes[8];
    for (int i = 0; i < 8; ++i) {
      int shift = kBigEndianLength ? (56 - 8 * i) : (8 * i);
      len_bytes[i] = static_cast<uint8_t>(bit_len >> shift);
    }
    // Bypass total_bytes_ accounting for the length block.
    std::memcpy(buffer_ + buffer_len_, len_bytes, 8);
    static_cast<Derived*>(this)->Compress(buffer_);
    return static_cast<Derived*>(this)->Digest();
  }

  size_t DigestLength() const override { return kDigestLen; }
  size_t BlockLength() const override { return 64; }

 protected:
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
  uint64_t total_bytes_ = 0;
};

class Sha1Hasher : public Md64Base<Sha1Hasher, 20, /*kBigEndianLength=*/true> {
 public:
  void Compress(const uint8_t block[64]) {
    uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
             (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
             block[4 * i + 3];
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
    for (int i = 0; i < 80; ++i) {
      uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5a827999;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ed9eba1;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8f1bbcdc;
      } else {
        f = b ^ c ^ d;
        k = 0xca62c1d6;
      }
      uint32_t temp = Rotl32(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = Rotl32(b, 30);
      b = a;
      a = temp;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
  }

  util::Bytes Digest() {
    util::Bytes out(20);
    for (int i = 0; i < 5; ++i) {
      out[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
      out[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
      out[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
      out[4 * i + 3] = static_cast<uint8_t>(h_[i]);
    }
    return out;
  }

 private:
  uint32_t h_[5] = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476,
                    0xc3d2e1f0};
};

constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

class Sha256Hasher
    : public Md64Base<Sha256Hasher, 32, /*kBigEndianLength=*/true> {
 public:
  void Compress(const uint8_t block[64]) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
             (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
             block[4 * i + 3];
    }
    for (int i = 16; i < 64; ++i) {
      uint32_t s0 = Rotr32(w[i - 15], 7) ^ Rotr32(w[i - 15], 18) ^
                    (w[i - 15] >> 3);
      uint32_t s1 = Rotr32(w[i - 2], 17) ^ Rotr32(w[i - 2], 19) ^
                    (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
    uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
    for (int i = 0; i < 64; ++i) {
      uint32_t s1 = Rotr32(e, 6) ^ Rotr32(e, 11) ^ Rotr32(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t temp1 = h + s1 + ch + kSha256K[i] + w[i];
      uint32_t s0 = Rotr32(a, 2) ^ Rotr32(a, 13) ^ Rotr32(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
    h_[5] += f;
    h_[6] += g;
    h_[7] += h;
  }

  util::Bytes Digest() {
    util::Bytes out(32);
    for (int i = 0; i < 8; ++i) {
      out[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
      out[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
      out[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
      out[4 * i + 3] = static_cast<uint8_t>(h_[i]);
    }
    return out;
  }

 private:
  uint32_t h_[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
};

constexpr uint32_t kMd5K[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr int kMd5Shift[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                               7, 12, 17, 22, 5, 9,  14, 20, 5, 9,  14, 20,
                               5, 9,  14, 20, 5, 9,  14, 20, 4, 11, 16, 23,
                               4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                               6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
                               6, 10, 15, 21};

class Md5Hasher : public Md64Base<Md5Hasher, 16, /*kBigEndianLength=*/false> {
 public:
  void Compress(const uint8_t block[64]) {
    uint32_t m[16];
    for (int i = 0; i < 16; ++i) {
      m[i] = static_cast<uint32_t>(block[4 * i]) |
             (static_cast<uint32_t>(block[4 * i + 1]) << 8) |
             (static_cast<uint32_t>(block[4 * i + 2]) << 16) |
             (static_cast<uint32_t>(block[4 * i + 3]) << 24);
    }
    uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
    for (int i = 0; i < 64; ++i) {
      uint32_t f;
      int g;
      if (i < 16) {
        f = (b & c) | (~b & d);
        g = i;
      } else if (i < 32) {
        f = (d & b) | (~d & c);
        g = (5 * i + 1) % 16;
      } else if (i < 48) {
        f = b ^ c ^ d;
        g = (3 * i + 5) % 16;
      } else {
        f = c ^ (b | ~d);
        g = (7 * i) % 16;
      }
      uint32_t temp = d;
      d = c;
      c = b;
      b = b + Rotl32(a + f + kMd5K[i] + m[g], kMd5Shift[i]);
      a = temp;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
  }

  util::Bytes Digest() {
    util::Bytes out(16);
    for (int i = 0; i < 4; ++i) {
      out[4 * i] = static_cast<uint8_t>(h_[i]);
      out[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 8);
      out[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 16);
      out[4 * i + 3] = static_cast<uint8_t>(h_[i] >> 24);
    }
    return out;
  }

 private:
  uint32_t h_[4] = {0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476};
};

}  // namespace

const char* HashKindName(HashKind kind) {
  switch (kind) {
    case HashKind::kSha1:
      return "SHA-1";
    case HashKind::kSha256:
      return "SHA-256";
    case HashKind::kMd5:
      return "MD5";
  }
  return "unknown";
}

size_t DigestLength(HashKind kind) {
  switch (kind) {
    case HashKind::kSha1:
      return 20;
    case HashKind::kSha256:
      return 32;
    case HashKind::kMd5:
      return 16;
  }
  return 0;
}

std::unique_ptr<Hasher> NewHasher(HashKind kind) {
  switch (kind) {
    case HashKind::kSha1:
      return std::make_unique<Sha1Hasher>();
    case HashKind::kSha256:
      return std::make_unique<Sha256Hasher>();
    case HashKind::kMd5:
      return std::make_unique<Md5Hasher>();
  }
  assert(false && "unknown hash kind");
  return nullptr;
}

util::Bytes Hash(HashKind kind, const util::Bytes& data) {
  auto hasher = NewHasher(kind);
  hasher->Update(data);
  return hasher->Finalize();
}

util::Bytes Sha1(const util::Bytes& data) {
  return Hash(HashKind::kSha1, data);
}

util::Bytes Sha256(const util::Bytes& data) {
  return Hash(HashKind::kSha256, data);
}

util::Bytes Md5(const util::Bytes& data) { return Hash(HashKind::kMd5, data); }

}  // namespace mws::crypto
