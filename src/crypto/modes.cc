#include "src/crypto/modes.h"

namespace mws::crypto {

util::Bytes Pkcs7Pad(const util::Bytes& data, size_t block) {
  size_t pad = block - (data.size() % block);
  util::Bytes out = data;
  out.insert(out.end(), pad, static_cast<uint8_t>(pad));
  return out;
}

util::Result<util::Bytes> Pkcs7Unpad(const util::Bytes& data, size_t block) {
  if (data.empty() || data.size() % block != 0) {
    return util::Status::InvalidArgument("padded data length invalid");
  }
  uint8_t pad = data.back();
  if (pad == 0 || pad > block) {
    return util::Status::Corruption("bad PKCS#7 padding byte");
  }
  for (size_t i = data.size() - pad; i < data.size(); ++i) {
    if (data[i] != pad) return util::Status::Corruption("bad PKCS#7 padding");
  }
  return util::Bytes(data.begin(), data.end() - pad);
}

util::Result<util::Bytes> CbcEncrypt(CipherKind kind, const util::Bytes& key,
                                     const util::Bytes& plaintext,
                                     util::RandomSource& rng) {
  MWS_ASSIGN_OR_RETURN(std::unique_ptr<BlockCipher> cipher,
                       NewBlockCipher(kind, key));
  const size_t block = cipher->block_length();
  util::Bytes padded = Pkcs7Pad(plaintext, block);
  util::Bytes out = rng.Generate(block);  // IV
  out.reserve(block + padded.size());
  util::Bytes prev(out.begin(), out.end());
  util::Bytes buf(block);
  for (size_t off = 0; off < padded.size(); off += block) {
    for (size_t i = 0; i < block; ++i) buf[i] = padded[off + i] ^ prev[i];
    cipher->EncryptBlock(buf.data(), buf.data());
    out.insert(out.end(), buf.begin(), buf.end());
    prev = buf;
  }
  return out;
}

util::Result<util::Bytes> CbcDecrypt(CipherKind kind, const util::Bytes& key,
                                     const util::Bytes& ciphertext) {
  MWS_ASSIGN_OR_RETURN(std::unique_ptr<BlockCipher> cipher,
                       NewBlockCipher(kind, key));
  const size_t block = cipher->block_length();
  if (ciphertext.size() < 2 * block || ciphertext.size() % block != 0) {
    return util::Status::InvalidArgument("ciphertext length invalid");
  }
  util::Bytes prev(ciphertext.begin(), ciphertext.begin() + block);
  util::Bytes out;
  out.reserve(ciphertext.size() - block);
  util::Bytes buf(block);
  for (size_t off = block; off < ciphertext.size(); off += block) {
    cipher->DecryptBlock(ciphertext.data() + off, buf.data());
    for (size_t i = 0; i < block; ++i) buf[i] ^= prev[i];
    out.insert(out.end(), buf.begin(), buf.end());
    prev.assign(ciphertext.begin() + off, ciphertext.begin() + off + block);
  }
  return Pkcs7Unpad(out, block);
}

namespace {

/// CTR keystream transform starting from `counter0`; in-place over `data`.
void CtrTransform(const BlockCipher& cipher, util::Bytes counter,
                  util::Bytes& data) {
  const size_t block = cipher.block_length();
  util::Bytes keystream(block);
  for (size_t off = 0; off < data.size(); off += block) {
    cipher.EncryptBlock(counter.data(), keystream.data());
    size_t n = std::min(block, data.size() - off);
    for (size_t i = 0; i < n; ++i) data[off + i] ^= keystream[i];
    // Increment big-endian counter.
    for (size_t i = block; i-- > 0;) {
      if (++counter[i] != 0) break;
    }
  }
}

}  // namespace

util::Result<util::Bytes> CtrEncrypt(CipherKind kind, const util::Bytes& key,
                                     const util::Bytes& plaintext,
                                     util::RandomSource& rng) {
  MWS_ASSIGN_OR_RETURN(std::unique_ptr<BlockCipher> cipher,
                       NewBlockCipher(kind, key));
  const size_t block = cipher->block_length();
  util::Bytes nonce = rng.Generate(block);
  util::Bytes body = plaintext;
  CtrTransform(*cipher, nonce, body);
  util::Bytes out = nonce;
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

util::Result<util::Bytes> CtrDecrypt(CipherKind kind, const util::Bytes& key,
                                     const util::Bytes& ciphertext) {
  MWS_ASSIGN_OR_RETURN(std::unique_ptr<BlockCipher> cipher,
                       NewBlockCipher(kind, key));
  const size_t block = cipher->block_length();
  if (ciphertext.size() < block) {
    return util::Status::InvalidArgument("ciphertext shorter than nonce");
  }
  util::Bytes nonce(ciphertext.begin(), ciphertext.begin() + block);
  util::Bytes body(ciphertext.begin() + block, ciphertext.end());
  CtrTransform(*cipher, nonce, body);
  return body;
}

}  // namespace mws::crypto
