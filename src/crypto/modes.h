#ifndef MWSIBE_CRYPTO_MODES_H_
#define MWSIBE_CRYPTO_MODES_H_

#include "src/crypto/block_cipher.h"
#include "src/util/random.h"
#include "src/util/result.h"

namespace mws::crypto {

/// CBC mode with PKCS#7 padding. The IV is prepended to the ciphertext,
/// so output length = block + padded-plaintext length.
util::Result<util::Bytes> CbcEncrypt(CipherKind kind, const util::Bytes& key,
                                     const util::Bytes& plaintext,
                                     util::RandomSource& rng);

/// Inverse of CbcEncrypt; fails on truncated input or bad padding.
util::Result<util::Bytes> CbcDecrypt(CipherKind kind, const util::Bytes& key,
                                     const util::Bytes& ciphertext);

/// CTR mode (no padding; length-preserving plus the prepended nonce block).
util::Result<util::Bytes> CtrEncrypt(CipherKind kind, const util::Bytes& key,
                                     const util::Bytes& plaintext,
                                     util::RandomSource& rng);
util::Result<util::Bytes> CtrDecrypt(CipherKind kind, const util::Bytes& key,
                                     const util::Bytes& ciphertext);

/// PKCS#7: appends 1..block bytes each equal to the pad length.
util::Bytes Pkcs7Pad(const util::Bytes& data, size_t block);
/// Validates and strips PKCS#7 padding.
util::Result<util::Bytes> Pkcs7Unpad(const util::Bytes& data, size_t block);

}  // namespace mws::crypto

#endif  // MWSIBE_CRYPTO_MODES_H_
