#include "src/crypto/rsa.h"

#include "src/crypto/hash.h"
#include "src/crypto/kdf.h"

namespace mws::crypto {

using math::BigInt;

namespace {

constexpr size_t kHashLen = 32;  // SHA-256

/// MGF1 with SHA-256 (RFC 8017 B.2.1): same construction as HashExpand
/// but with the counter appended rather than prepended.
util::Bytes Mgf1(const util::Bytes& seed, size_t out_len) {
  util::Bytes out;
  out.reserve(out_len);
  uint32_t counter = 0;
  while (out.size() < out_len) {
    util::Bytes data = seed;
    data.push_back(static_cast<uint8_t>(counter >> 24));
    data.push_back(static_cast<uint8_t>(counter >> 16));
    data.push_back(static_cast<uint8_t>(counter >> 8));
    data.push_back(static_cast<uint8_t>(counter));
    util::Bytes digest = Sha256(data);
    size_t take = std::min(digest.size(), out_len - out.size());
    out.insert(out.end(), digest.begin(), digest.begin() + take);
    ++counter;
  }
  return out;
}

}  // namespace

util::Result<RsaKeyPair> RsaGenerateKeyPair(size_t bits,
                                            util::RandomSource& rng) {
  if (bits < 512) {
    return util::Status::InvalidArgument("RSA modulus must be >= 512 bits");
  }
  const BigInt e(65537);
  RsaPrivateKey priv;
  for (;;) {
    BigInt p = BigInt::GeneratePrime(rng, bits / 2);
    BigInt q = BigInt::GeneratePrime(rng, bits - bits / 2);
    if (p == q) continue;
    BigInt n = p * q;
    if (n.BitLength() != bits) continue;
    BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    auto d = BigInt::ModInverse(e, phi);
    if (!d.ok()) continue;  // gcd(e, phi) != 1; rare
    priv.n = n;
    priv.e = e;
    priv.d = d.value();
    priv.p = p;
    priv.q = q;
    priv.dp = BigInt::Mod(priv.d, p - BigInt(1));
    priv.dq = BigInt::Mod(priv.d, q - BigInt(1));
    priv.qinv = BigInt::ModInverse(q, p).value();
    break;
  }
  return RsaKeyPair{priv.PublicKey(), priv};
}

util::Result<util::Bytes> RsaOaepEncrypt(const RsaPublicKey& key,
                                         const util::Bytes& message,
                                         util::RandomSource& rng) {
  const size_t k = key.ByteLength();
  if (k < 2 * kHashLen + 2) {
    return util::Status::InvalidArgument("modulus too small for OAEP");
  }
  const size_t max_msg = k - 2 * kHashLen - 2;
  if (message.size() > max_msg) {
    return util::Status::InvalidArgument("message too long for RSA-OAEP");
  }
  // DB = lHash || PS (zeros) || 0x01 || M.
  util::Bytes db = Sha256({});
  db.insert(db.end(), k - message.size() - 2 * kHashLen - 2, 0x00);
  db.push_back(0x01);
  db.insert(db.end(), message.begin(), message.end());

  util::Bytes seed = rng.Generate(kHashLen);
  util::Bytes db_mask = Mgf1(seed, db.size());
  for (size_t i = 0; i < db.size(); ++i) db[i] ^= db_mask[i];
  util::Bytes seed_mask = Mgf1(db, kHashLen);
  for (size_t i = 0; i < kHashLen; ++i) seed[i] ^= seed_mask[i];

  util::Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.insert(em.end(), seed.begin(), seed.end());
  em.insert(em.end(), db.begin(), db.end());

  BigInt m = BigInt::FromBytesBe(em);
  BigInt c = BigInt::ModPow(m, key.e, key.n);
  return c.ToBytesBe(k);
}

util::Result<util::Bytes> RsaOaepDecrypt(const RsaPrivateKey& key,
                                         const util::Bytes& ciphertext) {
  const size_t k = (key.n.BitLength() + 7) / 8;
  if (ciphertext.size() != k || k < 2 * kHashLen + 2) {
    return util::Status::InvalidArgument("RSA ciphertext length invalid");
  }
  BigInt c = BigInt::FromBytesBe(ciphertext);
  if (c >= key.n) {
    return util::Status::InvalidArgument("RSA ciphertext out of range");
  }
  // CRT: m1 = c^dp mod p, m2 = c^dq mod q.
  BigInt m1 = BigInt::ModPow(c, key.dp, key.p);
  BigInt m2 = BigInt::ModPow(c, key.dq, key.q);
  BigInt h = BigInt::Mod(key.qinv * (m1 - m2), key.p);
  BigInt m = m2 + key.q * h;
  util::Bytes em = m.ToBytesBe(k);

  if (em[0] != 0x00) return util::Status::Corruption("OAEP decoding failed");
  util::Bytes seed(em.begin() + 1, em.begin() + 1 + kHashLen);
  util::Bytes db(em.begin() + 1 + kHashLen, em.end());
  util::Bytes seed_mask = Mgf1(db, kHashLen);
  for (size_t i = 0; i < kHashLen; ++i) seed[i] ^= seed_mask[i];
  util::Bytes db_mask = Mgf1(seed, db.size());
  for (size_t i = 0; i < db.size(); ++i) db[i] ^= db_mask[i];

  util::Bytes lhash = Sha256({});
  if (!util::ConstantTimeEqual(
          util::Bytes(db.begin(), db.begin() + kHashLen), lhash)) {
    return util::Status::Corruption("OAEP decoding failed");
  }
  size_t i = kHashLen;
  while (i < db.size() && db[i] == 0x00) ++i;
  if (i == db.size() || db[i] != 0x01) {
    return util::Status::Corruption("OAEP decoding failed");
  }
  return util::Bytes(db.begin() + i + 1, db.end());
}

util::Bytes SerializeRsaPublicKey(const RsaPublicKey& key) {
  auto put = [](util::Bytes& out, const util::Bytes& field) {
    uint32_t len = static_cast<uint32_t>(field.size());
    out.push_back(static_cast<uint8_t>(len >> 24));
    out.push_back(static_cast<uint8_t>(len >> 16));
    out.push_back(static_cast<uint8_t>(len >> 8));
    out.push_back(static_cast<uint8_t>(len));
    out.insert(out.end(), field.begin(), field.end());
  };
  util::Bytes out;
  put(out, key.n.ToBytesBe());
  put(out, key.e.ToBytesBe());
  return out;
}

util::Result<RsaPublicKey> ParseRsaPublicKey(const util::Bytes& data) {
  size_t pos = 0;
  auto get = [&](util::Bytes* field) -> bool {
    if (pos + 4 > data.size()) return false;
    uint32_t len = (static_cast<uint32_t>(data[pos]) << 24) |
                   (static_cast<uint32_t>(data[pos + 1]) << 16) |
                   (static_cast<uint32_t>(data[pos + 2]) << 8) |
                   data[pos + 3];
    pos += 4;
    if (pos + len > data.size()) return false;
    field->assign(data.begin() + pos, data.begin() + pos + len);
    pos += len;
    return true;
  };
  util::Bytes n_bytes, e_bytes;
  if (!get(&n_bytes) || !get(&e_bytes) || pos != data.size()) {
    return util::Status::InvalidArgument("malformed RSA public key");
  }
  RsaPublicKey key;
  key.n = BigInt::FromBytesBe(n_bytes);
  key.e = BigInt::FromBytesBe(e_bytes);
  if (key.n.IsZero() || key.e.IsZero()) {
    return util::Status::InvalidArgument("degenerate RSA public key");
  }
  return key;
}

}  // namespace mws::crypto
