#include "src/crypto/drbg.h"

#include "src/crypto/hmac.h"

namespace mws::crypto {

HmacDrbg::HmacDrbg(const util::Bytes& seed)
    : key_(32, 0x00), v_(32, 0x01) {
  UpdateState(&seed);
}

HmacDrbg HmacDrbg::FromOsEntropy() {
  return HmacDrbg(util::OsRandom::Instance().Generate(48));
}

void HmacDrbg::UpdateState(const util::Bytes* provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V).
  util::Bytes data = v_;
  data.push_back(0x00);
  if (provided != nullptr) {
    data.insert(data.end(), provided->begin(), provided->end());
  }
  key_ = HmacSha256(key_, data);
  v_ = HmacSha256(key_, v_);
  if (provided == nullptr) return;
  data = v_;
  data.push_back(0x01);
  data.insert(data.end(), provided->begin(), provided->end());
  key_ = HmacSha256(key_, data);
  v_ = HmacSha256(key_, v_);
}

void HmacDrbg::Reseed(const util::Bytes& entropy) { UpdateState(&entropy); }

void HmacDrbg::Fill(uint8_t* out, size_t len) {
  size_t produced = 0;
  while (produced < len) {
    v_ = HmacSha256(key_, v_);
    size_t take = std::min(v_.size(), len - produced);
    std::copy(v_.begin(), v_.begin() + take, out + produced);
    produced += take;
  }
  UpdateState(nullptr);
}

}  // namespace mws::crypto
