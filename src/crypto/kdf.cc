#include "src/crypto/kdf.h"

#include <cassert>

#include "src/crypto/hmac.h"

namespace mws::crypto {

util::Bytes HkdfExtract(const util::Bytes& salt, const util::Bytes& ikm) {
  util::Bytes s = salt.empty() ? util::Bytes(32, 0x00) : salt;
  return HmacSha256(s, ikm);
}

util::Bytes HkdfExpand(const util::Bytes& prk, const util::Bytes& info,
                       size_t out_len) {
  assert(out_len <= 255 * 32);
  util::Bytes out;
  out.reserve(out_len);
  util::Bytes t;
  uint8_t counter = 1;
  while (out.size() < out_len) {
    util::Bytes data = t;
    data.insert(data.end(), info.begin(), info.end());
    data.push_back(counter++);
    t = HmacSha256(prk, data);
    size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
  }
  return out;
}

util::Bytes Hkdf(const util::Bytes& salt, const util::Bytes& ikm,
                 const util::Bytes& info, size_t out_len) {
  return HkdfExpand(HkdfExtract(salt, ikm), info, out_len);
}

util::Bytes HashExpand(HashKind kind, const util::Bytes& input,
                       size_t out_len) {
  util::Bytes out;
  out.reserve(out_len);
  uint32_t counter = 0;
  while (out.size() < out_len) {
    auto hasher = NewHasher(kind);
    uint8_t ctr_bytes[4] = {static_cast<uint8_t>(counter >> 24),
                            static_cast<uint8_t>(counter >> 16),
                            static_cast<uint8_t>(counter >> 8),
                            static_cast<uint8_t>(counter)};
    hasher->Update(ctr_bytes, 4);
    hasher->Update(input);
    util::Bytes digest = hasher->Finalize();
    size_t take = std::min(digest.size(), out_len - out.size());
    out.insert(out.end(), digest.begin(), digest.begin() + take);
    ++counter;
  }
  return out;
}

}  // namespace mws::crypto
