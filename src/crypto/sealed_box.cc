#include "src/crypto/sealed_box.h"

#include "src/crypto/modes.h"
#include "src/util/serde.h"

namespace mws::crypto {

util::Result<util::Bytes> SealToPublicKey(const RsaPublicKey& key,
                                          CipherKind cipher,
                                          const util::Bytes& plaintext,
                                          util::RandomSource& rng) {
  util::Bytes wrap_key = rng.Generate(KeyLength(cipher));
  MWS_ASSIGN_OR_RETURN(util::Bytes wrapped,
                       RsaOaepEncrypt(key, wrap_key, rng));
  MWS_ASSIGN_OR_RETURN(util::Bytes body,
                       CbcEncrypt(cipher, wrap_key, plaintext, rng));
  util::SecureWipe(wrap_key);
  util::Writer w;
  w.PutBytes(wrapped);
  w.PutRaw(body);
  return w.Take();
}

util::Result<util::Bytes> OpenSealedBox(const RsaPrivateKey& key,
                                        CipherKind cipher,
                                        const util::Bytes& sealed) {
  util::Reader r(sealed);
  util::Bytes wrapped;
  if (!r.GetBytes(&wrapped)) {
    return util::Status::InvalidArgument("malformed sealed box");
  }
  util::Bytes body;
  if (!r.GetRaw(r.remaining(), &body)) {
    return util::Status::InvalidArgument("malformed sealed box");
  }
  MWS_ASSIGN_OR_RETURN(util::Bytes wrap_key, RsaOaepDecrypt(key, wrapped));
  auto plain = CbcDecrypt(cipher, wrap_key, body);
  util::SecureWipe(wrap_key);
  return plain;
}

}  // namespace mws::crypto
