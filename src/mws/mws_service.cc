#include "src/mws/mws_service.h"

#include "src/ibe/attribute.h"
#include "src/mws/policy_expr.h"

namespace mws::mws {

namespace {

/// The PolicyDb inherits the service-wide metrics sink unless the
/// caller wired its own.
store::PolicyDbOptions ResolvePolicyOptions(const MwsOptions& options) {
  store::PolicyDbOptions policy = options.policy;
  if (policy.metrics == nullptr) policy.metrics = options.metrics;
  return policy;
}

}  // namespace

MwsService::MwsService(store::Table* storage, util::Bytes mws_pkg_key,
                       const util::Clock* clock, util::RandomSource* rng,
                       MwsOptions options)
    : options_(options),
      rng_(rng),
      message_db_(storage, options.metrics),
      policy_db_(storage, ResolvePolicyOptions(options)),
      user_db_(storage),
      device_keys_(storage),
      sda_(&device_keys_, clock, options.freshness_window_micros),
      gatekeeper_(&user_db_, clock, &rng_, options.cipher,
                  options.freshness_window_micros, options.metrics,
                  options.tuning),
      mms_(&message_db_, &policy_db_),
      token_generator_(std::move(mws_pkg_key), options.cipher, clock, &rng_,
                       options.ticket_lifetime_micros) {
  deposit_obs_ = ResolveOp("deposit");
  auth_obs_ = ResolveOp("auth");
  retrieve_obs_ = ResolveOp("retrieve");
  deposit_batch_obs_ = ResolveOp("deposit_batch");
  retrieve_chunk_obs_ = ResolveOp("retrieve_chunk");
  if (options_.metrics != nullptr) {
    deposit_batch_size_ =
        options_.metrics->GetHistogram("mws.batch_size", {{"op", "deposit_batch"}});
    retrieve_chunk_size_ = options_.metrics->GetHistogram(
        "mws.batch_size", {{"op", "retrieve_chunk"}});
    deposit_batch_item_us_ = options_.metrics->GetHistogram(
        "mws.batch_item_us", {{"op", "deposit_batch"}});
  }
}

MwsService::OpInstruments MwsService::ResolveOp(const char* op) {
  OpInstruments out;
  if (options_.metrics == nullptr) return out;
  out.requests = options_.metrics->GetCounter("mws.requests", {{"op", op}});
  out.errors = options_.metrics->GetCounter("mws.errors", {{"op", op}});
  out.latency = options_.metrics->GetHistogram("mws.latency_us", {{"op", op}});
  return out;
}

namespace {

/// Success/failure accounting shared by the three protocol ops.
template <typename ResultT>
void CountOutcome(const ResultT& result, obs::Counter* requests,
                  obs::Counter* errors) {
  if (requests != nullptr) requests->Increment();
  if (errors != nullptr && !result.ok()) errors->Increment();
}

}  // namespace

util::Status MwsService::RegisterDevice(const std::string& device_id,
                                        const util::Bytes& mac_key) {
  if (device_id.empty() || mac_key.empty()) {
    return util::Status::InvalidArgument("device id and key required");
  }
  return device_keys_.Register(device_id, mac_key);
}

util::Status MwsService::RegisterReceivingClient(
    const std::string& rc_identity, const util::Bytes& password_hash,
    const util::Bytes& rsa_public_key) {
  if (rc_identity.empty() || password_hash.empty()) {
    return util::Status::InvalidArgument("identity and password required");
  }
  return user_db_.Register({rc_identity, password_hash, rsa_public_key});
}

util::Result<uint64_t> MwsService::GrantAttribute(
    const std::string& rc_identity, const std::string& attribute) {
  MWS_RETURN_IF_ERROR(ibe::ValidateAttribute(attribute));
  if (!user_db_.Get(rc_identity).ok()) {
    return util::Status::NotFound("unknown receiving client: " + rc_identity);
  }
  return policy_db_.Grant(rc_identity, attribute);
}

util::Status MwsService::RevokeAttribute(const std::string& rc_identity,
                                         const std::string& attribute) {
  return policy_db_.Revoke(rc_identity, attribute);
}

util::Result<uint64_t> MwsService::GrantPolicyExpression(
    const std::string& rc_identity, const std::string& expression) {
  if (!user_db_.Get(rc_identity).ok()) {
    return util::Status::NotFound("unknown receiving client: " + rc_identity);
  }
  // Validate the expression now so stored text always parses.
  MWS_RETURN_IF_ERROR(PolicyExpression::Parse(expression).status());
  return policy_db_.GrantExpression(rc_identity, expression);
}

util::Status MwsService::RevokePolicyExpression(const std::string& rc_identity,
                                                uint64_t seq) {
  return policy_db_.RevokeExpression(rc_identity, seq);
}

util::Result<std::vector<store::PolicyRow>> MwsService::PolicyTable() const {
  return policy_db_.AllRows();
}

util::Result<size_t> MwsService::PruneMessagesThrough(uint64_t max_id) {
  return message_db_.PruneThrough(max_id);
}

util::Result<wire::DepositResponse> MwsService::Deposit(
    const wire::DepositRequest& request) {
  obs::ScopedTimer timer(deposit_obs_.latency);
  obs::Span span = obs::Tracer::MaybeStartTrace(options_.tracer, "mws.deposit");
  util::Result<wire::DepositResponse> result = DepositImpl(request, span);
  CountOutcome(result, deposit_obs_.requests, deposit_obs_.errors);
  return result;
}

util::Result<wire::DepositResponse> MwsService::DepositImpl(
    const wire::DepositRequest& request, obs::Span& span) {
  {
    obs::Span verify = span.Child("sda.verify");
    MWS_RETURN_IF_ERROR(sda_.Verify(request));
  }
  MWS_RETURN_IF_ERROR(ibe::ValidateAttribute(request.attribute));
  store::StoredMessage m;
  m.u = request.u;
  m.ciphertext = request.ciphertext;
  m.attribute = request.attribute;
  m.nonce = request.nonce;
  m.device_id = request.device_id;
  m.timestamp_micros = request.timestamp_micros;
  // At-least-once delivery: a device whose ack was lost retransmits the
  // identical deposit, so dedupe by (ID_SD, nonce) instead of storing twice.
  obs::Span append = span.Child("md.append");
  MWS_ASSIGN_OR_RETURN(store::MessageDb::AppendOutcome outcome,
                       message_db_.AppendDeduped(m));
  return wire::DepositResponse{outcome.id};
}

util::Result<wire::DepositBatchResponse> MwsService::DepositBatch(
    const wire::DepositBatchRequest& request) {
  const int64_t start_us = obs::SteadyNowMicros();
  obs::Span span =
      obs::Tracer::MaybeStartTrace(options_.tracer, "mws.deposit_batch");
  util::Result<wire::DepositBatchResponse> result =
      DepositBatchImpl(request, span);
  CountOutcome(result, deposit_batch_obs_.requests, deposit_batch_obs_.errors);
  const uint64_t elapsed_us =
      static_cast<uint64_t>(obs::SteadyNowMicros() - start_us);
  if (deposit_batch_obs_.latency != nullptr) {
    deposit_batch_obs_.latency->Record(elapsed_us);
  }
  if (deposit_batch_size_ != nullptr) {
    deposit_batch_size_->Record(request.items.size());
  }
  if (deposit_batch_item_us_ != nullptr && !request.items.empty()) {
    // Amortized cost of one message inside the batch — the number the
    // batch path exists to shrink (compare against mws.latency_us{op=
    // deposit}).
    deposit_batch_item_us_->Record(elapsed_us / request.items.size());
  }
  return result;
}

util::Result<wire::DepositBatchResponse> MwsService::DepositBatchImpl(
    const wire::DepositBatchRequest& request, obs::Span& span) {
  wire::DepositBatchResponse response;
  response.items.resize(request.items.size());

  // Per-item admission: a bad MAC or attribute rejects that item only,
  // exactly as N independent Deposits would. Valid items proceed to one
  // grouped append.
  std::vector<store::StoredMessage> valid;
  std::vector<size_t> valid_index;  // position of valid[i] in the request
  valid.reserve(request.items.size());
  {
    obs::Span verify = span.Child("sda.verify_batch");
    for (size_t i = 0; i < request.items.size(); ++i) {
      const wire::DepositRequest& item = request.items[i];
      util::Status admitted = sda_.Verify(item);
      if (admitted.ok()) admitted = ibe::ValidateAttribute(item.attribute);
      if (!admitted.ok()) {
        response.items[i].ok = false;
        response.items[i].error = wire::EncodeWireError(admitted);
        continue;
      }
      store::StoredMessage m;
      m.u = item.u;
      m.ciphertext = item.ciphertext;
      m.attribute = item.attribute;
      m.nonce = item.nonce;
      m.device_id = item.device_id;
      m.timestamp_micros = item.timestamp_micros;
      valid.push_back(std::move(m));
      valid_index.push_back(i);
    }
  }

  if (!valid.empty()) {
    obs::Span append = span.Child("md.append_batch");
    MWS_ASSIGN_OR_RETURN(std::vector<store::MessageDb::AppendOutcome> outcomes,
                         message_db_.AppendDedupedBatch(valid));
    for (size_t v = 0; v < outcomes.size(); ++v) {
      response.items[valid_index[v]].ok = true;
      response.items[valid_index[v]].message_id = outcomes[v].id;
      response.items[valid_index[v]].deduplicated = outcomes[v].deduplicated;
    }
  }
  return response;
}

util::Result<wire::RcAuthResponse> MwsService::Authenticate(
    const wire::RcAuthRequest& request) {
  obs::ScopedTimer timer(auth_obs_.latency);
  obs::Span span = obs::Tracer::MaybeStartTrace(options_.tracer, "mws.auth");
  util::Result<wire::RcAuthResponse> result = [&] {
    obs::Span child = span.Child("gatekeeper.auth");
    return gatekeeper_.Authenticate(request);
  }();
  CountOutcome(result, auth_obs_.requests, auth_obs_.errors);
  return result;
}

util::Result<wire::RetrieveResponse> MwsService::Retrieve(
    const wire::RetrieveRequest& request) {
  obs::ScopedTimer timer(retrieve_obs_.latency);
  obs::Span span =
      obs::Tracer::MaybeStartTrace(options_.tracer, "mws.retrieve");
  util::Result<wire::RetrieveResponse> result = RetrieveImpl(request, span);
  CountOutcome(result, retrieve_obs_.requests, retrieve_obs_.errors);
  return result;
}

util::Result<wire::RetrieveResponse> MwsService::RetrieveImpl(
    const wire::RetrieveRequest& request, obs::Span& span) {
  RcSession session;
  {
    obs::Span lookup = span.Child("gatekeeper.session");
    MWS_ASSIGN_OR_RETURN(session, gatekeeper_.GetSession(request.session_id));
  }
  wire::RetrieveResponse response;
  {
    obs::Span fetch = span.Child("mms.fetch");
    MWS_ASSIGN_OR_RETURN(
        response.messages,
        mms_.FetchFor(session.rc_identity, request.after_message_id,
                      request.from_micros, request.to_micros));
  }
  obs::Span token = span.Child("tg.token");
  MWS_ASSIGN_OR_RETURN(std::vector<store::PolicyRow> grants,
                       mms_.GrantsFor(session.rc_identity));
  MWS_ASSIGN_OR_RETURN(
      response.token,
      token_generator_.IssueToken(session.rc_identity,
                                  session.rsa_public_key, grants));
  return response;
}

util::Result<wire::RetrieveChunkResponse> MwsService::RetrieveChunk(
    const wire::RetrieveChunkRequest& request) {
  obs::ScopedTimer timer(retrieve_chunk_obs_.latency);
  obs::Span span =
      obs::Tracer::MaybeStartTrace(options_.tracer, "mws.retrieve_chunk");
  util::Result<wire::RetrieveChunkResponse> result =
      RetrieveChunkImpl(request, span);
  CountOutcome(result, retrieve_chunk_obs_.requests,
               retrieve_chunk_obs_.errors);
  if (retrieve_chunk_size_ != nullptr && result.ok()) {
    retrieve_chunk_size_->Record(result.value().messages.size());
  }
  return result;
}

util::Result<wire::RetrieveChunkResponse> MwsService::RetrieveChunkImpl(
    const wire::RetrieveChunkRequest& request, obs::Span& span) {
  if (request.max_messages == 0) {
    return util::Status::InvalidArgument("max_messages must be positive");
  }
  RcSession session;
  {
    obs::Span lookup = span.Child("gatekeeper.session");
    MWS_ASSIGN_OR_RETURN(session, gatekeeper_.GetSession(request.session_id));
  }
  wire::RetrieveChunkResponse response;
  {
    obs::Span fetch = span.Child("mms.fetch_chunk");
    MWS_ASSIGN_OR_RETURN(
        MessageManagementSystem::Chunk chunk,
        mms_.FetchChunkFor(session.rc_identity, request.after_message_id,
                           request.from_micros, request.to_micros,
                           request.max_messages));
    response.messages = std::move(chunk.messages);
    response.has_more = chunk.has_more;
    response.next_after_id = chunk.next_after_id;
  }
  // The token covers the whole sweep, so issuing it per chunk would be
  // wasted RSA + cipher work; only the final chunk carries one.
  if (!response.has_more) {
    obs::Span token = span.Child("tg.token");
    MWS_ASSIGN_OR_RETURN(std::vector<store::PolicyRow> grants,
                         mms_.GrantsFor(session.rc_identity));
    MWS_ASSIGN_OR_RETURN(
        response.token,
        token_generator_.IssueToken(session.rc_identity,
                                    session.rsa_public_key, grants));
  }
  return response;
}

void MwsService::RegisterEndpoints(wire::InProcessTransport* transport) {
  transport->Register(
      "mws.deposit",
      [this](const util::Bytes& raw) -> util::Result<util::Bytes> {
        MWS_ASSIGN_OR_RETURN(wire::DepositRequest request,
                             wire::DepositRequest::Decode(raw));
        MWS_ASSIGN_OR_RETURN(wire::DepositResponse response,
                             Deposit(request));
        return response.Encode();
      });
  transport->Register(
      "mws.auth",
      [this](const util::Bytes& raw) -> util::Result<util::Bytes> {
        MWS_ASSIGN_OR_RETURN(wire::RcAuthRequest request,
                             wire::RcAuthRequest::Decode(raw));
        MWS_ASSIGN_OR_RETURN(wire::RcAuthResponse response,
                             Authenticate(request));
        return response.Encode();
      });
  transport->Register(
      "mws.retrieve",
      [this](const util::Bytes& raw) -> util::Result<util::Bytes> {
        MWS_ASSIGN_OR_RETURN(wire::RetrieveRequest request,
                             wire::RetrieveRequest::Decode(raw));
        MWS_ASSIGN_OR_RETURN(wire::RetrieveResponse response,
                             Retrieve(request));
        return response.Encode();
      });
  transport->Register(
      "mws.deposit_batch",
      [this](const util::Bytes& raw) -> util::Result<util::Bytes> {
        MWS_ASSIGN_OR_RETURN(wire::DepositBatchRequest request,
                             wire::DepositBatchRequest::Decode(raw));
        MWS_ASSIGN_OR_RETURN(wire::DepositBatchResponse response,
                             DepositBatch(request));
        return response.Encode();
      });
  transport->Register(
      "mws.retrieve_chunk",
      [this](const util::Bytes& raw) -> util::Result<util::Bytes> {
        MWS_ASSIGN_OR_RETURN(wire::RetrieveChunkRequest request,
                             wire::RetrieveChunkRequest::Decode(raw));
        MWS_ASSIGN_OR_RETURN(wire::RetrieveChunkResponse response,
                             RetrieveChunk(request));
        return response.Encode();
      });
}

}  // namespace mws::mws
