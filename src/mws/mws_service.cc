#include "src/mws/mws_service.h"

#include "src/ibe/attribute.h"
#include "src/mws/policy_expr.h"

namespace mws::mws {

MwsService::MwsService(store::Table* storage, util::Bytes mws_pkg_key,
                       const util::Clock* clock, util::RandomSource* rng,
                       MwsOptions options)
    : options_(options),
      rng_(rng),
      message_db_(storage, options.metrics),
      policy_db_(storage),
      user_db_(storage),
      device_keys_(storage),
      sda_(&device_keys_, clock, options.freshness_window_micros),
      gatekeeper_(&user_db_, clock, &rng_, options.cipher,
                  options.freshness_window_micros, options.metrics),
      mms_(&message_db_, &policy_db_),
      token_generator_(std::move(mws_pkg_key), options.cipher, clock, &rng_,
                       options.ticket_lifetime_micros) {
  deposit_obs_ = ResolveOp("deposit");
  auth_obs_ = ResolveOp("auth");
  retrieve_obs_ = ResolveOp("retrieve");
}

MwsService::OpInstruments MwsService::ResolveOp(const char* op) {
  OpInstruments out;
  if (options_.metrics == nullptr) return out;
  out.requests = options_.metrics->GetCounter("mws.requests", {{"op", op}});
  out.errors = options_.metrics->GetCounter("mws.errors", {{"op", op}});
  out.latency = options_.metrics->GetHistogram("mws.latency_us", {{"op", op}});
  return out;
}

namespace {

/// Success/failure accounting shared by the three protocol ops.
template <typename ResultT>
void CountOutcome(const ResultT& result, obs::Counter* requests,
                  obs::Counter* errors) {
  if (requests != nullptr) requests->Increment();
  if (errors != nullptr && !result.ok()) errors->Increment();
}

}  // namespace

util::Status MwsService::RegisterDevice(const std::string& device_id,
                                        const util::Bytes& mac_key) {
  if (device_id.empty() || mac_key.empty()) {
    return util::Status::InvalidArgument("device id and key required");
  }
  return device_keys_.Register(device_id, mac_key);
}

util::Status MwsService::RegisterReceivingClient(
    const std::string& rc_identity, const util::Bytes& password_hash,
    const util::Bytes& rsa_public_key) {
  if (rc_identity.empty() || password_hash.empty()) {
    return util::Status::InvalidArgument("identity and password required");
  }
  return user_db_.Register({rc_identity, password_hash, rsa_public_key});
}

util::Result<uint64_t> MwsService::GrantAttribute(
    const std::string& rc_identity, const std::string& attribute) {
  MWS_RETURN_IF_ERROR(ibe::ValidateAttribute(attribute));
  if (!user_db_.Get(rc_identity).ok()) {
    return util::Status::NotFound("unknown receiving client: " + rc_identity);
  }
  return policy_db_.Grant(rc_identity, attribute);
}

util::Status MwsService::RevokeAttribute(const std::string& rc_identity,
                                         const std::string& attribute) {
  return policy_db_.Revoke(rc_identity, attribute);
}

util::Result<uint64_t> MwsService::GrantPolicyExpression(
    const std::string& rc_identity, const std::string& expression) {
  if (!user_db_.Get(rc_identity).ok()) {
    return util::Status::NotFound("unknown receiving client: " + rc_identity);
  }
  // Validate the expression now so stored text always parses.
  MWS_RETURN_IF_ERROR(PolicyExpression::Parse(expression).status());
  return policy_db_.GrantExpression(rc_identity, expression);
}

util::Status MwsService::RevokePolicyExpression(const std::string& rc_identity,
                                                uint64_t seq) {
  return policy_db_.RevokeExpression(rc_identity, seq);
}

util::Result<std::vector<store::PolicyRow>> MwsService::PolicyTable() const {
  return policy_db_.AllRows();
}

util::Result<wire::DepositResponse> MwsService::Deposit(
    const wire::DepositRequest& request) {
  obs::ScopedTimer timer(deposit_obs_.latency);
  obs::Span span = obs::Tracer::MaybeStartTrace(options_.tracer, "mws.deposit");
  util::Result<wire::DepositResponse> result = DepositImpl(request, span);
  CountOutcome(result, deposit_obs_.requests, deposit_obs_.errors);
  return result;
}

util::Result<wire::DepositResponse> MwsService::DepositImpl(
    const wire::DepositRequest& request, obs::Span& span) {
  {
    obs::Span verify = span.Child("sda.verify");
    MWS_RETURN_IF_ERROR(sda_.Verify(request));
  }
  MWS_RETURN_IF_ERROR(ibe::ValidateAttribute(request.attribute));
  store::StoredMessage m;
  m.u = request.u;
  m.ciphertext = request.ciphertext;
  m.attribute = request.attribute;
  m.nonce = request.nonce;
  m.device_id = request.device_id;
  m.timestamp_micros = request.timestamp_micros;
  // At-least-once delivery: a device whose ack was lost retransmits the
  // identical deposit, so dedupe by (ID_SD, nonce) instead of storing twice.
  obs::Span append = span.Child("md.append");
  MWS_ASSIGN_OR_RETURN(store::MessageDb::AppendOutcome outcome,
                       message_db_.AppendDeduped(m));
  return wire::DepositResponse{outcome.id};
}

util::Result<wire::RcAuthResponse> MwsService::Authenticate(
    const wire::RcAuthRequest& request) {
  obs::ScopedTimer timer(auth_obs_.latency);
  obs::Span span = obs::Tracer::MaybeStartTrace(options_.tracer, "mws.auth");
  util::Result<wire::RcAuthResponse> result = [&] {
    obs::Span child = span.Child("gatekeeper.auth");
    return gatekeeper_.Authenticate(request);
  }();
  CountOutcome(result, auth_obs_.requests, auth_obs_.errors);
  return result;
}

util::Result<wire::RetrieveResponse> MwsService::Retrieve(
    const wire::RetrieveRequest& request) {
  obs::ScopedTimer timer(retrieve_obs_.latency);
  obs::Span span =
      obs::Tracer::MaybeStartTrace(options_.tracer, "mws.retrieve");
  util::Result<wire::RetrieveResponse> result = RetrieveImpl(request, span);
  CountOutcome(result, retrieve_obs_.requests, retrieve_obs_.errors);
  return result;
}

util::Result<wire::RetrieveResponse> MwsService::RetrieveImpl(
    const wire::RetrieveRequest& request, obs::Span& span) {
  RcSession session;
  {
    obs::Span lookup = span.Child("gatekeeper.session");
    MWS_ASSIGN_OR_RETURN(session, gatekeeper_.GetSession(request.session_id));
  }
  wire::RetrieveResponse response;
  {
    obs::Span fetch = span.Child("mms.fetch");
    MWS_ASSIGN_OR_RETURN(
        response.messages,
        mms_.FetchFor(session.rc_identity, request.after_message_id,
                      request.from_micros, request.to_micros));
  }
  obs::Span token = span.Child("tg.token");
  MWS_ASSIGN_OR_RETURN(std::vector<store::PolicyRow> grants,
                       mms_.GrantsFor(session.rc_identity));
  MWS_ASSIGN_OR_RETURN(
      response.token,
      token_generator_.IssueToken(session.rc_identity,
                                  session.rsa_public_key, grants));
  return response;
}

void MwsService::RegisterEndpoints(wire::InProcessTransport* transport) {
  transport->Register(
      "mws.deposit",
      [this](const util::Bytes& raw) -> util::Result<util::Bytes> {
        MWS_ASSIGN_OR_RETURN(wire::DepositRequest request,
                             wire::DepositRequest::Decode(raw));
        MWS_ASSIGN_OR_RETURN(wire::DepositResponse response,
                             Deposit(request));
        return response.Encode();
      });
  transport->Register(
      "mws.auth",
      [this](const util::Bytes& raw) -> util::Result<util::Bytes> {
        MWS_ASSIGN_OR_RETURN(wire::RcAuthRequest request,
                             wire::RcAuthRequest::Decode(raw));
        MWS_ASSIGN_OR_RETURN(wire::RcAuthResponse response,
                             Authenticate(request));
        return response.Encode();
      });
  transport->Register(
      "mws.retrieve",
      [this](const util::Bytes& raw) -> util::Result<util::Bytes> {
        MWS_ASSIGN_OR_RETURN(wire::RetrieveRequest request,
                             wire::RetrieveRequest::Decode(raw));
        MWS_ASSIGN_OR_RETURN(wire::RetrieveResponse response,
                             Retrieve(request));
        return response.Encode();
      });
}

}  // namespace mws::mws
