#include "src/mws/gatekeeper.h"

#include <cstdlib>

#include "src/crypto/modes.h"
#include "src/util/hex.h"
#include "src/wire/auth.h"

namespace mws::mws {

util::Result<wire::RcAuthResponse> Gatekeeper::Authenticate(
    const wire::RcAuthRequest& request) {
  util::Result<wire::RcAuthResponse> result = AuthenticateImpl(request);
  if (result.ok()) {
    if (auth_ok_counter_ != nullptr) auth_ok_counter_->Increment();
  } else {
    if (auth_fail_counter_ != nullptr) auth_fail_counter_->Increment();
  }
  return result;
}

util::Result<wire::RcAuthResponse> Gatekeeper::AuthenticateImpl(
    const wire::RcAuthRequest& request) {
  auto user = users_->Get(request.rc_identity);
  if (!user.ok()) {
    return util::Status::Unauthenticated("unknown receiving client: " +
                                         request.rc_identity);
  }
  // Decrypt the challenge with the stored password hash.
  util::Bytes auth_key = wire::DeriveAuthKey(user->password_hash, cipher_);
  auto plain_bytes = crypto::CbcDecrypt(cipher_, auth_key,
                                        request.auth_ciphertext);
  if (!plain_bytes.ok()) {
    return util::Status::Unauthenticated("RC challenge decryption failed");
  }
  auto plain = wire::RcAuthPlain::Decode(plain_bytes.value());
  if (!plain.ok()) {
    return util::Status::Unauthenticated("RC challenge malformed");
  }
  // "If the IDRC in the decrypted message matches the IDRC sent out in
  // the open text, RC is authenticated."
  if (plain->rc_identity != request.rc_identity) {
    return util::Status::Unauthenticated("RC identity mismatch");
  }
  int64_t now = clock_->NowMicros();
  if (std::llabs(now - plain->timestamp_micros) > freshness_window_micros_) {
    return util::Status::Unauthenticated("RC challenge expired");
  }
  // Session id generation stays outside any lock: the RandomSource is
  // thread-safe by contract.
  wire::RcAuthResponse response;
  response.session_id = rng_->Generate(16);

  std::string replay_key = request.rc_identity + "/" +
                           std::to_string(plain->timestamp_micros) + "/" +
                           util::HexEncode(plain->client_nonce);
  if (!replay_.CheckAndInsert(plain->timestamp_micros, replay_key, now)) {
    UpdateGauges();
    return util::Status::Unauthenticated("RC challenge replayed");
  }

  if (tuning_.reference_mode) {
    // Pre-PR-10 behavior: garbage-collect the whole registry on every
    // authentication — O(live sessions) inside the critical section.
    sessions_.SweepExpiredFull(now);
  } else {
    // Same observable invariant (no expired session outlives the next
    // successful auth) at amortized O(stripes + reaped) cost.
    sessions_.SweepExpired(now);
  }
  auto stats = sessions_.Insert(
      SessionKeyString(response.session_id),
      RcSession{request.rc_identity, request.rsa_public_key, now}, now);
  if (evicted_counter_ != nullptr && stats.evicted > 0) {
    evicted_counter_->Increment(static_cast<int64_t>(stats.evicted));
  }
  UpdateGauges();
  return response;
}

util::Result<RcSession> Gatekeeper::GetSession(
    const util::Bytes& session_id) const {
  bool expired = false;
  auto session =
      sessions_.Get(SessionKeyString(session_id), clock_->NowMicros(),
                    &expired);
  if (!session.has_value()) {
    if (expired) {
      // The lookup reaped the expired entry; reflect that immediately.
      if (sessions_gauge_ != nullptr) {
        sessions_gauge_->Set(static_cast<int64_t>(sessions_.Size()));
      }
      return util::Status::Unauthenticated("MWS session expired");
    }
    return util::Status::Unauthenticated("unknown MWS session");
  }
  return *std::move(session);
}

void Gatekeeper::CloseSession(const util::Bytes& session_id) {
  sessions_.Erase(SessionKeyString(session_id));
  UpdateGauges();
}

size_t Gatekeeper::SweepExpiredSessions() {
  size_t removed = sessions_.SweepExpired(clock_->NowMicros());
  UpdateGauges();
  return removed;
}

void Gatekeeper::UpdateGauges() {
  if (sessions_gauge_ != nullptr) {
    sessions_gauge_->Set(static_cast<int64_t>(sessions_.Size()));
  }
  if (replay_gauge_ != nullptr) {
    replay_gauge_->Set(static_cast<int64_t>(replay_.Size()));
  }
}

}  // namespace mws::mws
