#include "src/mws/gatekeeper.h"

#include <cstdlib>

#include "src/crypto/modes.h"
#include "src/util/hex.h"
#include "src/wire/auth.h"

namespace mws::mws {

util::Result<wire::RcAuthResponse> Gatekeeper::Authenticate(
    const wire::RcAuthRequest& request) {
  util::Result<wire::RcAuthResponse> result = AuthenticateImpl(request);
  if (result.ok()) {
    if (auth_ok_counter_ != nullptr) auth_ok_counter_->Increment();
  } else {
    if (auth_fail_counter_ != nullptr) auth_fail_counter_->Increment();
  }
  return result;
}

util::Result<wire::RcAuthResponse> Gatekeeper::AuthenticateImpl(
    const wire::RcAuthRequest& request) {
  auto user = users_->Get(request.rc_identity);
  if (!user.ok()) {
    return util::Status::Unauthenticated("unknown receiving client: " +
                                         request.rc_identity);
  }
  // Decrypt the challenge with the stored password hash.
  util::Bytes auth_key = wire::DeriveAuthKey(user->password_hash, cipher_);
  auto plain_bytes = crypto::CbcDecrypt(cipher_, auth_key,
                                        request.auth_ciphertext);
  if (!plain_bytes.ok()) {
    return util::Status::Unauthenticated("RC challenge decryption failed");
  }
  auto plain = wire::RcAuthPlain::Decode(plain_bytes.value());
  if (!plain.ok()) {
    return util::Status::Unauthenticated("RC challenge malformed");
  }
  // "If the IDRC in the decrypted message matches the IDRC sent out in
  // the open text, RC is authenticated."
  if (plain->rc_identity != request.rc_identity) {
    return util::Status::Unauthenticated("RC identity mismatch");
  }
  int64_t now = clock_->NowMicros();
  if (std::llabs(now - plain->timestamp_micros) > freshness_window_micros_) {
    return util::Status::Unauthenticated("RC challenge expired");
  }
  // Session id generation stays outside the lock: the RandomSource is
  // thread-safe by contract.
  wire::RcAuthResponse response;
  response.session_id = rng_->Generate(16);

  std::lock_guard<std::mutex> lock(mutex_);
  PruneReplayCache(now);
  std::string replay_key = request.rc_identity + "/" +
                           std::to_string(plain->timestamp_micros) + "/" +
                           util::HexEncode(plain->client_nonce);
  auto inserted = replay_cache_.emplace(plain->timestamp_micros, replay_key);
  if (!inserted.second) {
    return util::Status::Unauthenticated("RC challenge replayed");
  }

  // Garbage-collect expired sessions so long-running deployments don't
  // accumulate one entry per historical login.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now - it->second.created_micros > freshness_window_micros_) {
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }

  sessions_[SessionKeyString(response.session_id)] =
      RcSession{request.rc_identity, request.rsa_public_key, now};
  if (sessions_gauge_ != nullptr) {
    sessions_gauge_->Set(static_cast<int64_t>(sessions_.size()));
  }
  return response;
}

util::Result<RcSession> Gatekeeper::GetSession(
    const util::Bytes& session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(SessionKeyString(session_id));
  if (it == sessions_.end()) {
    return util::Status::Unauthenticated("unknown MWS session");
  }
  if (clock_->NowMicros() - it->second.created_micros >
      freshness_window_micros_) {
    return util::Status::Unauthenticated("MWS session expired");
  }
  return it->second;
}

void Gatekeeper::CloseSession(const util::Bytes& session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.erase(SessionKeyString(session_id));
  if (sessions_gauge_ != nullptr) {
    sessions_gauge_->Set(static_cast<int64_t>(sessions_.size()));
  }
}

void Gatekeeper::PruneReplayCache(int64_t now) {
  auto cutoff = replay_cache_.lower_bound(
      {now - 2 * freshness_window_micros_, std::string()});
  replay_cache_.erase(replay_cache_.begin(), cutoff);
}

}  // namespace mws::mws
