#ifndef MWSIBE_MWS_POLICY_EXPR_H_
#define MWSIBE_MWS_POLICY_EXPR_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/util/result.h"

namespace mws::mws {

/// XACML-flavoured access-policy expressions over attribute strings —
/// the paper's §VIII enhancement ("The attributes that are currently
/// used can be improved by considering an access policy, similar to
/// XACML standards. In such a case, enhanced policies can be generated").
///
/// Grammar (whitespace-separated tokens, case-sensitive keywords):
///
///   expr    := or
///   or      := and ( "OR" and )*
///   and     := unary ( "AND" unary )*
///   unary   := "NOT" unary | "(" expr ")" | pattern
///   pattern := attribute characters [A-Z0-9._-] plus '*' wildcards
///
/// A pattern matches a full attribute string, '*' matching any (possibly
/// empty) run of characters: "ELECTRIC-*-SV-CA" covers every electric
/// meter in Silicon Valley.
///
/// Instead of enumerating concrete grants, an operator attaches an
/// expression to an RC; the MMS materializes matching Table-1 rows
/// lazily (see MessageManagementSystem), so the PKG ticket path is
/// unchanged.
class PolicyExpression {
 public:
  /// Parses `text`; fails on syntax errors with a position hint.
  static util::Result<PolicyExpression> Parse(std::string_view text);

  /// True iff `attribute` satisfies the expression.
  bool Matches(const std::string& attribute) const;

  /// Canonical text form (round-trips through Parse).
  std::string ToString() const;

  PolicyExpression(const PolicyExpression&) = default;
  PolicyExpression& operator=(const PolicyExpression&) = default;
  PolicyExpression(PolicyExpression&&) = default;
  PolicyExpression& operator=(PolicyExpression&&) = default;

  struct Node;  // implementation detail, exposed for the parser

 private:
  explicit PolicyExpression(std::shared_ptr<const Node> root)
      : root_(std::move(root)) {}

  std::shared_ptr<const Node> root_;
};

/// Standalone glob match ('*' wildcards, anchored both ends).
bool GlobMatch(std::string_view pattern, std::string_view text);

}  // namespace mws::mws

#endif  // MWSIBE_MWS_POLICY_EXPR_H_
