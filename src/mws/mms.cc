#include "src/mws/mms.h"

#include <algorithm>
#include <set>

#include "src/mws/policy_expr.h"

namespace mws::mws {

util::Result<std::vector<store::PolicyRow>> MessageManagementSystem::GrantsFor(
    const std::string& rc_identity) const {
  MWS_ASSIGN_OR_RETURN(std::vector<store::PolicyRow> rows,
                       policies_->RowsForIdentity(rc_identity));
  MWS_ASSIGN_OR_RETURN(auto expressions,
                       policies_->ExpressionsForIdentity(rc_identity));
  if (expressions.empty()) return rows;

  // Materialize expression matches against the attributes actually in
  // the warehouse that have no concrete row yet.
  std::set<std::string> granted;
  for (const store::PolicyRow& row : rows) granted.insert(row.attribute);
  for (const std::string& attribute : messages_->DistinctAttributes()) {
    if (granted.count(attribute)) continue;
    for (const auto& [seq, text] : expressions) {
      auto expr = PolicyExpression::Parse(text);
      if (!expr.ok()) continue;  // stored text validated at grant time
      if (!expr->Matches(attribute)) continue;
      auto aid = policies_->Grant(rc_identity, attribute, seq);
      if (aid.ok()) {
        rows.push_back(store::PolicyRow{rc_identity, attribute,
                                        aid.value(), seq});
      } else if (aid.status().IsAlreadyExists()) {
        // A concurrent retrieval materialized the same match first; use
        // the row it created.
        MWS_ASSIGN_OR_RETURN(store::PolicyRow row,
                             policies_->RowFor(rc_identity, attribute));
        rows.push_back(std::move(row));
      } else {
        return aid.status();
      }
      granted.insert(attribute);
      break;
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const store::PolicyRow& a, const store::PolicyRow& b) {
              return a.attribute < b.attribute;
            });
  return rows;
}

util::Result<std::vector<wire::RetrievedMessage>>
MessageManagementSystem::FetchFor(const std::string& rc_identity,
                                  uint64_t after_id, int64_t from_micros,
                                  int64_t to_micros) const {
  MWS_ASSIGN_OR_RETURN(std::vector<store::PolicyRow> grants,
                       GrantsFor(rc_identity));
  const bool time_filtered = from_micros != 0 || to_micros != 0;
  std::vector<wire::RetrievedMessage> out;
  for (const store::PolicyRow& grant : grants) {
    std::vector<store::StoredMessage> batch;
    if (time_filtered) {
      MWS_ASSIGN_OR_RETURN(batch, messages_->FindByAttributeInTimeRange(
                                      grant.attribute, from_micros,
                                      to_micros));
      std::erase_if(batch, [after_id](const store::StoredMessage& m) {
        return m.id <= after_id;
      });
    } else {
      MWS_ASSIGN_OR_RETURN(batch, messages_->FindByAttributeAfter(
                                      grant.attribute, after_id));
    }
    for (store::StoredMessage& m : batch) {
      wire::RetrievedMessage r;
      r.message_id = m.id;
      r.u = std::move(m.u);
      r.ciphertext = std::move(m.ciphertext);
      r.aid = grant.aid;
      r.nonce = std::move(m.nonce);
      out.push_back(std::move(r));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const wire::RetrievedMessage& a,
               const wire::RetrievedMessage& b) {
              return a.message_id < b.message_id;
            });
  return out;
}

util::Result<MessageManagementSystem::Chunk>
MessageManagementSystem::FetchChunkFor(const std::string& rc_identity,
                                       uint64_t after_id, int64_t from_micros,
                                       int64_t to_micros,
                                       uint32_t max_messages) const {
  MWS_ASSIGN_OR_RETURN(std::vector<store::PolicyRow> grants,
                       GrantsFor(rc_identity));
  const bool time_filtered = from_micros != 0 || to_micros != 0;

  // Rank ids across every grant before touching any message value. A
  // message has exactly one attribute and grants are unique per
  // attribute, so each id maps to exactly one AID.
  std::vector<std::pair<uint64_t, size_t>> ids;  // (message id, grant index)
  for (size_t g = 0; g < grants.size(); ++g) {
    std::vector<uint64_t> batch;
    if (time_filtered) {
      batch = messages_->IdsByAttributeInTimeRange(grants[g].attribute,
                                                   from_micros, to_micros);
      std::erase_if(batch, [after_id](uint64_t id) { return id <= after_id; });
    } else {
      batch = messages_->IdsByAttributeAfter(grants[g].attribute, after_id);
    }
    for (uint64_t id : batch) ids.emplace_back(id, g);
  }
  std::sort(ids.begin(), ids.end());

  Chunk chunk;
  chunk.next_after_id = after_id;
  const size_t take = std::min<size_t>(ids.size(), max_messages);
  chunk.has_more = ids.size() > take;
  chunk.messages.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    MWS_ASSIGN_OR_RETURN(store::StoredMessage m,
                         messages_->Get(ids[i].first));
    wire::RetrievedMessage r;
    r.message_id = m.id;
    r.u = std::move(m.u);
    r.ciphertext = std::move(m.ciphertext);
    r.aid = grants[ids[i].second].aid;
    r.nonce = std::move(m.nonce);
    chunk.messages.push_back(std::move(r));
    chunk.next_after_id = ids[i].first;
  }
  return chunk;
}

}  // namespace mws::mws
