#include "src/mws/sda.h"

#include <cstdlib>

#include "src/crypto/hmac.h"

namespace mws::mws {

util::Status SmartDeviceAuthenticator::Verify(
    const wire::DepositRequest& request) const {
  auto key = device_keys_->GetKey(request.device_id);
  if (!key.ok()) {
    return util::Status::Unauthenticated("unknown device: " +
                                         request.device_id);
  }
  int64_t now = clock_->NowMicros();
  int64_t skew = std::llabs(now - request.timestamp_micros);
  if (skew > freshness_window_micros_) {
    return util::Status::Unauthenticated("stale deposit timestamp");
  }
  if (!crypto::VerifyHmac(crypto::HashKind::kSha256, key.value(),
                          request.AuthenticatedBytes(), request.mac)) {
    return util::Status::Unauthenticated("deposit MAC verification failed");
  }
  return util::Status::Ok();
}

}  // namespace mws::mws
