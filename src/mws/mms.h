#ifndef MWSIBE_MWS_MMS_H_
#define MWSIBE_MWS_MMS_H_

#include <string>
#include <vector>

#include "src/store/message_db.h"
#include "src/store/policy_db.h"
#include "src/wire/messages.h"

namespace mws::mws {

/// Message Management System (Fig. 3): "the core of the MWS-RC as it has
/// access to the Policy and Message Databases." Resolves an RC's grants
/// to attributes, fetches matching records, and rewrites attributes to
/// AIDs before anything leaves the warehouse.
///
/// Grants come from two sources: concrete operator grants (Table 1 rows)
/// and policy expressions (§VIII XACML-style enhancement). Expression
/// matches are materialized into concrete rows on first use, so the AID
/// indirection and the PKG ticket path are identical for both.
class MessageManagementSystem {
 public:
  MessageManagementSystem(const store::MessageDb* messages,
                          store::PolicyDb* policies)
      : messages_(messages), policies_(policies) {}

  /// Grants currently held by `rc_identity` — concrete rows plus rows
  /// freshly materialized from the RC's policy expressions. Consulted
  /// per retrieval so revocation applies to the very next fetch.
  util::Result<std::vector<store::PolicyRow>> GrantsFor(
      const std::string& rc_identity) const;

  /// Records visible to `rc_identity` with id > after_id, attribute field
  /// replaced by the RC's AID for that attribute. A non-empty
  /// [from_micros, to_micros) window additionally restricts results to
  /// deposit timestamps in that range (billing-period queries).
  util::Result<std::vector<wire::RetrievedMessage>> FetchFor(
      const std::string& rc_identity, uint64_t after_id,
      int64_t from_micros = 0, int64_t to_micros = 0) const;

  /// One bounded slice of FetchFor: at most `max_messages` records.
  struct Chunk {
    std::vector<wire::RetrievedMessage> messages;
    /// More matching records exist beyond this chunk.
    bool has_more = false;
    /// Pass as `after_id` to fetch the next chunk; equals the request's
    /// after_id when the chunk is empty.
    uint64_t next_after_id = 0;
  };

  /// Like FetchFor but bounded: ranks the *ids* matching the RC's grants
  /// (a key-only index walk — no ciphertext is materialized for messages
  /// beyond the chunk), then fetches only the `max_messages` smallest.
  /// Iterating until !has_more yields exactly FetchFor's result, in the
  /// same order, as long as `after_id` is threaded through. Pre:
  /// max_messages > 0.
  util::Result<Chunk> FetchChunkFor(const std::string& rc_identity,
                                    uint64_t after_id, int64_t from_micros,
                                    int64_t to_micros,
                                    uint32_t max_messages) const;

 private:
  const store::MessageDb* messages_;
  store::PolicyDb* policies_;
};

}  // namespace mws::mws

#endif  // MWSIBE_MWS_MMS_H_
