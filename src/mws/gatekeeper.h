#ifndef MWSIBE_MWS_GATEKEEPER_H_
#define MWSIBE_MWS_GATEKEEPER_H_

#include <map>
#include <mutex>
#include <set>
#include <string>

#include "src/crypto/block_cipher.h"
#include "src/obs/metrics.h"
#include "src/store/user_db.h"
#include "src/util/clock.h"
#include "src/util/random.h"
#include "src/wire/messages.h"

namespace mws::mws {

/// A live RC session at the gatekeeper.
struct RcSession {
  std::string rc_identity;
  util::Bytes rsa_public_key;
  int64_t created_micros = 0;
};

/// Gatekeeper (Fig. 3): authenticates receiving clients against the User
/// Database via the paper's hashed-password challenge and maintains the
/// session registry the MMS consults.
///
/// Replay protection: the (identity, timestamp, client-nonce) triple of
/// every accepted authentication is remembered for the freshness window
/// and duplicates are rejected.
///
/// Thread-safe: the session registry and replay cache are guarded by one
/// mutex; challenge decryption happens outside it, so concurrent
/// authentications only serialize on the registry bookkeeping. The
/// injected RandomSource must itself be thread-safe (MwsService wraps
/// its source in util::LockedRandom).
class Gatekeeper {
 public:
  /// `metrics` (optional, must outlive the gatekeeper) exposes
  /// `gatekeeper.auth_ok`, `gatekeeper.auth_fail`, and the
  /// `gatekeeper.sessions` gauge.
  Gatekeeper(const store::UserDb* users, const util::Clock* clock,
             util::RandomSource* rng, crypto::CipherKind cipher,
             int64_t freshness_window_micros,
             obs::Registry* metrics = nullptr)
      : users_(users),
        clock_(clock),
        rng_(rng),
        cipher_(cipher),
        freshness_window_micros_(freshness_window_micros) {
    if (metrics != nullptr) {
      auth_ok_counter_ = metrics->GetCounter("gatekeeper.auth_ok");
      auth_fail_counter_ = metrics->GetCounter("gatekeeper.auth_fail");
      sessions_gauge_ = metrics->GetGauge("gatekeeper.sessions");
    }
  }

  /// Verifies the challenge and opens a session.
  util::Result<wire::RcAuthResponse> Authenticate(
      const wire::RcAuthRequest& request);

  /// Resolves a session id; Unauthenticated if unknown or expired.
  util::Result<RcSession> GetSession(const util::Bytes& session_id) const;

  /// Closes a session (logout); OK even if absent.
  void CloseSession(const util::Bytes& session_id);

  size_t ActiveSessions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
  }

 private:
  std::string SessionKeyString(const util::Bytes& session_id) const {
    return util::StringFromBytes(session_id);
  }
  /// Pre: mutex_ held.
  void PruneReplayCache(int64_t now);

  const store::UserDb* users_;
  const util::Clock* clock_;
  util::RandomSource* rng_;
  crypto::CipherKind cipher_;
  int64_t freshness_window_micros_;

  /// Guards sessions_ and replay_cache_.
  mutable std::mutex mutex_;
  std::map<std::string, RcSession> sessions_;
  /// (identity, timestamp, nonce-hex) of accepted auths, with timestamps
  /// for pruning.
  std::set<std::pair<int64_t, std::string>> replay_cache_;

  /// Resolved at construction when `metrics` is set; null otherwise.
  obs::Counter* auth_ok_counter_ = nullptr;
  obs::Counter* auth_fail_counter_ = nullptr;
  obs::Gauge* sessions_gauge_ = nullptr;

  /// Wrapped by Authenticate for success/failure accounting.
  util::Result<wire::RcAuthResponse> AuthenticateImpl(
      const wire::RcAuthRequest& request);
};

}  // namespace mws::mws

#endif  // MWSIBE_MWS_GATEKEEPER_H_
