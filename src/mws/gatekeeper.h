#ifndef MWSIBE_MWS_GATEKEEPER_H_
#define MWSIBE_MWS_GATEKEEPER_H_

#include <string>

#include "src/crypto/block_cipher.h"
#include "src/obs/metrics.h"
#include "src/store/user_db.h"
#include "src/util/clock.h"
#include "src/util/random.h"
#include "src/util/ttl_store.h"
#include "src/wire/messages.h"

namespace mws::mws {

/// A live RC session at the gatekeeper.
struct RcSession {
  std::string rc_identity;
  util::Bytes rsa_public_key;
  int64_t created_micros = 0;
};

/// Capacity tuning for the session registry and replay cache; shared
/// with the PKG. See util/ttl_store.h.
using util::ControlPlaneTuning;

/// Gatekeeper (Fig. 3): authenticates receiving clients against the User
/// Database via the paper's hashed-password challenge and maintains the
/// session registry the MMS consults.
///
/// Replay protection: the (identity, timestamp, client-nonce) triple of
/// every accepted authentication is remembered for the freshness window
/// and duplicates are rejected.
///
/// Thread-safe. The session registry is a util::TtlStore (striped,
/// TTL-evicting, capacity-bounded) and the replay cache a
/// util::ReplayCache (striped, window- and capacity-bounded), so
/// concurrent authentications on different sessions touch disjoint
/// locks; challenge decryption happens outside any lock. Expired
/// sessions are reaped amortized on the authentication path via the
/// injected clock (no per-auth full-registry sweep), and the
/// `gatekeeper.sessions` gauge tracks every mutation. The injected
/// RandomSource must itself be thread-safe (MwsService wraps its source
/// in util::LockedRandom).
class Gatekeeper {
 public:
  /// `metrics` (optional, must outlive the gatekeeper) exposes
  /// `gatekeeper.auth_ok`, `gatekeeper.auth_fail`, the
  /// `gatekeeper.sessions` / `gatekeeper.replay_entries` gauges, and
  /// `gatekeeper.sessions_evicted`.
  Gatekeeper(const store::UserDb* users, const util::Clock* clock,
             util::RandomSource* rng, crypto::CipherKind cipher,
             int64_t freshness_window_micros,
             obs::Registry* metrics = nullptr,
             ControlPlaneTuning tuning = {})
      : users_(users),
        clock_(clock),
        rng_(rng),
        cipher_(cipher),
        freshness_window_micros_(freshness_window_micros),
        tuning_(tuning),
        sessions_({.stripes = tuning.reference_mode ? 1 : tuning.stripes,
                   .max_entries = tuning.max_sessions,
                   .ttl_micros = freshness_window_micros}),
        replay_({.stripes = tuning.reference_mode ? 1 : tuning.stripes,
                 .max_entries = tuning.max_replay_entries,
                 .window_micros = freshness_window_micros}) {
    if (metrics != nullptr) {
      auth_ok_counter_ = metrics->GetCounter("gatekeeper.auth_ok");
      auth_fail_counter_ = metrics->GetCounter("gatekeeper.auth_fail");
      sessions_gauge_ = metrics->GetGauge("gatekeeper.sessions");
      replay_gauge_ = metrics->GetGauge("gatekeeper.replay_entries");
      evicted_counter_ = metrics->GetCounter("gatekeeper.sessions_evicted");
    }
  }

  /// Verifies the challenge and opens a session.
  util::Result<wire::RcAuthResponse> Authenticate(
      const wire::RcAuthRequest& request);

  /// Resolves a session id; Unauthenticated if unknown or expired.
  util::Result<RcSession> GetSession(const util::Bytes& session_id) const;

  /// Closes a session (logout); OK even if absent.
  void CloseSession(const util::Bytes& session_id);

  /// Clock-injected maintenance sweep: reaps every expired session
  /// (amortized O(reaped)) and refreshes the gauges. A deployment calls
  /// this periodically; the hot path never pays more than its own
  /// stripe's front. Returns sessions reaped.
  size_t SweepExpiredSessions();

  size_t ActiveSessions() const { return sessions_.Size(); }
  size_t ReplayEntries() const { return replay_.Size(); }

 private:
  std::string SessionKeyString(const util::Bytes& session_id) const {
    return util::StringFromBytes(session_id);
  }
  void UpdateGauges();

  const store::UserDb* users_;
  const util::Clock* clock_;
  util::RandomSource* rng_;
  crypto::CipherKind cipher_;
  int64_t freshness_window_micros_;
  ControlPlaneTuning tuning_;

  /// GetSession erases expired entries, so the registry is mutable from
  /// const lookups (all mutations are internally locked).
  mutable util::TtlStore<RcSession> sessions_;
  util::ReplayCache replay_;

  /// Resolved at construction when `metrics` is set; null otherwise.
  obs::Counter* auth_ok_counter_ = nullptr;
  obs::Counter* auth_fail_counter_ = nullptr;
  obs::Gauge* sessions_gauge_ = nullptr;
  obs::Gauge* replay_gauge_ = nullptr;
  obs::Counter* evicted_counter_ = nullptr;

  /// Wrapped by Authenticate for success/failure accounting.
  util::Result<wire::RcAuthResponse> AuthenticateImpl(
      const wire::RcAuthRequest& request);
};

}  // namespace mws::mws

#endif  // MWSIBE_MWS_GATEKEEPER_H_
