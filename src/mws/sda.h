#ifndef MWSIBE_MWS_SDA_H_
#define MWSIBE_MWS_SDA_H_

#include "src/store/user_db.h"
#include "src/util/clock.h"
#include "src/wire/messages.h"

namespace mws::mws {

/// Smart Device Authenticator (Fig. 3): verifies the MAC and timestamp of
/// a deposit before anything is stored. "If a message is not
/// authenticated properly, the message is discarded."
class SmartDeviceAuthenticator {
 public:
  /// `freshness_window_micros`: maximum |now - T| accepted.
  SmartDeviceAuthenticator(const store::DeviceKeyDb* device_keys,
                           const util::Clock* clock,
                           int64_t freshness_window_micros)
      : device_keys_(device_keys),
        clock_(clock),
        freshness_window_micros_(freshness_window_micros) {}

  /// OK iff the device is registered, the timestamp is fresh, and the
  /// HMAC over the authenticated prefix verifies.
  util::Status Verify(const wire::DepositRequest& request) const;

 private:
  const store::DeviceKeyDb* device_keys_;
  const util::Clock* clock_;
  int64_t freshness_window_micros_;
};

}  // namespace mws::mws

#endif  // MWSIBE_MWS_SDA_H_
