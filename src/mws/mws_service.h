#ifndef MWSIBE_MWS_MWS_SERVICE_H_
#define MWSIBE_MWS_MWS_SERVICE_H_

#include <memory>
#include <string>

#include "src/mws/gatekeeper.h"
#include "src/mws/mms.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/mws/sda.h"
#include "src/mws/token_generator.h"
#include "src/store/message_db.h"
#include "src/store/policy_db.h"
#include "src/store/table.h"
#include "src/store/user_db.h"
#include "src/util/clock.h"
#include "src/util/random.h"
#include "src/wire/transport.h"

namespace mws::mws {

/// Tunables of a Message Warehousing Service instance.
struct MwsOptions {
  /// Symmetric cipher for tickets, tokens and auth exchanges. The paper
  /// uses DES throughout; E10 sweeps the alternatives.
  crypto::CipherKind cipher = crypto::CipherKind::kDes;
  /// Accepted clock skew for deposits and RC challenges.
  int64_t freshness_window_micros = 5ll * 60 * 1'000'000;
  /// Lifetime of issued PKG tickets.
  int64_t ticket_lifetime_micros = 10ll * 60 * 1'000'000;
  /// Optional instrumentation sink (must outlive the service). Exposes
  /// `mws.requests{op=...}`, `mws.errors{op=...}`, and the
  /// `mws.latency_us{op=...}` histograms, plus the gatekeeper and
  /// message-db instruments.
  obs::Registry* metrics = nullptr;
  /// Optional request tracer (must outlive the service): one trace per
  /// protocol op with per-stage child spans.
  obs::Tracer* tracer = nullptr;
  /// Gatekeeper session-registry / replay-cache capacity tuning
  /// (stripes, bounds, reference mode).
  util::ControlPlaneTuning tuning;
  /// Policy-database read-path tuning (ordered secondary index + AID
  /// resolution cache). `policy.metrics` defaults to `metrics` above
  /// when left null.
  store::PolicyDbOptions policy;
};

/// The Message Warehousing Service: the composition of the architecture
/// components of Fig. 3 (SDA, MD, MMS, PD, TG, User DB, Gatekeeper) plus
/// the administrative operations the paper mentions ("administrative
/// operations to manage client identities").
///
/// Crucially the MWS never holds IBE key material: it stores (rP, C,
/// A||Nonce) and enforces access purely through the policy database and
/// ticket issuance; decryption capability exists only at RCs that have
/// been extracted keys by the PKG.
///
/// Concurrency contract: the three protocol operations (Deposit,
/// Authenticate, Retrieve) and the read-only accessors are safe to call
/// concurrently from any number of threads — this is what lets TcpServer
/// dispatch requests from a worker pool without a global lock. The
/// storage Table must be one of the thread-safe backends (KvStore /
/// FlatFileStore). The injected RandomSource is wrapped in a
/// util::LockedRandom internally, so callers may pass a plain generator.
/// Administrative operations (Register*/Grant*/Revoke*) are also safe
/// concurrently with protocol traffic; racing *identical* registrations
/// may both report success (last write wins on the same record).
class MwsService {
 public:
  /// `storage` must outlive the service; `mws_pkg_key` is the shared
  /// secret with the PKG (paper assumption: "MWS shares a secret key
  /// SecKMWS-PKG with PKG").
  MwsService(store::Table* storage, util::Bytes mws_pkg_key,
             const util::Clock* clock, util::RandomSource* rng,
             MwsOptions options = {});

  // --- Administrative operations ---

  /// Registers a smart device and its shared MAC key (assumption ii).
  util::Status RegisterDevice(const std::string& device_id,
                              const util::Bytes& mac_key);

  /// Registers a receiving client (password hash + RSA public key).
  util::Status RegisterReceivingClient(const std::string& rc_identity,
                                       const util::Bytes& password_hash,
                                       const util::Bytes& rsa_public_key);

  /// Grants/revokes `rc_identity` access to messages under `attribute`.
  util::Result<uint64_t> GrantAttribute(const std::string& rc_identity,
                                        const std::string& attribute);
  util::Status RevokeAttribute(const std::string& rc_identity,
                               const std::string& attribute);

  /// Attaches a policy expression (see PolicyExpression) to an RC, e.g.
  /// "ELECTRIC-* OR GAS-*"; matching attributes are granted lazily as
  /// messages arrive. Returns the expression's sequence number.
  util::Result<uint64_t> GrantPolicyExpression(const std::string& rc_identity,
                                               const std::string& expression);

  /// Detaches an expression and revokes every grant it materialized.
  util::Status RevokePolicyExpression(const std::string& rc_identity,
                                      uint64_t seq);

  /// The full identity–attribute–AID table (paper Table 1).
  util::Result<std::vector<store::PolicyRow>> PolicyTable() const;

  /// Retention: drops every warehoused message with id <= `max_id`
  /// (record, indexes, dedup marker). Administrative — a deployment
  /// prunes consumed billing periods so the live set, and with it
  /// compaction checkpoints and reopen time, stays bounded. Returns
  /// messages removed. See store::MessageDb::PruneThrough for the
  /// dedup-horizon caveat.
  util::Result<size_t> PruneMessagesThrough(uint64_t max_id);

  // --- Protocol operations (Fig. 4 phases 1 and 2) ---

  /// SD–MWS phase: authenticate the device, verify integrity, store.
  util::Result<wire::DepositResponse> Deposit(
      const wire::DepositRequest& request);

  /// Batched SD–MWS phase: each item is MAC-verified independently and
  /// reported per-item (a bad MAC rejects that item, not the batch), and
  /// the valid items are appended through MessageDb::AppendDedupedBatch
  /// — one shard-lock acquisition per shard instead of one per message.
  /// Outcomes are bit-identical to calling Deposit per item in order,
  /// including retransmit dedup within and across batches. Only a
  /// storage failure fails the whole call (retry-safe).
  util::Result<wire::DepositBatchResponse> DepositBatch(
      const wire::DepositBatchRequest& request);

  /// MWS–RC phase, step 1: gatekeeper authentication.
  util::Result<wire::RcAuthResponse> Authenticate(
      const wire::RcAuthRequest& request);

  /// MWS–RC phase, step 2: fetch matching records + a fresh PKG token.
  util::Result<wire::RetrieveResponse> Retrieve(
      const wire::RetrieveRequest& request);

  /// Chunked MWS–RC retrieval: at most `max_messages` records per call,
  /// resumed via next_after_id, so a 10k-message backlog never
  /// materializes as one giant response. The PKG token is issued only on
  /// the final chunk (has_more == false) — it covers the whole sweep.
  /// Iterating to completion yields exactly Retrieve's messages.
  util::Result<wire::RetrieveChunkResponse> RetrieveChunk(
      const wire::RetrieveChunkRequest& request);

  /// Binds the protocol operations to "mws.deposit", "mws.auth",
  /// "mws.retrieve", "mws.deposit_batch", "mws.retrieve_chunk" on
  /// `transport`.
  void RegisterEndpoints(wire::InProcessTransport* transport);

  // --- Component access (tests, component benches E4) ---
  const SmartDeviceAuthenticator& sda() const { return sda_; }
  Gatekeeper& gatekeeper() { return gatekeeper_; }
  const MessageManagementSystem& mms() const { return mms_; }
  const TokenGenerator& token_generator() const { return token_generator_; }
  const store::MessageDb& message_db() const { return message_db_; }
  const store::PolicyDb& policy_db() const { return policy_db_; }
  const MwsOptions& options() const { return options_; }

 private:
  /// Per-op instrument triple; all null when metrics are disabled.
  struct OpInstruments {
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Histogram* latency = nullptr;
  };
  OpInstruments ResolveOp(const char* op);

  util::Result<wire::DepositResponse> DepositImpl(
      const wire::DepositRequest& request, obs::Span& span);
  util::Result<wire::RetrieveResponse> RetrieveImpl(
      const wire::RetrieveRequest& request, obs::Span& span);
  util::Result<wire::DepositBatchResponse> DepositBatchImpl(
      const wire::DepositBatchRequest& request, obs::Span& span);
  util::Result<wire::RetrieveChunkResponse> RetrieveChunkImpl(
      const wire::RetrieveChunkRequest& request, obs::Span& span);

  MwsOptions options_;
  /// Serializes the injected RandomSource for concurrent handlers; must
  /// be declared before the components that hold a pointer to it.
  util::LockedRandom rng_;
  store::MessageDb message_db_;
  store::PolicyDb policy_db_;
  store::UserDb user_db_;
  store::DeviceKeyDb device_keys_;
  SmartDeviceAuthenticator sda_;
  Gatekeeper gatekeeper_;
  MessageManagementSystem mms_;
  TokenGenerator token_generator_;

  OpInstruments deposit_obs_;
  OpInstruments auth_obs_;
  OpInstruments retrieve_obs_;
  OpInstruments deposit_batch_obs_;
  OpInstruments retrieve_chunk_obs_;
  /// Items per DepositBatch / messages per RetrieveChunk
  /// (`mws.batch_size{op=...}`); null when metrics are disabled.
  obs::Histogram* deposit_batch_size_ = nullptr;
  obs::Histogram* retrieve_chunk_size_ = nullptr;
  /// Amortized per-item latency of a batch deposit
  /// (`mws.batch_item_us{op=deposit_batch}`).
  obs::Histogram* deposit_batch_item_us_ = nullptr;
};

}  // namespace mws::mws

#endif  // MWSIBE_MWS_MWS_SERVICE_H_
