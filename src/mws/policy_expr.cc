#include "src/mws/policy_expr.h"

#include <vector>

namespace mws::mws {

struct PolicyExpression::Node {
  enum class Kind { kPattern, kAnd, kOr, kNot };
  Kind kind = Kind::kPattern;
  std::string pattern;                       // kPattern
  std::vector<std::shared_ptr<const Node>> children;  // kAnd/kOr/kNot
};

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative glob with backtracking over the last '*'.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

namespace {

using Node = PolicyExpression::Node;
using NodePtr = std::shared_ptr<const Node>;

bool IsPatternChar(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-' ||
         c == '_' || c == '.' || c == '*';
}

struct Token {
  enum class Kind { kPattern, kAnd, kOr, kNot, kLParen, kRParen, kEnd };
  Kind kind;
  std::string text;
  size_t position;
};

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view input) : input_(input) {}

  util::Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < input_.size()) {
      char c = input_[i];
      if (c == ' ' || c == '\t' || c == '\n') {
        ++i;
        continue;
      }
      if (c == '(') {
        out.push_back({Token::Kind::kLParen, "(", i++});
        continue;
      }
      if (c == ')') {
        out.push_back({Token::Kind::kRParen, ")", i++});
        continue;
      }
      if (!IsPatternChar(c)) {
        return util::Status::InvalidArgument(
            "policy: unexpected character at position " + std::to_string(i));
      }
      size_t start = i;
      while (i < input_.size() && IsPatternChar(input_[i])) ++i;
      std::string word(input_.substr(start, i - start));
      if (word == "AND") {
        out.push_back({Token::Kind::kAnd, word, start});
      } else if (word == "OR") {
        out.push_back({Token::Kind::kOr, word, start});
      } else if (word == "NOT") {
        out.push_back({Token::Kind::kNot, word, start});
      } else {
        out.push_back({Token::Kind::kPattern, word, start});
      }
    }
    out.push_back({Token::Kind::kEnd, "", input_.size()});
    return out;
  }

 private:
  std::string_view input_;
};

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  util::Result<NodePtr> Run() {
    MWS_ASSIGN_OR_RETURN(NodePtr root, ParseOr());
    if (Peek().kind != Token::Kind::kEnd) {
      return Error("trailing tokens");
    }
    return root;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  util::Status Error(const std::string& what) const {
    return util::Status::InvalidArgument(
        "policy: " + what + " at position " +
        std::to_string(Peek().position));
  }

  util::Result<NodePtr> ParseOr() {
    MWS_ASSIGN_OR_RETURN(NodePtr left, ParseAnd());
    if (Peek().kind != Token::Kind::kOr) return left;
    auto node = std::make_shared<Node>();
    node->kind = Node::Kind::kOr;
    node->children.push_back(std::move(left));
    while (Peek().kind == Token::Kind::kOr) {
      Advance();
      MWS_ASSIGN_OR_RETURN(NodePtr right, ParseAnd());
      node->children.push_back(std::move(right));
    }
    return NodePtr(node);
  }

  util::Result<NodePtr> ParseAnd() {
    MWS_ASSIGN_OR_RETURN(NodePtr left, ParseUnary());
    if (Peek().kind != Token::Kind::kAnd) return left;
    auto node = std::make_shared<Node>();
    node->kind = Node::Kind::kAnd;
    node->children.push_back(std::move(left));
    while (Peek().kind == Token::Kind::kAnd) {
      Advance();
      MWS_ASSIGN_OR_RETURN(NodePtr right, ParseUnary());
      node->children.push_back(std::move(right));
    }
    return NodePtr(node);
  }

  util::Result<NodePtr> ParseUnary() {
    if (Peek().kind == Token::Kind::kNot) {
      Advance();
      MWS_ASSIGN_OR_RETURN(NodePtr inner, ParseUnary());
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::kNot;
      node->children.push_back(std::move(inner));
      return NodePtr(node);
    }
    if (Peek().kind == Token::Kind::kLParen) {
      Advance();
      MWS_ASSIGN_OR_RETURN(NodePtr inner, ParseOr());
      if (Peek().kind != Token::Kind::kRParen) {
        return Error("expected ')'");
      }
      Advance();
      return inner;
    }
    if (Peek().kind == Token::Kind::kPattern) {
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::kPattern;
      node->pattern = Advance().text;
      return NodePtr(node);
    }
    return Error("expected pattern, NOT, or '('");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

bool Evaluate(const Node& node, const std::string& attribute) {
  switch (node.kind) {
    case Node::Kind::kPattern:
      return GlobMatch(node.pattern, attribute);
    case Node::Kind::kAnd:
      for (const auto& child : node.children) {
        if (!Evaluate(*child, attribute)) return false;
      }
      return true;
    case Node::Kind::kOr:
      for (const auto& child : node.children) {
        if (Evaluate(*child, attribute)) return true;
      }
      return false;
    case Node::Kind::kNot:
      return !Evaluate(*node.children[0], attribute);
  }
  return false;
}

void Print(const Node& node, std::string& out) {
  switch (node.kind) {
    case Node::Kind::kPattern:
      out += node.pattern;
      return;
    case Node::Kind::kNot:
      out += "NOT ";
      Print(*node.children[0], out);
      return;
    case Node::Kind::kAnd:
    case Node::Kind::kOr: {
      const char* op = node.kind == Node::Kind::kAnd ? " AND " : " OR ";
      out += "(";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out += op;
        Print(*node.children[i], out);
      }
      out += ")";
      return;
    }
  }
}

}  // namespace

util::Result<PolicyExpression> PolicyExpression::Parse(std::string_view text) {
  MWS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenizer(text).Run());
  MWS_ASSIGN_OR_RETURN(NodePtr root, Parser(std::move(tokens)).Run());
  return PolicyExpression(std::move(root));
}

bool PolicyExpression::Matches(const std::string& attribute) const {
  return Evaluate(*root_, attribute);
}

std::string PolicyExpression::ToString() const {
  std::string out;
  Print(*root_, out);
  return out;
}

}  // namespace mws::mws
