#ifndef MWSIBE_MWS_TOKEN_GENERATOR_H_
#define MWSIBE_MWS_TOKEN_GENERATOR_H_

#include <vector>

#include "src/crypto/block_cipher.h"
#include "src/store/policy_db.h"
#include "src/util/clock.h"
#include "src/util/random.h"
#include "src/wire/messages.h"

namespace mws::mws {

/// Token Generator (Fig. 3): mints the Kerberos-style token the RC
/// presents to the PKG. The ticket inside is encrypted under the
/// MWS<->PKG service key and carries the AID->attribute mapping, so the
/// RC never learns its attributes; the outer token is sealed to the RC's
/// RSA public key.
///
/// Thread-safe: IssueToken touches no mutable member state; the only
/// shared resources are the clock (stateless reads) and the
/// RandomSource, which must be thread-safe (MwsService wraps its source
/// in util::LockedRandom). Concurrent IssueToken calls therefore need
/// no locking here.
class TokenGenerator {
 public:
  TokenGenerator(const util::Bytes& mws_pkg_key, crypto::CipherKind cipher,
                 const util::Clock* clock, util::RandomSource* rng,
                 int64_t ticket_lifetime_micros)
      : mws_pkg_key_(mws_pkg_key),
        cipher_(cipher),
        clock_(clock),
        rng_(rng),
        ticket_lifetime_micros_(ticket_lifetime_micros) {}

  /// Issues a token for `rc_identity` covering `grants`. The fresh
  /// SecK_RC-PKG session key lives inside both the token (for the RC) and
  /// the ticket (for the PKG).
  util::Result<util::Bytes> IssueToken(
      const std::string& rc_identity, const util::Bytes& rc_rsa_public_key,
      const std::vector<store::PolicyRow>& grants) const;

 private:
  util::Bytes mws_pkg_key_;
  crypto::CipherKind cipher_;
  const util::Clock* clock_;
  util::RandomSource* rng_;
  int64_t ticket_lifetime_micros_;
};

}  // namespace mws::mws

#endif  // MWSIBE_MWS_TOKEN_GENERATOR_H_
