#include "src/mws/token_generator.h"

#include "src/crypto/modes.h"
#include "src/crypto/rsa.h"
#include "src/crypto/sealed_box.h"
#include "src/wire/auth.h"

namespace mws::mws {

util::Result<util::Bytes> TokenGenerator::IssueToken(
    const std::string& rc_identity, const util::Bytes& rc_rsa_public_key,
    const std::vector<store::PolicyRow>& grants) const {
  MWS_ASSIGN_OR_RETURN(crypto::RsaPublicKey rc_key,
                       crypto::ParseRsaPublicKey(rc_rsa_public_key));

  wire::TicketPlain ticket;
  ticket.rc_identity = rc_identity;
  ticket.session_key = rng_->Generate(32);  // SecK_RC-PKG
  for (const store::PolicyRow& row : grants) {
    ticket.aid_attributes.emplace_back(row.aid, row.attribute);
  }
  ticket.expiry_micros = clock_->NowMicros() + ticket_lifetime_micros_;

  util::Bytes ticket_key =
      wire::DeriveChannelKey(mws_pkg_key_, cipher_, "mws-pkg-ticket");
  MWS_ASSIGN_OR_RETURN(
      util::Bytes sealed_ticket,
      crypto::CbcEncrypt(cipher_, ticket_key, ticket.Encode(), *rng_));

  wire::TokenPlain token;
  token.session_key = ticket.session_key;
  token.ticket = std::move(sealed_ticket);
  return crypto::SealToPublicKey(rc_key, cipher_, token.Encode(), *rng_);
}

}  // namespace mws::mws
