#include "src/ibe/attribute.h"

#include "src/crypto/hash.h"

namespace mws::ibe {

util::Status ValidateAttribute(std::string_view attribute) {
  if (attribute.empty() || attribute.size() > 128) {
    return util::Status::InvalidArgument(
        "attribute must be 1..128 characters");
  }
  for (char c : attribute) {
    bool ok = (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-' ||
              c == '_' || c == '.';
    if (!ok) {
      return util::Status::InvalidArgument(
          "attribute may contain only A-Z, 0-9, '-', '_', '.'");
    }
  }
  return util::Status::Ok();
}

MessageNonce GenerateNonce(util::RandomSource& rng) {
  return MessageNonce{rng.Generate(16)};
}

util::Bytes DeriveIdentity(const Attribute& attribute,
                           const MessageNonce& nonce) {
  util::Bytes input = util::BytesFromString(attribute);
  input.insert(input.end(), nonce.value.begin(), nonce.value.end());
  return crypto::Sha1(input);
}

}  // namespace mws::ibe
