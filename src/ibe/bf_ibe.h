#ifndef MWSIBE_IBE_BF_IBE_H_
#define MWSIBE_IBE_BF_IBE_H_

#include <memory>

#include "src/math/pairing.h"
#include "src/util/bytes.h"
#include "src/util/random.h"
#include "src/util/result.h"

namespace mws::ibe {

/// Public system parameters of a Boneh–Franklin IBE deployment:
/// the pairing group plus P_pub = s*P. Published by the PKG to every
/// smart device and receiving client.
struct SystemParams {
  /// The shared pairing group (process-lifetime preset or generated set).
  const math::TypeAParams* group = nullptr;
  /// P_pub = s * generator.
  math::EcPoint p_pub;

  /// Optional precomputation for the deposit hot path, shared (immutable)
  /// across copies of the params. When present, Encrypt/EncryptFull/
  /// Encapsulate evaluate e(P_pub, ·) from the cached Miller-loop lines
  /// instead of re-running the full loop per message; absent, they fall
  /// back to the generic pairing. Setup attaches both by default.
  std::shared_ptr<const math::FixedBaseTable> p_pub_table;
  std::shared_ptr<const math::PairingPrecomp> p_pub_pairing;

  /// Builds the P_pub tables (idempotent; no-op without a group).
  void Precompute();
  /// Drops the tables — the cold path, used by benchmarks to measure
  /// construction cost honestly.
  void ClearPrecompute() {
    p_pub_table.reset();
    p_pub_pairing.reset();
  }
  bool has_precompute() const { return p_pub_pairing != nullptr; }
};

/// The PKG's master secret s. Never leaves the PKG.
struct MasterKey {
  math::BigInt s;
};

/// An extracted identity private key d_ID = s * Q_ID.
struct IbePrivateKey {
  math::EcPoint d;
};

/// BasicIdent ciphertext: (U, V) = (rP, M xor H2(g_ID^r)).
struct BasicCiphertext {
  math::EcPoint u;
  util::Bytes v;
};

/// FullIdent (CCA-secure, Fujisaki–Okamoto) ciphertext: (U, V, W).
struct FullCiphertext {
  math::EcPoint u;
  util::Bytes v;  // sigma xor H2(g_ID^r)
  util::Bytes w;  // M xor H4(sigma)
};

/// The Boneh–Franklin IBE scheme over a fixed pairing group.
///
/// Implements the four algorithms of paper §IV (Setup / Extract /
/// Encrypt / Decrypt) in both the BasicIdent variant the paper describes
/// and the CCA-secure FullIdent variant (our implemented extension).
class BfIbe {
 public:
  explicit BfIbe(const math::TypeAParams& group);

  /// Setup: draws the master secret s and publishes P_pub = sP.
  std::pair<SystemParams, MasterKey> Setup(util::RandomSource& rng) const;

  /// H1: maps an arbitrary identity string to an order-q curve point.
  math::EcPoint HashToPoint(const util::Bytes& identity) const;

  /// Extract: d_ID = s * H1(ID).
  IbePrivateKey Extract(const MasterKey& master,
                        const util::Bytes& identity) const;
  /// Extract from a pre-computed identity point (the PKG's hot path).
  IbePrivateKey ExtractFromPoint(const MasterKey& master,
                                 const math::EcPoint& q_id) const;
  /// Extract for many identity points at once: each d = s*Q runs the
  /// same Jacobian ladder as ExtractFromPoint, but the final affine
  /// normalizations share ONE field inversion (Montgomery's trick)
  /// instead of paying one inversion per key. Results are bit-identical
  /// to calling ExtractFromPoint per point, in order.
  std::vector<IbePrivateKey> ExtractBatch(
      const MasterKey& master, const std::vector<math::EcPoint>& points) const;

  /// BasicIdent encryption of an arbitrary-length message.
  BasicCiphertext Encrypt(const SystemParams& params,
                          const util::Bytes& identity,
                          const util::Bytes& message,
                          util::RandomSource& rng) const;

  /// BasicIdent decryption (always "succeeds"; BasicIdent has no
  /// integrity, a wrong key yields garbage — see FullIdent).
  util::Bytes Decrypt(const SystemParams& params, const IbePrivateKey& key,
                      const BasicCiphertext& ct) const;

  /// BasicIdent decryption of many ciphertexts under ONE identity key.
  /// The Miller lines of e(d, ·) depend on d alone, so the whole batch
  /// shares a single PairingPrecomp, and the final exponentiations run
  /// batched (one field inversion via Montgomery's trick). Output i is
  /// bit-identical to Decrypt(params, key, cts[i]).
  std::vector<util::Bytes> DecryptMany(
      const SystemParams& params, const IbePrivateKey& key,
      const std::vector<BasicCiphertext>& cts) const;

  /// FullIdent (CCA) encryption.
  FullCiphertext EncryptFull(const SystemParams& params,
                             const util::Bytes& identity,
                             const util::Bytes& message,
                             util::RandomSource& rng) const;

  /// FullIdent decryption; rejects mismatched keys and tampered
  /// ciphertexts via the Fujisaki–Okamoto re-encryption check.
  util::Result<util::Bytes> DecryptFull(const SystemParams& params,
                                        const IbePrivateKey& key,
                                        const FullCiphertext& ct) const;

  const math::TypeAParams& group() const { return group_; }

  /// e(P_pub, Q_ID) via the params' cached lines when available, falling
  /// back to the generic pairing otherwise.
  math::Fp2 PairPpub(const SystemParams& params,
                     const math::EcPoint& q_id) const;

 private:
  /// g_ID^r -> mask of `len` bytes (the H2 pad).
  util::Bytes PairingMask(const math::Fp2& g, size_t len) const;

  /// Bounded LRU over identity -> H1(identity): deposit bursts for the
  /// same attribute skip the try-and-increment lifting. Shared across
  /// copies (guarded by its own mutex); see DESIGN.md §performance.
  struct HashCache;

  const math::TypeAParams& group_;
  std::shared_ptr<HashCache> hash_cache_;
};

/// IBE key-encapsulation: the hybrid construction the paper's protocol
/// actually uses (IBE derives a symmetric key; DES/AES encrypts the
/// message). Encapsulate corresponds to the SD computing K = e(sP, rI);
/// Decapsulate to the RC computing e(rP, sI).
struct KemOutput {
  math::EcPoint u;      // rP, stored alongside the ciphertext at the MWS
  util::Bytes key;      // the DEM key
};

class IbeKem {
 public:
  /// `key_len`: DEM key size in bytes (8 for DES, 16 for AES-128...).
  IbeKem(const math::TypeAParams& group, size_t key_len)
      : ibe_(group), key_len_(key_len) {}

  KemOutput Encapsulate(const SystemParams& params,
                        const util::Bytes& identity,
                        util::RandomSource& rng) const;

  /// Recovers the DEM key from U with the extracted private key.
  util::Bytes Decapsulate(const IbePrivateKey& key,
                          const math::EcPoint& u) const;

  /// The KDF half of Decapsulate: turns an already-computed pairing
  /// value g = e(d, U) into the DEM key. Decapsulate(key, u) ==
  /// KeyFromPairing(group().Pairing(key.d, u)) bit for bit — bulk
  /// decryption computes g through a PairingPrecomp shared across every
  /// message under the same key and feeds it here.
  util::Bytes KeyFromPairing(const math::Fp2& g) const;

  size_t key_len() const { return key_len_; }
  const BfIbe& ibe() const { return ibe_; }

 private:
  BfIbe ibe_;
  size_t key_len_;
};

}  // namespace mws::ibe

#endif  // MWSIBE_IBE_BF_IBE_H_
