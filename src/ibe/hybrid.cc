#include "src/ibe/hybrid.h"

#include "src/crypto/modes.h"

namespace mws::ibe {

util::Result<HybridCiphertext> HybridSealer::Seal(
    const SystemParams& params, const Attribute& attribute,
    const MessageNonce& nonce, const util::Bytes& message,
    util::RandomSource& rng) const {
  MWS_RETURN_IF_ERROR(ValidateAttribute(attribute));
  util::Bytes identity = DeriveIdentity(attribute, nonce);
  KemOutput kem = kem_.Encapsulate(params, identity, rng);
  MWS_ASSIGN_OR_RETURN(util::Bytes dem_ct,
                       crypto::CbcEncrypt(dem_, kem.key, message, rng));
  util::SecureWipe(kem.key);
  return HybridCiphertext{kem.u, std::move(dem_ct)};
}

util::Result<util::Bytes> HybridSealer::Open(const IbePrivateKey& key,
                                             const HybridCiphertext& ct) const {
  util::Bytes dem_key = kem_.Decapsulate(key, ct.u);
  auto plain = crypto::CbcDecrypt(dem_, dem_key, ct.dem_ciphertext);
  util::SecureWipe(dem_key);
  return plain;
}

util::Result<util::Bytes> HybridSealer::OpenWithPairing(
    const math::Fp2& g, const HybridCiphertext& ct) const {
  util::Bytes dem_key = kem_.KeyFromPairing(g);
  auto plain = crypto::CbcDecrypt(dem_, dem_key, ct.dem_ciphertext);
  util::SecureWipe(dem_key);
  return plain;
}

}  // namespace mws::ibe
