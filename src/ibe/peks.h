#ifndef MWSIBE_IBE_PEKS_H_
#define MWSIBE_IBE_PEKS_H_

#include "src/math/pairing.h"
#include "src/util/bytes.h"
#include "src/util/random.h"
#include "src/util/result.h"

namespace mws::ibe {

/// Public-key Encryption with Keyword Search (Boneh–Di Crescenzo–
/// Ostrovsky–Persiano), the construction of the paper's related work [1]
/// (Waters et al., encrypted audit logs) built from the same pairing.
///
/// In the warehouse this closes the one privacy gap the paper accepts:
/// the MWS sees attribute strings in the clear for routing. With PEKS a
/// device attaches searchable tags instead; the warehouse can test a tag
/// against trapdoors provided by the receiver without learning the
/// keyword.
///
///   KeyGen:            sk = alpha, pk = alpha * P
///   Tag(pk, w):        r random; t = e(H1(w), pk)^r; (rP, H(t))
///   Trapdoor(sk, w):   T_w = alpha * H1(w)
///   Test(tag, T_w):    H(e(T_w, rP)) == tag.hash
class Peks {
 public:
  explicit Peks(const math::TypeAParams& group) : group_(group) {}

  struct KeyPair {
    math::BigInt secret;     // alpha
    math::EcPoint public_key;  // alpha * P
  };

  /// A searchable tag attached to a stored message.
  struct Tag {
    math::EcPoint u;     // rP
    util::Bytes check;   // H(e(H1(w), pk)^r), 32 bytes
  };

  /// A trapdoor enabling equality tests for exactly one keyword.
  struct Trapdoor {
    math::EcPoint t;  // alpha * H1(w)
  };

  KeyPair GenerateKeyPair(util::RandomSource& rng) const;

  /// Produces a tag for `keyword` searchable by the holder of `secret`.
  Tag MakeTag(const math::EcPoint& public_key, const util::Bytes& keyword,
              util::RandomSource& rng) const;

  /// The receiver's trapdoor for `keyword` (handed to the warehouse).
  Trapdoor MakeTrapdoor(const math::BigInt& secret,
                        const util::Bytes& keyword) const;

  /// Warehouse-side test: does `tag` match the trapdoor's keyword?
  /// Learns nothing else about the tag's keyword.
  bool Test(const Tag& tag, const Trapdoor& trapdoor) const;

  /// Scans many tags against ONE trapdoor — the warehouse's mailbox
  /// sweep. The trapdoor point is the fixed pairing argument, so its
  /// Miller lines are computed once (PairingPrecomp) and the final
  /// exponentiations run batched. Entry i equals Test(tags[i], trapdoor).
  std::vector<bool> TestMany(const std::vector<Tag>& tags,
                             const Trapdoor& trapdoor) const;

  /// Tag wire encoding (point + 32-byte check).
  util::Bytes SerializeTag(const Tag& tag) const;
  util::Result<Tag> ParseTag(const util::Bytes& data) const;

 private:
  math::EcPoint HashKeyword(const util::Bytes& keyword) const;

  const math::TypeAParams& group_;
};

}  // namespace mws::ibe

#endif  // MWSIBE_IBE_PEKS_H_
