#include "src/ibe/bf_ibe.h"

#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/crypto/hash.h"
#include "src/crypto/kdf.h"
#include "src/math/precompute.h"

namespace mws::ibe {

using math::BigInt;
using math::EcPoint;
using math::Fp;
using math::Fp2;

namespace {

// Domain-separation prefixes for the BF random oracles.
constexpr uint8_t kTagH1 = 0x01;
constexpr uint8_t kTagH2 = 0x02;
constexpr uint8_t kTagH3 = 0x03;
constexpr uint8_t kTagH4 = 0x04;

util::Bytes Tagged(uint8_t tag, const util::Bytes& data) {
  util::Bytes out;
  out.reserve(data.size() + 1);
  out.push_back(tag);
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

/// H3: (sigma, M) -> scalar in [1, q-1].
BigInt HashToScalar(const BigInt& q, const util::Bytes& sigma,
                    const util::Bytes& message) {
  util::Bytes input = Tagged(kTagH3, util::Concat(sigma, message));
  // Expand to 16 bytes beyond the order size to make the bias negligible.
  size_t len = (q.BitLength() + 7) / 8 + 16;
  util::Bytes expanded =
      crypto::HashExpand(crypto::HashKind::kSha256, input, len);
  BigInt v = BigInt::FromBytesBe(expanded);
  return BigInt::Mod(v, q - BigInt(1)) + BigInt(1);
}

}  // namespace

void SystemParams::Precompute() {
  if (group == nullptr || has_precompute()) return;
  p_pub_table = std::make_shared<const math::FixedBaseTable>(
      group->curve(), p_pub, group->q());
  p_pub_pairing =
      std::make_shared<const math::PairingPrecomp>(*group, p_pub);
}

/// Fixed-capacity LRU: list front = most recently used; the map indexes
/// list nodes by identity bytes.
struct BfIbe::HashCache {
  static constexpr size_t kCapacity = 64;

  std::mutex mu;
  std::list<std::pair<std::string, EcPoint>> order;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, EcPoint>>::iterator>
      index;
};

BfIbe::BfIbe(const math::TypeAParams& group)
    : group_(group), hash_cache_(std::make_shared<HashCache>()) {}

std::pair<SystemParams, MasterKey> BfIbe::Setup(
    util::RandomSource& rng) const {
  MasterKey master{group_.RandomScalar(rng)};
  SystemParams params;
  params.group = &group_;
  params.p_pub = group_.MulGenerator(master.s);
  params.Precompute();
  return {params, master};
}

EcPoint BfIbe::HashToPoint(const util::Bytes& identity) const {
  std::string key(identity.begin(), identity.end());
  {
    std::lock_guard<std::mutex> lock(hash_cache_->mu);
    auto it = hash_cache_->index.find(key);
    if (it != hash_cache_->index.end()) {
      hash_cache_->order.splice(hash_cache_->order.begin(),
                                hash_cache_->order, it->second);
      return it->second->second;
    }
  }
  // Try-and-increment: x = H(counter || id) interpreted in F_p, lifted
  // through the cofactor. Terminates in ~2 expected iterations. Computed
  // outside the lock — concurrent misses for the same identity just race
  // benignly to insert the same value.
  const size_t flen = group_.FieldBytes();
  EcPoint result;
  for (uint32_t counter = 0;; ++counter) {
    util::Bytes input = Tagged(kTagH1, identity);
    input.push_back(static_cast<uint8_t>(counter >> 24));
    input.push_back(static_cast<uint8_t>(counter >> 16));
    input.push_back(static_cast<uint8_t>(counter >> 8));
    input.push_back(static_cast<uint8_t>(counter));
    util::Bytes xb =
        crypto::HashExpand(crypto::HashKind::kSha256, input, flen);
    Fp x = Fp::FromBytes(group_.ctx(), xb);
    auto point = group_.LiftX(x);
    if (point.ok()) {
      result = point.value();
      break;
    }
  }
  std::lock_guard<std::mutex> lock(hash_cache_->mu);
  if (hash_cache_->index.find(key) == hash_cache_->index.end()) {
    hash_cache_->order.emplace_front(key, result);
    hash_cache_->index[key] = hash_cache_->order.begin();
    if (hash_cache_->order.size() > HashCache::kCapacity) {
      hash_cache_->index.erase(hash_cache_->order.back().first);
      hash_cache_->order.pop_back();
    }
  }
  return result;
}

IbePrivateKey BfIbe::Extract(const MasterKey& master,
                             const util::Bytes& identity) const {
  return ExtractFromPoint(master, HashToPoint(identity));
}

IbePrivateKey BfIbe::ExtractFromPoint(const MasterKey& master,
                                      const EcPoint& q_id) const {
  return IbePrivateKey{group_.curve().ScalarMul(master.s, q_id)};
}

std::vector<IbePrivateKey> BfIbe::ExtractBatch(
    const MasterKey& master, const std::vector<EcPoint>& points) const {
  const math::CurveGroup& curve = group_.curve();
  std::vector<math::JacPoint> jac;
  jac.reserve(points.size());
  for (const EcPoint& q_id : points) {
    // The Jacobian overload runs the identical wNAF ladder; only the
    // final normalization is deferred into the shared inversion below.
    jac.push_back(curve.ScalarMul(master.s, curve.ToJacobian(q_id)));
  }
  std::vector<EcPoint> affine = math::BatchToAffine(curve, jac);
  std::vector<IbePrivateKey> out;
  out.reserve(affine.size());
  for (EcPoint& d : affine) out.push_back(IbePrivateKey{std::move(d)});
  return out;
}

util::Bytes BfIbe::PairingMask(const Fp2& g, size_t len) const {
  return crypto::HashExpand(crypto::HashKind::kSha256,
                            Tagged(kTagH2, g.ToBytes()), len);
}

Fp2 BfIbe::PairPpub(const SystemParams& params, const EcPoint& q_id) const {
  if (params.p_pub_pairing) return params.p_pub_pairing->Pairing(q_id);
  return group_.Pairing(params.p_pub, q_id);
}

BasicCiphertext BfIbe::Encrypt(const SystemParams& params,
                               const util::Bytes& identity,
                               const util::Bytes& message,
                               util::RandomSource& rng) const {
  EcPoint q_id = HashToPoint(identity);
  BigInt r = group_.RandomScalar(rng);
  BasicCiphertext ct;
  ct.u = group_.MulGenerator(r);
  Fp2 g = PairPpub(params, q_id).Pow(r);
  ct.v = util::Xor(message, PairingMask(g, message.size()));
  return ct;
}

util::Bytes BfIbe::Decrypt(const SystemParams& params, const IbePrivateKey& key,
                           const BasicCiphertext& ct) const {
  (void)params;
  Fp2 g = group_.Pairing(key.d, ct.u);
  return util::Xor(ct.v, PairingMask(g, ct.v.size()));
}

std::vector<util::Bytes> BfIbe::DecryptMany(
    const SystemParams& params, const IbePrivateKey& key,
    const std::vector<BasicCiphertext>& cts) const {
  (void)params;
  std::vector<util::Bytes> out;
  out.reserve(cts.size());
  if (cts.empty()) return out;
  if (cts.size() == 1) {
    out.push_back(Decrypt(params, key, cts[0]));
    return out;
  }
  math::PairingPrecomp precomp(group_, key.d);
  std::vector<EcPoint> us;
  us.reserve(cts.size());
  for (const BasicCiphertext& ct : cts) us.push_back(ct.u);
  std::vector<Fp2> gs = precomp.PairingMany(us);
  for (size_t i = 0; i < cts.size(); ++i) {
    out.push_back(util::Xor(cts[i].v, PairingMask(gs[i], cts[i].v.size())));
  }
  return out;
}

FullCiphertext BfIbe::EncryptFull(const SystemParams& params,
                                  const util::Bytes& identity,
                                  const util::Bytes& message,
                                  util::RandomSource& rng) const {
  EcPoint q_id = HashToPoint(identity);
  util::Bytes sigma = rng.Generate(32);
  BigInt r = HashToScalar(group_.q(), sigma, message);
  FullCiphertext ct;
  ct.u = group_.MulGenerator(r);
  Fp2 g = PairPpub(params, q_id).Pow(r);
  ct.v = util::Xor(sigma, PairingMask(g, sigma.size()));
  ct.w = util::Xor(message,
                   crypto::HashExpand(crypto::HashKind::kSha256,
                                      Tagged(kTagH4, sigma), message.size()));
  return ct;
}

util::Result<util::Bytes> BfIbe::DecryptFull(const SystemParams& params,
                                             const IbePrivateKey& key,
                                             const FullCiphertext& ct) const {
  if (ct.v.size() != 32) {
    return util::Status::InvalidArgument("FullIdent V must be 32 bytes");
  }
  Fp2 g = group_.Pairing(key.d, ct.u);
  util::Bytes sigma = util::Xor(ct.v, PairingMask(g, ct.v.size()));
  util::Bytes message = util::Xor(
      ct.w, crypto::HashExpand(crypto::HashKind::kSha256,
                               Tagged(kTagH4, sigma), ct.w.size()));
  // Fujisaki–Okamoto check: re-derive r and verify U = rP.
  BigInt r = HashToScalar(group_.q(), sigma, message);
  if (group_.MulGenerator(r) != ct.u) {
    return util::Status::Corruption("FullIdent ciphertext rejected");
  }
  (void)params;
  return message;
}

KemOutput IbeKem::Encapsulate(const SystemParams& params,
                              const util::Bytes& identity,
                              util::RandomSource& rng) const {
  const math::TypeAParams& group = ibe_.group();
  EcPoint q_id = ibe_.HashToPoint(identity);
  BigInt r = group.RandomScalar(rng);
  KemOutput out;
  out.u = group.MulGenerator(r);
  Fp2 g = ibe_.PairPpub(params, q_id).Pow(r);
  out.key = crypto::Hkdf(/*salt=*/{}, g.ToBytes(),
                         util::BytesFromString("mwsibe-kem"), key_len_);
  return out;
}

util::Bytes IbeKem::Decapsulate(const IbePrivateKey& key,
                                const EcPoint& u) const {
  return KeyFromPairing(ibe_.group().Pairing(key.d, u));
}

util::Bytes IbeKem::KeyFromPairing(const Fp2& g) const {
  return crypto::Hkdf(/*salt=*/{}, g.ToBytes(),
                      util::BytesFromString("mwsibe-kem"), key_len_);
}

}  // namespace mws::ibe
