#include "src/ibe/bf_ibe.h"

#include "src/crypto/hash.h"
#include "src/crypto/kdf.h"

namespace mws::ibe {

using math::BigInt;
using math::EcPoint;
using math::Fp;
using math::Fp2;

namespace {

// Domain-separation prefixes for the BF random oracles.
constexpr uint8_t kTagH1 = 0x01;
constexpr uint8_t kTagH2 = 0x02;
constexpr uint8_t kTagH3 = 0x03;
constexpr uint8_t kTagH4 = 0x04;

util::Bytes Tagged(uint8_t tag, const util::Bytes& data) {
  util::Bytes out;
  out.reserve(data.size() + 1);
  out.push_back(tag);
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

/// H3: (sigma, M) -> scalar in [1, q-1].
BigInt HashToScalar(const BigInt& q, const util::Bytes& sigma,
                    const util::Bytes& message) {
  util::Bytes input = Tagged(kTagH3, util::Concat(sigma, message));
  // Expand to 16 bytes beyond the order size to make the bias negligible.
  size_t len = (q.BitLength() + 7) / 8 + 16;
  util::Bytes expanded =
      crypto::HashExpand(crypto::HashKind::kSha256, input, len);
  BigInt v = BigInt::FromBytesBe(expanded);
  return BigInt::Mod(v, q - BigInt(1)) + BigInt(1);
}

}  // namespace

std::pair<SystemParams, MasterKey> BfIbe::Setup(
    util::RandomSource& rng) const {
  MasterKey master{group_.RandomScalar(rng)};
  SystemParams params;
  params.group = &group_;
  params.p_pub = group_.curve().ScalarMul(master.s, group_.generator());
  return {params, master};
}

EcPoint BfIbe::HashToPoint(const util::Bytes& identity) const {
  // Try-and-increment: x = H(counter || id) interpreted in F_p, lifted
  // through the cofactor. Terminates in ~2 expected iterations.
  const size_t flen = group_.FieldBytes();
  for (uint32_t counter = 0;; ++counter) {
    util::Bytes input = Tagged(kTagH1, identity);
    input.push_back(static_cast<uint8_t>(counter >> 24));
    input.push_back(static_cast<uint8_t>(counter >> 16));
    input.push_back(static_cast<uint8_t>(counter >> 8));
    input.push_back(static_cast<uint8_t>(counter));
    util::Bytes xb =
        crypto::HashExpand(crypto::HashKind::kSha256, input, flen);
    Fp x = Fp::FromBytes(group_.ctx(), xb);
    auto point = group_.LiftX(x);
    if (point.ok()) return point.value();
  }
}

IbePrivateKey BfIbe::Extract(const MasterKey& master,
                             const util::Bytes& identity) const {
  return ExtractFromPoint(master, HashToPoint(identity));
}

IbePrivateKey BfIbe::ExtractFromPoint(const MasterKey& master,
                                      const EcPoint& q_id) const {
  return IbePrivateKey{group_.curve().ScalarMul(master.s, q_id)};
}

util::Bytes BfIbe::PairingMask(const Fp2& g, size_t len) const {
  return crypto::HashExpand(crypto::HashKind::kSha256,
                            Tagged(kTagH2, g.ToBytes()), len);
}

BasicCiphertext BfIbe::Encrypt(const SystemParams& params,
                               const util::Bytes& identity,
                               const util::Bytes& message,
                               util::RandomSource& rng) const {
  EcPoint q_id = HashToPoint(identity);
  BigInt r = group_.RandomScalar(rng);
  BasicCiphertext ct;
  ct.u = group_.curve().ScalarMul(r, group_.generator());
  Fp2 g = group_.Pairing(params.p_pub, q_id).Pow(r);
  ct.v = util::Xor(message, PairingMask(g, message.size()));
  return ct;
}

util::Bytes BfIbe::Decrypt(const SystemParams& params, const IbePrivateKey& key,
                           const BasicCiphertext& ct) const {
  (void)params;
  Fp2 g = group_.Pairing(key.d, ct.u);
  return util::Xor(ct.v, PairingMask(g, ct.v.size()));
}

FullCiphertext BfIbe::EncryptFull(const SystemParams& params,
                                  const util::Bytes& identity,
                                  const util::Bytes& message,
                                  util::RandomSource& rng) const {
  EcPoint q_id = HashToPoint(identity);
  util::Bytes sigma = rng.Generate(32);
  BigInt r = HashToScalar(group_.q(), sigma, message);
  FullCiphertext ct;
  ct.u = group_.curve().ScalarMul(r, group_.generator());
  Fp2 g = group_.Pairing(params.p_pub, q_id).Pow(r);
  ct.v = util::Xor(sigma, PairingMask(g, sigma.size()));
  ct.w = util::Xor(message,
                   crypto::HashExpand(crypto::HashKind::kSha256,
                                      Tagged(kTagH4, sigma), message.size()));
  return ct;
}

util::Result<util::Bytes> BfIbe::DecryptFull(const SystemParams& params,
                                             const IbePrivateKey& key,
                                             const FullCiphertext& ct) const {
  if (ct.v.size() != 32) {
    return util::Status::InvalidArgument("FullIdent V must be 32 bytes");
  }
  Fp2 g = group_.Pairing(key.d, ct.u);
  util::Bytes sigma = util::Xor(ct.v, PairingMask(g, ct.v.size()));
  util::Bytes message = util::Xor(
      ct.w, crypto::HashExpand(crypto::HashKind::kSha256,
                               Tagged(kTagH4, sigma), ct.w.size()));
  // Fujisaki–Okamoto check: re-derive r and verify U = rP.
  BigInt r = HashToScalar(group_.q(), sigma, message);
  if (group_.curve().ScalarMul(r, group_.generator()) != ct.u) {
    return util::Status::Corruption("FullIdent ciphertext rejected");
  }
  (void)params;
  return message;
}

KemOutput IbeKem::Encapsulate(const SystemParams& params,
                              const util::Bytes& identity,
                              util::RandomSource& rng) const {
  const math::TypeAParams& group = ibe_.group();
  EcPoint q_id = ibe_.HashToPoint(identity);
  BigInt r = group.RandomScalar(rng);
  KemOutput out;
  out.u = group.curve().ScalarMul(r, group.generator());
  Fp2 g = group.Pairing(params.p_pub, q_id).Pow(r);
  out.key = crypto::Hkdf(/*salt=*/{}, g.ToBytes(),
                         util::BytesFromString("mwsibe-kem"), key_len_);
  return out;
}

util::Bytes IbeKem::Decapsulate(const IbePrivateKey& key,
                                const EcPoint& u) const {
  Fp2 g = ibe_.group().Pairing(key.d, u);
  return crypto::Hkdf(/*salt=*/{}, g.ToBytes(),
                      util::BytesFromString("mwsibe-kem"), key_len_);
}

}  // namespace mws::ibe
