#include "src/ibe/ibs.h"

#include "src/crypto/kdf.h"

namespace mws::ibe {

using math::BigInt;

BigInt IbSignatures::HashMessage(const util::Bytes& message) const {
  const BigInt& q = ibe_.group().q();
  // 0x05 tag: domain separation vs the H1..H4 oracles.
  util::Bytes tagged = util::Concat(util::Bytes{0x05}, message);
  size_t len = (q.BitLength() + 7) / 8 + 16;
  util::Bytes expanded =
      crypto::HashExpand(crypto::HashKind::kSha256, tagged, len);
  return BigInt::Mod(BigInt::FromBytesBe(expanded), q - BigInt(1)) +
         BigInt(1);
}

IbSignatures::Signature IbSignatures::Sign(const IbePrivateKey& key,
                                           const util::Bytes& message) const {
  BigInt h = HashMessage(message);
  return Signature{ibe_.group().curve().ScalarMul(h, key.d)};
}

bool IbSignatures::Verify(const SystemParams& params,
                          const util::Bytes& signer_identity,
                          const util::Bytes& message,
                          const Signature& signature) const {
  const math::TypeAParams& group = ibe_.group();
  if (signature.sigma.is_infinity() ||
      !group.curve().IsOnCurve(signature.sigma)) {
    return false;
  }
  BigInt h = HashMessage(message);
  math::EcPoint q_id = ibe_.HashToPoint(signer_identity);
  // One product-of-pairings membership check instead of comparing two
  // full pairings: e(sigma, P) == e(Q_ID, P_pub)^h is equivalent to
  //   e(sigma, P) * e(-h*Q_ID, P_pub) == 1
  // (the exponent h folds into the point by bilinearity). Both terms
  // share the product's squaring chain and a single final
  // exponentiation, and the F_p2 exponentiation by h disappears
  // entirely. The pairing is symmetric, so the generator's (and, when
  // precomputed, P_pub's) cached Miller lines serve as fixed first
  // arguments.
  math::EcPoint neg_hqid =
      group.curve().Negate(group.curve().ScalarMul(h, q_id));
  std::vector<math::PairingTerm> terms;
  terms.push_back({&group.generator_pairing(), {}, signature.sigma});
  if (params.p_pub_pairing != nullptr) {
    terms.push_back({params.p_pub_pairing.get(), {}, neg_hqid});
  } else {
    terms.push_back({nullptr, params.p_pub, neg_hqid});
  }
  return group.PairingProduct(terms).IsOne();
}

util::Bytes IbSignatures::Serialize(const Signature& signature) const {
  return ibe_.group().curve().SerializeCompressed(signature.sigma);
}

util::Result<IbSignatures::Signature> IbSignatures::Deserialize(
    const util::Bytes& data) const {
  MWS_ASSIGN_OR_RETURN(math::EcPoint sigma,
                       ibe_.group().curve().DeserializeCompressed(data));
  return Signature{sigma};
}

}  // namespace mws::ibe
