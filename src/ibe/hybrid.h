#ifndef MWSIBE_IBE_HYBRID_H_
#define MWSIBE_IBE_HYBRID_H_

#include "src/crypto/block_cipher.h"
#include "src/ibe/attribute.h"
#include "src/ibe/bf_ibe.h"

namespace mws::ibe {

/// The sealed form a smart device produces for one message: U = rP plus
/// the DEM ciphertext. This is exactly what the paper stores at the MWS
/// ("rP || C" in §V.D) — the MWS sees both fields and can decrypt
/// neither without the PKG's extraction.
struct HybridCiphertext {
  math::EcPoint u;
  util::Bytes dem_ciphertext;
};

/// IBE-KEM + block-cipher-DEM hybrid encryption, parameterised on the DEM
/// cipher (the paper fixes DES; E10 ablates DES/3DES/AES-128).
///
/// Encrypt-side (smart device): derive identity I = SHA1(A||Nonce), KEM
/// to get (U, K), CBC-encrypt under K. Decrypt-side (receiving client):
/// KEM-decapsulate with the PKG-extracted private key, CBC-decrypt.
class HybridSealer {
 public:
  HybridSealer(const math::TypeAParams& group, crypto::CipherKind dem)
      : kem_(group, crypto::KeyLength(dem)), dem_(dem) {}

  /// Seals `message` for holders of the key extracted for
  /// DeriveIdentity(attribute, nonce).
  util::Result<HybridCiphertext> Seal(const SystemParams& params,
                                      const Attribute& attribute,
                                      const MessageNonce& nonce,
                                      const util::Bytes& message,
                                      util::RandomSource& rng) const;

  /// Opens with the private key for the identity the message was sealed
  /// to. A wrong key fails (CBC padding) or garbles; integrity comes from
  /// the protocol's MAC, as in the paper.
  util::Result<util::Bytes> Open(const IbePrivateKey& key,
                                 const HybridCiphertext& ct) const;

  /// Open with an already-computed pairing value g = e(key.d, ct.u) —
  /// the bulk path, where one PairingPrecomp for a fixed key serves many
  /// ciphertexts. Bit-identical to Open(key, ct) when g matches.
  util::Result<util::Bytes> OpenWithPairing(const math::Fp2& g,
                                            const HybridCiphertext& ct) const;

  crypto::CipherKind dem() const { return dem_; }
  const IbeKem& kem() const { return kem_; }

 private:
  IbeKem kem_;
  crypto::CipherKind dem_;
};

}  // namespace mws::ibe

#endif  // MWSIBE_IBE_HYBRID_H_
