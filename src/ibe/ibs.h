#ifndef MWSIBE_IBE_IBS_H_
#define MWSIBE_IBE_IBS_H_

#include "src/ibe/bf_ibe.h"

namespace mws::ibe {

/// Identity-based signatures over the same type-A pairing group —
/// the paper's §VIII hardening idea ("There may be a possibility of the
/// SD to use IBE and the ID of the MWS to sign a message"), so a smart
/// device can sign deposits under its *identity string* instead of a
/// MAC, removing the per-device shared-key table at the MWS.
///
/// Scheme (BLS-style, short signature in G1):
///   * the PKG extracts the signing key d_ID = s * H1(ID) — the very key
///     IBE decryption uses, so no new key infrastructure;
///   * Sign(d_ID, m):   sigma = h * d_ID where h = H(m) mod q;
///   * Verify(ID, m, sigma): e(sigma, P) == e(Q_ID, P_pub)^h.
/// Correctness: e(h*s*Q_ID, P) = e(Q_ID, P)^(h*s) = e(Q_ID, s*P)^h.
class IbSignatures {
 public:
  explicit IbSignatures(const math::TypeAParams& group) : ibe_(group) {}

  /// The signature is one compressed-size G1 point.
  struct Signature {
    math::EcPoint sigma;
  };

  /// Signs `message` with the extracted identity key.
  Signature Sign(const IbePrivateKey& key, const util::Bytes& message) const;

  /// Verifies against the signer's identity string and the system
  /// parameters; no per-signer public key needed. Internally one
  /// product-of-pairings check e(sigma, P) * e(-H(m)*Q_ID, P_pub) == 1 —
  /// a single shared Miller squaring chain and final exponentiation
  /// instead of two pairings plus an F_p2 exponentiation.
  bool Verify(const SystemParams& params, const util::Bytes& signer_identity,
              const util::Bytes& message, const Signature& signature) const;

  /// Serialized signature size in bytes (compressed point).
  size_t SignatureBytes() const {
    return 1 + ibe_.group().FieldBytes();
  }

  util::Bytes Serialize(const Signature& signature) const;
  util::Result<Signature> Deserialize(const util::Bytes& data) const;

 private:
  /// H(m) as a scalar in [1, q-1].
  math::BigInt HashMessage(const util::Bytes& message) const;

  BfIbe ibe_;
};

}  // namespace mws::ibe

#endif  // MWSIBE_IBE_IBS_H_
