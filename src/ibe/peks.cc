#include "src/ibe/peks.h"

#include "src/crypto/kdf.h"
#include "src/util/serde.h"

namespace mws::ibe {

using math::BigInt;
using math::EcPoint;

namespace {

util::Bytes HashPairingValue(const math::Fp2& value) {
  // 0x06 tag: domain separation from the IBE/IBS oracles.
  return crypto::HashExpand(crypto::HashKind::kSha256,
                            util::Concat(util::Bytes{0x06}, value.ToBytes()),
                            32);
}

}  // namespace

EcPoint Peks::HashKeyword(const util::Bytes& keyword) const {
  // Reuse the BF H1 construction with its own tag.
  util::Bytes tagged = util::Concat(util::Bytes{0x07}, keyword);
  const size_t flen = group_.FieldBytes();
  for (uint32_t counter = 0;; ++counter) {
    util::Bytes input = tagged;
    input.push_back(static_cast<uint8_t>(counter >> 24));
    input.push_back(static_cast<uint8_t>(counter >> 16));
    input.push_back(static_cast<uint8_t>(counter >> 8));
    input.push_back(static_cast<uint8_t>(counter));
    math::Fp x = math::Fp::FromBytes(
        group_.ctx(),
        crypto::HashExpand(crypto::HashKind::kSha256, input, flen));
    auto point = group_.LiftX(x);
    if (point.ok()) return point.value();
  }
}

Peks::KeyPair Peks::GenerateKeyPair(util::RandomSource& rng) const {
  KeyPair out;
  out.secret = group_.RandomScalar(rng);
  out.public_key = group_.MulGenerator(out.secret);
  return out;
}

Peks::Tag Peks::MakeTag(const EcPoint& public_key, const util::Bytes& keyword,
                        util::RandomSource& rng) const {
  BigInt r = group_.RandomScalar(rng);
  Tag out;
  out.u = group_.MulGenerator(r);
  math::Fp2 t = group_.Pairing(HashKeyword(keyword), public_key).Pow(r);
  out.check = HashPairingValue(t);
  return out;
}

Peks::Trapdoor Peks::MakeTrapdoor(const BigInt& secret,
                                  const util::Bytes& keyword) const {
  return Trapdoor{group_.curve().ScalarMul(secret, HashKeyword(keyword))};
}

bool Peks::Test(const Tag& tag, const Trapdoor& trapdoor) const {
  if (tag.u.is_infinity() || trapdoor.t.is_infinity()) return false;
  math::Fp2 t = group_.Pairing(trapdoor.t, tag.u);
  return util::ConstantTimeEqual(HashPairingValue(t), tag.check);
}

std::vector<bool> Peks::TestMany(const std::vector<Tag>& tags,
                                 const Trapdoor& trapdoor) const {
  std::vector<bool> out(tags.size(), false);
  if (tags.empty() || trapdoor.t.is_infinity()) return out;
  // Pair only the non-degenerate tags; infinity stays `false` without
  // entering the batch (PairingMany would map it to 1, which never
  // matches a well-formed check anyway, but skipping keeps the
  // semantics of Test exact by construction).
  math::PairingPrecomp precomp(group_, trapdoor.t);
  std::vector<size_t> live;
  std::vector<EcPoint> us;
  live.reserve(tags.size());
  us.reserve(tags.size());
  for (size_t i = 0; i < tags.size(); ++i) {
    if (tags[i].u.is_infinity()) continue;
    live.push_back(i);
    us.push_back(tags[i].u);
  }
  std::vector<math::Fp2> ts = precomp.PairingMany(us);
  for (size_t k = 0; k < live.size(); ++k) {
    out[live[k]] = util::ConstantTimeEqual(HashPairingValue(ts[k]),
                                           tags[live[k]].check);
  }
  return out;
}

util::Bytes Peks::SerializeTag(const Tag& tag) const {
  util::Writer w;
  w.PutBytes(group_.curve().Serialize(tag.u));
  w.PutBytes(tag.check);
  return w.Take();
}

util::Result<Peks::Tag> Peks::ParseTag(const util::Bytes& data) const {
  util::Reader r(data);
  util::Bytes point_bytes, check;
  if (!r.GetBytes(&point_bytes) || !r.GetBytes(&check) || !r.Done()) {
    return util::Status::InvalidArgument("malformed PEKS tag");
  }
  if (check.size() != 32) {
    return util::Status::InvalidArgument("PEKS check must be 32 bytes");
  }
  MWS_ASSIGN_OR_RETURN(EcPoint u, group_.curve().Deserialize(point_bytes));
  return Tag{u, check};
}

}  // namespace mws::ibe
