#ifndef MWSIBE_IBE_ATTRIBUTE_H_
#define MWSIBE_IBE_ATTRIBUTE_H_

#include <string>
#include <string_view>

#include "src/util/bytes.h"
#include "src/util/random.h"
#include "src/util/result.h"

namespace mws::ibe {

/// An attribute string characterising eligible receiving clients, e.g.
/// "ELECTRIC-BAYTOWER-SV-CA" (paper §V). Attributes are uppercase
/// alphanumerics, '-', '_', '.'; 1..128 chars.
using Attribute = std::string;

/// Per-message nonce appended to the attribute before hashing. A fresh
/// nonce per message means a fresh IBE public/private key pair per
/// message, which is what makes revocation effective (paper §V.B).
struct MessageNonce {
  util::Bytes value;  // 16 bytes

  friend bool operator==(const MessageNonce& a, const MessageNonce& b) {
    return a.value == b.value;
  }
};

/// Validates an attribute string against the grammar above.
util::Status ValidateAttribute(std::string_view attribute);

/// Draws a fresh 16-byte nonce.
MessageNonce GenerateNonce(util::RandomSource& rng);

/// The paper's identity derivation I = SHA1(A || Nonce): the byte string
/// that BfIbe::HashToPoint maps onto the curve. Kept as SHA-1 for
/// fidelity with §V.D ("It generates a Nonce and computes a hash I of the
/// string A||Nonce").
util::Bytes DeriveIdentity(const Attribute& attribute,
                           const MessageNonce& nonce);

}  // namespace mws::ibe

#endif  // MWSIBE_IBE_ATTRIBUTE_H_
