#include "src/util/status.h"

namespace mws::util {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kUnauthenticated:
      return "Unauthenticated";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

bool IsRetryableCode(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kIoError:
      return true;
    default:
      return false;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mws::util
