#include "src/util/random.h"

#include <random>

namespace mws::util {

uint64_t RandomSource::UniformU64(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - (UINT64_MAX % bound);
  for (;;) {
    uint64_t v;
    Fill(reinterpret_cast<uint8_t*>(&v), sizeof(v));
    if (v < limit) return v % bound;
  }
}

void OsRandom::Fill(uint8_t* out, size_t len) {
  static thread_local std::random_device rd;
  size_t i = 0;
  while (i < len) {
    unsigned int v = rd();
    for (size_t j = 0; j < sizeof(v) && i < len; ++j, ++i) {
      out[i] = static_cast<uint8_t>(v >> (8 * j));
    }
  }
}

OsRandom& OsRandom::Instance() {
  static OsRandom& instance = *new OsRandom();
  return instance;
}

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

DeterministicRandom::DeterministicRandom(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : state_) s = SplitMix64(x);
}

uint64_t DeterministicRandom::NextU64() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

void DeterministicRandom::Fill(uint8_t* out, size_t len) {
  size_t i = 0;
  while (i < len) {
    uint64_t v = NextU64();
    for (size_t j = 0; j < 8 && i < len; ++j, ++i) {
      out[i] = static_cast<uint8_t>(v >> (8 * j));
    }
  }
}

}  // namespace mws::util
