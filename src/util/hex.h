#ifndef MWSIBE_UTIL_HEX_H_
#define MWSIBE_UTIL_HEX_H_

#include <string>
#include <string_view>

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace mws::util {

/// Lowercase hex encoding of `data`.
std::string HexEncode(const Bytes& data);

/// Decodes a hex string (case-insensitive). Fails on odd length or
/// non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

}  // namespace mws::util

#endif  // MWSIBE_UTIL_HEX_H_
