#ifndef MWSIBE_UTIL_BASE64_H_
#define MWSIBE_UTIL_BASE64_H_

#include <string>
#include <string_view>

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace mws::util {

/// Standard (RFC 4648) base64 with padding.
std::string Base64Encode(const Bytes& data);

/// Decodes standard base64; padding required; rejects invalid characters.
Result<Bytes> Base64Decode(std::string_view text);

}  // namespace mws::util

#endif  // MWSIBE_UTIL_BASE64_H_
