#ifndef MWSIBE_UTIL_RANDOM_H_
#define MWSIBE_UTIL_RANDOM_H_

#include <cstdint>
#include <mutex>

#include "src/util/bytes.h"

namespace mws::util {

/// Source of random octets. Cryptographic call sites take a RandomSource&
/// so tests can substitute a deterministic generator; production code uses
/// OsRandom (or crypto::HmacDrbg seeded from it).
class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Fills `out[0..len)` with random bytes.
  virtual void Fill(uint8_t* out, size_t len) = 0;

  /// Convenience: a fresh byte string of length `len`.
  Bytes Generate(size_t len) {
    Bytes out(len);
    if (len > 0) Fill(out.data(), len);
    return out;
  }

  /// Uniform value in [0, bound). Pre: bound > 0.
  uint64_t UniformU64(uint64_t bound);
};

/// Entropy from the operating system (std::random_device).
class OsRandom : public RandomSource {
 public:
  void Fill(uint8_t* out, size_t len) override;

  static OsRandom& Instance();
};

/// Fast deterministic generator (xoshiro256**) for tests and workload
/// generation. NOT cryptographically secure.
class DeterministicRandom : public RandomSource {
 public:
  explicit DeterministicRandom(uint64_t seed);

  void Fill(uint8_t* out, size_t len) override;

  /// Next raw 64-bit output.
  uint64_t NextU64();

 private:
  uint64_t state_[4];
};

/// Serializes an underlying RandomSource behind a mutex so one generator
/// can feed concurrent request handlers. Services wrap their injected
/// source with this, which keeps single-threaded byte streams (and thus
/// deterministic test vectors) unchanged while making multi-threaded use
/// merely order-nondeterministic instead of racy.
class LockedRandom : public RandomSource {
 public:
  /// Borrows `inner`, which must outlive this wrapper.
  explicit LockedRandom(RandomSource* inner) : inner_(inner) {}

  void Fill(uint8_t* out, size_t len) override {
    std::lock_guard<std::mutex> lock(Mutex());
    inner_->Fill(out, len);
  }

 private:
  /// One process-wide mutex, not per-wrapper: separate services (MWS,
  /// PKG) are routinely handed the *same* underlying generator, and
  /// per-instance locks would not actually exclude their handlers from
  /// each other. Draws are rare and cheap, so contention is negligible.
  static std::mutex& Mutex() {
    static std::mutex mutex;
    return mutex;
  }

  RandomSource* inner_;
};

}  // namespace mws::util

#endif  // MWSIBE_UTIL_RANDOM_H_
