#include "src/util/bytes.h"

#include <cassert>

namespace mws::util {

Bytes BytesFromString(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string StringFromBytes(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

Bytes Concat(std::initializer_list<const Bytes*> parts) {
  size_t total = 0;
  for (const Bytes* p : parts) total += p->size();
  Bytes out;
  out.reserve(total);
  for (const Bytes* p : parts) out.insert(out.end(), p->begin(), p->end());
  return out;
}

Bytes Concat(const Bytes& a, const Bytes& b) { return Concat({&a, &b}); }

Bytes Concat(const Bytes& a, const Bytes& b, const Bytes& c) {
  return Concat({&a, &b, &c});
}

void Append(Bytes& dst, const Bytes& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

Bytes Xor(const Bytes& a, const Bytes& b) {
  assert(a.size() == b.size());
  Bytes out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

bool ConstantTimeEqual(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  volatile uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc = acc | (a[i] ^ b[i]);
  return acc == 0;
}

void SecureWipe(Bytes& b) {
  volatile uint8_t* p = b.data();
  for (size_t i = 0; i < b.size(); ++i) p[i] = 0;
}

}  // namespace mws::util
