#ifndef MWSIBE_UTIL_FAULT_H_
#define MWSIBE_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/random.h"
#include "src/util/status.h"

namespace mws::util {

/// What an injected fault does to the faulted operation.
enum class FaultKind {
  /// Fail the operation with `FaultRule::code` without performing it.
  kError,
  /// Perform the operation, then report failure anyway — the "applied
  /// but ack lost" shape that torn writes and dropped responses share.
  /// This is the fault that exercises at-least-once dedup: a correct
  /// retry must not double-apply.
  kTornWrite,
  /// Delay the operation by `delay_micros`, then perform it normally.
  kDelay,
  /// Drop the connection: the request may or may not have been applied;
  /// the caller only sees kUnavailable. Transport decorators perform the
  /// inner call and discard the response; storage decorators treat it
  /// like kError.
  kConnectionDrop,
  /// The device is out of storage: the write fails with `FaultRule::code`
  /// (arm kResourceExhausted for the ENOSPC shape) and nothing is
  /// applied. Distinct from kError so storage decorators can count
  /// capacity exhaustion separately from transient I/O errors, and so a
  /// rule can target only the append paths that allocate space
  /// (store::FaultyTable writes, store::AppendFile / outbox appends).
  kDiskFull,
};

const char* FaultKindToString(FaultKind kind);

/// One armed fault. A rule fires when its pattern matches the operation
/// tag AND its trigger hits: either exactly the `nth` matching call
/// (1-based, fires once) or each matching call with `probability`.
struct FaultRule {
  FaultKind kind = FaultKind::kError;

  // --- Trigger ---
  /// Substring matched against the operation tag ("table.put/m/0001",
  /// "transport.call/mws.deposit", ...). Empty matches everything.
  std::string pattern;
  /// Fire on exactly the nth matching call (1-based), once. 0 disables
  /// the counter trigger and `probability` decides instead.
  uint64_t nth = 0;
  /// Per-matching-call fire probability in [0, 1]. Ignored if nth > 0.
  double probability = 0.0;

  // --- Fault parameters ---
  StatusCode code = StatusCode::kUnavailable;
  std::string message = "injected fault";
  int64_t delay_micros = 0;
};

/// A fired fault, as handed to the decorator that asked.
struct Fault {
  FaultKind kind;
  Status status;
  int64_t delay_micros = 0;
};

/// Seeded, deterministic fault source shared by the library-level
/// decorators (store::FaultyTable, wire::FaultyTransport). One injector
/// can feed several decorators; every probabilistic decision comes from
/// one seeded PRNG stream, so a (seed, workload) pair replays the exact
/// same fault schedule. Thread-safe: Evaluate may be called from
/// concurrent request handlers.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  /// Arms `rule` in addition to any existing rules (first match wins,
  /// in arming order).
  void AddRule(FaultRule rule);

  /// Disarms every rule. Counters keep running.
  void ClearRules();

  /// Called by decorators once per operation with a descriptive tag.
  /// Returns the fault to apply, or nullopt to proceed normally.
  std::optional<Fault> Evaluate(std::string_view operation);

  /// Operations observed / faults fired since construction.
  uint64_t calls() const { return calls_.load(std::memory_order_relaxed); }
  uint64_t fired() const { return fired_.load(std::memory_order_relaxed); }

  /// Observer invoked (under the injector mutex — keep it cheap, never
  /// re-enter the injector) each time a fault fires, with the fault and
  /// the operation tag. Lets higher layers count injected faults per
  /// kind without util depending on them (the scenario wires this to
  /// obs counters). Set before traffic starts.
  using FireHook = std::function<void(const Fault&, std::string_view)>;
  void set_fire_hook(FireHook hook) {
    std::lock_guard<std::mutex> lock(mutex_);
    fire_hook_ = std::move(hook);
  }

 private:
  struct ArmedRule {
    FaultRule rule;
    uint64_t matches = 0;  // matching calls seen so far
    bool spent = false;    // nth-trigger already fired
  };

  std::mutex mutex_;
  DeterministicRandom rng_;
  std::vector<ArmedRule> rules_;
  FireHook fire_hook_;
  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> fired_{0};
};

}  // namespace mws::util

#endif  // MWSIBE_UTIL_FAULT_H_
