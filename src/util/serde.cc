#include "src/util/serde.h"

#include <array>

namespace mws::util {

void Writer::PutU16(uint16_t v) {
  out_.push_back(static_cast<uint8_t>(v >> 8));
  out_.push_back(static_cast<uint8_t>(v));
}

void Writer::PutU32(uint32_t v) {
  out_.push_back(static_cast<uint8_t>(v >> 24));
  out_.push_back(static_cast<uint8_t>(v >> 16));
  out_.push_back(static_cast<uint8_t>(v >> 8));
  out_.push_back(static_cast<uint8_t>(v));
}

void Writer::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v >> 32));
  PutU32(static_cast<uint32_t>(v));
}

void Writer::PutBytes(const Bytes& b) {
  PutU32(static_cast<uint32_t>(b.size()));
  out_.insert(out_.end(), b.begin(), b.end());
}

void Writer::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

void Writer::PutRaw(const Bytes& b) {
  out_.insert(out_.end(), b.begin(), b.end());
}

bool Reader::Take(size_t n, const uint8_t** p) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool Reader::GetU8(uint8_t* v) {
  const uint8_t* p;
  if (!Take(1, &p)) return false;
  *v = p[0];
  return true;
}

bool Reader::GetU16(uint16_t* v) {
  const uint8_t* p;
  if (!Take(2, &p)) return false;
  *v = static_cast<uint16_t>((p[0] << 8) | p[1]);
  return true;
}

bool Reader::GetU32(uint32_t* v) {
  const uint8_t* p;
  if (!Take(4, &p)) return false;
  *v = (static_cast<uint32_t>(p[0]) << 24) |
       (static_cast<uint32_t>(p[1]) << 16) |
       (static_cast<uint32_t>(p[2]) << 8) | p[3];
  return true;
}

bool Reader::GetU64(uint64_t* v) {
  uint32_t hi, lo;
  if (!GetU32(&hi) || !GetU32(&lo)) return false;
  *v = (static_cast<uint64_t>(hi) << 32) | lo;
  return true;
}

bool Reader::GetBytes(Bytes* b) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  const uint8_t* p;
  if (!Take(len, &p)) return false;
  b->assign(p, p + len);
  return true;
}

bool Reader::GetString(std::string* s) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  const uint8_t* p;
  if (!Take(len, &p)) return false;
  s->assign(reinterpret_cast<const char*>(p), len);
  return true;
}

bool Reader::GetRaw(size_t len, Bytes* b) {
  const uint8_t* p;
  if (!Take(len, &p)) return false;
  b->assign(p, p + len);
  return true;
}

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ data[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(const Bytes& data) { return Crc32(data.data(), data.size()); }

}  // namespace mws::util
