#ifndef MWSIBE_UTIL_STRING_UTIL_H_
#define MWSIBE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mws::util {

/// Splits `s` on `sep`; empty fields are kept ("a||b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// ASCII uppercase copy.
std::string ToUpperAscii(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace mws::util

#endif  // MWSIBE_UTIL_STRING_UTIL_H_
