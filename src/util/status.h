#ifndef MWSIBE_UTIL_STATUS_H_
#define MWSIBE_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace mws::util {

/// Error categories used throughout the library. Modeled after the
/// RocksDB/Abseil status vocabulary; library code never throws.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kUnauthenticated,
  kFailedPrecondition,
  kOutOfRange,
  kCorruption,
  kIoError,
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,
  kUnavailable,
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code ("NotFound" etc.).
const char* StatusCodeToString(StatusCode code);

/// The one place retry policy is classified. A retryable code means the
/// operation may have failed transiently and is safe to re-issue (the
/// service layer dedupes retransmits, so at-least-once delivery cannot
/// double-store): kUnavailable (connection drop, server restarting),
/// kResourceExhausted (overload shed; back off first) and kIoError
/// (socket-level failure). Everything else — including
/// kDeadlineExceeded, which means the caller's time budget is already
/// spent — is permanent from the client's point of view.
bool IsRetryableCode(StatusCode code);

/// A cheap value type carrying success or an error code plus message.
///
/// Functions that can fail return `Status` (or `Result<T>` when they also
/// produce a value). Callers must check `ok()` before relying on any
/// side effects.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unauthenticated(std::string msg) {
    return Status(StatusCode::kUnauthenticated, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code_ == StatusCode::kAlreadyExists;
  }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsUnauthenticated() const {
    return code_ == StatusCode::kUnauthenticated;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// Whether a failed call with this status is safe and useful to retry
  /// (see IsRetryableCode).
  bool IsRetryable() const { return IsRetryableCode(code_); }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define MWS_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::mws::util::Status _mws_status = (expr);       \
    if (!_mws_status.ok()) return _mws_status;      \
  } while (0)

}  // namespace mws::util

#endif  // MWSIBE_UTIL_STATUS_H_
