#include "src/util/clock.h"

#include <chrono>

namespace mws::util {

int64_t SystemClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

SystemClock& SystemClock::Instance() {
  static SystemClock& instance = *new SystemClock();
  return instance;
}

}  // namespace mws::util
