#ifndef MWSIBE_UTIL_CLOCK_H_
#define MWSIBE_UTIL_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace mws::util {

/// Source of protocol timestamps (microseconds since the Unix epoch).
///
/// The protocol uses timestamps for replay protection; tests and the
/// simulator inject a SimulatedClock so freshness windows are exercised
/// deterministically.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since the Unix epoch.
  virtual int64_t NowMicros() const = 0;
};

/// Wall-clock time from the operating system.
class SystemClock : public Clock {
 public:
  int64_t NowMicros() const override;

  /// Process-wide instance (trivially destructible is not required for a
  /// function-local static reference).
  static SystemClock& Instance();
};

/// A manually advanced clock for tests and simulation. Thread-safe:
/// reads and advances are atomic, so concurrency tests may age sessions
/// from one thread while protocol threads read timestamps.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }

  void AdvanceMicros(int64_t delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void SetMicros(int64_t t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace mws::util

#endif  // MWSIBE_UTIL_CLOCK_H_
