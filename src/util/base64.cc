#include "src/util/base64.h"

#include <array>

namespace mws::util {
namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int8_t, 256> BuildReverse() {
  std::array<int8_t, 256> rev{};
  rev.fill(-1);
  for (int i = 0; i < 64; ++i) {
    rev[static_cast<uint8_t>(kAlphabet[i])] = static_cast<int8_t>(i);
  }
  return rev;
}

}  // namespace

std::string Base64Encode(const Bytes& data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    uint32_t v = (static_cast<uint32_t>(data[i]) << 16) |
                 (static_cast<uint32_t>(data[i + 1]) << 8) | data[i + 2];
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back(kAlphabet[(v >> 6) & 0x3f]);
    out.push_back(kAlphabet[v & 0x3f]);
  }
  size_t rem = data.size() - i;
  if (rem == 1) {
    uint32_t v = static_cast<uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    uint32_t v = (static_cast<uint32_t>(data[i]) << 16) |
                 (static_cast<uint32_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(v >> 18) & 0x3f]);
    out.push_back(kAlphabet[(v >> 12) & 0x3f]);
    out.push_back(kAlphabet[(v >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

Result<Bytes> Base64Decode(std::string_view text) {
  static const std::array<int8_t, 256> kReverse = BuildReverse();
  if (text.size() % 4 != 0) {
    return Status::InvalidArgument("base64 length not a multiple of 4");
  }
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    int pad = 0;
    uint32_t v = 0;
    for (size_t j = 0; j < 4; ++j) {
      char c = text[i + j];
      if (c == '=') {
        // Padding may only appear in the final one or two positions.
        if (i + 4 != text.size() || j < 2) {
          return Status::InvalidArgument("misplaced base64 padding");
        }
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) {
        return Status::InvalidArgument("data after base64 padding");
      }
      int8_t d = kReverse[static_cast<uint8_t>(c)];
      if (d < 0) return Status::InvalidArgument("invalid base64 character");
      v = (v << 6) | static_cast<uint32_t>(d);
    }
    out.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<uint8_t>(v & 0xff));
  }
  return out;
}

}  // namespace mws::util
