#include "src/util/ttl_store.h"

namespace mws::util {

ReplayCache::ReplayCache(Options options) : options_(options) {
  if (options_.stripes == 0) options_.stripes = 1;
  if (options_.max_entries == 0) options_.max_entries = 1;
  stripes_ = std::vector<Stripe>(options_.stripes);
  per_stripe_cap_ =
      (options_.max_entries + options_.stripes - 1) / options_.stripes;
}

bool ReplayCache::CheckAndInsert(int64_t timestamp, const std::string& key,
                                 int64_t now) {
  Stripe& stripe = stripes_[std::hash<std::string>{}(key) % stripes_.size()];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  if (options_.window_micros > 0) {
    // Entries this old fail the freshness check outright, so forgetting
    // them loses no protection. The 2x margin mirrors the freshness
    // check's acceptance of timestamps up to one window in the future.
    auto cutoff = stripe.entries.lower_bound(
        {now - 2 * options_.window_micros, std::string()});
    size_t pruned =
        static_cast<size_t>(std::distance(stripe.entries.begin(), cutoff));
    stripe.entries.erase(stripe.entries.begin(), cutoff);
    size_.fetch_sub(pruned, std::memory_order_relaxed);
  }
  if (!stripe.entries.emplace(timestamp, key).second) {
    return false;  // replay
  }
  size_.fetch_add(1, std::memory_order_relaxed);
  while (stripe.entries.size() > per_stripe_cap_) {
    stripe.entries.erase(stripe.entries.begin());
    size_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

}  // namespace mws::util
