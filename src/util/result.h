#ifndef MWSIBE_UTIL_RESULT_H_
#define MWSIBE_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace mws::util {

/// Holds either a value of type `T` or a non-OK `Status`, like
/// absl::StatusOr. Constructing from an OK status without a value is a
/// programming error and asserts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status needs a value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error (OK when a value is present).
  const Status& status() const { return status_; }

  /// Pre: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T> expression); on error returns the status,
/// otherwise moves the value into `lhs`.
#define MWS_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  MWS_ASSIGN_OR_RETURN_IMPL_(                                 \
      MWS_RESULT_CONCAT_(_mws_result, __LINE__), lhs, rexpr)

#define MWS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define MWS_RESULT_CONCAT_(a, b) MWS_RESULT_CONCAT_IMPL_(a, b)
#define MWS_RESULT_CONCAT_IMPL_(a, b) a##b

}  // namespace mws::util

#endif  // MWSIBE_UTIL_RESULT_H_
