#ifndef MWSIBE_UTIL_TTL_STORE_H_
#define MWSIBE_UTIL_TTL_STORE_H_

#include <atomic>
#include <deque>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mws::util {

/// Control-plane capacity tuning shared by the Gatekeeper and the PKG.
/// Defaults fit a million-identity deployment; the E20 bench sweeps
/// them.
struct ControlPlaneTuning {
  /// Lock stripes for the session registry and replay cache. 1 = one
  /// mutex for everything.
  size_t stripes = 16;
  /// Hard bound on live sessions; beyond it the oldest session is
  /// evicted (the victim simply re-authenticates).
  size_t max_sessions = size_t{1} << 20;
  /// Hard bound on remembered replay entries (see ReplayCache).
  size_t max_replay_entries = size_t{1} << 20;
  /// Retained reference path: single stripe plus the pre-PR-10 GC
  /// strategy of sweeping the *entire* session registry inside every
  /// authentication's critical section. Behavior-identical to the tuned
  /// path (the equivalence tests assert it) but O(live sessions) per
  /// auth — the E20 baseline the tuned path is measured against.
  bool reference_mode = false;
};

/// Options shared by the two control-plane registries below.
struct TtlStoreOptions {
  /// Number of independently locked stripes. 1 degenerates to a single
  /// mutex (the pre-PR-10 layout, kept as the bench baseline).
  size_t stripes = 16;
  /// Hard capacity bound across all stripes. When a stripe is full the
  /// *oldest* entry of that stripe is evicted to admit the new one, so
  /// memory stays bounded no matter the ingest rate.
  size_t max_entries = size_t{1} << 20;
  /// Entries older than this are expired. <= 0 disables TTL eviction
  /// (capacity eviction still applies).
  int64_t ttl_micros = 0;
};

/// Striped, TTL-evicting, capacity-bounded registry of string-keyed
/// values — the session table of a control-plane service (Gatekeeper,
/// PKG) that must stay fast *and* bounded at millions of logins.
///
/// Layout: keys hash to one of `stripes` shards, each an unordered map
/// behind its own mutex, so lookups of distinct sessions never contend.
/// Every stripe keeps an insertion-ordered queue of (created, key)
/// stamps; because entries are inserted with a monotone clock, the
/// queue front is (approximately) the oldest entry, which makes both
/// TTL reaping and capacity eviction amortized O(1) — a sharp contrast
/// to the full-registry sweep the single-map implementation performed
/// under its one mutex on every insert.
///
/// Concurrency contract: all methods are safe to call concurrently.
/// `Size()` is an O(1) relaxed atomic read and is exact whenever it is
/// not racing a mutation. Expired entries are reclaimed lazily — on the
/// Get that observes them, on inserts into their stripe, and in bulk by
/// `SweepExpired` — so the documented bound is `max_entries`, not the
/// live-entry count.
///
/// Eviction is strictly oldest-first per stripe. For session registries
/// this is the right casualty order: the evicted session is the one
/// closest to TTL expiry, and a client whose session disappears simply
/// re-authenticates (the same recovery path as an expiry).
template <typename V>
class TtlStore {
 public:
  explicit TtlStore(TtlStoreOptions options) : options_(options) {
    if (options_.stripes == 0) options_.stripes = 1;
    if (options_.max_entries == 0) options_.max_entries = 1;
    stripes_ = std::vector<Stripe>(options_.stripes);
    // Ceil-divide so stripe capacities sum to >= max_entries and every
    // stripe admits at least one entry.
    per_stripe_cap_ =
        (options_.max_entries + options_.stripes - 1) / options_.stripes;
  }

  /// Removal accounting for one Insert: TTL reaps are routine aging,
  /// capacity evictions mean the store is undersized for its load.
  struct InsertStats {
    size_t reaped = 0;
    size_t evicted = 0;
  };

  /// Inserts (or overwrites) `key`, stamping it with `now`. Reaps any
  /// expired entries at the stripe front and, if the stripe is still at
  /// capacity, evicts its oldest live entry.
  InsertStats Insert(const std::string& key, V value, int64_t now) {
    Stripe& stripe = StripeFor(key);
    InsertStats stats;
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stats.reaped = ReapFrontLocked(stripe, now);
    auto [it, inserted] = stripe.map.try_emplace(key);
    it->second = Entry{std::move(value), now};
    if (inserted) {
      size_.fetch_add(1, std::memory_order_relaxed);
    }
    stripe.order.emplace_back(now, key);
    while (stripe.map.size() > per_stripe_cap_) {
      stats.evicted += EvictOldestLocked(stripe);
    }
    return stats;
  }

  /// Looks up `key`; empty if absent or expired (an expired entry is
  /// erased on the way out, keeping the gauge exact). When
  /// `was_expired` is non-null it reports which of the two happened, so
  /// callers can keep distinct "unknown" / "expired" errors.
  std::optional<V> Get(const std::string& key, int64_t now,
                       bool* was_expired = nullptr) {
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    auto it = stripe.map.find(key);
    if (it == stripe.map.end()) {
      if (was_expired != nullptr) *was_expired = false;
      return std::nullopt;
    }
    if (Expired(it->second.created_micros, now)) {
      stripe.map.erase(it);
      size_.fetch_sub(1, std::memory_order_relaxed);
      if (was_expired != nullptr) *was_expired = true;
      return std::nullopt;
    }
    return it->second.value;
  }

  /// Removes `key`; false if it was not present.
  bool Erase(const std::string& key) {
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mutex);
    if (stripe.map.erase(key) == 0) return false;
    size_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  /// Bulk-reaps every entry whose age exceeds the TTL, stripe by stripe
  /// (never holding more than one stripe lock). Returns entries reaped.
  /// Amortized O(reaped): the insertion-ordered queues mean the sweep
  /// touches only stamps at each queue front, not the whole registry.
  size_t SweepExpired(int64_t now) {
    size_t removed = 0;
    for (Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mutex);
      removed += ReapFrontLocked(stripe, now);
    }
    return removed;
  }

  /// Reference-mode sweep: visits *every* entry, the pre-PR-10 GC
  /// strategy the services ran inside each authentication's critical
  /// section. O(live entries) — retained so the E20 baseline measures
  /// exactly the cost the amortized sweep removes. Leaves stale order
  /// stamps behind; they are revalidated before acting on them.
  size_t SweepExpiredFull(int64_t now) {
    size_t removed = 0;
    for (Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mutex);
      for (auto it = stripe.map.begin(); it != stripe.map.end();) {
        if (Expired(it->second.created_micros, now)) {
          it = stripe.map.erase(it);
          size_.fetch_sub(1, std::memory_order_relaxed);
          ++removed;
        } else {
          ++it;
        }
      }
    }
    return removed;
  }

  /// Live entries (including not-yet-reaped expired ones). O(1).
  size_t Size() const { return size_.load(std::memory_order_relaxed); }

  size_t stripes() const { return options_.stripes; }
  size_t max_entries() const { return options_.max_entries; }

 private:
  struct Entry {
    V value;
    int64_t created_micros = 0;
  };
  struct Stripe {
    std::mutex mutex;
    std::unordered_map<std::string, Entry> map;
    /// (created, key) in insertion order. A stamp may be stale — the
    /// entry erased or overwritten since — so consumers re-validate
    /// against the map before acting on one. Bounded: one stamp per
    /// insert, popped on reap/evict.
    std::deque<std::pair<int64_t, std::string>> order;

    Stripe() = default;
    Stripe(Stripe&&) noexcept {}  // only used during construction
  };

  bool Expired(int64_t created, int64_t now) const {
    return options_.ttl_micros > 0 && now - created > options_.ttl_micros;
  }

  Stripe& StripeFor(const std::string& key) {
    return stripes_[std::hash<std::string>{}(key) % stripes_.size()];
  }

  /// Pops queue-front stamps that are past TTL, erasing the entries
  /// they still describe. Pre: stripe.mutex held.
  size_t ReapFrontLocked(Stripe& stripe, int64_t now) {
    size_t removed = 0;
    while (!stripe.order.empty() &&
           Expired(stripe.order.front().first, now)) {
      auto [created, key] = std::move(stripe.order.front());
      stripe.order.pop_front();
      auto it = stripe.map.find(key);
      if (it != stripe.map.end() && it->second.created_micros == created) {
        stripe.map.erase(it);
        size_.fetch_sub(1, std::memory_order_relaxed);
        ++removed;
      }
    }
    return removed;
  }

  /// Evicts the oldest live entry of the stripe (skipping stale
  /// stamps). Pre: stripe.mutex held, stripe.map not empty.
  size_t EvictOldestLocked(Stripe& stripe) {
    while (!stripe.order.empty()) {
      auto [created, key] = std::move(stripe.order.front());
      stripe.order.pop_front();
      auto it = stripe.map.find(key);
      if (it != stripe.map.end() && it->second.created_micros == created) {
        stripe.map.erase(it);
        size_.fetch_sub(1, std::memory_order_relaxed);
        return 1;
      }
    }
    return 0;  // every stamp was stale; map entries must be newer
  }

  TtlStoreOptions options_;
  size_t per_stripe_cap_ = 0;
  std::vector<Stripe> stripes_;
  std::atomic<size_t> size_{0};
};

/// Striped replay cache: remembers (timestamp, discriminator) pairs of
/// accepted authentications for the freshness window and rejects
/// duplicates. Both protections the protocol needs are structural here:
///
///  * window bound — entries older than `window_micros` relative to the
///    caller-supplied clock are pruned on every insert touching their
///    stripe (duplicates of them are already rejected by the timestamp
///    freshness check, so forgetting them is safe);
///  * capacity bound — a stripe that is full despite pruning evicts its
///    oldest entries. Those are the entries closest to aging out of the
///    window, so the protection lost is marginal and the memory bound
///    is absolute. `Evictions()` counts how often that safety valve
///    opened; a deployment seeing it move sizes the cache up.
///
/// The pre-PR-10 services kept this set unbounded within the window and
/// behind the same mutex as the session registry; at millions of
/// authentications per window the set itself became a memory and cache
/// liability. Striping by discriminator hash also moves the prune cost
/// off the registry lock.
class ReplayCache {
 public:
  struct Options {
    size_t stripes = 16;
    size_t max_entries = size_t{1} << 20;
    int64_t window_micros = 0;  ///< <= 0 disables window pruning.
  };

  explicit ReplayCache(Options options);

  /// Records (timestamp, key). Returns false — a replay — if the pair
  /// is already present. Prunes the stripe's out-of-window entries
  /// first.
  bool CheckAndInsert(int64_t timestamp, const std::string& key, int64_t now);

  /// Entries currently remembered. O(1).
  size_t Size() const { return size_.load(std::memory_order_relaxed); }

  /// Total capacity evictions since construction (0 in a well-sized
  /// deployment).
  uint64_t Evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Stripe {
    std::mutex mutex;
    /// Ordered by timestamp so window pruning is a prefix erase.
    std::set<std::pair<int64_t, std::string>> entries;

    Stripe() = default;
    Stripe(Stripe&&) noexcept {}  // only used during construction
  };

  Options options_;
  size_t per_stripe_cap_ = 0;
  std::vector<Stripe> stripes_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace mws::util

#endif  // MWSIBE_UTIL_TTL_STORE_H_
