#ifndef MWSIBE_UTIL_BYTES_H_
#define MWSIBE_UTIL_BYTES_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace mws::util {

/// The library-wide octet-string type.
using Bytes = std::vector<uint8_t>;

/// Copies the characters of `s` into a byte vector (no encoding change).
Bytes BytesFromString(std::string_view s);

/// Interprets `b` as raw characters.
std::string StringFromBytes(const Bytes& b);

/// Concatenates the given byte strings in order.
Bytes Concat(std::initializer_list<const Bytes*> parts);
Bytes Concat(const Bytes& a, const Bytes& b);
Bytes Concat(const Bytes& a, const Bytes& b, const Bytes& c);

/// Appends `src` to `dst`.
void Append(Bytes& dst, const Bytes& src);

/// XOR of two equal-length byte strings. Asserts on length mismatch.
Bytes Xor(const Bytes& a, const Bytes& b);

/// Compares in time dependent only on the lengths; returns false on
/// length mismatch. Use for MACs, keys, and password hashes.
bool ConstantTimeEqual(const Bytes& a, const Bytes& b);

/// Overwrites the buffer with zeros (best effort; not guaranteed against
/// compiler elision for stack copies).
void SecureWipe(Bytes& b);

}  // namespace mws::util

#endif  // MWSIBE_UTIL_BYTES_H_
