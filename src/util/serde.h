#ifndef MWSIBE_UTIL_SERDE_H_
#define MWSIBE_UTIL_SERDE_H_

#include <cstdint>
#include <string>

#include "src/util/bytes.h"

namespace mws::util {

/// Canonical binary encoder (big-endian integers, u32-length-prefixed
/// byte fields). Every wire message and stored record uses this format.
class Writer {
 public:
  void PutU8(uint8_t v) { out_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Length-prefixed byte string (u32 length).
  void PutBytes(const Bytes& b);
  /// Length-prefixed UTF-8/ASCII string.
  void PutString(const std::string& s);
  /// Raw bytes with no length prefix (fixed-width fields).
  void PutRaw(const Bytes& b);

  const Bytes& data() const { return out_; }
  Bytes Take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Matching decoder. Getters return false once the input is exhausted or
/// malformed; after a failure every subsequent getter also fails, so a
/// parse can be written as a straight-line sequence followed by one
/// `ok() && Done()` check.
class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  bool GetU8(uint8_t* v);
  bool GetU16(uint16_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetBytes(Bytes* b);
  bool GetString(std::string* s);
  /// Exactly `len` raw bytes.
  bool GetRaw(size_t len, Bytes* b);

  /// False once any getter has failed.
  bool ok() const { return ok_; }
  /// True when the whole input has been consumed.
  bool Done() const { return ok_ && pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Take(size_t n, const uint8_t** p);

  const Bytes& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// CRC-32 (IEEE 802.3 polynomial), used by the KV store's log records.
uint32_t Crc32(const uint8_t* data, size_t len);
uint32_t Crc32(const Bytes& data);

}  // namespace mws::util

#endif  // MWSIBE_UTIL_SERDE_H_
