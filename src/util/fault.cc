#include "src/util/fault.h"

namespace mws::util {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError:
      return "error";
    case FaultKind::kTornWrite:
      return "torn-write";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kConnectionDrop:
      return "connection-drop";
    case FaultKind::kDiskFull:
      return "disk-full";
  }
  return "unknown";
}

void FaultInjector::AddRule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(ArmedRule{std::move(rule)});
}

void FaultInjector::ClearRules() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
}

std::optional<Fault> FaultInjector::Evaluate(std::string_view operation) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  for (ArmedRule& armed : rules_) {
    const FaultRule& rule = armed.rule;
    if (!rule.pattern.empty() &&
        operation.find(rule.pattern) == std::string_view::npos) {
      continue;
    }
    ++armed.matches;
    bool fire = false;
    if (rule.nth > 0) {
      if (!armed.spent && armed.matches == rule.nth) {
        armed.spent = true;
        fire = true;
      }
    } else if (rule.probability > 0.0) {
      // 53-bit uniform draw in [0, 1); deterministic given the seed and
      // the evaluation order.
      double draw =
          static_cast<double>(rng_.NextU64() >> 11) * 0x1.0p-53;
      fire = draw < rule.probability;
    }
    if (!fire) continue;
    fired_.fetch_add(1, std::memory_order_relaxed);
    Fault fault;
    fault.kind = rule.kind;
    fault.delay_micros = rule.delay_micros;
    fault.status = Status(rule.code, rule.message + " [" +
                                         FaultKindToString(rule.kind) +
                                         " @ " + std::string(operation) + "]");
    if (fire_hook_) fire_hook_(fault, operation);
    return fault;
  }
  return std::nullopt;
}

}  // namespace mws::util
