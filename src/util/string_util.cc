#include "src/util/string_util.h"

#include <cctype>

namespace mws::util {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace mws::util
