#ifndef MWSIBE_MATH_PRECOMPUTE_H_
#define MWSIBE_MATH_PRECOMPUTE_H_

#include <cstdint>
#include <vector>

#include "src/math/ec.h"
#include "src/math/fp2.h"

namespace mws::math {

class TypeAParams;

/// Batch Jacobian-to-affine conversion: one field inversion for the whole
/// set (Montgomery's trick) instead of one per point.
std::vector<EcPoint> BatchToAffine(const CurveGroup& curve,
                                   const std::vector<JacPoint>& points);

/// Windowed fixed-base scalar-multiplication table for a point of known
/// order: table[j][d] = d * 2^(w*j) * base for d in [1, 2^w). A scalar
/// k then costs only ceil(bits/w) mixed additions — no doublings — since
/// k*base = sum_j digit_j(k) * 2^(w*j) * base.
///
/// Construction costs ~cols * 2^w group additions plus one batched
/// inversion; memory is cols * (2^w - 1) affine points (about 250 KiB
/// for the 160-bit preset at w=5). Instances are immutable after
/// construction and therefore safe to share across threads.
class FixedBaseTable {
 public:
  /// `order` must be the order of `base`; scalars are reduced modulo it
  /// (so k < 0 and k >= order are handled). Pre: 2 <= window <= 7.
  FixedBaseTable(const CurveGroup& curve, const EcPoint& base,
                 const BigInt& order, size_t window = 5);

  /// k * base. Bit-identical to CurveGroup::ScalarMulBinary(k, base).
  EcPoint Mul(const BigInt& k) const;

  const EcPoint& base() const { return base_; }
  size_t window() const { return window_; }
  /// Number of stored affine points (memory = entries * sizeof(EcPoint)).
  size_t entries() const { return table_.size(); }

 private:
  const CurveGroup* curve_;
  EcPoint base_;
  BigInt order_;
  size_t window_;
  size_t cols_ = 0;               // ceil(order bits / window)
  std::vector<EcPoint> table_;    // cols_ rows of (2^window - 1) points
};

/// Precomputed Miller loop for a fixed first (G1) pairing argument.
///
/// The line functions the Miller loop evaluates depend on the fixed
/// point P alone; only their *evaluation* involves the second argument
/// phi(Q) = (-xq, i*yq). This caches the per-iteration line coefficients
/// so Pairing(P, Q) needs no point arithmetic at all per call: each
/// iteration is one Fp2 squaring, one Fp2 multiplication, and two Fp
/// multiplications. Built once per system parameter set (P = generator,
/// P = P_pub); immutable after construction, safe to share across
/// threads.
class PairingPrecomp {
 public:
  /// Runs the Miller loop for `p` once, recording line coefficients.
  PairingPrecomp(const TypeAParams& params, const EcPoint& p);

  /// MillerLoop(p, q) — bit-identical to TypeAParams::MillerLoop.
  Fp2 Miller(const EcPoint& q) const;
  /// Pairing(p, q) — Miller loop plus final exponentiation.
  Fp2 Pairing(const EcPoint& q) const;

  const EcPoint& fixed_point() const { return p_; }
  /// Number of cached line-coefficient triples (memory footprint).
  size_t line_count() const;

 private:
  /// A line through the loop's running point V, scaled into F_p*
  /// (denominator elimination erases the scale). Evaluated at phi(Q) it
  /// is (c_xq * xq + c_0) + i * (c_yq * yq).
  struct Line {
    Fp c_xq, c_0, c_yq;
  };
  struct Step {
    Line dbl, add;
    bool has_dbl = false;
    bool has_add = false;
  };

  const TypeAParams* params_;
  EcPoint p_;
  std::vector<Step> steps_;
};

}  // namespace mws::math

#endif  // MWSIBE_MATH_PRECOMPUTE_H_
