#ifndef MWSIBE_MATH_PRECOMPUTE_H_
#define MWSIBE_MATH_PRECOMPUTE_H_

#include <cstdint>
#include <vector>

#include "src/math/ec.h"
#include "src/math/fp2.h"

namespace mws::math {

class TypeAParams;

/// Batch Jacobian-to-affine conversion: one field inversion for the whole
/// set (Montgomery's trick) instead of one per point.
std::vector<EcPoint> BatchToAffine(const CurveGroup& curve,
                                   const std::vector<JacPoint>& points);

/// Windowed fixed-base scalar-multiplication table for a point of known
/// order: table[j][d] = d * 2^(w*j) * base for d in [1, 2^w). A scalar
/// k then costs only ceil(bits/w) mixed additions — no doublings — since
/// k*base = sum_j digit_j(k) * 2^(w*j) * base.
///
/// Construction costs ~cols * 2^w group additions plus one batched
/// inversion; memory is cols * (2^w - 1) affine points (about 250 KiB
/// for the 160-bit preset at w=5). Instances are immutable after
/// construction and therefore safe to share across threads.
class FixedBaseTable {
 public:
  /// `order` must be the order of `base`; scalars are reduced modulo it
  /// (so k < 0 and k >= order are handled). Pre: 2 <= window <= 7.
  FixedBaseTable(const CurveGroup& curve, const EcPoint& base,
                 const BigInt& order, size_t window = 5);

  /// k * base. Bit-identical to CurveGroup::ScalarMulBinary(k, base).
  EcPoint Mul(const BigInt& k) const;

  const EcPoint& base() const { return base_; }
  size_t window() const { return window_; }
  /// Number of stored affine points (memory = entries * sizeof(EcPoint)).
  size_t entries() const { return table_.size(); }

 private:
  const CurveGroup* curve_;
  EcPoint base_;
  BigInt order_;
  size_t window_;
  size_t cols_ = 0;               // ceil(order bits / window)
  std::vector<EcPoint> table_;    // cols_ rows of (2^window - 1) points
};

/// Precomputed Miller loop for a fixed first (G1) pairing argument.
///
/// The line functions the Miller loop evaluates depend on the fixed
/// point P alone; only their *evaluation* involves the second argument
/// phi(Q) = (-xq, i*yq). This caches the per-iteration line coefficients
/// so Pairing(P, Q) needs no point arithmetic at all per call. The cache
/// walks the same NAF digits of q as TypeAParams::MillerLoopNaf, and the
/// lines are normalized to monic form (the leading coefficient divided
/// out with one batched inversion at build time), which drops one F_p
/// multiplication per line evaluation. Both tweaks change the Miller
/// value only by a factor in F_p*, which the final exponentiation
/// erases: Pairing(q) is bit-identical to TypeAParams::Pairing(p, q).
/// Built once per system parameter set (P = generator, P = P_pub);
/// immutable after construction, safe to share across threads.
class PairingPrecomp {
 public:
  /// Runs the NAF Miller loop for `p` once, recording and normalizing
  /// line coefficients.
  PairingPrecomp(const TypeAParams& params, const EcPoint& p);

  /// The Miller value the cached lines produce for `q`. Equal to
  /// MillerLoopNaf(p, q) up to a factor in F_p* (line normalization);
  /// use Pairing() for values comparable across implementations.
  Fp2 Miller(const EcPoint& q) const;
  /// Pairing(p, q) — Miller loop plus final exponentiation.
  /// Bit-identical to TypeAParams::Pairing(p, q).
  Fp2 Pairing(const EcPoint& q) const;

  /// Miller values for many second arguments in one pass over the cached
  /// lines (better locality than q-at-a-time). Element k equals
  /// Miller(qs[k]).
  std::vector<Fp2> MillerMany(const std::vector<EcPoint>& qs) const;
  /// Pairings for many second arguments: MillerMany plus one *batched*
  /// final exponentiation (a single field inversion for the whole
  /// batch). Element k is bit-identical to Pairing(qs[k]).
  std::vector<Fp2> PairingMany(const std::vector<EcPoint>& qs) const;

  /// Number of cached steps — one per NAF Miller-loop iteration. Used by
  /// TypeAParams::PairingProduct to run precomputed and live terms in
  /// lockstep.
  size_t StepCount() const { return steps_.size(); }

  /// Multiplies *f by this step's line values evaluated at (xq, yq).
  /// Steps with no recorded line (degenerate safety branches) leave *f
  /// untouched.
  void EvalStep(size_t step, const Fp& xq, const Fp& yq, Fp2* f) const;

  const EcPoint& fixed_point() const { return p_; }
  /// Number of cached line-coefficient triples (memory footprint).
  size_t line_count() const;

 private:
  /// A line through the loop's running point V, scaled into F_p*
  /// (denominator elimination erases the scale). Evaluated at phi(Q) it
  /// is (c_xq * xq + c_0) + i * (c_yq * yq); when `monic` is set the
  /// leading coefficient has been normalized away and the real part is
  /// just xq + c_0.
  struct Line {
    Fp c_xq, c_0, c_yq;
    bool monic = false;
  };
  struct Step {
    Line dbl, add;
    bool has_dbl = false;
    bool has_add = false;
  };

  /// Divides every line with invertible leading coefficient by it, using
  /// one batched inversion.
  void NormalizeLines();

  /// re + i*im of `line` evaluated at (xq, yq).
  Fp2 EvalLine(const Line& line, const Fp& xq, const Fp& yq) const;

  const TypeAParams* params_;
  EcPoint p_;
  std::vector<Step> steps_;
};

}  // namespace mws::math

#endif  // MWSIBE_MATH_PRECOMPUTE_H_
