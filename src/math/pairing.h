#ifndef MWSIBE_MATH_PAIRING_H_
#define MWSIBE_MATH_PAIRING_H_

#include <memory>

#include "src/math/ec.h"
#include "src/math/fp2.h"
#include "src/math/precompute.h"
#include "src/util/random.h"

namespace mws::math {

/// Parameters of a "type A" symmetric pairing (the family PBC's a-param
/// uses, and the setting of Boneh–Franklin IBE):
///
///   * p prime, p == 3 mod 4, p = h*q - 1
///   * q prime (the group order), h the cofactor
///   * E: y^2 = x^3 + x over F_p (supersingular, #E(F_p) = p + 1)
///   * G1 = E(F_p)[q]; distortion map phi(x, y) = (-x, i*y) into E(F_p2)
///   * e(P, Q) = Tate(P, phi(Q)) in mu_q of F_p2, via Miller's algorithm
///     with denominator elimination and final exponentiation (p^2-1)/q.
///
/// Owns the field context; every Fp/EcPoint derived from an instance must
/// not outlive it.
class TypeAParams {
 public:
  /// Validates and assembles parameters (p, q prime contracts are checked
  /// probabilistically; generator must be an order-q curve point).
  static util::Result<std::unique_ptr<const TypeAParams>> Create(
      const BigInt& p, const BigInt& q, const BigInt& gen_x,
      const BigInt& gen_y, util::RandomSource& rng);

  /// Generates a fresh parameter set: random q with `qbits` bits, then the
  /// smallest-effort h with h*q - 1 prime of `pbits` bits and == 3 mod 4,
  /// then a random order-q generator.
  static util::Result<std::unique_ptr<const TypeAParams>> Generate(
      size_t qbits, size_t pbits, util::RandomSource& rng);

  const BigInt& p() const { return p_; }
  const BigInt& q() const { return q_; }
  const BigInt& cofactor() const { return h_; }
  const FpCtx* ctx() const { return ctx_.get(); }
  const CurveGroup& curve() const { return *curve_; }
  const EcPoint& generator() const { return generator_; }

  /// Fixed-base table for the generator, built once at construction.
  const FixedBaseTable& generator_table() const { return *gen_table_; }
  /// k * generator through the fixed-base table — the fast path for
  /// every rP/sP the protocols compute.
  EcPoint MulGenerator(const BigInt& k) const { return gen_table_->Mul(k); }
  /// Cached Miller-loop lines for pairings whose first argument is the
  /// generator, e.g. e(sigma, P) in IBS verification (the pairing is
  /// symmetric, so fixing either slot works).
  const PairingPrecomp& generator_pairing() const { return *gen_pairing_; }

  /// Field element size in bytes (serialized coordinate width).
  size_t FieldBytes() const { return ctx_->byte_length(); }
  /// Group element (uncompressed point) size in bytes.
  size_t PointBytes() const { return 1 + 2 * FieldBytes(); }

  /// The symmetric pairing e(P, Q) = Tate(P, phi(Q)). Both inputs must be
  /// order-q points of E(F_p). Returns 1 for infinity inputs.
  Fp2 Pairing(const EcPoint& point_p, const EcPoint& point_q) const;

  /// Miller loop only (no final exponentiation); exposed for benchmarks.
  Fp2 MillerLoop(const EcPoint& point_p, const EcPoint& point_q) const;
  /// Final exponentiation z^((p^2-1)/q); exposed for benchmarks.
  Fp2 FinalExponentiation(const Fp2& z) const;

  /// Lifts an x-coordinate to an order-q point: solves for y, multiplies
  /// by the cofactor. Fails if x^3 + x is a non-residue or the cofactor
  /// multiple is the identity.
  util::Result<EcPoint> LiftX(const Fp& x) const;

  /// Uniform random point of order q (never infinity).
  EcPoint RandomPoint(util::RandomSource& rng) const;

  /// Uniform random scalar in [1, q-1].
  BigInt RandomScalar(util::RandomSource& rng) const;

 private:
  TypeAParams() = default;

  /// Builds the generator fixed-base table and Miller-loop line cache
  /// (called once at the end of Create/Generate; the tables are
  /// immutable afterwards).
  void BuildPrecomputation();

  BigInt p_;
  BigInt q_;
  BigInt h_;  // (p+1)/q
  std::unique_ptr<const FpCtx> ctx_;
  std::unique_ptr<CurveGroup> curve_;
  EcPoint generator_;
  std::unique_ptr<const FixedBaseTable> gen_table_;
  std::unique_ptr<const PairingPrecomp> gen_pairing_;
};

}  // namespace mws::math

#endif  // MWSIBE_MATH_PAIRING_H_
