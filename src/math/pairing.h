#ifndef MWSIBE_MATH_PAIRING_H_
#define MWSIBE_MATH_PAIRING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/math/ec.h"
#include "src/math/fp2.h"
#include "src/math/precompute.h"
#include "src/util/random.h"

namespace mws::math {

/// One factor of a multi-pairing product (see TypeAParams::PairingProduct).
/// When `precomp` is set it supplies the cached Miller lines for the fixed
/// G1 argument and `p` is ignored; otherwise the lines are computed from
/// `p` on the fly.
struct PairingTerm {
  const PairingPrecomp* precomp = nullptr;
  EcPoint p;
  EcPoint q;
};

/// Parameters of a "type A" symmetric pairing (the family PBC's a-param
/// uses, and the setting of Boneh–Franklin IBE):
///
///   * p prime, p == 3 mod 4, p = h*q - 1
///   * q prime (the group order), h the cofactor
///   * E: y^2 = x^3 + x over F_p (supersingular, #E(F_p) = p + 1)
///   * G1 = E(F_p)[q]; distortion map phi(x, y) = (-x, i*y) into E(F_p2)
///   * e(P, Q) = Tate(P, phi(Q)) in mu_q of F_p2, via Miller's algorithm
///     with denominator elimination and final exponentiation (p^2-1)/q.
///
/// Two implementations coexist (the PR-1 pattern): the *fast path* —
/// NAF Miller loop, lazy-reduction F_p2, cached-recoding final
/// exponentiation — and the *reference path* retained verbatim for
/// property tests. Individual Miller-loop values differ between the two
/// by a factor in F_p* (erased by the final exponentiation), so
/// equivalence is asserted on full pairings, which are bit-identical.
///
/// Owns the field context; every Fp/EcPoint derived from an instance must
/// not outlive it.
class TypeAParams {
 public:
  /// Validates and assembles parameters (p, q prime contracts are checked
  /// probabilistically; generator must be an order-q curve point).
  static util::Result<std::unique_ptr<const TypeAParams>> Create(
      const BigInt& p, const BigInt& q, const BigInt& gen_x,
      const BigInt& gen_y, util::RandomSource& rng);

  /// Generates a fresh parameter set: random q with `qbits` bits, then the
  /// smallest-effort h with h*q - 1 prime of `pbits` bits and == 3 mod 4,
  /// then a random order-q generator.
  static util::Result<std::unique_ptr<const TypeAParams>> Generate(
      size_t qbits, size_t pbits, util::RandomSource& rng);

  const BigInt& p() const { return p_; }
  const BigInt& q() const { return q_; }
  const BigInt& cofactor() const { return h_; }
  const FpCtx* ctx() const { return ctx_.get(); }
  const CurveGroup& curve() const { return *curve_; }
  const EcPoint& generator() const { return generator_; }

  /// Non-adjacent form of q, least-significant digit first, digits in
  /// {-1, 0, 1}. Recoded once at construction; immutable afterwards and
  /// therefore safe to share across threads. The Miller loop and every
  /// PairingPrecomp walk these digits, so their step sequences align.
  const std::vector<int8_t>& q_naf() const { return q_naf_; }
  /// Width-5 wNAF of the cofactor h (the final-exponentiation hard part):
  /// digits are zero or odd in [-15, 15], least-significant first.
  const std::vector<int8_t>& cofactor_wnaf() const { return h_wnaf_; }

  /// Fixed-base table for the generator, built once at construction.
  const FixedBaseTable& generator_table() const { return *gen_table_; }
  /// k * generator through the fixed-base table — the fast path for
  /// every rP/sP the protocols compute.
  EcPoint MulGenerator(const BigInt& k) const { return gen_table_->Mul(k); }
  /// Cached Miller-loop lines for pairings whose first argument is the
  /// generator, e.g. e(sigma, P) in IBS verification (the pairing is
  /// symmetric, so fixing either slot works).
  const PairingPrecomp& generator_pairing() const { return *gen_pairing_; }

  /// Field element size in bytes (serialized coordinate width).
  size_t FieldBytes() const { return ctx_->byte_length(); }
  /// Group element (uncompressed point) size in bytes.
  size_t PointBytes() const { return 1 + 2 * FieldBytes(); }

  /// The symmetric pairing e(P, Q) = Tate(P, phi(Q)). Both inputs must be
  /// order-q points of E(F_p). Returns 1 for infinity inputs. Fast path
  /// (NAF Miller loop + v2 final exponentiation); bit-identical to
  /// PairingReference.
  Fp2 Pairing(const EcPoint& point_p, const EcPoint& point_q) const;

  /// Product of pairings prod_i e(terms[i].p, terms[i].q) with one shared
  /// squaring chain and a single final exponentiation — the cost of one
  /// pairing plus one set of line evaluations per extra term, instead of
  /// a full pairing per term. Bit-identical to multiplying the individual
  /// Pairing() results. Terms with an infinity point contribute 1.
  Fp2 PairingProduct(const std::vector<PairingTerm>& terms) const;

  /// Reference pairing: binary Miller loop + reference final
  /// exponentiation, exactly the pre-v2 code path. Property tests assert
  /// Pairing == PairingReference bit-for-bit.
  Fp2 PairingReference(const EcPoint& point_p, const EcPoint& point_q) const;

  /// Fast Miller loop over the cached NAF digits of q (subtraction steps
  /// evaluate the line through V and -P). The result differs from
  /// MillerLoop by a factor in F_p*; after final exponentiation the
  /// pairing values are bit-identical.
  Fp2 MillerLoopNaf(const EcPoint& point_p, const EcPoint& point_q) const;

  /// Reference binary Miller loop (no final exponentiation).
  Fp2 MillerLoop(const EcPoint& point_p, const EcPoint& point_q) const;

  /// Final exponentiation z^((p^2-1)/q), fast path: short-circuits z == 0
  /// and z == 1, easy part z^(p-1) = conj(z) * z^-1, then the hard part
  /// z^h over the cached wNAF digits exploiting that post-easy-part
  /// values are unitary (inverse == conjugate). Bit-identical to
  /// FinalExponentiationReference.
  Fp2 FinalExponentiation(const Fp2& z) const;

  /// Batched final exponentiation: one field inversion for the whole
  /// batch (Montgomery's trick across the easy parts) instead of one per
  /// element. Each output is bit-identical to FinalExponentiation of the
  /// corresponding input.
  std::vector<Fp2> FinalExponentiationMany(const std::vector<Fp2>& zs) const;

  /// Reference final exponentiation (conj(z) * z^-1)^h, the pre-v2 code.
  Fp2 FinalExponentiationReference(const Fp2& z) const;

  /// Lifts an x-coordinate to an order-q point: solves for y, multiplies
  /// by the cofactor. Fails if x^3 + x is a non-residue or the cofactor
  /// multiple is the identity.
  util::Result<EcPoint> LiftX(const Fp& x) const;

  /// Uniform random point of order q (never infinity).
  EcPoint RandomPoint(util::RandomSource& rng) const;

  /// Uniform random scalar in [1, q-1].
  BigInt RandomScalar(util::RandomSource& rng) const;

 private:
  TypeAParams() = default;

  /// Recodes q (NAF) and h (width-5 wNAF) once; called before
  /// BuildPrecomputation, which replays the q digits.
  void BuildRecodings();

  /// Builds the generator fixed-base table and Miller-loop line cache
  /// (called once at the end of Create/Generate; the tables are
  /// immutable afterwards).
  void BuildPrecomputation();

  /// Hard part of the final exponentiation: t^h for unitary t (norm 1,
  /// so t^-1 == conj(t)) over the cached wNAF digits of h.
  Fp2 HardExpUnitary(const Fp2& t) const;

  BigInt p_;
  BigInt q_;
  BigInt h_;  // (p+1)/q
  std::vector<int8_t> q_naf_;
  std::vector<int8_t> h_wnaf_;
  std::unique_ptr<const FpCtx> ctx_;
  std::unique_ptr<CurveGroup> curve_;
  EcPoint generator_;
  std::unique_ptr<const FixedBaseTable> gen_table_;
  std::unique_ptr<const PairingPrecomp> gen_pairing_;
};

}  // namespace mws::math

#endif  // MWSIBE_MATH_PAIRING_H_
