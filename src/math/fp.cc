#include "src/math/fp.h"

#include <cassert>
#include <cstring>

namespace mws::math {

namespace {

using fp_internal::AddN;
using fp_internal::CmpN;
using fp_internal::SubN;

/// -x^-1 mod 2^64 for odd x, by Newton iteration.
uint64_t NegInvU64(uint64_t x) {
  uint64_t inv = x;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) inv *= 2 - x * inv;
  return ~inv + 1;  // -inv
}

// --- Allocation-free helpers on n-limb little-endian arrays ---

/// a >>= 1 with `top_bit` shifted into the most significant position.
void Shr1N(uint64_t* a, size_t n, uint64_t top_bit) {
  for (size_t i = 0; i + 1 < n; ++i) {
    a[i] = (a[i] >> 1) | (a[i + 1] << 63);
  }
  a[n - 1] = (a[n - 1] >> 1) | (top_bit << 63);
}

bool IsZeroN(const uint64_t* a, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}

bool IsOneN(const uint64_t* a, size_t n) {
  if (a[0] != 1) return false;
  for (size_t i = 1; i < n; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}

void CopyLimbs(const BigInt& v, uint64_t* out, size_t n) {
  const auto& limbs = v.limbs();
  assert(limbs.size() <= n);
  std::memset(out, 0, n * sizeof(uint64_t));
  std::memcpy(out, limbs.data(), limbs.size() * sizeof(uint64_t));
}

BigInt LimbsToBigInt(const uint64_t* limbs, size_t n) {
  util::Bytes be(n * 8);
  for (size_t i = 0; i < n; ++i) {
    uint64_t limb = limbs[n - 1 - i];
    for (int j = 0; j < 8; ++j) {
      be[i * 8 + j] = static_cast<uint8_t>(limb >> (56 - 8 * j));
    }
  }
  return BigInt::FromBytesBe(be);
}

}  // namespace

util::Result<std::unique_ptr<const FpCtx>> FpCtx::Create(const BigInt& p) {
  if (p < BigInt(3) || p.IsEven()) {
    return util::Status::InvalidArgument("modulus must be an odd prime >= 3");
  }
  if (p.limbs().size() > kMaxFpLimbs) {
    return util::Status::InvalidArgument("modulus exceeds kMaxFpLimbs");
  }
  auto ctx = std::unique_ptr<FpCtx>(new FpCtx());
  ctx->p_ = p;
  ctx->nlimbs_ = p.limbs().size();
  CopyLimbs(p, ctx->p_limbs_.data(), ctx->nlimbs_);
  ctx->n0inv_ = NegInvU64(ctx->p_limbs_[0]);
  // R = 2^(64*nlimbs); one_mont = R mod p; r2 = R^2 mod p.
  BigInt r = BigInt(1) << (64 * ctx->nlimbs_);
  CopyLimbs(BigInt::Mod(r, p), ctx->one_mont_.data(), ctx->nlimbs_);
  CopyLimbs(BigInt::Mod(r * r, p), ctx->r2_.data(), ctx->nlimbs_);
  return std::unique_ptr<const FpCtx>(std::move(ctx));
}

void FpCtx::InvMod(const uint64_t* a, uint64_t* out) const {
  // Binary extended GCD (HAC 14.61) on u = a, v = p with x1, x2 tracked
  // mod p. For a in Montgomery form (aR) it yields (aR)^-1 = a^-1 R^-1;
  // two extra Montgomery multiplications by R^2 lift it back to a^-1 R.
  const size_t n = nlimbs_;
  assert(!IsZeroN(a, n));
  uint64_t u[kMaxFpLimbs], v[kMaxFpLimbs];
  uint64_t x1[kMaxFpLimbs] = {0}, x2[kMaxFpLimbs] = {0};
  std::memcpy(u, a, n * sizeof(uint64_t));
  std::memcpy(v, p_limbs_.data(), n * sizeof(uint64_t));
  x1[0] = 1;

  auto halve = [&](uint64_t* x) {
    if (x[0] & 1) {
      uint64_t carry = AddN(x, p_limbs_.data(), x, n);
      Shr1N(x, n, carry);
    } else {
      Shr1N(x, n, 0);
    }
  };

  while (!IsOneN(u, n) && !IsOneN(v, n)) {
    while ((u[0] & 1) == 0) {
      Shr1N(u, n, 0);
      halve(x1);
    }
    while ((v[0] & 1) == 0) {
      Shr1N(v, n, 0);
      halve(x2);
    }
    if (CmpN(u, v, n) >= 0) {
      SubN(u, v, u, n);
      SubMod(x1, x2, x1);
    } else {
      SubN(v, u, v, n);
      SubMod(x2, x1, x2);
    }
  }
  const uint64_t* result = IsOneN(u, n) ? x1 : x2;
  // result = (aR)^-1 = a^-1 R^-1. MontMul twice by R^2:
  //   a^-1 R^-1 * R^2 * R^-1 = a^-1, then a^-1 * R^2 * R^-1 = a^-1 R.
  uint64_t tmp[kMaxFpLimbs];
  MontMul(result, r2_.data(), tmp);
  MontMul(tmp, r2_.data(), out);
}

Fp Fp::Zero(const FpCtx* ctx) {
  Fp out(ctx);
  out.v_.fill(0);
  return out;
}

Fp Fp::One(const FpCtx* ctx) {
  Fp out(ctx);
  std::memcpy(out.v_.data(), ctx->one_mont(),
              ctx->nlimbs() * sizeof(uint64_t));
  return out;
}

Fp Fp::FromBigInt(const FpCtx* ctx, const BigInt& v) {
  BigInt reduced = BigInt::Mod(v, ctx->modulus());
  Fp out(ctx);
  CopyLimbs(reduced, out.v_.data(), ctx->nlimbs());
  // Convert to Montgomery form: a * R mod p = MontMul(a, R^2).
  ctx->MontMul(out.v_.data(), ctx->r2(), out.v_.data());
  return out;
}

Fp Fp::FromU64(const FpCtx* ctx, uint64_t v) {
  return FromBigInt(ctx, BigInt(v));
}

Fp Fp::FromBytes(const FpCtx* ctx, const util::Bytes& b) {
  return FromBigInt(ctx, BigInt::FromBytesBe(b));
}

BigInt Fp::ToBigInt() const {
  assert(valid());
  // Convert out of Montgomery form: MontMul(a, 1).
  uint64_t one[kMaxFpLimbs] = {0};
  one[0] = 1;
  uint64_t plain[kMaxFpLimbs];
  ctx_->MontMul(v_.data(), one, plain);
  return LimbsToBigInt(plain, ctx_->nlimbs());
}

util::Bytes Fp::ToBytes() const {
  return ToBigInt().ToBytesBe(ctx_->byte_length());
}

bool Fp::IsZero() const {
  assert(valid());
  return IsZeroN(v_.data(), ctx_->nlimbs());
}

bool Fp::IsOne() const {
  assert(valid());
  return CmpN(v_.data(), ctx_->one_mont(), ctx_->nlimbs()) == 0;
}

Fp Fp::Neg() const {
  assert(valid());
  if (IsZero()) return *this;
  Fp zero = Zero(ctx_);
  Fp out(ctx_);
  ctx_->SubMod(zero.v_.data(), v_.data(), out.v_.data());
  return out;
}

Fp Fp::Pow(const BigInt& e) const {
  assert(valid());
  assert(!e.IsNegative());
  Fp result = One(ctx_);
  size_t bits = e.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = result.Sqr();
    if (e.Bit(i)) result = result * *this;
  }
  return result;
}

Fp Fp::Inv() const {
  assert(!IsZero());
  Fp out(ctx_);
  ctx_->InvMod(v_.data(), out.v_.data());
  return out;
}

int Fp::Legendre() const {
  if (IsZero()) return 0;
  Fp sym = Pow((ctx_->modulus() - BigInt(1)) >> 1);
  return sym.IsOne() ? 1 : -1;
}

util::Result<Fp> Fp::Sqrt() const {
  assert(valid());
  if (IsZero()) return *this;
  const BigInt& p = ctx_->modulus();
  if ((p % BigInt(4)) == BigInt(3)) {
    Fp root = Pow((p + BigInt(1)) >> 2);
    if (root.Sqr() == *this) return root;
    return util::Status::InvalidArgument("not a quadratic residue");
  }
  return util::Status::Unimplemented("sqrt requires p == 3 mod 4");
}

}  // namespace mws::math
