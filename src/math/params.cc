#include "src/math/params.h"

#include <cassert>

#include "src/util/random.h"

namespace mws::math {

namespace {

struct PresetSpec {
  const char* name;
  const char* p_hex;
  const char* q_hex;
  const char* gx_hex;
  const char* gy_hex;
};

// Generated once with tools/gen_params (see that target); validated by
// params_test, which re-checks primality, divisibility, and generator
// order on every run.
constexpr PresetSpec kSmallSpec = {
    "small-80/256",
    "803d32c81d0e596b56b0c3895666fa3a7837e638b8a3860cddc2f5a675e4db47",
    "80a55fffa64b9155e3d3",
    "429638ba590cf279d65c737075bd502ccd7dfdead8916b227e01bdd4773f300c",
    "63729fbe632702766056ef9574f6b0e3777e92975a3f5399918a733bb790690",
};

constexpr PresetSpec kTestSpec = {
    "test-160/512",
    "9a1287cce31ae2b3b706938878b4ae500e053ae64ca05091387e8f0f19e8ae20"
    "221b8be56509725a9fc4a14484f4753593f278a953e3bc0f1ad920175348e087",
    "ac5c0e5dc8547e091bd9071450e7c8079c931bb1",
    "189ee04f04d01aacb4b9f8136dc5a79cf26e57c339a39fbee346ef18667226ed"
    "c7a6f1377d5d6203e93afeeb910b8dce7af98436f0927c5060ab3630536ab2c6",
    "61a3540d695bb86dd977434dd9fc7c4c4c71ece1a21ee5a20d368ea876585626"
    "2436689fb86a54c1d2de129b3a708c9551e26af6a67e1f79c87fe15e98b5b16e",
};

constexpr PresetSpec kLargeSpec = {
    "large-224/1024",
    "8d1c47c97e228e144f5623f7f6fb3493a49a58f75179759e24b0edfa3bd7a9cd"
    "9a1c368debbe49943013c0d1c1b370c4663e34149c080289dec217e556dbc574"
    "9b55fa7c7185ff086c6c04de2f99a2f26089464587dd706a855a9fbe6c6335ee"
    "d03d095486e887a575b290c7fb3bfb4c19697853e38763ead6642c01dc8d92e3",
    "8ec7e7a8744da477e11bf8aab9ca8c274089bd51a27086f51fe4b5cb",
    "82da356e0132c955a1f6e2b90d10069f77b5d968afe16e9ff8dfa96464c231bf"
    "1c16a077c9e761a23e42afc501aaaa4e46701b995cd75a648a09ad67adf8684f"
    "443182dc588fb4a5849a01cb09557ea86ade2b2e4175813a41c10ad68b08b24f"
    "4d66d9719c543c9ff23244e8565e7277bdfff7ed34d06e75f63a1f7147dc9c4d",
    "7b3c9bc20e343a34bb48ec70564c98446055f7343c53e6efaaa4ff54a59387bb"
    "97be979d84cb5bee237847ae18b8e8ec0771076ef021f4227d7c65196cfea334"
    "18b203c07955201410dd33fe9bc5f6bdd51c3185b850f4b2ae5415c7ebf1b970"
    "496537b588cbd4ee7a9a5943d7347da27fd45308df001a060f1cbce4b41c98fc",
};

const TypeAParams* Build(const PresetSpec& spec) {
  auto p = BigInt::FromHex(spec.p_hex);
  auto q = BigInt::FromHex(spec.q_hex);
  auto gx = BigInt::FromHex(spec.gx_hex);
  auto gy = BigInt::FromHex(spec.gy_hex);
  assert(p.ok() && q.ok() && gx.ok() && gy.ok());
  auto params = TypeAParams::Create(p.value(), q.value(), gx.value(),
                                    gy.value(), util::OsRandom::Instance());
  assert(params.ok());
  return std::move(params).value().release();
}

}  // namespace

const char* ParamPresetName(ParamPreset preset) {
  switch (preset) {
    case ParamPreset::kSmall:
      return kSmallSpec.name;
    case ParamPreset::kTest:
      return kTestSpec.name;
    case ParamPreset::kLarge:
      return kLargeSpec.name;
  }
  return "unknown";
}

const TypeAParams& GetParams(ParamPreset preset) {
  // Function-local statics: built on first use, leaked intentionally
  // (process-lifetime objects; trivially destructible pointers).
  switch (preset) {
    case ParamPreset::kSmall: {
      static const TypeAParams* small = Build(kSmallSpec);
      return *small;
    }
    case ParamPreset::kTest: {
      static const TypeAParams* test = Build(kTestSpec);
      return *test;
    }
    case ParamPreset::kLarge: {
      static const TypeAParams* large = Build(kLargeSpec);
      return *large;
    }
  }
  assert(false && "unknown preset");
  static const TypeAParams* fallback = Build(kTestSpec);
  return *fallback;
}

}  // namespace mws::math
