#ifndef MWSIBE_MATH_EC_H_
#define MWSIBE_MATH_EC_H_

#include "src/math/fp.h"
#include "src/util/bytes.h"
#include "src/util/result.h"

namespace mws::math {

/// A point on a short-Weierstrass curve, stored affine, plus the point at
/// infinity. Pure data; group operations live on CurveGroup.
class EcPoint {
 public:
  /// The point at infinity (identity).
  EcPoint() : infinity_(true) {}
  EcPoint(Fp x, Fp y) : infinity_(false), x_(std::move(x)), y_(std::move(y)) {}

  static EcPoint Infinity() { return EcPoint(); }

  bool is_infinity() const { return infinity_; }
  /// Pre: !is_infinity().
  const Fp& x() const { return x_; }
  const Fp& y() const { return y_; }

  friend bool operator==(const EcPoint& a, const EcPoint& b) {
    if (a.infinity_ || b.infinity_) return a.infinity_ == b.infinity_;
    return a.x_ == b.x_ && a.y_ == b.y_;
  }
  friend bool operator!=(const EcPoint& a, const EcPoint& b) {
    return !(a == b);
  }

 private:
  bool infinity_;
  Fp x_;
  Fp y_;
};

/// A point in Jacobian coordinates (X, Y, Z) with x = X/Z^2, y = Y/Z^3;
/// infinity is flagged explicitly. Exposed so callers that chain many
/// group operations (key reconstruction, table construction, scalar
/// multiplication) can defer the per-operation field inversion the
/// affine API pays until one final ToAffine.
struct JacPoint {
  Fp x, y, z;
  bool infinity = true;
};

/// The group E(F_p) of a short-Weierstrass curve y^2 = x^3 + a*x + b.
///
/// For the paper's type-A pairing curve a = 1, b = 0 (supersingular,
/// #E = p + 1, embedding degree 2).
class CurveGroup {
 public:
  CurveGroup(const FpCtx* ctx, Fp a, Fp b)
      : ctx_(ctx), a_(std::move(a)), b_(std::move(b)) {}

  const FpCtx* ctx() const { return ctx_; }
  const Fp& a() const { return a_; }
  const Fp& b() const { return b_; }

  bool IsOnCurve(const EcPoint& p) const;

  EcPoint Negate(const EcPoint& p) const;
  EcPoint Add(const EcPoint& p, const EcPoint& q) const;
  EcPoint Double(const EcPoint& p) const;

  // --- Jacobian-in/Jacobian-out operations (no inversions) ---

  JacPoint JacInfinity() const;
  JacPoint ToJacobian(const EcPoint& p) const;
  /// One inversion; batch conversions should use precompute.h helpers.
  EcPoint ToAffine(const JacPoint& p) const;
  JacPoint Negate(const JacPoint& p) const;
  JacPoint Add(const JacPoint& p, const JacPoint& q) const;
  /// Mixed addition: `q` affine (Z = 1), ~30% cheaper than general Add.
  JacPoint Add(const JacPoint& p, const EcPoint& q) const;
  JacPoint Double(const JacPoint& p) const;

  /// k*P via signed windowed NAF (w=4); negative k negates the result.
  /// The general variable-base path.
  EcPoint ScalarMul(const BigInt& k, const EcPoint& p) const;
  /// k*P with a Jacobian base and result (for operation chains).
  JacPoint ScalarMul(const BigInt& k, const JacPoint& p) const;
  /// Reference k*P by plain binary double-and-add. Kept as the baseline
  /// for property tests and the `--no-precompute` benchmark path.
  EcPoint ScalarMulBinary(const BigInt& k, const EcPoint& p) const;

  /// Uncompressed encoding: 0x04 || x || y (fixed width), or 0x00 for the
  /// point at infinity.
  util::Bytes Serialize(const EcPoint& p) const;
  /// Rejects encodings whose coordinates are not on the curve.
  util::Result<EcPoint> Deserialize(const util::Bytes& data) const;

  /// Compressed encoding: 0x02/0x03 (y parity) || x, or 0x00 for
  /// infinity — half the wire size; decompression costs one field
  /// square root. Requires p == 3 mod 4 (all type-A parameters).
  util::Bytes SerializeCompressed(const EcPoint& p) const;
  /// Accepts only compressed encodings (and 0x00 for infinity).
  util::Result<EcPoint> DeserializeCompressed(const util::Bytes& data) const;

 private:
  const FpCtx* ctx_;
  Fp a_;
  Fp b_;
};

}  // namespace mws::math

#endif  // MWSIBE_MATH_EC_H_
