#include "src/math/precompute.h"

#include <cassert>

#include "src/math/pairing.h"

namespace mws::math {

std::vector<EcPoint> BatchToAffine(const CurveGroup& curve,
                                   const std::vector<JacPoint>& points) {
  const FpCtx* ctx = curve.ctx();
  std::vector<EcPoint> out(points.size());  // defaults to infinity
  std::vector<size_t> live;
  std::vector<Fp> prefix;  // prefix[j] = product of z of earlier live points
  live.reserve(points.size());
  prefix.reserve(points.size());
  Fp run = Fp::One(ctx);
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].infinity) continue;
    live.push_back(i);
    prefix.push_back(run);
    run = run * points[i].z;
  }
  if (live.empty()) return out;
  Fp inv = run.Inv();
  for (size_t j = live.size(); j-- > 0;) {
    size_t i = live[j];
    Fp zinv = inv * prefix[j];
    inv = inv * points[i].z;
    Fp zinv2 = zinv.Sqr();
    out[i] = EcPoint(points[i].x * zinv2, points[i].y * zinv2 * zinv);
  }
  return out;
}

FixedBaseTable::FixedBaseTable(const CurveGroup& curve, const EcPoint& base,
                               const BigInt& order, size_t window)
    : curve_(&curve), base_(base), order_(order), window_(window) {
  assert(window >= 2 && window <= 7);
  if (base.is_infinity()) return;
  const size_t bits = order.BitLength();
  cols_ = (bits + window - 1) / window;
  const size_t row = (size_t{1} << window) - 1;
  std::vector<JacPoint> jac;
  jac.reserve(cols_ * row);
  JacPoint col_base = curve.ToJacobian(base);  // 2^(w*j) * base
  for (size_t col = 0; col < cols_; ++col) {
    JacPoint acc = col_base;
    for (size_t d = 1; d <= row; ++d) {
      jac.push_back(acc);
      if (d < row) acc = curve.Add(acc, col_base);
    }
    if (col + 1 < cols_) {
      for (size_t i = 0; i < window; ++i) col_base = curve.Double(col_base);
    }
  }
  table_ = BatchToAffine(curve, jac);
}

EcPoint FixedBaseTable::Mul(const BigInt& k) const {
  if (cols_ == 0) return EcPoint::Infinity();
  // base has order `order_`, so k*base = (k mod order)*base; Mod also
  // canonicalizes negative scalars.
  BigInt r = BigInt::Mod(k, order_);
  if (r.IsZero()) return EcPoint::Infinity();
  const size_t row = (size_t{1} << window_) - 1;
  JacPoint acc = curve_->JacInfinity();
  for (size_t col = 0; col < cols_; ++col) {
    size_t digit = 0;
    for (size_t j = window_; j-- > 0;) {
      digit = (digit << 1) | (r.Bit(col * window_ + j) ? 1 : 0);
    }
    if (digit != 0) acc = curve_->Add(acc, table_[col * row + digit - 1]);
  }
  return curve_->ToAffine(acc);
}

PairingPrecomp::PairingPrecomp(const TypeAParams& params, const EcPoint& p)
    : params_(&params), p_(p) {
  if (p.is_infinity()) return;
  // Mirrors TypeAParams::MillerLoopNaf step for step, recording the
  // coefficients of each (scaled) line instead of evaluating it. The
  // degenerate v_infinity branches (unreachable for order-q inputs, kept
  // for safety) record no line, exactly as the loop multiplies by
  // nothing there.
  const FpCtx* ctx = params.ctx();
  const Fp& px = p.x();
  const Fp& py = p.y();
  const Fp py_neg = py.Neg();
  Fp vx = px;
  Fp vy = py;
  Fp vz = Fp::One(ctx);
  bool v_infinity = false;
  const std::vector<int8_t>& naf = params.q_naf();
  steps_.reserve(naf.size() - 1);
  for (size_t i = naf.size() - 1; i-- > 0;) {
    Step step;
    if (!v_infinity) {
      if (vy.IsZero()) {
        v_infinity = true;
      } else {
        // Tangent line at V, scaled by 2*yv*Z^6:
        //   (3X^2 + Z^4)*Z^2 * xq + (3X^2 + Z^4)*X - 2Y^2 + i*2YZ^3 * yq.
        Fp z2 = vz.Sqr();
        Fp z4 = z2.Sqr();
        Fp z3 = vz * z2;
        Fp x2 = vx.Sqr();
        Fp m = x2.Double() + x2 + z4;  // 3X^2 + a*Z^4 with a = 1
        Fp y2 = vy.Sqr();
        step.has_dbl = true;
        step.dbl = Line{m * z2, m * vx - y2.Double(), (vy * z3).Double()};
        Fp s = (vx * y2).Double().Double();  // 4*X*Y^2
        Fp x_new = m.Sqr() - s.Double();
        Fp y4_8 = y2.Sqr().Double().Double().Double();  // 8*Y^4
        Fp y_new = m * (s - x_new) - y4_8;
        Fp z_new = (vy * vz).Double();
        vx = x_new;
        vy = y_new;
        vz = z_new;
      }
    }
    const int8_t digit = naf[i];
    if (digit != 0) {
      // Mixed addition of A = digit * P = (px, +-py); a -1 digit adds -P
      // via the line through V and -P (NAF subtraction step).
      const Fp& sy = digit > 0 ? py : py_neg;
      if (v_infinity) {
        vx = px;
        vy = sy;
        vz = Fp::One(ctx);
        v_infinity = false;
      } else {
        Fp z2 = vz.Sqr();
        Fp z3 = vz * z2;
        Fp u2 = px * z2;
        Fp s2 = sy * z3;
        Fp h = u2 - vx;
        Fp r = s2 - vy;
        if (h.IsZero()) {
          v_infinity = true;
        } else {
          // Chord through V and A, scaled by Z*H:
          //   R * xq + (R*xp - yA*Z*H) + i*Z*H * yq.
          Fp zh = vz * h;
          step.has_add = true;
          step.add = Line{r, r * px - sy * zh, zh};
          Fp h2 = h.Sqr();
          Fp h3 = h2 * h;
          Fp xh2 = vx * h2;
          Fp x_new = r.Sqr() - h3 - xh2.Double();
          Fp y_new = r * (xh2 - x_new) - vy * h3;
          vx = x_new;
          vy = y_new;
          vz = zh;
        }
      }
    }
    steps_.push_back(step);
  }
  NormalizeLines();
}

void PairingPrecomp::NormalizeLines() {
  // Scaling any line by an element of F_p* is erased by the final
  // exponentiation, so divide each line by its leading coefficient: the
  // evaluation then skips the c_xq * xq multiplication. One batched
  // inversion (Montgomery's trick) covers every line; the (practically
  // unreachable) lines with c_xq == 0 stay as recorded.
  std::vector<Line*> lines;
  lines.reserve(2 * steps_.size());
  for (Step& s : steps_) {
    if (s.has_dbl && !s.dbl.c_xq.IsZero()) lines.push_back(&s.dbl);
    if (s.has_add && !s.add.c_xq.IsZero()) lines.push_back(&s.add);
  }
  if (lines.empty()) return;
  const FpCtx* ctx = params_->ctx();
  std::vector<Fp> prefix(lines.size());
  Fp run = Fp::One(ctx);
  for (size_t i = 0; i < lines.size(); ++i) {
    prefix[i] = run;
    run = run * lines[i]->c_xq;
  }
  Fp inv = run.Inv();
  for (size_t i = lines.size(); i-- > 0;) {
    Fp cinv = inv * prefix[i];
    inv = inv * lines[i]->c_xq;
    lines[i]->c_0 = lines[i]->c_0 * cinv;
    lines[i]->c_yq = lines[i]->c_yq * cinv;
    lines[i]->c_xq = Fp::One(ctx);
    lines[i]->monic = true;
  }
}

Fp2 PairingPrecomp::EvalLine(const Line& line, const Fp& xq,
                             const Fp& yq) const {
  if (line.monic) return Fp2(xq + line.c_0, line.c_yq * yq);
  return Fp2(line.c_xq * xq + line.c_0, line.c_yq * yq);
}

void PairingPrecomp::EvalStep(size_t step, const Fp& xq, const Fp& yq,
                              Fp2* f) const {
  const Step& s = steps_[step];
  if (s.has_dbl) *f = *f * EvalLine(s.dbl, xq, yq);
  if (s.has_add) *f = *f * EvalLine(s.add, xq, yq);
}

Fp2 PairingPrecomp::Miller(const EcPoint& q) const {
  const FpCtx* ctx = params_->ctx();
  if (p_.is_infinity() || q.is_infinity()) return Fp2::One(ctx);
  const Fp& xq = q.x();
  const Fp& yq = q.y();
  Fp2 f = Fp2::One(ctx);
  for (size_t i = 0; i < steps_.size(); ++i) {
    f = f.Sqr();
    EvalStep(i, xq, yq, &f);
  }
  return f;
}

std::vector<Fp2> PairingPrecomp::MillerMany(
    const std::vector<EcPoint>& qs) const {
  const FpCtx* ctx = params_->ctx();
  std::vector<Fp2> out(qs.size(), Fp2::One(ctx));
  if (p_.is_infinity()) return out;
  std::vector<size_t> live;
  live.reserve(qs.size());
  for (size_t k = 0; k < qs.size(); ++k) {
    if (!qs[k].is_infinity()) live.push_back(k);
  }
  // Steps outer, arguments inner: each step's line coefficients are read
  // once and applied to the whole batch while hot.
  for (size_t i = 0; i < steps_.size(); ++i) {
    for (size_t k : live) {
      Fp2& f = out[k];
      f = f.Sqr();
      EvalStep(i, qs[k].x(), qs[k].y(), &f);
    }
  }
  return out;
}

std::vector<Fp2> PairingPrecomp::PairingMany(
    const std::vector<EcPoint>& qs) const {
  return params_->FinalExponentiationMany(MillerMany(qs));
}

Fp2 PairingPrecomp::Pairing(const EcPoint& q) const {
  return params_->FinalExponentiation(Miller(q));
}

size_t PairingPrecomp::line_count() const {
  size_t n = 0;
  for (const Step& s : steps_) {
    n += (s.has_dbl ? 1 : 0) + (s.has_add ? 1 : 0);
  }
  return n;
}

}  // namespace mws::math
