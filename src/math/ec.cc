#include "src/math/ec.h"

#include <cassert>
#include <vector>

namespace mws::math {

namespace {

JacPoint MakeInfinity(const FpCtx* ctx) {
  return {Fp::One(ctx), Fp::One(ctx), Fp::Zero(ctx), true};
}

JacPoint JacobianDouble(const Fp& a, const JacPoint& p) {
  if (p.infinity) return p;
  if (p.y.IsZero()) return MakeInfinity(p.x.ctx());
  // S = 4*X*Y^2, M = 3*X^2 + a*Z^4.
  Fp y2 = p.y.Sqr();
  Fp s = (p.x * y2).Double().Double();
  Fp x2 = p.x.Sqr();
  Fp m = x2.Double() + x2 + a * p.z.Sqr().Sqr();
  Fp x3 = m.Sqr() - s.Double();
  Fp y4_8 = y2.Sqr().Double().Double().Double();
  Fp y3 = m * (s - x3) - y4_8;
  Fp z3 = (p.y * p.z).Double();
  return {x3, y3, z3, false};
}

JacPoint JacobianAdd(const Fp& a, const JacPoint& p, const JacPoint& q) {
  if (p.infinity) return q;
  if (q.infinity) return p;
  Fp z1sq = p.z.Sqr();
  Fp z2sq = q.z.Sqr();
  Fp u1 = p.x * z2sq;
  Fp u2 = q.x * z1sq;
  Fp s1 = p.y * z2sq * q.z;
  Fp s2 = q.y * z1sq * p.z;
  Fp h = u2 - u1;
  Fp r = s2 - s1;
  if (h.IsZero()) {
    if (r.IsZero()) return JacobianDouble(a, p);
    return MakeInfinity(p.x.ctx());
  }
  Fp h2 = h.Sqr();
  Fp h3 = h2 * h;
  Fp u1h2 = u1 * h2;
  Fp x3 = r.Sqr() - h3 - u1h2.Double();
  Fp y3 = r * (u1h2 - x3) - s1 * h3;
  Fp z3 = p.z * q.z * h;
  return {x3, y3, z3, false};
}

/// Mixed addition with an affine second operand (Z2 = 1 saves four
/// multiplications and two squarings over the general formula).
JacPoint JacobianAddAffine(const Fp& a, const FpCtx* ctx, const JacPoint& p,
                           const EcPoint& q) {
  if (q.is_infinity()) return p;
  if (p.infinity) return {q.x(), q.y(), Fp::One(ctx), false};
  Fp z1sq = p.z.Sqr();
  Fp u2 = q.x() * z1sq;
  Fp s2 = q.y() * z1sq * p.z;
  Fp h = u2 - p.x;
  Fp r = s2 - p.y;
  if (h.IsZero()) {
    if (r.IsZero()) return JacobianDouble(a, p);
    return MakeInfinity(ctx);
  }
  Fp h2 = h.Sqr();
  Fp h3 = h2 * h;
  Fp u1h2 = p.x * h2;
  Fp x3 = r.Sqr() - h3 - u1h2.Double();
  Fp y3 = r * (u1h2 - x3) - p.y * h3;
  Fp z3 = p.z * h;
  return {x3, y3, z3, false};
}

// --- wNAF digit expansion over raw limbs ---
//
// Standard width-w non-adjacent form: every non-zero digit is odd, in
// (-2^(w-1), 2^(w-1)), and followed by at least w-1 zeros, so a scalar
// of n bits costs n doublings but only ~n/(w+1) additions.

bool LimbsZero(const std::vector<uint64_t>& v) {
  for (uint64_t x : v) {
    if (x != 0) return false;
  }
  return true;
}

void LimbsSubSmall(std::vector<uint64_t>& v, uint64_t d) {
  uint64_t borrow = d;
  for (size_t i = 0; i < v.size() && borrow != 0; ++i) {
    uint64_t before = v[i];
    v[i] -= borrow;
    borrow = (v[i] > before) ? 1 : 0;
  }
}

void LimbsAddSmall(std::vector<uint64_t>& v, uint64_t d) {
  uint64_t carry = d;
  for (size_t i = 0; i < v.size() && carry != 0; ++i) {
    v[i] += carry;
    carry = (v[i] < carry) ? 1 : 0;
  }
  if (carry != 0) v.push_back(carry);
}

void LimbsShiftRight1(std::vector<uint64_t>& v) {
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] >>= 1;
    if (i + 1 < v.size()) v[i] |= v[i + 1] << 63;
  }
}

/// Pre: k > 0, 2 <= w <= 7.
std::vector<int8_t> WnafDigits(const BigInt& k, unsigned w) {
  std::vector<uint64_t> v = k.limbs();
  std::vector<int8_t> out;
  out.reserve(k.BitLength() + 1);
  const uint64_t mask = (uint64_t{1} << w) - 1;
  const int64_t full = int64_t{1} << w;
  const int64_t half = full >> 1;
  while (!LimbsZero(v)) {
    int8_t digit = 0;
    if (v[0] & 1) {
      int64_t m = static_cast<int64_t>(v[0] & mask);
      if (m >= half) {
        digit = static_cast<int8_t>(m - full);
        LimbsAddSmall(v, static_cast<uint64_t>(full - m));
      } else {
        digit = static_cast<int8_t>(m);
        LimbsSubSmall(v, static_cast<uint64_t>(m));
      }
    }
    out.push_back(digit);
    LimbsShiftRight1(v);
  }
  return out;
}

/// |k| * base for k > 0 via wNAF with on-the-fly odd-multiple table.
JacPoint WnafMul(const Fp& a, const FpCtx* ctx, const BigInt& k,
                 const JacPoint& base) {
  if (base.infinity) return base;
  // Small scalars: the odd-multiple table does not pay for itself.
  if (k.BitLength() <= 8) {
    JacPoint acc = MakeInfinity(ctx);
    for (size_t i = k.BitLength(); i-- > 0;) {
      acc = JacobianDouble(a, acc);
      if (k.Bit(i)) acc = JacobianAdd(a, acc, base);
    }
    return acc;
  }
  constexpr unsigned w = 4;
  std::vector<int8_t> digits = WnafDigits(k, w);
  // Odd multiples 1P, 3P, ..., (2^(w-1)-1)P.
  std::vector<JacPoint> odd(size_t{1} << (w - 2));
  odd[0] = base;
  JacPoint twice = JacobianDouble(a, base);
  for (size_t i = 1; i < odd.size(); ++i) {
    odd[i] = JacobianAdd(a, odd[i - 1], twice);
  }
  JacPoint acc = MakeInfinity(ctx);
  for (size_t i = digits.size(); i-- > 0;) {
    acc = JacobianDouble(a, acc);
    int8_t d = digits[i];
    if (d > 0) {
      acc = JacobianAdd(a, acc, odd[static_cast<size_t>(d) >> 1]);
    } else if (d < 0) {
      const JacPoint& m = odd[static_cast<size_t>(-d) >> 1];
      acc = JacobianAdd(a, acc, JacPoint{m.x, m.y.Neg(), m.z, m.infinity});
    }
  }
  return acc;
}

}  // namespace

bool CurveGroup::IsOnCurve(const EcPoint& p) const {
  if (p.is_infinity()) return true;
  Fp lhs = p.y().Sqr();
  Fp rhs = p.x().Sqr() * p.x() + a_ * p.x() + b_;
  return lhs == rhs;
}

EcPoint CurveGroup::Negate(const EcPoint& p) const {
  if (p.is_infinity()) return p;
  return EcPoint(p.x(), p.y().Neg());
}

JacPoint CurveGroup::JacInfinity() const { return MakeInfinity(ctx_); }

JacPoint CurveGroup::ToJacobian(const EcPoint& p) const {
  if (p.is_infinity()) return MakeInfinity(ctx_);
  return {p.x(), p.y(), Fp::One(ctx_), false};
}

EcPoint CurveGroup::ToAffine(const JacPoint& p) const {
  if (p.infinity) return EcPoint::Infinity();
  Fp zinv = p.z.Inv();
  Fp zinv2 = zinv.Sqr();
  Fp zinv3 = zinv2 * zinv;
  return EcPoint(p.x * zinv2, p.y * zinv3);
}

JacPoint CurveGroup::Negate(const JacPoint& p) const {
  if (p.infinity) return p;
  return {p.x, p.y.Neg(), p.z, false};
}

JacPoint CurveGroup::Add(const JacPoint& p, const JacPoint& q) const {
  return JacobianAdd(a_, p, q);
}

JacPoint CurveGroup::Add(const JacPoint& p, const EcPoint& q) const {
  return JacobianAddAffine(a_, ctx_, p, q);
}

JacPoint CurveGroup::Double(const JacPoint& p) const {
  return JacobianDouble(a_, p);
}

EcPoint CurveGroup::Double(const EcPoint& p) const {
  return ToAffine(JacobianDouble(a_, ToJacobian(p)));
}

EcPoint CurveGroup::Add(const EcPoint& p, const EcPoint& q) const {
  return ToAffine(JacobianAdd(a_, ToJacobian(p), ToJacobian(q)));
}

EcPoint CurveGroup::ScalarMul(const BigInt& k, const EcPoint& p) const {
  if (k.IsZero() || p.is_infinity()) return EcPoint::Infinity();
  BigInt scalar = k.IsNegative() ? -k : k;
  EcPoint out = ToAffine(WnafMul(a_, ctx_, scalar, ToJacobian(p)));
  return k.IsNegative() ? Negate(out) : out;
}

JacPoint CurveGroup::ScalarMul(const BigInt& k, const JacPoint& p) const {
  if (k.IsZero() || p.infinity) return MakeInfinity(ctx_);
  BigInt scalar = k.IsNegative() ? -k : k;
  JacPoint out = WnafMul(a_, ctx_, scalar, p);
  return k.IsNegative() ? Negate(out) : out;
}

EcPoint CurveGroup::ScalarMulBinary(const BigInt& k, const EcPoint& p) const {
  if (k.IsZero() || p.is_infinity()) return EcPoint::Infinity();
  BigInt scalar = k.IsNegative() ? -k : k;
  JacPoint base = ToJacobian(p);
  JacPoint acc = MakeInfinity(ctx_);
  for (size_t i = scalar.BitLength(); i-- > 0;) {
    acc = JacobianDouble(a_, acc);
    if (scalar.Bit(i)) acc = JacobianAdd(a_, acc, base);
  }
  EcPoint out = ToAffine(acc);
  return k.IsNegative() ? Negate(out) : out;
}

util::Bytes CurveGroup::Serialize(const EcPoint& p) const {
  if (p.is_infinity()) return util::Bytes{0x00};
  util::Bytes out;
  out.reserve(1 + 2 * ctx_->byte_length());
  out.push_back(0x04);
  util::Bytes xb = p.x().ToBytes();
  util::Bytes yb = p.y().ToBytes();
  out.insert(out.end(), xb.begin(), xb.end());
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

util::Bytes CurveGroup::SerializeCompressed(const EcPoint& p) const {
  if (p.is_infinity()) return util::Bytes{0x00};
  util::Bytes out;
  out.reserve(1 + ctx_->byte_length());
  out.push_back(p.y().ToBigInt().IsOdd() ? 0x03 : 0x02);
  util::Bytes xb = p.x().ToBytes();
  out.insert(out.end(), xb.begin(), xb.end());
  return out;
}

util::Result<EcPoint> CurveGroup::DeserializeCompressed(
    const util::Bytes& data) const {
  if (data.size() == 1 && data[0] == 0x00) return EcPoint::Infinity();
  size_t flen = ctx_->byte_length();
  if (data.size() != 1 + flen || (data[0] != 0x02 && data[0] != 0x03)) {
    return util::Status::InvalidArgument("bad compressed point encoding");
  }
  util::Bytes xb(data.begin() + 1, data.end());
  BigInt xi = BigInt::FromBytesBe(xb);
  if (xi >= ctx_->modulus()) {
    return util::Status::InvalidArgument("EC coordinate out of range");
  }
  Fp x = Fp::FromBigInt(ctx_, xi);
  Fp rhs = x.Sqr() * x + a_ * x + b_;
  auto y = rhs.Sqrt();
  if (!y.ok()) {
    return util::Status::InvalidArgument("x is not on the curve");
  }
  bool want_odd = data[0] == 0x03;
  Fp y_final = (y->ToBigInt().IsOdd() == want_odd) ? y.value() : y->Neg();
  return EcPoint(x, y_final);
}

util::Result<EcPoint> CurveGroup::Deserialize(const util::Bytes& data) const {
  if (data.size() == 1 && data[0] == 0x00) return EcPoint::Infinity();
  size_t flen = ctx_->byte_length();
  if (data.size() != 1 + 2 * flen || data[0] != 0x04) {
    return util::Status::InvalidArgument("bad EC point encoding");
  }
  util::Bytes xb(data.begin() + 1, data.begin() + 1 + flen);
  util::Bytes yb(data.begin() + 1 + flen, data.end());
  // Reject non-canonical (>= p) coordinates.
  BigInt xi = BigInt::FromBytesBe(xb);
  BigInt yi = BigInt::FromBytesBe(yb);
  if (xi >= ctx_->modulus() || yi >= ctx_->modulus()) {
    return util::Status::InvalidArgument("EC coordinate out of range");
  }
  EcPoint p(Fp::FromBigInt(ctx_, xi), Fp::FromBigInt(ctx_, yi));
  if (!IsOnCurve(p)) {
    return util::Status::InvalidArgument("point not on curve");
  }
  return p;
}

}  // namespace mws::math
