#include "src/math/ec.h"

#include <cassert>

namespace mws::math {

namespace {

/// Jacobian coordinates (X, Y, Z) with x = X/Z^2, y = Y/Z^3; Z = 0 is the
/// point at infinity. Used internally for scalar multiplication.
struct Jacobian {
  Fp x, y, z;
  bool infinity;
};

Jacobian ToJacobian(const FpCtx* ctx, const EcPoint& p) {
  if (p.is_infinity()) {
    return {Fp::One(ctx), Fp::One(ctx), Fp::Zero(ctx), true};
  }
  return {p.x(), p.y(), Fp::One(ctx), false};
}

EcPoint ToAffine(const Jacobian& p) {
  if (p.infinity) return EcPoint::Infinity();
  Fp zinv = p.z.Inv();
  Fp zinv2 = zinv.Sqr();
  Fp zinv3 = zinv2 * zinv;
  return EcPoint(p.x * zinv2, p.y * zinv3);
}

Jacobian JacobianDouble(const Fp& a, const Jacobian& p) {
  if (p.infinity || p.y.IsZero()) {
    const FpCtx* ctx = p.x.ctx();
    return {Fp::One(ctx), Fp::One(ctx), Fp::Zero(ctx), true};
  }
  // S = 4*X*Y^2, M = 3*X^2 + a*Z^4.
  Fp y2 = p.y.Sqr();
  Fp s = (p.x * y2).Double().Double();
  Fp x2 = p.x.Sqr();
  Fp m = x2.Double() + x2 + a * p.z.Sqr().Sqr();
  Fp x3 = m.Sqr() - s.Double();
  Fp y4_8 = y2.Sqr().Double().Double().Double();
  Fp y3 = m * (s - x3) - y4_8;
  Fp z3 = (p.y * p.z).Double();
  return {x3, y3, z3, false};
}

Jacobian JacobianAdd(const Fp& a, const Jacobian& p, const Jacobian& q) {
  if (p.infinity) return q;
  if (q.infinity) return p;
  Fp z1sq = p.z.Sqr();
  Fp z2sq = q.z.Sqr();
  Fp u1 = p.x * z2sq;
  Fp u2 = q.x * z1sq;
  Fp s1 = p.y * z2sq * q.z;
  Fp s2 = q.y * z1sq * p.z;
  Fp h = u2 - u1;
  Fp r = s2 - s1;
  if (h.IsZero()) {
    if (r.IsZero()) return JacobianDouble(a, p);
    const FpCtx* ctx = p.x.ctx();
    return {Fp::One(ctx), Fp::One(ctx), Fp::Zero(ctx), true};
  }
  Fp h2 = h.Sqr();
  Fp h3 = h2 * h;
  Fp u1h2 = u1 * h2;
  Fp x3 = r.Sqr() - h3 - u1h2.Double();
  Fp y3 = r * (u1h2 - x3) - s1 * h3;
  Fp z3 = p.z * q.z * h;
  return {x3, y3, z3, false};
}

}  // namespace

bool CurveGroup::IsOnCurve(const EcPoint& p) const {
  if (p.is_infinity()) return true;
  Fp lhs = p.y().Sqr();
  Fp rhs = p.x().Sqr() * p.x() + a_ * p.x() + b_;
  return lhs == rhs;
}

EcPoint CurveGroup::Negate(const EcPoint& p) const {
  if (p.is_infinity()) return p;
  return EcPoint(p.x(), p.y().Neg());
}

EcPoint CurveGroup::Double(const EcPoint& p) const {
  return ToAffine(JacobianDouble(a_, ToJacobian(ctx_, p)));
}

EcPoint CurveGroup::Add(const EcPoint& p, const EcPoint& q) const {
  return ToAffine(
      JacobianAdd(a_, ToJacobian(ctx_, p), ToJacobian(ctx_, q)));
}

EcPoint CurveGroup::ScalarMul(const BigInt& k, const EcPoint& p) const {
  if (k.IsZero() || p.is_infinity()) return EcPoint::Infinity();
  BigInt scalar = k.IsNegative() ? -k : k;
  Jacobian base = ToJacobian(ctx_, p);
  Jacobian acc = {Fp::One(ctx_), Fp::One(ctx_), Fp::Zero(ctx_), true};
  for (size_t i = scalar.BitLength(); i-- > 0;) {
    acc = JacobianDouble(a_, acc);
    if (scalar.Bit(i)) acc = JacobianAdd(a_, acc, base);
  }
  EcPoint out = ToAffine(acc);
  return k.IsNegative() ? Negate(out) : out;
}

util::Bytes CurveGroup::Serialize(const EcPoint& p) const {
  if (p.is_infinity()) return util::Bytes{0x00};
  util::Bytes out;
  out.reserve(1 + 2 * ctx_->byte_length());
  out.push_back(0x04);
  util::Bytes xb = p.x().ToBytes();
  util::Bytes yb = p.y().ToBytes();
  out.insert(out.end(), xb.begin(), xb.end());
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

util::Bytes CurveGroup::SerializeCompressed(const EcPoint& p) const {
  if (p.is_infinity()) return util::Bytes{0x00};
  util::Bytes out;
  out.reserve(1 + ctx_->byte_length());
  out.push_back(p.y().ToBigInt().IsOdd() ? 0x03 : 0x02);
  util::Bytes xb = p.x().ToBytes();
  out.insert(out.end(), xb.begin(), xb.end());
  return out;
}

util::Result<EcPoint> CurveGroup::DeserializeCompressed(
    const util::Bytes& data) const {
  if (data.size() == 1 && data[0] == 0x00) return EcPoint::Infinity();
  size_t flen = ctx_->byte_length();
  if (data.size() != 1 + flen || (data[0] != 0x02 && data[0] != 0x03)) {
    return util::Status::InvalidArgument("bad compressed point encoding");
  }
  util::Bytes xb(data.begin() + 1, data.end());
  BigInt xi = BigInt::FromBytesBe(xb);
  if (xi >= ctx_->modulus()) {
    return util::Status::InvalidArgument("EC coordinate out of range");
  }
  Fp x = Fp::FromBigInt(ctx_, xi);
  Fp rhs = x.Sqr() * x + a_ * x + b_;
  auto y = rhs.Sqrt();
  if (!y.ok()) {
    return util::Status::InvalidArgument("x is not on the curve");
  }
  bool want_odd = data[0] == 0x03;
  Fp y_final = (y->ToBigInt().IsOdd() == want_odd) ? y.value() : y->Neg();
  return EcPoint(x, y_final);
}

util::Result<EcPoint> CurveGroup::Deserialize(const util::Bytes& data) const {
  if (data.size() == 1 && data[0] == 0x00) return EcPoint::Infinity();
  size_t flen = ctx_->byte_length();
  if (data.size() != 1 + 2 * flen || data[0] != 0x04) {
    return util::Status::InvalidArgument("bad EC point encoding");
  }
  util::Bytes xb(data.begin() + 1, data.begin() + 1 + flen);
  util::Bytes yb(data.begin() + 1 + flen, data.end());
  // Reject non-canonical (>= p) coordinates.
  BigInt xi = BigInt::FromBytesBe(xb);
  BigInt yi = BigInt::FromBytesBe(yb);
  if (xi >= ctx_->modulus() || yi >= ctx_->modulus()) {
    return util::Status::InvalidArgument("EC coordinate out of range");
  }
  EcPoint p(Fp::FromBigInt(ctx_, xi), Fp::FromBigInt(ctx_, yi));
  if (!IsOnCurve(p)) {
    return util::Status::InvalidArgument("point not on curve");
  }
  return p;
}

}  // namespace mws::math
