#include "src/math/bigint.h"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace mws::math {

namespace {

using u128 = unsigned __int128;

constexpr uint64_t kSmallPrimes[] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

}  // namespace

BigInt::BigInt(int64_t v) : negative_(v < 0) {
  uint64_t mag =
      v < 0 ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
  if (mag != 0) limbs_.push_back(mag);
}

BigInt::BigInt(uint64_t v) : negative_(false) {
  if (v != 0) limbs_.push_back(v);
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::CompareMagnitude(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<uint64_t> BigInt::AddMagnitude(const std::vector<uint64_t>& a,
                                           const std::vector<uint64_t>& b) {
  const std::vector<uint64_t>& big = a.size() >= b.size() ? a : b;
  const std::vector<uint64_t>& small = a.size() >= b.size() ? b : a;
  std::vector<uint64_t> out(big.size());
  uint64_t carry = 0;
  for (size_t i = 0; i < big.size(); ++i) {
    u128 sum = static_cast<u128>(big[i]) + carry;
    if (i < small.size()) sum += small[i];
    out[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  if (carry) out.push_back(carry);
  return out;
}

std::vector<uint64_t> BigInt::SubMagnitude(const std::vector<uint64_t>& a,
                                           const std::vector<uint64_t>& b) {
  assert(CompareMagnitude(a, b) >= 0);
  std::vector<uint64_t> out(a.size());
  uint64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t bi = i < b.size() ? b[i] : 0;
    uint64_t ai = a[i];
    uint64_t d = ai - bi;
    uint64_t borrow2 = (ai < bi) ? 1 : 0;
    uint64_t d2 = d - borrow;
    if (d < borrow) borrow2 = 1;
    out[i] = d2;
    borrow = borrow2;
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<uint64_t> BigInt::MulMagnitude(const std::vector<uint64_t>& a,
                                           const std::vector<uint64_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint64_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    if (ai == 0) continue;
    for (size_t j = 0; j < b.size(); ++j) {
      u128 cur = static_cast<u128>(ai) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    size_t k = i + b.size();
    while (carry) {
      u128 cur = static_cast<u128>(out[k]) + carry;
      out[k] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
      ++k;
    }
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

void BigInt::DivModMagnitude(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b,
                             std::vector<uint64_t>* q,
                             std::vector<uint64_t>* r) {
  assert(!b.empty());
  if (CompareMagnitude(a, b) < 0) {
    if (q) q->clear();
    if (r) *r = a;
    return;
  }
  if (b.size() == 1) {
    // Fast path: single-limb divisor.
    uint64_t d = b[0];
    std::vector<uint64_t> quot(a.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.size(); i-- > 0;) {
      u128 cur = (static_cast<u128>(rem) << 64) | a[i];
      quot[i] = static_cast<uint64_t>(cur / d);
      rem = static_cast<uint64_t>(cur % d);
    }
    while (!quot.empty() && quot.back() == 0) quot.pop_back();
    if (q) *q = std::move(quot);
    if (r) {
      r->clear();
      if (rem) r->push_back(rem);
    }
    return;
  }

  // Knuth TAOCP vol 2, Algorithm D.
  const size_t n = b.size();
  const size_t m = a.size() - n;

  // D1: normalize so the divisor's top bit is set.
  int shift = 0;
  {
    uint64_t top = b.back();
    while ((top & (1ULL << 63)) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  auto shl = [&](const std::vector<uint64_t>& v, bool extra) {
    std::vector<uint64_t> out(v.size() + (extra ? 1 : 0), 0);
    if (shift == 0) {
      std::copy(v.begin(), v.end(), out.begin());
      return out;
    }
    uint64_t carry = 0;
    for (size_t i = 0; i < v.size(); ++i) {
      out[i] = (v[i] << shift) | carry;
      carry = v[i] >> (64 - shift);
    }
    if (extra) {
      out[v.size()] = carry;
    } else {
      assert(carry == 0);
    }
    return out;
  };
  std::vector<uint64_t> u = shl(a, /*extra=*/true);  // length m+n+1
  std::vector<uint64_t> v = shl(b, /*extra=*/false);  // length n

  std::vector<uint64_t> quot(m + 1, 0);
  const uint64_t v1 = v[n - 1];
  const uint64_t v2 = v[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    // D3: estimate qhat from the top three dividend limbs / top two
    // divisor limbs.
    u128 num = (static_cast<u128>(u[j + n]) << 64) | u[j + n - 1];
    u128 qhat = num / v1;
    u128 rhat = num % v1;
    while (qhat >> 64 != 0 ||
           qhat * v2 > ((rhat << 64) | u[j + n - 2])) {
      --qhat;
      rhat += v1;
      if (rhat >> 64 != 0) break;
    }

    // D4: multiply and subtract u[j..j+n] -= qhat * v.
    u128 borrow = 0;
    u128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
      u128 p = qhat * v[i] + carry;
      carry = p >> 64;
      uint64_t plo = static_cast<uint64_t>(p);
      u128 sub = static_cast<u128>(u[i + j]) - plo - borrow;
      u[i + j] = static_cast<uint64_t>(sub);
      borrow = (sub >> 64) ? 1 : 0;
    }
    u128 sub = static_cast<u128>(u[j + n]) - carry - borrow;
    u[j + n] = static_cast<uint64_t>(sub);
    bool negative = (sub >> 64) != 0;

    uint64_t qj = static_cast<uint64_t>(qhat);
    if (negative) {
      // D6: the estimate was one too large; add the divisor back.
      --qj;
      u128 c = 0;
      for (size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<uint64_t>(sum);
        c = sum >> 64;
      }
      u[j + n] = static_cast<uint64_t>(u[j + n] + c);
    }
    quot[j] = qj;
  }

  while (!quot.empty() && quot.back() == 0) quot.pop_back();
  if (q) *q = std::move(quot);
  if (r) {
    // D8: denormalize the remainder (low n limbs of u, shifted back).
    std::vector<uint64_t> rem(u.begin(), u.begin() + n);
    if (shift != 0) {
      for (size_t i = 0; i < n; ++i) {
        uint64_t hi = (i + 1 < n) ? rem[i + 1] : 0;
        rem[i] = (rem[i] >> shift) | (hi << (64 - shift));
      }
    }
    while (!rem.empty() && rem.back() == 0) rem.pop_back();
    *r = std::move(rem);
  }
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMagnitude(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.IsZero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::operator+(const BigInt& b) const {
  BigInt out;
  if (negative_ == b.negative_) {
    out.limbs_ = AddMagnitude(limbs_, b.limbs_);
    out.negative_ = negative_;
  } else {
    int cmp = CompareMagnitude(limbs_, b.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      out.limbs_ = SubMagnitude(limbs_, b.limbs_);
      out.negative_ = negative_;
    } else {
      out.limbs_ = SubMagnitude(b.limbs_, limbs_);
      out.negative_ = b.negative_;
    }
  }
  out.Trim();
  return out;
}

BigInt BigInt::operator-(const BigInt& b) const { return *this + (-b); }

BigInt BigInt::operator*(const BigInt& b) const {
  BigInt out;
  out.limbs_ = MulMagnitude(limbs_, b.limbs_);
  out.negative_ = negative_ != b.negative_;
  out.Trim();
  return out;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                    BigInt* remainder) {
  assert(!b.IsZero());
  std::vector<uint64_t> qm, rm;
  DivModMagnitude(a.limbs_, b.limbs_, quotient ? &qm : nullptr,
                  remainder ? &rm : nullptr);
  if (quotient) {
    quotient->limbs_ = std::move(qm);
    quotient->negative_ = a.negative_ != b.negative_;
    quotient->Trim();
  }
  if (remainder) {
    remainder->limbs_ = std::move(rm);
    remainder->negative_ = a.negative_;
    remainder->Trim();
  }
}

BigInt BigInt::operator/(const BigInt& b) const {
  BigInt q;
  DivMod(*this, b, &q, nullptr);
  return q;
}

BigInt BigInt::operator%(const BigInt& b) const {
  BigInt r;
  DivMod(*this, b, nullptr, &r);
  return r;
}

BigInt BigInt::Mod(const BigInt& a, const BigInt& m) {
  assert(m > BigInt(0));
  BigInt r = a % m;
  if (r.IsNegative()) r = r + m;
  return r;
}

BigInt BigInt::operator<<(size_t bits) const {
  if (IsZero() || bits == 0) {
    if (bits == 0) return *this;
    return BigInt();
  }
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift ? (limbs_[i] << bit_shift)
                                            : limbs_[i];
    if (bit_shift) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.Trim();
  return out;
}

BigInt BigInt::operator>>(size_t bits) const {
  if (IsZero()) return BigInt();
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.Trim();
  return out;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint64_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 64;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::Bit(size_t i) const {
  size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

util::Result<BigInt> BigInt::FromDecimal(std::string_view s) {
  if (s.empty()) return util::Status::InvalidArgument("empty decimal string");
  bool neg = false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
  }
  if (i == s.size()) return util::Status::InvalidArgument("no digits");
  BigInt out;
  const BigInt ten(10);
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c < '0' || c > '9') {
      return util::Status::InvalidArgument("invalid decimal digit");
    }
    out = out * ten + BigInt(static_cast<int64_t>(c - '0'));
  }
  if (neg && !out.IsZero()) out.negative_ = true;
  return out;
}

util::Result<BigInt> BigInt::FromHex(std::string_view s) {
  if (s.empty()) return util::Status::InvalidArgument("empty hex string");
  bool neg = false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
  }
  if (i == s.size()) return util::Status::InvalidArgument("no digits");
  BigInt out;
  for (; i < s.size(); ++i) {
    char c = s[i];
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = c - 'A' + 10;
    } else {
      return util::Status::InvalidArgument("invalid hex digit");
    }
    out = (out << 4) + BigInt(static_cast<int64_t>(d));
  }
  if (neg && !out.IsZero()) out.negative_ = true;
  return out;
}

BigInt BigInt::FromBytesBe(const util::Bytes& b) {
  BigInt out;
  size_t nlimbs = (b.size() + 7) / 8;
  out.limbs_.assign(nlimbs, 0);
  for (size_t i = 0; i < b.size(); ++i) {
    size_t bit_index = (b.size() - 1 - i) * 8;
    out.limbs_[bit_index / 64] |= static_cast<uint64_t>(b[i])
                                  << (bit_index % 64);
  }
  out.Trim();
  return out;
}

util::Bytes BigInt::ToBytesBe(size_t min_len) const {
  assert(!negative_);
  size_t nbytes = (BitLength() + 7) / 8;
  size_t len = std::max(nbytes, min_len);
  util::Bytes out(len, 0);
  for (size_t i = 0; i < nbytes; ++i) {
    size_t bit_index = i * 8;
    uint8_t byte =
        static_cast<uint8_t>(limbs_[bit_index / 64] >> (bit_index % 64));
    out[len - 1 - i] = byte;
  }
  return out;
}

std::string BigInt::ToDecimal() const {
  if (IsZero()) return "0";
  std::vector<uint64_t> mag = limbs_;
  std::string digits;
  // Repeated division by 10^19 (largest power of ten in a uint64).
  constexpr uint64_t kChunk = 10000000000000000000ULL;
  while (!mag.empty()) {
    uint64_t rem = 0;
    for (size_t i = mag.size(); i-- > 0;) {
      u128 cur = (static_cast<u128>(rem) << 64) | mag[i];
      mag[i] = static_cast<uint64_t>(cur / kChunk);
      rem = static_cast<uint64_t>(cur % kChunk);
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int d = 0; d < 19; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::string BigInt::ToHex() const {
  if (IsZero()) return "0";
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      int d = static_cast<int>((limbs_[i] >> (nib * 4)) & 0xf);
      if (out.empty() && d == 0) continue;
      out.push_back(kDigits[d]);
    }
  }
  if (negative_) out.insert(out.begin(), '-');
  return out;
}

BigInt BigInt::ModPow(const BigInt& base, const BigInt& exp, const BigInt& m) {
  assert(!exp.IsNegative());
  assert(m > BigInt(0));
  if (m.IsOne()) return BigInt();
  BigInt result(1);
  BigInt b = Mod(base, m);
  size_t bits = exp.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = Mod(result * result, m);
    if (exp.Bit(i)) result = Mod(result * b, m);
  }
  return result;
}

util::Result<BigInt> BigInt::ModInverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid on (a mod m, m).
  BigInt r0 = m;
  BigInt r1 = Mod(a, m);
  BigInt t0(0);
  BigInt t1(1);
  while (!r1.IsZero()) {
    BigInt q = r0 / r1;
    BigInt r2 = r0 - q * r1;
    BigInt t2 = t0 - q * t1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  if (!r0.IsOne()) {
    return util::Status::InvalidArgument("element not invertible");
  }
  return Mod(t0, m);
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.IsNegative() ? -a : a;
  BigInt y = b.IsNegative() ? -b : b;
  while (!y.IsZero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

bool BigInt::IsProbablePrime(const BigInt& n, util::RandomSource& rng,
                             int rounds) {
  if (n < BigInt(2)) return false;
  for (uint64_t p : kSmallPrimes) {
    BigInt bp(p);
    if (n == bp) return true;
    if ((n % bp).IsZero()) return false;
  }
  // Write n-1 = d * 2^s.
  BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  size_t s = 0;
  while (d.IsEven()) {
    d = d >> 1;
    ++s;
  }
  BigInt n_minus_3 = n - BigInt(3);
  for (int round = 0; round < rounds; ++round) {
    BigInt a = RandomBelow(rng, n_minus_3) + BigInt(2);  // [2, n-2]
    BigInt x = ModPow(a, d, n);
    if (x.IsOne() || x == n_minus_1) continue;
    bool composite = true;
    for (size_t i = 1; i < s; ++i) {
      x = Mod(x * x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt BigInt::RandomBits(util::RandomSource& rng, size_t bits) {
  assert(bits >= 1);
  size_t nbytes = (bits + 7) / 8;
  util::Bytes raw = rng.Generate(nbytes);
  // Clear excess high bits, then set the top bit.
  size_t excess = nbytes * 8 - bits;
  raw[0] &= static_cast<uint8_t>(0xff >> excess);
  raw[0] |= static_cast<uint8_t>(1u << ((bits - 1) % 8));
  return FromBytesBe(raw);
}

BigInt BigInt::RandomBelow(util::RandomSource& rng, const BigInt& bound) {
  assert(bound > BigInt(0));
  size_t bits = bound.BitLength();
  size_t nbytes = (bits + 7) / 8;
  size_t excess = nbytes * 8 - bits;
  for (;;) {
    util::Bytes raw = rng.Generate(nbytes);
    raw[0] &= static_cast<uint8_t>(0xff >> excess);
    BigInt candidate = FromBytesBe(raw);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::GeneratePrime(util::RandomSource& rng, size_t bits) {
  assert(bits >= 2);
  for (;;) {
    BigInt candidate = RandomBits(rng, bits);
    if (candidate.IsEven()) candidate = candidate + BigInt(1);
    if (IsProbablePrime(candidate, rng)) return candidate;
  }
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToDecimal();
}

}  // namespace mws::math
