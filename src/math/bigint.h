#ifndef MWSIBE_MATH_BIGINT_H_
#define MWSIBE_MATH_BIGINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/random.h"
#include "src/util/result.h"

namespace mws::math {

/// Arbitrary-precision signed integer (sign–magnitude, 64-bit limbs,
/// little-endian limb order). This is the foundation of the pairing and
/// RSA substrates; it favours clarity and correctness, with the hot
/// modular path delegated to the Montgomery code in fp.h.
///
/// Value semantics: copyable and movable. Zero is canonically represented
/// by an empty limb vector with positive sign.
class BigInt {
 public:
  BigInt() : negative_(false) {}
  BigInt(int64_t v);   // NOLINT(runtime/explicit) - numeric literal init
  BigInt(uint64_t v);  // NOLINT(runtime/explicit)
  BigInt(int v) : BigInt(static_cast<int64_t>(v)) {}  // NOLINT

  BigInt(const BigInt&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(BigInt&&) = default;

  /// Parses an optionally signed decimal string.
  static util::Result<BigInt> FromDecimal(std::string_view s);

  /// Parses an optionally signed hex string (no 0x prefix).
  static util::Result<BigInt> FromHex(std::string_view s);

  /// Interprets `b` as an unsigned big-endian integer.
  static BigInt FromBytesBe(const util::Bytes& b);

  /// Unsigned big-endian encoding, left-padded with zeros to at least
  /// `min_len` bytes. Pre: non-negative.
  util::Bytes ToBytesBe(size_t min_len = 0) const;

  std::string ToDecimal() const;
  std::string ToHex() const;

  bool IsZero() const { return limbs_.empty(); }
  bool IsOne() const { return !negative_ && limbs_.size() == 1 && limbs_[0] == 1; }
  bool IsNegative() const { return negative_; }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1) != 0; }
  bool IsEven() const { return !IsOdd(); }

  /// Number of significant bits of |x| (0 for zero).
  size_t BitLength() const;

  /// Bit `i` of |x| (i=0 is the least significant).
  bool Bit(size_t i) const;

  /// Low 64 bits of |x|.
  uint64_t LowU64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  /// -1, 0, +1 comparison with full sign handling.
  int Compare(const BigInt& other) const;

  BigInt operator-() const;
  BigInt operator+(const BigInt& b) const;
  BigInt operator-(const BigInt& b) const;
  BigInt operator*(const BigInt& b) const;
  /// Truncated division (C semantics: quotient rounds toward zero,
  /// remainder has the sign of the dividend). Pre: b != 0.
  BigInt operator/(const BigInt& b) const;
  BigInt operator%(const BigInt& b) const;
  BigInt operator<<(size_t bits) const;
  BigInt operator>>(size_t bits) const;

  BigInt& operator+=(const BigInt& b) { return *this = *this + b; }
  BigInt& operator-=(const BigInt& b) { return *this = *this - b; }
  BigInt& operator*=(const BigInt& b) { return *this = *this * b; }

  /// Computes quotient and remainder in one pass (truncated semantics).
  /// Either output pointer may be null. Pre: !b.IsZero().
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                     BigInt* remainder);

  /// Canonical non-negative residue of `a` modulo `m`. Pre: m > 0.
  static BigInt Mod(const BigInt& a, const BigInt& m);

  /// (base^exp) mod m with exp >= 0, m > 0.
  static BigInt ModPow(const BigInt& base, const BigInt& exp, const BigInt& m);

  /// Multiplicative inverse of a mod m; fails if gcd(a, m) != 1.
  static util::Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);

  /// Greatest common divisor of |a| and |b|.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  /// Miller–Rabin with `rounds` random bases (plus small-prime sieve).
  static bool IsProbablePrime(const BigInt& n, util::RandomSource& rng,
                              int rounds = 32);

  /// Uniform integer with exactly `bits` bits (top bit set). Pre: bits >= 1.
  static BigInt RandomBits(util::RandomSource& rng, size_t bits);

  /// Uniform integer in [0, bound). Pre: bound > 0.
  static BigInt RandomBelow(util::RandomSource& rng, const BigInt& bound);

  /// Random prime with exactly `bits` bits. Pre: bits >= 2.
  static BigInt GeneratePrime(util::RandomSource& rng, size_t bits);

  /// Raw limb access (little-endian, no trailing zero limbs).
  const std::vector<uint64_t>& limbs() const { return limbs_; }

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) {
    return a.Compare(b) != 0;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return a.Compare(b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return a.Compare(b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return a.Compare(b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return a.Compare(b) >= 0;
  }

 private:
  /// Drops trailing zero limbs and canonicalizes -0 to +0.
  void Trim();

  /// |a| vs |b| comparison.
  static int CompareMagnitude(const std::vector<uint64_t>& a,
                              const std::vector<uint64_t>& b);
  static std::vector<uint64_t> AddMagnitude(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b);
  /// Pre: |a| >= |b|.
  static std::vector<uint64_t> SubMagnitude(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b);
  static std::vector<uint64_t> MulMagnitude(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b);
  /// Knuth Algorithm D on magnitudes. Pre: !b.empty().
  static void DivModMagnitude(const std::vector<uint64_t>& a,
                              const std::vector<uint64_t>& b,
                              std::vector<uint64_t>* q,
                              std::vector<uint64_t>* r);

  bool negative_;
  std::vector<uint64_t> limbs_;
};

std::ostream& operator<<(std::ostream& os, const BigInt& v);

}  // namespace mws::math

#endif  // MWSIBE_MATH_BIGINT_H_
