#ifndef MWSIBE_MATH_PARAMS_H_
#define MWSIBE_MATH_PARAMS_H_

#include <memory>
#include <string>

#include "src/math/pairing.h"

namespace mws::math {

/// Pre-generated type-A pairing parameter sets.
enum class ParamPreset {
  /// 80-bit group order / 256-bit field: fast, for unit tests only.
  kSmall,
  /// 160-bit group order / 512-bit field: the PBC a.param shape the paper's
  /// prototype used; the library default.
  kTest,
  /// 224-bit group order / 1024-bit field: for scaling benchmarks.
  kLarge,
};

const char* ParamPresetName(ParamPreset preset);

/// Returns the shared instance for `preset`. The instance lives for the
/// process lifetime; pointers into it (field/curve elements) stay valid.
const TypeAParams& GetParams(ParamPreset preset);

}  // namespace mws::math

#endif  // MWSIBE_MATH_PARAMS_H_
