#include "src/math/pairing.h"

#include <cassert>

namespace mws::math {

namespace {

/// Width-w non-adjacent form of a positive integer, least-significant
/// digit first: every nonzero digit is odd, |digit| < 2^(w-1), and the
/// leading digit is positive. w == 2 yields the classic {-1, 0, 1} NAF.
std::vector<int8_t> RecodeWnaf(BigInt n, size_t width) {
  assert(!n.IsNegative() && !n.IsZero());
  assert(width >= 2 && width <= 7);
  const int64_t half = int64_t{1} << (width - 1);
  const int64_t full = int64_t{1} << width;
  std::vector<int8_t> digits;
  while (!n.IsZero()) {
    if (n.Bit(0)) {
      int64_t d = 0;
      for (size_t j = 0; j < width; ++j) {
        if (n.Bit(j)) d |= int64_t{1} << j;
      }
      if (d >= half) d -= full;
      digits.push_back(static_cast<int8_t>(d));
      n = n - BigInt(d);
    } else {
      digits.push_back(0);
    }
    n = n >> 1;
  }
  return digits;
}

}  // namespace

util::Result<std::unique_ptr<const TypeAParams>> TypeAParams::Create(
    const BigInt& p, const BigInt& q, const BigInt& gen_x,
    const BigInt& gen_y, util::RandomSource& rng) {
  if ((p % BigInt(4)) != BigInt(3)) {
    return util::Status::InvalidArgument("p must be 3 mod 4");
  }
  BigInt h, rem;
  BigInt::DivMod(p + BigInt(1), q, &h, &rem);
  if (!rem.IsZero()) {
    return util::Status::InvalidArgument("q must divide p+1");
  }
  if (!BigInt::IsProbablePrime(p, rng, 16) ||
      !BigInt::IsProbablePrime(q, rng, 16)) {
    return util::Status::InvalidArgument("p and q must be prime");
  }
  auto params = std::unique_ptr<TypeAParams>(new TypeAParams());
  params->p_ = p;
  params->q_ = q;
  params->h_ = h;
  MWS_ASSIGN_OR_RETURN(params->ctx_, FpCtx::Create(p));
  const FpCtx* ctx = params->ctx_.get();
  params->curve_ = std::make_unique<CurveGroup>(ctx, Fp::One(ctx),
                                                Fp::Zero(ctx));
  EcPoint gen(Fp::FromBigInt(ctx, gen_x), Fp::FromBigInt(ctx, gen_y));
  if (!params->curve_->IsOnCurve(gen)) {
    return util::Status::InvalidArgument("generator not on curve");
  }
  if (!params->curve_->ScalarMul(q, gen).is_infinity() || gen.is_infinity()) {
    return util::Status::InvalidArgument("generator does not have order q");
  }
  params->generator_ = gen;
  params->BuildRecodings();
  params->BuildPrecomputation();
  return std::unique_ptr<const TypeAParams>(std::move(params));
}

util::Result<std::unique_ptr<const TypeAParams>> TypeAParams::Generate(
    size_t qbits, size_t pbits, util::RandomSource& rng) {
  if (qbits + 3 > pbits) {
    return util::Status::InvalidArgument("pbits must exceed qbits");
  }
  const BigInt q = BigInt::GeneratePrime(rng, qbits);
  // p = h*q - 1 with h == 0 mod 4 (so p == 3 mod 4, because h*q == 0 mod 4
  // and p = h*q - 1 == -1 == 3 mod 4).
  const size_t hbits = pbits - qbits;
  BigInt p;
  for (;;) {
    BigInt h = BigInt::RandomBits(rng, hbits);
    // Force h to a multiple of 4 (clear the low two bits, keep top bit).
    h = (h >> 2) << 2;
    if (h.IsZero()) continue;
    p = h * q - BigInt(1);
    if (p.BitLength() != pbits) continue;
    if (BigInt::IsProbablePrime(p, rng, 32)) break;
  }

  auto ctx_result = FpCtx::Create(p);
  if (!ctx_result.ok()) return ctx_result.status();
  auto params = std::unique_ptr<TypeAParams>(new TypeAParams());
  params->p_ = p;
  params->q_ = q;
  params->h_ = (p + BigInt(1)) / q;
  params->ctx_ = std::move(ctx_result).value();
  const FpCtx* ctx = params->ctx_.get();
  params->curve_ = std::make_unique<CurveGroup>(ctx, Fp::One(ctx),
                                                Fp::Zero(ctx));
  params->generator_ = params->RandomPoint(rng);
  params->BuildRecodings();
  params->BuildPrecomputation();
  return std::unique_ptr<const TypeAParams>(std::move(params));
}

void TypeAParams::BuildRecodings() {
  q_naf_ = RecodeWnaf(q_, 2);
  h_wnaf_ = RecodeWnaf(h_, 5);
}

void TypeAParams::BuildPrecomputation() {
  gen_table_ =
      std::make_unique<FixedBaseTable>(*curve_, generator_, q_);
  gen_pairing_ = std::make_unique<PairingPrecomp>(*this, generator_);
}

util::Result<EcPoint> TypeAParams::LiftX(const Fp& x) const {
  Fp rhs = x.Sqr() * x + x;  // x^3 + x (a=1, b=0)
  auto y = rhs.Sqrt();
  if (!y.ok()) return y.status();
  EcPoint candidate(x, y.value());
  EcPoint point = curve_->ScalarMul(h_, candidate);
  if (point.is_infinity()) {
    return util::Status::InvalidArgument("cofactor multiple is identity");
  }
  return point;
}

EcPoint TypeAParams::RandomPoint(util::RandomSource& rng) const {
  for (;;) {
    Fp x = Fp::FromBigInt(ctx_.get(), BigInt::RandomBelow(rng, p_));
    auto point = LiftX(x);
    if (!point.ok()) continue;
    // Randomize the sign of y (LiftX returns a fixed square root).
    if (rng.UniformU64(2) == 1) return curve_->Negate(point.value());
    return point.value();
  }
}

BigInt TypeAParams::RandomScalar(util::RandomSource& rng) const {
  return BigInt::RandomBelow(rng, q_ - BigInt(1)) + BigInt(1);
}

Fp2 TypeAParams::MillerLoop(const EcPoint& point_p,
                            const EcPoint& point_q) const {
  const FpCtx* ctx = ctx_.get();
  if (point_p.is_infinity() || point_q.is_infinity()) return Fp2::One(ctx);

  // Evaluate lines at the distorted point phi(Q) = (-xq, i*yq). A
  // non-vertical line through V with slope lambda evaluates to
  //   (lambda*(xq + xv) - yv) + i*yq        (element of F_p2).
  // Vertical lines evaluate inside F_p and are erased by the final
  // exponentiation (denominator elimination) — and so is any F_p* scalar
  // multiple of a line value, which lets the whole loop run
  // inversion-free: V is kept in Jacobian coordinates (x = X/Z^2,
  // y = Y/Z^3) and each line is scaled by a point-dependent element of
  // F_p* to clear the denominators.
  const Fp& xq = point_q.x();
  const Fp& yq = point_q.y();
  const Fp& px = point_p.x();
  const Fp& py = point_p.y();

  Fp2 f = Fp2::One(ctx);
  // V = P in Jacobian coordinates; v_infinity tracks Z == 0.
  Fp vx = px;
  Fp vy = py;
  Fp vz = Fp::One(ctx);
  bool v_infinity = false;

  const size_t bits = q_.BitLength();
  for (size_t i = bits - 1; i-- > 0;) {
    f = f.SqrReference();
    if (!v_infinity) {
      if (vy.IsZero()) {
        // V is 2-torsion: the tangent is vertical, 2V = infinity.
        // (Unreachable for prime q, kept for safety.)
        v_infinity = true;
      } else {
        // Tangent line at V, scaled by 2*yv*Z^6:
        //   (3X^2 + Z^4)(xq*Z^2 + X) - 2Y^2 + i * 2*Y*Z^3*yq.
        Fp z2 = vz.Sqr();
        Fp z4 = z2.Sqr();
        Fp z3 = vz * z2;
        Fp x2 = vx.Sqr();
        Fp m = x2.Double() + x2 + z4;  // 3X^2 + a*Z^4 with a = 1
        Fp y2 = vy.Sqr();
        Fp line_re = m * (xq * z2 + vx) - y2.Double();
        Fp line_im = (vy * z3).Double() * yq;
        f = f.MulReference(Fp2(line_re, line_im));
        // Jacobian doubling (general a; m already holds M).
        Fp s = (vx * y2).Double().Double();      // 4*X*Y^2
        Fp x_new = m.Sqr() - s.Double();
        Fp y4_8 = y2.Sqr().Double().Double().Double();  // 8*Y^4
        Fp y_new = m * (s - x_new) - y4_8;
        Fp z_new = (vy * vz).Double();
        vx = x_new;
        vy = y_new;
        vz = z_new;
      }
    }
    if (q_.Bit(i)) {
      if (v_infinity) {
        // O + P = P; the "line" is trivial.
        vx = px;
        vy = py;
        vz = Fp::One(ctx);
        v_infinity = false;
      } else {
        // Mixed addition V (Jacobian) + P (affine).
        Fp z2 = vz.Sqr();
        Fp z3 = vz * z2;
        Fp u2 = px * z2;   // xp * Z^2
        Fp s2 = py * z3;   // yp * Z^3
        Fp h = u2 - vx;    // Z^2 * (xp - xv)
        Fp r = s2 - vy;    // Z^3 * (yp - yv)
        if (h.IsZero()) {
          // V == -P (V == P cannot occur mid-loop for prime q): the
          // chord is the vertical through P; sum is infinity.
          v_infinity = true;
        } else {
          // Chord through V and P, scaled by Z*H = Z^3*(xp - xv):
          //   R*(xq + xp) - yp*Z*H + i * Z*H*yq.
          Fp zh = vz * h;
          Fp line_re = r * (xq + px) - py * zh;
          Fp line_im = zh * yq;
          f = f.MulReference(Fp2(line_re, line_im));
          Fp h2 = h.Sqr();
          Fp h3 = h2 * h;
          Fp xh2 = vx * h2;
          Fp x_new = r.Sqr() - h3 - xh2.Double();
          Fp y_new = r * (xh2 - x_new) - vy * h3;
          vx = x_new;
          vy = y_new;
          vz = zh;
        }
      }
    }
  }
  return f;
}

Fp2 TypeAParams::MillerLoopNaf(const EcPoint& point_p,
                               const EcPoint& point_q) const {
  const FpCtx* ctx = ctx_.get();
  if (point_p.is_infinity() || point_q.is_infinity()) return Fp2::One(ctx);

  // Same line/evaluation scheme as MillerLoop (see the comment there),
  // but walking the cached NAF digits of q: a -1 digit performs a
  // subtraction step, whose chord runs through V and -P = (px, -py).
  // Roughly bits/3 nonzero digits replace the bits/2 addition steps of
  // the binary loop. The running value differs from the binary loop's by
  // a factor in F_p* only, which the final exponentiation erases.
  const Fp& xq = point_q.x();
  const Fp& yq = point_q.y();
  const Fp& px = point_p.x();
  const Fp& py = point_p.y();
  const Fp py_neg = py.Neg();

  Fp2 f = Fp2::One(ctx);
  Fp vx = px;
  Fp vy = py;
  Fp vz = Fp::One(ctx);
  bool v_infinity = false;

  for (size_t i = q_naf_.size() - 1; i-- > 0;) {
    f = f.Sqr();
    if (!v_infinity) {
      if (vy.IsZero()) {
        // V is 2-torsion (unreachable for prime q, kept for safety).
        v_infinity = true;
      } else {
        Fp z2 = vz.Sqr();
        Fp z4 = z2.Sqr();
        Fp z3 = vz * z2;
        Fp x2 = vx.Sqr();
        Fp m = x2.Double() + x2 + z4;  // 3X^2 + a*Z^4 with a = 1
        Fp y2 = vy.Sqr();
        Fp line_re = m * (xq * z2 + vx) - y2.Double();
        Fp line_im = (vy * z3).Double() * yq;
        f = f * Fp2(line_re, line_im);
        Fp s = (vx * y2).Double().Double();      // 4*X*Y^2
        Fp x_new = m.Sqr() - s.Double();
        Fp y4_8 = y2.Sqr().Double().Double().Double();  // 8*Y^4
        Fp y_new = m * (s - x_new) - y4_8;
        Fp z_new = (vy * vz).Double();
        vx = x_new;
        vy = y_new;
        vz = z_new;
      }
    }
    const int8_t digit = q_naf_[i];
    if (digit != 0) {
      // Mixed addition of A = (px, sy) with sy = +-py.
      const Fp& sy = digit > 0 ? py : py_neg;
      if (v_infinity) {
        vx = px;
        vy = sy;
        vz = Fp::One(ctx);
        v_infinity = false;
      } else {
        Fp z2 = vz.Sqr();
        Fp z3 = vz * z2;
        Fp u2 = px * z2;   // xA * Z^2
        Fp s2 = sy * z3;   // yA * Z^3
        Fp h = u2 - vx;
        Fp r = s2 - vy;
        if (h.IsZero()) {
          // V == -A: vertical chord, sum is infinity. (V == A is
          // unreachable mid-loop for prime q.)
          v_infinity = true;
        } else {
          // Chord through V and A, scaled by Z*H:
          //   R*(xq + xA) - yA*Z*H + i * Z*H*yq.
          Fp zh = vz * h;
          Fp line_re = r * (xq + px) - sy * zh;
          Fp line_im = zh * yq;
          f = f * Fp2(line_re, line_im);
          Fp h2 = h.Sqr();
          Fp h3 = h2 * h;
          Fp xh2 = vx * h2;
          Fp x_new = r.Sqr() - h3 - xh2.Double();
          Fp y_new = r * (xh2 - x_new) - vy * h3;
          vx = x_new;
          vy = y_new;
          vz = zh;
        }
      }
    }
  }
  return f;
}

Fp2 TypeAParams::HardExpUnitary(const Fp2& t) const {
  // t has norm 1 (it is z^(p-1) for some z, and N(x^(p-1)) = N(x)^(p-1)
  // = 1 in F_p), so t^-1 == conj(t): negative wNAF digits multiply by a
  // conjugated table entry instead of requiring an inversion.
  const FpCtx* c = ctx_.get();
  // Odd powers t^1, t^3, ..., t^15 (width-5 digits).
  Fp2 odd[8];
  odd[0] = t;
  Fp2 t2 = t.Sqr();
  for (size_t i = 1; i < 8; ++i) odd[i] = odd[i - 1] * t2;
  Fp2 r = Fp2::One(c);
  for (size_t i = h_wnaf_.size(); i-- > 0;) {
    r = r.Sqr();
    const int8_t d = h_wnaf_[i];
    if (d > 0) {
      r = r * odd[d >> 1];
    } else if (d < 0) {
      r = r * odd[(-d) >> 1].Conjugate();
    }
  }
  return r;
}

Fp2 TypeAParams::FinalExponentiation(const Fp2& z) const {
  // (p^2 - 1)/q = (p - 1) * h.  z^(p-1) = conj(z) / z because the
  // Frobenius on F_p2 is conjugation.
  if (z.IsZero()) return z;  // degenerate input; no inverse exists
  if (z.IsOne()) return z;   // infinity-pairing fast path: 1^e == 1
  Fp2 t = z.Conjugate() * z.Inv();
  return HardExpUnitary(t);
}

std::vector<Fp2> TypeAParams::FinalExponentiationMany(
    const std::vector<Fp2>& zs) const {
  // Easy part z^(p-1) = conj(z) * conj(z) / N(z) with all the norm
  // inversions batched through Montgomery's trick: one InvMod total.
  // Every step matches what FinalExponentiation does element-wise (the
  // batched inverses are canonical, hence bit-identical to Fp::Inv), so
  // outputs are bit-identical to the one-at-a-time path.
  std::vector<Fp2> out = zs;
  std::vector<size_t> live;
  live.reserve(zs.size());
  for (size_t i = 0; i < zs.size(); ++i) {
    if (!zs[i].IsZero() && !zs[i].IsOne()) live.push_back(i);
  }
  if (live.empty()) return out;
  const FpCtx* c = ctx_.get();
  std::vector<Fp> norms(live.size());
  std::vector<Fp> prefix(live.size());
  Fp run = Fp::One(c);
  for (size_t j = 0; j < live.size(); ++j) {
    const Fp2& z = zs[live[j]];
    norms[j] = z.re().Sqr() + z.im().Sqr();
    prefix[j] = run;
    run = run * norms[j];
  }
  Fp inv = run.Inv();
  for (size_t j = live.size(); j-- > 0;) {
    Fp ninv = inv * prefix[j];
    inv = inv * norms[j];
    const Fp2& z = zs[live[j]];
    // z.Inv() with the batched norm inverse; same formula as Fp2::Inv.
    Fp2 zinv(z.re() * ninv, z.im().Neg() * ninv);
    out[live[j]] = HardExpUnitary(z.Conjugate() * zinv);
  }
  return out;
}

Fp2 TypeAParams::FinalExponentiationReference(const Fp2& z) const {
  Fp2 t = z.Conjugate() * z.Inv();
  return t.Pow(h_);
}

Fp2 TypeAParams::Pairing(const EcPoint& point_p,
                         const EcPoint& point_q) const {
  return FinalExponentiation(MillerLoopNaf(point_p, point_q));
}

Fp2 TypeAParams::PairingReference(const EcPoint& point_p,
                                  const EcPoint& point_q) const {
  return FinalExponentiationReference(MillerLoop(point_p, point_q));
}

Fp2 TypeAParams::PairingProduct(const std::vector<PairingTerm>& terms) const {
  const FpCtx* ctx = ctx_.get();

  // Per-term Miller state for terms whose lines are computed live.
  struct LiveState {
    const EcPoint* p;
    const EcPoint* q;
    Fp py_neg;
    Fp vx, vy, vz;
    bool v_infinity = false;
  };
  struct PrecompState {
    const PairingPrecomp* pre;
    const EcPoint* q;
  };
  std::vector<LiveState> lives;
  std::vector<PrecompState> pres;
  const size_t step_count = q_naf_.size() - 1;
  for (const PairingTerm& t : terms) {
    if (t.q.is_infinity()) continue;  // e(*, O) == 1
    if (t.precomp != nullptr) {
      if (t.precomp->StepCount() == 0) continue;  // e(O, *) == 1
      assert(t.precomp->StepCount() == step_count);
      pres.push_back(PrecompState{t.precomp, &t.q});
    } else {
      if (t.p.is_infinity()) continue;
      LiveState st;
      st.p = &t.p;
      st.q = &t.q;
      st.py_neg = t.p.y().Neg();
      st.vx = t.p.x();
      st.vy = t.p.y();
      st.vz = Fp::One(ctx);
      lives.push_back(std::move(st));
    }
  }

  // All Tate pairings here share the loop exponent q, so a single
  // accumulator f runs one squaring chain for every term; each term only
  // contributes its line evaluations per iteration. One final
  // exponentiation finishes the product. Since (f1*f2)^e == f1^e * f2^e
  // and all values are canonical, the result is bit-identical to
  // multiplying individual Pairing() outputs.
  Fp2 f = Fp2::One(ctx);
  for (size_t i = step_count; i-- > 0;) {
    f = f.Sqr();
    const int8_t digit = q_naf_[i];
    const size_t step = step_count - 1 - i;
    for (const PrecompState& ps : pres) {
      ps.pre->EvalStep(step, ps.q->x(), ps.q->y(), &f);
    }
    for (LiveState& st : lives) {
      const Fp& xq = st.q->x();
      const Fp& yq = st.q->y();
      const Fp& px = st.p->x();
      const Fp& py = st.p->y();
      if (!st.v_infinity) {
        if (st.vy.IsZero()) {
          st.v_infinity = true;
        } else {
          Fp z2 = st.vz.Sqr();
          Fp z4 = z2.Sqr();
          Fp z3 = st.vz * z2;
          Fp x2 = st.vx.Sqr();
          Fp m = x2.Double() + x2 + z4;
          Fp y2 = st.vy.Sqr();
          Fp line_re = m * (xq * z2 + st.vx) - y2.Double();
          Fp line_im = (st.vy * z3).Double() * yq;
          f = f * Fp2(line_re, line_im);
          Fp s = (st.vx * y2).Double().Double();
          Fp x_new = m.Sqr() - s.Double();
          Fp y4_8 = y2.Sqr().Double().Double().Double();
          Fp y_new = m * (s - x_new) - y4_8;
          Fp z_new = (st.vy * st.vz).Double();
          st.vx = x_new;
          st.vy = y_new;
          st.vz = z_new;
        }
      }
      if (digit != 0) {
        const Fp& sy = digit > 0 ? py : st.py_neg;
        if (st.v_infinity) {
          st.vx = px;
          st.vy = sy;
          st.vz = Fp::One(ctx);
          st.v_infinity = false;
        } else {
          Fp z2 = st.vz.Sqr();
          Fp z3 = st.vz * z2;
          Fp u2 = px * z2;
          Fp s2 = sy * z3;
          Fp h = u2 - st.vx;
          Fp r = s2 - st.vy;
          if (h.IsZero()) {
            st.v_infinity = true;
          } else {
            Fp zh = st.vz * h;
            Fp line_re = r * (xq + px) - sy * zh;
            Fp line_im = zh * yq;
            f = f * Fp2(line_re, line_im);
            Fp h2 = h.Sqr();
            Fp h3 = h2 * h;
            Fp xh2 = st.vx * h2;
            Fp x_new = r.Sqr() - h3 - xh2.Double();
            Fp y_new = r * (xh2 - x_new) - st.vy * h3;
            st.vx = x_new;
            st.vy = y_new;
            st.vz = zh;
          }
        }
      }
    }
  }
  return FinalExponentiation(f);
}

}  // namespace mws::math
