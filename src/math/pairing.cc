#include "src/math/pairing.h"

#include <cassert>

namespace mws::math {

util::Result<std::unique_ptr<const TypeAParams>> TypeAParams::Create(
    const BigInt& p, const BigInt& q, const BigInt& gen_x,
    const BigInt& gen_y, util::RandomSource& rng) {
  if ((p % BigInt(4)) != BigInt(3)) {
    return util::Status::InvalidArgument("p must be 3 mod 4");
  }
  BigInt h, rem;
  BigInt::DivMod(p + BigInt(1), q, &h, &rem);
  if (!rem.IsZero()) {
    return util::Status::InvalidArgument("q must divide p+1");
  }
  if (!BigInt::IsProbablePrime(p, rng, 16) ||
      !BigInt::IsProbablePrime(q, rng, 16)) {
    return util::Status::InvalidArgument("p and q must be prime");
  }
  auto params = std::unique_ptr<TypeAParams>(new TypeAParams());
  params->p_ = p;
  params->q_ = q;
  params->h_ = h;
  MWS_ASSIGN_OR_RETURN(params->ctx_, FpCtx::Create(p));
  const FpCtx* ctx = params->ctx_.get();
  params->curve_ = std::make_unique<CurveGroup>(ctx, Fp::One(ctx),
                                                Fp::Zero(ctx));
  EcPoint gen(Fp::FromBigInt(ctx, gen_x), Fp::FromBigInt(ctx, gen_y));
  if (!params->curve_->IsOnCurve(gen)) {
    return util::Status::InvalidArgument("generator not on curve");
  }
  if (!params->curve_->ScalarMul(q, gen).is_infinity() || gen.is_infinity()) {
    return util::Status::InvalidArgument("generator does not have order q");
  }
  params->generator_ = gen;
  params->BuildPrecomputation();
  return std::unique_ptr<const TypeAParams>(std::move(params));
}

util::Result<std::unique_ptr<const TypeAParams>> TypeAParams::Generate(
    size_t qbits, size_t pbits, util::RandomSource& rng) {
  if (qbits + 3 > pbits) {
    return util::Status::InvalidArgument("pbits must exceed qbits");
  }
  const BigInt q = BigInt::GeneratePrime(rng, qbits);
  // p = h*q - 1 with h == 0 mod 4 (so p == 3 mod 4, because h*q == 0 mod 4
  // and p = h*q - 1 == -1 == 3 mod 4).
  const size_t hbits = pbits - qbits;
  BigInt p;
  for (;;) {
    BigInt h = BigInt::RandomBits(rng, hbits);
    // Force h to a multiple of 4 (clear the low two bits, keep top bit).
    h = (h >> 2) << 2;
    if (h.IsZero()) continue;
    p = h * q - BigInt(1);
    if (p.BitLength() != pbits) continue;
    if (BigInt::IsProbablePrime(p, rng, 32)) break;
  }

  auto ctx_result = FpCtx::Create(p);
  if (!ctx_result.ok()) return ctx_result.status();
  auto params = std::unique_ptr<TypeAParams>(new TypeAParams());
  params->p_ = p;
  params->q_ = q;
  params->h_ = (p + BigInt(1)) / q;
  params->ctx_ = std::move(ctx_result).value();
  const FpCtx* ctx = params->ctx_.get();
  params->curve_ = std::make_unique<CurveGroup>(ctx, Fp::One(ctx),
                                                Fp::Zero(ctx));
  params->generator_ = params->RandomPoint(rng);
  params->BuildPrecomputation();
  return std::unique_ptr<const TypeAParams>(std::move(params));
}

void TypeAParams::BuildPrecomputation() {
  gen_table_ =
      std::make_unique<FixedBaseTable>(*curve_, generator_, q_);
  gen_pairing_ = std::make_unique<PairingPrecomp>(*this, generator_);
}

util::Result<EcPoint> TypeAParams::LiftX(const Fp& x) const {
  Fp rhs = x.Sqr() * x + x;  // x^3 + x (a=1, b=0)
  auto y = rhs.Sqrt();
  if (!y.ok()) return y.status();
  EcPoint candidate(x, y.value());
  EcPoint point = curve_->ScalarMul(h_, candidate);
  if (point.is_infinity()) {
    return util::Status::InvalidArgument("cofactor multiple is identity");
  }
  return point;
}

EcPoint TypeAParams::RandomPoint(util::RandomSource& rng) const {
  for (;;) {
    Fp x = Fp::FromBigInt(ctx_.get(), BigInt::RandomBelow(rng, p_));
    auto point = LiftX(x);
    if (!point.ok()) continue;
    // Randomize the sign of y (LiftX returns a fixed square root).
    if (rng.UniformU64(2) == 1) return curve_->Negate(point.value());
    return point.value();
  }
}

BigInt TypeAParams::RandomScalar(util::RandomSource& rng) const {
  return BigInt::RandomBelow(rng, q_ - BigInt(1)) + BigInt(1);
}

Fp2 TypeAParams::MillerLoop(const EcPoint& point_p,
                            const EcPoint& point_q) const {
  const FpCtx* ctx = ctx_.get();
  if (point_p.is_infinity() || point_q.is_infinity()) return Fp2::One(ctx);

  // Evaluate lines at the distorted point phi(Q) = (-xq, i*yq). A
  // non-vertical line through V with slope lambda evaluates to
  //   (lambda*(xq + xv) - yv) + i*yq        (element of F_p2).
  // Vertical lines evaluate inside F_p and are erased by the final
  // exponentiation (denominator elimination) — and so is any F_p* scalar
  // multiple of a line value, which lets the whole loop run
  // inversion-free: V is kept in Jacobian coordinates (x = X/Z^2,
  // y = Y/Z^3) and each line is scaled by a point-dependent element of
  // F_p* to clear the denominators.
  const Fp& xq = point_q.x();
  const Fp& yq = point_q.y();
  const Fp& px = point_p.x();
  const Fp& py = point_p.y();

  Fp2 f = Fp2::One(ctx);
  // V = P in Jacobian coordinates; v_infinity tracks Z == 0.
  Fp vx = px;
  Fp vy = py;
  Fp vz = Fp::One(ctx);
  bool v_infinity = false;

  const size_t bits = q_.BitLength();
  for (size_t i = bits - 1; i-- > 0;) {
    f = f.Sqr();
    if (!v_infinity) {
      if (vy.IsZero()) {
        // V is 2-torsion: the tangent is vertical, 2V = infinity.
        // (Unreachable for prime q, kept for safety.)
        v_infinity = true;
      } else {
        // Tangent line at V, scaled by 2*yv*Z^6:
        //   (3X^2 + Z^4)(xq*Z^2 + X) - 2Y^2 + i * 2*Y*Z^3*yq.
        Fp z2 = vz.Sqr();
        Fp z4 = z2.Sqr();
        Fp z3 = vz * z2;
        Fp x2 = vx.Sqr();
        Fp m = x2.Double() + x2 + z4;  // 3X^2 + a*Z^4 with a = 1
        Fp y2 = vy.Sqr();
        Fp line_re = m * (xq * z2 + vx) - y2.Double();
        Fp line_im = (vy * z3).Double() * yq;
        f = f * Fp2(line_re, line_im);
        // Jacobian doubling (general a; m already holds M).
        Fp s = (vx * y2).Double().Double();      // 4*X*Y^2
        Fp x_new = m.Sqr() - s.Double();
        Fp y4_8 = y2.Sqr().Double().Double().Double();  // 8*Y^4
        Fp y_new = m * (s - x_new) - y4_8;
        Fp z_new = (vy * vz).Double();
        vx = x_new;
        vy = y_new;
        vz = z_new;
      }
    }
    if (q_.Bit(i)) {
      if (v_infinity) {
        // O + P = P; the "line" is trivial.
        vx = px;
        vy = py;
        vz = Fp::One(ctx);
        v_infinity = false;
      } else {
        // Mixed addition V (Jacobian) + P (affine).
        Fp z2 = vz.Sqr();
        Fp z3 = vz * z2;
        Fp u2 = px * z2;   // xp * Z^2
        Fp s2 = py * z3;   // yp * Z^3
        Fp h = u2 - vx;    // Z^2 * (xp - xv)
        Fp r = s2 - vy;    // Z^3 * (yp - yv)
        if (h.IsZero()) {
          // V == -P (V == P cannot occur mid-loop for prime q): the
          // chord is the vertical through P; sum is infinity.
          v_infinity = true;
        } else {
          // Chord through V and P, scaled by Z*H = Z^3*(xp - xv):
          //   R*(xq + xp) - yp*Z*H + i * Z*H*yq.
          Fp zh = vz * h;
          Fp line_re = r * (xq + px) - py * zh;
          Fp line_im = zh * yq;
          f = f * Fp2(line_re, line_im);
          Fp h2 = h.Sqr();
          Fp h3 = h2 * h;
          Fp xh2 = vx * h2;
          Fp x_new = r.Sqr() - h3 - xh2.Double();
          Fp y_new = r * (xh2 - x_new) - vy * h3;
          vx = x_new;
          vy = y_new;
          vz = zh;
        }
      }
    }
  }
  return f;
}

Fp2 TypeAParams::FinalExponentiation(const Fp2& z) const {
  // (p^2 - 1)/q = (p - 1) * h.  z^(p-1) = conj(z) / z because the
  // Frobenius on F_p2 is conjugation.
  Fp2 t = z.Conjugate() * z.Inv();
  return t.Pow(h_);
}

Fp2 TypeAParams::Pairing(const EcPoint& point_p,
                         const EcPoint& point_q) const {
  return FinalExponentiation(MillerLoop(point_p, point_q));
}

}  // namespace mws::math
