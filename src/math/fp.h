#ifndef MWSIBE_MATH_FP_H_
#define MWSIBE_MATH_FP_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/math/bigint.h"
#include "src/util/result.h"

namespace mws::math {

/// Largest supported field size: 16 limbs = 1024 bits (the kLarge
/// preset). Elements store limbs inline, so field arithmetic is
/// allocation-free — this is the pairing's hot path.
inline constexpr size_t kMaxFpLimbs = 16;

/// Fields narrower than this square via the fused MontMul (its single
/// accumulation pass beats the dedicated kernel's extra memory traffic
/// on tiny operands); at and above it Fp::Sqr uses FpCtx::MontSqr.
/// The crossover is compiler-sensitive: under the default -O2
/// (RelWithDebInfo) build the kernel runs MontMul(a,a) in ~0.85x the
/// time at 8 limbs and ~0.75x at 16; under -O3 GCC compiles the fused
/// MontMul well enough that 8 limbs flips to a slight loss (~1.1x)
/// and 16 limbs is parity. The threshold is tuned for the default
/// build. Both paths are bit-identical (property-tested per preset).
inline constexpr size_t kMontSqrMinLimbs = 5;

namespace fp_internal {

using u128 = unsigned __int128;

/// Limb-array helpers shared by the inline kernels below and fp.cc.
/// Header-inline so Montgomery arithmetic fully inlines into callers —
/// the cross-TU call per field op otherwise costs as much as the
/// multiply itself on small fields.

inline int CmpN(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = n; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

/// out = a - b; returns the final borrow (1 if a < b).
inline uint64_t SubN(const uint64_t* a, const uint64_t* b, uint64_t* out,
                     size_t n) {
  uint64_t borrow = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t ai = a[i];
    uint64_t bi = b[i];
    uint64_t d = ai - bi;
    uint64_t b2 = ai < bi ? 1 : 0;
    uint64_t d2 = d - borrow;
    if (d < borrow) b2 = 1;
    out[i] = d2;
    borrow = b2;
  }
  return borrow;
}

/// out = a + b; returns the final carry.
inline uint64_t AddN(const uint64_t* a, const uint64_t* b, uint64_t* out,
                     size_t n) {
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    u128 sum = static_cast<u128>(a[i]) + b[i] + carry;
    out[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  return carry;
}

}  // namespace fp_internal

/// Shared context for arithmetic modulo an odd prime p, holding the
/// Montgomery constants. Field elements (`Fp`) reference a context by
/// pointer; the context must outlive every element created from it
/// (in this library contexts are owned by pairing parameter objects).
class FpCtx {
 public:
  /// Pre: p is an odd prime >= 3 of at most kMaxFpLimbs limbs.
  /// (Primality is the caller's contract; only oddness is checked.)
  static util::Result<std::unique_ptr<const FpCtx>> Create(const BigInt& p);

  const BigInt& modulus() const { return p_; }
  size_t nlimbs() const { return nlimbs_; }
  size_t byte_length() const { return (p_.BitLength() + 7) / 8; }

  /// Montgomery product out = a*b*R^-1 mod p. All spans have nlimbs()
  /// limbs; `out` may alias `a` or `b`. Inline (fused CIOS): the whole
  /// kernel inlines into callers, which roughly halves the cost of a
  /// field multiplication versus an out-of-line call.
  void MontMul(const uint64_t* a, const uint64_t* b, uint64_t* out) const {
    using fp_internal::u128;
    const size_t n = nlimbs_;
    uint64_t t[kMaxFpLimbs + 1];
    for (size_t j = 0; j <= n; ++j) t[j] = 0;
    for (size_t i = 0; i < n; ++i) {
      // One fused pass: t = (t + a[i]*b + u*p) / 2^64, where u is chosen
      // so the low limb of the sum vanishes. The invariant t < 2p holds
      // after every pass, so one conditional subtraction finishes.
      const uint64_t ai = a[i];
      u128 cur = static_cast<u128>(ai) * b[0] + t[0];
      uint64_t carry_a = static_cast<uint64_t>(cur >> 64);
      const uint64_t u = static_cast<uint64_t>(cur) * n0inv_;
      u128 cur2 = static_cast<u128>(u) * p_limbs_[0] +
                  static_cast<uint64_t>(cur);
      uint64_t carry_m = static_cast<uint64_t>(cur2 >> 64);
      for (size_t j = 1; j < n; ++j) {
        cur = static_cast<u128>(ai) * b[j] + t[j] + carry_a;
        carry_a = static_cast<uint64_t>(cur >> 64);
        cur2 = static_cast<u128>(u) * p_limbs_[j] +
               static_cast<uint64_t>(cur) + carry_m;
        t[j - 1] = static_cast<uint64_t>(cur2);
        carry_m = static_cast<uint64_t>(cur2 >> 64);
      }
      cur = static_cast<u128>(t[n]) + carry_a + carry_m;
      t[n - 1] = static_cast<uint64_t>(cur);
      t[n] = static_cast<uint64_t>(cur >> 64);
    }
    if (t[n] != 0 || GeqP(t)) {
      fp_internal::SubN(t, p_limbs_.data(), out, n);
    } else {
      for (size_t j = 0; j < n; ++j) out[j] = t[j];
    }
  }

  /// Montgomery squaring out = a*a*R^-1 mod p (SOS: square-then-reduce).
  /// Bit-identical to MontMul(a, a) — both produce the canonical
  /// representative — but computes only the n(n+1)/2 distinct limb
  /// products, doubling the cross terms with one shift pass, so the
  /// multiply count drops from 2n^2 to ~3n^2/2 + n. The separate
  /// reduction phase keeps the accumulator exact (full 2n limbs), and
  /// T + m*p < p^2 + R*p gives T' < 2p: one conditional subtraction
  /// finishes. `out` may alias `a`. Below kMontSqrMinLimbs the fused
  /// single-pass MontMul wins (less memory traffic); Fp::Sqr dispatches
  /// on that threshold.
  void MontSqr(const uint64_t* a, uint64_t* out) const {
    using fp_internal::u128;
    const size_t n = nlimbs_;
    uint64_t t[2 * kMaxFpLimbs + 1];
    for (size_t j = 0; j <= 2 * n; ++j) t[j] = 0;
    // Distinct cross products a[i]*a[j], i < j, each computed once.
    for (size_t i = 0; i < n; ++i) {
      uint64_t carry = 0;
      for (size_t j = i + 1; j < n; ++j) {
        u128 cur = static_cast<u128>(a[i]) * a[j] + t[i + j] + carry;
        t[i + j] = static_cast<uint64_t>(cur);
        carry = static_cast<uint64_t>(cur >> 64);
      }
      t[i + n] = carry;
    }
    // Double the cross terms: t[1..2n-1] <<= 1.
    uint64_t top = 0;
    for (size_t j = 1; j < 2 * n; ++j) {
      uint64_t v = t[j];
      t[j] = (v << 1) | top;
      top = v >> 63;
    }
    t[2 * n] = top;
    // Add the diagonal squares a[i]^2 at positions 2i, 2i+1.
    uint64_t c = 0;
    for (size_t i = 0; i < n; ++i) {
      u128 sq = static_cast<u128>(a[i]) * a[i];
      u128 lo = static_cast<u128>(t[2 * i]) + static_cast<uint64_t>(sq) + c;
      t[2 * i] = static_cast<uint64_t>(lo);
      u128 hi = static_cast<u128>(t[2 * i + 1]) +
                static_cast<uint64_t>(sq >> 64) +
                static_cast<uint64_t>(lo >> 64);
      t[2 * i + 1] = static_cast<uint64_t>(hi);
      c = static_cast<uint64_t>(hi >> 64);
    }
    t[2 * n] += c;
    // Montgomery reduction: n passes of t += u*p; t >>= 64 (realized as
    // a moving window — pass i reduces limb i in place).
    for (size_t i = 0; i < n; ++i) {
      const uint64_t u = t[i] * n0inv_;
      uint64_t carry = 0;
      for (size_t j = 0; j < n; ++j) {
        u128 cur = static_cast<u128>(u) * p_limbs_[j] + t[i + j] + carry;
        t[i + j] = static_cast<uint64_t>(cur);
        carry = static_cast<uint64_t>(cur >> 64);
      }
      for (size_t k = i + n; carry != 0; ++k) {
        u128 cur = static_cast<u128>(t[k]) + carry;
        t[k] = static_cast<uint64_t>(cur);
        carry = static_cast<uint64_t>(cur >> 64);
      }
    }
    if (t[2 * n] != 0 || GeqP(t + n)) {
      fp_internal::SubN(t + n, p_limbs_.data(), out, n);
    } else {
      for (size_t j = 0; j < n; ++j) out[j] = t[j + n];
    }
  }

  /// out = (a+b) mod p.
  void AddMod(const uint64_t* a, const uint64_t* b, uint64_t* out) const {
    const size_t n = nlimbs_;
    uint64_t carry = fp_internal::AddN(a, b, out, n);
    if (carry || GeqP(out)) {
      fp_internal::SubN(out, p_limbs_.data(), out, n);
    }
  }

  /// out = (a-b) mod p.
  void SubMod(const uint64_t* a, const uint64_t* b, uint64_t* out) const {
    const size_t n = nlimbs_;
    if (fp_internal::SubN(a, b, out, n)) {
      fp_internal::AddN(out, p_limbs_.data(), out, n);
    }
  }

  // --- Lazy-reduction (accumulate-then-reduce) primitives --------------

  /// One Montgomery reduction of a two-product accumulation, as a single
  /// fused pass: out = (x1*y1 + x2*y2) * R^-1 mod p, canonical. The
  /// products never materialize in double width — each CIOS pass folds
  /// one limb of both multiplicands plus the reduction row into the
  /// running accumulator (invariant t < 3p: the pass numerator is at
  /// most 3p - 1 + (2^64-1)*(y1 + y2 + p) < 2^64 * 3p for y1 + y2 <=
  /// 2p). This is the workhorse of the lazy-reduction F_p2 arithmetic:
  /// each output coefficient of a complex product is exactly one such
  /// call. `out` may alias any input.
  void MontMulAcc2(const uint64_t* x1, const uint64_t* y1, const uint64_t* x2,
                   const uint64_t* y2, uint64_t* out) const {
    using fp_internal::u128;
    const size_t n = nlimbs_;
    uint64_t t[kMaxFpLimbs + 1];
    for (size_t j = 0; j <= n; ++j) t[j] = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t xa = x1[i];
      const uint64_t xb = x2[i];
      u128 c1 = static_cast<u128>(xa) * y1[0] + t[0];
      u128 c2 = static_cast<u128>(xb) * y2[0] + static_cast<uint64_t>(c1);
      uint64_t ca = static_cast<uint64_t>(c1 >> 64);
      uint64_t cb = static_cast<uint64_t>(c2 >> 64);
      const uint64_t u = static_cast<uint64_t>(c2) * n0inv_;
      u128 c3 = static_cast<u128>(u) * p_limbs_[0] +
                static_cast<uint64_t>(c2);
      uint64_t cm = static_cast<uint64_t>(c3 >> 64);
      for (size_t j = 1; j < n; ++j) {
        c1 = static_cast<u128>(xa) * y1[j] + t[j] + ca;
        ca = static_cast<uint64_t>(c1 >> 64);
        c2 = static_cast<u128>(xb) * y2[j] + static_cast<uint64_t>(c1) + cb;
        cb = static_cast<uint64_t>(c2 >> 64);
        c3 = static_cast<u128>(u) * p_limbs_[j] + static_cast<uint64_t>(c2) +
             cm;
        t[j - 1] = static_cast<uint64_t>(c3);
        cm = static_cast<uint64_t>(c3 >> 64);
      }
      u128 cur = static_cast<u128>(t[n]) + ca + cb + cm;
      t[n - 1] = static_cast<uint64_t>(cur);
      t[n] = static_cast<uint64_t>(cur >> 64);
    }
    // t < 3p: at most two conditional subtractions make it canonical.
    while (t[n] != 0 || GeqP(t)) {
      t[n] -= fp_internal::SubN(t, p_limbs_.data(), t, n);
    }
    for (size_t j = 0; j < n; ++j) out[j] = t[j];
  }

  /// Lazy-reduction complex product over F_p2 = F_p[i]/(i^2+1), on raw
  /// Montgomery limbs: (or + i*oi) = (ar + i*ai) * (br + i*bi) with
  /// exactly one Montgomery reduction per output coefficient —
  /// re = ar*br + ai*(p-bi) and im = ar*bi + ai*br, each a MontMulAcc2
  /// chain (the subtraction folds into a negated multiplicand; bi == 0
  /// gives p - bi = p, which the t < 3p invariant still accommodates).
  /// The schoolbook form costs the same limb products as Karatsuba with
  /// per-product reduction but drops one full reduction and all the
  /// cross-term add/sub passes. Outputs may alias inputs.
  void Fp2MulLazy(const uint64_t* ar, const uint64_t* ai, const uint64_t* br,
                  const uint64_t* bi, uint64_t* or_, uint64_t* oi) const {
    const size_t n = nlimbs_;
    uint64_t nbi[kMaxFpLimbs];
    uint64_t re[kMaxFpLimbs];
    fp_internal::SubN(p_limbs_.data(), bi, nbi, n);
    MontMulAcc2(ar, br, ai, nbi, re);
    MontMulAcc2(ar, bi, ai, br, oi);
    for (size_t j = 0; j < n; ++j) or_[j] = re[j];
  }

  /// Complex squaring: (or + i*oi) = (ar + i*ai)^2 with one Montgomery
  /// reduction per output coefficient: re = (a+b)(a-b), im = 2*(a*b),
  /// each coefficient a single fused CIOS chain. Outputs may alias
  /// inputs.
  void Fp2SqrLazy(const uint64_t* ar, const uint64_t* ai, uint64_t* or_,
                  uint64_t* oi) const {
    // d is zero-initialized only to satisfy -Wmaybe-uninitialized (GCC
    // cannot see that SubMod writes the nlimbs() limbs MontMul reads).
    uint64_t s[kMaxFpLimbs], d[kMaxFpLimbs] = {0}, c[kMaxFpLimbs];
    AddMod(ar, ai, s);
    SubMod(ar, ai, d);
    MontMul(ar, ai, c);
    MontMul(s, d, or_);
    AddMod(c, c, oi);
  }

  /// out = a^-1 * R^2 ... precisely: given a in Montgomery form, writes
  /// the Montgomery form of the inverse. Pre: a != 0. Allocation-free
  /// binary extended GCD.
  void InvMod(const uint64_t* a, uint64_t* out) const;

  const uint64_t* r2() const { return r2_.data(); }
  const uint64_t* one_mont() const { return one_mont_.data(); }
  const uint64_t* p_limbs() const { return p_limbs_.data(); }

 private:
  FpCtx() = default;

  /// True if a >= p (limb comparison).
  bool GeqP(const uint64_t* a) const {
    return fp_internal::CmpN(a, p_limbs_.data(), nlimbs_) >= 0;
  }

  BigInt p_;
  size_t nlimbs_ = 0;
  uint64_t n0inv_ = 0;  // -p^-1 mod 2^64
  std::array<uint64_t, kMaxFpLimbs> p_limbs_{};
  std::array<uint64_t, kMaxFpLimbs> r2_{};        // R^2 mod p
  std::array<uint64_t, kMaxFpLimbs> one_mont_{};  // R mod p
};

/// An element of F_p in Montgomery representation. Value type with
/// inline storage; trivially copyable. All binary operations require
/// both operands to share a context.
class Fp {
 public:
  /// An invalid element; using it in arithmetic asserts. Exists so
  /// containers and out-params are expressible.
  Fp() : ctx_(nullptr), v_{} {}

  static Fp Zero(const FpCtx* ctx);
  static Fp One(const FpCtx* ctx);
  /// Reduces `v` mod p and converts to Montgomery form.
  static Fp FromBigInt(const FpCtx* ctx, const BigInt& v);
  static Fp FromU64(const FpCtx* ctx, uint64_t v);
  /// Interprets big-endian bytes as an integer, reduces mod p.
  static Fp FromBytes(const FpCtx* ctx, const util::Bytes& b);

  BigInt ToBigInt() const;
  /// Fixed-width big-endian encoding (ctx->byte_length() bytes).
  util::Bytes ToBytes() const;

  bool valid() const { return ctx_ != nullptr; }
  const FpCtx* ctx() const { return ctx_; }
  bool IsZero() const;
  bool IsOne() const;

  Fp operator+(const Fp& o) const {
    assert(valid() && ctx_ == o.ctx_);
    Fp out(ctx_);
    ctx_->AddMod(v_.data(), o.v_.data(), out.v_.data());
    return out;
  }
  Fp operator-(const Fp& o) const {
    assert(valid() && ctx_ == o.ctx_);
    Fp out(ctx_);
    ctx_->SubMod(v_.data(), o.v_.data(), out.v_.data());
    return out;
  }
  Fp operator*(const Fp& o) const {
    assert(valid() && ctx_ == o.ctx_);
    Fp out(ctx_);
    ctx_->MontMul(v_.data(), o.v_.data(), out.v_.data());
    return out;
  }
  Fp Neg() const;
  Fp Sqr() const {
    assert(valid());
    Fp out(ctx_);
    if (ctx_->nlimbs() >= kMontSqrMinLimbs) {
      ctx_->MontSqr(v_.data(), out.v_.data());
    } else {
      ctx_->MontMul(v_.data(), v_.data(), out.v_.data());
    }
    return out;
  }
  /// a^e mod p, e >= 0.
  Fp Pow(const BigInt& e) const;
  /// Multiplicative inverse. Pre: non-zero.
  Fp Inv() const;
  /// +1 if QR, -1 if non-residue, 0 if zero.
  int Legendre() const;
  /// Square root (p == 3 mod 4 fast path); fails for non-residues.
  util::Result<Fp> Sqrt() const;
  /// Doubling without general multiplication.
  Fp Double() const { return *this + *this; }

  friend bool operator==(const Fp& a, const Fp& b) {
    if (a.ctx_ != b.ctx_) return false;
    if (a.ctx_ == nullptr) return true;
    for (size_t i = 0; i < a.ctx_->nlimbs(); ++i) {
      if (a.v_[i] != b.v_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Fp& a, const Fp& b) { return !(a == b); }

 private:
  friend class Fp2;  // lazy-reduction kernels write limbs directly

  /// Leaves the limbs uninitialized: every arithmetic routine writes all
  /// nlimbs() limbs before the value escapes, and nothing reads beyond
  /// nlimbs(). Skipping the 128-byte zero-fill here is a measurable win
  /// in the pairing hot loops.
  explicit Fp(const FpCtx* ctx) : ctx_(ctx) {}

  const FpCtx* ctx_;
  std::array<uint64_t, kMaxFpLimbs> v_;  // Montgomery form
};

}  // namespace mws::math

#endif  // MWSIBE_MATH_FP_H_
