#ifndef MWSIBE_MATH_FP_H_
#define MWSIBE_MATH_FP_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/math/bigint.h"
#include "src/util/result.h"

namespace mws::math {

/// Largest supported field size: 16 limbs = 1024 bits (the kLarge
/// preset). Elements store limbs inline, so field arithmetic is
/// allocation-free — this is the pairing's hot path.
inline constexpr size_t kMaxFpLimbs = 16;

/// Shared context for arithmetic modulo an odd prime p, holding the
/// Montgomery constants. Field elements (`Fp`) reference a context by
/// pointer; the context must outlive every element created from it
/// (in this library contexts are owned by pairing parameter objects).
class FpCtx {
 public:
  /// Pre: p is an odd prime >= 3 of at most kMaxFpLimbs limbs.
  /// (Primality is the caller's contract; only oddness is checked.)
  static util::Result<std::unique_ptr<const FpCtx>> Create(const BigInt& p);

  const BigInt& modulus() const { return p_; }
  size_t nlimbs() const { return nlimbs_; }
  size_t byte_length() const { return (p_.BitLength() + 7) / 8; }

  /// Montgomery product out = a*b*R^-1 mod p. All spans have nlimbs()
  /// limbs; `out` may alias `a` or `b`.
  void MontMul(const uint64_t* a, const uint64_t* b, uint64_t* out) const;

  /// out = (a+b) mod p.
  void AddMod(const uint64_t* a, const uint64_t* b, uint64_t* out) const;
  /// out = (a-b) mod p.
  void SubMod(const uint64_t* a, const uint64_t* b, uint64_t* out) const;

  /// out = a^-1 * R^2 ... precisely: given a in Montgomery form, writes
  /// the Montgomery form of the inverse. Pre: a != 0. Allocation-free
  /// binary extended GCD.
  void InvMod(const uint64_t* a, uint64_t* out) const;

  const uint64_t* r2() const { return r2_.data(); }
  const uint64_t* one_mont() const { return one_mont_.data(); }
  const uint64_t* p_limbs() const { return p_limbs_.data(); }

 private:
  FpCtx() = default;

  /// True if a >= p (limb comparison).
  bool GeqP(const uint64_t* a) const;

  BigInt p_;
  size_t nlimbs_ = 0;
  uint64_t n0inv_ = 0;  // -p^-1 mod 2^64
  std::array<uint64_t, kMaxFpLimbs> p_limbs_{};
  std::array<uint64_t, kMaxFpLimbs> r2_{};        // R^2 mod p
  std::array<uint64_t, kMaxFpLimbs> one_mont_{};  // R mod p
};

/// An element of F_p in Montgomery representation. Value type with
/// inline storage; trivially copyable. All binary operations require
/// both operands to share a context.
class Fp {
 public:
  /// An invalid element; using it in arithmetic asserts. Exists so
  /// containers and out-params are expressible.
  Fp() : ctx_(nullptr), v_{} {}

  static Fp Zero(const FpCtx* ctx);
  static Fp One(const FpCtx* ctx);
  /// Reduces `v` mod p and converts to Montgomery form.
  static Fp FromBigInt(const FpCtx* ctx, const BigInt& v);
  static Fp FromU64(const FpCtx* ctx, uint64_t v);
  /// Interprets big-endian bytes as an integer, reduces mod p.
  static Fp FromBytes(const FpCtx* ctx, const util::Bytes& b);

  BigInt ToBigInt() const;
  /// Fixed-width big-endian encoding (ctx->byte_length() bytes).
  util::Bytes ToBytes() const;

  bool valid() const { return ctx_ != nullptr; }
  const FpCtx* ctx() const { return ctx_; }
  bool IsZero() const;
  bool IsOne() const;

  Fp operator+(const Fp& o) const;
  Fp operator-(const Fp& o) const;
  Fp operator*(const Fp& o) const;
  Fp Neg() const;
  Fp Sqr() const { return *this * *this; }
  /// a^e mod p, e >= 0.
  Fp Pow(const BigInt& e) const;
  /// Multiplicative inverse. Pre: non-zero.
  Fp Inv() const;
  /// +1 if QR, -1 if non-residue, 0 if zero.
  int Legendre() const;
  /// Square root (p == 3 mod 4 fast path); fails for non-residues.
  util::Result<Fp> Sqrt() const;
  /// Doubling without general multiplication.
  Fp Double() const { return *this + *this; }

  friend bool operator==(const Fp& a, const Fp& b) {
    if (a.ctx_ != b.ctx_) return false;
    if (a.ctx_ == nullptr) return true;
    for (size_t i = 0; i < a.ctx_->nlimbs(); ++i) {
      if (a.v_[i] != b.v_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Fp& a, const Fp& b) { return !(a == b); }

 private:
  explicit Fp(const FpCtx* ctx) : ctx_(ctx), v_{} {}

  const FpCtx* ctx_;
  std::array<uint64_t, kMaxFpLimbs> v_;  // Montgomery form
};

}  // namespace mws::math

#endif  // MWSIBE_MATH_FP_H_
