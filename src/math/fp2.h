#ifndef MWSIBE_MATH_FP2_H_
#define MWSIBE_MATH_FP2_H_

#include "src/math/fp.h"

namespace mws::math {

/// The quadratic extension F_p2 = F_p[i] / (i^2 + 1).
///
/// Valid whenever -1 is a non-residue mod p, which holds for the type-A
/// pairing primes (p == 3 mod 4). Elements are a + b*i.
class Fp2 {
 public:
  Fp2() = default;
  Fp2(Fp a, Fp b) : a_(std::move(a)), b_(std::move(b)) {}

  static Fp2 Zero(const FpCtx* ctx) {
    return Fp2(Fp::Zero(ctx), Fp::Zero(ctx));
  }
  static Fp2 One(const FpCtx* ctx) { return Fp2(Fp::One(ctx), Fp::Zero(ctx)); }
  /// Embeds an F_p element as (a, 0).
  static Fp2 FromFp(const Fp& a) { return Fp2(a, Fp::Zero(a.ctx())); }

  const Fp& re() const { return a_; }
  const Fp& im() const { return b_; }
  const FpCtx* ctx() const { return a_.ctx(); }
  bool valid() const { return a_.valid(); }

  bool IsZero() const { return a_.IsZero() && b_.IsZero(); }
  bool IsOne() const { return a_.IsOne() && b_.IsZero(); }

  Fp2 operator+(const Fp2& o) const { return Fp2(a_ + o.a_, b_ + o.b_); }
  Fp2 operator-(const Fp2& o) const { return Fp2(a_ - o.a_, b_ - o.b_); }

  /// Karatsuba product with lazy reduction: three double-width limb
  /// products and one Montgomery reduction per output coefficient (the
  /// reference path below reduces after every F_p product). Bit-identical
  /// to MulReference — both reduce to the canonical representative.
  Fp2 operator*(const Fp2& o) const {
    const FpCtx* c = ctx();
    Fp2 out{Fp(c), Fp(c)};
    c->Fp2MulLazy(a_.v_.data(), b_.v_.data(), o.a_.v_.data(), o.b_.v_.data(),
                  out.a_.v_.data(), out.b_.v_.data());
    return out;
  }

  Fp2 Sqr() const {
    const FpCtx* c = ctx();
    Fp2 out{Fp(c), Fp(c)};
    c->Fp2SqrLazy(a_.v_.data(), b_.v_.data(), out.a_.v_.data(),
                  out.b_.v_.data());
    return out;
  }

  /// Reference product, one Montgomery reduction per F_p multiplication:
  /// (a+bi)(c+di) = (ac-bd) + ((a+b)(c+d)-ac-bd)i. Retained as the
  /// property-test baseline for the lazy-reduction operator*.
  Fp2 MulReference(const Fp2& o) const {
    Fp ac = a_ * o.a_;
    Fp bd = b_ * o.b_;
    Fp cross = (a_ + b_) * (o.a_ + o.b_) - ac - bd;
    return Fp2(ac - bd, cross);
  }

  /// Reference squaring: (a+bi)^2 = (a+b)(a-b) + (2ab)i.
  Fp2 SqrReference() const {
    Fp re = (a_ + b_) * (a_ - b_);
    Fp im = (a_ * b_).Double();
    return Fp2(re, im);
  }

  Fp2 Neg() const { return Fp2(a_.Neg(), b_.Neg()); }
  Fp2 Conjugate() const { return Fp2(a_, b_.Neg()); }

  /// Multiplicative inverse: conj / norm. Pre: non-zero.
  Fp2 Inv() const {
    Fp norm = a_.Sqr() + b_.Sqr();
    Fp ninv = norm.Inv();
    return Fp2(a_ * ninv, b_.Neg() * ninv);
  }

  /// x^e for e >= 0. Sliding-window (w=4) exponentiation: ~n squarings
  /// plus ~n/5 multiplications for an n-bit exponent, versus n/2
  /// multiplications for the binary ladder. Falls back to the binary
  /// ladder when the exponent is too short to amortize the 8-entry
  /// odd-power table.
  Fp2 Pow(const BigInt& e) const {
    constexpr size_t kWindow = 4;
    const size_t bits = e.BitLength();
    if (bits <= 2 * kWindow * kWindow) return PowBinary(e);
    // Odd powers x^1, x^3, ..., x^15.
    Fp2 odd[size_t{1} << (kWindow - 1)];
    odd[0] = *this;
    Fp2 x2 = Sqr();
    for (size_t i = 1; i < (size_t{1} << (kWindow - 1)); ++i) {
      odd[i] = odd[i - 1] * x2;
    }
    Fp2 result = One(ctx());
    size_t i = bits;
    while (i > 0) {
      if (!e.Bit(i - 1)) {
        result = result.Sqr();
        --i;
        continue;
      }
      // Window [j, i) ending at a set bit, at most kWindow wide.
      size_t j = (i >= kWindow) ? i - kWindow : 0;
      while (!e.Bit(j)) ++j;
      size_t value = 0;
      for (size_t t = i; t-- > j;) value = (value << 1) | (e.Bit(t) ? 1 : 0);
      for (size_t t = 0; t < i - j; ++t) result = result.Sqr();
      result = result * odd[value >> 1];
      i = j;
    }
    return result;
  }

  /// Reference binary square-and-multiply ladder; baseline for property
  /// tests and the `--no-precompute` benchmark path.
  Fp2 PowBinary(const BigInt& e) const {
    Fp2 result = One(ctx());
    for (size_t i = e.BitLength(); i-- > 0;) {
      result = result.Sqr();
      if (e.Bit(i)) result = result * *this;
    }
    return result;
  }

  /// Fixed-width encoding: re || im (each ctx->byte_length() bytes).
  util::Bytes ToBytes() const {
    util::Bytes out = a_.ToBytes();
    util::Bytes imb = b_.ToBytes();
    out.insert(out.end(), imb.begin(), imb.end());
    return out;
  }

  friend bool operator==(const Fp2& x, const Fp2& y) {
    return x.a_ == y.a_ && x.b_ == y.b_;
  }
  friend bool operator!=(const Fp2& x, const Fp2& y) { return !(x == y); }

 private:
  Fp a_;
  Fp b_;
};

}  // namespace mws::math

#endif  // MWSIBE_MATH_FP2_H_
