#ifndef MWSIBE_OBS_TRACE_H_
#define MWSIBE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/clock.h"
#include "src/util/result.h"

namespace mws::obs {

class Tracer;

/// One finished (or still-open) span as retained by the tracer.
/// `parent_id == 0` marks a trace root; all spans of one request share a
/// `trace_id`. Timestamps come from the tracer's injected util::Clock,
/// so simulated-clock tests see deterministic durations.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  std::string name;
  int64_t start_micros = 0;
  int64_t end_micros = 0;

  int64_t DurationMicros() const { return end_micros - start_micros; }
};

/// RAII handle for an in-flight span; finishes (records the end time and
/// commits the record to the tracer ring) on destruction or explicit
/// End(). Default-constructed and moved-from spans are inert, which lets
/// instrumented code run identically with tracing disabled.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  /// Starts a child span (same trace id, this span as parent). Inert
  /// parent produces an inert child.
  Span Child(std::string name);

  /// Finishes the span now; further calls are no-ops.
  void End();

  bool active() const { return tracer_ != nullptr; }
  uint64_t trace_id() const { return record_.trace_id; }
  uint64_t span_id() const { return record_.span_id; }
  uint64_t parent_id() const { return record_.parent_id; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanRecord record) : tracer_(tracer), record_(std::move(record)) {}

  Tracer* tracer_ = nullptr;
  SpanRecord record_;
};

/// Collects finished spans into a bounded ring buffer (oldest evicted
/// first). Span creation is two atomic increments plus one clock read;
/// finishing takes the ring mutex briefly. Thread-safe.
class Tracer {
 public:
  /// `clock` must outlive the tracer; defaults to the system clock.
  explicit Tracer(const util::Clock* clock = nullptr, size_t capacity = 1024);

  /// Starts a new root span with a fresh trace id.
  Span StartTrace(std::string name);

  /// Null-tolerant helper: inert span when `tracer` is null.
  static Span MaybeStartTrace(Tracer* tracer, std::string name) {
    return tracer == nullptr ? Span() : tracer->StartTrace(std::move(name));
  }

  /// Finished spans, oldest first. At most `capacity` entries.
  std::vector<SpanRecord> Snapshot() const;

  /// Total spans ever started / finished spans evicted by the ring.
  uint64_t spans_started() const { return started_.load(std::memory_order_relaxed); }
  uint64_t spans_dropped() const { return dropped_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_; }

 private:
  friend class Span;
  void Finish(SpanRecord record);
  int64_t Now() const { return clock_->NowMicros(); }
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  void NoteStarted() { started_.fetch_add(1, std::memory_order_relaxed); }

  const util::Clock* clock_;
  const size_t capacity_;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> dropped_{0};

  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  size_t ring_next_ = 0;  ///< Insertion cursor once the ring is full.
};

/// Canonical serialization of a span list (STATS wire payload).
util::Bytes EncodeSpans(const std::vector<SpanRecord>& spans);
util::Result<std::vector<SpanRecord>> DecodeSpans(const util::Bytes& data);

}  // namespace mws::obs

#endif  // MWSIBE_OBS_TRACE_H_
