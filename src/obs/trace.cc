#include "src/obs/trace.h"

#include <utility>

#include "src/util/serde.h"

namespace mws::obs {

// --- Span ---

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_), record_(std::move(other.record_)) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
  }
  return *this;
}

Span Span::Child(std::string name) {
  if (tracer_ == nullptr) return Span();
  SpanRecord child;
  child.trace_id = record_.trace_id;
  child.span_id = tracer_->NextId();
  child.parent_id = record_.span_id;
  child.name = std::move(name);
  child.start_micros = tracer_->Now();
  tracer_->NoteStarted();
  return Span(tracer_, std::move(child));
}

void Span::End() {
  if (tracer_ == nullptr) return;
  record_.end_micros = tracer_->Now();
  tracer_->Finish(std::move(record_));
  tracer_ = nullptr;
}

// --- Tracer ---

Tracer::Tracer(const util::Clock* clock, size_t capacity)
    : clock_(clock != nullptr ? clock : &util::SystemClock::Instance()),
      capacity_(capacity == 0 ? 1 : capacity) {}

Span Tracer::StartTrace(std::string name) {
  SpanRecord root;
  root.trace_id = NextId();
  root.span_id = NextId();
  root.parent_id = 0;
  root.name = std::move(name);
  root.start_micros = Now();
  NoteStarted();
  return Span(this, std::move(root));
}

void Tracer::Finish(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[ring_next_] = std::move(record);
  ring_next_ = (ring_next_ + 1) % capacity_;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // ring_next_ points at the oldest entry once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  return out;
}

// --- Serialization ---

util::Bytes EncodeSpans(const std::vector<SpanRecord>& spans) {
  util::Writer w;
  w.PutU32(static_cast<uint32_t>(spans.size()));
  for (const SpanRecord& s : spans) {
    w.PutU64(s.trace_id);
    w.PutU64(s.span_id);
    w.PutU64(s.parent_id);
    w.PutString(s.name);
    w.PutU64(static_cast<uint64_t>(s.start_micros));
    w.PutU64(static_cast<uint64_t>(s.end_micros));
  }
  return w.Take();
}

util::Result<std::vector<SpanRecord>> DecodeSpans(const util::Bytes& data) {
  util::Reader r(data);
  uint32_t n = 0;
  if (!r.GetU32(&n)) {
    return util::Status::InvalidArgument("malformed span list");
  }
  std::vector<SpanRecord> out;
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    SpanRecord s;
    uint64_t start = 0;
    uint64_t end = 0;
    r.GetU64(&s.trace_id);
    r.GetU64(&s.span_id);
    r.GetU64(&s.parent_id);
    r.GetString(&s.name);
    r.GetU64(&start);
    r.GetU64(&end);
    s.start_micros = static_cast<int64_t>(start);
    s.end_micros = static_cast<int64_t>(end);
    out.push_back(std::move(s));
  }
  if (!r.Done()) {
    return util::Status::InvalidArgument("malformed span list");
  }
  return out;
}

}  // namespace mws::obs
