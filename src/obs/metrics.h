#ifndef MWSIBE_OBS_METRICS_H_
#define MWSIBE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace mws::obs {

/// Monotonically increasing event count. All mutators are lock-free
/// relaxed atomics: instruments sit on the request hot path, so an
/// increment must cost no more than an uncontended atomic add.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (queue depth, active sessions).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of a Histogram, safe to read without touching the
/// live instrument. Percentiles interpolate linearly inside the bucket
/// that contains the requested rank, so Percentile(p) is monotone in p
/// (p50 <= p95 <= p99 always holds).
struct HistogramSnapshot {
  /// Must match Histogram::kBuckets; kept here so a decoded snapshot is
  /// self-contained.
  static constexpr size_t kBuckets = 48;

  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  ///< Meaningful only when count > 0.
  uint64_t max = 0;
  std::array<uint64_t, kBuckets> buckets{};

  /// p in [0, 1]. Returns 0 when empty.
  double Percentile(double p) const;
  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
};

/// Fixed-bucket log-scale histogram of non-negative integer samples
/// (latencies in microseconds, sizes in bytes). Bucket i > 0 covers
/// [2^(i-1), 2^i - 1]; bucket 0 covers exactly {0}; the last bucket is
/// open-ended. Recording is wait-free: one relaxed add per sample plus
/// CAS loops for min/max.
class Histogram {
 public:
  static constexpr size_t kBuckets = HistogramSnapshot::kBuckets;

  void Record(uint64_t value);
  HistogramSnapshot Snapshot() const;

  /// Zeroes every bucket and the count/sum/min/max accumulators. Not
  /// atomic with respect to concurrent Record: a racing sample may land
  /// partially before and partially after the reset (same caveat as
  /// Snapshot). Intended for quiesced phase boundaries — a bench sweep
  /// that reuses one registry across points resets between them so each
  /// point's distribution stands alone.
  void Reset();

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  /// Index of the bucket holding `value` (0 for 0, bit_width otherwise,
  /// clamped to the last bucket).
  static size_t BucketIndex(uint64_t value);
  /// Smallest value mapping to bucket `i`.
  static uint64_t BucketLowerBound(size_t i);
  /// Largest value mapping to bucket `i` (UINT64_MAX for the last).
  static uint64_t BucketUpperBound(size_t i);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// One metric label, e.g. {"op", "mws.deposit"}.
using Label = std::pair<std::string, std::string>;

/// Canonical full name: `name{k1=v1,k2=v2}` with labels sorted by key.
/// The empty label set yields `name` unchanged.
std::string JoinLabels(const std::string& name, std::vector<Label> labels);

/// Decoded registry contents: flat (full name -> value) views suitable
/// for serialization, formatting, and assertions in tests. Entries are
/// sorted by name (std::map iteration order at snapshot time).
struct RegistrySnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Canonical serialization (src/util/serde.h conventions).
  util::Bytes Encode() const;
  static util::Result<RegistrySnapshot> Decode(const util::Bytes& data);

  /// Human-readable one-metric-per-line dump.
  std::string ToText() const;
  /// JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

  /// Lookup helpers; null when the full name is absent.
  const uint64_t* counter(const std::string& full_name) const;
  const int64_t* gauge(const std::string& full_name) const;
  const HistogramSnapshot* histogram(const std::string& full_name) const;
};

/// Owns every instrument in a process (or scenario). Lookup takes a
/// shared lock and returns a stable pointer: instruments are never
/// deleted while the registry lives, so callers resolve once at
/// construction and increment lock-free afterwards.
///
/// Thread-safe. All methods may be called concurrently.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, std::vector<Label> labels = {});
  Gauge* GetGauge(const std::string& name, std::vector<Label> labels = {});
  Histogram* GetHistogram(const std::string& name, std::vector<Label> labels = {});

  RegistrySnapshot Snapshot() const;

  /// Snapshot, then zero every counter and histogram (gauges keep their
  /// level: they describe current state, not a rate over the interval).
  /// The two steps are not one atomic cut — samples recorded during the
  /// call may appear in both the returned snapshot and the next
  /// interval, or in neither. Use at quiesced phase boundaries (bench
  /// sweep points, simulator runs), where it turns one long-lived
  /// registry into per-interval readings.
  RegistrySnapshot SnapshotAndReset();

  /// Process-wide default instance (tools and ad-hoc callers; scenario
  /// code injects its own registry instead).
  static Registry& Global();

 private:
  template <typename T>
  T* GetOrCreate(std::map<std::string, std::unique_ptr<T>>* table,
                 const std::string& name, std::vector<Label>&& labels);

  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Monotonic (steady-clock) microseconds, for latency measurement. Not
/// comparable to util::Clock::NowMicros() epoch timestamps.
int64_t SteadyNowMicros();

/// Records elapsed wall time into a histogram on destruction. Null
/// histogram means fully inert (no clock read), so call sites need no
/// `if (metrics)` branches.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : histogram_(h), start_(h ? SteadyNowMicros() : 0) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      int64_t elapsed = SteadyNowMicros() - start_;
      histogram_->Record(elapsed < 0 ? 0 : static_cast<uint64_t>(elapsed));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  int64_t start_;
};

}  // namespace mws::obs

#endif  // MWSIBE_OBS_METRICS_H_
