#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>

#include "src/util/serde.h"

namespace mws::obs {
namespace {

// Serialization format version; bump on incompatible layout changes.
constexpr uint8_t kSnapshotVersion = 1;

util::Status Malformed(const char* what) {
  return util::Status::InvalidArgument(std::string("malformed ") + what);
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

// --- Histogram ---

size_t Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  size_t i = static_cast<size_t>(std::bit_width(value));
  return std::min(i, kBuckets - 1);
}

uint64_t Histogram::BucketLowerBound(size_t i) {
  if (i == 0) return 0;
  return uint64_t{1} << (i - 1);
}

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= kBuckets - 1) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t observed = min_.load(std::memory_order_relaxed);
  while (value < observed &&
         !min_.compare_exchange_weak(observed, value, std::memory_order_relaxed)) {
  }
  observed = max_.load(std::memory_order_relaxed);
  while (value > observed &&
         !max_.compare_exchange_weak(observed, value, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (size_t i = 0; i < kBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  // Relaxed loads: a snapshot taken concurrently with Record may see a
  // bucket increment without the matching count (or vice versa); readers
  // treat the bucket array as the source of truth for percentiles.
  for (size_t i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  uint64_t lo = min_.load(std::memory_order_relaxed);
  snap.min = lo == UINT64_MAX ? 0 : lo;
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::Percentile(double p) const {
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the requested sample, 1-based; walk the cumulative
  // distribution and interpolate linearly inside the owning bucket.
  double rank = p * static_cast<double>(total);
  if (rank < 1.0) rank = 1.0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    uint64_t next = cumulative + buckets[i];
    if (rank <= static_cast<double>(next)) {
      double lo = static_cast<double>(Histogram::BucketLowerBound(i));
      // Clamp the open-ended last bucket to the observed max so the
      // interpolation target is finite.
      double hi = i >= kBuckets - 1 ? static_cast<double>(std::max(max, min))
                                    : static_cast<double>(Histogram::BucketUpperBound(i));
      if (hi < lo) hi = lo;
      double within = (rank - static_cast<double>(cumulative)) /
                      static_cast<double>(buckets[i]);
      return lo + (hi - lo) * within;
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

// --- Labels ---

std::string JoinLabels(const std::string& name, std::vector<Label> labels) {
  if (labels.empty()) return name;
  std::sort(labels.begin(), labels.end());
  std::string out = name;
  out.push_back('{');
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += labels[i].first;
    out.push_back('=');
    out += labels[i].second;
  }
  out.push_back('}');
  return out;
}

// --- Registry ---

template <typename T>
T* Registry::GetOrCreate(std::map<std::string, std::unique_ptr<T>>* table,
                         const std::string& name, std::vector<Label>&& labels) {
  std::string full = JoinLabels(name, std::move(labels));
  {
    std::shared_lock lock(mutex_);
    auto it = table->find(full);
    if (it != table->end()) return it->second.get();
  }
  std::unique_lock lock(mutex_);
  auto [it, inserted] = table->try_emplace(std::move(full), std::make_unique<T>());
  return it->second.get();
}

Counter* Registry::GetCounter(const std::string& name, std::vector<Label> labels) {
  return GetOrCreate(&counters_, name, std::move(labels));
}

Gauge* Registry::GetGauge(const std::string& name, std::vector<Label> labels) {
  return GetOrCreate(&gauges_, name, std::move(labels));
}

Histogram* Registry::GetHistogram(const std::string& name, std::vector<Label> labels) {
  return GetOrCreate(&histograms_, name, std::move(labels));
}

RegistrySnapshot Registry::Snapshot() const {
  RegistrySnapshot snap;
  std::shared_lock lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->Value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->Value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

RegistrySnapshot Registry::SnapshotAndReset() {
  RegistrySnapshot snap;
  std::shared_lock lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->Value());
    c->Reset();
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->Value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
    h->Reset();
  }
  return snap;
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();
  return *instance;
}

// --- RegistrySnapshot ---

util::Bytes RegistrySnapshot::Encode() const {
  util::Writer w;
  w.PutU8(kSnapshotVersion);
  w.PutU32(static_cast<uint32_t>(counters.size()));
  for (const auto& [name, value] : counters) {
    w.PutString(name);
    w.PutU64(value);
  }
  w.PutU32(static_cast<uint32_t>(gauges.size()));
  for (const auto& [name, value] : gauges) {
    w.PutString(name);
    w.PutU64(static_cast<uint64_t>(value));
  }
  w.PutU32(static_cast<uint32_t>(histograms.size()));
  for (const auto& [name, h] : histograms) {
    w.PutString(name);
    w.PutU64(h.count);
    w.PutU64(h.sum);
    w.PutU64(h.min);
    w.PutU64(h.max);
    w.PutU32(static_cast<uint32_t>(h.buckets.size()));
    for (uint64_t b : h.buckets) w.PutU64(b);
  }
  return w.Take();
}

util::Result<RegistrySnapshot> RegistrySnapshot::Decode(const util::Bytes& data) {
  util::Reader r(data);
  RegistrySnapshot snap;
  uint8_t version = 0;
  if (!r.GetU8(&version) || version != kSnapshotVersion) {
    return Malformed("RegistrySnapshot version");
  }
  uint32_t n = 0;
  if (!r.GetU32(&n)) return Malformed("RegistrySnapshot");
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string name;
    uint64_t value = 0;
    r.GetString(&name);
    r.GetU64(&value);
    snap.counters.emplace_back(std::move(name), value);
  }
  if (!r.GetU32(&n)) return Malformed("RegistrySnapshot");
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string name;
    uint64_t value = 0;
    r.GetString(&name);
    r.GetU64(&value);
    snap.gauges.emplace_back(std::move(name), static_cast<int64_t>(value));
  }
  if (!r.GetU32(&n)) return Malformed("RegistrySnapshot");
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string name;
    HistogramSnapshot h;
    uint32_t buckets = 0;
    r.GetString(&name);
    r.GetU64(&h.count);
    r.GetU64(&h.sum);
    r.GetU64(&h.min);
    r.GetU64(&h.max);
    if (!r.GetU32(&buckets) || buckets != h.buckets.size()) {
      return Malformed("RegistrySnapshot bucket count");
    }
    for (uint32_t b = 0; b < buckets; ++b) r.GetU64(&h.buckets[b]);
    snap.histograms.emplace_back(std::move(name), h);
  }
  if (!r.Done()) return Malformed("RegistrySnapshot");
  return snap;
}

std::string RegistrySnapshot::ToText() const {
  std::string out;
  char buf[256];
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "counter %s %" PRIu64 "\n", name.c_str(), value);
    out += buf;
  }
  for (const auto& [name, value] : gauges) {
    std::snprintf(buf, sizeof(buf), "gauge %s %" PRId64 "\n", name.c_str(), value);
    out += buf;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "histogram %s count=%" PRIu64 " mean=%.1f min=%" PRIu64
                  " max=%" PRIu64 " p50=%.1f p95=%.1f p99=%.1f\n",
                  name.c_str(), h.count, h.Mean(), h.min, h.max,
                  h.Percentile(0.50), h.Percentile(0.95), h.Percentile(0.99));
    out += buf;
  }
  return out;
}

std::string RegistrySnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  char buf[128];
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    std::snprintf(buf, sizeof(buf), ":%" PRIu64, value);
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    std::snprintf(buf, sizeof(buf), ":%" PRId64, value);
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    std::snprintf(buf, sizeof(buf),
                  ":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
                  ",\"max\":%" PRIu64 ",\"mean\":%.3f,\"p50\":%.3f,\"p95\":%.3f,"
                  "\"p99\":%.3f}",
                  h.count, h.sum, h.min, h.max, h.Mean(), h.Percentile(0.50),
                  h.Percentile(0.95), h.Percentile(0.99));
    out += buf;
  }
  out += "}}";
  return out;
}

const uint64_t* RegistrySnapshot::counter(const std::string& full_name) const {
  for (const auto& [name, value] : counters) {
    if (name == full_name) return &value;
  }
  return nullptr;
}

const int64_t* RegistrySnapshot::gauge(const std::string& full_name) const {
  for (const auto& [name, value] : gauges) {
    if (name == full_name) return &value;
  }
  return nullptr;
}

const HistogramSnapshot* RegistrySnapshot::histogram(const std::string& full_name) const {
  for (const auto& [name, h] : histograms) {
    if (name == full_name) return &h;
  }
  return nullptr;
}

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace mws::obs
