#include "src/client/receiving_client.h"

#include <atomic>
#include <map>
#include <optional>
#include <thread>

#include "src/crypto/modes.h"
#include "src/crypto/sealed_box.h"
#include "src/math/precompute.h"
#include "src/wire/auth.h"

namespace mws::client {

ReceivingClient::ReceivingClient(std::string identity, std::string password,
                                 crypto::RsaKeyPair rsa_keys,
                                 const ibe::SystemParams& params,
                                 crypto::CipherKind cipher,
                                 crypto::CipherKind dem,
                                 wire::Transport* transport,
                                 const util::Clock* clock,
                                 util::RandomSource* rng)
    : identity_(std::move(identity)),
      password_hash_(wire::HashPassword(password)),
      rsa_keys_(std::move(rsa_keys)),
      params_(params),
      cipher_(cipher),
      sealer_(*params.group, dem),
      transport_(transport),
      clock_(clock),
      rng_(rng) {}

util::Status ReceivingClient::Authenticate() {
  wire::RcAuthPlain plain;
  plain.rc_identity = identity_;
  plain.timestamp_micros = clock_->NowMicros();
  plain.client_nonce = rng_->Generate(16);

  util::Bytes auth_key = wire::DeriveAuthKey(password_hash_, cipher_);
  auto sealed = crypto::CbcEncrypt(cipher_, auth_key, plain.Encode(), *rng_);
  MWS_RETURN_IF_ERROR(sealed.status());

  wire::RcAuthRequest request;
  request.rc_identity = identity_;
  request.rsa_public_key = crypto::SerializeRsaPublicKey(rsa_keys_.public_key);
  request.auth_ciphertext = std::move(sealed).value();

  auto raw = transport_->Call("mws.auth", request.Encode());
  MWS_RETURN_IF_ERROR(raw.status());
  auto response = wire::RcAuthResponse::Decode(raw.value());
  MWS_RETURN_IF_ERROR(response.status());
  mws_session_ = response->session_id;
  return util::Status::Ok();
}

util::Result<wire::RetrieveResponse> ReceivingClient::Retrieve(
    uint64_t after_id, int64_t from_micros, int64_t to_micros) {
  if (mws_session_.empty()) {
    return util::Status::FailedPrecondition("not authenticated with MWS");
  }
  wire::RetrieveRequest request;
  request.session_id = mws_session_;
  request.after_message_id = after_id;
  request.from_micros = from_micros;
  request.to_micros = to_micros;
  MWS_ASSIGN_OR_RETURN(util::Bytes raw,
                       transport_->Call("mws.retrieve", request.Encode()));
  return wire::RetrieveResponse::Decode(raw);
}

util::Result<wire::RetrieveChunkResponse> ReceivingClient::RetrieveChunk(
    uint64_t after_id, int64_t from_micros, int64_t to_micros,
    uint32_t max_messages) {
  if (mws_session_.empty()) {
    return util::Status::FailedPrecondition("not authenticated with MWS");
  }
  wire::RetrieveChunkRequest request;
  request.session_id = mws_session_;
  request.after_message_id = after_id;
  request.from_micros = from_micros;
  request.to_micros = to_micros;
  request.max_messages = max_messages;
  MWS_ASSIGN_OR_RETURN(
      util::Bytes raw, transport_->Call("mws.retrieve_chunk", request.Encode()));
  return wire::RetrieveChunkResponse::Decode(raw);
}

util::Result<wire::RetrieveResponse> ReceivingClient::RetrieveChunked(
    uint64_t after_id, int64_t from_micros, int64_t to_micros,
    uint32_t chunk_size) {
  if (chunk_size == 0) {
    return util::Status::InvalidArgument("chunk_size must be positive");
  }
  wire::RetrieveResponse out;
  uint64_t cursor = after_id;
  for (;;) {
    MWS_ASSIGN_OR_RETURN(
        wire::RetrieveChunkResponse chunk,
        RetrieveChunk(cursor, from_micros, to_micros, chunk_size));
    for (wire::RetrievedMessage& m : chunk.messages) {
      out.messages.push_back(std::move(m));
    }
    if (!chunk.has_more) {
      out.token = std::move(chunk.token);
      return out;
    }
    if (chunk.next_after_id <= cursor) {
      // A stuck cursor would loop forever; treat it as a server bug.
      return util::Status::Internal("retrieve chunk cursor did not advance");
    }
    cursor = chunk.next_after_id;
  }
}

util::Status ReceivingClient::AuthenticateWithPkg(const util::Bytes& token) {
  // Open the token with our RSA private key to recover SecK_RC-PKG and
  // the (opaque) ticket.
  auto token_bytes =
      crypto::OpenSealedBox(rsa_keys_.private_key, cipher_, token);
  MWS_RETURN_IF_ERROR(token_bytes.status());
  auto token_plain = wire::TokenPlain::Decode(token_bytes.value());
  MWS_RETURN_IF_ERROR(token_plain.status());
  pkg_session_key_ = token_plain->session_key;

  // Build the authenticator E(SecK_RC-PKG, IDRC || T).
  wire::AuthenticatorPlain auth;
  auth.rc_identity = identity_;
  auth.timestamp_micros = clock_->NowMicros();
  util::Bytes auth_key = wire::DeriveChannelKey(pkg_session_key_, cipher_,
                                                "rc-pkg-authenticator");
  auto sealed_auth =
      crypto::CbcEncrypt(cipher_, auth_key, auth.Encode(), *rng_);
  MWS_RETURN_IF_ERROR(sealed_auth.status());

  wire::PkgAuthRequest request;
  request.rc_identity = identity_;
  request.ticket = token_plain->ticket;
  request.authenticator = std::move(sealed_auth).value();

  auto raw = transport_->Call("pkg.auth", request.Encode());
  MWS_RETURN_IF_ERROR(raw.status());
  auto response = wire::PkgAuthResponse::Decode(raw.value());
  MWS_RETURN_IF_ERROR(response.status());
  pkg_session_ = response->session_id;
  return util::Status::Ok();
}

util::Result<ibe::IbePrivateKey> ReceivingClient::RequestKey(
    uint64_t aid, const util::Bytes& nonce) {
  if (pkg_session_.empty()) {
    return util::Status::FailedPrecondition("not authenticated with PKG");
  }
  wire::KeyRequest request;
  request.session_id = pkg_session_;
  request.aid = aid;
  request.nonce = nonce;
  MWS_ASSIGN_OR_RETURN(util::Bytes raw,
                       transport_->Call("pkg.extract", request.Encode()));
  MWS_ASSIGN_OR_RETURN(wire::KeyResponse response,
                       wire::KeyResponse::Decode(raw));

  util::Bytes channel_key = wire::DeriveChannelKey(pkg_session_key_, cipher_,
                                                   "rc-pkg-keydelivery");
  MWS_ASSIGN_OR_RETURN(
      util::Bytes key_bytes,
      crypto::CbcDecrypt(cipher_, channel_key,
                         response.encrypted_private_key));
  MWS_ASSIGN_OR_RETURN(
      math::EcPoint d,
      params_.group->curve().DeserializeCompressed(key_bytes));
  return ibe::IbePrivateKey{d};
}

util::Result<std::vector<util::Result<ibe::IbePrivateKey>>>
ReceivingClient::RequestKeysBatch(
    const std::vector<std::pair<uint64_t, util::Bytes>>& items) {
  if (pkg_session_.empty()) {
    return util::Status::FailedPrecondition("not authenticated with PKG");
  }
  wire::KeyBatchRequest request;
  request.session_id = pkg_session_;
  request.items = items;
  MWS_ASSIGN_OR_RETURN(
      util::Bytes raw, transport_->Call("pkg.extract_batch", request.Encode()));
  MWS_ASSIGN_OR_RETURN(wire::KeyBatchResponse response,
                       wire::KeyBatchResponse::Decode(raw));
  if (response.items.size() != items.size()) {
    return util::Status::Internal("batch response size mismatch");
  }
  util::Bytes channel_key = wire::DeriveChannelKey(pkg_session_key_, cipher_,
                                                   "rc-pkg-keydelivery");
  std::vector<util::Result<ibe::IbePrivateKey>> out;
  out.reserve(response.items.size());
  for (const wire::KeyBatchResponse::Item& item : response.items) {
    if (!item.ok) {
      out.push_back(util::Status::PermissionDenied(
          "extraction refused: " + util::StringFromBytes(item.payload)));
      continue;
    }
    auto key_bytes = crypto::CbcDecrypt(cipher_, channel_key, item.payload);
    if (!key_bytes.ok()) {
      out.push_back(key_bytes.status());
      continue;
    }
    auto d = params_.group->curve().DeserializeCompressed(key_bytes.value());
    if (!d.ok()) {
      out.push_back(d.status());
      continue;
    }
    out.push_back(ibe::IbePrivateKey{d.value()});
  }
  return out;
}

util::Result<util::Bytes> ReceivingClient::DecryptMessage(
    const wire::RetrievedMessage& m, const ibe::IbePrivateKey& key) {
  MWS_ASSIGN_OR_RETURN(math::EcPoint u,
                       params_.group->curve().Deserialize(m.u));
  return sealer_.Open(key, ibe::HybridCiphertext{u, m.ciphertext});
}

util::Result<std::vector<ReceivedMessage>> ReceivingClient::DecryptAll(
    const std::vector<wire::RetrievedMessage>& messages) {
  if (messages.empty()) return std::vector<ReceivedMessage>{};
  std::vector<std::pair<uint64_t, util::Bytes>> items;
  items.reserve(messages.size());
  for (const wire::RetrievedMessage& m : messages) {
    items.emplace_back(m.aid, m.nonce);
  }
  MWS_ASSIGN_OR_RETURN(std::vector<util::Result<ibe::IbePrivateKey>> keys,
                       RequestKeysBatch(items));
  for (const auto& key : keys) MWS_RETURN_IF_ERROR(key.status());

  // Group message indices by extracted key point. Under nonce-per-message
  // keying the groups are usually singletons, but retransmitted or
  // multi-chunk duplicates of one (AID, nonce) do share a key — and the
  // Miller-loop lines of e(d, ·) depend on d alone, so such a group pays
  // the point arithmetic once via a shared PairingPrecomp.
  std::map<util::Bytes, std::vector<size_t>> groups;
  for (size_t i = 0; i < messages.size(); ++i) {
    groups[params_.group->curve().SerializeCompressed(keys[i].value().d)]
        .push_back(i);
  }
  std::vector<std::vector<size_t>> group_list;
  group_list.reserve(groups.size());
  for (auto& [serialized, indices] : groups) {
    group_list.push_back(std::move(indices));
  }

  // Fan the pairing-heavy decryptions across a small worker pool. Slots
  // are disjoint per group, so workers never touch the same entry.
  std::vector<util::Result<util::Bytes>> plains(
      messages.size(), util::Status::Internal("not decrypted"));
  std::atomic<size_t> next_group{0};
  auto work = [&] {
    for (;;) {
      size_t g = next_group.fetch_add(1, std::memory_order_relaxed);
      if (g >= group_list.size()) return;
      const std::vector<size_t>& indices = group_list[g];
      const ibe::IbePrivateKey& key = keys[indices[0]].value();
      if (indices.size() < 2) {
        size_t i = indices[0];
        auto u = params_.group->curve().Deserialize(messages[i].u);
        if (!u.ok()) {
          plains[i] = u.status();
          continue;
        }
        plains[i] = sealer_.Open(
            key, ibe::HybridCiphertext{u.value(), messages[i].ciphertext});
        continue;
      }
      // Shared-key group: the Miller lines of e(d, .) depend on d alone,
      // so one PairingPrecomp serves every message, and PairingMany runs
      // the whole group through one batched final exponentiation (the
      // per-value easy-part inversions collapse into a single field
      // inversion via Montgomery's trick).
      math::PairingPrecomp precomp(*params_.group, key.d);
      std::vector<size_t> ok_indices;
      std::vector<math::EcPoint> us;
      ok_indices.reserve(indices.size());
      us.reserve(indices.size());
      for (size_t i : indices) {
        auto u = params_.group->curve().Deserialize(messages[i].u);
        if (!u.ok()) {
          plains[i] = u.status();
          continue;
        }
        ok_indices.push_back(i);
        us.push_back(u.value());
      }
      std::vector<math::Fp2> gs = precomp.PairingMany(us);
      for (size_t k = 0; k < ok_indices.size(); ++k) {
        size_t i = ok_indices[k];
        plains[i] = sealer_.OpenWithPairing(
            gs[k], ibe::HybridCiphertext{us[k], messages[i].ciphertext});
      }
    }
  };
  unsigned hw = std::thread::hardware_concurrency();
  size_t worker_count = std::min(
      {group_list.size(), static_cast<size_t>(hw == 0 ? 1 : hw), size_t{4}});
  if (worker_count <= 1) {
    work();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(worker_count - 1);
    for (size_t t = 0; t + 1 < worker_count; ++t) threads.emplace_back(work);
    work();
    for (std::thread& t : threads) t.join();
  }

  std::vector<ReceivedMessage> out;
  out.reserve(messages.size());
  for (size_t i = 0; i < messages.size(); ++i) {
    MWS_RETURN_IF_ERROR(plains[i].status());
    out.push_back(ReceivedMessage{messages[i].message_id, messages[i].aid,
                                  std::move(plains[i]).value()});
  }
  return out;
}

util::Result<std::vector<ReceivedMessage>> ReceivingClient::FetchAndDecrypt(
    uint64_t after_id, int64_t from_micros, int64_t to_micros) {
  MWS_RETURN_IF_ERROR(Authenticate());
  MWS_ASSIGN_OR_RETURN(wire::RetrieveResponse retrieved,
                       Retrieve(after_id, from_micros, to_micros));
  MWS_RETURN_IF_ERROR(AuthenticateWithPkg(retrieved.token));
  std::vector<ReceivedMessage> out;
  out.reserve(retrieved.messages.size());
  if (retrieved.messages.size() > 1) {
    // Amortize the PKG round trips: one batched extraction.
    std::vector<std::pair<uint64_t, util::Bytes>> items;
    items.reserve(retrieved.messages.size());
    for (const wire::RetrievedMessage& m : retrieved.messages) {
      items.emplace_back(m.aid, m.nonce);
    }
    MWS_ASSIGN_OR_RETURN(auto keys, RequestKeysBatch(items));
    for (size_t i = 0; i < retrieved.messages.size(); ++i) {
      const wire::RetrievedMessage& m = retrieved.messages[i];
      MWS_RETURN_IF_ERROR(keys[i].status());
      MWS_ASSIGN_OR_RETURN(util::Bytes plaintext,
                           DecryptMessage(m, keys[i].value()));
      out.push_back(
          ReceivedMessage{m.message_id, m.aid, std::move(plaintext)});
    }
    return out;
  }
  for (const wire::RetrievedMessage& m : retrieved.messages) {
    MWS_ASSIGN_OR_RETURN(ibe::IbePrivateKey key, RequestKey(m.aid, m.nonce));
    MWS_ASSIGN_OR_RETURN(util::Bytes plaintext, DecryptMessage(m, key));
    out.push_back(ReceivedMessage{m.message_id, m.aid, std::move(plaintext)});
  }
  return out;
}

util::Result<std::vector<ReceivedMessage>>
ReceivingClient::FetchAndDecryptBulk(uint64_t after_id, int64_t from_micros,
                                     int64_t to_micros, uint32_t chunk_size) {
  MWS_RETURN_IF_ERROR(Authenticate());
  MWS_ASSIGN_OR_RETURN(
      wire::RetrieveResponse retrieved,
      RetrieveChunked(after_id, from_micros, to_micros, chunk_size));
  MWS_RETURN_IF_ERROR(AuthenticateWithPkg(retrieved.token));
  return DecryptAll(retrieved.messages);
}

}  // namespace mws::client
