#include "src/client/receiving_client.h"

#include "src/crypto/modes.h"
#include "src/crypto/sealed_box.h"
#include "src/wire/auth.h"

namespace mws::client {

ReceivingClient::ReceivingClient(std::string identity, std::string password,
                                 crypto::RsaKeyPair rsa_keys,
                                 const ibe::SystemParams& params,
                                 crypto::CipherKind cipher,
                                 crypto::CipherKind dem,
                                 wire::Transport* transport,
                                 const util::Clock* clock,
                                 util::RandomSource* rng)
    : identity_(std::move(identity)),
      password_hash_(wire::HashPassword(password)),
      rsa_keys_(std::move(rsa_keys)),
      params_(params),
      cipher_(cipher),
      sealer_(*params.group, dem),
      transport_(transport),
      clock_(clock),
      rng_(rng) {}

util::Status ReceivingClient::Authenticate() {
  wire::RcAuthPlain plain;
  plain.rc_identity = identity_;
  plain.timestamp_micros = clock_->NowMicros();
  plain.client_nonce = rng_->Generate(16);

  util::Bytes auth_key = wire::DeriveAuthKey(password_hash_, cipher_);
  auto sealed = crypto::CbcEncrypt(cipher_, auth_key, plain.Encode(), *rng_);
  MWS_RETURN_IF_ERROR(sealed.status());

  wire::RcAuthRequest request;
  request.rc_identity = identity_;
  request.rsa_public_key = crypto::SerializeRsaPublicKey(rsa_keys_.public_key);
  request.auth_ciphertext = std::move(sealed).value();

  auto raw = transport_->Call("mws.auth", request.Encode());
  MWS_RETURN_IF_ERROR(raw.status());
  auto response = wire::RcAuthResponse::Decode(raw.value());
  MWS_RETURN_IF_ERROR(response.status());
  mws_session_ = response->session_id;
  return util::Status::Ok();
}

util::Result<wire::RetrieveResponse> ReceivingClient::Retrieve(
    uint64_t after_id, int64_t from_micros, int64_t to_micros) {
  if (mws_session_.empty()) {
    return util::Status::FailedPrecondition("not authenticated with MWS");
  }
  wire::RetrieveRequest request;
  request.session_id = mws_session_;
  request.after_message_id = after_id;
  request.from_micros = from_micros;
  request.to_micros = to_micros;
  MWS_ASSIGN_OR_RETURN(util::Bytes raw,
                       transport_->Call("mws.retrieve", request.Encode()));
  return wire::RetrieveResponse::Decode(raw);
}

util::Status ReceivingClient::AuthenticateWithPkg(const util::Bytes& token) {
  // Open the token with our RSA private key to recover SecK_RC-PKG and
  // the (opaque) ticket.
  auto token_bytes =
      crypto::OpenSealedBox(rsa_keys_.private_key, cipher_, token);
  MWS_RETURN_IF_ERROR(token_bytes.status());
  auto token_plain = wire::TokenPlain::Decode(token_bytes.value());
  MWS_RETURN_IF_ERROR(token_plain.status());
  pkg_session_key_ = token_plain->session_key;

  // Build the authenticator E(SecK_RC-PKG, IDRC || T).
  wire::AuthenticatorPlain auth;
  auth.rc_identity = identity_;
  auth.timestamp_micros = clock_->NowMicros();
  util::Bytes auth_key = wire::DeriveChannelKey(pkg_session_key_, cipher_,
                                                "rc-pkg-authenticator");
  auto sealed_auth =
      crypto::CbcEncrypt(cipher_, auth_key, auth.Encode(), *rng_);
  MWS_RETURN_IF_ERROR(sealed_auth.status());

  wire::PkgAuthRequest request;
  request.rc_identity = identity_;
  request.ticket = token_plain->ticket;
  request.authenticator = std::move(sealed_auth).value();

  auto raw = transport_->Call("pkg.auth", request.Encode());
  MWS_RETURN_IF_ERROR(raw.status());
  auto response = wire::PkgAuthResponse::Decode(raw.value());
  MWS_RETURN_IF_ERROR(response.status());
  pkg_session_ = response->session_id;
  return util::Status::Ok();
}

util::Result<ibe::IbePrivateKey> ReceivingClient::RequestKey(
    uint64_t aid, const util::Bytes& nonce) {
  if (pkg_session_.empty()) {
    return util::Status::FailedPrecondition("not authenticated with PKG");
  }
  wire::KeyRequest request;
  request.session_id = pkg_session_;
  request.aid = aid;
  request.nonce = nonce;
  MWS_ASSIGN_OR_RETURN(util::Bytes raw,
                       transport_->Call("pkg.extract", request.Encode()));
  MWS_ASSIGN_OR_RETURN(wire::KeyResponse response,
                       wire::KeyResponse::Decode(raw));

  util::Bytes channel_key = wire::DeriveChannelKey(pkg_session_key_, cipher_,
                                                   "rc-pkg-keydelivery");
  MWS_ASSIGN_OR_RETURN(
      util::Bytes key_bytes,
      crypto::CbcDecrypt(cipher_, channel_key,
                         response.encrypted_private_key));
  MWS_ASSIGN_OR_RETURN(
      math::EcPoint d,
      params_.group->curve().DeserializeCompressed(key_bytes));
  return ibe::IbePrivateKey{d};
}

util::Result<std::vector<util::Result<ibe::IbePrivateKey>>>
ReceivingClient::RequestKeysBatch(
    const std::vector<std::pair<uint64_t, util::Bytes>>& items) {
  if (pkg_session_.empty()) {
    return util::Status::FailedPrecondition("not authenticated with PKG");
  }
  wire::KeyBatchRequest request;
  request.session_id = pkg_session_;
  request.items = items;
  MWS_ASSIGN_OR_RETURN(
      util::Bytes raw, transport_->Call("pkg.extract_batch", request.Encode()));
  MWS_ASSIGN_OR_RETURN(wire::KeyBatchResponse response,
                       wire::KeyBatchResponse::Decode(raw));
  if (response.items.size() != items.size()) {
    return util::Status::Internal("batch response size mismatch");
  }
  util::Bytes channel_key = wire::DeriveChannelKey(pkg_session_key_, cipher_,
                                                   "rc-pkg-keydelivery");
  std::vector<util::Result<ibe::IbePrivateKey>> out;
  out.reserve(response.items.size());
  for (const wire::KeyBatchResponse::Item& item : response.items) {
    if (!item.ok) {
      out.push_back(util::Status::PermissionDenied(
          "extraction refused: " + util::StringFromBytes(item.payload)));
      continue;
    }
    auto key_bytes = crypto::CbcDecrypt(cipher_, channel_key, item.payload);
    if (!key_bytes.ok()) {
      out.push_back(key_bytes.status());
      continue;
    }
    auto d = params_.group->curve().DeserializeCompressed(key_bytes.value());
    if (!d.ok()) {
      out.push_back(d.status());
      continue;
    }
    out.push_back(ibe::IbePrivateKey{d.value()});
  }
  return out;
}

util::Result<util::Bytes> ReceivingClient::DecryptMessage(
    const wire::RetrievedMessage& m, const ibe::IbePrivateKey& key) {
  MWS_ASSIGN_OR_RETURN(math::EcPoint u,
                       params_.group->curve().Deserialize(m.u));
  return sealer_.Open(key, ibe::HybridCiphertext{u, m.ciphertext});
}

util::Result<std::vector<ReceivedMessage>> ReceivingClient::FetchAndDecrypt(
    uint64_t after_id, int64_t from_micros, int64_t to_micros) {
  MWS_RETURN_IF_ERROR(Authenticate());
  MWS_ASSIGN_OR_RETURN(wire::RetrieveResponse retrieved,
                       Retrieve(after_id, from_micros, to_micros));
  MWS_RETURN_IF_ERROR(AuthenticateWithPkg(retrieved.token));
  std::vector<ReceivedMessage> out;
  out.reserve(retrieved.messages.size());
  if (retrieved.messages.size() > 1) {
    // Amortize the PKG round trips: one batched extraction.
    std::vector<std::pair<uint64_t, util::Bytes>> items;
    items.reserve(retrieved.messages.size());
    for (const wire::RetrievedMessage& m : retrieved.messages) {
      items.emplace_back(m.aid, m.nonce);
    }
    MWS_ASSIGN_OR_RETURN(auto keys, RequestKeysBatch(items));
    for (size_t i = 0; i < retrieved.messages.size(); ++i) {
      const wire::RetrievedMessage& m = retrieved.messages[i];
      MWS_RETURN_IF_ERROR(keys[i].status());
      MWS_ASSIGN_OR_RETURN(util::Bytes plaintext,
                           DecryptMessage(m, keys[i].value()));
      out.push_back(
          ReceivedMessage{m.message_id, m.aid, std::move(plaintext)});
    }
    return out;
  }
  for (const wire::RetrievedMessage& m : retrieved.messages) {
    MWS_ASSIGN_OR_RETURN(ibe::IbePrivateKey key, RequestKey(m.aid, m.nonce));
    MWS_ASSIGN_OR_RETURN(util::Bytes plaintext, DecryptMessage(m, key));
    out.push_back(ReceivedMessage{m.message_id, m.aid, std::move(plaintext)});
  }
  return out;
}

}  // namespace mws::client
