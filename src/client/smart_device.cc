#include "src/client/smart_device.h"

#include "src/crypto/hmac.h"

namespace mws::client {

SmartDevice::SmartDevice(std::string device_id, util::Bytes mac_key,
                         const ibe::SystemParams& params,
                         crypto::CipherKind dem, wire::Transport* transport,
                         const util::Clock* clock, util::RandomSource* rng)
    : device_id_(std::move(device_id)),
      mac_key_(std::move(mac_key)),
      params_(params),
      sealer_(*params.group, dem),
      transport_(transport),
      clock_(clock),
      rng_(rng) {}

util::Result<wire::DepositRequest> SmartDevice::BuildDeposit(
    const ibe::Attribute& attribute, const util::Bytes& payload) {
  // Fresh nonce per message: a fresh public/private key pair, which is
  // what makes later revocation bite (paper §V.B).
  ibe::MessageNonce nonce = ibe::GenerateNonce(*rng_);
  MWS_ASSIGN_OR_RETURN(
      ibe::HybridCiphertext sealed,
      sealer_.Seal(params_, attribute, nonce, payload, *rng_));

  wire::DepositRequest request;
  request.u = params_.group->curve().Serialize(sealed.u);
  request.ciphertext = std::move(sealed.dem_ciphertext);
  request.attribute = attribute;
  request.nonce = nonce.value;
  request.device_id = device_id_;
  request.timestamp_micros = clock_->NowMicros();
  request.mac = crypto::HmacSha256(mac_key_, request.AuthenticatedBytes());
  return request;
}

util::Result<uint64_t> SmartDevice::DepositMessage(
    const ibe::Attribute& attribute, const util::Bytes& payload) {
  MWS_ASSIGN_OR_RETURN(wire::DepositRequest request,
                       BuildDeposit(attribute, payload));
  MWS_ASSIGN_OR_RETURN(util::Bytes raw,
                       transport_->Call("mws.deposit", request.Encode()));
  MWS_ASSIGN_OR_RETURN(wire::DepositResponse response,
                       wire::DepositResponse::Decode(raw));
  ++deposits_sent_;
  return response.message_id;
}

util::Result<std::vector<util::Result<uint64_t>>> SmartDevice::DepositMany(
    const std::vector<std::pair<ibe::Attribute, util::Bytes>>& readings) {
  if (readings.empty()) return std::vector<util::Result<uint64_t>>{};
  wire::DepositBatchRequest batch;
  batch.items.reserve(readings.size());
  for (const auto& [attribute, payload] : readings) {
    MWS_ASSIGN_OR_RETURN(wire::DepositRequest request,
                         BuildDeposit(attribute, payload));
    batch.items.push_back(std::move(request));
  }
  MWS_ASSIGN_OR_RETURN(util::Bytes raw,
                       transport_->Call("mws.deposit_batch", batch.Encode()));
  MWS_ASSIGN_OR_RETURN(wire::DepositBatchResponse response,
                       wire::DepositBatchResponse::Decode(raw));
  if (response.items.size() != readings.size()) {
    return util::Status::Internal("deposit batch response size mismatch");
  }
  std::vector<util::Result<uint64_t>> out;
  out.reserve(response.items.size());
  for (const wire::DepositBatchResponse::Item& item : response.items) {
    if (item.ok) {
      out.push_back(item.message_id);
      ++deposits_sent_;
    } else {
      out.push_back(wire::DecodeWireError(item.error));
    }
  }
  return out;
}

}  // namespace mws::client
