#include "src/client/smart_device.h"

#include <utility>

#include "src/crypto/hmac.h"

namespace mws::client {

SmartDevice::SmartDevice(std::string device_id, util::Bytes mac_key,
                         const ibe::SystemParams& params,
                         crypto::CipherKind dem, wire::Transport* transport,
                         const util::Clock* clock, util::RandomSource* rng)
    : device_id_(std::move(device_id)),
      mac_key_(std::move(mac_key)),
      params_(params),
      sealer_(*params.group, dem),
      transport_(transport),
      clock_(clock),
      rng_(rng) {}

util::Result<SmartDevice::SealedReading> SmartDevice::SealReading(
    const ibe::Attribute& attribute, const ibe::MessageNonce& nonce,
    const util::Bytes& payload) {
  MWS_ASSIGN_OR_RETURN(
      ibe::HybridCiphertext sealed,
      sealer_.Seal(params_, attribute, nonce, payload, *rng_));
  SealedReading out;
  out.u = params_.group->curve().Serialize(sealed.u);
  out.ciphertext = std::move(sealed.dem_ciphertext);
  return out;
}

wire::DepositRequest SmartDevice::StampRequest(
    const ibe::Attribute& attribute, const util::Bytes& nonce,
    const util::Bytes& u, const util::Bytes& ciphertext) const {
  wire::DepositRequest request;
  request.u = u;
  request.ciphertext = ciphertext;
  request.attribute = attribute;
  request.nonce = nonce;
  request.device_id = device_id_;
  request.timestamp_micros = clock_->NowMicros();
  request.mac = crypto::HmacSha256(mac_key_, request.AuthenticatedBytes());
  return request;
}

util::Result<wire::DepositRequest> SmartDevice::BuildDeposit(
    const ibe::Attribute& attribute, const util::Bytes& payload) {
  // Fresh nonce per message: a fresh public/private key pair, which is
  // what makes later revocation bite (paper §V.B).
  ibe::MessageNonce nonce = ibe::GenerateNonce(*rng_);
  MWS_ASSIGN_OR_RETURN(SealedReading sealed,
                       SealReading(attribute, nonce, payload));
  return StampRequest(attribute, nonce.value, sealed.u, sealed.ciphertext);
}

util::Result<uint64_t> SmartDevice::DepositMessage(
    const ibe::Attribute& attribute, const util::Bytes& payload) {
  MWS_ASSIGN_OR_RETURN(wire::DepositRequest request,
                       BuildDeposit(attribute, payload));
  MWS_ASSIGN_OR_RETURN(util::Bytes raw,
                       transport_->Call("mws.deposit", request.Encode()));
  MWS_ASSIGN_OR_RETURN(wire::DepositResponse response,
                       wire::DepositResponse::Decode(raw));
  ++deposits_sent_;
  return response.message_id;
}

util::Result<wire::DepositBatchResponse> SmartDevice::CallDepositBatch(
    const std::vector<wire::DepositRequest>& items) {
  wire::DepositBatchRequest batch;
  batch.items = items;
  MWS_ASSIGN_OR_RETURN(util::Bytes raw,
                       transport_->Call("mws.deposit_batch", batch.Encode()));
  MWS_ASSIGN_OR_RETURN(wire::DepositBatchResponse response,
                       wire::DepositBatchResponse::Decode(raw));
  if (response.items.size() != items.size()) {
    return util::Status::Internal("deposit batch response size mismatch");
  }
  for (const wire::DepositBatchResponse::Item& item : response.items) {
    if (!item.ok) continue;
    // A replay the warehouse absorbed by (ID_SD, nonce) dedup was not a
    // new deposit — count it separately so retry storms don't inflate
    // the device's send accounting.
    if (item.deduplicated) {
      ++deposits_deduped_;
    } else {
      ++deposits_sent_;
    }
  }
  return response;
}

util::Result<std::vector<util::Result<uint64_t>>> SmartDevice::DepositMany(
    const std::vector<std::pair<ibe::Attribute, util::Bytes>>& readings) {
  if (readings.empty()) return std::vector<util::Result<uint64_t>>{};
  std::vector<wire::DepositRequest> items;
  items.reserve(readings.size());
  for (const auto& [attribute, payload] : readings) {
    MWS_ASSIGN_OR_RETURN(wire::DepositRequest request,
                         BuildDeposit(attribute, payload));
    items.push_back(std::move(request));
  }
  MWS_ASSIGN_OR_RETURN(wire::DepositBatchResponse response,
                       CallDepositBatch(items));
  std::vector<util::Result<uint64_t>> out;
  out.reserve(response.items.size());
  for (const wire::DepositBatchResponse::Item& item : response.items) {
    if (item.ok) {
      out.push_back(item.message_id);
    } else {
      out.push_back(wire::DecodeWireError(item.error));
    }
  }
  return out;
}

util::Result<ibe::MessageNonce> SmartDevice::EnqueueReading(
    const ibe::Attribute& attribute, const util::Bytes& payload) {
  if (outbox_ == nullptr) {
    return util::Status::FailedPrecondition("no outbox attached");
  }
  // Same draw order as BuildDeposit (nonce, then Seal), so the queued
  // ciphertext is bit-identical to what the direct path would send.
  ibe::MessageNonce nonce = ibe::GenerateNonce(*rng_);
  MWS_ASSIGN_OR_RETURN(SealedReading sealed,
                       SealReading(attribute, nonce, payload));
  OutboxRecord record;
  record.attribute = attribute;
  record.nonce = nonce.value;
  record.u = std::move(sealed.u);
  record.ciphertext = std::move(sealed.ciphertext);
  MWS_RETURN_IF_ERROR(outbox_->Enqueue(std::move(record)));
  return nonce;
}

util::Result<SmartDevice::DrainStats> SmartDevice::DrainOutbox(
    size_t max_batch) {
  if (outbox_ == nullptr) {
    return util::Status::FailedPrecondition("no outbox attached");
  }
  if (max_batch == 0) max_batch = 1;
  DrainStats stats;
  while (true) {
    std::vector<OutboxRecord> head = outbox_->Peek(max_batch);
    if (head.empty()) break;
    // Stamp fresh: the records may have been sealed long ago, and the
    // MWS enforces a freshness window on the MAC'd timestamp.
    std::vector<wire::DepositRequest> items;
    items.reserve(head.size());
    for (const OutboxRecord& record : head) {
      items.push_back(
          StampRequest(record.attribute, record.nonce, record.u,
                       record.ciphertext));
    }
    auto call = CallDepositBatch(items);
    if (!call.ok()) {
      stats.remaining = outbox_->depth();
      return call.status();
    }
    const wire::DepositBatchResponse& response = *call;
    // Acknowledge the longest acked prefix; a failed item and everything
    // behind it stay queued for the next reconnect (replay-safe: the
    // warehouse dedups by (ID_SD, nonce)).
    size_t acked = 0;
    while (acked < response.items.size() && response.items[acked].ok) {
      if (response.items[acked].deduplicated) {
        ++stats.deduplicated;
      } else {
        ++stats.fresh;
      }
      ++acked;
    }
    stats.sent += acked;
    if (acked > 0) {
      MWS_RETURN_IF_ERROR(outbox_->Acknowledge(acked));
    }
    if (acked < response.items.size()) {
      stats.remaining = outbox_->depth();
      return wire::DecodeWireError(response.items[acked].error);
    }
  }
  stats.remaining = outbox_->depth();
  return stats;
}

}  // namespace mws::client
