#ifndef MWSIBE_CLIENT_OUTBOX_H_
#define MWSIBE_CLIENT_OUTBOX_H_

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/store/append_file.h"
#include "src/util/bytes.h"
#include "src/util/clock.h"
#include "src/util/fault.h"
#include "src/util/result.h"

namespace mws::client {

/// One queued reading, sealed at enqueue time. The outbox never stores
/// plaintext: what hits the disk is exactly the (U, C) pair the MWS
/// would store (paper §V.D), plus the routing fields the deposit wire
/// message carries in the clear anyway. The MAC and timestamp are NOT
/// stored — they are stamped fresh at drain time, because the MWS
/// enforces a freshness window on deposit timestamps and an offline
/// device may drain hours after sealing.
struct OutboxRecord {
  std::string attribute;   // A
  util::Bytes nonce;       // per-message nonce (the dedup key with ID_SD)
  util::Bytes u;           // rP, serialized curve point
  util::Bytes ciphertext;  // C, the DEM ciphertext
  int64_t enqueue_micros = 0;  // when the reading was sealed (drain latency)

  util::Bytes Encode() const;
  static util::Result<OutboxRecord> Decode(const util::Bytes& data);
};

/// Durable store-and-forward queue for a smart device: readings are
/// sealed and appended to disk at enqueue time, and shipped to the MWS
/// in batches when a link is available. The paper's depositing client
/// is an embedded meter that is offline most of the time — the outbox
/// is what makes "every sealed reading is eventually warehoused exactly
/// once" survive device crashes and flaky links.
///
/// ## On-disk format
///
/// A directory of segment files "seg-<seq>.obx", seq strictly
/// increasing. Each segment starts with a 4-byte magic/version header
/// ("OBX1") followed by length-prefixed, CRC-framed records:
///
///   u32 body_len | body | u32 crc32(over the 4-byte length + body)
///
/// where body is an OutboxRecord encoding. Appends go to the highest
/// segment (the active one); a new segment is started when the active
/// one exceeds Options::max_segment_bytes or its oldest record exceeds
/// Options::max_segment_age_micros on the injected clock (bounding both
/// the recovery scan per file and the blast radius of a corrupt tail).
///
/// ## Crash safety
///
/// Append-only + flush-per-record: once Enqueue returns OK the record
/// is part of the durable prefix. A crash mid-append leaves a torn tail
/// that Open() truncates — same discipline as the KvStore WAL — and a
/// corrupt byte anywhere in a record's frame fails its CRC, truncating
/// that segment from the damaged record on. A segment without a valid
/// header is quarantined as fully torn (zero records, kept out of the
/// queue). Recovery is per-segment, so one damaged file never takes
/// down readings in its neighbours.
///
/// ## Drain contract
///
/// Peek() exposes the head records; the device ships them (one
/// mws.deposit_batch call) and calls Acknowledge(n) for the prefix the
/// warehouse acked. Consumption state is in-memory only — deliberately:
/// a crash between the server's ack and Acknowledge() replays the
/// records on restart, and the MWS absorbs the replay by (ID_SD, nonce)
/// dedup. At-least-once below, exactly-once end to end.
///
/// Thread-safe; one mutex (a device has no hot path).
class Outbox {
 public:
  struct Options {
    /// Directory holding the segment files; created if absent.
    std::string dir;
    /// Size-based rotation threshold for the active segment.
    size_t max_segment_bytes = 64 * 1024;
    /// Age-based rotation: rotate when the active segment's first
    /// record is older than this (0 disables).
    int64_t max_segment_age_micros = 15ll * 60 * 1'000'000;
    /// Clock for enqueue stamps and age rotation (required).
    const util::Clock* clock = nullptr;
    /// Optional fault source, consulted on every segment append
    /// ("file.append/<path>" — arm kDiskFull to test ENOSPC).
    util::FaultInjector* injector = nullptr;
    /// Optional instrumentation (must outlive the outbox). Exposes the
    /// `outbox.*` family: counters `outbox.enqueued` / `outbox.drained`,
    /// gauge `outbox.depth` (delta-updated, so a fleet sharing one
    /// registry aggregates to total pending readings), gauge
    /// `outbox.oldest_age_us` (a last-writer-wins sample), and histogram
    /// `outbox.drain_latency_us` (enqueue -> warehouse ack, on the
    /// injected clock).
    obs::Registry* metrics = nullptr;
  };

  /// What recovery found across the segment files at Open.
  struct RecoveryStats {
    size_t segments = 0;
    size_t records_recovered = 0;
    /// Segments whose tail (or entirety) was dropped.
    size_t torn_tails = 0;
    size_t bytes_truncated = 0;
  };

  /// Opens (creating or recovering) an outbox. Truncates torn segment
  /// tails so future appends produce clean logs.
  static util::Result<std::unique_ptr<Outbox>> Open(const Options& options);

  ~Outbox();

  Outbox(const Outbox&) = delete;
  Outbox& operator=(const Outbox&) = delete;

  /// Durably appends one sealed reading (record.enqueue_micros is
  /// stamped here from the injected clock). OK means the record
  /// survives a crash. On failure (e.g. disk_full) nothing beyond a
  /// torn tail — truncated on next Open — reaches the queue, and the
  /// damaged segment is sealed so records accepted later never land
  /// behind the tear.
  util::Status Enqueue(OutboxRecord record);

  /// Up to `max` records from the head, oldest first, in ack order.
  std::vector<OutboxRecord> Peek(size_t max) const;

  /// Consumes the `count` head records (they were acked by the
  /// warehouse). Fully consumed segments are deleted from disk; when
  /// the queue empties entirely every segment file is removed, so a
  /// restart after a clean drain replays nothing.
  util::Status Acknowledge(size_t count);

  /// Readings enqueued but not yet acknowledged.
  size_t depth() const;
  /// Enqueue stamp of the head record (0 when empty).
  int64_t oldest_enqueue_micros() const;

  const RecoveryStats& recovery_stats() const { return recovery_; }
  const Options& options() const { return options_; }

 private:
  struct Segment {
    uint64_t seq = 0;
    std::string path;
    std::deque<OutboxRecord> records;  // pending (unacked) records
    std::unique_ptr<store::AppendFile> file;  // open on the active segment
    int64_t first_enqueue_micros = 0;  // age-rotation basis
  };

  explicit Outbox(Options options) : options_(std::move(options)) {}

  /// Recovers one segment file: decodes the record frames, truncates at
  /// the first damage. Pre: mutex_ held (or pre-publication).
  util::Status RecoverSegment(Segment* segment);
  /// Ensures an active segment is open and, if rotation triggers, seals
  /// the current one and starts the next. Pre: mutex_ held.
  util::Status EnsureActiveSegment(int64_t now_micros, size_t incoming_bytes);
  std::string SegmentPath(uint64_t seq) const;
  void UpdateGauges() const;  // Pre: mutex_ held.

  Options options_;
  mutable std::mutex mutex_;
  /// Oldest first; back() is the active (append) segment once one exists.
  std::deque<Segment> segments_;
  /// A failed append may have left partial bytes at the active segment's
  /// tail. Anything appended after them would be dropped by recovery, so
  /// the segment is sealed and the next enqueue starts a fresh file.
  bool active_poisoned_ = false;
  uint64_t next_seq_ = 1;
  size_t depth_ = 0;
  RecoveryStats recovery_;

  // Resolved at Open when Options::metrics is set; null otherwise.
  obs::Counter* enqueued_counter_ = nullptr;
  obs::Counter* drained_counter_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Gauge* oldest_age_gauge_ = nullptr;
  obs::Histogram* drain_latency_hist_ = nullptr;
};

}  // namespace mws::client

#endif  // MWSIBE_CLIENT_OUTBOX_H_
