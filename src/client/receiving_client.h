#ifndef MWSIBE_CLIENT_RECEIVING_CLIENT_H_
#define MWSIBE_CLIENT_RECEIVING_CLIENT_H_

#include <string>
#include <vector>

#include "src/crypto/rsa.h"
#include "src/ibe/hybrid.h"
#include "src/util/clock.h"
#include "src/wire/messages.h"
#include "src/wire/transport.h"

namespace mws::client {

/// A message after the full retrieve-and-decrypt pipeline.
struct ReceivedMessage {
  uint64_t message_id = 0;
  uint64_t aid = 0;  // the opaque attribute id (the RC never sees A)
  util::Bytes plaintext;
};

/// A receiving client (RC): an enterprise system such as the paper's
/// C-Services. Runs phases 2 and 3 of Fig. 4: gatekeeper auth, retrieve,
/// PKG ticket auth, per-message key extraction, decryption.
class ReceivingClient {
 public:
  /// `transport` must expose "mws.auth", "mws.retrieve", "pkg.auth" and
  /// "pkg.extract" and outlive the client. `cipher` must match the MWS /
  /// PKG configuration; `dem` the smart devices' DEM.
  ReceivingClient(std::string identity, std::string password,
                  crypto::RsaKeyPair rsa_keys, const ibe::SystemParams& params,
                  crypto::CipherKind cipher, crypto::CipherKind dem,
                  wire::Transport* transport, const util::Clock* clock,
                  util::RandomSource* rng);

  // --- Step-by-step protocol (exposed for the Fig. 2/Fig. 4 traces) ---

  /// Phase 2 step 1: authenticate with the Gatekeeper.
  util::Status Authenticate();

  /// Phase 2 step 2: fetch records + token. Pre: Authenticate() ok.
  /// A non-empty [from_micros, to_micros) window restricts results to
  /// deposit timestamps in that range (billing-period retrieval).
  util::Result<wire::RetrieveResponse> Retrieve(uint64_t after_id = 0,
                                                int64_t from_micros = 0,
                                                int64_t to_micros = 0);

  /// One bounded slice of Retrieve via "mws.retrieve_chunk": at most
  /// `max_messages` records; the token arrives only on the final chunk
  /// (response.has_more == false). Pre: Authenticate() ok.
  util::Result<wire::RetrieveChunkResponse> RetrieveChunk(
      uint64_t after_id, int64_t from_micros, int64_t to_micros,
      uint32_t max_messages);

  /// Drains the whole backlog through RetrieveChunk in `chunk_size`
  /// slices and reassembles a RetrieveResponse (messages in id order,
  /// token from the final chunk). Yields exactly Retrieve()'s result
  /// without the server ever materializing more than one chunk.
  util::Result<wire::RetrieveResponse> RetrieveChunked(
      uint64_t after_id = 0, int64_t from_micros = 0, int64_t to_micros = 0,
      uint32_t chunk_size = 256);

  /// Phase 3 step 1: open the token, authenticate with the PKG.
  util::Status AuthenticateWithPkg(const util::Bytes& token);

  /// Phase 3 step 2: obtain sI for one (AID, Nonce). Pre: PKG session.
  util::Result<ibe::IbePrivateKey> RequestKey(uint64_t aid,
                                              const util::Bytes& nonce);

  /// Batched variant: one round trip for many (AID, Nonce) pairs (the
  /// amortization a constrained link needs — one key per message is the
  /// price of nonce-based revocation). Outer Result fails on transport
  /// or session errors; inner entries carry per-item outcomes aligned
  /// with `items`.
  util::Result<std::vector<util::Result<ibe::IbePrivateKey>>>
  RequestKeysBatch(
      const std::vector<std::pair<uint64_t, util::Bytes>>& items);

  /// Decrypts one retrieved record with an extracted key.
  util::Result<util::Bytes> DecryptMessage(const wire::RetrievedMessage& m,
                                           const ibe::IbePrivateKey& key);

  /// Bulk decryption of retrieved records, amortized three ways: one
  /// RequestKeysBatch round trip extracts every key (the PKG batches the
  /// scalar multiplications behind one shared Montgomery inversion);
  /// messages holding the same extracted key share ONE PairingPrecomp —
  /// the Miller-loop lines of e(d, ·) depend on d alone, so every
  /// decapsulation under that key skips the point arithmetic; and
  /// decryption fans out across min(hardware threads, 4) workers.
  /// Plaintexts are bit-identical to RequestKey + DecryptMessage per
  /// message, in order. Pre: AuthenticateWithPkg() ok.
  util::Result<std::vector<ReceivedMessage>> DecryptAll(
      const std::vector<wire::RetrievedMessage>& messages);

  // --- Whole pipeline ---

  /// Runs all steps and returns every readable message after `after_id`
  /// (optionally restricted to a deposit-timestamp window).
  util::Result<std::vector<ReceivedMessage>> FetchAndDecrypt(
      uint64_t after_id = 0, int64_t from_micros = 0,
      int64_t to_micros = 0);

  /// The bulk pipeline: chunked retrieval + DecryptAll. Same result set
  /// as FetchAndDecrypt, built for the backlog-drain workload (E17).
  util::Result<std::vector<ReceivedMessage>> FetchAndDecryptBulk(
      uint64_t after_id = 0, int64_t from_micros = 0, int64_t to_micros = 0,
      uint32_t chunk_size = 256);

  const std::string& identity() const { return identity_; }
  const crypto::RsaPublicKey& public_key() const {
    return rsa_keys_.public_key;
  }
  bool HasMwsSession() const { return !mws_session_.empty(); }
  bool HasPkgSession() const { return !pkg_session_.empty(); }

 private:
  std::string identity_;
  util::Bytes password_hash_;
  crypto::RsaKeyPair rsa_keys_;
  ibe::SystemParams params_;
  crypto::CipherKind cipher_;
  ibe::HybridSealer sealer_;
  wire::Transport* transport_;
  const util::Clock* clock_;
  util::RandomSource* rng_;

  util::Bytes mws_session_;
  util::Bytes pkg_session_;
  util::Bytes pkg_session_key_;  // SecK_RC-PKG from the token
};

}  // namespace mws::client

#endif  // MWSIBE_CLIENT_RECEIVING_CLIENT_H_
