#include "src/client/outbox.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "src/util/serde.h"

namespace mws::client {

namespace {

/// Segment header: magic + format version in one 4-byte unit. A file
/// that does not start with it is not (or no longer) an outbox segment
/// and is treated as fully torn.
constexpr uint8_t kMagic[4] = {'O', 'B', 'X', '1'};
constexpr size_t kHeaderBytes = sizeof(kMagic);

/// Upper bound on one record frame's body. Far above any sealed meter
/// reading; its job is to make a corrupted length field ("length bomb")
/// fail fast instead of sizing an allocation.
constexpr size_t kMaxRecordBytes = 4u << 20;

util::Bytes EncodeFrame(const util::Bytes& body) {
  util::Writer w;
  w.PutU32(static_cast<uint32_t>(body.size()));
  w.PutRaw(body);
  uint32_t crc = util::Crc32(w.data());
  w.PutU32(crc);
  return w.Take();
}

uint32_t ReadU32(const util::Bytes& b, size_t at) {
  return (static_cast<uint32_t>(b[at]) << 24) |
         (static_cast<uint32_t>(b[at + 1]) << 16) |
         (static_cast<uint32_t>(b[at + 2]) << 8) | b[at + 3];
}

}  // namespace

util::Bytes OutboxRecord::Encode() const {
  util::Writer w;
  w.PutString(attribute);
  w.PutBytes(nonce);
  w.PutBytes(u);
  w.PutBytes(ciphertext);
  w.PutU64(static_cast<uint64_t>(enqueue_micros));
  return w.Take();
}

util::Result<OutboxRecord> OutboxRecord::Decode(const util::Bytes& data) {
  util::Reader r(data);
  OutboxRecord record;
  uint64_t enqueued = 0;
  r.GetString(&record.attribute);
  r.GetBytes(&record.nonce);
  r.GetBytes(&record.u);
  r.GetBytes(&record.ciphertext);
  r.GetU64(&enqueued);
  if (!r.Done()) return util::Status::Corruption("malformed OutboxRecord");
  record.enqueue_micros = static_cast<int64_t>(enqueued);
  return record;
}

util::Result<std::unique_ptr<Outbox>> Outbox::Open(const Options& options) {
  if (options.clock == nullptr) {
    return util::Status::InvalidArgument("Outbox requires a clock");
  }
  if (options.dir.empty()) {
    return util::Status::InvalidArgument("Outbox requires a directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return util::Status::IoError("cannot create outbox dir " + options.dir +
                                 ": " + ec.message());
  }

  auto outbox = std::unique_ptr<Outbox>(new Outbox(options));
  if (options.metrics != nullptr) {
    outbox->enqueued_counter_ = options.metrics->GetCounter("outbox.enqueued");
    outbox->drained_counter_ = options.metrics->GetCounter("outbox.drained");
    outbox->depth_gauge_ = options.metrics->GetGauge("outbox.depth");
    outbox->oldest_age_gauge_ =
        options.metrics->GetGauge("outbox.oldest_age_us");
    outbox->drain_latency_hist_ =
        options.metrics->GetHistogram("outbox.drain_latency_us");
  }

  // Collect the segment files, oldest seq first.
  std::vector<std::pair<uint64_t, std::string>> found;
  for (const auto& entry : std::filesystem::directory_iterator(options.dir)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) != 0 || name.size() < 9 ||
        name.compare(name.size() - 4, 4, ".obx") != 0) {
      continue;
    }
    uint64_t seq = 0;
    try {
      seq = std::stoull(name.substr(4, name.size() - 8));
    } catch (...) {
      continue;  // not a segment of ours
    }
    found.emplace_back(seq, entry.path().string());
  }
  std::sort(found.begin(), found.end());

  for (const auto& [seq, path] : found) {
    Segment segment;
    segment.seq = seq;
    segment.path = path;
    MWS_RETURN_IF_ERROR(outbox->RecoverSegment(&segment));
    outbox->next_seq_ = std::max(outbox->next_seq_, seq + 1);
    ++outbox->recovery_.segments;
    outbox->recovery_.records_recovered += segment.records.size();
    if (segment.records.empty()) {
      // Nothing survived (or nothing was ever committed): reclaim the
      // file now instead of carrying an empty segment around. The next
      // enqueue starts a fresh segment under a higher seq.
      std::filesystem::remove(path, ec);
      continue;
    }
    outbox->depth_ += segment.records.size();
    outbox->segments_.push_back(std::move(segment));
  }
  if (outbox->depth_gauge_ != nullptr && outbox->depth_ > 0) {
    outbox->depth_gauge_->Add(static_cast<int64_t>(outbox->depth_));
  }
  outbox->UpdateGauges();
  return outbox;
}

Outbox::~Outbox() {
  // Keep the fleet-wide depth gauge an aggregate over *live* outboxes:
  // a reopened outbox re-adds what it recovers.
  if (depth_gauge_ != nullptr && depth_ > 0) {
    depth_gauge_->Add(-static_cast<int64_t>(depth_));
  }
}

util::Status Outbox::RecoverSegment(Segment* segment) {
  MWS_ASSIGN_OR_RETURN(util::Bytes content,
                       store::AppendFile::ReadAll(segment->path));
  size_t valid_end = 0;
  bool torn = false;
  if (content.size() < kHeaderBytes ||
      !std::equal(kMagic, kMagic + kHeaderBytes, content.begin())) {
    // Not a segment header: quarantine the whole file as torn. (A
    // truncated header is the crash window between creating the file
    // and committing its first record.)
    torn = content.size() > 0;
  } else {
    size_t pos = kHeaderBytes;
    valid_end = pos;
    while (pos < content.size()) {
      if (content.size() - pos < 4) {
        torn = true;
        break;
      }
      size_t body_len = ReadU32(content, pos);
      if (body_len > kMaxRecordBytes ||
          content.size() - pos < 4 + body_len + 4) {
        torn = true;  // length bomb or truncated frame
        break;
      }
      uint32_t stored_crc = ReadU32(content, pos + 4 + body_len);
      uint32_t actual_crc = util::Crc32(content.data() + pos, 4 + body_len);
      if (stored_crc != actual_crc) {
        torn = true;
        break;
      }
      util::Bytes body(content.begin() + pos + 4,
                       content.begin() + pos + 4 + body_len);
      util::Result<OutboxRecord> record = OutboxRecord::Decode(body);
      if (!record.ok()) {
        // CRC-valid but undecodable: corrupt beyond what framing can
        // localize — stop trusting the rest of the file.
        torn = true;
        break;
      }
      if (segment->records.empty()) {
        segment->first_enqueue_micros = record.value().enqueue_micros;
      }
      segment->records.push_back(std::move(record.value()));
      pos += 4 + body_len + 4;
      valid_end = pos;
    }
  }
  if (torn || valid_end < content.size()) {
    recovery_.bytes_truncated += content.size() - valid_end;
    ++recovery_.torn_tails;
    MWS_RETURN_IF_ERROR(
        store::AppendFile::TruncateTo(segment->path, valid_end));
  }
  return util::Status::Ok();
}

std::string Outbox::SegmentPath(uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%012llu.obx",
                static_cast<unsigned long long>(seq));
  return options_.dir + "/" + name;
}

util::Status Outbox::EnsureActiveSegment(int64_t now_micros,
                                         size_t incoming_bytes) {
  bool force_fresh = false;
  if (active_poisoned_ && !segments_.empty()) {
    // The last append failed and may have left partial bytes at the
    // tail. Recovery would stop there, so nothing more may be appended
    // after them: seal the segment (its committed records stay queued)
    // or reclaim it if it never committed anything, and start fresh.
    Segment& active = segments_.back();
    active.file.reset();
    if (active.records.empty()) {
      std::error_code ec;
      std::filesystem::remove(active.path, ec);
      segments_.pop_back();
    }
    active_poisoned_ = false;
    force_fresh = true;
  }
  if (!force_fresh && !segments_.empty()) {
    Segment& active = segments_.back();
    if (active.file == nullptr) {
      // Recovered segment: resume appending where the last run stopped.
      MWS_ASSIGN_OR_RETURN(
          active.file,
          store::AppendFile::Open(
              {.path = active.path, .injector = options_.injector}));
    }
    bool rotate_size =
        !active.records.empty() &&
        active.file->size() + incoming_bytes > options_.max_segment_bytes;
    bool rotate_age =
        options_.max_segment_age_micros > 0 && !active.records.empty() &&
        now_micros - active.first_enqueue_micros >=
            options_.max_segment_age_micros;
    if (!rotate_size && !rotate_age) return util::Status::Ok();
    // Seal the active segment (it stays queued until drained) and fall
    // through to start the next one.
    active.file.reset();
  }
  Segment fresh;
  fresh.seq = next_seq_++;
  fresh.path = SegmentPath(fresh.seq);
  MWS_ASSIGN_OR_RETURN(
      fresh.file, store::AppendFile::Open(
                      {.path = fresh.path, .injector = options_.injector}));
  if (fresh.file->size() == 0) {
    MWS_RETURN_IF_ERROR(
        fresh.file->Append(util::Bytes(kMagic, kMagic + kHeaderBytes)));
  }
  segments_.push_back(std::move(fresh));
  return util::Status::Ok();
}

util::Status Outbox::Enqueue(OutboxRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t now = options_.clock->NowMicros();
  record.enqueue_micros = now;
  util::Bytes frame = EncodeFrame(record.Encode());
  MWS_RETURN_IF_ERROR(EnsureActiveSegment(now, frame.size()));
  Segment& active = segments_.back();
  util::Status appended = active.file->Append(frame);
  if (!appended.ok()) {
    // The frame may be partially on disk; nothing may land after it.
    active_poisoned_ = true;
    return appended;
  }
  if (active.records.empty()) active.first_enqueue_micros = now;
  active.records.push_back(std::move(record));
  ++depth_;
  if (enqueued_counter_ != nullptr) enqueued_counter_->Increment();
  if (depth_gauge_ != nullptr) depth_gauge_->Add(1);
  UpdateGauges();
  return util::Status::Ok();
}

std::vector<OutboxRecord> Outbox::Peek(size_t max) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<OutboxRecord> out;
  out.reserve(std::min(max, depth_));
  for (const Segment& segment : segments_) {
    for (const OutboxRecord& record : segment.records) {
      if (out.size() >= max) return out;
      out.push_back(record);
    }
  }
  return out;
}

util::Status Outbox::Acknowledge(size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count > depth_) {
    return util::Status::InvalidArgument(
        "acknowledging more records than pending");
  }
  int64_t now = options_.clock->NowMicros();
  size_t remaining = count;
  while (remaining > 0) {
    Segment& head = segments_.front();
    while (remaining > 0 && !head.records.empty()) {
      const OutboxRecord& record = head.records.front();
      if (drain_latency_hist_ != nullptr) {
        int64_t latency = now - record.enqueue_micros;
        drain_latency_hist_->Record(
            latency < 0 ? 0 : static_cast<uint64_t>(latency));
      }
      head.records.pop_front();
      --depth_;
      --remaining;
    }
    if (head.records.empty()) {
      // Fully acked: reclaim the file. For the active segment this only
      // happens when the whole queue drained, so no pending record can
      // be lost; the next enqueue starts a fresh segment.
      head.file.reset();
      std::error_code ec;
      std::filesystem::remove(head.path, ec);
      segments_.pop_front();
    }
  }
  if (drained_counter_ != nullptr) drained_counter_->Increment(count);
  if (depth_gauge_ != nullptr) {
    depth_gauge_->Add(-static_cast<int64_t>(count));
  }
  UpdateGauges();
  return util::Status::Ok();
}

size_t Outbox::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

int64_t Outbox::oldest_enqueue_micros() const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Segment& segment : segments_) {
    if (!segment.records.empty()) {
      return segment.records.front().enqueue_micros;
    }
  }
  return 0;
}

void Outbox::UpdateGauges() const {
  if (oldest_age_gauge_ == nullptr) return;
  // Last-writer-wins across a fleet sharing one registry: the gauge is
  // a sample of the most recently active outbox, not an aggregate (the
  // depth gauge is the aggregate; per-device age lives on the outbox).
  int64_t oldest = 0;
  for (const Segment& segment : segments_) {
    if (!segment.records.empty()) {
      oldest = segment.records.front().enqueue_micros;
      break;
    }
  }
  oldest_age_gauge_->Set(
      oldest == 0 ? 0 : options_.clock->NowMicros() - oldest);
}

}  // namespace mws::client
