#ifndef MWSIBE_CLIENT_SMART_DEVICE_H_
#define MWSIBE_CLIENT_SMART_DEVICE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/ibe/hybrid.h"
#include "src/util/clock.h"
#include "src/wire/messages.h"
#include "src/wire/transport.h"

namespace mws::client {

/// A depositing client (DC): the embedded smart device of paper §II.
/// Knows only its identity, its MAC key shared with the MWS, the PKG's
/// public parameters, and the *attributes* of intended recipients —
/// never their identities.
class SmartDevice {
 public:
  /// `transport` must expose the "mws.deposit" endpoint and outlive the
  /// device; `mac_key` is the registration-time shared secret.
  SmartDevice(std::string device_id, util::Bytes mac_key,
              const ibe::SystemParams& params, crypto::CipherKind dem,
              wire::Transport* transport, const util::Clock* clock,
              util::RandomSource* rng);

  /// Encrypts `payload` to holders of `attribute`, MACs the bundle, and
  /// deposits it (Fig. 4 phase 1). Returns the MWS-assigned message id.
  util::Result<uint64_t> DepositMessage(const ibe::Attribute& attribute,
                                        const util::Bytes& payload);

  /// Buffered deposit: seals every (attribute, payload) reading locally,
  /// then ships them as ONE "mws.deposit_batch" round trip — the
  /// store-and-forward shape of a metering device that wakes, drains its
  /// buffer, and sleeps. Per-item results align with `readings`; the
  /// outer Result fails only on transport/decode errors, in which case
  /// nothing was acknowledged and the whole batch is safe to retry
  /// (dedup absorbs replays). Ciphertexts are bit-identical to
  /// DepositMessage given the same rng draws.
  util::Result<std::vector<util::Result<uint64_t>>> DepositMany(
      const std::vector<std::pair<ibe::Attribute, util::Bytes>>& readings);

  /// Builds the deposit request without sending it (used by tests and
  /// the component benches to poke the SDA directly).
  util::Result<wire::DepositRequest> BuildDeposit(
      const ibe::Attribute& attribute, const util::Bytes& payload);

  const std::string& device_id() const { return device_id_; }
  uint64_t deposits_sent() const { return deposits_sent_; }

 private:
  std::string device_id_;
  util::Bytes mac_key_;
  ibe::SystemParams params_;
  ibe::HybridSealer sealer_;
  wire::Transport* transport_;
  const util::Clock* clock_;
  util::RandomSource* rng_;
  uint64_t deposits_sent_ = 0;
};

}  // namespace mws::client

#endif  // MWSIBE_CLIENT_SMART_DEVICE_H_
