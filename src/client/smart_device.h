#ifndef MWSIBE_CLIENT_SMART_DEVICE_H_
#define MWSIBE_CLIENT_SMART_DEVICE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/client/outbox.h"
#include "src/ibe/hybrid.h"
#include "src/util/clock.h"
#include "src/wire/messages.h"
#include "src/wire/transport.h"

namespace mws::client {

/// A depositing client (DC): the embedded smart meter of paper §II.
/// Knows only its identity, its MAC key shared with the MWS, the PKG's
/// public parameters, and the *attributes* of intended recipients —
/// never their identities.
class SmartDevice {
 public:
  /// `transport` must expose the "mws.deposit" endpoint and outlive the
  /// device; `mac_key` is the registration-time shared secret.
  SmartDevice(std::string device_id, util::Bytes mac_key,
              const ibe::SystemParams& params, crypto::CipherKind dem,
              wire::Transport* transport, const util::Clock* clock,
              util::RandomSource* rng);

  /// Encrypts `payload` to holders of `attribute`, MACs the bundle, and
  /// deposits it (Fig. 4 phase 1). Returns the MWS-assigned message id.
  util::Result<uint64_t> DepositMessage(const ibe::Attribute& attribute,
                                        const util::Bytes& payload);

  /// Buffered deposit: seals every (attribute, payload) reading locally,
  /// then ships them as ONE "mws.deposit_batch" round trip — the
  /// store-and-forward shape of a metering device that wakes, drains its
  /// buffer, and sleeps. Per-item results align with `readings`; the
  /// outer Result fails only on transport/decode errors, in which case
  /// nothing was acknowledged and the whole batch is safe to retry
  /// (dedup absorbs replays). Ciphertexts are bit-identical to
  /// DepositMessage given the same rng draws.
  util::Result<std::vector<util::Result<uint64_t>>> DepositMany(
      const std::vector<std::pair<ibe::Attribute, util::Bytes>>& readings);

  /// Builds the deposit request without sending it (used by tests and
  /// the component benches to poke the SDA directly).
  util::Result<wire::DepositRequest> BuildDeposit(
      const ibe::Attribute& attribute, const util::Bytes& payload);

  // --- Durable store-and-forward (the device outbox) ---

  /// Borrows `outbox` (may be null to detach; must outlive the device
  /// while attached). The outbox is owned externally so a simulated
  /// crash-restart can destroy and reopen it under a live fleet.
  void AttachOutbox(Outbox* outbox) { outbox_ = outbox; }
  Outbox* outbox() { return outbox_; }

  /// Seals `payload` exactly like DepositMessage would (bit-identical
  /// ciphertext given the same rng draws) and appends it durably to the
  /// attached outbox instead of the network. Returns the per-message
  /// nonce — with device_id() it is the end-to-end identity of this
  /// reading (the warehouse dedup key). The MAC and timestamp are NOT
  /// fixed here; DrainOutbox stamps them fresh, because the MWS rejects
  /// deposits outside its freshness window and the device may drain
  /// long after sealing.
  util::Result<ibe::MessageNonce> EnqueueReading(
      const ibe::Attribute& attribute, const util::Bytes& payload);

  struct DrainStats {
    size_t sent = 0;          ///< records acked by the warehouse this call
    size_t fresh = 0;         ///< ... of which newly stored
    size_t deduplicated = 0;  ///< ... of which replays the MWS absorbed
    size_t remaining = 0;     ///< records still queued after the call
  };

  /// Ships the outbox head to the warehouse in "mws.deposit_batch"
  /// batches of up to `max_batch` until the queue is empty or a call
  /// fails, acknowledging (and reclaiming) every acked prefix. Safe to
  /// call after any crash/retry interleaving: replays are absorbed by
  /// (ID_SD, nonce) dedup and reported in DrainStats::deduplicated —
  /// they do not inflate deposits_sent(). On error the un-acked records
  /// stay queued for the next reconnect.
  util::Result<DrainStats> DrainOutbox(size_t max_batch = 64);

  const std::string& device_id() const { return device_id_; }
  /// Deposits newly stored by the warehouse on this device's behalf
  /// (dedup-absorbed replays are counted in deposits_deduped instead).
  uint64_t deposits_sent() const { return deposits_sent_; }
  uint64_t deposits_deduped() const { return deposits_deduped_; }

 private:
  /// Seal only: KEM+DEM under a fresh identity I = SHA1(A || nonce).
  struct SealedReading {
    util::Bytes u;
    util::Bytes ciphertext;
  };
  util::Result<SealedReading> SealReading(const ibe::Attribute& attribute,
                                          const ibe::MessageNonce& nonce,
                                          const util::Bytes& payload);
  /// Stamp only: fresh timestamp + MAC around an already-sealed reading.
  wire::DepositRequest StampRequest(const ibe::Attribute& attribute,
                                    const util::Bytes& nonce,
                                    const util::Bytes& u,
                                    const util::Bytes& ciphertext) const;
  /// One "mws.deposit_batch" round trip, with per-item ack accounting
  /// (deposits_sent_ for fresh stores, deposits_deduped_ for absorbed
  /// replays). Pre: `items` is non-empty.
  util::Result<wire::DepositBatchResponse> CallDepositBatch(
      const std::vector<wire::DepositRequest>& items);

  std::string device_id_;
  util::Bytes mac_key_;
  ibe::SystemParams params_;
  ibe::HybridSealer sealer_;
  wire::Transport* transport_;
  const util::Clock* clock_;
  util::RandomSource* rng_;
  Outbox* outbox_ = nullptr;
  uint64_t deposits_sent_ = 0;
  uint64_t deposits_deduped_ = 0;
};

}  // namespace mws::client

#endif  // MWSIBE_CLIENT_SMART_DEVICE_H_
