#include "src/sim/fleet.h"

#include <filesystem>
#include <fstream>

namespace mws::sim {

namespace fs = std::filesystem;

std::string FleetSimulator::OutboxDir(size_t device_index) const {
  return options_.outbox_root + "/" +
         scenario_->devices()[device_index].device_id();
}

bool FleetSimulator::Flip(double probability) {
  if (probability <= 0) return false;
  if (probability >= 1) return true;
  return churn_rng_.NextU64() <
         static_cast<uint64_t>(probability * 18446744073709551615.0);
}

util::Result<std::unique_ptr<FleetSimulator>> FleetSimulator::Create(
    const Options& options) {
  if (options.outbox_root.empty()) {
    return util::Status::InvalidArgument("FleetSimulator needs outbox_root");
  }
  if (!options.scenario.metrics) {
    return util::Status::InvalidArgument(
        "FleetSimulator needs scenario metrics (latency report source)");
  }
  auto fleet = std::unique_ptr<FleetSimulator>(new FleetSimulator(options));
  MWS_ASSIGN_OR_RETURN(fleet->scenario_,
                       UtilityScenario::Create(options.scenario));

  if (options.disk_full_rate > 0) {
    fleet->outbox_injector_.AddRule(
        {.kind = util::FaultKind::kDiskFull,
         .pattern = "file.append/",
         .probability = options.disk_full_rate,
         .code = util::StatusCode::kResourceExhausted,
         .message = "injected device disk full"});
  }

  std::vector<client::SmartDevice>& devices = fleet->scenario_->devices();
  fleet->outboxes_.resize(devices.size());
  fleet->device_class_.reserve(devices.size());
  for (size_t i = 0; i < devices.size(); ++i) {
    MeterClass klass = MeterClass::kElectric;
    if (devices[i].device_id().rfind("WATER", 0) == 0) {
      klass = MeterClass::kWater;
    } else if (devices[i].device_id().rfind("GAS", 0) == 0) {
      klass = MeterClass::kGas;
    }
    fleet->device_class_.push_back(klass);
    MWS_ASSIGN_OR_RETURN(
        fleet->outboxes_[i],
        client::Outbox::Open(
            {.dir = fleet->OutboxDir(i),
             .max_segment_bytes = options.max_segment_bytes,
             .max_segment_age_micros = options.max_segment_age_micros,
             .clock = &fleet->scenario_->clock(),
             .injector = &fleet->outbox_injector_,
             .metrics = fleet->scenario_->metrics()}));
    devices[i].AttachOutbox(fleet->outboxes_[i].get());
  }
  fleet->snapshot_dir_ = options.outbox_root + "/.crash-snapshot";
  return fleet;
}

util::Status FleetSimulator::TearActiveSegment(size_t device_index) {
  // Power dies mid-append: the newest segment gains a frame that claims
  // more bytes than were ever written. Recovery must truncate it.
  std::string newest;
  uint64_t newest_seq = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(OutboxDir(device_index))) {
    std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) != 0) continue;
    uint64_t seq = 0;
    try {
      seq = std::stoull(name.substr(4));
    } catch (...) {
      continue;
    }
    if (newest.empty() || seq >= newest_seq) {
      newest_seq = seq;
      newest = entry.path().string();
    }
  }
  if (newest.empty()) return util::Status::Ok();  // nothing durable yet
  std::ofstream out(newest, std::ios::binary | std::ios::app);
  const uint8_t torn[] = {0x00, 0x00, 0x00, 0x40, 0xde, 0xad, 0xbe, 0xef};
  out.write(reinterpret_cast<const char*>(torn), sizeof(torn));
  out.close();
  return out.fail() ? util::Status::IoError("torn append failed")
                    : util::Status::Ok();
}

util::Status FleetSimulator::SnapshotDir(size_t device_index) {
  std::error_code ec;
  fs::remove_all(snapshot_dir_, ec);
  fs::copy(OutboxDir(device_index), snapshot_dir_,
           fs::copy_options::recursive, ec);
  if (ec) return util::Status::IoError("snapshot failed: " + ec.message());
  return util::Status::Ok();
}

util::Status FleetSimulator::RestoreDir(size_t device_index) {
  std::error_code ec;
  fs::remove_all(OutboxDir(device_index), ec);
  fs::copy(snapshot_dir_, OutboxDir(device_index),
           fs::copy_options::recursive, ec);
  if (ec) return util::Status::IoError("restore failed: " + ec.message());
  fs::remove_all(snapshot_dir_, ec);
  return util::Status::Ok();
}

util::Status FleetSimulator::Restart(size_t device_index,
                                     size_t expected_depth, Report* report) {
  outboxes_[device_index].reset();  // close files, release the depth gauge
  MWS_ASSIGN_OR_RETURN(
      outboxes_[device_index],
      client::Outbox::Open(
          {.dir = OutboxDir(device_index),
           .max_segment_bytes = options_.max_segment_bytes,
           .max_segment_age_micros = options_.max_segment_age_micros,
           .clock = &scenario_->clock(),
           .injector = &outbox_injector_,
           .metrics = scenario_->metrics()}));
  scenario_->devices()[device_index].AttachOutbox(
      outboxes_[device_index].get());
  const client::Outbox::RecoveryStats& stats =
      outboxes_[device_index]->recovery_stats();
  report->torn_tails_recovered += stats.torn_tails;
  report->records_recovered += stats.records_recovered;
  // Everything Enqueue acknowledged must survive. MORE than expected is
  // admissible: a partially drained segment replays its acked head and
  // the warehouse dedups it. LESS means durability broke.
  if (outboxes_[device_index]->depth() < expected_depth) {
    ++report->recovery_depth_mismatches;
  }
  return util::Status::Ok();
}

util::Result<FleetSimulator::Report> FleetSimulator::Run() {
  Report report;
  // The drain-latency histogram lives in the scenario registry, which
  // outlives this Run. Reset it up front so the report's percentiles
  // describe THIS run only — a sweep that reuses one scenario across
  // points (bench_e18) otherwise reads a distribution polluted by every
  // earlier point.
  if (obs::Registry* metrics = scenario_->metrics()) {
    metrics->GetHistogram("outbox.drain_latency_us")->Reset();
  }
  std::vector<client::SmartDevice>& devices = scenario_->devices();
  WorkloadGenerator& workload = scenario_->workload();
  util::SimulatedClock& clock = scenario_->clock();
  report.devices = devices.size();
  report.rounds = options_.rounds;

  for (size_t round = 0; round < options_.rounds; ++round) {
    // Wake phase: every device seals its readings into its outbox.
    for (size_t i = 0; i < devices.size(); ++i) {
      for (size_t r = 0; r < options_.readings_per_round; ++r) {
        clock.AdvanceMicros(1000);
        MeterReading reading = workload.Next(
            devices[i].device_id(), device_class_[i], clock.NowMicros());
        util::Result<ibe::MessageNonce> nonce = devices[i].EnqueueReading(
            UtilityScenario::AttributeFor(device_class_[i]),
            workload.Pad(reading.ToPayload()));
        if (nonce.ok()) {
          ++report.enqueued;
          expected_.emplace(
              devices[i].device_id() + "/" +
                  std::string(nonce.value().value.begin(),
                              nonce.value().value.end()),
              0);
        } else if (nonce.status().code() ==
                   util::StatusCode::kResourceExhausted) {
          ++report.enqueue_rejected;  // the reading died at the device
        } else {
          return nonce.status();
        }
      }
      if (Flip(options_.crash_mid_enqueue_rate)) {
        size_t depth = outboxes_[i]->depth();
        ++report.crashes_mid_enqueue;
        outboxes_[i].reset();
        MWS_RETURN_IF_ERROR(TearActiveSegment(i));
        MWS_RETURN_IF_ERROR(Restart(i, depth, &report));
      }
    }

    // Drain phase: every device wakes its link and ships its queue.
    for (size_t i = 0; i < devices.size(); ++i) {
      if (outboxes_[i]->depth() == 0) continue;
      clock.AdvanceMicros(1000);
      size_t depth_before = outboxes_[i]->depth();
      bool crash_before_ack = Flip(options_.crash_before_ack_rate);
      if (crash_before_ack) MWS_RETURN_IF_ERROR(SnapshotDir(i));
      ++report.drain_calls;
      util::Result<client::SmartDevice::DrainStats> drained =
          devices[i].DrainOutbox(options_.drain_batch);
      if (drained.ok()) {
        report.delivered_fresh += drained.value().fresh;
        report.dedup_absorbed += drained.value().deduplicated;
      } else {
        ++report.drain_failures;  // queue keeps the unacked tail
      }
      if (crash_before_ack) {
        // The warehouse kept what the drain shipped; the device lost
        // the acks. Restart from the pre-drain disk state — the whole
        // batch replays and dedup must absorb it.
        ++report.crashes_before_ack;
        outboxes_[i].reset();
        MWS_RETURN_IF_ERROR(RestoreDir(i));
        MWS_RETURN_IF_ERROR(Restart(i, depth_before, &report));
      }
    }
    clock.AdvanceMicros(options_.round_gap_micros);
  }

  // Settlement: links calm down (rules disarmed) and every device keeps
  // draining until the fleet is empty — the "eventually" in eventually
  // exactly-once.
  outbox_injector_.ClearRules();
  if (scenario_->fault_injector() != nullptr) {
    scenario_->fault_injector()->ClearRules();
  }
  for (size_t pass = 0; pass < 100; ++pass) {
    size_t depth = 0;
    for (const auto& outbox : outboxes_) depth += outbox->depth();
    if (depth == 0) break;
    ++report.settlement_passes;
    for (size_t i = 0; i < devices.size(); ++i) {
      if (outboxes_[i]->depth() == 0) continue;
      clock.AdvanceMicros(1000);
      ++report.drain_calls;
      if (!devices[i].DrainOutbox(options_.drain_batch).ok()) {
        ++report.drain_failures;
      }
    }
  }
  for (const auto& outbox : outboxes_) report.final_depth += outbox->depth();

  // Audit: scan the warehouse and reconcile against what the devices
  // accepted. The invariant is exactly-once — zero lost, zero stored
  // twice, zero stored that no device accepted.
  const store::MessageDb& db = scenario_->mws().message_db();
  for (const char* attribute :
       {UtilityScenario::kElectricAttr, UtilityScenario::kWaterAttr,
        UtilityScenario::kGasAttr}) {
    MWS_ASSIGN_OR_RETURN(std::vector<store::StoredMessage> messages,
                         db.FindByAttribute(attribute));
    for (const store::StoredMessage& message : messages) {
      ++report.warehoused;
      std::string key = message.device_id + "/" +
                        std::string(message.nonce.begin(),
                                    message.nonce.end());
      auto it = expected_.find(key);
      if (it == expected_.end()) {
        ++report.unexpected;
      } else if (++it->second > 1) {
        ++report.duplicates;
      }
    }
  }
  for (const auto& [key, seen] : expected_) {
    if (seen == 0) ++report.lost;
  }

  obs::RegistrySnapshot snapshot = scenario_->metrics()->Snapshot();
  if (const obs::HistogramSnapshot* latency =
          snapshot.histogram("outbox.drain_latency_us")) {
    report.latency_samples = latency->count;
    report.latency_p50_us = latency->Percentile(0.50);
    report.latency_p90_us = latency->Percentile(0.90);
    report.latency_p99_us = latency->Percentile(0.99);
    report.latency_max_us = latency->max;
  }
  return report;
}

}  // namespace mws::sim
