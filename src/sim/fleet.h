#ifndef MWSIBE_SIM_FLEET_H_
#define MWSIBE_SIM_FLEET_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/client/outbox.h"
#include "src/sim/scenario.h"

namespace mws::sim {

/// Fleet-scale store-and-forward simulation: every device of a
/// UtilityScenario gets a durable on-disk outbox and runs wake/enqueue/
/// drain rounds over a flaky link, with crash-restart churn injected at
/// the two windows that matter for exactly-once delivery:
///
///   * mid-enqueue — power dies while a record frame is being appended;
///     the restart must truncate the torn tail and lose nothing that
///     Enqueue had acknowledged;
///   * before-ack — power dies after the warehouse stored a drained
///     batch but before the device reclaimed it; the restart replays
///     the batch and the MWS must absorb every record by
///     (ID_SD, nonce) dedup.
///
/// The run ends with a full settlement drain and an audit of the
/// warehouse against the set of readings the devices accepted: the
/// invariant under any admissible schedule is zero lost and zero
/// duplicated readings (E18).
class FleetSimulator {
 public:
  struct Options {
    /// The world to build (device count, fault rates, preset, seed).
    /// Enable `scenario.resilience` to put the drain traffic on a
    /// flaky link; its injector is shared with the store.
    UtilityScenario::Options scenario;
    /// Root directory for the per-device outbox dirs (required; one
    /// subdirectory per device id is created under it).
    std::string outbox_root;
    /// Wake/drain cycles to run.
    size_t rounds = 4;
    /// Readings each device seals into its outbox per round.
    size_t readings_per_round = 2;
    /// Drain batch size (records per mws.deposit_batch call).
    size_t drain_batch = 32;
    /// P(device crashes with a torn append in a round). The in-flight
    /// frame is lost (it was never acknowledged); everything the outbox
    /// acked must survive the restart.
    double crash_mid_enqueue_rate = 0.0;
    /// P(device crashes after a drained batch was warehoused but before
    /// the outbox reclaimed it). The whole batch replays next round.
    double crash_before_ack_rate = 0.0;
    /// P(an outbox append fails with kResourceExhausted). The reading
    /// is rejected at the device; it must not show up anywhere.
    double disk_full_rate = 0.0;
    /// Simulated time between rounds (drives age rotation and the
    /// drain-latency distribution).
    int64_t round_gap_micros = 60'000'000;
    /// Outbox rotation thresholds (small defaults so fleet runs
    /// exercise multi-segment queues).
    size_t max_segment_bytes = 16 * 1024;
    int64_t max_segment_age_micros = 10ll * 60 * 1'000'000;
    /// Seed for the churn schedule (independent of the scenario seed so
    /// crash placement does not perturb workload or fault draws).
    uint64_t churn_seed = 77;
  };

  /// What a Run() observed. The acceptance invariant is
  /// `lost == 0 && duplicates == 0 && unexpected == 0 && final_depth == 0`.
  struct Report {
    size_t devices = 0;
    size_t rounds = 0;

    // Device-side accounting.
    size_t enqueued = 0;          ///< readings the outboxes accepted
    size_t enqueue_rejected = 0;  ///< readings refused (disk_full)
    size_t crashes_mid_enqueue = 0;
    size_t crashes_before_ack = 0;
    size_t torn_tails_recovered = 0;
    size_t records_recovered = 0;
    /// Restarts where the reopened outbox disagreed with the depth the
    /// pre-crash outbox had acknowledged (must be 0).
    size_t recovery_depth_mismatches = 0;

    // Drain accounting.
    size_t drain_calls = 0;
    size_t drain_failures = 0;    ///< drains cut short by link faults
    size_t delivered_fresh = 0;   ///< records newly stored by the MWS
    size_t dedup_absorbed = 0;    ///< replays the MWS absorbed
    size_t settlement_passes = 0; ///< extra drains to empty the fleet

    // Audit (device-side expectations vs a full warehouse scan).
    size_t warehoused = 0;   ///< stored messages from this fleet
    size_t lost = 0;         ///< accepted readings missing from the MWS
    size_t duplicates = 0;   ///< readings stored more than once
    size_t unexpected = 0;   ///< stored messages no device accepted
    size_t final_depth = 0;  ///< records still queued after settlement

    // End-to-end delivery latency (enqueue -> warehouse ack, simulated
    // clock), from the shared outbox.drain_latency_us histogram.
    uint64_t latency_samples = 0;
    double latency_p50_us = 0;
    double latency_p90_us = 0;
    double latency_p99_us = 0;
    uint64_t latency_max_us = 0;

    bool ExactlyOnce() const {
      return lost == 0 && duplicates == 0 && unexpected == 0 &&
             final_depth == 0 && recovery_depth_mismatches == 0;
    }
  };

  /// Builds the scenario, opens one outbox per device under
  /// `options.outbox_root`, and arms the disk_full rule. Requires
  /// `options.scenario.metrics` (the latency histogram is the report's
  /// data source).
  static util::Result<std::unique_ptr<FleetSimulator>> Create(
      const Options& options);

  /// Runs the configured rounds plus a settlement phase (faults
  /// disarmed, drains repeated until every outbox is empty), then
  /// audits the warehouse. Deterministic in (options, seeds).
  util::Result<Report> Run();

  UtilityScenario& scenario() { return *scenario_; }
  util::FaultInjector& outbox_injector() { return outbox_injector_; }

 private:
  explicit FleetSimulator(const Options& options)
      : options_(options),
        outbox_injector_(options.churn_seed ^ 0x0b0e5eedull),
        churn_rng_(options.churn_seed) {}

  /// Destroys and reopens one device's outbox — the crash-restart
  /// primitive. Checks the recovered depth against `expected_depth`.
  util::Status Restart(size_t device_index, size_t expected_depth,
                       Report* report);
  /// Appends a torn partial frame to the device's newest segment file,
  /// simulating power loss mid-append.
  util::Status TearActiveSegment(size_t device_index);
  /// Snapshot / restore of an outbox dir (the before-ack crash window:
  /// the restored state predates the acks the warehouse already has).
  util::Status SnapshotDir(size_t device_index);
  util::Status RestoreDir(size_t device_index);

  std::string OutboxDir(size_t device_index) const;
  bool Flip(double probability);

  Options options_;
  util::FaultInjector outbox_injector_;
  util::DeterministicRandom churn_rng_;
  std::unique_ptr<UtilityScenario> scenario_;
  std::vector<std::unique_ptr<client::Outbox>> outboxes_;
  std::vector<MeterClass> device_class_;
  /// device_id + '/' + nonce for every accepted reading (the audit
  /// expectation set).
  std::map<std::string, size_t> expected_;
  std::string snapshot_dir_;
};

}  // namespace mws::sim

#endif  // MWSIBE_SIM_FLEET_H_
