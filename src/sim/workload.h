#ifndef MWSIBE_SIM_WORKLOAD_H_
#define MWSIBE_SIM_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/random.h"
#include "src/util/result.h"

namespace mws::sim {

/// Meter classes of the paper's utility scenario (Fig. 1).
enum class MeterClass { kElectric, kWater, kGas };

const char* MeterClassName(MeterClass klass);

/// One synthetic meter reading — the message payload a smart device
/// bundles and deposits. Substitutes for the real smart-meter telemetry
/// the paper assumes (we have no meters; the generator produces
/// realistically shaped readings at controlled sizes and rates).
struct MeterReading {
  std::string device_id;
  MeterClass klass = MeterClass::kElectric;
  int64_t timestamp_micros = 0;
  double consumption = 0;  // kWh or m^3
  double peak_rate = 0;
  std::string event;  // "" or an event/error code

  /// Human-readable key=value payload (what the paper's web form sent).
  util::Bytes ToPayload() const;
  static util::Result<MeterReading> FromPayload(const util::Bytes& payload);
};

/// Deterministic synthetic meter fleet.
class WorkloadGenerator {
 public:
  struct Options {
    uint64_t seed = 1;
    /// Probability (percent) a reading carries an event code.
    int event_percent = 5;
    /// Extra payload padding to sweep message sizes (0 = natural size).
    size_t pad_to_bytes = 0;
  };

  explicit WorkloadGenerator(const Options& options)
      : options_(options), rng_(options.seed) {}

  /// The next reading for `device_id`; consumption follows a smooth
  /// daily pattern plus noise.
  MeterReading Next(const std::string& device_id, MeterClass klass,
                    int64_t timestamp_micros);

  /// A batch of readings across a fleet of `devices` per class.
  std::vector<MeterReading> Batch(size_t devices_per_class, size_t per_device,
                                  int64_t start_micros,
                                  int64_t interval_micros);

  /// Applies Options::pad_to_bytes to a payload.
  util::Bytes Pad(util::Bytes payload) const;

 private:
  Options options_;
  util::DeterministicRandom rng_;
  uint64_t sequence_ = 0;
};

/// Canonical device-id naming: "<CLASS>-METER-<n>".
std::string DeviceId(MeterClass klass, size_t index);

}  // namespace mws::sim

#endif  // MWSIBE_SIM_WORKLOAD_H_
