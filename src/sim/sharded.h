#ifndef MWSIBE_SIM_SHARDED_H_
#define MWSIBE_SIM_SHARDED_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/client/receiving_client.h"
#include "src/client/smart_device.h"
#include "src/math/params.h"
#include "src/mws/mws_service.h"
#include "src/obs/metrics.h"
#include "src/pkg/pkg_service.h"
#include "src/store/kvstore.h"
#include "src/util/clock.h"
#include "src/util/fault.h"
#include "src/util/random.h"
#include "src/wire/faulty_transport.h"
#include "src/wire/retry.h"
#include "src/wire/router.h"
#include "src/wire/transport.h"

namespace mws::sim {

/// A kill switch in a transport chain: while down, every call returns
/// kUnavailable without reaching the inner transport — the router-level
/// view of a crashed shard process. Thread-safe.
class GateTransport : public wire::Transport {
 public:
  explicit GateTransport(wire::Transport* inner) : inner_(inner) {}

  void set_down(bool down) {
    down_.store(down, std::memory_order_relaxed);
  }
  bool down() const { return down_.load(std::memory_order_relaxed); }

  util::Result<util::Bytes> Call(const std::string& endpoint,
                                 const util::Bytes& request) override {
    if (down()) return util::Status::Unavailable("shard is down");
    return inner_->Call(endpoint, request);
  }

 private:
  wire::Transport* inner_;
  std::atomic<bool> down_{false};
};

/// A multi-node warehouse fixture: N independent MWS shards (each its
/// own KvStore + MwsService on its own in-process transport), one
/// shared PKG on a control transport, and a wire::ShardRouter in front
/// presenting the fleet as one warehouse. Clients (smart devices,
/// receiving clients) are built on top of the router and never know the
/// shard count.
///
/// The control plane is REPLICATED: RegisterDevice / MakeCompany /
/// GrantAttribute apply the same administrative operation to every
/// shard in the same order, which keeps the per-(RC, attribute) AID
/// tables identical across shards — the property the router's
/// single-token retrieval merge relies on. Per-shard service rngs are
/// seeded independently of the shared client rng, so client-side draws
/// (and therefore ciphertexts) do not depend on the shard count: a
/// 1-shard and an N-shard run of the same client script are directly
/// comparable.
///
/// Per-shard plumbing, bottom to top:
///   InProcessTransport -> GateTransport [-> FaultyTransport
///   -> RetryingTransport] -> router child
/// The gate simulates a dead shard (SetShardDown); the optional
/// fault/retry pair (Options::resilience) injects per-shard transport
/// faults and absorbs them below the router, so a transient fault on
/// one shard is retried against that shard alone.
class ShardedWarehouse {
 public:
  struct Options {
    size_t shard_count = 1;
    /// Shard-map version (participates in ring placement).
    uint32_t map_version = 1;
    math::ParamPreset preset = math::ParamPreset::kSmall;
    crypto::CipherKind cipher = crypto::CipherKind::kDes;
    crypto::CipherKind dem = crypto::CipherKind::kDes;
    uint64_t seed = 2010;
    size_t rsa_bits = 768;
    /// Base path for the per-shard stores (shard i persists at
    /// "<base>.s<i>"). Empty = in-memory stores; RestartShard then
    /// loses warehoused state and is refused.
    std::string store_path_base;
    /// Per-shard KvStore auto-compaction threshold (0 = manual).
    size_t compact_threshold_bytes = 0;
    bool metrics = true;
    /// Wire FaultyTransport + RetryingTransport under the router.
    bool resilience = false;
    wire::RetryOptions retry;
    uint64_t fault_seed = 4242;
  };

  static util::Result<std::unique_ptr<ShardedWarehouse>> Create(
      const Options& options);

  ~ShardedWarehouse();

  // --- Replicated control plane ---

  /// Registers the device on every shard and returns a client bound to
  /// the router. The returned reference lives as long as the warehouse.
  util::Result<client::SmartDevice*> MakeDevice(const std::string& device_id);

  /// Registers a device MAC key on every shard WITHOUT constructing a
  /// SmartDevice — for harnesses (the E19 soak bench) that stamp their
  /// own synthetic DepositRequests and only need the warehouse side to
  /// accept them.
  util::Status RegisterDevice(const std::string& device_id,
                              const util::Bytes& mac_key);

  /// Registers the company (password + fresh RSA keypair) on every
  /// shard, grants it every attribute in `attributes` on every shard,
  /// and returns a receiving client bound to the router.
  util::Result<client::ReceivingClient*> MakeCompany(
      const std::string& name, const std::vector<std::string>& attributes);

  /// Grants one more attribute to an already-created company, on every
  /// shard.
  util::Status GrantAttribute(const std::string& company,
                              const std::string& attribute);

  // --- Fleet operations ---

  /// Simulated crash-restart of shard `i`: the MwsService and KvStore
  /// are destroyed (in-memory gatekeeper sessions die with them) and
  /// rebuilt from the shard's files — WAL + checkpoint recovery on the
  /// live fleet. Endpoints re-register on the same transport object, so
  /// the router keeps working without rewiring. Requires persistent
  /// stores.
  util::Status RestartShard(size_t i);

  /// Marks shard `i` dead/alive at the transport gate.
  void SetShardDown(size_t i, bool down);

  /// Retention sweep: prunes messages with router id <= `router_max_id`
  /// on every shard (each shard prunes through its decomposed local
  /// id). Returns total messages removed.
  util::Result<size_t> PruneThrough(uint64_t router_max_id);

  /// Forces a checkpoint on every shard's store (persistent stores
  /// only). Returns total dropped WAL records.
  util::Result<size_t> CompactAll();

  // --- Audit / accessors ---

  /// Messages currently warehoused across the fleet.
  size_t TotalStored() const;
  /// Retransmissions absorbed by dedup across the fleet.
  uint64_t TotalDedupHits() const;

  wire::ShardRouter& router() { return *router_; }
  /// The transport clients were built on (the router).
  wire::Transport* client_transport() { return router_.get(); }
  size_t shard_count() const { return shards_.size(); }
  mws::MwsService& shard_mws(size_t i) { return *shards_[i]->mws; }
  store::KvStore& shard_store(size_t i) { return *shards_[i]->store; }
  wire::InProcessTransport& shard_transport(size_t i) {
    return shards_[i]->transport;
  }
  util::FaultInjector* shard_injector(size_t i) {
    return shards_[i]->injector.get();
  }
  pkg::PkgService& pkg() { return *pkg_; }
  const ibe::SystemParams& params() const { return pkg_->PublicParams(); }
  util::SimulatedClock& clock() { return clock_; }
  util::RandomSource& rng() { return rng_; }
  obs::Registry* metrics() { return options_.metrics ? &metrics_ : nullptr; }
  const Options& options() const { return options_; }
  /// Shard i's store path ("" when in-memory).
  std::string ShardPath(size_t i) const;

 private:
  struct Shard {
    wire::InProcessTransport transport;
    std::unique_ptr<util::DeterministicRandom> service_rng;
    std::unique_ptr<store::KvStore> store;
    std::unique_ptr<mws::MwsService> mws;
    std::unique_ptr<GateTransport> gate;
    std::unique_ptr<util::FaultInjector> injector;
    std::unique_ptr<wire::FaultyTransport> faulty;
    std::unique_ptr<wire::RetryingTransport> retrying;
    /// Top of the chain, what the router calls.
    wire::Transport* top = nullptr;
  };

  explicit ShardedWarehouse(const Options& options);

  /// (Re)opens shard i's store and service and registers endpoints on
  /// the shard transport.
  util::Status OpenShard(size_t i);

  Options options_;
  util::SimulatedClock clock_;
  util::DeterministicRandom rng_;       // client-side draws
  util::DeterministicRandom pkg_rng_;   // PKG draws
  obs::Registry metrics_;
  util::Bytes mws_pkg_key_;
  std::vector<std::unique_ptr<Shard>> shards_;
  wire::InProcessTransport control_transport_;
  std::unique_ptr<pkg::PkgService> pkg_;
  std::unique_ptr<wire::ShardRouter> router_;
  /// Stable storage for clients handed out by the factories.
  std::deque<client::SmartDevice> devices_;
  std::map<std::string, std::unique_ptr<client::ReceivingClient>> companies_;
};

}  // namespace mws::sim

#endif  // MWSIBE_SIM_SHARDED_H_
