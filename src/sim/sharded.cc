#include "src/sim/sharded.h"

#include <utility>

#include "src/crypto/rsa.h"
#include "src/wire/auth.h"

namespace mws::sim {

ShardedWarehouse::ShardedWarehouse(const Options& options)
    : options_(options),
      clock_(/*start_micros=*/1'267'401'600'000'000),  // 2010-03-01
      rng_(options.seed),
      pkg_rng_(options.seed + 1000) {}

ShardedWarehouse::~ShardedWarehouse() = default;

std::string ShardedWarehouse::ShardPath(size_t i) const {
  if (options_.store_path_base.empty()) return "";
  return options_.store_path_base + ".s" + std::to_string(i);
}

util::Status ShardedWarehouse::OpenShard(size_t i) {
  Shard& shard = *shards_[i];
  auto store = store::KvStore::Open(
      {.path = ShardPath(i),
       .metrics = metrics(),
       .compact_threshold_bytes = options_.compact_threshold_bytes});
  if (!store.ok()) return store.status();
  shard.store = std::move(store.value());

  mws::MwsOptions mws_options;
  mws_options.cipher = options_.cipher;
  mws_options.metrics = metrics();
  shard.mws = std::make_unique<mws::MwsService>(
      shard.store.get(), mws_pkg_key_, &clock_, shard.service_rng.get(),
      mws_options);
  // Register* overwrites previous handlers, so a restarted shard takes
  // over its old transport in place — the router's pointers stay valid.
  shard.mws->RegisterEndpoints(&shard.transport);
  return util::Status::Ok();
}

util::Result<std::unique_ptr<ShardedWarehouse>> ShardedWarehouse::Create(
    const Options& options) {
  if (options.shard_count == 0) {
    return util::Status::InvalidArgument("shard_count must be >= 1");
  }
  auto warehouse =
      std::unique_ptr<ShardedWarehouse>(new ShardedWarehouse(options));
  // One client-rng draw, independent of the shard count.
  warehouse->mws_pkg_key_ = warehouse->rng_.Generate(32);

  for (size_t i = 0; i < options.shard_count; ++i) {
    warehouse->shards_.push_back(std::make_unique<Shard>());
    Shard& shard = *warehouse->shards_.back();
    // Service-side randomness is per shard and disjoint from the client
    // rng: client draw order (and so ciphertexts) never depends on the
    // shard count or on service-side activity.
    shard.service_rng =
        std::make_unique<util::DeterministicRandom>(options.seed + 101 + i);
    MWS_RETURN_IF_ERROR(warehouse->OpenShard(i));

    shard.gate = std::make_unique<GateTransport>(&shard.transport);
    shard.top = shard.gate.get();
    shard.injector =
        std::make_unique<util::FaultInjector>(options.fault_seed + i);
    if (options.resilience) {
      shard.faulty = std::make_unique<wire::FaultyTransport>(
          shard.top, shard.injector.get());
      wire::RetryOptions retry_options = options.retry;
      retry_options.metrics = warehouse->metrics();
      shard.retrying = std::make_unique<wire::RetryingTransport>(
          shard.faulty.get(), &warehouse->clock_, retry_options);
      util::SimulatedClock* clock = &warehouse->clock_;
      shard.retrying->set_sleep_fn(
          [clock](int64_t micros) { clock->AdvanceMicros(micros); });
      shard.top = shard.retrying.get();
    }
  }

  pkg::PkgOptions pkg_options;
  pkg_options.cipher = options.cipher;
  pkg_options.metrics = warehouse->metrics();
  warehouse->pkg_ = std::make_unique<pkg::PkgService>(
      math::GetParams(options.preset), warehouse->mws_pkg_key_,
      &warehouse->clock_, &warehouse->pkg_rng_, pkg_options);
  warehouse->pkg_->RegisterEndpoints(&warehouse->control_transport_);

  std::vector<wire::Transport*> children;
  children.reserve(options.shard_count);
  for (auto& shard : warehouse->shards_) children.push_back(shard->top);
  wire::ShardRouterOptions router_options;
  router_options.control = &warehouse->control_transport_;
  router_options.metrics = warehouse->metrics();
  warehouse->router_ = std::make_unique<wire::ShardRouter>(
      wire::ShardMap(options.shard_count, options.map_version),
      std::move(children), router_options);
  return warehouse;
}

util::Status ShardedWarehouse::RegisterDevice(const std::string& device_id,
                                              const util::Bytes& mac_key) {
  for (auto& shard : shards_) {
    MWS_RETURN_IF_ERROR(shard->mws->RegisterDevice(device_id, mac_key));
  }
  return util::Status::Ok();
}

util::Result<client::SmartDevice*> ShardedWarehouse::MakeDevice(
    const std::string& device_id) {
  util::Bytes mac_key = rng_.Generate(32);
  for (auto& shard : shards_) {
    MWS_RETURN_IF_ERROR(shard->mws->RegisterDevice(device_id, mac_key));
  }
  devices_.emplace_back(device_id, mac_key, params(), options_.dem,
                        router_.get(), &clock_, &rng_);
  return &devices_.back();
}

util::Status ShardedWarehouse::GrantAttribute(const std::string& company,
                                              const std::string& attribute) {
  // Every shard must hand out the same AID for (company, attribute) —
  // the router's merged retrieval returns one shard's token for all
  // shards' messages, so a divergent AID table would decrypt under the
  // wrong attribute. Replicating grants in call order guarantees
  // agreement; verify anyway so future drift fails loudly here, not as
  // garbage plaintext.
  uint64_t first_aid = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    auto aid = shards_[i]->mws->GrantAttribute(company, attribute);
    if (!aid.ok()) return aid.status();
    if (i == 0) {
      first_aid = aid.value();
    } else if (aid.value() != first_aid) {
      return util::Status::Internal(
          "AID tables diverged across shards (control plane not "
          "replicated in order)");
    }
  }
  return util::Status::Ok();
}

util::Result<client::ReceivingClient*> ShardedWarehouse::MakeCompany(
    const std::string& name, const std::vector<std::string>& attributes) {
  std::string password = "pw-" + name;
  auto keys = crypto::RsaGenerateKeyPair(options_.rsa_bits, rng_);
  if (!keys.ok()) return keys.status();
  util::Bytes password_hash = wire::HashPassword(password);
  util::Bytes public_key =
      crypto::SerializeRsaPublicKey(keys.value().public_key);
  for (auto& shard : shards_) {
    MWS_RETURN_IF_ERROR(
        shard->mws->RegisterReceivingClient(name, password_hash, public_key));
  }
  for (const std::string& attribute : attributes) {
    MWS_RETURN_IF_ERROR(GrantAttribute(name, attribute));
  }
  auto client = std::make_unique<client::ReceivingClient>(
      name, password, std::move(keys.value()), params(), options_.cipher,
      options_.dem, router_.get(), &clock_, &rng_);
  client::ReceivingClient* raw = client.get();
  companies_[name] = std::move(client);
  return raw;
}

util::Status ShardedWarehouse::RestartShard(size_t i) {
  if (options_.store_path_base.empty()) {
    return util::Status::FailedPrecondition(
        "RestartShard requires persistent stores (set store_path_base)");
  }
  // Destruction order mirrors a process crash: the service (and its
  // in-memory gatekeeper sessions) dies first, then the store closes.
  shards_[i]->mws.reset();
  shards_[i]->store.reset();
  return OpenShard(i);
}

void ShardedWarehouse::SetShardDown(size_t i, bool down) {
  shards_[i]->gate->set_down(down);
}

util::Result<size_t> ShardedWarehouse::PruneThrough(uint64_t router_max_id) {
  size_t pruned = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    uint64_t local_max =
        wire::ShardRouter::LocalAfter(router_max_id, i, shards_.size());
    if (local_max == 0) continue;
    auto removed = shards_[i]->mws->PruneMessagesThrough(local_max);
    if (!removed.ok()) return removed.status();
    pruned += removed.value();
  }
  return pruned;
}

util::Result<size_t> ShardedWarehouse::CompactAll() {
  size_t dropped = 0;
  for (auto& shard : shards_) {
    auto result = shard->store->Compact();
    if (!result.ok()) return result.status();
    dropped += result.value();
  }
  return dropped;
}

size_t ShardedWarehouse::TotalStored() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->mws->message_db().Count();
  }
  return total;
}

uint64_t ShardedWarehouse::TotalDedupHits() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->mws->message_db().dedup_hits();
  }
  return total;
}

}  // namespace mws::sim
