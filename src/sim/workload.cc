#include "src/sim/workload.h"

#include <cmath>
#include <cstdio>

#include "src/util/string_util.h"

namespace mws::sim {

const char* MeterClassName(MeterClass klass) {
  switch (klass) {
    case MeterClass::kElectric:
      return "ELECTRIC";
    case MeterClass::kWater:
      return "WATER";
    case MeterClass::kGas:
      return "GAS";
  }
  return "UNKNOWN";
}

util::Bytes MeterReading::ToPayload() const {
  char buf[256];
  int n = std::snprintf(
      buf, sizeof(buf),
      "meter=%s class=%s ts=%lld consumption=%.3f peak=%.3f event=%s",
      device_id.c_str(), MeterClassName(klass),
      static_cast<long long>(timestamp_micros), consumption, peak_rate,
      event.empty() ? "none" : event.c_str());
  return util::Bytes(buf, buf + n);
}

util::Result<MeterReading> MeterReading::FromPayload(
    const util::Bytes& payload) {
  MeterReading r;
  for (const std::string& field :
       util::SplitString(util::StringFromBytes(payload), ' ')) {
    size_t eq = field.find('=');
    if (eq == std::string::npos) continue;
    std::string key = field.substr(0, eq);
    std::string value = field.substr(eq + 1);
    if (key == "meter") {
      r.device_id = value;
    } else if (key == "class") {
      if (value == "ELECTRIC") {
        r.klass = MeterClass::kElectric;
      } else if (value == "WATER") {
        r.klass = MeterClass::kWater;
      } else if (value == "GAS") {
        r.klass = MeterClass::kGas;
      } else {
        return util::Status::InvalidArgument("unknown meter class: " + value);
      }
    } else if (key == "ts") {
      r.timestamp_micros = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "consumption") {
      r.consumption = std::strtod(value.c_str(), nullptr);
    } else if (key == "peak") {
      r.peak_rate = std::strtod(value.c_str(), nullptr);
    } else if (key == "event") {
      r.event = value == "none" ? "" : value;
    }
  }
  if (r.device_id.empty()) {
    return util::Status::InvalidArgument("payload missing meter id");
  }
  return r;
}

MeterReading WorkloadGenerator::Next(const std::string& device_id,
                                     MeterClass klass,
                                     int64_t timestamp_micros) {
  MeterReading r;
  r.device_id = device_id;
  r.klass = klass;
  r.timestamp_micros = timestamp_micros;
  // Smooth daily curve + noise; base level depends on class.
  double hour = static_cast<double>((timestamp_micros / 3'600'000'000ll) % 24);
  double base = klass == MeterClass::kElectric ? 1.2
                : klass == MeterClass::kGas    ? 0.6
                                               : 0.3;
  double daily = 0.5 + 0.5 * std::sin((hour - 6.0) * 3.14159265 / 12.0);
  double noise = static_cast<double>(rng_.UniformU64(1000)) / 10000.0;
  r.consumption = base * daily + noise;
  r.peak_rate = r.consumption * (1.1 + noise);
  if (static_cast<int>(rng_.UniformU64(100)) < options_.event_percent) {
    r.event = "E" + std::to_string(100 + rng_.UniformU64(42));
  }
  ++sequence_;
  return r;
}

std::vector<MeterReading> WorkloadGenerator::Batch(size_t devices_per_class,
                                                   size_t per_device,
                                                   int64_t start_micros,
                                                   int64_t interval_micros) {
  std::vector<MeterReading> out;
  out.reserve(devices_per_class * per_device * 3);
  for (MeterClass klass :
       {MeterClass::kElectric, MeterClass::kWater, MeterClass::kGas}) {
    for (size_t d = 0; d < devices_per_class; ++d) {
      for (size_t i = 0; i < per_device; ++i) {
        out.push_back(Next(DeviceId(klass, d), klass,
                           start_micros + static_cast<int64_t>(i) *
                                              interval_micros));
      }
    }
  }
  return out;
}

util::Bytes WorkloadGenerator::Pad(util::Bytes payload) const {
  while (payload.size() < options_.pad_to_bytes) payload.push_back(' ');
  return payload;
}

std::string DeviceId(MeterClass klass, size_t index) {
  return std::string(MeterClassName(klass)) + "-METER-" +
         std::to_string(index);
}

}  // namespace mws::sim
