#ifndef MWSIBE_SIM_SCENARIO_H_
#define MWSIBE_SIM_SCENARIO_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/client/receiving_client.h"
#include "src/client/smart_device.h"
#include "src/math/params.h"
#include "src/mws/mws_service.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/pkg/pkg_service.h"
#include "src/sim/workload.h"
#include "src/store/faulty_table.h"
#include "src/store/kvstore.h"
#include "src/util/clock.h"
#include "src/util/fault.h"
#include "src/wire/faulty_transport.h"
#include "src/wire/retry.h"

namespace mws::sim {

/// The paper's Fig. 1 world, fully wired: a fleet of electric/water/gas
/// smart meters at the "Baytower" apartment complex, the MWS, the PKG,
/// and three utility companies —
///
///   * C-Services            (full-service: electric + water + gas)
///   * Electric & Gas Company (electric + gas)
///   * Water & Resources Co.  (water only)
///
/// Everything — registration, policy grants, transport wiring, parameter
/// distribution — is performed through the public APIs, so the scenario
/// doubles as an integration fixture for tests, examples, and benches.
class UtilityScenario {
 public:
  struct Options {
    math::ParamPreset preset = math::ParamPreset::kSmall;
    crypto::CipherKind cipher = crypto::CipherKind::kDes;  // protocol cipher
    crypto::CipherKind dem = crypto::CipherKind::kDes;     // message DEM
    size_t devices_per_class = 1;
    wire::NetworkModel network = wire::NetworkModel::Loopback();
    uint64_t seed = 2010;
    /// RSA modulus bits for RC keypairs (small keeps fixtures fast).
    size_t rsa_bits = 768;
    /// Wire the owned obs::Registry/Tracer into every component and
    /// register the STATS endpoint. Off lets benches measure the
    /// uninstrumented baseline (E16).
    bool metrics = true;

    /// Failure-domain wiring (the E15 resilience experiments). When
    /// `enable` is set the clients talk through
    /// FaultyTransport -> RetryingTransport and the MWS stores through a
    /// FaultyTable, all fed by one seeded FaultInjector. The rate rules
    /// below are armed only *after* Create() finishes, so registration
    /// traffic is never faulted; arbitrary extra rules can be armed
    /// through fault_injector().
    struct Resilience {
      bool enable = false;
      /// P(table write applies but reports failure) — torn store write.
      double store_fault_rate = 0.0;
      /// P(transport request lost before the handler runs).
      double request_loss_rate = 0.0;
      /// P(handler runs but the response is dropped) — the fault that
      /// exercises deposit dedup.
      double response_drop_rate = 0.0;
      uint64_t fault_seed = 4242;
      wire::RetryOptions retry;
    };
    Resilience resilience;
  };

  static constexpr char kCServices[] = "C-SERVICES";
  static constexpr char kElectricGas[] = "ELECTRIC-GAS-CO";
  static constexpr char kWaterResources[] = "WATER-RESOURCES-CO";

  static constexpr char kElectricAttr[] = "ELECTRIC-BAYTOWER-SV-CA";
  static constexpr char kWaterAttr[] = "WATER-BAYTOWER-SV-CA";
  static constexpr char kGasAttr[] = "GAS-BAYTOWER-SV-CA";

  static util::Result<std::unique_ptr<UtilityScenario>> Create(
      const Options& options);

  /// The attribute a device of `klass` encrypts to.
  static std::string AttributeFor(MeterClass klass);

  /// Deposits `per_device` fresh readings from every device. Returns the
  /// number of messages deposited.
  util::Result<size_t> DepositReadings(size_t per_device);

  /// Like DepositReadings, but each device buffers its `per_device`
  /// readings and ships them as one DepositMany batch (the E17 bulk
  /// path). Ids and ciphertexts are bit-identical to the single-shot
  /// loop; deposit timestamps reflect the drain time, as a real
  /// store-and-forward device would stamp them.
  util::Result<size_t> DepositReadingsBatch(size_t per_device);

  /// Runs the full retrieve pipeline for one company.
  util::Result<std::vector<client::ReceivedMessage>> RetrieveFor(
      const std::string& company, uint64_t after_id = 0);

  /// The bulk pipeline for one company: chunked retrieval + DecryptAll
  /// (FetchAndDecryptBulk). Same result set as RetrieveFor.
  util::Result<std::vector<client::ReceivedMessage>> RetrieveBulkFor(
      const std::string& company, uint64_t after_id = 0,
      uint32_t chunk_size = 256);

  // --- Component access ---
  mws::MwsService& mws() { return *mws_; }
  pkg::PkgService& pkg() { return *pkg_; }
  wire::InProcessTransport& transport() { return transport_; }
  /// The transport the clients were built on: the retry/fault chain when
  /// resilience is enabled, the bare in-process transport otherwise.
  wire::Transport& client_transport() {
    return retrying_transport_
               ? static_cast<wire::Transport&>(*retrying_transport_)
               : transport_;
  }
  // Resilience chain (null unless options.resilience.enable).
  util::FaultInjector* fault_injector() { return fault_injector_.get(); }
  wire::FaultyTransport* faulty_transport() { return faulty_transport_.get(); }
  wire::RetryingTransport* retrying_transport() {
    return retrying_transport_.get();
  }
  store::FaultyTable* faulty_table() { return faulty_table_.get(); }
  /// Observability sinks; null when options.metrics is false.
  obs::Registry* metrics() { return options_.metrics ? &metrics_ : nullptr; }
  obs::Tracer* tracer() { return options_.metrics ? &tracer_ : nullptr; }
  util::SimulatedClock& clock() { return clock_; }
  util::RandomSource& rng() { return rng_; }
  WorkloadGenerator& workload() { return workload_; }
  const Options& options() const { return options_; }

  std::vector<client::SmartDevice>& devices() { return devices_; }
  client::ReceivingClient& company(const std::string& name);
  const std::vector<std::string>& company_names() const {
    return company_names_;
  }

 private:
  explicit UtilityScenario(const Options& options)
      : options_(options),
        clock_(/*start_micros=*/1'267'401'600'000'000),  // 2010-03-01
        rng_(options.seed),
        workload_({.seed = options.seed}),
        tracer_(&clock_, /*capacity=*/256),
        transport_(options.network) {}

  Options options_;
  util::SimulatedClock clock_;
  util::DeterministicRandom rng_;
  WorkloadGenerator workload_;
  // Declared before every component that borrows them.
  obs::Registry metrics_;
  obs::Tracer tracer_;
  wire::InProcessTransport transport_;
  // Resilience chain, wrapped objects declared before their wrappers so
  // raw borrows outlive the borrowers.
  std::unique_ptr<util::FaultInjector> fault_injector_;
  std::unique_ptr<wire::FaultyTransport> faulty_transport_;
  std::unique_ptr<wire::RetryingTransport> retrying_transport_;
  std::unique_ptr<store::KvStore> storage_;
  std::unique_ptr<store::FaultyTable> faulty_table_;
  std::unique_ptr<mws::MwsService> mws_;
  std::unique_ptr<pkg::PkgService> pkg_;
  std::vector<client::SmartDevice> devices_;
  std::map<std::string, std::unique_ptr<client::ReceivingClient>> companies_;
  std::vector<std::string> company_names_;
};

}  // namespace mws::sim

#endif  // MWSIBE_SIM_SCENARIO_H_
