#include "src/sim/scenario.h"

#include "src/wire/auth.h"
#include "src/wire/stats.h"

namespace mws::sim {

constexpr char UtilityScenario::kCServices[];
constexpr char UtilityScenario::kElectricGas[];
constexpr char UtilityScenario::kWaterResources[];
constexpr char UtilityScenario::kElectricAttr[];
constexpr char UtilityScenario::kWaterAttr[];
constexpr char UtilityScenario::kGasAttr[];

std::string UtilityScenario::AttributeFor(MeterClass klass) {
  switch (klass) {
    case MeterClass::kElectric:
      return kElectricAttr;
    case MeterClass::kWater:
      return kWaterAttr;
    case MeterClass::kGas:
      return kGasAttr;
  }
  return "";
}

util::Result<std::unique_ptr<UtilityScenario>> UtilityScenario::Create(
    const Options& options) {
  auto scenario = std::unique_ptr<UtilityScenario>(
      new UtilityScenario(options));
  obs::Registry* metrics = scenario->metrics();
  obs::Tracer* tracer = scenario->tracer();

  MWS_ASSIGN_OR_RETURN(scenario->storage_,
                       store::KvStore::Open({.path = "", .metrics = metrics}));

  const Options::Resilience& resilience = options.resilience;
  store::Table* storage = scenario->storage_.get();
  if (resilience.enable) {
    scenario->fault_injector_ =
        std::make_unique<util::FaultInjector>(resilience.fault_seed);
    if (metrics != nullptr) {
      // Count fired faults per kind; the hook runs under the injector
      // mutex so it only touches pre-resolved relaxed atomics.
      obs::Counter* by_kind[] = {
          metrics->GetCounter("fault.injected", {{"kind", "error"}}),
          metrics->GetCounter("fault.injected", {{"kind", "torn-write"}}),
          metrics->GetCounter("fault.injected", {{"kind", "delay"}}),
          metrics->GetCounter("fault.injected",
                              {{"kind", "connection-drop"}}),
          metrics->GetCounter("fault.injected", {{"kind", "disk-full"}}),
      };
      scenario->fault_injector_->set_fire_hook(
          [error = by_kind[0], torn = by_kind[1], delay = by_kind[2],
           drop = by_kind[3],
           disk_full = by_kind[4]](const util::Fault& fault,
                                   std::string_view) {
            switch (fault.kind) {
              case util::FaultKind::kError:
                error->Increment();
                break;
              case util::FaultKind::kTornWrite:
                torn->Increment();
                break;
              case util::FaultKind::kDelay:
                delay->Increment();
                break;
              case util::FaultKind::kConnectionDrop:
                drop->Increment();
                break;
              case util::FaultKind::kDiskFull:
                disk_full->Increment();
                break;
            }
          });
    }
    scenario->faulty_table_ = std::make_unique<store::FaultyTable>(
        storage, scenario->fault_injector_.get());
    storage = scenario->faulty_table_.get();
  }

  // The MWS<->PKG service key (paper assumption: pre-shared).
  util::Bytes mws_pkg_key = scenario->rng_.Generate(32);

  mws::MwsOptions mws_options;
  mws_options.cipher = options.cipher;
  mws_options.metrics = metrics;
  mws_options.tracer = tracer;
  scenario->mws_ = std::make_unique<mws::MwsService>(
      storage, mws_pkg_key, &scenario->clock_, &scenario->rng_, mws_options);

  pkg::PkgOptions pkg_options;
  pkg_options.cipher = options.cipher;
  pkg_options.metrics = metrics;
  pkg_options.tracer = tracer;
  const math::TypeAParams& group = math::GetParams(options.preset);
  scenario->pkg_ = std::make_unique<pkg::PkgService>(
      group, mws_pkg_key, &scenario->clock_, &scenario->rng_, pkg_options);

  scenario->mws_->RegisterEndpoints(&scenario->transport_);
  scenario->pkg_->RegisterEndpoints(&scenario->transport_);
  if (metrics != nullptr) {
    wire::RegisterStatsEndpoint(&scenario->transport_, metrics, tracer);
  }

  // Client-side resilience chain: faults below, retries above, so every
  // injected drop is seen (and absorbed) by the retry layer exactly as a
  // real client would see a flaky network. Sleeps advance the simulated
  // clock — backoff costs no wall time in tests and benches.
  wire::Transport* client_transport = &scenario->transport_;
  if (resilience.enable) {
    scenario->faulty_transport_ = std::make_unique<wire::FaultyTransport>(
        client_transport, scenario->fault_injector_.get());
    wire::RetryOptions retry_options = resilience.retry;
    retry_options.metrics = metrics;
    scenario->retrying_transport_ = std::make_unique<wire::RetryingTransport>(
        scenario->faulty_transport_.get(), &scenario->clock_, retry_options);
    util::SimulatedClock* clock = &scenario->clock_;
    scenario->retrying_transport_->set_sleep_fn(
        [clock](int64_t micros) { clock->AdvanceMicros(micros); });
    client_transport = scenario->retrying_transport_.get();
  }

  // Register the meter fleet.
  const ibe::SystemParams& params = scenario->pkg_->PublicParams();
  for (MeterClass klass :
       {MeterClass::kElectric, MeterClass::kWater, MeterClass::kGas}) {
    for (size_t i = 0; i < options.devices_per_class; ++i) {
      std::string device_id = DeviceId(klass, i);
      util::Bytes mac_key = scenario->rng_.Generate(32);
      MWS_RETURN_IF_ERROR(scenario->mws_->RegisterDevice(device_id, mac_key));
      scenario->devices_.emplace_back(device_id, mac_key, params, options.dem,
                                      client_transport, &scenario->clock_,
                                      &scenario->rng_);
    }
  }

  // Register the companies and their grants (the Fig. 1 access matrix).
  struct CompanySpec {
    const char* name;
    std::vector<std::string> attributes;
  };
  const CompanySpec specs[] = {
      {kCServices, {kElectricAttr, kWaterAttr, kGasAttr}},
      {kElectricGas, {kElectricAttr, kGasAttr}},
      {kWaterResources, {kWaterAttr}},
  };
  for (const CompanySpec& spec : specs) {
    std::string password = std::string("pw-") + spec.name;
    MWS_ASSIGN_OR_RETURN(
        crypto::RsaKeyPair keys,
        crypto::RsaGenerateKeyPair(options.rsa_bits, scenario->rng_));
    MWS_RETURN_IF_ERROR(scenario->mws_->RegisterReceivingClient(
        spec.name, wire::HashPassword(password),
        crypto::SerializeRsaPublicKey(keys.public_key)));
    for (const std::string& attribute : spec.attributes) {
      MWS_RETURN_IF_ERROR(
          scenario->mws_->GrantAttribute(spec.name, attribute).status());
    }
    scenario->companies_[spec.name] = std::make_unique<client::ReceivingClient>(
        spec.name, password, std::move(keys), params, options.cipher,
        options.dem, client_transport, &scenario->clock_, &scenario->rng_);
    scenario->company_names_.push_back(spec.name);
  }

  // Arm the probabilistic fault rules only now, with the fleet and the
  // access matrix fully registered — setup traffic is never faulted.
  if (resilience.enable) {
    util::FaultInjector& injector = *scenario->fault_injector_;
    if (resilience.store_fault_rate > 0) {
      injector.AddRule({.kind = util::FaultKind::kTornWrite,
                        .pattern = "table.",
                        .probability = resilience.store_fault_rate,
                        .message = "injected torn store write"});
    }
    if (resilience.request_loss_rate > 0) {
      injector.AddRule({.kind = util::FaultKind::kTornWrite,
                        .pattern = "transport.call/",
                        .probability = resilience.request_loss_rate,
                        .message = "injected request loss"});
    }
    if (resilience.response_drop_rate > 0) {
      injector.AddRule({.kind = util::FaultKind::kConnectionDrop,
                        .pattern = "transport.call/",
                        .probability = resilience.response_drop_rate,
                        .message = "injected response drop"});
    }
  }
  return scenario;
}

client::ReceivingClient& UtilityScenario::company(const std::string& name) {
  auto it = companies_.find(name);
  assert(it != companies_.end());
  return *it->second;
}

util::Result<size_t> UtilityScenario::DepositReadings(size_t per_device) {
  size_t deposited = 0;
  for (client::SmartDevice& device : devices_) {
    // Recover the class from the device id prefix.
    MeterClass klass = MeterClass::kElectric;
    if (device.device_id().rfind("WATER", 0) == 0) {
      klass = MeterClass::kWater;
    } else if (device.device_id().rfind("GAS", 0) == 0) {
      klass = MeterClass::kGas;
    }
    for (size_t i = 0; i < per_device; ++i) {
      clock_.AdvanceMicros(1'000'000);
      MeterReading reading =
          workload_.Next(device.device_id(), klass, clock_.NowMicros());
      MWS_RETURN_IF_ERROR(
          device
              .DepositMessage(AttributeFor(klass),
                              workload_.Pad(reading.ToPayload()))
              .status());
      ++deposited;
    }
  }
  return deposited;
}

util::Result<size_t> UtilityScenario::DepositReadingsBatch(
    size_t per_device) {
  size_t deposited = 0;
  for (client::SmartDevice& device : devices_) {
    MeterClass klass = MeterClass::kElectric;
    if (device.device_id().rfind("WATER", 0) == 0) {
      klass = MeterClass::kWater;
    } else if (device.device_id().rfind("GAS", 0) == 0) {
      klass = MeterClass::kGas;
    }
    std::vector<std::pair<ibe::Attribute, util::Bytes>> readings;
    readings.reserve(per_device);
    for (size_t i = 0; i < per_device; ++i) {
      clock_.AdvanceMicros(1'000'000);
      MeterReading reading =
          workload_.Next(device.device_id(), klass, clock_.NowMicros());
      readings.emplace_back(AttributeFor(klass),
                            workload_.Pad(reading.ToPayload()));
    }
    MWS_ASSIGN_OR_RETURN(std::vector<util::Result<uint64_t>> outcomes,
                         device.DepositMany(readings));
    for (const util::Result<uint64_t>& outcome : outcomes) {
      MWS_RETURN_IF_ERROR(outcome.status());
      ++deposited;
    }
  }
  return deposited;
}

util::Result<std::vector<client::ReceivedMessage>>
UtilityScenario::RetrieveFor(const std::string& name, uint64_t after_id) {
  return company(name).FetchAndDecrypt(after_id);
}

util::Result<std::vector<client::ReceivedMessage>>
UtilityScenario::RetrieveBulkFor(const std::string& name, uint64_t after_id,
                                 uint32_t chunk_size) {
  return company(name).FetchAndDecryptBulk(after_id, /*from_micros=*/0,
                                           /*to_micros=*/0, chunk_size);
}

}  // namespace mws::sim
