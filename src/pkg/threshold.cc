#include "src/pkg/threshold.h"

#include <set>

namespace mws::pkg {

using math::BigInt;
using math::EcPoint;

util::Result<ThresholdPkg::Dealing> ThresholdPkg::Deal(
    util::RandomSource& rng) const {
  if (threshold_ < 1 || threshold_ > n_) {
    return util::Status::InvalidArgument("need 1 <= threshold <= n");
  }
  const BigInt& q = group_.q();
  // f(x) = a_0 + a_1 x + ... + a_{t-1} x^{t-1}, a_0 = s.
  std::vector<BigInt> coefficients;
  coefficients.reserve(threshold_);
  for (size_t k = 0; k < threshold_; ++k) {
    coefficients.push_back(group_.RandomScalar(rng));
  }

  Dealing out;
  out.params.group = &group_;
  out.params.p_pub = group_.MulGenerator(coefficients[0]);
  out.params.Precompute();
  for (const BigInt& a : coefficients) {
    out.commitments.push_back(group_.MulGenerator(a));
  }
  for (uint64_t x = 1; x <= n_; ++x) {
    // Horner evaluation of f(x) mod q.
    BigInt value;
    for (size_t k = coefficients.size(); k-- > 0;) {
      value = BigInt::Mod(value * BigInt(x) + coefficients[k], q);
    }
    out.shares.push_back(KeyShare{x, value});
  }
  return out;
}

bool ThresholdPkg::VerifyShare(const std::vector<EcPoint>& commitments,
                               const KeyShare& share) const {
  EcPoint expected = PublicShare(commitments, share.index);
  EcPoint actual = group_.MulGenerator(share.value);
  return expected == actual;
}

ThresholdPkg::PartialKey ThresholdPkg::PartialExtract(
    const KeyShare& share, const EcPoint& q_id) const {
  return PartialKey{share.index,
                    group_.curve().ScalarMul(share.value, q_id)};
}

EcPoint ThresholdPkg::PublicShare(const std::vector<EcPoint>& commitments,
                                  uint64_t index) const {
  // sum_k index^k * C_k, Horner style: (((C_{t-1} * x) + C_{t-2}) * x ...).
  // Accumulated in Jacobian coordinates: one inversion at the end
  // instead of one per Horner step.
  const math::CurveGroup& curve = group_.curve();
  math::JacPoint acc = curve.JacInfinity();
  for (size_t k = commitments.size(); k-- > 0;) {
    acc = curve.ScalarMul(BigInt(index), acc);
    acc = curve.Add(acc, commitments[k]);
  }
  return curve.ToAffine(acc);
}

bool ThresholdPkg::VerifyPartial(const std::vector<EcPoint>& commitments,
                                 const EcPoint& q_id,
                                 const PartialKey& partial) const {
  if (partial.d.is_infinity() || !group_.curve().IsOnCurve(partial.d)) {
    return false;
  }
  EcPoint share_pub = PublicShare(commitments, partial.index);
  // One product-of-pairings membership check instead of comparing two
  // full pairings: e(partial.d, P) == e(Q_ID, share_pub) is equivalent
  // to e(partial.d, P) * e(-Q_ID, share_pub) == 1, sharing the
  // product's squaring chain and a single final exponentiation. The
  // pairing is symmetric, so the generator's cached Miller lines serve
  // as the first term's fixed argument.
  std::vector<math::PairingTerm> terms;
  terms.push_back({&group_.generator_pairing(), {}, partial.d});
  terms.push_back({nullptr, group_.curve().Negate(q_id), share_pub});
  return group_.PairingProduct(terms).IsOne();
}

util::Result<BigInt> ThresholdPkg::LagrangeAtZero(
    const std::vector<uint64_t>& xs, size_t i) const {
  const BigInt& q = group_.q();
  BigInt numerator(1);
  BigInt denominator(1);
  for (size_t j = 0; j < xs.size(); ++j) {
    if (j == i) continue;
    numerator = BigInt::Mod(numerator * BigInt(xs[j]), q);
    BigInt diff = BigInt::Mod(BigInt(xs[j]) - BigInt(xs[i]), q);
    denominator = BigInt::Mod(denominator * diff, q);
  }
  MWS_ASSIGN_OR_RETURN(BigInt inv, BigInt::ModInverse(denominator, q));
  return BigInt::Mod(numerator * inv, q);
}

util::Result<ibe::IbePrivateKey> ThresholdPkg::Combine(
    const std::vector<PartialKey>& partials) const {
  if (partials.size() < threshold_) {
    return util::Status::FailedPrecondition(
        "need at least " + std::to_string(threshold_) + " partials, got " +
        std::to_string(partials.size()));
  }
  // Use the first `threshold_` distinct-index partials.
  std::vector<const PartialKey*> used;
  std::set<uint64_t> seen;
  for (const PartialKey& p : partials) {
    if (p.index == 0 || !seen.insert(p.index).second) {
      return util::Status::InvalidArgument("duplicate or zero share index");
    }
    used.push_back(&p);
    if (used.size() == threshold_) break;
  }
  if (used.size() < threshold_) {
    return util::Status::FailedPrecondition("not enough distinct partials");
  }
  std::vector<uint64_t> xs;
  xs.reserve(used.size());
  for (const PartialKey* p : used) xs.push_back(p->index);

  // Key reconstruction in Jacobian coordinates: the affine Add would pay
  // one field inversion per partial; this pays exactly one at the end.
  const math::CurveGroup& curve = group_.curve();
  math::JacPoint acc = curve.JacInfinity();
  for (size_t i = 0; i < used.size(); ++i) {
    MWS_ASSIGN_OR_RETURN(BigInt lambda, LagrangeAtZero(xs, i));
    acc = curve.Add(acc, curve.ScalarMul(lambda, used[i]->d));
  }
  return ibe::IbePrivateKey{curve.ToAffine(acc)};
}

}  // namespace mws::pkg
