#ifndef MWSIBE_PKG_PKG_SERVICE_H_
#define MWSIBE_PKG_PKG_SERVICE_H_

#include <map>
#include <string>

#include "src/crypto/block_cipher.h"
#include "src/ibe/bf_ibe.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/clock.h"
#include "src/util/random.h"
#include "src/util/ttl_store.h"
#include "src/wire/messages.h"
#include "src/wire/transport.h"

namespace mws::pkg {

/// Tunables of the Private Key Generator service.
struct PkgOptions {
  crypto::CipherKind cipher = crypto::CipherKind::kDes;
  int64_t freshness_window_micros = 5ll * 60 * 1'000'000;
  int64_t session_lifetime_micros = 10ll * 60 * 1'000'000;
  /// Optional instrumentation sink (must outlive the service). Exposes
  /// `pkg.requests{op=...}`, `pkg.errors{op=...}`,
  /// `pkg.latency_us{op=...}`, `pkg.batch_items`, the `pkg.sessions` /
  /// `pkg.replay_entries` gauges, and `pkg.sessions_evicted`.
  obs::Registry* metrics = nullptr;
  /// Optional request tracer (must outlive the service).
  obs::Tracer* tracer = nullptr;
  /// Session-registry / replay-cache capacity tuning (stripes, bounds,
  /// reference mode). Shared shape with the Gatekeeper.
  util::ControlPlaneTuning tuning;
};

/// A live RC session at the PKG, established by a verified ticket.
struct PkgSession {
  std::string rc_identity;
  util::Bytes session_key;  // SecK_RC-PKG from the ticket
  /// AID -> attribute map the RC may extract keys for.
  std::map<uint64_t, std::string> aid_attributes;
  int64_t created_micros = 0;
};

/// The Private Key Generator (paper §V.B): holds the master secret s,
/// publishes the public parameters (P, sP), authenticates RCs via
/// MWS-issued tickets, and extracts per-message private keys
/// sI = s * H1(A || Nonce).
///
/// The PKG resolves AIDs to attributes *from the ticket*, so revocation
/// at the MWS takes effect as soon as old tickets expire, and the RC
/// never sees the attribute strings.
///
/// Concurrency contract: Authenticate, ExtractKey and ExtractKeyBatch
/// are safe to call concurrently (the TcpServer worker pool does). The
/// session registry is a striped, TTL-evicting, capacity-bounded
/// util::TtlStore and the replay cache a util::ReplayCache, so
/// concurrent authentications on distinct sessions touch disjoint
/// locks; extraction itself runs lock-free on a session copy — the IBE
/// layer's precompute tables are immutable and its H1 cache has its own
/// lock. The injected RandomSource is wrapped in a util::LockedRandom
/// internally.
class PkgService {
 public:
  /// Runs IBE Setup on construction: draws the master secret for `group`.
  PkgService(const math::TypeAParams& group, util::Bytes mws_pkg_key,
             const util::Clock* clock, util::RandomSource* rng,
             PkgOptions options = {});

  /// The public parameters every SD and RC needs (paper: "the parameters
  /// that should be used by the complete system").
  const ibe::SystemParams& PublicParams() const { return params_; }

  // --- Protocol operations (Fig. 4 phase 3) ---

  /// Verifies ticket + authenticator, opens a session.
  util::Result<wire::PkgAuthResponse> Authenticate(
      const wire::PkgAuthRequest& request);

  /// Extracts sI for one (AID, Nonce) pair; the key travels encrypted
  /// under the RC<->PKG session key.
  util::Result<wire::KeyResponse> ExtractKey(const wire::KeyRequest& request);

  /// Batched extraction: one round trip for many (AID, Nonce) pairs;
  /// per-item success so one revoked AID doesn't fail the batch.
  util::Result<wire::KeyBatchResponse> ExtractKeyBatch(
      const wire::KeyBatchRequest& request);

  /// Binds to "pkg.auth", "pkg.extract" and "pkg.extract_batch" on
  /// `transport`.
  void RegisterEndpoints(wire::InProcessTransport* transport);

  // --- Trusted-path helpers (tests, benches; not exposed on the wire) ---

  /// Direct extraction, bypassing ticket auth.
  ibe::IbePrivateKey ExtractForIdentity(const util::Bytes& identity) const;

  /// Clock-injected maintenance sweep: reaps every expired session
  /// (amortized O(reaped)) and refreshes the gauges. Returns sessions
  /// reaped.
  size_t SweepExpiredSessions();

  size_t ActiveSessions() const { return sessions_.Size(); }
  size_t ReplayEntries() const { return replay_.Size(); }

 private:
  util::Result<PkgSession> GetSession(const util::Bytes& session_id) const;

  /// Per-op instrument triple; all null when metrics are disabled.
  struct OpInstruments {
    obs::Counter* requests = nullptr;
    obs::Counter* errors = nullptr;
    obs::Histogram* latency = nullptr;
  };
  OpInstruments ResolveOp(const char* op);

  /// Core of both extraction paths: resolve the AID through the
  /// session's ticket, extract, seal under the session channel key.
  util::Result<util::Bytes> ExtractSealed(const PkgSession& session,
                                          uint64_t aid,
                                          const util::Bytes& nonce);

  ibe::BfIbe ibe_;
  ibe::SystemParams params_;
  ibe::MasterKey master_;
  util::Bytes mws_pkg_key_;
  const util::Clock* clock_;
  /// Serializes the injected RandomSource for concurrent handlers.
  util::LockedRandom rng_;
  PkgOptions options_;

  /// Session registry (TTL = session lifetime) and replay cache of
  /// accepted authenticators; both striped and capacity-bounded.
  /// GetSession erases expired entries, hence mutable.
  mutable util::TtlStore<PkgSession> sessions_;
  util::ReplayCache replay_;

  OpInstruments auth_obs_;
  OpInstruments extract_obs_;
  OpInstruments batch_obs_;
  obs::Counter* batch_items_counter_ = nullptr;
  obs::Gauge* sessions_gauge_ = nullptr;
  obs::Gauge* replay_gauge_ = nullptr;
  obs::Counter* evicted_counter_ = nullptr;

  void UpdateGauges();

  util::Result<wire::PkgAuthResponse> AuthenticateImpl(
      const wire::PkgAuthRequest& request);
};

}  // namespace mws::pkg

#endif  // MWSIBE_PKG_PKG_SERVICE_H_
