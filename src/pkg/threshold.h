#ifndef MWSIBE_PKG_THRESHOLD_H_
#define MWSIBE_PKG_THRESHOLD_H_

#include <vector>

#include "src/ibe/bf_ibe.h"

namespace mws::pkg {

/// Threshold (distributed) PKG — the paper's §VIII mitigation for the
/// key-escrow single point of failure ("A form of threshold cryptography
/// may also be considered, to create a distributed PKG, instead of a key
/// escrow").
///
/// The master secret s is Shamir-shared over Z_q among n share servers
/// with reconstruction threshold t. Private-key extraction never
/// reconstructs s: each server returns a partial d_i = s_i * Q_ID and
/// any t partials combine via Lagrange interpolation in the exponent:
///
///   d_ID = sum_i lambda_i * d_i  where lambda_i = prod_{j!=i} x_j/(x_j-x_i).
///
/// Feldman commitments (a_k * P for each polynomial coefficient) make
/// both shares and partials publicly verifiable.
class ThresholdPkg {
 public:
  /// One server's share of the master secret.
  struct KeyShare {
    uint64_t index = 0;  // x-coordinate, >= 1
    math::BigInt value;  // f(index) mod q
  };

  /// A server's response to an extraction request.
  struct PartialKey {
    uint64_t index = 0;
    math::EcPoint d;  // s_i * Q_ID
  };

  /// Output of the trusted dealer.
  struct Dealing {
    ibe::SystemParams params;           // P_pub = f(0) * P = s * P
    std::vector<KeyShare> shares;       // n shares
    std::vector<math::EcPoint> commitments;  // a_k * P, k = 0..t-1
  };

  ThresholdPkg(const math::TypeAParams& group, size_t threshold, size_t n)
      : group_(group), ibe_(group), threshold_(threshold), n_(n) {}

  /// Trusted-dealer setup: samples f of degree t-1, returns shares and
  /// Feldman commitments. Pre: 1 <= threshold <= n.
  util::Result<Dealing> Deal(util::RandomSource& rng) const;

  /// True iff `share` is consistent with the commitments
  /// (share.value * P == sum_k index^k * C_k).
  bool VerifyShare(const std::vector<math::EcPoint>& commitments,
                   const KeyShare& share) const;

  /// Server-side: partial extraction for one identity point.
  PartialKey PartialExtract(const KeyShare& share,
                            const math::EcPoint& q_id) const;

  /// The public key s_i * P of server `index`, derived from the
  /// commitments (no interaction with the server).
  math::EcPoint PublicShare(const std::vector<math::EcPoint>& commitments,
                            uint64_t index) const;

  /// True iff `partial` was produced with the share committed for its
  /// index: e(d_i, P) == e(Q_ID, s_i*P). Costs two pairings.
  bool VerifyPartial(const std::vector<math::EcPoint>& commitments,
                     const math::EcPoint& q_id,
                     const PartialKey& partial) const;

  /// Client-side: combines >= threshold partials (distinct indices) into
  /// the full private key. Fails on too few or duplicate indices.
  util::Result<ibe::IbePrivateKey> Combine(
      const std::vector<PartialKey>& partials) const;

  size_t threshold() const { return threshold_; }
  size_t share_count() const { return n_; }

 private:
  /// Lagrange coefficient for x_i evaluated at 0, over Z_q.
  util::Result<math::BigInt> LagrangeAtZero(
      const std::vector<uint64_t>& xs, size_t i) const;

  const math::TypeAParams& group_;
  ibe::BfIbe ibe_;
  size_t threshold_;
  size_t n_;
};

}  // namespace mws::pkg

#endif  // MWSIBE_PKG_THRESHOLD_H_
