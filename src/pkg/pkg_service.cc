#include "src/pkg/pkg_service.h"

#include <cstdlib>

#include "src/crypto/hash.h"
#include "src/crypto/modes.h"
#include "src/ibe/attribute.h"
#include "src/util/hex.h"
#include "src/wire/auth.h"

namespace mws::pkg {

PkgService::PkgService(const math::TypeAParams& group,
                       util::Bytes mws_pkg_key, const util::Clock* clock,
                       util::RandomSource* rng, PkgOptions options)
    : ibe_(group),
      mws_pkg_key_(std::move(mws_pkg_key)),
      clock_(clock),
      rng_(rng),
      options_(options),
      sessions_({.stripes =
                     options.tuning.reference_mode ? 1 : options.tuning.stripes,
                 .max_entries = options.tuning.max_sessions,
                 .ttl_micros = options.session_lifetime_micros}),
      replay_({.stripes =
                   options.tuning.reference_mode ? 1 : options.tuning.stripes,
               .max_entries = options.tuning.max_replay_entries,
               .window_micros = options.freshness_window_micros}) {
  auto setup = ibe_.Setup(*rng);
  params_ = setup.first;
  master_ = setup.second;
  auth_obs_ = ResolveOp("auth");
  extract_obs_ = ResolveOp("extract");
  batch_obs_ = ResolveOp("extract_batch");
  if (options_.metrics != nullptr) {
    batch_items_counter_ = options_.metrics->GetCounter("pkg.batch_items");
    sessions_gauge_ = options_.metrics->GetGauge("pkg.sessions");
    replay_gauge_ = options_.metrics->GetGauge("pkg.replay_entries");
    evicted_counter_ = options_.metrics->GetCounter("pkg.sessions_evicted");
  }
}

void PkgService::UpdateGauges() {
  if (sessions_gauge_ != nullptr) {
    sessions_gauge_->Set(static_cast<int64_t>(sessions_.Size()));
  }
  if (replay_gauge_ != nullptr) {
    replay_gauge_->Set(static_cast<int64_t>(replay_.Size()));
  }
}

size_t PkgService::SweepExpiredSessions() {
  size_t removed = sessions_.SweepExpired(clock_->NowMicros());
  UpdateGauges();
  return removed;
}

PkgService::OpInstruments PkgService::ResolveOp(const char* op) {
  OpInstruments out;
  if (options_.metrics == nullptr) return out;
  out.requests = options_.metrics->GetCounter("pkg.requests", {{"op", op}});
  out.errors = options_.metrics->GetCounter("pkg.errors", {{"op", op}});
  out.latency = options_.metrics->GetHistogram("pkg.latency_us", {{"op", op}});
  return out;
}

namespace {

/// Success/failure accounting shared by the protocol ops.
template <typename ResultT>
void CountOutcome(const ResultT& result, obs::Counter* requests,
                  obs::Counter* errors) {
  if (requests != nullptr) requests->Increment();
  if (errors != nullptr && !result.ok()) errors->Increment();
}

}  // namespace

util::Result<wire::PkgAuthResponse> PkgService::Authenticate(
    const wire::PkgAuthRequest& request) {
  obs::ScopedTimer timer(auth_obs_.latency);
  obs::Span span = obs::Tracer::MaybeStartTrace(options_.tracer, "pkg.auth");
  util::Result<wire::PkgAuthResponse> result = AuthenticateImpl(request);
  CountOutcome(result, auth_obs_.requests, auth_obs_.errors);
  return result;
}

util::Result<wire::PkgAuthResponse> PkgService::AuthenticateImpl(
    const wire::PkgAuthRequest& request) {
  // Decrypt the ticket with the MWS<->PKG service key.
  util::Bytes ticket_key =
      wire::DeriveChannelKey(mws_pkg_key_, options_.cipher, "mws-pkg-ticket");
  auto ticket_bytes =
      crypto::CbcDecrypt(options_.cipher, ticket_key, request.ticket);
  if (!ticket_bytes.ok()) {
    return util::Status::Unauthenticated("ticket decryption failed");
  }
  auto ticket = wire::TicketPlain::Decode(ticket_bytes.value());
  if (!ticket.ok()) {
    return util::Status::Unauthenticated("ticket malformed");
  }
  int64_t now = clock_->NowMicros();
  if (now > ticket->expiry_micros) {
    return util::Status::Unauthenticated("ticket expired");
  }
  if (ticket->rc_identity != request.rc_identity) {
    return util::Status::Unauthenticated("ticket identity mismatch");
  }
  // Decrypt the authenticator with the session key carried in the ticket.
  util::Bytes auth_key = wire::DeriveChannelKey(
      ticket->session_key, options_.cipher, "rc-pkg-authenticator");
  auto auth_bytes =
      crypto::CbcDecrypt(options_.cipher, auth_key, request.authenticator);
  if (!auth_bytes.ok()) {
    return util::Status::Unauthenticated("authenticator decryption failed");
  }
  auto auth = wire::AuthenticatorPlain::Decode(auth_bytes.value());
  if (!auth.ok()) {
    return util::Status::Unauthenticated("authenticator malformed");
  }
  if (auth->rc_identity != request.rc_identity) {
    return util::Status::Unauthenticated("authenticator identity mismatch");
  }
  if (std::llabs(now - auth->timestamp_micros) >
      options_.freshness_window_micros) {
    return util::Status::Unauthenticated("authenticator expired");
  }
  std::string replay_key = util::HexEncode(crypto::Sha256(
      util::Concat(request.authenticator, request.ticket)));

  // Draw the session id before taking the lock so the (locked) rng call
  // never nests inside mutex_.
  wire::PkgAuthResponse response;
  response.session_id = rng_.Generate(16);

  // Replay protection on the authenticator ciphertext.
  if (!replay_.CheckAndInsert(auth->timestamp_micros, replay_key, now)) {
    UpdateGauges();
    return util::Status::Unauthenticated("authenticator replayed");
  }

  if (options_.tuning.reference_mode) {
    // Pre-PR-10 behavior: garbage-collect the whole registry on every
    // authentication — O(live sessions) inside the critical section.
    sessions_.SweepExpiredFull(now);
  } else {
    // Same observable invariant (no expired session outlives the next
    // successful auth) at amortized O(stripes + reaped) cost.
    sessions_.SweepExpired(now);
  }

  PkgSession session;
  session.rc_identity = ticket->rc_identity;
  session.session_key = ticket->session_key;
  for (const auto& [aid, attribute] : ticket->aid_attributes) {
    session.aid_attributes[aid] = attribute;
  }
  session.created_micros = now;

  auto stats = sessions_.Insert(util::StringFromBytes(response.session_id),
                                std::move(session), now);
  if (evicted_counter_ != nullptr && stats.evicted > 0) {
    evicted_counter_->Increment(static_cast<int64_t>(stats.evicted));
  }
  UpdateGauges();
  return response;
}

util::Result<PkgSession> PkgService::GetSession(
    const util::Bytes& session_id) const {
  bool expired = false;
  auto session = sessions_.Get(util::StringFromBytes(session_id),
                               clock_->NowMicros(), &expired);
  if (!session.has_value()) {
    if (expired) {
      // The lookup reaped the expired entry; reflect that immediately.
      if (sessions_gauge_ != nullptr) {
        sessions_gauge_->Set(static_cast<int64_t>(sessions_.Size()));
      }
      return util::Status::Unauthenticated("PKG session expired");
    }
    return util::Status::Unauthenticated("unknown PKG session");
  }
  return *std::move(session);
}

util::Result<util::Bytes> PkgService::ExtractSealed(
    const PkgSession& session, uint64_t aid, const util::Bytes& nonce) {
  auto it = session.aid_attributes.find(aid);
  if (it == session.aid_attributes.end()) {
    // The AID is not in the RC's ticket: either never granted or revoked
    // before the ticket was issued.
    return util::Status::PermissionDenied(
        "AID not authorized by ticket: " + std::to_string(aid));
  }
  // "PKG replaces AID with A to obtain A||Nonce ... and sends back sI."
  util::Bytes identity =
      ibe::DeriveIdentity(it->second, ibe::MessageNonce{nonce});
  ibe::IbePrivateKey key = ibe_.Extract(master_, identity);
  util::Bytes key_bytes = ibe_.group().curve().SerializeCompressed(key.d);

  util::Bytes channel_key = wire::DeriveChannelKey(
      session.session_key, options_.cipher, "rc-pkg-keydelivery");
  return crypto::CbcEncrypt(options_.cipher, channel_key, key_bytes, rng_);
}

util::Result<wire::KeyResponse> PkgService::ExtractKey(
    const wire::KeyRequest& request) {
  obs::ScopedTimer timer(extract_obs_.latency);
  obs::Span span =
      obs::Tracer::MaybeStartTrace(options_.tracer, "pkg.extract");
  util::Result<wire::KeyResponse> result =
      [&]() -> util::Result<wire::KeyResponse> {
    MWS_ASSIGN_OR_RETURN(PkgSession session, GetSession(request.session_id));
    obs::Span extract = span.Child("ibe.extract_seal");
    MWS_ASSIGN_OR_RETURN(util::Bytes sealed,
                         ExtractSealed(session, request.aid, request.nonce));
    return wire::KeyResponse{std::move(sealed)};
  }();
  CountOutcome(result, extract_obs_.requests, extract_obs_.errors);
  return result;
}

util::Result<wire::KeyBatchResponse> PkgService::ExtractKeyBatch(
    const wire::KeyBatchRequest& request) {
  obs::ScopedTimer timer(batch_obs_.latency);
  obs::Span span =
      obs::Tracer::MaybeStartTrace(options_.tracer, "pkg.extract_batch");
  if (batch_obs_.requests != nullptr) {
    batch_obs_.requests->Increment();
    batch_items_counter_->Increment(request.items.size());
  }
  auto counted_session = GetSession(request.session_id);
  if (!counted_session.ok()) {
    if (batch_obs_.errors != nullptr) batch_obs_.errors->Increment();
    return counted_session.status();
  }
  PkgSession session = std::move(counted_session).value();
  wire::KeyBatchResponse response;
  response.items.resize(request.items.size());

  // Authorization + identity hashing per item; the scalar
  // multiplications of every authorized item then run as ONE
  // BfIbe::ExtractBatch call, so the batch pays a single shared field
  // inversion for all affine normalizations instead of one per key.
  std::vector<math::EcPoint> points;
  std::vector<size_t> point_index;  // position of points[i] in the request
  points.reserve(request.items.size());
  {
    obs::Span hash = span.Child("ibe.hash_batch");
    for (size_t i = 0; i < request.items.size(); ++i) {
      const auto& [aid, nonce] = request.items[i];
      auto it = session.aid_attributes.find(aid);
      if (it == session.aid_attributes.end()) {
        util::Status denied = util::Status::PermissionDenied(
            "AID not authorized by ticket: " + std::to_string(aid));
        response.items[i].ok = false;
        response.items[i].payload = util::BytesFromString(denied.ToString());
        continue;
      }
      util::Bytes identity =
          ibe::DeriveIdentity(it->second, ibe::MessageNonce{nonce});
      points.push_back(ibe_.HashToPoint(identity));
      point_index.push_back(i);
    }
  }

  obs::Span extract = span.Child("ibe.extract_batch_seal");
  std::vector<ibe::IbePrivateKey> keys = ibe_.ExtractBatch(master_, points);
  util::Bytes channel_key = wire::DeriveChannelKey(
      session.session_key, options_.cipher, "rc-pkg-keydelivery");
  for (size_t k = 0; k < keys.size(); ++k) {
    util::Bytes key_bytes =
        ibe_.group().curve().SerializeCompressed(keys[k].d);
    auto sealed =
        crypto::CbcEncrypt(options_.cipher, channel_key, key_bytes, rng_);
    wire::KeyBatchResponse::Item& item = response.items[point_index[k]];
    if (sealed.ok()) {
      item.ok = true;
      item.payload = std::move(sealed).value();
    } else {
      item.ok = false;
      item.payload = util::BytesFromString(sealed.status().ToString());
    }
  }
  return response;
}

ibe::IbePrivateKey PkgService::ExtractForIdentity(
    const util::Bytes& identity) const {
  return ibe_.Extract(master_, identity);
}

void PkgService::RegisterEndpoints(wire::InProcessTransport* transport) {
  transport->Register(
      "pkg.auth",
      [this](const util::Bytes& raw) -> util::Result<util::Bytes> {
        MWS_ASSIGN_OR_RETURN(wire::PkgAuthRequest request,
                             wire::PkgAuthRequest::Decode(raw));
        MWS_ASSIGN_OR_RETURN(wire::PkgAuthResponse response,
                             Authenticate(request));
        return response.Encode();
      });
  transport->Register(
      "pkg.extract",
      [this](const util::Bytes& raw) -> util::Result<util::Bytes> {
        MWS_ASSIGN_OR_RETURN(wire::KeyRequest request,
                             wire::KeyRequest::Decode(raw));
        MWS_ASSIGN_OR_RETURN(wire::KeyResponse response, ExtractKey(request));
        return response.Encode();
      });
  transport->Register(
      "pkg.extract_batch",
      [this](const util::Bytes& raw) -> util::Result<util::Bytes> {
        MWS_ASSIGN_OR_RETURN(wire::KeyBatchRequest request,
                             wire::KeyBatchRequest::Decode(raw));
        MWS_ASSIGN_OR_RETURN(wire::KeyBatchResponse response,
                             ExtractKeyBatch(request));
        return response.Encode();
      });
}

}  // namespace mws::pkg
