#include "src/wire/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace mws::wire {

RetryingTransport::RetryingTransport(Transport* base, const util::Clock* clock,
                                     RetryOptions options)
    : base_(base),
      clock_(clock),
      options_(options),
      sleep_([](int64_t micros) {
        std::this_thread::sleep_for(std::chrono::microseconds(micros));
      }),
      budget_(options.retry_budget),
      rng_(options.seed) {
  if (options.metrics != nullptr) {
    calls_counter_ = options.metrics->GetCounter("retry.calls");
    attempts_counter_ = options.metrics->GetCounter("retry.attempts");
    retries_counter_ = options.metrics->GetCounter("retry.retries");
    deadline_counter_ = options.metrics->GetCounter("retry.deadline_exceeded");
    budget_counter_ = options.metrics->GetCounter("retry.budget_exhausted");
    backoff_us_counter_ = options.metrics->GetCounter("retry.backoff_sleep_us");
  }
}

double RetryingTransport::budget() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_;
}

int64_t RetryingTransport::NextBackoffMicros(int64_t prev_micros) {
  // Decorrelated jitter (AWS architecture blog): sleep = min(cap,
  // uniform(base, prev * 3)). Grows exponentially in expectation while
  // spreading concurrent retriers apart instead of synchronizing them.
  const int64_t base = std::max<int64_t>(1, options_.initial_backoff_micros);
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t hi = std::max(base + 1, prev_micros * 3);
  int64_t sleep =
      base + static_cast<int64_t>(rng_.NextU64() %
                                  static_cast<uint64_t>(hi - base));
  return std::min(sleep, options_.max_backoff_micros);
}

util::Result<util::Bytes> RetryingTransport::Call(const std::string& endpoint,
                                                  const util::Bytes& request) {
  Bump(stats_.calls, calls_counter_);
  const int64_t deadline =
      options_.call_deadline_micros > 0
          ? clock_->NowMicros() + options_.call_deadline_micros
          : 0;
  int64_t backoff = options_.initial_backoff_micros;
  util::Status last_error = util::Status::Ok();

  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (deadline != 0 && clock_->NowMicros() >= deadline) {
      Bump(stats_.deadline_exceeded, deadline_counter_);
      return util::Status::DeadlineExceeded(
          "call deadline exceeded after " + std::to_string(attempt - 1) +
          " attempt(s) on " + endpoint +
          (last_error.ok() ? "" : "; last error: " + last_error.ToString()));
    }
    Bump(stats_.attempts, attempts_counter_);
    util::Result<util::Bytes> result = base_->Call(endpoint, request);
    if (result.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      budget_ = std::min(options_.retry_budget,
                         budget_ + options_.budget_refund);
      return result;
    }
    last_error = result.status();
    if (!util::IsRetryableCode(last_error.code())) return result;
    if (attempt == options_.max_attempts) return result;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (budget_ < 1.0) {
        Bump(stats_.budget_exhausted, budget_counter_);
        return result;
      }
      budget_ -= 1.0;
    }
    int64_t sleep = NextBackoffMicros(backoff);
    if (deadline != 0) {
      int64_t remaining = deadline - clock_->NowMicros();
      if (remaining <= 0) {
        Bump(stats_.deadline_exceeded, deadline_counter_);
        return util::Status::DeadlineExceeded(
            "call deadline exceeded after " + std::to_string(attempt) +
            " attempt(s) on " + endpoint + "; last error: " +
            last_error.ToString());
      }
      sleep = std::min(sleep, remaining);
    }
    backoff = sleep;
    Bump(stats_.retries, retries_counter_);
    if (sleep > 0) {
      if (backoff_us_counter_ != nullptr) {
        backoff_us_counter_->Increment(static_cast<uint64_t>(sleep));
      }
      sleep_(sleep);
    }
  }
  return last_error;  // unreachable: the loop always returns
}

}  // namespace mws::wire
