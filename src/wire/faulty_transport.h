#ifndef MWSIBE_WIRE_FAULTY_TRANSPORT_H_
#define MWSIBE_WIRE_FAULTY_TRANSPORT_H_

#include <atomic>
#include <string>

#include "src/util/fault.h"
#include "src/wire/transport.h"

namespace mws::wire {

/// Transport decorator that injects network faults, driven by a shared
/// util::FaultInjector (operation tag: "transport.call/<endpoint>").
///
/// Fault semantics on a Transport:
///   kError          — fail the call without delivering the request,
///   kTornWrite      — request lost on the wire (not delivered), caller
///                     sees kUnavailable,
///   kConnectionDrop — request *delivered and executed*, response lost;
///                     caller sees kUnavailable. Retrying re-executes
///                     the handler, which is exactly the duplicate the
///                     MWS dedupes by (ID_SD, nonce),
///   kDelay          — sleep `delay_micros`, then deliver normally.
///
/// Thread-safe over a thread-safe base transport.
class FaultyTransport : public Transport {
 public:
  /// Borrows `base` and `injector`; both must outlive this.
  FaultyTransport(Transport* base, util::FaultInjector* injector)
      : base_(base), injector_(injector) {}

  util::Result<util::Bytes> Call(const std::string& endpoint,
                                 const util::Bytes& request) override;

  /// Calls whose request never reached the backend / whose response was
  /// dropped after execution.
  uint64_t requests_lost() const {
    return requests_lost_.load(std::memory_order_relaxed);
  }
  uint64_t responses_lost() const {
    return responses_lost_.load(std::memory_order_relaxed);
  }

 private:
  Transport* base_;
  util::FaultInjector* injector_;
  std::atomic<uint64_t> requests_lost_{0};
  std::atomic<uint64_t> responses_lost_{0};
};

}  // namespace mws::wire

#endif  // MWSIBE_WIRE_FAULTY_TRANSPORT_H_
