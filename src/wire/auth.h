#ifndef MWSIBE_WIRE_AUTH_H_
#define MWSIBE_WIRE_AUTH_H_

#include <string>

#include "src/crypto/block_cipher.h"
#include "src/util/bytes.h"

namespace mws::wire {

/// Shared definitions both sides of the RC<->MWS authentication use.
/// Per the paper, the RC "computes a hash of its password" and uses it as
/// the symmetric key; the Gatekeeper stores the same hash.

/// HashPassword = SHA-256(password).
util::Bytes HashPassword(const std::string& password);

/// Derives the cipher key for the auth exchange from the password hash
/// (the hash is 32 bytes; DES needs 8 — both sides derive the same key).
util::Bytes DeriveAuthKey(const util::Bytes& password_hash,
                          crypto::CipherKind cipher);

/// Derives the cipher key for ticket/authenticator/key-response traffic
/// from a session or service key of arbitrary length.
util::Bytes DeriveChannelKey(const util::Bytes& secret,
                             crypto::CipherKind cipher,
                             const std::string& purpose);

}  // namespace mws::wire

#endif  // MWSIBE_WIRE_AUTH_H_
