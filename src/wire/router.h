#ifndef MWSIBE_WIRE_ROUTER_H_
#define MWSIBE_WIRE_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/wire/transport.h"

namespace mws::wire {

/// Versioned consistent-hash shard map: `shard_count` shards, each
/// projected onto the hash ring as `vnodes` virtual nodes (FNV-1a of
/// "v<version>/s<shard>/<vnode>"). A key owns the first ring point at or
/// after its own hash, wrapping at the top. Virtual nodes keep the load
/// spread within a few percent of uniform, and growing the fleet by one
/// shard moves only ~1/(n+1) of the keyspace — the classic consistent-
/// hashing property the router's rebalance story depends on.
///
/// The map is immutable after construction; `version` participates in
/// every ring hash so two maps with the same shard count but different
/// versions place keys differently (a deliberate property for rollover
/// tests). Copyable, cheap to query, safe to share between threads.
class ShardMap {
 public:
  /// `shard_count` must be >= 1; `vnodes` >= 1 (64 is a good default:
  /// peak/mean imbalance stays under ~15% for small fleets).
  explicit ShardMap(size_t shard_count, uint32_t version = 1,
                    uint32_t vnodes = 64);

  /// The owning shard for `key`, in [0, shard_count).
  size_t ShardFor(std::string_view key) const;

  size_t shard_count() const { return shard_count_; }
  uint32_t version() const { return version_; }

  /// FNV-1a 64-bit with a murmur-style finalizer — stable across
  /// platforms, deterministic, and fully avalanched so near-identical
  /// keys (attribute families like "ZONE-1"/"ZONE-2") spread across the
  /// ring instead of clustering in one gap. Not adversarially collision
  /// resistant: shard keys are server-assigned attributes.
  static uint64_t Hash(std::string_view s);

 private:
  size_t shard_count_;
  uint32_t version_;
  /// Sorted (ring position, shard) points.
  std::vector<std::pair<uint64_t, uint32_t>> ring_;
};

/// A Transport that spreads one logical warehouse over N independent
/// MWS shards, each reached through its own child transport. Clients
/// are oblivious: they speak the ordinary mws.* protocol to the router
/// and see one warehouse with one id space.
///
/// Routing:
///  - Deposits shard by the message attribute (ShardMap::ShardFor), so
///    a retransmit of a given message always lands on the shard holding
///    its dedup marker — exactly-once survives sharding.
///  - `mws.deposit_batch` is split into per-shard sub-batches, issued to
///    every involved shard, and the per-item outcomes are recombined in
///    request order. A shard that fails wholesale degrades to per-item
///    errors for its items only (kUnavailable and friends stay
///    retryable), so one dead shard never poisons the batch for the
///    others.
///  - `mws.auth` fans out to every shard and concatenates the per-shard
///    gatekeeper sessions into one composite session blob; retrieval
///    decomposes it again. A client holds "a session" exactly as before.
///  - `mws.retrieve` / `mws.retrieve_chunk` fan out, remap per-shard
///    message ids into the router id space, and k-way merge ascending.
///    Chunked retrieval trims the merge to `max_messages` and re-derives
///    per-shard cursors from the merged continuation id on the next
///    call, so pagination is exact across shards.
///  - Everything else (pkg.*, obs.stats, ...) forwards verbatim to the
///    control transport.
///
/// Id space: a shard's local id L on shard S becomes router id
/// L * shard_count + S — injective across shards and order-preserving
/// per shard, so per-shard cursors decompose from a router cursor with
/// pure arithmetic (LocalAfter) and no cursor state in the router.
///
/// Deployment contract: the control plane (device registrations, RC
/// registrations, attribute grants) must be replicated onto every shard
/// in the same order. That makes the per-(RC, attribute) AID tables
/// identical on all shards, which is what lets the router return any
/// single shard's retrieval token for a merged result set — the ticket
/// inside decodes to the same AID->attribute map everywhere. Policy
/// expressions (lazily materialized grants) break this property and are
/// not supported behind the router.
///
struct ShardRouterOptions {
  /// Transport for non-warehouse endpoints (PKG, stats). Defaults to
  /// the shard-0 transport.
  Transport* control = nullptr;
  /// Optional instrumentation (must outlive the router): exposes
  /// `router.calls{shard=i}` and `router.shard_errors{shard=i}`.
  obs::Registry* metrics = nullptr;
};

/// Concurrency: stateless beyond atomic counters; safe for concurrent
/// Call()s as long as the child transports are.
class ShardRouter : public Transport {
 public:
  /// `shards[i]` serves shard i of `map`; all must outlive the router.
  /// Pre: shards.size() == map.shard_count().
  ShardRouter(ShardMap map, std::vector<Transport*> shards,
              ShardRouterOptions options = {});

  util::Result<util::Bytes> Call(const std::string& endpoint,
                                 const util::Bytes& request) override;

  const ShardMap& map() const { return map_; }
  size_t shard_count() const { return shards_.size(); }
  /// Protocol calls issued to shard i (sub-calls, not client calls).
  uint64_t shard_calls(size_t i) const {
    return calls_[i].load(std::memory_order_relaxed);
  }

  // --- Id-space arithmetic (exposed for tests) ---

  /// Router id for a shard-local id. Local id 0 ("no message") is
  /// preserved as 0.
  static uint64_t RouterId(uint64_t local_id, size_t shard,
                           size_t shard_count) {
    return local_id == 0 ? 0 : local_id * shard_count + shard;
  }
  /// Shard-local `after` cursor equivalent to router-space cursor
  /// `after` for `shard`: the largest local L with
  /// RouterId(L) <= after (0 when none).
  static uint64_t LocalAfter(uint64_t after, size_t shard,
                             size_t shard_count) {
    return after >= shard ? (after - shard) / shard_count : 0;
  }

  /// Composite gatekeeper session: `u8 version || u32 count || count x
  /// length-prefixed per-shard sessions`. Exposed for tests.
  static util::Bytes EncodeCompositeSession(
      const std::vector<util::Bytes>& sessions);
  static util::Result<std::vector<util::Bytes>> DecodeCompositeSession(
      const util::Bytes& blob, size_t expected_count);

 private:
  util::Result<util::Bytes> Deposit(const util::Bytes& request);
  util::Result<util::Bytes> DepositBatch(const util::Bytes& request);
  util::Result<util::Bytes> Auth(const util::Bytes& request);
  util::Result<util::Bytes> Retrieve(const util::Bytes& request);
  util::Result<util::Bytes> RetrieveChunk(const util::Bytes& request);

  util::Result<util::Bytes> CallShard(size_t shard,
                                      const std::string& endpoint,
                                      const util::Bytes& request);

  ShardMap map_;
  std::vector<Transport*> shards_;
  Transport* control_;
  std::unique_ptr<std::atomic<uint64_t>[]> calls_;
  /// Resolved at construction when metrics are set; null otherwise.
  std::vector<obs::Counter*> calls_counters_;
  std::vector<obs::Counter*> error_counters_;
};

}  // namespace mws::wire

#endif  // MWSIBE_WIRE_ROUTER_H_
