#ifndef MWSIBE_WIRE_TRANSPORT_H_
#define MWSIBE_WIRE_TRANSPORT_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace mws::wire {

/// Synthetic network model. The paper's prototype ran four servers over
/// TCP on one host; we substitute an in-process transport with an
/// explicit latency/bandwidth model so experiments can account for (and
/// sweep) deployment network cost without real sockets or sleeps.
struct NetworkModel {
  /// One-way propagation delay per message, microseconds.
  int64_t latency_micros = 0;
  /// Serialization bandwidth; 0 = infinite.
  int64_t bytes_per_second = 0;

  /// Constrained-device uplink shapes used by the benches.
  static NetworkModel Loopback() { return {0, 0}; }
  static NetworkModel Lan() { return {200, 1'000'000'000 / 8}; }
  static NetworkModel Wan() { return {20'000, 100'000'000 / 8}; }
  /// GPRS-class link of a 2010 smart meter.
  static NetworkModel MeterUplink() { return {300'000, 40'000 / 8}; }
};

/// Traffic and simulated-time accounting for one transport. Counters are
/// atomics so concurrent Call()s (e.g. from the TcpServer worker pool)
/// can update them without a lock; readers see each field individually
/// consistent, not a cross-field snapshot.
struct TransportStats {
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> request_bytes{0};
  std::atomic<uint64_t> response_bytes{0};
  /// Total modeled network time (both directions, all calls).
  std::atomic<int64_t> simulated_network_micros{0};
};

/// Request/response transport between clients and services. Handlers are
/// registered per endpoint name ("mws.deposit", "pkg.extract", ...).
class Transport {
 public:
  using Handler =
      std::function<util::Result<util::Bytes>(const util::Bytes& request)>;

  virtual ~Transport() = default;

  virtual util::Result<util::Bytes> Call(const std::string& endpoint,
                                         const util::Bytes& request) = 0;
};

/// In-process transport: dispatches to registered handlers, charging the
/// network model's cost to its stats counter.
class InProcessTransport : public Transport {
 public:
  explicit InProcessTransport(NetworkModel model = NetworkModel::Loopback())
      : model_(model) {}

  /// Registers `handler`; overwrites any previous registration. Not safe
  /// concurrently with Call(): register every endpoint before serving
  /// (the handler map is read lock-free on the hot path).
  void Register(const std::string& endpoint, Handler handler);

  util::Result<util::Bytes> Call(const std::string& endpoint,
                                 const util::Bytes& request) override;

  const TransportStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.calls = 0;
    stats_.request_bytes = 0;
    stats_.response_bytes = 0;
    stats_.simulated_network_micros = 0;
  }
  const NetworkModel& model() const { return model_; }
  /// Not safe concurrently with Call(); set the model before serving.
  void set_model(const NetworkModel& model) { model_ = model; }

  /// When true, Call() sleeps for the modeled transfer time instead of
  /// only charging it to the stats — used by the concurrency benches to
  /// reproduce deployment latency on loopback, where overlapping that
  /// latency across dispatch workers is the effect under test. Set
  /// before serving (same rule as set_model).
  void set_realize_network(bool realize) { realize_network_ = realize; }

 private:
  /// Modeled one-way cost of sending `bytes`.
  int64_t TransferMicros(size_t bytes) const;

  NetworkModel model_;
  bool realize_network_ = false;
  TransportStats stats_;
  std::map<std::string, Handler> handlers_;
};

}  // namespace mws::wire

#endif  // MWSIBE_WIRE_TRANSPORT_H_
