#ifndef MWSIBE_WIRE_STATS_H_
#define MWSIBE_WIRE_STATS_H_

#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/result.h"
#include "src/wire/transport.h"

namespace mws::wire {

/// Endpoint name for the observability fetch.
inline constexpr char kStatsEndpoint[] = "obs.stats";

/// Registers `obs.stats` on `transport`, serving snapshots of `registry`
/// (required) and, when spans are requested, `tracer` (may be null).
/// Both must outlive the transport.
void RegisterStatsEndpoint(InProcessTransport* transport,
                           const obs::Registry* registry,
                           const obs::Tracer* tracer = nullptr);

/// Decoded `obs.stats` response.
struct StatsDump {
  obs::RegistrySnapshot registry;
  std::vector<obs::SpanRecord> spans;
};

/// Client-side helper: issues a StatsRequest over `transport` and
/// decodes the payloads.
util::Result<StatsDump> FetchStats(Transport* transport, bool include_spans);

}  // namespace mws::wire

#endif  // MWSIBE_WIRE_STATS_H_
