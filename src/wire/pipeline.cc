#include "src/wire/pipeline.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/wire/messages.h"

namespace mws::wire {

namespace {

/// Same client-side response cap as TcpClientTransport.
constexpr uint32_t kMaxFrame = 64 * 1024 * 1024;

enum class IoResult { kOk, kTimeout, kClosed };

/// Waits until `fd` is ready for `events`; `timeout_millis <= 0` waits
/// forever.
IoResult PollFor(int fd, short events, int timeout_millis) {
  pollfd p{fd, events, 0};
  for (;;) {
    int rc = ::poll(&p, 1, timeout_millis <= 0 ? -1 : timeout_millis);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return IoResult::kClosed;
    }
    if (rc == 0) return IoResult::kTimeout;
    return IoResult::kOk;
  }
}

IoResult ReadFull(int fd, uint8_t* out, size_t len, int timeout_millis) {
  size_t done = 0;
  while (done < len) {
    IoResult ready = PollFor(fd, POLLIN, timeout_millis);
    if (ready != IoResult::kOk) return ready;
    ssize_t n = ::read(fd, out + done, len - done);
    if (n <= 0) return IoResult::kClosed;
    done += static_cast<size_t>(n);
  }
  return IoResult::kOk;
}

/// MSG_NOSIGNAL: with requests in flight the peer may well close mid
/// write; that must surface as an error, not SIGPIPE.
IoResult SendFull(int fd, const uint8_t* data, size_t len,
                  int timeout_millis) {
  size_t done = 0;
  while (done < len) {
    IoResult ready = PollFor(fd, POLLOUT, timeout_millis);
    if (ready != IoResult::kOk) return ready;
    ssize_t n = ::send(fd, data + done, len - done, MSG_NOSIGNAL);
    if (n <= 0) return IoResult::kClosed;
    done += static_cast<size_t>(n);
  }
  return IoResult::kOk;
}

/// Blocking connect to host:port; -1 on failure.
int Dial(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

PipelinedTcpClientTransport::PipelinedTcpClientTransport(std::string host,
                                                         uint16_t port,
                                                         Options options)
    : host_(std::move(host)), port_(port), options_(options) {}

PipelinedTcpClientTransport::~PipelinedTcpClientTransport() {
  std::unique_lock<std::mutex> lock(mutex_);
  stopping_ = true;
  int fd = fd_;
  // Wake the reader out of its blocking first-byte poll.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  std::thread reader = std::move(reader_);
  cv_.notify_all();
  lock.unlock();
  if (reader.joinable()) reader.join();
  if (fd >= 0) ::close(fd);
}

void PipelinedTcpClientTransport::FailAllPending(const util::Status& status) {
  for (auto& [correlation_id, slot] : pending_) {
    if (!slot->done) {
      slot->done = true;
      slot->result = status;
    }
  }
  pending_.clear();
}

util::Status PipelinedTcpClientTransport::EnsureConnected(
    std::unique_lock<std::mutex>& lock) {
  for (;;) {
    if (stopping_) {
      return util::Status::Unavailable("transport shutting down");
    }
    if (connecting_) {
      cv_.wait(lock);
      continue;
    }
    if (broken_ && fd_ >= 0) {
      // A writer may still be mid-send on the dead fd; close only once
      // every write completed, or the fd number could be reused under it.
      if (writers_ > 0) {
        cv_.wait(lock);
        continue;
      }
      connecting_ = true;
      int dead = fd_;
      fd_ = -1;
      std::thread reader = std::move(reader_);
      lock.unlock();
      if (reader.joinable()) reader.join();
      ::close(dead);
      lock.lock();
      connecting_ = false;
      broken_ = false;
      ++reconnects_;
      cv_.notify_all();
      continue;
    }
    if (fd_ >= 0) return util::Status::Ok();
    connecting_ = true;
    lock.unlock();
    int fd = Dial(host_, port_);
    lock.lock();
    connecting_ = false;
    cv_.notify_all();
    if (fd < 0) {
      return util::Status::Unavailable("connect() to " + host_ + ":" +
                                       std::to_string(port_) + " failed");
    }
    if (stopping_) {
      ::close(fd);
      return util::Status::Unavailable("transport shutting down");
    }
    fd_ = fd;
    broken_ = false;
    reader_ = std::thread([this, fd] { ReaderLoop(fd); });
    return util::Status::Ok();
  }
}

void PipelinedTcpClientTransport::ReaderLoop(int fd) {
  for (;;) {
    uint8_t kind = 0;
    // Idle between responses is normal: wait forever for a frame start
    // (the destructor's shutdown() unblocks this). Once a frame began,
    // mid-frame stalls are bounded like every other IO.
    if (ReadFull(fd, &kind, 1, /*timeout_millis=*/0) != IoResult::kOk) break;
    if (kind != kPipelineOk && kind != kPipelineErr) break;  // desynced
    uint8_t header[12];  // correlation(8) len(4)
    if (ReadFull(fd, header, sizeof(header), options_.io_timeout_millis) !=
        IoResult::kOk) {
      break;
    }
    uint64_t correlation_id = 0;
    for (int i = 0; i < 8; ++i) {
      correlation_id = (correlation_id << 8) | header[i];
    }
    uint32_t len = (static_cast<uint32_t>(header[8]) << 24) |
                   (static_cast<uint32_t>(header[9]) << 16) |
                   (static_cast<uint32_t>(header[10]) << 8) | header[11];
    if (len > kMaxFrame) break;
    util::Bytes payload(len);
    if (len > 0 && ReadFull(fd, payload.data(), len,
                            options_.io_timeout_millis) != IoResult::kOk) {
      break;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = pending_.find(correlation_id);
    // Unknown id: an abandoned (timed-out) request's late response, or a
    // duplicate id from a confused server — either way, drop the frame;
    // the framing stays intact because the length was honored.
    if (it != pending_.end()) {
      std::shared_ptr<PendingSlot> slot = it->second;
      pending_.erase(it);
      if (!slot->done) {
        slot->done = true;
        slot->result = kind == kPipelineOk
                           ? util::Result<util::Bytes>(std::move(payload))
                           : util::Result<util::Bytes>(
                                 DecodeWireError(payload));
      }
      cv_.notify_all();
    }
  }
  // Connection lost (EOF, torn frame, oversize, or shutdown): every
  // in-flight request is failed retryably; the fd stays open until
  // EnsureConnected reaps it (nobody reads it again).
  std::lock_guard<std::mutex> lock(mutex_);
  broken_ = true;
  FailAllPending(util::Status::Unavailable("pipelined connection lost"));
  cv_.notify_all();
}

std::pair<std::shared_ptr<PipelinedTcpClientTransport::PendingSlot>, uint64_t>
PipelinedTcpClientTransport::Submit(const std::string& endpoint,
                                    const util::Bytes& request) {
  auto fail = [](const util::Status& status) {
    auto slot = std::make_shared<PendingSlot>();
    slot->done = true;
    slot->result = status;
    return std::make_pair(std::move(slot), uint64_t{0});
  };

  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] {
    return stopping_ || pending_.size() < options_.max_in_flight;
  });
  util::Status connected = EnsureConnected(lock);
  if (!connected.ok()) return fail(connected);

  const uint64_t correlation_id = next_correlation_id_++;
  auto slot = std::make_shared<PendingSlot>();
  pending_.emplace(correlation_id, slot);
  const int fd = fd_;
  ++writers_;
  lock.unlock();

  PipelinedRequestFrame frame;
  frame.correlation_id = correlation_id;
  frame.endpoint = endpoint;
  frame.body = request;
  const util::Bytes encoded = frame.Encode();
  IoResult wrote;
  {
    // One frame at a time on the socket; readers are unaffected.
    std::lock_guard<std::mutex> write_lock(write_mutex_);
    wrote =
        SendFull(fd, encoded.data(), encoded.size(), options_.io_timeout_millis);
  }

  lock.lock();
  --writers_;
  if (wrote != IoResult::kOk) {
    // A torn request write desyncs the whole stream: fail the connection,
    // not just this call (the reader may be blocked and cannot tell).
    util::Status status =
        wrote == IoResult::kTimeout
            ? util::Status::DeadlineExceeded("request write timed out")
            : util::Status::Unavailable("request write failed");
    if (fd_ == fd && !broken_) {
      broken_ = true;
      ::shutdown(fd, SHUT_RDWR);  // unblock the reader; it fails the rest
      FailAllPending(status);
    } else if (!slot->done) {
      slot->done = true;
      slot->result = status;
      pending_.erase(correlation_id);
    }
  }
  cv_.notify_all();
  return {std::move(slot), correlation_id};
}

util::Result<util::Bytes> PipelinedTcpClientTransport::Await(
    const std::shared_ptr<PendingSlot>& slot, uint64_t correlation_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (options_.io_timeout_millis <= 0) {
    cv_.wait(lock, [&] { return slot->done; });
  } else if (!cv_.wait_for(lock,
                           std::chrono::milliseconds(options_.io_timeout_millis),
                           [&] { return slot->done; })) {
    // Abandon the correlation id: a late response is discarded by the
    // reader without touching the stream, so no reconnect is needed.
    pending_.erase(correlation_id);
    cv_.notify_all();  // window space freed
    return util::Status::DeadlineExceeded(
        "no pipelined response within " +
        std::to_string(options_.io_timeout_millis) + " ms");
  }
  return slot->result;
}

util::Result<util::Bytes> PipelinedTcpClientTransport::Call(
    const std::string& endpoint, const util::Bytes& request) {
  auto [slot, correlation_id] = Submit(endpoint, request);
  return Await(slot, correlation_id);
}

std::vector<util::Result<util::Bytes>>
PipelinedTcpClientTransport::CallPipelined(
    const std::string& endpoint, const std::vector<util::Bytes>& requests) {
  std::vector<std::pair<std::shared_ptr<PendingSlot>, uint64_t>> submitted;
  submitted.reserve(requests.size());
  for (const util::Bytes& request : requests) {
    // Submission blocks only for window space, so up to max_in_flight
    // requests overlap; responses demultiplex concurrently via the
    // reader thread while later requests are still being written.
    submitted.push_back(Submit(endpoint, request));
  }
  std::vector<util::Result<util::Bytes>> results;
  results.reserve(requests.size());
  for (auto& [slot, correlation_id] : submitted) {
    results.push_back(Await(slot, correlation_id));
  }
  return results;
}

}  // namespace mws::wire
