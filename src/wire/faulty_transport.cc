#include "src/wire/faulty_transport.h"

#include <chrono>
#include <thread>

namespace mws::wire {

util::Result<util::Bytes> FaultyTransport::Call(const std::string& endpoint,
                                                const util::Bytes& request) {
  if (auto fault = injector_->Evaluate("transport.call/" + endpoint)) {
    switch (fault->kind) {
      case util::FaultKind::kError:
      case util::FaultKind::kDiskFull:  // no storage on a wire; plain failure
        requests_lost_.fetch_add(1, std::memory_order_relaxed);
        return fault->status;
      case util::FaultKind::kTornWrite:
        requests_lost_.fetch_add(1, std::memory_order_relaxed);
        return util::Status::Unavailable("request lost: " +
                                         fault->status.message());
      case util::FaultKind::kConnectionDrop: {
        // The request made it to the server and was executed; only the
        // response is lost. The side effect stands.
        (void)base_->Call(endpoint, request);
        responses_lost_.fetch_add(1, std::memory_order_relaxed);
        return util::Status::Unavailable("connection dropped: " +
                                         fault->status.message());
      }
      case util::FaultKind::kDelay:
        if (fault->delay_micros > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(fault->delay_micros));
        }
        break;
    }
  }
  return base_->Call(endpoint, request);
}

}  // namespace mws::wire
