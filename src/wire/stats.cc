#include "src/wire/stats.h"

#include "src/wire/messages.h"

namespace mws::wire {

void RegisterStatsEndpoint(InProcessTransport* transport,
                           const obs::Registry* registry,
                           const obs::Tracer* tracer) {
  transport->Register(
      kStatsEndpoint,
      [registry, tracer](const util::Bytes& request) -> util::Result<util::Bytes> {
        MWS_ASSIGN_OR_RETURN(StatsRequest req, StatsRequest::Decode(request));
        StatsResponse resp;
        resp.registry_snapshot = registry->Snapshot().Encode();
        if (req.include_spans != 0 && tracer != nullptr) {
          resp.trace_snapshot = obs::EncodeSpans(tracer->Snapshot());
        }
        return resp.Encode();
      });
}

util::Result<StatsDump> FetchStats(Transport* transport, bool include_spans) {
  StatsRequest req;
  req.include_spans = include_spans ? 1 : 0;
  MWS_ASSIGN_OR_RETURN(util::Bytes raw,
                       transport->Call(kStatsEndpoint, req.Encode()));
  MWS_ASSIGN_OR_RETURN(StatsResponse resp, StatsResponse::Decode(raw));
  StatsDump dump;
  MWS_ASSIGN_OR_RETURN(dump.registry,
                       obs::RegistrySnapshot::Decode(resp.registry_snapshot));
  if (!resp.trace_snapshot.empty()) {
    MWS_ASSIGN_OR_RETURN(dump.spans, obs::DecodeSpans(resp.trace_snapshot));
  }
  return dump;
}

}  // namespace mws::wire
