#include "src/wire/messages.h"

#include "src/util/serde.h"

namespace mws::wire {

namespace {

util::Status Malformed(const char* what) {
  return util::Status::InvalidArgument(std::string("malformed ") + what);
}

}  // namespace

uint16_t WireCodeFromStatus(util::StatusCode code) {
  using util::StatusCode;
  switch (code) {
    case StatusCode::kOk:                 return 0;
    case StatusCode::kInvalidArgument:    return 1;
    case StatusCode::kNotFound:           return 2;
    case StatusCode::kAlreadyExists:      return 3;
    case StatusCode::kPermissionDenied:   return 4;
    case StatusCode::kUnauthenticated:    return 5;
    case StatusCode::kFailedPrecondition: return 6;
    case StatusCode::kOutOfRange:         return 7;
    case StatusCode::kCorruption:         return 8;
    case StatusCode::kIoError:            return 9;
    case StatusCode::kInternal:           return 10;
    case StatusCode::kUnimplemented:      return 11;
    case StatusCode::kDeadlineExceeded:   return 12;
    case StatusCode::kUnavailable:        return 13;
    case StatusCode::kResourceExhausted:  return 14;
  }
  return 10;
}

util::StatusCode StatusCodeFromWireCode(uint16_t wire_code) {
  using util::StatusCode;
  switch (wire_code) {
    case 0:  return StatusCode::kOk;
    case 1:  return StatusCode::kInvalidArgument;
    case 2:  return StatusCode::kNotFound;
    case 3:  return StatusCode::kAlreadyExists;
    case 4:  return StatusCode::kPermissionDenied;
    case 5:  return StatusCode::kUnauthenticated;
    case 6:  return StatusCode::kFailedPrecondition;
    case 7:  return StatusCode::kOutOfRange;
    case 8:  return StatusCode::kCorruption;
    case 9:  return StatusCode::kIoError;
    case 10: return StatusCode::kInternal;
    case 11: return StatusCode::kUnimplemented;
    case 12: return StatusCode::kDeadlineExceeded;
    case 13: return StatusCode::kUnavailable;
    case 14: return StatusCode::kResourceExhausted;
    default: return StatusCode::kInternal;
  }
}

util::Bytes EncodeWireError(const util::Status& status) {
  util::Writer w;
  w.PutU16(WireCodeFromStatus(status.code()));
  w.PutString(status.message());
  return w.Take();
}

util::Status DecodeWireError(const util::Bytes& payload) {
  util::Reader r(payload);
  uint16_t code = 0;
  std::string message;
  if (r.GetU16(&code) && r.GetString(&message) && r.Done()) {
    util::StatusCode status_code = StatusCodeFromWireCode(code);
    // This payload only ever rides an `ok == 0` frame, so OK can only
    // mean corruption — never let a failed call decode into a success.
    if (status_code == util::StatusCode::kOk) {
      status_code = util::StatusCode::kInternal;
    }
    return util::Status(status_code, std::move(message));
  }
  return util::Status::Internal(util::StringFromBytes(payload));
}

util::Bytes DepositRequest::AuthenticatedBytes() const {
  util::Writer w;
  w.PutBytes(u);
  w.PutBytes(ciphertext);
  w.PutString(attribute);
  w.PutBytes(nonce);
  w.PutString(device_id);
  w.PutU64(static_cast<uint64_t>(timestamp_micros));
  return w.Take();
}

util::Bytes DepositRequest::Encode() const {
  util::Writer w;
  w.PutRaw(AuthenticatedBytes());
  w.PutBytes(mac);
  return w.Take();
}

util::Result<DepositRequest> DepositRequest::Decode(const util::Bytes& data) {
  util::Reader r(data);
  DepositRequest m;
  uint64_t ts = 0;
  r.GetBytes(&m.u);
  r.GetBytes(&m.ciphertext);
  r.GetString(&m.attribute);
  r.GetBytes(&m.nonce);
  r.GetString(&m.device_id);
  r.GetU64(&ts);
  r.GetBytes(&m.mac);
  if (!r.Done()) return Malformed("DepositRequest");
  m.timestamp_micros = static_cast<int64_t>(ts);
  return m;
}

util::Bytes DepositResponse::Encode() const {
  util::Writer w;
  w.PutU64(message_id);
  return w.Take();
}

util::Result<DepositResponse> DepositResponse::Decode(
    const util::Bytes& data) {
  util::Reader r(data);
  DepositResponse m;
  r.GetU64(&m.message_id);
  if (!r.Done()) return Malformed("DepositResponse");
  return m;
}

util::Bytes DepositBatchRequest::Encode() const {
  util::Writer w;
  w.PutU8(kVersion);
  w.PutU32(static_cast<uint32_t>(items.size()));
  for (const DepositRequest& item : items) w.PutBytes(item.Encode());
  return w.Take();
}

util::Result<DepositBatchRequest> DepositBatchRequest::Decode(
    const util::Bytes& data) {
  util::Reader r(data);
  DepositBatchRequest out;
  uint8_t version = 0;
  uint32_t count = 0;
  if (!r.GetU8(&version)) return Malformed("DepositBatchRequest");
  if (version != kVersion) {
    return util::Status::Unimplemented("unknown DepositBatchRequest version");
  }
  if (!r.GetU32(&count)) return Malformed("DepositBatchRequest");
  if (count == 0) {
    return util::Status::InvalidArgument("empty DepositBatchRequest");
  }
  // Each item costs at least a 4-byte length prefix, so a count larger
  // than the remaining byte count is a length bomb, not a real batch.
  if (count > r.remaining()) return Malformed("DepositBatchRequest");
  for (uint32_t i = 0; i < count; ++i) {
    util::Bytes item;
    if (!r.GetBytes(&item)) return Malformed("DepositBatchRequest");
    MWS_ASSIGN_OR_RETURN(DepositRequest m, DepositRequest::Decode(item));
    out.items.push_back(std::move(m));
  }
  if (!r.Done()) return Malformed("DepositBatchRequest");
  return out;
}

util::Bytes DepositBatchResponse::Encode() const {
  util::Writer w;
  w.PutU8(kVersion);
  w.PutU32(static_cast<uint32_t>(items.size()));
  for (const Item& item : items) {
    w.PutU8(item.ok ? 1 : 0);
    w.PutU64(item.message_id);
    w.PutU8(item.deduplicated ? 1 : 0);
    w.PutBytes(item.error);
  }
  return w.Take();
}

util::Result<DepositBatchResponse> DepositBatchResponse::Decode(
    const util::Bytes& data) {
  util::Reader r(data);
  DepositBatchResponse out;
  uint8_t version = 0;
  uint32_t count = 0;
  if (!r.GetU8(&version)) return Malformed("DepositBatchResponse");
  if (version != 1 && version != kVersion) {
    return util::Status::Unimplemented("unknown DepositBatchResponse version");
  }
  if (!r.GetU32(&count)) return Malformed("DepositBatchResponse");
  if (count > r.remaining()) return Malformed("DepositBatchResponse");
  for (uint32_t i = 0; i < count; ++i) {
    Item item;
    uint8_t ok = 0;
    uint8_t deduplicated = 0;
    if (!r.GetU8(&ok) || !r.GetU64(&item.message_id)) {
      return Malformed("DepositBatchResponse");
    }
    // v1 has no dedup flag; treat every ack as a fresh store.
    if (version >= 2 && !r.GetU8(&deduplicated)) {
      return Malformed("DepositBatchResponse");
    }
    if (!r.GetBytes(&item.error)) return Malformed("DepositBatchResponse");
    item.ok = ok != 0;
    item.deduplicated = deduplicated != 0;
    out.items.push_back(std::move(item));
  }
  if (!r.Done()) return Malformed("DepositBatchResponse");
  return out;
}

util::Bytes RcAuthRequest::Encode() const {
  util::Writer w;
  w.PutString(rc_identity);
  w.PutBytes(rsa_public_key);
  w.PutBytes(auth_ciphertext);
  return w.Take();
}

util::Result<RcAuthRequest> RcAuthRequest::Decode(const util::Bytes& data) {
  util::Reader r(data);
  RcAuthRequest m;
  r.GetString(&m.rc_identity);
  r.GetBytes(&m.rsa_public_key);
  r.GetBytes(&m.auth_ciphertext);
  if (!r.Done()) return Malformed("RcAuthRequest");
  return m;
}

util::Bytes RcAuthPlain::Encode() const {
  util::Writer w;
  w.PutString(rc_identity);
  w.PutU64(static_cast<uint64_t>(timestamp_micros));
  w.PutBytes(client_nonce);
  return w.Take();
}

util::Result<RcAuthPlain> RcAuthPlain::Decode(const util::Bytes& data) {
  util::Reader r(data);
  RcAuthPlain m;
  uint64_t ts = 0;
  r.GetString(&m.rc_identity);
  r.GetU64(&ts);
  r.GetBytes(&m.client_nonce);
  if (!r.Done()) return Malformed("RcAuthPlain");
  m.timestamp_micros = static_cast<int64_t>(ts);
  return m;
}

util::Bytes RcAuthResponse::Encode() const {
  util::Writer w;
  w.PutBytes(session_id);
  return w.Take();
}

util::Result<RcAuthResponse> RcAuthResponse::Decode(const util::Bytes& data) {
  util::Reader r(data);
  RcAuthResponse m;
  r.GetBytes(&m.session_id);
  if (!r.Done()) return Malformed("RcAuthResponse");
  return m;
}

util::Bytes RetrieveRequest::Encode() const {
  util::Writer w;
  w.PutBytes(session_id);
  w.PutU64(after_message_id);
  w.PutU64(static_cast<uint64_t>(from_micros));
  w.PutU64(static_cast<uint64_t>(to_micros));
  return w.Take();
}

util::Result<RetrieveRequest> RetrieveRequest::Decode(
    const util::Bytes& data) {
  util::Reader r(data);
  RetrieveRequest m;
  uint64_t from = 0, to = 0;
  r.GetBytes(&m.session_id);
  r.GetU64(&m.after_message_id);
  r.GetU64(&from);
  r.GetU64(&to);
  if (!r.Done()) return Malformed("RetrieveRequest");
  m.from_micros = static_cast<int64_t>(from);
  m.to_micros = static_cast<int64_t>(to);
  return m;
}

util::Bytes RetrievedMessage::Encode() const {
  util::Writer w;
  w.PutU64(message_id);
  w.PutBytes(u);
  w.PutBytes(ciphertext);
  w.PutU64(aid);
  w.PutBytes(nonce);
  return w.Take();
}

util::Result<RetrievedMessage> RetrievedMessage::Decode(
    const util::Bytes& data) {
  util::Reader r(data);
  RetrievedMessage m;
  r.GetU64(&m.message_id);
  r.GetBytes(&m.u);
  r.GetBytes(&m.ciphertext);
  r.GetU64(&m.aid);
  r.GetBytes(&m.nonce);
  if (!r.Done()) return Malformed("RetrievedMessage");
  return m;
}

util::Bytes RetrieveResponse::Encode() const {
  util::Writer w;
  w.PutU32(static_cast<uint32_t>(messages.size()));
  for (const RetrievedMessage& m : messages) w.PutBytes(m.Encode());
  w.PutBytes(token);
  return w.Take();
}

util::Result<RetrieveResponse> RetrieveResponse::Decode(
    const util::Bytes& data) {
  util::Reader r(data);
  RetrieveResponse out;
  uint32_t count = 0;
  if (!r.GetU32(&count)) return Malformed("RetrieveResponse");
  for (uint32_t i = 0; i < count; ++i) {
    util::Bytes item;
    if (!r.GetBytes(&item)) return Malformed("RetrieveResponse");
    MWS_ASSIGN_OR_RETURN(RetrievedMessage m, RetrievedMessage::Decode(item));
    out.messages.push_back(std::move(m));
  }
  r.GetBytes(&out.token);
  if (!r.Done()) return Malformed("RetrieveResponse");
  return out;
}

util::Bytes RetrieveChunkRequest::Encode() const {
  util::Writer w;
  w.PutU8(kVersion);
  w.PutBytes(session_id);
  w.PutU64(after_message_id);
  w.PutU64(static_cast<uint64_t>(from_micros));
  w.PutU64(static_cast<uint64_t>(to_micros));
  w.PutU32(max_messages);
  return w.Take();
}

util::Result<RetrieveChunkRequest> RetrieveChunkRequest::Decode(
    const util::Bytes& data) {
  util::Reader r(data);
  RetrieveChunkRequest m;
  uint8_t version = 0;
  uint64_t from = 0, to = 0;
  if (!r.GetU8(&version)) return Malformed("RetrieveChunkRequest");
  if (version != kVersion) {
    return util::Status::Unimplemented("unknown RetrieveChunkRequest version");
  }
  r.GetBytes(&m.session_id);
  r.GetU64(&m.after_message_id);
  r.GetU64(&from);
  r.GetU64(&to);
  r.GetU32(&m.max_messages);
  if (!r.Done()) return Malformed("RetrieveChunkRequest");
  if (m.max_messages == 0) {
    return util::Status::InvalidArgument("RetrieveChunkRequest max_messages");
  }
  m.from_micros = static_cast<int64_t>(from);
  m.to_micros = static_cast<int64_t>(to);
  return m;
}

util::Bytes RetrieveChunkResponse::Encode() const {
  util::Writer w;
  w.PutU8(kVersion);
  w.PutU32(static_cast<uint32_t>(messages.size()));
  for (const RetrievedMessage& m : messages) w.PutBytes(m.Encode());
  w.PutU8(has_more ? 1 : 0);
  w.PutU64(next_after_id);
  w.PutBytes(token);
  return w.Take();
}

util::Result<RetrieveChunkResponse> RetrieveChunkResponse::Decode(
    const util::Bytes& data) {
  util::Reader r(data);
  RetrieveChunkResponse out;
  uint8_t version = 0;
  uint32_t count = 0;
  if (!r.GetU8(&version)) return Malformed("RetrieveChunkResponse");
  if (version != kVersion) {
    return util::Status::Unimplemented("unknown RetrieveChunkResponse version");
  }
  if (!r.GetU32(&count)) return Malformed("RetrieveChunkResponse");
  if (count > r.remaining()) return Malformed("RetrieveChunkResponse");
  for (uint32_t i = 0; i < count; ++i) {
    util::Bytes item;
    if (!r.GetBytes(&item)) return Malformed("RetrieveChunkResponse");
    MWS_ASSIGN_OR_RETURN(RetrievedMessage m, RetrievedMessage::Decode(item));
    out.messages.push_back(std::move(m));
  }
  uint8_t has_more = 0;
  r.GetU8(&has_more);
  r.GetU64(&out.next_after_id);
  r.GetBytes(&out.token);
  if (!r.Done()) return Malformed("RetrieveChunkResponse");
  out.has_more = has_more != 0;
  return out;
}

util::Bytes TicketPlain::Encode() const {
  util::Writer w;
  w.PutString(rc_identity);
  w.PutBytes(session_key);
  w.PutU32(static_cast<uint32_t>(aid_attributes.size()));
  for (const auto& [aid, attribute] : aid_attributes) {
    w.PutU64(aid);
    w.PutString(attribute);
  }
  w.PutU64(static_cast<uint64_t>(expiry_micros));
  return w.Take();
}

util::Result<TicketPlain> TicketPlain::Decode(const util::Bytes& data) {
  util::Reader r(data);
  TicketPlain out;
  uint32_t count = 0;
  r.GetString(&out.rc_identity);
  r.GetBytes(&out.session_key);
  if (!r.GetU32(&count)) return Malformed("TicketPlain");
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t aid = 0;
    std::string attribute;
    if (!r.GetU64(&aid) || !r.GetString(&attribute)) {
      return Malformed("TicketPlain");
    }
    out.aid_attributes.emplace_back(aid, attribute);
  }
  uint64_t expiry = 0;
  r.GetU64(&expiry);
  if (!r.Done()) return Malformed("TicketPlain");
  out.expiry_micros = static_cast<int64_t>(expiry);
  return out;
}

util::Bytes TokenPlain::Encode() const {
  util::Writer w;
  w.PutBytes(session_key);
  w.PutBytes(ticket);
  return w.Take();
}

util::Result<TokenPlain> TokenPlain::Decode(const util::Bytes& data) {
  util::Reader r(data);
  TokenPlain out;
  r.GetBytes(&out.session_key);
  r.GetBytes(&out.ticket);
  if (!r.Done()) return Malformed("TokenPlain");
  return out;
}

util::Bytes AuthenticatorPlain::Encode() const {
  util::Writer w;
  w.PutString(rc_identity);
  w.PutU64(static_cast<uint64_t>(timestamp_micros));
  return w.Take();
}

util::Result<AuthenticatorPlain> AuthenticatorPlain::Decode(
    const util::Bytes& data) {
  util::Reader r(data);
  AuthenticatorPlain out;
  uint64_t ts = 0;
  r.GetString(&out.rc_identity);
  r.GetU64(&ts);
  if (!r.Done()) return Malformed("AuthenticatorPlain");
  out.timestamp_micros = static_cast<int64_t>(ts);
  return out;
}

util::Bytes PkgAuthRequest::Encode() const {
  util::Writer w;
  w.PutString(rc_identity);
  w.PutBytes(ticket);
  w.PutBytes(authenticator);
  return w.Take();
}

util::Result<PkgAuthRequest> PkgAuthRequest::Decode(const util::Bytes& data) {
  util::Reader r(data);
  PkgAuthRequest out;
  r.GetString(&out.rc_identity);
  r.GetBytes(&out.ticket);
  r.GetBytes(&out.authenticator);
  if (!r.Done()) return Malformed("PkgAuthRequest");
  return out;
}

util::Bytes PkgAuthResponse::Encode() const {
  util::Writer w;
  w.PutBytes(session_id);
  return w.Take();
}

util::Result<PkgAuthResponse> PkgAuthResponse::Decode(
    const util::Bytes& data) {
  util::Reader r(data);
  PkgAuthResponse out;
  r.GetBytes(&out.session_id);
  if (!r.Done()) return Malformed("PkgAuthResponse");
  return out;
}

util::Bytes KeyRequest::Encode() const {
  util::Writer w;
  w.PutBytes(session_id);
  w.PutU64(aid);
  w.PutBytes(nonce);
  return w.Take();
}

util::Result<KeyRequest> KeyRequest::Decode(const util::Bytes& data) {
  util::Reader r(data);
  KeyRequest out;
  r.GetBytes(&out.session_id);
  r.GetU64(&out.aid);
  r.GetBytes(&out.nonce);
  if (!r.Done()) return Malformed("KeyRequest");
  return out;
}

util::Bytes KeyResponse::Encode() const {
  util::Writer w;
  w.PutBytes(encrypted_private_key);
  return w.Take();
}

util::Result<KeyResponse> KeyResponse::Decode(const util::Bytes& data) {
  util::Reader r(data);
  KeyResponse out;
  r.GetBytes(&out.encrypted_private_key);
  if (!r.Done()) return Malformed("KeyResponse");
  return out;
}

util::Bytes KeyBatchRequest::Encode() const {
  util::Writer w;
  w.PutBytes(session_id);
  w.PutU32(static_cast<uint32_t>(items.size()));
  for (const auto& [aid, nonce] : items) {
    w.PutU64(aid);
    w.PutBytes(nonce);
  }
  return w.Take();
}

util::Result<KeyBatchRequest> KeyBatchRequest::Decode(
    const util::Bytes& data) {
  util::Reader r(data);
  KeyBatchRequest out;
  uint32_t count = 0;
  r.GetBytes(&out.session_id);
  if (!r.GetU32(&count)) return Malformed("KeyBatchRequest");
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t aid = 0;
    util::Bytes nonce;
    if (!r.GetU64(&aid) || !r.GetBytes(&nonce)) {
      return Malformed("KeyBatchRequest");
    }
    out.items.emplace_back(aid, std::move(nonce));
  }
  if (!r.Done()) return Malformed("KeyBatchRequest");
  return out;
}

util::Bytes KeyBatchResponse::Encode() const {
  util::Writer w;
  w.PutU32(static_cast<uint32_t>(items.size()));
  for (const Item& item : items) {
    w.PutU8(item.ok ? 1 : 0);
    w.PutBytes(item.payload);
  }
  return w.Take();
}

util::Result<KeyBatchResponse> KeyBatchResponse::Decode(
    const util::Bytes& data) {
  util::Reader r(data);
  KeyBatchResponse out;
  uint32_t count = 0;
  if (!r.GetU32(&count)) return Malformed("KeyBatchResponse");
  for (uint32_t i = 0; i < count; ++i) {
    Item item;
    uint8_t ok = 0;
    if (!r.GetU8(&ok) || !r.GetBytes(&item.payload)) {
      return Malformed("KeyBatchResponse");
    }
    item.ok = ok != 0;
    out.items.push_back(std::move(item));
  }
  if (!r.Done()) return Malformed("KeyBatchResponse");
  return out;
}

util::Bytes StatsRequest::Encode() const {
  util::Writer w;
  w.PutU8(include_spans);
  return w.Take();
}

util::Result<StatsRequest> StatsRequest::Decode(const util::Bytes& data) {
  util::Reader r(data);
  StatsRequest m;
  r.GetU8(&m.include_spans);
  if (!r.Done()) return Malformed("StatsRequest");
  return m;
}

util::Bytes StatsResponse::Encode() const {
  util::Writer w;
  w.PutBytes(registry_snapshot);
  w.PutBytes(trace_snapshot);
  return w.Take();
}

util::Result<StatsResponse> StatsResponse::Decode(const util::Bytes& data) {
  util::Reader r(data);
  StatsResponse m;
  r.GetBytes(&m.registry_snapshot);
  r.GetBytes(&m.trace_snapshot);
  if (!r.Done()) return Malformed("StatsResponse");
  return m;
}

util::Bytes PipelinedRequestFrame::Encode() const {
  util::Writer w;
  w.PutU16(kPipelineSentinel);
  w.PutU8(kPipelineVersion);
  w.PutU64(correlation_id);
  w.PutU16(static_cast<uint16_t>(endpoint.size()));
  w.PutRaw(util::BytesFromString(endpoint));
  w.PutU32(static_cast<uint32_t>(body.size()));
  w.PutRaw(body);
  return w.Take();
}

util::Result<PipelinedRequestFrame> PipelinedRequestFrame::Decode(
    const util::Bytes& data) {
  util::Reader r(data);
  PipelinedRequestFrame out;
  uint16_t sentinel = 0;
  uint8_t version = 0;
  uint16_t endpoint_len = 0;
  uint32_t body_len = 0;
  if (!r.GetU16(&sentinel)) return Malformed("PipelinedRequestFrame");
  if (sentinel != kPipelineSentinel) {
    return Malformed("PipelinedRequestFrame sentinel");
  }
  if (!r.GetU8(&version)) return Malformed("PipelinedRequestFrame");
  if (version != kPipelineVersion) {
    return util::Status::Unimplemented("unknown pipelined frame version");
  }
  r.GetU64(&out.correlation_id);
  if (!r.GetU16(&endpoint_len)) return Malformed("PipelinedRequestFrame");
  util::Bytes endpoint_bytes;
  if (!r.GetRaw(endpoint_len, &endpoint_bytes)) {
    return Malformed("PipelinedRequestFrame");
  }
  out.endpoint = util::StringFromBytes(endpoint_bytes);
  if (!r.GetU32(&body_len) || body_len > r.remaining()) {
    return Malformed("PipelinedRequestFrame");
  }
  if (!r.GetRaw(body_len, &out.body) || !r.Done()) {
    return Malformed("PipelinedRequestFrame");
  }
  return out;
}

util::Bytes PipelinedResponseFrame::Encode() const {
  util::Writer w;
  w.PutU8(ok ? kPipelineOk : kPipelineErr);
  w.PutU64(correlation_id);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutRaw(payload);
  return w.Take();
}

util::Result<PipelinedResponseFrame> PipelinedResponseFrame::Decode(
    const util::Bytes& data) {
  util::Reader r(data);
  PipelinedResponseFrame out;
  uint8_t kind = 0;
  uint32_t len = 0;
  if (!r.GetU8(&kind)) return Malformed("PipelinedResponseFrame");
  if (kind != kPipelineOk && kind != kPipelineErr) {
    return Malformed("PipelinedResponseFrame kind");
  }
  out.ok = kind == kPipelineOk;
  r.GetU64(&out.correlation_id);
  if (!r.GetU32(&len) || len > r.remaining()) {
    return Malformed("PipelinedResponseFrame");
  }
  if (!r.GetRaw(len, &out.payload) || !r.Done()) {
    return Malformed("PipelinedResponseFrame");
  }
  return out;
}

}  // namespace mws::wire
