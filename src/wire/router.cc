#include "src/wire/router.h"

#include <algorithm>
#include <utility>

#include "src/util/serde.h"
#include "src/wire/messages.h"

namespace mws::wire {

namespace {

using util::Bytes;
using util::Result;
using util::Status;

/// Tag of the composite-session blob (versioned like every other wire
/// frame so a future layout change fails loudly, not by misparse).
constexpr uint8_t kCompositeSessionVersion = 1;

}  // namespace

// ---------------------------------------------------------------------
// ShardMap

uint64_t ShardMap::Hash(std::string_view s) {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  // Raw FNV-1a gives the final byte only one multiply, so keys that
  // differ only in a trailing character end up within ~2^48 of each
  // other — smaller than a typical ring gap (~2^56 at 192 points),
  // which parks whole key families on one shard. A murmur-style
  // finalizer restores full avalanche before the ring lookup.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

ShardMap::ShardMap(size_t shard_count, uint32_t version, uint32_t vnodes)
    : shard_count_(shard_count == 0 ? 1 : shard_count), version_(version) {
  uint32_t points = std::max<uint32_t>(vnodes, 1);
  ring_.reserve(shard_count_ * points);
  for (size_t s = 0; s < shard_count_; ++s) {
    for (uint32_t v = 0; v < points; ++v) {
      std::string point = "v" + std::to_string(version_) + "/s" +
                          std::to_string(s) + "/" + std::to_string(v);
      ring_.emplace_back(Hash(point), static_cast<uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

size_t ShardMap::ShardFor(std::string_view key) const {
  if (shard_count_ == 1) return 0;
  uint64_t h = Hash(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(h, uint32_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring top
  return it->second;
}

// ---------------------------------------------------------------------
// ShardRouter

ShardRouter::ShardRouter(ShardMap map, std::vector<Transport*> shards,
                         ShardRouterOptions options)
    : map_(std::move(map)),
      shards_(std::move(shards)),
      control_(options.control != nullptr ? options.control
                                          : shards_.front()),
      calls_(new std::atomic<uint64_t>[shards_.size()]) {
  for (size_t i = 0; i < shards_.size(); ++i) calls_[i] = 0;
  if (options.metrics != nullptr) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      std::vector<obs::Label> labels{{"shard", std::to_string(i)}};
      calls_counters_.push_back(
          options.metrics->GetCounter("router.calls", labels));
      error_counters_.push_back(
          options.metrics->GetCounter("router.shard_errors", labels));
    }
  }
}

Result<Bytes> ShardRouter::CallShard(size_t shard, const std::string& endpoint,
                                     const Bytes& request) {
  calls_[shard].fetch_add(1, std::memory_order_relaxed);
  if (!calls_counters_.empty()) calls_counters_[shard]->Increment();
  auto result = shards_[shard]->Call(endpoint, request);
  if (!result.ok() && !error_counters_.empty()) {
    error_counters_[shard]->Increment();
  }
  return result;
}

Result<Bytes> ShardRouter::Call(const std::string& endpoint,
                                const Bytes& request) {
  if (endpoint == "mws.deposit") return Deposit(request);
  if (endpoint == "mws.deposit_batch") return DepositBatch(request);
  if (endpoint == "mws.auth") return Auth(request);
  if (endpoint == "mws.retrieve") return Retrieve(request);
  if (endpoint == "mws.retrieve_chunk") return RetrieveChunk(request);
  return control_->Call(endpoint, request);
}

Bytes ShardRouter::EncodeCompositeSession(
    const std::vector<Bytes>& sessions) {
  util::Writer w;
  w.PutU8(kCompositeSessionVersion);
  w.PutU32(static_cast<uint32_t>(sessions.size()));
  for (const Bytes& s : sessions) w.PutBytes(s);
  return w.Take();
}

Result<std::vector<Bytes>> ShardRouter::DecodeCompositeSession(
    const Bytes& blob, size_t expected_count) {
  util::Reader r(blob);
  uint8_t version = 0;
  uint32_t count = 0;
  if (!r.GetU8(&version) || version != kCompositeSessionVersion) {
    return Status::Unauthenticated("not a composite session");
  }
  if (!r.GetU32(&count)) {
    return Status::Unauthenticated("truncated composite session");
  }
  std::vector<Bytes> sessions(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r.GetBytes(&sessions[i])) {
      return Status::Unauthenticated("truncated composite session");
    }
  }
  if (!r.Done()) {
    return Status::Unauthenticated("trailing bytes in composite session");
  }
  if (expected_count != 0 && count != expected_count) {
    return Status::Unauthenticated(
        "composite session shard count mismatch (fleet resized?)");
  }
  return sessions;
}

Result<Bytes> ShardRouter::Deposit(const Bytes& request) {
  auto decoded = DepositRequest::Decode(request);
  if (!decoded.ok()) return decoded.status();
  size_t shard = map_.ShardFor(decoded.value().attribute);
  auto raw = CallShard(shard, "mws.deposit", request);
  if (!raw.ok()) return raw.status();
  auto response = DepositResponse::Decode(raw.value());
  if (!response.ok()) return response.status();
  response.value().message_id =
      RouterId(response.value().message_id, shard, shards_.size());
  return response.value().Encode();
}

Result<Bytes> ShardRouter::DepositBatch(const Bytes& request) {
  auto decoded = DepositBatchRequest::Decode(request);
  if (!decoded.ok()) return decoded.status();
  const auto& items = decoded.value().items;

  // Group request indices per shard, preserving request order within a
  // shard: dedup of an intra-batch retransmit must see the original
  // occurrence first, exactly as an unsharded warehouse would.
  std::vector<std::vector<size_t>> indices(shards_.size());
  for (size_t i = 0; i < items.size(); ++i) {
    indices[map_.ShardFor(items[i].attribute)].push_back(i);
  }

  DepositBatchResponse merged;
  merged.items.resize(items.size());
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    if (indices[shard].empty()) continue;
    DepositBatchRequest sub;
    sub.items.reserve(indices[shard].size());
    for (size_t i : indices[shard]) sub.items.push_back(items[i]);
    auto raw = CallShard(shard, "mws.deposit_batch", sub.Encode());
    if (raw.ok()) {
      auto sub_response = DepositBatchResponse::Decode(raw.value());
      if (!sub_response.ok()) return sub_response.status();
      if (sub_response.value().items.size() != indices[shard].size()) {
        return Status::Internal("shard returned mismatched batch size");
      }
      for (size_t k = 0; k < indices[shard].size(); ++k) {
        DepositBatchResponse::Item item = sub_response.value().items[k];
        item.message_id = RouterId(item.message_id, shard, shards_.size());
        merged.items[indices[shard][k]] = std::move(item);
      }
    } else {
      // Whole-shard failure degrades to per-item failures for this
      // shard's items only: the other shards' outcomes stand, and the
      // wire-error payload preserves the status code — a kUnavailable
      // shard restart surfaces as retryable items, not a poisoned batch.
      Bytes error = EncodeWireError(raw.status());
      for (size_t i : indices[shard]) {
        merged.items[i].ok = false;
        merged.items[i].error = error;
      }
    }
  }
  return merged.Encode();
}

Result<Bytes> ShardRouter::Auth(const Bytes& request) {
  // Every shard's gatekeeper validates the same client challenge and
  // issues its own session; the composite is opaque to the client. Any
  // shard refusing authentication refuses the composite — a session
  // silently covering a subset of shards would drop that subset's
  // messages from every retrieval.
  std::vector<Bytes> sessions(shards_.size());
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    auto raw = CallShard(shard, "mws.auth", request);
    if (!raw.ok()) return raw.status();
    auto response = RcAuthResponse::Decode(raw.value());
    if (!response.ok()) return response.status();
    sessions[shard] = std::move(response.value().session_id);
  }
  RcAuthResponse composite;
  composite.session_id = EncodeCompositeSession(sessions);
  return composite.Encode();
}

Result<Bytes> ShardRouter::Retrieve(const Bytes& request) {
  auto decoded = RetrieveRequest::Decode(request);
  if (!decoded.ok()) return decoded.status();
  auto sessions =
      DecodeCompositeSession(decoded.value().session_id, shards_.size());
  if (!sessions.ok()) return sessions.status();

  RetrieveResponse merged;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    RetrieveRequest sub = decoded.value();
    sub.session_id = sessions.value()[shard];
    sub.after_message_id =
        LocalAfter(decoded.value().after_message_id, shard, shards_.size());
    auto raw = CallShard(shard, "mws.retrieve", sub.Encode());
    if (!raw.ok()) return raw.status();
    auto response = RetrieveResponse::Decode(raw.value());
    if (!response.ok()) return response.status();
    for (auto& m : response.value().messages) {
      m.message_id = RouterId(m.message_id, shard, shards_.size());
      merged.messages.push_back(std::move(m));
    }
    // Replicated control plane => identical AID tables => any shard's
    // token opens every shard's messages. Keep the first.
    if (merged.token.empty()) merged.token = std::move(response.value().token);
  }
  std::sort(merged.messages.begin(), merged.messages.end(),
            [](const RetrievedMessage& a, const RetrievedMessage& b) {
              return a.message_id < b.message_id;
            });
  return merged.Encode();
}

Result<Bytes> ShardRouter::RetrieveChunk(const Bytes& request) {
  auto decoded = RetrieveChunkRequest::Decode(request);
  if (!decoded.ok()) return decoded.status();
  auto sessions =
      DecodeCompositeSession(decoded.value().session_id, shards_.size());
  if (!sessions.ok()) return sessions.status();

  // Each shard serves up to the full chunk budget past its decomposed
  // cursor; the merge trims back to the budget. Over-fetch is bounded
  // by (shards - 1) * max_messages, and trimmed records are re-served
  // on the next call from the re-derived cursors, so pagination stays
  // exact — no record skipped or duplicated across chunk boundaries.
  std::vector<RetrievedMessage> candidates;
  bool any_shard_has_more = false;
  std::vector<Bytes> tokens(shards_.size());
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    RetrieveChunkRequest sub = decoded.value();
    sub.session_id = sessions.value()[shard];
    sub.after_message_id =
        LocalAfter(decoded.value().after_message_id, shard, shards_.size());
    auto raw = CallShard(shard, "mws.retrieve_chunk", sub.Encode());
    if (!raw.ok()) return raw.status();
    auto response = RetrieveChunkResponse::Decode(raw.value());
    if (!response.ok()) return response.status();
    any_shard_has_more = any_shard_has_more || response.value().has_more;
    tokens[shard] = std::move(response.value().token);
    for (auto& m : response.value().messages) {
      m.message_id = RouterId(m.message_id, shard, shards_.size());
      candidates.push_back(std::move(m));
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const RetrievedMessage& a, const RetrievedMessage& b) {
              return a.message_id < b.message_id;
            });

  RetrieveChunkResponse merged;
  bool trimmed = candidates.size() > decoded.value().max_messages;
  if (trimmed) candidates.resize(decoded.value().max_messages);
  merged.messages = std::move(candidates);
  merged.has_more = trimmed || any_shard_has_more;
  merged.next_after_id = merged.messages.empty()
                             ? decoded.value().after_message_id
                             : merged.messages.back().message_id;
  if (!merged.has_more) {
    // Final chunk of the sweep: every shard just returned its own final
    // chunk, so each supplied a token; they are interchangeable (see
    // Retrieve) — return the first.
    for (auto& token : tokens) {
      if (!token.empty()) {
        merged.token = std::move(token);
        break;
      }
    }
  }
  return merged.Encode();
}

}  // namespace mws::wire
