#ifndef MWSIBE_WIRE_TCP_H_
#define MWSIBE_WIRE_TCP_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/wire/transport.h"

namespace mws::wire {

/// A real TCP server fronting a handler registry — the deployment shape
/// of the paper's prototype ("a simple server that listens for messages
/// on a particular port"; MWS-SD, MWS-Client and PKG each ran as one).
///
/// Framing (all integers big-endian):
///   request:  u16 endpoint_len | endpoint | u32 body_len | body
///   response: u8 ok | u32 len | payload            (ok == 1)
///             u8 ok | u32 len | status_message     (ok == 0)
///
/// The server also speaks the *pipelined* framing of messages.h
/// (PipelinedRequestFrame / PipelinedResponseFrame): a request whose
/// first two bytes are the 0xFFFF sentinel carries a version byte and a
/// correlation id, and its response echoes that id with the disjoint
/// ok-kinds 2/3. Legacy and pipelined frames may be mixed freely on one
/// connection; an unknown pipelined version closes the connection (the
/// server cannot know a future version's frame length). When several
/// pipelined requests are already buffered on a connection, the owning
/// worker drains them back-to-back (bounded) instead of bouncing the
/// connection through the poll set per frame.
///
/// Connections are persistent (one request/response per round trip until
/// the client closes). Concurrency model: one IO thread multiplexes all
/// idle connections with poll(); a readable connection is handed to a
/// bounded queue drained by a fixed pool of worker threads. The worker
/// reads the frame, dispatches to the backend *without a global lock*
/// (the services are thread-safe), writes the response, and returns the
/// connection to the poll set. A connection is never polled while a
/// worker owns it, so reads and writes on one fd are single-threaded.
/// Thread count is therefore fixed by Options::worker_threads, not by
/// the number of connected clients.
///
/// Overload response: when `queue_capacity` dispatchable requests are
/// already waiting, further ready connections are *shed* — a worker
/// still reads the frame (to keep the stream in sync) but answers with
/// a ResourceExhausted wire error instead of calling the backend, and
/// the IO thread never blocks. Mid-frame reads and response writes are
/// bounded by `io_timeout_millis` so one stalled peer cannot pin a
/// worker forever.
class TcpServer {
 public:
  struct Options {
    /// Size of the dispatch pool; at most this many requests execute
    /// concurrently.
    int worker_threads = 4;
    /// Dispatchable-request queue bound; ready connections beyond this
    /// are shed with a ResourceExhausted wire error.
    size_t queue_capacity = 128;
    /// Per-read/write poll timeout inside one request (half-open frames,
    /// stalled readers). <= 0 disables the timeout.
    int io_timeout_millis = 5'000;
    /// Largest accepted request body; larger frames close the
    /// connection.
    uint32_t max_frame_bytes = 64u * 1024 * 1024;
    /// Optional instrumentation sink (must outlive the server). When
    /// set, the server maintains `tcp.requests{op=...}`,
    /// `tcp.request_errors{op=...}`, `tcp.request_us{op=...}`,
    /// `tcp.shed_requests`, `tcp.queue_depth`, and `tcp.connections`.
    obs::Registry* metrics = nullptr;
  };

  /// Serves the handlers registered on `backend` (which must outlive the
  /// server). Binds 127.0.0.1:`port`; port 0 picks an ephemeral port.
  static util::Result<std::unique_ptr<TcpServer>> Start(
      InProcessTransport* backend, uint16_t port, Options options);
  static util::Result<std::unique_ptr<TcpServer>> Start(
      InProcessTransport* backend, uint16_t port) {
    return Start(backend, port, Options{});
  }

  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The actual bound port.
  uint16_t port() const { return port_; }

  /// Stops accepting, drains in-flight requests, joins every thread.
  void Shutdown();

  /// Requests answered with ResourceExhausted because the dispatch
  /// queue was full.
  uint64_t shed_requests() const {
    return shed_requests_.load(std::memory_order_relaxed);
  }

 private:
  /// One queue entry: a readable connection, and whether its request
  /// should be shed instead of dispatched.
  struct Ready {
    int fd = -1;
    bool shed = false;
  };

  /// Per-connection scratch space, reused across every request on the
  /// connection so the steady state allocates nothing per frame (the
  /// per-frame endpoint/body allocations showed up in the e8 profile).
  /// Owned by whichever thread currently owns the fd — exactly one at a
  /// time — so only the map itself needs locking.
  struct ConnState {
    util::Bytes endpoint_buf;
    util::Bytes body_buf;
    util::Bytes response_buf;
  };

  TcpServer() = default;

  void IoLoop();
  void WorkerLoop();
  /// Handles one request on `fd`, then drains any further requests the
  /// kernel already buffered (bounded), so a pipelining client's burst
  /// is served within one worker ownership; false when the connection is
  /// done (EOF, malformed frame, timeout, or write failure). When `shed`
  /// the first frame is consumed but answered with ResourceExhausted.
  bool HandleOneRequest(int fd, bool shed);
  /// One frame: read, dispatch (or shed), respond. Legacy or pipelined.
  bool ProcessFrame(int fd, ConnState* conn, bool shed);
  /// Erases the fd's book-keeping (open set + conn state) and closes it.
  /// Rule: erase under the mutexes *before* closing.
  void CloseServerFd(int fd);

  /// Enqueues a readable connection for the workers (shedding it if the
  /// dispatch queue is full); false if the queue was closed (server
  /// shutting down). Never blocks.
  bool EnqueueReady(int fd);
  /// Blocks until a connection is ready or the queue is closed and
  /// drained; returns fd -1 in the latter case.
  Ready PopReady();
  /// Worker -> IO thread hand-back. `closed` means the worker already
  /// closed the fd.
  void PushCompleted(int fd, bool closed);
  std::vector<std::pair<int, bool>> TakeCompleted();
  /// Pokes the IO thread out of poll().
  void WakeIo();

  InProcessTransport* backend_ = nullptr;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  /// Self-pipe: workers write wake_pipe_[1], the IO thread polls [0].
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  /// Ready-connection queue. Dispatchable entries are bounded by
  /// options_.queue_capacity; shed entries ride along unbounded (they
  /// are bounded by the connection count and cost no backend work).
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;   // workers wait: ready or closed
  std::deque<Ready> ready_queue_;
  size_t dispatchable_queued_ = 0;
  bool queue_closed_ = false;
  std::atomic<uint64_t> shed_requests_{0};

  /// Resolved once at Start when Options::metrics is set; all null
  /// otherwise (per-endpoint latency histograms resolve lazily through
  /// options_.metrics since endpoint names arrive with the request).
  obs::Counter* shed_counter_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* connections_gauge_ = nullptr;

  /// Connections handed back by workers, drained by the IO thread.
  std::mutex completed_mutex_;
  std::vector<std::pair<int, bool>> completed_;

  /// Every live connection fd, so Shutdown can shut them down without
  /// racing the owning thread's close(). Rule: erase under the mutex
  /// *before* closing an fd.
  std::mutex open_fds_mutex_;
  std::unordered_set<int> open_fds_;

  /// fd -> reusable per-connection buffers. Entries are created on
  /// accept and erased by CloseServerFd; the pointed-to state is only
  /// touched by the fd's current owner.
  std::mutex conn_states_mutex_;
  std::unordered_map<int, std::unique_ptr<ConnState>> conn_states_;
};

/// Client-side Transport speaking the TcpServer framing. Opens one
/// persistent connection on first use; reconnects after errors. Call()
/// is serialized by an internal mutex; for parallel client load use one
/// TcpClientTransport per thread (each gets its own connection).
///
/// Failure behavior: socket-level failures come back as kUnavailable
/// (retryable) and stalled reads/writes as kDeadlineExceeded after
/// `io_timeout_millis` — a stalled server cannot hang the caller.
/// Server-reported errors round-trip their original StatusCode through
/// the wire-error encoding. If a *reused* connection turns out dead
/// before any response byte arrived (the server restarted or dropped
/// the idle connection), Call reconnects and resends once on its own;
/// every other retry decision belongs to RetryingTransport.
class TcpClientTransport : public Transport {
 public:
  TcpClientTransport(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  ~TcpClientTransport() override;

  /// Per-read/write stall bound. <= 0 waits forever (not recommended).
  void set_io_timeout_millis(int timeout_millis) {
    io_timeout_millis_ = timeout_millis;
  }

  util::Result<util::Bytes> Call(const std::string& endpoint,
                                 const util::Bytes& request) override;

  /// Times the transport reconnected a dropped persistent connection.
  uint64_t reconnects() const { return reconnects_; }

 private:
  util::Status EnsureConnected();
  void CloseConnection();
  /// One framed request/response exchange on the open connection.
  /// Sets `*safe_to_resend` when the failure happened before any
  /// response byte arrived on a connection that might be stale.
  util::Result<util::Bytes> CallOnce(const std::string& endpoint,
                                     const util::Bytes& request,
                                     bool* safe_to_resend);

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  int io_timeout_millis_ = 30'000;
  uint64_t reconnects_ = 0;
  std::mutex mutex_;
};

}  // namespace mws::wire

#endif  // MWSIBE_WIRE_TCP_H_
