#ifndef MWSIBE_WIRE_TCP_H_
#define MWSIBE_WIRE_TCP_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/wire/transport.h"

namespace mws::wire {

/// A real TCP server fronting a handler registry — the deployment shape
/// of the paper's prototype ("a simple server that listens for messages
/// on a particular port"; MWS-SD, MWS-Client and PKG each ran as one).
///
/// Framing (all integers big-endian):
///   request:  u16 endpoint_len | endpoint | u32 body_len | body
///   response: u8 ok | u32 len | payload            (ok == 1)
///             u8 ok | u32 len | status_message     (ok == 0)
///
/// Connections are persistent (one request/response per round trip until
/// the client closes). Concurrency model: one IO thread multiplexes all
/// idle connections with poll(); a readable connection is handed to a
/// bounded queue drained by a fixed pool of worker threads. The worker
/// reads the frame, dispatches to the backend *without a global lock*
/// (the services are thread-safe), writes the response, and returns the
/// connection to the poll set. A connection is never polled while a
/// worker owns it, so reads and writes on one fd are single-threaded.
/// Thread count is therefore fixed by Options::worker_threads, not by
/// the number of connected clients.
class TcpServer {
 public:
  struct Options {
    /// Size of the dispatch pool; at most this many requests execute
    /// concurrently.
    int worker_threads = 4;
    /// Ready-connection queue bound; the IO thread stops draining the
    /// poll set when this many requests are waiting (backpressure).
    size_t queue_capacity = 128;
  };

  /// Serves the handlers registered on `backend` (which must outlive the
  /// server). Binds 127.0.0.1:`port`; port 0 picks an ephemeral port.
  static util::Result<std::unique_ptr<TcpServer>> Start(
      InProcessTransport* backend, uint16_t port, Options options);
  static util::Result<std::unique_ptr<TcpServer>> Start(
      InProcessTransport* backend, uint16_t port) {
    return Start(backend, port, Options{});
  }

  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The actual bound port.
  uint16_t port() const { return port_; }

  /// Stops accepting, drains in-flight requests, joins every thread.
  void Shutdown();

 private:
  TcpServer() = default;

  void IoLoop();
  void WorkerLoop();
  /// Handles exactly one request on `fd`; false when the connection is
  /// done (EOF, malformed frame, or write failure).
  bool HandleOneRequest(int fd);

  /// Enqueues a readable connection for the workers; false if the queue
  /// was closed (server shutting down).
  bool EnqueueReady(int fd);
  /// Blocks until a connection is ready or the queue is closed and
  /// drained; returns -1 in the latter case.
  int PopReady();
  /// Worker -> IO thread hand-back. `closed` means the worker already
  /// closed the fd.
  void PushCompleted(int fd, bool closed);
  std::vector<std::pair<int, bool>> TakeCompleted();
  /// Pokes the IO thread out of poll().
  void WakeIo();

  InProcessTransport* backend_ = nullptr;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  /// Self-pipe: workers write wake_pipe_[1], the IO thread polls [0].
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  /// Ready-connection queue (bounded by options_.queue_capacity).
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;   // workers wait: ready or closed
  std::condition_variable space_cv_;   // IO thread waits: room or closed
  std::deque<int> ready_queue_;
  bool queue_closed_ = false;

  /// Connections handed back by workers, drained by the IO thread.
  std::mutex completed_mutex_;
  std::vector<std::pair<int, bool>> completed_;

  /// Every live connection fd, so Shutdown can shut them down without
  /// racing the owning thread's close(). Rule: erase under the mutex
  /// *before* closing an fd.
  std::mutex open_fds_mutex_;
  std::unordered_set<int> open_fds_;
};

/// Client-side Transport speaking the TcpServer framing. Opens one
/// persistent connection on first use; reconnects after errors. Call()
/// is serialized by an internal mutex; for parallel client load use one
/// TcpClientTransport per thread (each gets its own connection).
class TcpClientTransport : public Transport {
 public:
  TcpClientTransport(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  ~TcpClientTransport() override;

  util::Result<util::Bytes> Call(const std::string& endpoint,
                                 const util::Bytes& request) override;

 private:
  util::Status EnsureConnected();
  void CloseConnection();

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  std::mutex mutex_;
};

}  // namespace mws::wire

#endif  // MWSIBE_WIRE_TCP_H_
