#ifndef MWSIBE_WIRE_TCP_H_
#define MWSIBE_WIRE_TCP_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/wire/transport.h"

namespace mws::wire {

/// A real TCP server fronting a handler registry — the deployment shape
/// of the paper's prototype ("a simple server that listens for messages
/// on a particular port"; MWS-SD, MWS-Client and PKG each ran as one).
///
/// Framing (all integers big-endian):
///   request:  u16 endpoint_len | endpoint | u32 body_len | body
///   response: u8 ok | u32 len | payload            (ok == 1)
///             u8 ok | u32 len | status_message     (ok == 0)
///
/// Connections are persistent (one request/response per round trip until
/// the client closes). Each connection gets a thread; handler dispatch
/// is serialized with a mutex because the services are single-threaded.
class TcpServer {
 public:
  /// Serves the handlers registered on `backend` (which must outlive the
  /// server). Binds 127.0.0.1:`port`; port 0 picks an ephemeral port.
  static util::Result<std::unique_ptr<TcpServer>> Start(
      InProcessTransport* backend, uint16_t port);

  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The actual bound port.
  uint16_t port() const { return port_; }

  /// Stops accepting and joins all connection threads.
  void Shutdown();

 private:
  TcpServer() = default;

  void AcceptLoop();
  void ServeConnection(int fd);

  InProcessTransport* backend_ = nullptr;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex dispatch_mutex_;
  std::mutex threads_mutex_;
  std::vector<std::thread> connection_threads_;
};

/// Client-side Transport speaking the TcpServer framing. Opens one
/// persistent connection on first use; reconnects after errors.
class TcpClientTransport : public Transport {
 public:
  TcpClientTransport(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  ~TcpClientTransport() override;

  util::Result<util::Bytes> Call(const std::string& endpoint,
                                 const util::Bytes& request) override;

 private:
  util::Status EnsureConnected();
  void CloseConnection();

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  std::mutex mutex_;
};

}  // namespace mws::wire

#endif  // MWSIBE_WIRE_TCP_H_
