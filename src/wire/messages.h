#ifndef MWSIBE_WIRE_MESSAGES_H_
#define MWSIBE_WIRE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace mws::wire {

/// Protocol messages for the three phases of paper §V.C/D (Fig. 4).
/// Every message has a canonical binary encoding (util::Writer framing);
/// MACs are computed over exactly the encoded authenticated prefix.

// ---------------------------------------------------------------------
// Wire errors. A failed request crosses the TCP framing as
// `u16 code || string message` so the client reconstructs the original
// util::Status — in particular whether it is retryable — instead of a
// flattened Internal. The numbering below is the wire contract: values
// are stable forever; only append.

/// Stable wire number for `code` (kInternal for anything unknown, so a
/// newer peer degrades gracefully).
uint16_t WireCodeFromStatus(util::StatusCode code);
util::StatusCode StatusCodeFromWireCode(uint16_t wire_code);

/// Encodes a non-OK status for the `ok == 0` response payload.
util::Bytes EncodeWireError(const util::Status& status);

/// Decodes an error payload. Tolerates legacy plain-text payloads (the
/// pre-code format) by mapping them to kInternal with the text as the
/// message, so mixed-version deployments still interoperate.
util::Status DecodeWireError(const util::Bytes& payload);

// ---------------------------------------------------------------------
// Phase 1: SD -> MWS ("SD sends rP || C || (A || Nonce) || IDSD || T ||
// MAC to MWS").

struct DepositRequest {
  util::Bytes u;           // rP (serialized curve point)
  util::Bytes ciphertext;  // C
  std::string attribute;   // A
  util::Bytes nonce;       // per-message nonce
  std::string device_id;   // ID_SD
  int64_t timestamp_micros = 0;  // T
  util::Bytes mac;         // HMAC-SHA256 over the authenticated prefix

  /// The exact bytes the MAC covers (everything except the MAC itself).
  util::Bytes AuthenticatedBytes() const;

  util::Bytes Encode() const;
  static util::Result<DepositRequest> Decode(const util::Bytes& data);
};

struct DepositResponse {
  uint64_t message_id = 0;

  util::Bytes Encode() const;
  static util::Result<DepositResponse> Decode(const util::Bytes& data);
};

/// Batched deposit (protocol extension): many independent deposits in
/// one round trip. The encoding is versioned like the wire-error frame:
/// a leading u8 version byte lets a future encoding change without
/// breaking deployed peers — decoders reject versions they don't know
/// with kUnimplemented instead of misparsing.
struct DepositBatchRequest {
  static constexpr uint8_t kVersion = 1;

  std::vector<DepositRequest> items;

  util::Bytes Encode() const;
  /// Rejects unknown versions (kUnimplemented) and empty batches
  /// (kInvalidArgument) — a zero-item batch is always a client bug.
  static util::Result<DepositBatchRequest> Decode(const util::Bytes& data);
};

/// Per-item results, aligned with request order. A failed item carries
/// the PR 3 wire-error payload so the client reconstructs the original
/// status (and its retryability) per item.
///
/// Version 2 adds the per-item `deduplicated` flag: the deposit was a
/// retransmit the MWS absorbed by (ID_SD, nonce), and `message_id` is
/// the original assignment. A store-and-forward device replaying its
/// outbox after a crash uses it to keep deposit accounting exact.
/// Decode still accepts version-1 payloads (flag defaults to false), so
/// a v2 client interoperates with a v1 warehouse.
struct DepositBatchResponse {
  static constexpr uint8_t kVersion = 2;

  struct Item {
    bool ok = false;
    uint64_t message_id = 0;   // valid when ok
    bool deduplicated = false;  // valid when ok; absent in v1 payloads
    util::Bytes error;          // EncodeWireError payload when !ok
  };
  std::vector<Item> items;

  util::Bytes Encode() const;
  static util::Result<DepositBatchResponse> Decode(const util::Bytes& data);
};

// ---------------------------------------------------------------------
// Phase 2: MWS <-> RC ("RC sends IDRC || PubKRC || E(HashPassword,
// IDRC || T || N)").

struct RcAuthRequest {
  std::string rc_identity;      // ID_RC, in the clear
  util::Bytes rsa_public_key;   // PubK_RC (serialized)
  util::Bytes auth_ciphertext;  // E(HashPassword, IDRC || T || N)

  util::Bytes Encode() const;
  static util::Result<RcAuthRequest> Decode(const util::Bytes& data);
};

/// The inner plaintext of auth_ciphertext.
struct RcAuthPlain {
  std::string rc_identity;
  int64_t timestamp_micros = 0;
  util::Bytes client_nonce;  // N

  util::Bytes Encode() const;
  static util::Result<RcAuthPlain> Decode(const util::Bytes& data);
};

struct RcAuthResponse {
  util::Bytes session_id;  // gatekeeper session handle

  util::Bytes Encode() const;
  static util::Result<RcAuthResponse> Decode(const util::Bytes& data);
};

struct RetrieveRequest {
  util::Bytes session_id;
  uint64_t after_message_id = 0;  // incremental fetch; 0 = everything
  /// Optional deposit-timestamp window [from, to) in µs — the billing-
  /// period query of the utility scenario. Both 0 = no time filter.
  int64_t from_micros = 0;
  int64_t to_micros = 0;

  bool HasTimeRange() const { return from_micros != 0 || to_micros != 0; }

  util::Bytes Encode() const;
  static util::Result<RetrieveRequest> Decode(const util::Bytes& data);
};

/// One record as handed to the RC: the attribute is replaced by its AID
/// ("attribute A is encrypted inside the ticket and AID is sent to the RC
/// in plain text").
struct RetrievedMessage {
  uint64_t message_id = 0;
  util::Bytes u;
  util::Bytes ciphertext;
  uint64_t aid = 0;
  util::Bytes nonce;

  util::Bytes Encode() const;
  static util::Result<RetrievedMessage> Decode(const util::Bytes& data);
};

struct RetrieveResponse {
  std::vector<RetrievedMessage> messages;
  util::Bytes token;  // E(PubKRC, SecK_RC-PKG || Ticket)

  util::Bytes Encode() const;
  static util::Result<RetrieveResponse> Decode(const util::Bytes& data);
};

/// Chunked retrieve (protocol extension): fetch at most `max_messages`
/// records past `after_message_id` so a 10k-message backlog streams in
/// bounded chunks instead of materializing one giant response.
struct RetrieveChunkRequest {
  static constexpr uint8_t kVersion = 1;

  util::Bytes session_id;
  uint64_t after_message_id = 0;
  /// Same optional [from, to) µs window as RetrieveRequest.
  int64_t from_micros = 0;
  int64_t to_micros = 0;
  /// Upper bound on messages in this chunk; 0 is rejected.
  uint32_t max_messages = 0;

  bool HasTimeRange() const { return from_micros != 0 || to_micros != 0; }

  util::Bytes Encode() const;
  static util::Result<RetrieveChunkRequest> Decode(const util::Bytes& data);
};

struct RetrieveChunkResponse {
  static constexpr uint8_t kVersion = 1;

  std::vector<RetrievedMessage> messages;
  /// True when more records exist past this chunk; resume the scan with
  /// after_message_id = next_after_id.
  bool has_more = false;
  uint64_t next_after_id = 0;
  /// Key-retrieval token. Issued only on the final chunk (has_more ==
  /// false) — issuing per chunk would waste one RSA encryption each.
  util::Bytes token;

  util::Bytes Encode() const;
  static util::Result<RetrieveChunkResponse> Decode(const util::Bytes& data);
};

/// The ticket body, encrypted under SecK_MWS-PKG inside the token. It
/// carries the AID -> attribute mapping so the RC never learns A, plus
/// the RC<->PKG session key and an expiry.
struct TicketPlain {
  std::string rc_identity;
  util::Bytes session_key;  // SecK_RC-PKG
  std::vector<std::pair<uint64_t, std::string>> aid_attributes;
  int64_t expiry_micros = 0;

  util::Bytes Encode() const;
  static util::Result<TicketPlain> Decode(const util::Bytes& data);
};

/// The token body: what RsaOaepDecrypt(PubKRC) yields.
struct TokenPlain {
  util::Bytes session_key;  // SecK_RC-PKG (for the RC's own use)
  util::Bytes ticket;       // E(SecK_MWS-PKG, TicketPlain) — opaque to RC

  util::Bytes Encode() const;
  static util::Result<TokenPlain> Decode(const util::Bytes& data);
};

// ---------------------------------------------------------------------
// Phase 3: RC <-> PKG ("RC sends IDRC || Ticket || Authenticator").

/// Authenticator plaintext: E(SecK_RC-PKG, IDRC || T).
struct AuthenticatorPlain {
  std::string rc_identity;
  int64_t timestamp_micros = 0;

  util::Bytes Encode() const;
  static util::Result<AuthenticatorPlain> Decode(const util::Bytes& data);
};

struct PkgAuthRequest {
  std::string rc_identity;
  util::Bytes ticket;
  util::Bytes authenticator;

  util::Bytes Encode() const;
  static util::Result<PkgAuthRequest> Decode(const util::Bytes& data);
};

struct PkgAuthResponse {
  util::Bytes session_id;

  util::Bytes Encode() const;
  static util::Result<PkgAuthResponse> Decode(const util::Bytes& data);
};

/// "RC now starts sending AID || Nonce to PKG."
struct KeyRequest {
  util::Bytes session_id;
  uint64_t aid = 0;
  util::Bytes nonce;

  util::Bytes Encode() const;
  static util::Result<KeyRequest> Decode(const util::Bytes& data);
};

/// "...and sends back sI to RC" — over the session-key channel.
struct KeyResponse {
  util::Bytes encrypted_private_key;  // E(SecK_RC-PKG, serialized sI)

  util::Bytes Encode() const;
  static util::Result<KeyResponse> Decode(const util::Bytes& data);
};

/// Batched extraction (protocol extension): one round trip for many
/// (AID, Nonce) pairs — the per-message-key design otherwise costs one
/// RC–PKG round trip per stored message.
struct KeyBatchRequest {
  util::Bytes session_id;
  std::vector<std::pair<uint64_t, util::Bytes>> items;  // (aid, nonce)

  util::Bytes Encode() const;
  static util::Result<KeyBatchRequest> Decode(const util::Bytes& data);
};

/// Per-item results, aligned with the request order.
struct KeyBatchResponse {
  struct Item {
    bool ok = false;
    /// E(SecK, sI) when ok; a status message otherwise.
    util::Bytes payload;
  };
  std::vector<Item> items;

  util::Bytes Encode() const;
  static util::Result<KeyBatchResponse> Decode(const util::Bytes& data);
};

/// Observability fetch (`obs.stats`). The payloads are opaque at this
/// layer (the wire module stays independent of obs types): the registry
/// snapshot decodes with obs::RegistrySnapshot::Decode, the span list
/// with obs::DecodeSpans.
struct StatsRequest {
  /// 1 = also return the tracer's retained spans.
  uint8_t include_spans = 0;

  util::Bytes Encode() const;
  static util::Result<StatsRequest> Decode(const util::Bytes& data);
};

struct StatsResponse {
  util::Bytes registry_snapshot;
  /// Empty unless spans were requested and a tracer is attached.
  util::Bytes trace_snapshot;

  util::Bytes Encode() const;
  static util::Result<StatsResponse> Decode(const util::Bytes& data);
};

// ---------------------------------------------------------------------
// Pipelined TCP framing. The legacy frame is
//   request:  u16 endpoint_len || endpoint || u32 body_len || body
//   response: u8 ok(0|1) || u32 len || payload
// and is strictly request/response lockstep. Pipelined frames let a
// client keep N requests in flight on one connection; responses carry
// the request's correlation id so they may complete out of order.
//
// A pipelined request starts with the u16 sentinel 0xFFFF where the
// legacy endpoint_len lives (an endpoint name can never be 65535 bytes:
// the server caps endpoints far below that), so old and new frames are
// distinguishable from the first two bytes. Pipelined responses use ok
// kinds 2 (ok) / 3 (error), disjoint from legacy 0/1, so a client that
// sent a pipelined request can never misread a legacy response.
//
//   request:  u16 0xFFFF || u8 version || u64 correlation_id ||
//             u16 endpoint_len || endpoint || u32 body_len || body
//   response: u8 kind(2|3) || u64 correlation_id || u32 len || payload
//
// Unknown versions are rejected (kUnimplemented); the server closes the
// connection after answering, since it cannot know the frame length of
// a future version.

inline constexpr uint16_t kPipelineSentinel = 0xFFFF;
inline constexpr uint8_t kPipelineVersion = 1;
inline constexpr uint8_t kPipelineOk = 2;
inline constexpr uint8_t kPipelineErr = 3;

struct PipelinedRequestFrame {
  uint64_t correlation_id = 0;
  std::string endpoint;
  util::Bytes body;

  /// Full frame including the 0xFFFF sentinel and version byte.
  util::Bytes Encode() const;
  static util::Result<PipelinedRequestFrame> Decode(const util::Bytes& data);
};

struct PipelinedResponseFrame {
  uint64_t correlation_id = 0;
  bool ok = false;
  util::Bytes payload;  // response body, or EncodeWireError payload

  util::Bytes Encode() const;
  static util::Result<PipelinedResponseFrame> Decode(const util::Bytes& data);
};

}  // namespace mws::wire

#endif  // MWSIBE_WIRE_MESSAGES_H_
