#include "src/wire/auth.h"

#include "src/crypto/hash.h"
#include "src/crypto/kdf.h"

namespace mws::wire {

util::Bytes HashPassword(const std::string& password) {
  return crypto::Sha256(util::BytesFromString(password));
}

util::Bytes DeriveAuthKey(const util::Bytes& password_hash,
                          crypto::CipherKind cipher) {
  return crypto::Hkdf(/*salt=*/{}, password_hash,
                      util::BytesFromString("mws-rc-auth"),
                      crypto::KeyLength(cipher));
}

util::Bytes DeriveChannelKey(const util::Bytes& secret,
                             crypto::CipherKind cipher,
                             const std::string& purpose) {
  return crypto::Hkdf(/*salt=*/{}, secret, util::BytesFromString(purpose),
                      crypto::KeyLength(cipher));
}

}  // namespace mws::wire
