#include "src/wire/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/wire/messages.h"

namespace mws::wire {

namespace {

/// Outcome of a bounded read/write: distinguishing a stall from a dead
/// peer matters to the client (DeadlineExceeded vs Unavailable).
enum class IoResult { kOk, kTimeout, kClosed };

/// Waits until `fd` is ready for `events` or `timeout_millis` elapses
/// (<= 0 waits forever).
IoResult PollFor(int fd, short events, int timeout_millis) {
  pollfd p{fd, events, 0};
  for (;;) {
    int rc = ::poll(&p, 1, timeout_millis <= 0 ? -1 : timeout_millis);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return IoResult::kClosed;
    }
    if (rc == 0) return IoResult::kTimeout;
    return IoResult::kOk;
  }
}

/// Reads exactly `len` bytes, waiting at most `timeout_millis` per
/// chunk; kClosed on EOF or error.
IoResult ReadFull(int fd, uint8_t* out, size_t len, int timeout_millis) {
  size_t done = 0;
  while (done < len) {
    IoResult ready = PollFor(fd, POLLIN, timeout_millis);
    if (ready != IoResult::kOk) return ready;
    ssize_t n = ::read(fd, out + done, len - done);
    if (n <= 0) return IoResult::kClosed;
    done += static_cast<size_t>(n);
  }
  return IoResult::kOk;
}

IoResult WriteFull(int fd, const uint8_t* data, size_t len,
                   int timeout_millis) {
  size_t done = 0;
  while (done < len) {
    IoResult ready = PollFor(fd, POLLOUT, timeout_millis);
    if (ready != IoResult::kOk) return ready;
    ssize_t n = ::write(fd, data + done, len - done);
    if (n <= 0) return IoResult::kClosed;
    done += static_cast<size_t>(n);
  }
  return IoResult::kOk;
}

void PutU16(util::Bytes& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

void PutU64(util::Bytes& out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void PutU32(util::Bytes& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

/// Client-side cap on response frames (the server caps requests via
/// Options::max_frame_bytes).
constexpr uint32_t kMaxFrame = 64 * 1024 * 1024;

constexpr short kReadableMask = POLLIN | POLLERR | POLLHUP | POLLNVAL;

}  // namespace

util::Result<std::unique_ptr<TcpServer>> TcpServer::Start(
    InProcessTransport* backend, uint16_t port, Options options) {
  if (options.worker_threads < 1) {
    return util::Status::InvalidArgument("worker_threads must be >= 1");
  }
  if (options.queue_capacity < 1) {
    return util::Status::InvalidArgument("queue_capacity must be >= 1");
  }
  auto server = std::unique_ptr<TcpServer>(new TcpServer());
  server->backend_ = backend;
  server->options_ = options;
  if (options.metrics != nullptr) {
    server->shed_counter_ = options.metrics->GetCounter("tcp.shed_requests");
    server->queue_depth_gauge_ = options.metrics->GetGauge("tcp.queue_depth");
    server->connections_gauge_ = options.metrics->GetGauge("tcp.connections");
  }
  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) {
    return util::Status::IoError("socket() failed");
  }
  int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(server->listen_fd_);
    return util::Status::IoError("bind() failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                &addr_len);
  server->port_ = ntohs(addr.sin_port);
  if (::listen(server->listen_fd_, 64) != 0) {
    ::close(server->listen_fd_);
    return util::Status::IoError("listen() failed");
  }
  if (::pipe(server->wake_pipe_) != 0) {
    ::close(server->listen_fd_);
    return util::Status::IoError("pipe() failed");
  }
  ::fcntl(server->wake_pipe_[0], F_SETFL, O_NONBLOCK);
  ::fcntl(server->wake_pipe_[1], F_SETFL, O_NONBLOCK);

  server->workers_.reserve(static_cast<size_t>(options.worker_threads));
  for (int i = 0; i < options.worker_threads; ++i) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  server->io_thread_ = std::thread([s = server.get()] { s->IoLoop(); });
  return server;
}

TcpServer::~TcpServer() { Shutdown(); }

void TcpServer::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  // Stop accepting.
  ::shutdown(listen_fd_, SHUT_RDWR);
  // Half-close every live connection so blocked frame reads return EOF;
  // responses in flight can still be written.
  {
    std::lock_guard<std::mutex> lock(open_fds_mutex_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RD);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  WakeIo();
  // Workers drain what is already queued, then exit.
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // The IO thread exits once every handed-out connection came back.
  WakeIo();
  if (io_thread_.joinable()) io_thread_.join();
  ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

void TcpServer::CloseServerFd(int fd) {
  {
    std::lock_guard<std::mutex> lock(open_fds_mutex_);
    open_fds_.erase(fd);
    if (connections_gauge_ != nullptr) {
      connections_gauge_->Set(static_cast<int64_t>(open_fds_.size()));
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn_states_mutex_);
    conn_states_.erase(fd);
  }
  ::close(fd);
}

void TcpServer::WakeIo() {
  uint8_t byte = 1;
  // Non-blocking; a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

bool TcpServer::EnqueueReady(int fd) {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  if (queue_closed_) return false;
  // Overload shedding instead of backpressure: the IO thread never
  // blocks here. Beyond the dispatch bound the request is still read
  // off the wire (framing stays in sync) but answered with
  // ResourceExhausted, costing no backend work.
  bool shed = dispatchable_queued_ >= options_.queue_capacity;
  if (shed) {
    shed_requests_.fetch_add(1, std::memory_order_relaxed);
    if (shed_counter_ != nullptr) shed_counter_->Increment();
  } else {
    ++dispatchable_queued_;
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<int64_t>(dispatchable_queued_));
    }
  }
  ready_queue_.push_back(Ready{fd, shed});
  lock.unlock();
  queue_cv_.notify_one();
  return true;
}

TcpServer::Ready TcpServer::PopReady() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  queue_cv_.wait(lock,
                 [this] { return !ready_queue_.empty() || queue_closed_; });
  if (ready_queue_.empty()) return Ready{};
  Ready ready = ready_queue_.front();
  ready_queue_.pop_front();
  if (!ready.shed) {
    --dispatchable_queued_;
    if (queue_depth_gauge_ != nullptr) {
      queue_depth_gauge_->Set(static_cast<int64_t>(dispatchable_queued_));
    }
  }
  return ready;
}

void TcpServer::PushCompleted(int fd, bool closed) {
  {
    std::lock_guard<std::mutex> lock(completed_mutex_);
    completed_.emplace_back(fd, closed);
  }
  WakeIo();
}

std::vector<std::pair<int, bool>> TcpServer::TakeCompleted() {
  std::lock_guard<std::mutex> lock(completed_mutex_);
  std::vector<std::pair<int, bool>> out;
  out.swap(completed_);
  return out;
}

void TcpServer::IoLoop() {
  std::vector<int> idle;    // connections this thread currently polls
  size_t busy = 0;          // connections owned by a worker
  bool draining = false;    // stopping_ observed; idle fds already closed
  std::vector<pollfd> fds;
  for (;;) {
    if (stopping_.load() && !draining) {
      // Stop polling connections: close the idle ones and wait only for
      // busy ones to come back from the workers.
      for (int fd : idle) CloseServerFd(fd);
      idle.clear();
      draining = true;
    }
    if (draining && busy == 0) break;

    fds.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    if (!draining) {
      fds.push_back({listen_fd_, POLLIN, 0});
      for (int fd : idle) fds.push_back({fd, POLLIN, 0});
    }
    int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[0].revents & kReadableMask) {
      uint8_t buf[64];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    // Hand readable connections to the workers. A connection leaves the
    // poll set while a worker owns it, so per-fd IO stays single-threaded.
    // This scan rebuilds `idle` from this iteration's poll set, so any
    // additions (completions, accepts) must happen after the swap.
    if (!draining) {
      std::vector<int> still_idle;
      still_idle.reserve(idle.size());
      for (size_t i = 2; i < fds.size(); ++i) {
        if (fds[i].revents & kReadableMask) {
          if (EnqueueReady(fds[i].fd)) {
            ++busy;
          } else {
            still_idle.push_back(fds[i].fd);  // queue closed; close on drain
          }
        } else {
          still_idle.push_back(fds[i].fd);
        }
      }
      idle.swap(still_idle);
    }
    // Reclaim connections the workers finished with.
    for (const auto& [fd, closed] : TakeCompleted()) {
      --busy;
      if (closed) continue;  // worker already closed it
      if (draining) {
        CloseServerFd(fd);
      } else {
        idle.push_back(fd);
      }
    }
    if (draining) continue;

    if (fds[1].revents & kReadableMask) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        {
          std::lock_guard<std::mutex> lock(open_fds_mutex_);
          open_fds_.insert(fd);
          if (connections_gauge_ != nullptr) {
            connections_gauge_->Set(static_cast<int64_t>(open_fds_.size()));
          }
        }
        {
          std::lock_guard<std::mutex> lock(conn_states_mutex_);
          conn_states_.emplace(fd, std::make_unique<ConnState>());
        }
        idle.push_back(fd);
      }
    }
  }
}

void TcpServer::WorkerLoop() {
  for (;;) {
    Ready ready = PopReady();
    if (ready.fd < 0) return;
    bool keep = HandleOneRequest(ready.fd, ready.shed);
    if (!keep) CloseServerFd(ready.fd);
    PushCompleted(ready.fd, /*closed=*/!keep);
  }
}

bool TcpServer::HandleOneRequest(int fd, bool shed) {
  ConnState* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(conn_states_mutex_);
    auto it = conn_states_.find(fd);
    if (it == conn_states_.end()) return false;
    conn = it->second.get();
  }
  // Drain requests the kernel already buffered (a pipelining client's
  // burst) within this ownership, bounded so one chatty connection
  // cannot monopolize a worker. Only the first request can be shed: the
  // rest never occupied a dispatch-queue slot.
  constexpr int kMaxDrainPerOwnership = 64;
  for (int handled = 0; handled < kMaxDrainPerOwnership; ++handled) {
    if (!ProcessFrame(fd, conn, shed && handled == 0)) return false;
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 0) <= 0 || (p.revents & POLLIN) == 0) break;
  }
  return true;
}

bool TcpServer::ProcessFrame(int fd, ConnState* conn, bool shed) {
  const int timeout = options_.io_timeout_millis;
  uint8_t header[2];
  if (ReadFull(fd, header, 2, timeout) != IoResult::kOk) return false;
  uint16_t first = static_cast<uint16_t>((header[0] << 8) | header[1]);

  // Pipelined frame: sentinel, version, correlation id, then the same
  // endpoint/body layout as a legacy frame.
  bool pipelined = first == kPipelineSentinel;
  uint64_t correlation_id = 0;
  uint16_t endpoint_len = first;
  if (pipelined) {
    uint8_t pre[11];  // version(1) correlation(8) endpoint_len(2)
    if (ReadFull(fd, pre, sizeof(pre), timeout) != IoResult::kOk) return false;
    // A future version's frame length is unknowable; drop the connection
    // rather than desync the stream.
    if (pre[0] != kPipelineVersion) return false;
    for (int i = 0; i < 8; ++i) {
      correlation_id = (correlation_id << 8) | pre[1 + i];
    }
    endpoint_len = static_cast<uint16_t>((pre[9] << 8) | pre[10]);
  }

  conn->endpoint_buf.resize(endpoint_len);
  if (endpoint_len > 0 &&
      ReadFull(fd, conn->endpoint_buf.data(), endpoint_len, timeout) !=
          IoResult::kOk) {
    return false;
  }
  uint8_t len_bytes[4];
  if (ReadFull(fd, len_bytes, 4, timeout) != IoResult::kOk) return false;
  uint32_t body_len = (static_cast<uint32_t>(len_bytes[0]) << 24) |
                      (static_cast<uint32_t>(len_bytes[1]) << 16) |
                      (static_cast<uint32_t>(len_bytes[2]) << 8) |
                      len_bytes[3];
  if (body_len > options_.max_frame_bytes) return false;
  conn->body_buf.resize(body_len);
  if (body_len > 0 &&
      ReadFull(fd, conn->body_buf.data(), body_len, timeout) !=
          IoResult::kOk) {
    return false;
  }

  std::string endpoint = util::StringFromBytes(conn->endpoint_buf);
  obs::Registry* metrics = options_.metrics;
  util::Result<util::Bytes> result = [&]() -> util::Result<util::Bytes> {
    if (shed) {
      return util::Status::ResourceExhausted(
          "server overloaded: dispatch queue full");
    }
    obs::ScopedTimer timer(
        metrics != nullptr
            ? metrics->GetHistogram("tcp.request_us", {{"op", endpoint}})
            : nullptr);
    // Dispatch without any server-wide lock: the registered services are
    // responsible for their own thread safety.
    return backend_->Call(endpoint, conn->body_buf);
  }();
  if (metrics != nullptr && !shed) {
    metrics->GetCounter("tcp.requests", {{"op", endpoint}})->Increment();
    if (!result.ok()) {
      metrics->GetCounter("tcp.request_errors", {{"op", endpoint}})
          ->Increment();
    }
  }

  util::Bytes& response = conn->response_buf;
  response.clear();
  const util::Bytes payload =
      result.ok() ? std::move(result).value() : EncodeWireError(result.status());
  if (pipelined) {
    response.push_back(result.ok() ? kPipelineOk : kPipelineErr);
    PutU64(response, correlation_id);
  } else {
    response.push_back(result.ok() ? 1 : 0);
  }
  PutU32(response, static_cast<uint32_t>(payload.size()));
  response.insert(response.end(), payload.begin(), payload.end());
  bool wrote = WriteFull(fd, response.data(), response.size(), timeout) ==
               IoResult::kOk;
  // Keep the steady-state buffers, but do not pin one huge frame's
  // allocation to an idle connection forever.
  constexpr size_t kRetainBytes = 1u << 20;
  if (conn->body_buf.capacity() > kRetainBytes) {
    conn->body_buf = util::Bytes();
  }
  if (conn->response_buf.capacity() > kRetainBytes) {
    conn->response_buf = util::Bytes();
  }
  return wrote;
}

TcpClientTransport::~TcpClientTransport() { CloseConnection(); }

void TcpClientTransport::CloseConnection() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status TcpClientTransport::EnsureConnected() {
  if (fd_ >= 0) return util::Status::Ok();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return util::Status::Unavailable("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument("bad host address: " + host_);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return util::Status::Unavailable("connect() to " + host_ + ":" +
                                     std::to_string(port_) + " failed");
  }
  fd_ = fd;
  return util::Status::Ok();
}

util::Result<util::Bytes> TcpClientTransport::CallOnce(
    const std::string& endpoint, const util::Bytes& request,
    bool* safe_to_resend) {
  *safe_to_resend = false;
  const int timeout = io_timeout_millis_;

  util::Bytes frame;
  frame.reserve(6 + endpoint.size() + request.size());
  PutU16(frame, static_cast<uint16_t>(endpoint.size()));
  frame.insert(frame.end(), endpoint.begin(), endpoint.end());
  PutU32(frame, static_cast<uint32_t>(request.size()));
  frame.insert(frame.end(), request.begin(), request.end());
  IoResult wrote = WriteFull(fd_, frame.data(), frame.size(), timeout);
  if (wrote != IoResult::kOk) {
    CloseConnection();
    if (wrote == IoResult::kTimeout) {
      return util::Status::DeadlineExceeded("request write timed out");
    }
    *safe_to_resend = true;  // nothing was executed on a dead pipe
    return util::Status::Unavailable("request write failed");
  }

  uint8_t header[5];
  IoResult read = ReadFull(fd_, header, 5, timeout);
  if (read != IoResult::kOk) {
    CloseConnection();
    if (read == IoResult::kTimeout) {
      return util::Status::DeadlineExceeded(
          "no response within " + std::to_string(timeout) + " ms from " +
          endpoint);
    }
    // EOF before the first response byte: a stale persistent connection
    // the server closed while idle. Resending on a fresh connection is
    // safe — the request was never processed on this one.
    *safe_to_resend = true;
    return util::Status::Unavailable("response read failed");
  }
  uint32_t len = (static_cast<uint32_t>(header[1]) << 24) |
                 (static_cast<uint32_t>(header[2]) << 16) |
                 (static_cast<uint32_t>(header[3]) << 8) | header[4];
  if (len > kMaxFrame) {
    CloseConnection();
    return util::Status::IoError("oversized response frame");
  }
  util::Bytes payload(len);
  if (len > 0) {
    read = ReadFull(fd_, payload.data(), len, timeout);
    if (read != IoResult::kOk) {
      // The server did execute the request; only the response is torn.
      // Not auto-resent here — the caller's retry layer decides.
      CloseConnection();
      return read == IoResult::kTimeout
                 ? util::Status::DeadlineExceeded("response body timed out")
                 : util::Status::Unavailable("response body read failed");
    }
  }
  if (header[0] != 1) {
    return DecodeWireError(payload);
  }
  return payload;
}

util::Result<util::Bytes> TcpClientTransport::Call(
    const std::string& endpoint, const util::Bytes& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (int attempt = 0;; ++attempt) {
    const bool reused = fd_ >= 0;
    MWS_RETURN_IF_ERROR(EnsureConnected());
    bool safe_to_resend = false;
    util::Result<util::Bytes> result =
        CallOnce(endpoint, request, &safe_to_resend);
    if (result.ok() || !safe_to_resend || !reused || attempt > 0) {
      return result;
    }
    // Reconnect-on-drop: the persistent connection died under us before
    // the request was processed; resend once on a fresh connection.
    ++reconnects_;
  }
}

}  // namespace mws::wire
