#include "src/wire/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace mws::wire {

namespace {

/// Reads exactly `len` bytes; false on EOF or error.
bool ReadFull(int fd, uint8_t* out, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::read(fd, out + done, len - done);
    if (n <= 0) return false;
    done += static_cast<size_t>(n);
  }
  return true;
}

bool WriteFull(int fd, const uint8_t* data, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::write(fd, data + done, len - done);
    if (n <= 0) return false;
    done += static_cast<size_t>(n);
  }
  return true;
}

void PutU16(util::Bytes& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

void PutU32(util::Bytes& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

constexpr uint32_t kMaxFrame = 64 * 1024 * 1024;

}  // namespace

util::Result<std::unique_ptr<TcpServer>> TcpServer::Start(
    InProcessTransport* backend, uint16_t port) {
  auto server = std::unique_ptr<TcpServer>(new TcpServer());
  server->backend_ = backend;
  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) {
    return util::Status::IoError("socket() failed");
  }
  int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(server->listen_fd_);
    return util::Status::IoError("bind() failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                &addr_len);
  server->port_ = ntohs(addr.sin_port);
  if (::listen(server->listen_fd_, 16) != 0) {
    ::close(server->listen_fd_);
    return util::Status::IoError("listen() failed");
  }
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

TcpServer::~TcpServer() { Shutdown(); }

void TcpServer::Shutdown() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // listener closed
    std::lock_guard<std::mutex> lock(threads_mutex_);
    connection_threads_.emplace_back(
        [this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  for (;;) {
    uint8_t header[2];
    if (!ReadFull(fd, header, 2)) break;
    uint16_t endpoint_len = static_cast<uint16_t>((header[0] << 8) |
                                                  header[1]);
    util::Bytes endpoint_bytes(endpoint_len);
    if (endpoint_len > 0 &&
        !ReadFull(fd, endpoint_bytes.data(), endpoint_len)) {
      break;
    }
    uint8_t len_bytes[4];
    if (!ReadFull(fd, len_bytes, 4)) break;
    uint32_t body_len = (static_cast<uint32_t>(len_bytes[0]) << 24) |
                        (static_cast<uint32_t>(len_bytes[1]) << 16) |
                        (static_cast<uint32_t>(len_bytes[2]) << 8) |
                        len_bytes[3];
    if (body_len > kMaxFrame) break;
    util::Bytes body(body_len);
    if (body_len > 0 && !ReadFull(fd, body.data(), body_len)) break;

    util::Result<util::Bytes> result = [&]() {
      std::lock_guard<std::mutex> lock(dispatch_mutex_);
      return backend_->Call(util::StringFromBytes(endpoint_bytes), body);
    }();

    util::Bytes response;
    if (result.ok()) {
      response.push_back(1);
      PutU32(response, static_cast<uint32_t>(result.value().size()));
      response.insert(response.end(), result.value().begin(),
                      result.value().end());
    } else {
      std::string message = result.status().ToString();
      response.push_back(0);
      PutU32(response, static_cast<uint32_t>(message.size()));
      response.insert(response.end(), message.begin(), message.end());
    }
    if (!WriteFull(fd, response.data(), response.size())) break;
  }
  ::close(fd);
}

TcpClientTransport::~TcpClientTransport() { CloseConnection(); }

void TcpClientTransport::CloseConnection() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Status TcpClientTransport::EnsureConnected() {
  if (fd_ >= 0) return util::Status::Ok();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return util::Status::IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Status::InvalidArgument("bad host address: " + host_);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return util::Status::IoError("connect() to " + host_ + ":" +
                                 std::to_string(port_) + " failed");
  }
  fd_ = fd;
  return util::Status::Ok();
}

util::Result<util::Bytes> TcpClientTransport::Call(
    const std::string& endpoint, const util::Bytes& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  MWS_RETURN_IF_ERROR(EnsureConnected());

  util::Bytes frame;
  frame.reserve(6 + endpoint.size() + request.size());
  PutU16(frame, static_cast<uint16_t>(endpoint.size()));
  frame.insert(frame.end(), endpoint.begin(), endpoint.end());
  PutU32(frame, static_cast<uint32_t>(request.size()));
  frame.insert(frame.end(), request.begin(), request.end());
  if (!WriteFull(fd_, frame.data(), frame.size())) {
    CloseConnection();
    return util::Status::IoError("request write failed");
  }

  uint8_t header[5];
  if (!ReadFull(fd_, header, 5)) {
    CloseConnection();
    return util::Status::IoError("response read failed");
  }
  uint32_t len = (static_cast<uint32_t>(header[1]) << 24) |
                 (static_cast<uint32_t>(header[2]) << 16) |
                 (static_cast<uint32_t>(header[3]) << 8) | header[4];
  if (len > kMaxFrame) {
    CloseConnection();
    return util::Status::IoError("oversized response frame");
  }
  util::Bytes payload(len);
  if (len > 0 && !ReadFull(fd_, payload.data(), len)) {
    CloseConnection();
    return util::Status::IoError("response body read failed");
  }
  if (header[0] != 1) {
    // Remote error, relayed with its message.
    return util::Status::Internal("remote: " +
                                  util::StringFromBytes(payload));
  }
  return payload;
}

}  // namespace mws::wire
