#ifndef MWSIBE_WIRE_RETRY_H_
#define MWSIBE_WIRE_RETRY_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <string>

#include "src/obs/metrics.h"
#include "src/util/clock.h"
#include "src/util/random.h"
#include "src/wire/transport.h"

namespace mws::wire {

/// Retry policy of a RetryingTransport.
struct RetryOptions {
  /// Total tries per Call (first attempt + retries).
  int max_attempts = 4;
  /// Base of the backoff schedule and floor of every sleep.
  int64_t initial_backoff_micros = 50'000;
  /// Ceiling of every sleep.
  int64_t max_backoff_micros = 2'000'000;
  /// Whole-call deadline, attempts and backoff included. A call that
  /// cannot finish inside this budget returns kDeadlineExceeded.
  /// 0 disables the deadline.
  int64_t call_deadline_micros = 10'000'000;
  /// Token-bucket retry budget shared by all calls through this
  /// transport: each retry spends one token, each *successful* call
  /// refunds `budget_refund`. When the bucket is dry, failures return
  /// immediately — a persistently failing server is not hammered with
  /// max_attempts times the offered load.
  double retry_budget = 10.0;
  double budget_refund = 0.1;
  /// Seed of the jitter PRNG (deterministic backoff schedule in tests).
  uint64_t seed = 2010;
  /// Optional instrumentation sink (must outlive the transport). Mirrors
  /// RetryStats into `retry.calls`, `retry.attempts`, `retry.retries`,
  /// `retry.deadline_exceeded`, `retry.budget_exhausted`, and adds
  /// `retry.backoff_sleep_us` (total backoff slept, microseconds).
  obs::Registry* metrics = nullptr;
};

/// Counters exposed for tests and the resilience bench.
struct RetryStats {
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> budget_exhausted{0};
};

/// Client-side resilience decorator: retries retryable failures
/// (util::IsRetryableCode — kUnavailable, kResourceExhausted, kIoError)
/// with exponential backoff and decorrelated jitter, under a per-call
/// deadline and a transport-wide retry budget.
///
/// Sleeps go through an injectable hook and deadlines through the
/// injected util::Clock, so tests drive the whole schedule from a
/// SimulatedClock — instant and deterministic. Retrying is only safe
/// because the services dedupe retransmits (MWS: (ID_SD, nonce)); see
/// DESIGN.md §10.
///
/// Thread-safe over a thread-safe base transport; concurrent calls
/// share the budget and the jitter stream but sleep independently.
class RetryingTransport : public Transport {
 public:
  /// Sleeps for the given microseconds. The default really sleeps;
  /// tests install a hook that advances their SimulatedClock instead.
  using SleepFn = std::function<void(int64_t micros)>;

  /// Borrows `base` and `clock`; both must outlive this.
  RetryingTransport(Transport* base, const util::Clock* clock,
                    RetryOptions options = {});

  void set_sleep_fn(SleepFn fn) { sleep_ = std::move(fn); }

  util::Result<util::Bytes> Call(const std::string& endpoint,
                                 const util::Bytes& request) override;

  const RetryStats& stats() const { return stats_; }
  const RetryOptions& options() const { return options_; }
  /// Remaining retry-budget tokens (for tests).
  double budget() const;

 private:
  /// Next decorrelated-jitter sleep given the previous one.
  int64_t NextBackoffMicros(int64_t prev_micros);

  /// Bumps both the RetryStats field and its registry mirror.
  static void Bump(std::atomic<uint64_t>& stat, obs::Counter* counter,
                   uint64_t n = 1) {
    stat.fetch_add(n, std::memory_order_relaxed);
    if (counter != nullptr) counter->Increment(n);
  }

  Transport* base_;
  const util::Clock* clock_;
  RetryOptions options_;

  /// Resolved at construction when metrics is set; null otherwise.
  obs::Counter* calls_counter_ = nullptr;
  obs::Counter* attempts_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* deadline_counter_ = nullptr;
  obs::Counter* budget_counter_ = nullptr;
  obs::Counter* backoff_us_counter_ = nullptr;
  SleepFn sleep_;
  RetryStats stats_;
  /// Guards budget_ and rng_.
  mutable std::mutex mutex_;
  double budget_;
  util::DeterministicRandom rng_;
};

}  // namespace mws::wire

#endif  // MWSIBE_WIRE_RETRY_H_
