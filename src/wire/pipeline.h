#ifndef MWSIBE_WIRE_PIPELINE_H_
#define MWSIBE_WIRE_PIPELINE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/wire/transport.h"

namespace mws::wire {

/// Client transport speaking the pipelined TcpServer framing
/// (messages.h PipelinedRequestFrame/PipelinedResponseFrame): many
/// requests in flight on one persistent connection, matched to their
/// responses by correlation id instead of strict request/response
/// lockstep.
///
/// Unlike TcpClientTransport, Call() is safe to invoke concurrently
/// from many threads *on one connection*: each call writes its frame
/// (serialized by a write mutex), then blocks until a dedicated reader
/// thread demultiplexes its response. CallPipelined() submits a whole
/// batch before waiting, so a single thread gets the same overlap.
/// At most `max_in_flight` requests are outstanding; further calls wait
/// for window space.
///
/// Failure behavior mirrors TcpClientTransport so RetryingTransport
/// composes on top unchanged: socket errors are kUnavailable and stalls
/// are kDeadlineExceeded after io_timeout_millis, both retryable. A
/// connection failure fails every in-flight call (the server may or may
/// not have executed them — exactly the at-least-once ambiguity the
/// dedup layer absorbs); the next call reconnects. A timed-out call
/// abandons its correlation id: a late response for an unknown id is
/// discarded without desyncing the stream. No automatic resend happens
/// here — with concurrent in-flight requests there is no "no response
/// byte arrived yet" signal to prove a request unexecuted, so every
/// retry decision belongs to the caller's retry layer.
class PipelinedTcpClientTransport : public Transport {
 public:
  struct Options {
    /// Max outstanding requests on the connection; further Call()s wait.
    size_t max_in_flight = 32;
    /// Per-wait stall bound (response wait, mid-frame reads, writes).
    int io_timeout_millis = 30'000;
  };

  PipelinedTcpClientTransport(std::string host, uint16_t port,
                              Options options);
  PipelinedTcpClientTransport(std::string host, uint16_t port)
      : PipelinedTcpClientTransport(std::move(host), port, Options{}) {}
  ~PipelinedTcpClientTransport() override;

  PipelinedTcpClientTransport(const PipelinedTcpClientTransport&) = delete;
  PipelinedTcpClientTransport& operator=(const PipelinedTcpClientTransport&) =
      delete;

  util::Result<util::Bytes> Call(const std::string& endpoint,
                                 const util::Bytes& request) override;

  /// Submits every request before waiting for any response; results are
  /// aligned with request order. Requests that could not be sent because
  /// the connection died mid-batch come back kUnavailable.
  std::vector<util::Result<util::Bytes>> CallPipelined(
      const std::string& endpoint, const std::vector<util::Bytes>& requests);

  /// Times a dead connection was replaced with a fresh one.
  uint64_t reconnects() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reconnects_;
  }

 private:
  struct PendingSlot {
    bool done = false;
    util::Result<util::Bytes> result =
        util::Status::Unavailable("no response");
  };

  /// Registers a slot and writes the request frame; on failure the slot
  /// is already completed with the error. Pre: no locks held.
  std::pair<std::shared_ptr<PendingSlot>, uint64_t> Submit(
      const std::string& endpoint, const util::Bytes& request);
  /// Blocks until `slot` completes or io_timeout_millis elapses
  /// (abandoning `correlation_id`).
  util::Result<util::Bytes> Await(const std::shared_ptr<PendingSlot>& slot,
                                  uint64_t correlation_id);

  /// Pre: mutex_ held (via `lock`). Reaps a broken connection (join the
  /// reader, close the fd) and dials a new one if needed.
  util::Status EnsureConnected(std::unique_lock<std::mutex>& lock);
  /// Reader-thread body for one connection generation.
  void ReaderLoop(int fd);
  /// Pre: mutex_ held. Marks the connection broken and fails every
  /// pending slot with `status`.
  void FailAllPending(const util::Status& status);

  const std::string host_;
  const uint16_t port_;
  const Options options_;

  /// Guards every field below; never held across blocking IO.
  mutable std::mutex mutex_;
  std::condition_variable cv_;  // slot completed / window space / broken
  int fd_ = -1;
  bool broken_ = false;  // reader saw an error; fd awaits reaping
  bool stopping_ = false;
  bool connecting_ = false;  // one thread is reaping/dialing
  int writers_ = 0;  // threads mid-write on fd_; reap waits for zero
  std::thread reader_;
  uint64_t next_correlation_id_ = 1;
  uint64_t reconnects_ = 0;
  std::unordered_map<uint64_t, std::shared_ptr<PendingSlot>> pending_;

  /// Serializes request writes so concurrent frames never interleave.
  /// Acquired after (never while holding) mutex_.
  std::mutex write_mutex_;
};

}  // namespace mws::wire

#endif  // MWSIBE_WIRE_PIPELINE_H_
