#include "src/wire/transport.h"

#include <chrono>
#include <thread>

namespace mws::wire {

void InProcessTransport::Register(const std::string& endpoint,
                                  Handler handler) {
  handlers_[endpoint] = std::move(handler);
}

int64_t InProcessTransport::TransferMicros(size_t bytes) const {
  int64_t cost = model_.latency_micros;
  if (model_.bytes_per_second > 0) {
    cost += static_cast<int64_t>(bytes) * 1'000'000 / model_.bytes_per_second;
  }
  return cost;
}

util::Result<util::Bytes> InProcessTransport::Call(
    const std::string& endpoint, const util::Bytes& request) {
  auto it = handlers_.find(endpoint);
  if (it == handlers_.end()) {
    return util::Status::NotFound("no handler for endpoint: " + endpoint);
  }
  stats_.calls.fetch_add(1, std::memory_order_relaxed);
  stats_.request_bytes.fetch_add(request.size(), std::memory_order_relaxed);
  int64_t network_micros = TransferMicros(request.size());
  auto response = it->second(request);
  if (response.ok()) {
    stats_.response_bytes.fetch_add(response.value().size(),
                                    std::memory_order_relaxed);
    network_micros += TransferMicros(response.value().size());
  }
  stats_.simulated_network_micros.fetch_add(network_micros,
                                            std::memory_order_relaxed);
  if (realize_network_ && network_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(network_micros));
  }
  return response;
}

}  // namespace mws::wire
