#include "src/wire/transport.h"

namespace mws::wire {

void InProcessTransport::Register(const std::string& endpoint,
                                  Handler handler) {
  handlers_[endpoint] = std::move(handler);
}

int64_t InProcessTransport::TransferMicros(size_t bytes) const {
  int64_t cost = model_.latency_micros;
  if (model_.bytes_per_second > 0) {
    cost += static_cast<int64_t>(bytes) * 1'000'000 / model_.bytes_per_second;
  }
  return cost;
}

util::Result<util::Bytes> InProcessTransport::Call(
    const std::string& endpoint, const util::Bytes& request) {
  auto it = handlers_.find(endpoint);
  if (it == handlers_.end()) {
    return util::Status::NotFound("no handler for endpoint: " + endpoint);
  }
  ++stats_.calls;
  stats_.request_bytes += request.size();
  stats_.simulated_network_micros += TransferMicros(request.size());
  auto response = it->second(request);
  if (response.ok()) {
    stats_.response_bytes += response.value().size();
    stats_.simulated_network_micros += TransferMicros(response.value().size());
  }
  return response;
}

}  // namespace mws::wire
