#ifndef MWSIBE_STORE_MESSAGE_DB_H_
#define MWSIBE_STORE_MESSAGE_DB_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/store/table.h"

namespace mws::store {

/// One deposited message as the MWS stores it (paper §V.D: "rP || C ||
/// (A || Nonce) is stored in the Message Database"). The MWS sees the
/// attribute and nonce in the clear — by design it can route but not read.
struct StoredMessage {
  uint64_t id = 0;           // assigned by Append
  util::Bytes u;             // rP, serialized curve point
  util::Bytes ciphertext;    // C, the DEM ciphertext
  std::string attribute;     // A
  util::Bytes nonce;         // per-message nonce
  std::string device_id;     // ID_SD
  int64_t timestamp_micros = 0;  // T

  util::Bytes Encode() const;
  static util::Result<StoredMessage> Decode(const util::Bytes& data);
};

/// The Message Database (MD component of the architecture, Fig. 3).
/// Maintains a secondary index attribute -> message ids so retrieval by
/// attribute does not scan the full store.
///
/// Concurrency: safe for concurrent use from many threads on top of a
/// thread-safe Table. Ids come from an in-memory atomic counter seeded
/// from the persisted "m.next" record at construction, so concurrent
/// Appends never hand out duplicate ids and contend only on the table's
/// shard/log locks. The counter record is still written (monotonically,
/// under its own small mutex) so a reopened store resumes numbering.
class MessageDb {
 public:
  /// Borrows `table`; the table must outlive the MessageDb. Reads the
  /// persisted id counter to seed in-memory id assignment. `metrics`
  /// (optional, must outlive the MessageDb) exposes `md.appends` and
  /// `md.dedup_hits`.
  explicit MessageDb(Table* table, obs::Registry* metrics = nullptr);

  /// Stores `message` (its id field is ignored) and returns the assigned id.
  util::Result<uint64_t> Append(const StoredMessage& message);

  struct AppendOutcome {
    uint64_t id = 0;
    /// The message was already fully stored (a retransmit); `id` is the
    /// original assignment.
    bool deduplicated = false;
  };

  /// At-least-once safe append: dedupes retransmissions by
  /// (device_id, nonce) so a client that retries after a lost ack
  /// cannot double-store. A dedup marker "n/<ID_SD>/<nonce>" -> id is
  /// reserved *before* the message records are written; a retry of a
  /// torn append therefore resumes the reserved id and rewrites the
  /// same keys (idempotent) instead of allocating a fresh id — no
  /// duplicate ever becomes visible through the indexes. Assumes one
  /// client retries a given (device, nonce) serially, which the
  /// store-and-forward device model guarantees.
  util::Result<AppendOutcome> AppendDeduped(const StoredMessage& message);

  /// Batched AppendDeduped: same per-message outcomes as calling
  /// AppendDeduped sequentially (including intra-batch retransmits, which
  /// dedup against the first occurrence), but the table work is grouped
  /// into two PutBatch calls — all fresh dedup markers first, then every
  /// message/index record — so a KvStore backend takes each shard lock
  /// once per batch instead of once per key. Marker-first ordering holds
  /// batch-wide, so a crash between the phases is recovered exactly like
  /// a torn single-shot append: the retry resumes the reserved ids. A
  /// storage failure fails the whole call; retrying the batch is safe
  /// (at-least-once, absorbed by the markers).
  util::Result<std::vector<AppendOutcome>> AppendDedupedBatch(
      const std::vector<StoredMessage>& messages);

  /// Retransmissions absorbed by AppendDeduped.
  uint64_t dedup_hits() const {
    return dedup_hits_.load(std::memory_order_relaxed);
  }

  util::Result<StoredMessage> Get(uint64_t id) const;

  /// All messages whose attribute equals `attribute`, in id order.
  util::Result<std::vector<StoredMessage>> FindByAttribute(
      const std::string& attribute) const;

  /// Union over several attributes, deduplicated, in id order.
  util::Result<std::vector<StoredMessage>> FindByAttributes(
      const std::vector<std::string>& attributes) const;

  /// Messages with id > `after_id` for one attribute (incremental fetch).
  util::Result<std::vector<StoredMessage>> FindByAttributeAfter(
      const std::string& attribute, uint64_t after_id) const;

  /// Messages for one attribute with timestamp in [from, to) — billing
  /// periods, the paper's motivating query. Served by a timestamp
  /// secondary index, not a scan. Pre: timestamps are non-negative.
  util::Result<std::vector<StoredMessage>> FindByAttributeInTimeRange(
      const std::string& attribute, int64_t from_micros,
      int64_t to_micros) const;

  /// Ids (only) with id > after_id for one attribute, in id order. A
  /// key-only index walk: no message value is materialized, so chunked
  /// retrieval can rank a 10k-message backlog before fetching anything.
  std::vector<uint64_t> IdsByAttributeAfter(const std::string& attribute,
                                            uint64_t after_id) const;

  /// Ids (only) for one attribute with timestamp in [from, to).
  std::vector<uint64_t> IdsByAttributeInTimeRange(const std::string& attribute,
                                                  int64_t from_micros,
                                                  int64_t to_micros) const;

  /// Number of stored messages. Counts index entries only — no message
  /// value (ciphertext) is materialized.
  size_t Count() const;

  /// Highest id assigned so far (0 when empty). Monotone; ids may be
  /// sparse after failed appends or pruning.
  uint64_t last_assigned_id() const {
    return next_id_.load(std::memory_order_relaxed) - 1;
  }

  /// Retention: deletes every stored message with id <= `max_id` —
  /// message record, both secondary indexes, and its dedup marker.
  /// Returns the number of messages removed. This is what keeps a
  /// sustained warehouse's live set (and thus compaction checkpoints
  /// and reopen time) bounded while the WAL records full history until
  /// the next compaction. Deleting the dedup marker re-opens the
  /// at-least-once replay window for that (device, nonce), so the
  /// retention horizon must comfortably exceed the longest client
  /// retry/outbox-replay horizon. Safe concurrently with appends and
  /// reads; a concurrent retrieval may observe a partially-pruned
  /// message's indexes (Get then reports NotFound, as for any
  /// already-pruned id).
  util::Result<size_t> PruneThrough(uint64_t max_id);

  /// The distinct attribute strings present in the warehouse (derived
  /// from the secondary index; used by policy-expression matching).
  std::vector<std::string> DistinctAttributes() const;

 private:
  /// Writes the message record and both secondary indexes for `stored`
  /// (whose id is already assigned), then advances the persisted
  /// counter. Idempotent for a fixed id.
  util::Status WriteRecords(const StoredMessage& stored);
  /// Bumps the persisted "m.next" counter to at least `next`.
  util::Status PersistCounter(uint64_t next);

  Table* table_;
  /// Next id to assign; seeded from the persisted counter at open.
  std::atomic<uint64_t> next_id_{1};
  /// Guards persisted_next_ so the on-disk counter only moves forward
  /// even when appends complete out of id order.
  std::mutex counter_mutex_;
  uint64_t persisted_next_ = 0;
  std::atomic<uint64_t> dedup_hits_{0};

  /// Resolved at construction when `metrics` is set; null otherwise.
  obs::Counter* appends_counter_ = nullptr;
  obs::Counter* dedup_counter_ = nullptr;
  obs::Counter* pruned_counter_ = nullptr;
};

}  // namespace mws::store

#endif  // MWSIBE_STORE_MESSAGE_DB_H_
