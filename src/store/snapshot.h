#ifndef MWSIBE_STORE_SNAPSHOT_H_
#define MWSIBE_STORE_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace mws::store {

/// Checkpoint file format shared by KvStore compaction and its recovery
/// path. A checkpoint is the live state of the store at some WAL offset,
/// written so reopen cost is O(live keys + WAL tail) instead of
/// O(full history):
///
///   "KCK1" (4-byte magic)
///   record*            — WAL framing: u8 type | u32 klen | u32 vlen |
///                        key | value | u32 crc32 (types 1=put, 2=delete;
///                        deletes appear when the compaction delta folds
///                        in appends that raced the live-index scan)
///   footer             — one type-3 record: klen=0, vlen=8, value =
///                        big-endian u64 count of preceding records
///
/// The footer doubles as the commit marker: a checkpoint without a valid
/// terminal footer (torn write, bitflip, truncation) is rejected as a
/// whole. Compaction only ever renames a fully-written file into place,
/// so a crash can never produce a footer-valid-but-partial checkpoint.

inline constexpr uint8_t kKvRecordPut = 1;
inline constexpr uint8_t kKvRecordDelete = 2;
inline constexpr uint8_t kKvRecordFooter = 3;

inline constexpr char kCheckpointMagic[4] = {'K', 'C', 'K', '1'};

/// One CRC-framed record in WAL/checkpoint framing.
util::Bytes EncodeKvRecord(uint8_t type, std::string_view key,
                           const util::Bytes& value);

/// The terminal footer record for a checkpoint holding `count` records.
util::Bytes EncodeCheckpointFooter(uint64_t count);

/// Walks WAL-framed records in `buf` starting at `offset`, invoking
/// `fn(type, key, value, value_len)` for each fully-valid record (any
/// type, footer included). Stops at the first torn or corrupt record and
/// sets `*torn`. Returns the offset one past the last valid record.
size_t ScanKvRecords(
    const util::Bytes& buf, size_t offset, bool* torn,
    const std::function<void(uint8_t type, std::string_view key,
                             const uint8_t* value, size_t value_len)>& fn);

struct KvRecord {
  uint8_t type = 0;
  std::string key;
  util::Bytes value;
};

/// A decoded checkpoint: records in file order (replay order — later
/// records win), plus the file size for recovery accounting.
struct CheckpointContents {
  std::vector<KvRecord> records;
  size_t bytes = 0;
};

/// Decodes a full checkpoint file image. Any defect — bad magic, torn or
/// CRC-failed record, missing/duplicated footer, count mismatch, bytes
/// after the footer — rejects the whole file with kCorruption: a
/// checkpoint is all-or-nothing, unlike the WAL whose tail may be torn.
util::Result<CheckpointContents> DecodeCheckpoint(const util::Bytes& data);

/// Reads and decodes `path`. kNotFound when the file does not exist.
util::Result<CheckpointContents> ReadCheckpointFile(const std::string& path);

}  // namespace mws::store

#endif  // MWSIBE_STORE_SNAPSHOT_H_
