#ifndef MWSIBE_STORE_USER_DB_H_
#define MWSIBE_STORE_USER_DB_H_

#include <string>
#include <vector>

#include "src/store/table.h"

namespace mws::store {

/// A receiving client's registration record. Per the paper's scheme the
/// Gatekeeper stores the *hashed password itself* and uses it as the
/// shared symmetric key for the RC authentication exchange — i.e. the
/// hash is password-equivalent, a deliberate fidelity choice (§V.D
/// "It retrieves the hashed password from the User Database and decrypts
/// the cipher text received").
struct UserRecord {
  std::string identity;        // ID_RC
  util::Bytes password_hash;   // SHA-256(password), the shared key
  util::Bytes rsa_public_key;  // serialized RsaPublicKey for token wrapping
};

/// The User Database (Fig. 3), consulted by the Gatekeeper.
class UserDb {
 public:
  /// Borrows `table`; the table must outlive the UserDb.
  explicit UserDb(Table* table) : table_(table) {}

  /// AlreadyExists if the identity is registered.
  util::Status Register(const UserRecord& record);

  util::Result<UserRecord> Get(const std::string& identity) const;

  /// Removes a registration. NotFound if absent.
  util::Status Remove(const std::string& identity);

  util::Result<std::vector<std::string>> AllIdentities() const;

 private:
  Table* table_;
};

/// Key-management store for smart devices: ID_SD -> shared MAC key
/// (established at registration, paper assumption ii). Used by the Smart
/// Device Authenticator.
class DeviceKeyDb {
 public:
  explicit DeviceKeyDb(Table* table) : table_(table) {}

  util::Status Register(const std::string& device_id,
                        const util::Bytes& mac_key);
  util::Result<util::Bytes> GetKey(const std::string& device_id) const;
  util::Status Remove(const std::string& device_id);
  size_t Count() const;

 private:
  Table* table_;
};

}  // namespace mws::store

#endif  // MWSIBE_STORE_USER_DB_H_
