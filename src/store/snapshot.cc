#include "src/store/snapshot.h"

#include <cstring>
#include <fstream>

#include "src/util/serde.h"

namespace mws::store {

util::Bytes EncodeKvRecord(uint8_t type, std::string_view key,
                           const util::Bytes& value) {
  util::Writer w;
  w.PutU8(type);
  w.PutU32(static_cast<uint32_t>(key.size()));
  w.PutU32(static_cast<uint32_t>(value.size()));
  w.PutRaw(util::BytesFromString(key));
  w.PutRaw(value);
  uint32_t crc = util::Crc32(w.data());
  w.PutU32(crc);
  return w.Take();
}

util::Bytes EncodeCheckpointFooter(uint64_t count) {
  util::Writer v;
  v.PutU64(count);
  return EncodeKvRecord(kKvRecordFooter, "", v.Take());
}

size_t ScanKvRecords(
    const util::Bytes& buf, size_t offset, bool* torn,
    const std::function<void(uint8_t type, std::string_view key,
                             const uint8_t* value, size_t value_len)>& fn) {
  size_t pos = offset;
  size_t valid_end = offset;
  *torn = false;
  auto read_u32 = [&](size_t at) {
    return (static_cast<uint32_t>(buf[at]) << 24) |
           (static_cast<uint32_t>(buf[at + 1]) << 16) |
           (static_cast<uint32_t>(buf[at + 2]) << 8) | buf[at + 3];
  };
  while (pos < buf.size()) {
    // Header: type(1) klen(4) vlen(4).
    if (buf.size() - pos < 9) {
      *torn = true;
      break;
    }
    uint8_t type = buf[pos];
    uint32_t klen = read_u32(pos + 1);
    uint32_t vlen = read_u32(pos + 5);
    size_t body = static_cast<size_t>(klen) + vlen;
    if (buf.size() - pos < 9 + body + 4) {
      *torn = true;
      break;
    }
    uint32_t stored_crc = read_u32(pos + 9 + body);
    uint32_t actual_crc = util::Crc32(buf.data() + pos, 9 + body);
    if (stored_crc != actual_crc ||
        (type != kKvRecordPut && type != kKvRecordDelete &&
         type != kKvRecordFooter)) {
      *torn = true;
      break;
    }
    std::string_view key(reinterpret_cast<const char*>(buf.data() + pos + 9),
                         klen);
    fn(type, key, buf.data() + pos + 9 + klen, vlen);
    pos += 9 + body + 4;
    valid_end = pos;
  }
  return valid_end;
}

util::Result<CheckpointContents> DecodeCheckpoint(const util::Bytes& data) {
  if (data.size() < sizeof(kCheckpointMagic) ||
      std::memcmp(data.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
          0) {
    return util::Status::Corruption("checkpoint: bad magic");
  }
  CheckpointContents out;
  out.bytes = data.size();
  bool torn = false;
  bool footer_seen = false;
  uint64_t footer_count = 0;
  bool malformed = false;
  size_t valid_end = ScanKvRecords(
      data, sizeof(kCheckpointMagic), &torn,
      [&](uint8_t type, std::string_view key, const uint8_t* value,
          size_t value_len) {
        if (footer_seen) {
          // Records after the footer: a writer bug or splice, reject.
          malformed = true;
          return;
        }
        if (type == kKvRecordFooter) {
          if (!key.empty() || value_len != 8) {
            malformed = true;
            return;
          }
          footer_count = 0;
          for (size_t i = 0; i < 8; ++i) {
            footer_count = (footer_count << 8) | value[i];
          }
          footer_seen = true;
          return;
        }
        out.records.push_back(KvRecord{
            type, std::string(key), util::Bytes(value, value + value_len)});
      });
  if (torn || malformed || valid_end != data.size()) {
    return util::Status::Corruption("checkpoint: torn or malformed records");
  }
  if (!footer_seen) {
    return util::Status::Corruption("checkpoint: missing footer");
  }
  if (footer_count != out.records.size()) {
    return util::Status::Corruption("checkpoint: footer count mismatch");
  }
  return out;
}

util::Result<CheckpointContents> ReadCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("no checkpoint at " + path);
  util::Bytes content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return DecodeCheckpoint(content);
}

}  // namespace mws::store
