#include "src/store/user_db.h"

#include "src/util/serde.h"

namespace mws::store {

namespace {

std::string UserKey(const std::string& identity) { return "u/" + identity; }
std::string DeviceKey(const std::string& device_id) {
  return "d/" + device_id;
}

util::Bytes EncodeUser(const UserRecord& record) {
  util::Writer w;
  w.PutString(record.identity);
  w.PutBytes(record.password_hash);
  w.PutBytes(record.rsa_public_key);
  return w.Take();
}

util::Result<UserRecord> DecodeUser(const util::Bytes& data) {
  util::Reader r(data);
  UserRecord record;
  r.GetString(&record.identity);
  r.GetBytes(&record.password_hash);
  r.GetBytes(&record.rsa_public_key);
  if (!r.Done()) return util::Status::Corruption("malformed user record");
  return record;
}

}  // namespace

util::Status UserDb::Register(const UserRecord& record) {
  const std::string key = UserKey(record.identity);
  if (table_->Contains(key)) {
    return util::Status::AlreadyExists("identity already registered: " +
                                       record.identity);
  }
  return table_->Put(key, EncodeUser(record));
}

util::Result<UserRecord> UserDb::Get(const std::string& identity) const {
  MWS_ASSIGN_OR_RETURN(util::Bytes raw, table_->Get(UserKey(identity)));
  return DecodeUser(raw);
}

util::Status UserDb::Remove(const std::string& identity) {
  if (!table_->Contains(UserKey(identity))) {
    return util::Status::NotFound("identity not registered: " + identity);
  }
  return table_->Delete(UserKey(identity));
}

util::Result<std::vector<std::string>> UserDb::AllIdentities() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : table_->Scan("u/")) {
    MWS_ASSIGN_OR_RETURN(UserRecord record, DecodeUser(value));
    out.push_back(record.identity);
  }
  return out;
}

util::Status DeviceKeyDb::Register(const std::string& device_id,
                                   const util::Bytes& mac_key) {
  if (table_->Contains(DeviceKey(device_id))) {
    return util::Status::AlreadyExists("device already registered: " +
                                       device_id);
  }
  return table_->Put(DeviceKey(device_id), mac_key);
}

util::Result<util::Bytes> DeviceKeyDb::GetKey(
    const std::string& device_id) const {
  return table_->Get(DeviceKey(device_id));
}

util::Status DeviceKeyDb::Remove(const std::string& device_id) {
  if (!table_->Contains(DeviceKey(device_id))) {
    return util::Status::NotFound("device not registered: " + device_id);
  }
  return table_->Delete(DeviceKey(device_id));
}

size_t DeviceKeyDb::Count() const { return table_->Scan("d/").size(); }

}  // namespace mws::store
