#include "src/store/kvstore.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "src/store/snapshot.h"
#include "src/util/serde.h"

namespace mws::store {

namespace {

bool HasPrefix(const std::string& key, const std::string& prefix) {
  return key.compare(0, prefix.size(), prefix) == 0;
}

/// Locks every shard's mutex in shared mode, ascending, for the lifetime
/// of the guard — the consistent-snapshot side of the lock order.
class AllShardsSharedLock {
 public:
  template <typename Shards>
  explicit AllShardsSharedLock(Shards& shards) {
    locks_.reserve(shards.size());
    for (auto& shard : shards) locks_.emplace_back(shard.mutex);
  }

 private:
  std::vector<std::shared_lock<std::shared_mutex>> locks_;
};

}  // namespace

void KvStore::RemoveFiles(const std::string& path) {
  if (path.empty()) return;
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(CheckpointPath(path), ec);
  std::filesystem::remove(CheckpointPath(path) + ".tmp", ec);
  std::filesystem::remove(path + ".compact", ec);  // pre-checkpoint scratch
}

util::Result<std::unique_ptr<KvStore>> KvStore::Open(const Options& options) {
  auto store = std::unique_ptr<KvStore>(new KvStore(options));
  if (options.metrics != nullptr) {
    store->wal_appends_counter_ = options.metrics->GetCounter("store.wal_appends");
    store->wal_bytes_counter_ = options.metrics->GetCounter("store.wal_bytes");
    store->contention_counter_ =
        options.metrics->GetCounter("store.shard_contention");
    store->compactions_counter_ =
        options.metrics->GetCounter("store.compactions");
    store->compaction_failures_counter_ =
        options.metrics->GetCounter("store.compaction_failures");
  }
  if (store->persistent()) {
    MWS_RETURN_IF_ERROR(store->Recover());
    store->log_.open(options.path, std::ios::binary | std::ios::app);
    if (!store->log_) {
      return util::Status::IoError("cannot open log for append: " +
                                   options.path);
    }
    if (options.metrics != nullptr) {
      // Recovery outcome as gauges: one value per Open, not cumulative.
      options.metrics->GetGauge("store.recovery.records_replayed")
          ->Set(static_cast<int64_t>(store->recovery_.records_replayed));
      options.metrics->GetGauge("store.recovery.bytes_truncated")
          ->Set(static_cast<int64_t>(store->recovery_.bytes_truncated));
      options.metrics->GetGauge("store.recovery.torn_tail")
          ->Set(store->recovery_.torn_tail ? 1 : 0);
      options.metrics->GetGauge("store.recovery.checkpoint_records")
          ->Set(static_cast<int64_t>(store->recovery_.checkpoint_records));
    }
  }
  return store;
}

KvStore::~KvStore() {
  if (log_.is_open()) log_.flush();
}

util::Status KvStore::Recover() {
  std::error_code ec;
  // A scratch checkpoint is an interrupted compaction's partial write:
  // it was never renamed into place, so it holds nothing durable.
  std::filesystem::remove(CheckpointPath(options_.path) + ".tmp", ec);
  std::filesystem::remove(options_.path + ".compact", ec);

  // 1. Checkpoint base image (if one exists). A corrupt checkpoint is an
  // unrecoverable defect — the WAL tail alone is not the full history —
  // so it surfaces as a failed Open instead of silent data loss.
  auto ckpt = ReadCheckpointFile(CheckpointPath(options_.path));
  if (ckpt.ok()) {
    for (const KvRecord& record : ckpt.value().records) {
      if (record.type == kKvRecordPut) {
        ShardFor(record.key).map[record.key] = record.value;
      } else {
        ShardFor(record.key).map.erase(record.key);
      }
    }
    recovery_.checkpoint_records = ckpt.value().records.size();
    recovery_.checkpoint_bytes = ckpt.value().bytes;
    log_records_.store(recovery_.checkpoint_records,
                       std::memory_order_relaxed);
  } else if (ckpt.status().code() != util::StatusCode::kNotFound) {
    return ckpt.status();
  }

  // 2. WAL tail replay with torn-tail truncation.
  std::ifstream in(options_.path, std::ios::binary);
  if (!in) {
    // Fresh WAL (possibly atop a checkpoint: a crash exactly between
    // compaction's rename and its truncating reopen leaves no WAL file
    // only if one never existed — truncation keeps the inode).
    recovery_.records_replayed = recovery_.checkpoint_records;
    return util::Status::Ok();
  }
  util::Bytes content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  bool torn = false;
  size_t wal_records = 0;
  size_t valid_end = ScanKvRecords(
      content, 0, &torn,
      [&](uint8_t type, std::string_view key, const uint8_t* value,
          size_t value_len) {
        if (type == kKvRecordFooter) {
          // Footers belong to checkpoint files only; a CRC-valid one in
          // a WAL can only come from splicing. Skip it without applying.
          return;
        }
        std::string k(key);
        if (type == kKvRecordPut) {
          ShardFor(k).map[k] = util::Bytes(value, value + value_len);
        } else {
          ShardFor(k).map.erase(k);
        }
        ++wal_records;
      });
  log_records_.fetch_add(wal_records, std::memory_order_relaxed);
  recovery_.records_replayed = recovery_.checkpoint_records + wal_records;
  recovery_.bytes_replayed = valid_end;
  recovery_.torn_tail = torn;
  recovery_.bytes_truncated = content.size() - valid_end;
  wal_bytes_.store(valid_end, std::memory_order_relaxed);
  if (torn) {
    // Drop the torn tail so future appends produce a clean log; every
    // fully-committed record before it has already been replayed.
    std::filesystem::resize_file(options_.path, valid_end, ec);
    if (ec) {
      return util::Status::IoError("cannot truncate torn WAL tail: " +
                                   ec.message());
    }
  }
  return util::Status::Ok();
}

util::Status KvStore::AppendRecord(uint8_t type, const std::string& key,
                                   const util::Bytes& value) {
  if (!persistent()) {
    log_records_.fetch_add(1, std::memory_order_relaxed);
    return util::Status::Ok();
  }
  util::Bytes record = EncodeKvRecord(type, key, value);
  std::lock_guard<std::mutex> log_lock(log_mutex_);
  log_.write(reinterpret_cast<const char*>(record.data()),
             static_cast<std::streamsize>(record.size()));
  if (!log_) return util::Status::IoError("log append failed");
  log_records_.fetch_add(1, std::memory_order_relaxed);
  wal_bytes_.fetch_add(record.size(), std::memory_order_relaxed);
  if (wal_appends_counter_ != nullptr) {
    wal_appends_counter_->Increment();
    wal_bytes_counter_->Increment(record.size());
  }
  return util::Status::Ok();
}

util::Status KvStore::Put(const std::string& key, const util::Bytes& value) {
  {
    Shard& shard = ShardFor(key);
    // try_lock first so stripe contention is observable: a failed
    // non-blocking acquire means another writer holds this shard.
    std::unique_lock<std::shared_mutex> lock(shard.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      if (contention_counter_ != nullptr) contention_counter_->Increment();
      lock.lock();
    }
    MWS_RETURN_IF_ERROR(AppendRecord(kKvRecordPut, key, value));
    shard.map[key] = value;
  }
  MaybeCompact();
  return util::Status::Ok();
}

util::Status KvStore::PutBatch(
    const std::vector<std::pair<std::string, util::Bytes>>& entries) {
  // Entry indices per shard, preserving batch order within each shard so
  // a duplicated key resolves last-write-wins exactly like N Puts.
  std::array<std::vector<size_t>, kShardCount> by_shard;
  for (size_t i = 0; i < entries.size(); ++i) {
    by_shard[std::hash<std::string>{}(entries[i].first) % kShardCount]
        .push_back(i);
  }
  for (size_t s = 0; s < kShardCount; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    std::unique_lock<std::shared_mutex> lock(shard.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      if (contention_counter_ != nullptr) contention_counter_->Increment();
      lock.lock();
    }
    for (size_t i : by_shard[s]) {
      const auto& [key, value] = entries[i];
      MWS_RETURN_IF_ERROR(AppendRecord(kKvRecordPut, key, value));
      shard.map[key] = value;
    }
  }
  MaybeCompact();
  return util::Status::Ok();
}

util::Result<util::Bytes> KvStore::Get(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    return util::Status::NotFound("key not found: " + key);
  }
  return it->second;
}

util::Status KvStore::Delete(const std::string& key) {
  {
    Shard& shard = ShardFor(key);
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    if (shard.map.find(key) == shard.map.end()) return util::Status::Ok();
    MWS_RETURN_IF_ERROR(AppendRecord(kKvRecordDelete, key, {}));
    shard.map.erase(key);
  }
  MaybeCompact();
  return util::Status::Ok();
}

bool KvStore::Contains(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  return shard.map.find(key) != shard.map.end();
}

std::vector<std::pair<std::string, util::Bytes>> KvStore::Scan(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, util::Bytes>> out;
  AllShardsSharedLock lock(shards_);
  for (const Shard& shard : shards_) {
    for (auto it = shard.map.lower_bound(prefix); it != shard.map.end();
         ++it) {
      if (!HasPrefix(it->first, prefix)) break;
      out.emplace_back(it->first, it->second);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::string> KvStore::ScanKeys(const std::string& prefix) const {
  std::vector<std::string> out;
  AllShardsSharedLock lock(shards_);
  for (const Shard& shard : shards_) {
    for (auto it = shard.map.lower_bound(prefix); it != shard.map.end();
         ++it) {
      if (!HasPrefix(it->first, prefix)) break;
      out.push_back(it->first);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t KvStore::CountPrefix(const std::string& prefix) const {
  size_t count = 0;
  AllShardsSharedLock lock(shards_);
  for (const Shard& shard : shards_) {
    for (auto it = shard.map.lower_bound(prefix); it != shard.map.end();
         ++it) {
      if (!HasPrefix(it->first, prefix)) break;
      ++count;
    }
  }
  return count;
}

size_t KvStore::Size() const {
  size_t total = 0;
  AllShardsSharedLock lock(shards_);
  for (const Shard& shard : shards_) total += shard.map.size();
  return total;
}

util::Status KvStore::Flush() {
  if (!persistent()) return util::Status::Ok();
  std::lock_guard<std::mutex> log_lock(log_mutex_);
  log_.flush();
  if (!log_) return util::Status::IoError("log flush failed");
  return util::Status::Ok();
}

void KvStore::MaybeCompact() {
  if (!persistent() || options_.compact_threshold_bytes == 0) return;
  if (wal_bytes_.load(std::memory_order_relaxed) <
      options_.compact_threshold_bytes) {
    return;
  }
  // Collapse concurrent triggers: whoever wins runs the checkpoint, the
  // rest return to their callers immediately.
  if (compact_running_.exchange(true, std::memory_order_acquire)) return;
  util::Result<size_t> result = Checkpoint();
  if (!result.ok() && compaction_failures_counter_ != nullptr) {
    // Best-effort: a failed background checkpoint leaves the WAL fully
    // intact (durability unaffected); the next threshold crossing
    // retries.
    compaction_failures_counter_->Increment();
  }
  compact_running_.store(false, std::memory_order_release);
}

util::Result<size_t> KvStore::Compact() { return Checkpoint(); }

util::Result<size_t> KvStore::Checkpoint() {
  std::lock_guard<std::mutex> compact_lock(compact_mutex_);
  if (!persistent()) {
    // In-memory: only the accounting compacts.
    AllShardsSharedLock lock(shards_);
    size_t live = 0;
    for (const Shard& shard : shards_) live += shard.map.size();
    size_t before = log_records_.exchange(live, std::memory_order_relaxed);
    return before > live ? before - live : 0;
  }
  const size_t before = log_records_.load(std::memory_order_relaxed);

  // 1. Note the fuzzy-scan cut. Flush first so every byte below the cut
  // is on disk for the delta read later.
  size_t cut;
  {
    std::lock_guard<std::mutex> log_lock(log_mutex_);
    log_.flush();
    if (!log_) return util::Status::IoError("flush before checkpoint failed");
    cut = wal_bytes_.load(std::memory_order_relaxed);
  }

  // 2. Fuzzy base scan: one shard at a time under a shared lock, so
  // readers are never blocked and writers only wait for their own
  // shard's copy-out. Appends racing the scan land in the WAL past the
  // cut and are folded in as the delta below — whether or not the scan
  // also saw their index effect, replay order makes the delta win.
  const std::string ckpt_path = CheckpointPath(options_.path);
  const std::string tmp = ckpt_path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) return util::Status::IoError("cannot create checkpoint scratch");
  out.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  size_t ckpt_records = 0;
  for (Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    for (const auto& [key, value] : shard.map) {
      util::Bytes record = EncodeKvRecord(kKvRecordPut, key, value);
      out.write(reinterpret_cast<const char*>(record.data()),
                static_cast<std::streamsize>(record.size()));
      ++ckpt_records;
    }
  }
  if (!out) return util::Status::IoError("checkpoint base write failed");

  // 3. Freeze the log (writers block at their append, readers continue),
  // fold in the delta appended during the scan, commit, truncate.
  std::lock_guard<std::mutex> log_lock(log_mutex_);
  log_.flush();
  if (!log_) return util::Status::IoError("flush at checkpoint swap failed");
  const size_t end = wal_bytes_.load(std::memory_order_relaxed);
  if (end > cut) {
    std::ifstream wal_in(options_.path, std::ios::binary);
    if (!wal_in) return util::Status::IoError("cannot read WAL delta");
    util::Bytes delta(end - cut);
    wal_in.seekg(static_cast<std::streamoff>(cut));
    wal_in.read(reinterpret_cast<char*>(delta.data()),
                static_cast<std::streamsize>(delta.size()));
    if (wal_in.gcount() != static_cast<std::streamsize>(delta.size())) {
      return util::Status::IoError("short WAL delta read");
    }
    bool torn = false;
    size_t delta_records = 0;
    size_t consumed = ScanKvRecords(
        delta, 0, &torn,
        [&](uint8_t, std::string_view, const uint8_t*, size_t) {
          ++delta_records;
        });
    if (torn || consumed != delta.size()) {
      // We wrote these bytes ourselves under the log mutex; a parse
      // failure means the WAL file diverged from the stream (external
      // tampering or IO corruption). Abort, leaving the WAL untouched.
      return util::Status::Corruption("WAL delta unparseable at checkpoint");
    }
    // Verbatim copy: same framing in WAL and checkpoint.
    out.write(reinterpret_cast<const char*>(delta.data()),
              static_cast<std::streamsize>(delta.size()));
    ckpt_records += delta_records;
  }
  util::Bytes footer = EncodeCheckpointFooter(ckpt_records);
  out.write(reinterpret_cast<const char*>(footer.data()),
            static_cast<std::streamsize>(footer.size()));
  out.flush();
  out.close();
  if (!out) return util::Status::IoError("checkpoint finalize failed");

  // Commit point: the atomic rename. Before it, recovery sees old ckpt +
  // full WAL; after it, new ckpt + full WAL (idempotent replay) until
  // the truncation lands.
  std::error_code ec;
  std::filesystem::rename(tmp, ckpt_path, ec);
  if (ec) return util::Status::IoError("checkpoint rename failed");

  log_.close();
  log_.open(options_.path, std::ios::binary | std::ios::trunc);
  if (!log_) return util::Status::IoError("cannot truncate WAL");
  wal_bytes_.store(0, std::memory_order_relaxed);
  log_records_.store(ckpt_records, std::memory_order_relaxed);
  if (compactions_counter_ != nullptr) compactions_counter_->Increment();
  return before > ckpt_records ? before - ckpt_records : 0;
}

}  // namespace mws::store
