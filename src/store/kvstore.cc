#include "src/store/kvstore.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "src/util/serde.h"

namespace mws::store {

namespace {

constexpr uint8_t kRecordPut = 1;
constexpr uint8_t kRecordDelete = 2;

util::Bytes EncodeRecord(uint8_t type, const std::string& key,
                         const util::Bytes& value) {
  util::Writer w;
  w.PutU8(type);
  w.PutU32(static_cast<uint32_t>(key.size()));
  w.PutU32(static_cast<uint32_t>(value.size()));
  w.PutRaw(util::BytesFromString(key));
  w.PutRaw(value);
  uint32_t crc = util::Crc32(w.data());
  w.PutU32(crc);
  return w.Take();
}

bool HasPrefix(const std::string& key, const std::string& prefix) {
  return key.compare(0, prefix.size(), prefix) == 0;
}

/// Locks every shard's mutex in shared mode, ascending, for the lifetime
/// of the guard — the consistent-snapshot side of the lock order.
class AllShardsSharedLock {
 public:
  template <typename Shards>
  explicit AllShardsSharedLock(Shards& shards) {
    locks_.reserve(shards.size());
    for (auto& shard : shards) locks_.emplace_back(shard.mutex);
  }

 private:
  std::vector<std::shared_lock<std::shared_mutex>> locks_;
};

}  // namespace

util::Result<std::unique_ptr<KvStore>> KvStore::Open(const Options& options) {
  auto store = std::unique_ptr<KvStore>(new KvStore(options));
  if (options.metrics != nullptr) {
    store->wal_appends_counter_ = options.metrics->GetCounter("store.wal_appends");
    store->wal_bytes_counter_ = options.metrics->GetCounter("store.wal_bytes");
    store->contention_counter_ =
        options.metrics->GetCounter("store.shard_contention");
  }
  if (store->persistent()) {
    MWS_RETURN_IF_ERROR(store->Recover());
    store->log_.open(options.path, std::ios::binary | std::ios::app);
    if (!store->log_) {
      return util::Status::IoError("cannot open log for append: " +
                                   options.path);
    }
    if (options.metrics != nullptr) {
      // Recovery outcome as gauges: one value per Open, not cumulative.
      options.metrics->GetGauge("store.recovery.records_replayed")
          ->Set(static_cast<int64_t>(store->recovery_.records_replayed));
      options.metrics->GetGauge("store.recovery.bytes_truncated")
          ->Set(static_cast<int64_t>(store->recovery_.bytes_truncated));
      options.metrics->GetGauge("store.recovery.torn_tail")
          ->Set(store->recovery_.torn_tail ? 1 : 0);
    }
  }
  return store;
}

KvStore::~KvStore() {
  if (log_.is_open()) log_.flush();
}

util::Status KvStore::Recover() {
  std::ifstream in(options_.path, std::ios::binary);
  if (!in) return util::Status::Ok();  // fresh store

  util::Bytes content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  size_t pos = 0;
  size_t valid_end = 0;
  bool torn = false;
  while (pos < content.size()) {
    // Header: type(1) klen(4) vlen(4).
    if (content.size() - pos < 9) {
      torn = true;
      break;
    }
    uint8_t type = content[pos];
    auto read_u32 = [&](size_t at) {
      return (static_cast<uint32_t>(content[at]) << 24) |
             (static_cast<uint32_t>(content[at + 1]) << 16) |
             (static_cast<uint32_t>(content[at + 2]) << 8) | content[at + 3];
    };
    uint32_t klen = read_u32(pos + 1);
    uint32_t vlen = read_u32(pos + 5);
    size_t body = static_cast<size_t>(klen) + vlen;
    if (content.size() - pos < 9 + body + 4) {
      torn = true;
      break;
    }
    uint32_t stored_crc = read_u32(pos + 9 + body);
    uint32_t actual_crc = util::Crc32(content.data() + pos, 9 + body);
    if (stored_crc != actual_crc ||
        (type != kRecordPut && type != kRecordDelete)) {
      torn = true;
      break;
    }
    std::string key(reinterpret_cast<const char*>(content.data() + pos + 9),
                    klen);
    if (type == kRecordPut) {
      ShardFor(key).map[key] = util::Bytes(content.begin() + pos + 9 + klen,
                                           content.begin() + pos + 9 + body);
    } else {
      ShardFor(key).map.erase(key);
    }
    log_records_.fetch_add(1, std::memory_order_relaxed);
    pos += 9 + body + 4;
    valid_end = pos;
  }
  in.close();
  recovery_.records_replayed = log_records_.load(std::memory_order_relaxed);
  recovery_.bytes_replayed = valid_end;
  recovery_.torn_tail = torn;
  recovery_.bytes_truncated = content.size() - valid_end;
  if (torn) {
    // Drop the torn tail so future appends produce a clean log; every
    // fully-committed record before it has already been replayed.
    std::error_code ec;
    std::filesystem::resize_file(options_.path, valid_end, ec);
    if (ec) {
      return util::Status::IoError("cannot truncate torn WAL tail: " +
                                   ec.message());
    }
  }
  return util::Status::Ok();
}

util::Status KvStore::AppendRecord(uint8_t type, const std::string& key,
                                   const util::Bytes& value) {
  if (!persistent()) {
    log_records_.fetch_add(1, std::memory_order_relaxed);
    return util::Status::Ok();
  }
  util::Bytes record = EncodeRecord(type, key, value);
  std::lock_guard<std::mutex> log_lock(log_mutex_);
  log_.write(reinterpret_cast<const char*>(record.data()),
             static_cast<std::streamsize>(record.size()));
  if (!log_) return util::Status::IoError("log append failed");
  log_records_.fetch_add(1, std::memory_order_relaxed);
  if (wal_appends_counter_ != nullptr) {
    wal_appends_counter_->Increment();
    wal_bytes_counter_->Increment(record.size());
  }
  return util::Status::Ok();
}

util::Status KvStore::Put(const std::string& key, const util::Bytes& value) {
  Shard& shard = ShardFor(key);
  // try_lock first so stripe contention is observable: a failed
  // non-blocking acquire means another writer holds this shard.
  std::unique_lock<std::shared_mutex> lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    if (contention_counter_ != nullptr) contention_counter_->Increment();
    lock.lock();
  }
  MWS_RETURN_IF_ERROR(AppendRecord(kRecordPut, key, value));
  shard.map[key] = value;
  return util::Status::Ok();
}

util::Status KvStore::PutBatch(
    const std::vector<std::pair<std::string, util::Bytes>>& entries) {
  // Entry indices per shard, preserving batch order within each shard so
  // a duplicated key resolves last-write-wins exactly like N Puts.
  std::array<std::vector<size_t>, kShardCount> by_shard;
  for (size_t i = 0; i < entries.size(); ++i) {
    by_shard[std::hash<std::string>{}(entries[i].first) % kShardCount]
        .push_back(i);
  }
  for (size_t s = 0; s < kShardCount; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = shards_[s];
    std::unique_lock<std::shared_mutex> lock(shard.mutex, std::try_to_lock);
    if (!lock.owns_lock()) {
      if (contention_counter_ != nullptr) contention_counter_->Increment();
      lock.lock();
    }
    for (size_t i : by_shard[s]) {
      const auto& [key, value] = entries[i];
      MWS_RETURN_IF_ERROR(AppendRecord(kRecordPut, key, value));
      shard.map[key] = value;
    }
  }
  return util::Status::Ok();
}

util::Result<util::Bytes> KvStore::Get(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    return util::Status::NotFound("key not found: " + key);
  }
  return it->second;
}

util::Status KvStore::Delete(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  if (shard.map.find(key) == shard.map.end()) return util::Status::Ok();
  MWS_RETURN_IF_ERROR(AppendRecord(kRecordDelete, key, {}));
  shard.map.erase(key);
  return util::Status::Ok();
}

bool KvStore::Contains(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  return shard.map.find(key) != shard.map.end();
}

std::vector<std::pair<std::string, util::Bytes>> KvStore::Scan(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, util::Bytes>> out;
  AllShardsSharedLock lock(shards_);
  for (const Shard& shard : shards_) {
    for (auto it = shard.map.lower_bound(prefix); it != shard.map.end();
         ++it) {
      if (!HasPrefix(it->first, prefix)) break;
      out.emplace_back(it->first, it->second);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::vector<std::string> KvStore::ScanKeys(const std::string& prefix) const {
  std::vector<std::string> out;
  AllShardsSharedLock lock(shards_);
  for (const Shard& shard : shards_) {
    for (auto it = shard.map.lower_bound(prefix); it != shard.map.end();
         ++it) {
      if (!HasPrefix(it->first, prefix)) break;
      out.push_back(it->first);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t KvStore::CountPrefix(const std::string& prefix) const {
  size_t count = 0;
  AllShardsSharedLock lock(shards_);
  for (const Shard& shard : shards_) {
    for (auto it = shard.map.lower_bound(prefix); it != shard.map.end();
         ++it) {
      if (!HasPrefix(it->first, prefix)) break;
      ++count;
    }
  }
  return count;
}

size_t KvStore::Size() const {
  size_t total = 0;
  AllShardsSharedLock lock(shards_);
  for (const Shard& shard : shards_) total += shard.map.size();
  return total;
}

util::Status KvStore::Flush() {
  if (!persistent()) return util::Status::Ok();
  std::lock_guard<std::mutex> log_lock(log_mutex_);
  log_.flush();
  if (!log_) return util::Status::IoError("log flush failed");
  return util::Status::Ok();
}

util::Result<size_t> KvStore::Compact() {
  // Exclusive on every shard: freezes the index and excludes writers
  // (who take shard before log, so none can be mid-append once we hold
  // all shard locks).
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(kShardCount);
  for (Shard& shard : shards_) locks.emplace_back(shard.mutex);

  size_t live = 0;
  for (const Shard& shard : shards_) live += shard.map.size();

  if (!persistent()) {
    size_t dropped = log_records_.load(std::memory_order_relaxed) - live;
    log_records_.store(live, std::memory_order_relaxed);
    return dropped;
  }
  std::string tmp = options_.path + ".compact";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return util::Status::IoError("cannot create compaction file");
    for (const Shard& shard : shards_) {
      for (const auto& [key, value] : shard.map) {
        util::Bytes record = EncodeRecord(kRecordPut, key, value);
        out.write(reinterpret_cast<const char*>(record.data()),
                  static_cast<std::streamsize>(record.size()));
      }
    }
    out.flush();
    if (!out) return util::Status::IoError("compaction write failed");
  }
  std::lock_guard<std::mutex> log_lock(log_mutex_);
  log_.close();
  std::error_code ec;
  std::filesystem::rename(tmp, options_.path, ec);
  if (ec) return util::Status::IoError("compaction rename failed");
  log_.open(options_.path, std::ios::binary | std::ios::app);
  if (!log_) return util::Status::IoError("cannot reopen compacted log");
  size_t dropped = log_records_.load(std::memory_order_relaxed) - live;
  log_records_.store(live, std::memory_order_relaxed);
  return dropped;
}

}  // namespace mws::store
