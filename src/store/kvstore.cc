#include "src/store/kvstore.h"

#include <cstdio>
#include <filesystem>

#include "src/util/serde.h"

namespace mws::store {

namespace {

constexpr uint8_t kRecordPut = 1;
constexpr uint8_t kRecordDelete = 2;

util::Bytes EncodeRecord(uint8_t type, const std::string& key,
                         const util::Bytes& value) {
  util::Writer w;
  w.PutU8(type);
  w.PutU32(static_cast<uint32_t>(key.size()));
  w.PutU32(static_cast<uint32_t>(value.size()));
  w.PutRaw(util::BytesFromString(key));
  w.PutRaw(value);
  uint32_t crc = util::Crc32(w.data());
  w.PutU32(crc);
  return w.Take();
}

}  // namespace

util::Result<std::unique_ptr<KvStore>> KvStore::Open(const Options& options) {
  auto store = std::unique_ptr<KvStore>(new KvStore(options));
  if (store->persistent()) {
    MWS_RETURN_IF_ERROR(store->Recover());
    store->log_.open(options.path, std::ios::binary | std::ios::app);
    if (!store->log_) {
      return util::Status::IoError("cannot open log for append: " +
                                   options.path);
    }
  }
  return store;
}

KvStore::~KvStore() {
  if (log_.is_open()) log_.flush();
}

util::Status KvStore::Recover() {
  std::ifstream in(options_.path, std::ios::binary);
  if (!in) return util::Status::Ok();  // fresh store

  util::Bytes content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  size_t pos = 0;
  size_t valid_end = 0;
  bool torn = false;
  while (pos < content.size()) {
    // Header: type(1) klen(4) vlen(4).
    if (content.size() - pos < 9) {
      torn = true;
      break;
    }
    uint8_t type = content[pos];
    auto read_u32 = [&](size_t at) {
      return (static_cast<uint32_t>(content[at]) << 24) |
             (static_cast<uint32_t>(content[at + 1]) << 16) |
             (static_cast<uint32_t>(content[at + 2]) << 8) | content[at + 3];
    };
    uint32_t klen = read_u32(pos + 1);
    uint32_t vlen = read_u32(pos + 5);
    size_t body = static_cast<size_t>(klen) + vlen;
    if (content.size() - pos < 9 + body + 4) {
      torn = true;
      break;
    }
    uint32_t stored_crc = read_u32(pos + 9 + body);
    uint32_t actual_crc = util::Crc32(content.data() + pos, 9 + body);
    if (stored_crc != actual_crc ||
        (type != kRecordPut && type != kRecordDelete)) {
      torn = true;
      break;
    }
    std::string key(reinterpret_cast<const char*>(content.data() + pos + 9),
                    klen);
    if (type == kRecordPut) {
      index_[key] = util::Bytes(content.begin() + pos + 9 + klen,
                                content.begin() + pos + 9 + body);
    } else {
      index_.erase(key);
    }
    ++log_records_;
    pos += 9 + body + 4;
    valid_end = pos;
  }
  in.close();
  if (torn) {
    // Drop the torn tail so future appends produce a clean log.
    std::filesystem::resize_file(options_.path, valid_end);
  }
  return util::Status::Ok();
}

util::Status KvStore::AppendRecord(uint8_t type, const std::string& key,
                                   const util::Bytes& value) {
  if (!persistent()) {
    ++log_records_;
    return util::Status::Ok();
  }
  util::Bytes record = EncodeRecord(type, key, value);
  log_.write(reinterpret_cast<const char*>(record.data()),
             static_cast<std::streamsize>(record.size()));
  if (!log_) return util::Status::IoError("log append failed");
  ++log_records_;
  return util::Status::Ok();
}

util::Status KvStore::Put(const std::string& key, const util::Bytes& value) {
  MWS_RETURN_IF_ERROR(AppendRecord(kRecordPut, key, value));
  index_[key] = value;
  return util::Status::Ok();
}

util::Result<util::Bytes> KvStore::Get(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return util::Status::NotFound("key not found: " + key);
  }
  return it->second;
}

util::Status KvStore::Delete(const std::string& key) {
  if (index_.find(key) == index_.end()) return util::Status::Ok();
  MWS_RETURN_IF_ERROR(AppendRecord(kRecordDelete, key, {}));
  index_.erase(key);
  return util::Status::Ok();
}

bool KvStore::Contains(const std::string& key) const {
  return index_.find(key) != index_.end();
}

std::vector<std::pair<std::string, util::Bytes>> KvStore::Scan(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, util::Bytes>> out;
  for (auto it = index_.lower_bound(prefix); it != index_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

size_t KvStore::Size() const { return index_.size(); }

util::Status KvStore::Flush() {
  if (!persistent()) return util::Status::Ok();
  log_.flush();
  if (!log_) return util::Status::IoError("log flush failed");
  return util::Status::Ok();
}

util::Result<size_t> KvStore::Compact() {
  if (!persistent()) {
    size_t dropped = log_records_ - index_.size();
    log_records_ = index_.size();
    return dropped;
  }
  std::string tmp = options_.path + ".compact";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return util::Status::IoError("cannot create compaction file");
    for (const auto& [key, value] : index_) {
      util::Bytes record = EncodeRecord(kRecordPut, key, value);
      out.write(reinterpret_cast<const char*>(record.data()),
                static_cast<std::streamsize>(record.size()));
    }
    out.flush();
    if (!out) return util::Status::IoError("compaction write failed");
  }
  log_.close();
  std::error_code ec;
  std::filesystem::rename(tmp, options_.path, ec);
  if (ec) return util::Status::IoError("compaction rename failed");
  log_.open(options_.path, std::ios::binary | std::ios::app);
  if (!log_) return util::Status::IoError("cannot reopen compacted log");
  size_t dropped = log_records_ - index_.size();
  log_records_ = index_.size();
  return dropped;
}

}  // namespace mws::store
