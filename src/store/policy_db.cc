#include "src/store/policy_db.h"

#include <cinttypes>
#include <cstdio>

#include "src/util/serde.h"

namespace mws::store {

namespace {

constexpr char kNextAidKey[] = "p.next";
constexpr char kNextExprKey[] = "e.next";

std::string GrantKey(const std::string& identity,
                     const std::string& attribute) {
  return "p/" + identity + "/" + attribute;
}

std::string AidKey(uint64_t aid) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "a/%016" PRIx64, aid);
  return buf;
}

util::Bytes EncodeRow(const PolicyRow& row) {
  util::Writer w;
  w.PutString(row.identity);
  w.PutString(row.attribute);
  w.PutU64(row.aid);
  w.PutU64(row.origin);
  return w.Take();
}

std::string ExprKey(const std::string& identity, uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%016" PRIx64, seq);
  return "e/" + identity + buf;
}

util::Result<PolicyRow> DecodeRow(const util::Bytes& data) {
  util::Reader r(data);
  PolicyRow row;
  r.GetString(&row.identity);
  r.GetString(&row.attribute);
  r.GetU64(&row.aid);
  r.GetU64(&row.origin);
  if (!r.Done()) return util::Status::Corruption("malformed policy row");
  return row;
}

}  // namespace

PolicyDb::PolicyDb(Table* table, PolicyDbOptions options)
    : table_(table), options_(options) {
  size_t stripes = options_.aid_cache_stripes == 0 ? 1
                                                   : options_.aid_cache_stripes;
  if (options_.aid_cache_capacity > 0 &&
      stripes > options_.aid_cache_capacity) {
    stripes = options_.aid_cache_capacity;
  }
  cache_stripes_ = std::vector<CacheStripe>(stripes);
  cache_per_stripe_cap_ =
      (options_.aid_cache_capacity + stripes - 1) / stripes;
  if (options_.metrics != nullptr) {
    hits_counter_ = options_.metrics->GetCounter("policy.aid_cache_hits");
    misses_counter_ = options_.metrics->GetCounter("policy.aid_cache_misses");
  }
  if (options_.enable_index) HydrateIndex();
}

void PolicyDb::HydrateIndex() {
  std::unique_lock<std::shared_mutex> index_lock(index_mutex_);
  grants_.clear();
  exprs_.clear();
  for (const auto& [key, value] : table_->Scan("p/")) {
    auto row = DecodeRow(value);
    if (!row.ok()) continue;  // scan paths surface the corruption
    grants_[{row->identity, row->attribute}] =
        IndexEntry{row->aid, row->origin};
  }
  for (const auto& [key, value] : table_->Scan("e/")) {
    // Key layout: "e/" + identity + "/" + 16-hex-digit sequence.
    size_t slash = key.rfind('/');
    if (slash == std::string::npos || slash < 2) continue;
    uint64_t seq = std::strtoull(key.substr(slash + 1).c_str(), nullptr, 16);
    std::string identity = key.substr(2, slash - 2);
    exprs_[{std::move(identity), seq}] = util::StringFromBytes(value);
  }
}

// --- AID LRU cache ---

bool PolicyDb::CacheLookup(uint64_t aid, PolicyRow* row) const {
  if (options_.aid_cache_capacity == 0) return false;
  CacheStripe& stripe = CacheStripeFor(aid);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.map.find(aid);
  if (it == stripe.map.end()) return false;
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.second);
  *row = it->second.first;
  return true;
}

void PolicyDb::CacheInsert(const PolicyRow& row) const {
  if (options_.aid_cache_capacity == 0) return;
  CacheStripe& stripe = CacheStripeFor(row.aid);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.map.find(row.aid);
  if (it != stripe.map.end()) {
    it->second.first = row;
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.second);
    return;
  }
  stripe.lru.push_front(row.aid);
  stripe.map.emplace(row.aid, std::make_pair(row, stripe.lru.begin()));
  while (stripe.map.size() > cache_per_stripe_cap_) {
    stripe.map.erase(stripe.lru.back());
    stripe.lru.pop_back();
  }
}

void PolicyDb::CacheInvalidate(uint64_t aid) const {
  if (options_.aid_cache_capacity == 0) return;
  CacheStripe& stripe = CacheStripeFor(aid);
  std::lock_guard<std::mutex> lock(stripe.mutex);
  auto it = stripe.map.find(aid);
  if (it == stripe.map.end()) return;
  stripe.lru.erase(it->second.second);
  stripe.map.erase(it);
}

// --- Mutations ---

util::Result<uint64_t> PolicyDb::Grant(const std::string& identity,
                                       const std::string& attribute,
                                       uint64_t origin) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  const std::string key = GrantKey(identity, attribute);
  if (table_->Contains(key)) {
    return util::Status::AlreadyExists("grant already present");
  }
  uint64_t aid = 1;
  auto counter = table_->Get(kNextAidKey);
  if (counter.ok()) {
    util::Reader r(counter.value());
    if (!r.GetU64(&aid) || !r.Done()) {
      return util::Status::Corruption("bad AID counter");
    }
  }
  PolicyRow row{identity, attribute, aid, origin};
  MWS_RETURN_IF_ERROR(table_->Put(key, EncodeRow(row)));
  // Index right after the grant row lands so a failure of the remaining
  // writes leaves index and table agreeing on row visibility.
  if (options_.enable_index) {
    std::unique_lock<std::shared_mutex> index_lock(index_mutex_);
    grants_[{identity, attribute}] = IndexEntry{aid, origin};
  }
  MWS_RETURN_IF_ERROR(table_->Put(AidKey(aid), EncodeRow(row)));
  util::Writer w;
  w.PutU64(aid + 1);
  MWS_RETURN_IF_ERROR(table_->Put(kNextAidKey, w.Take()));
  return aid;
}

util::Status PolicyDb::Revoke(const std::string& identity,
                              const std::string& attribute) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return RevokeLocked(identity, attribute);
}

util::Status PolicyDb::RevokeLocked(const std::string& identity,
                                    const std::string& attribute) {
  const std::string key = GrantKey(identity, attribute);
  auto raw = table_->Get(key);
  if (!raw.ok()) return util::Status::NotFound("grant not present");
  MWS_ASSIGN_OR_RETURN(PolicyRow row, DecodeRow(raw.value()));
  MWS_RETURN_IF_ERROR(table_->Delete(key));
  // Fail-closed alongside the grant row: even if the AID-row delete
  // below fails, neither index nor cache may keep serving the grant —
  // the PKG would otherwise keep issuing keys for a revoked AID.
  if (options_.enable_index) {
    std::unique_lock<std::shared_mutex> index_lock(index_mutex_);
    grants_.erase({identity, attribute});
  }
  CacheInvalidate(row.aid);
  return table_->Delete(AidKey(row.aid));
}

// --- Reads ---

bool PolicyDb::HasAccess(const std::string& identity,
                         const std::string& attribute) const {
  return table_->Contains(GrantKey(identity, attribute));
}

util::Result<std::vector<PolicyRow>> PolicyDb::RowsForIdentity(
    const std::string& identity) const {
  if (!options_.enable_index) return RowsForIdentityScan(identity);
  std::vector<PolicyRow> out;
  std::shared_lock<std::shared_mutex> index_lock(index_mutex_);
  for (auto it = grants_.lower_bound({identity, std::string()});
       it != grants_.end() && it->first.first == identity; ++it) {
    out.push_back(PolicyRow{identity, it->first.second, it->second.aid,
                            it->second.origin});
  }
  return out;
}

util::Result<std::vector<PolicyRow>> PolicyDb::RowsForIdentityScan(
    const std::string& identity) const {
  std::vector<PolicyRow> out;
  for (const auto& [key, value] : table_->Scan("p/" + identity + "/")) {
    MWS_ASSIGN_OR_RETURN(PolicyRow row, DecodeRow(value));
    out.push_back(std::move(row));
  }
  return out;
}

util::Result<PolicyRow> PolicyDb::RowForAid(uint64_t aid) const {
  PolicyRow cached;
  if (CacheLookup(aid, &cached)) {
    aid_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    if (hits_counter_ != nullptr) hits_counter_->Increment();
    return cached;
  }
  aid_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  if (misses_counter_ != nullptr) misses_counter_->Increment();
  MWS_ASSIGN_OR_RETURN(PolicyRow row, RowForAidUncached(aid));
  CacheInsert(row);
  return row;
}

util::Result<PolicyRow> PolicyDb::RowForAidUncached(uint64_t aid) const {
  MWS_ASSIGN_OR_RETURN(util::Bytes raw, table_->Get(AidKey(aid)));
  return DecodeRow(raw);
}

util::Result<PolicyRow> PolicyDb::RowFor(const std::string& identity,
                                         const std::string& attribute) const {
  MWS_ASSIGN_OR_RETURN(util::Bytes raw,
                       table_->Get(GrantKey(identity, attribute)));
  return DecodeRow(raw);
}

util::Result<std::vector<PolicyRow>> PolicyDb::AllRows() const {
  if (!options_.enable_index) return AllRowsScan();
  std::vector<PolicyRow> out;
  std::shared_lock<std::shared_mutex> index_lock(index_mutex_);
  out.reserve(grants_.size());
  for (const auto& [key, entry] : grants_) {
    out.push_back(PolicyRow{key.first, key.second, entry.aid, entry.origin});
  }
  return out;
}

util::Result<std::vector<PolicyRow>> PolicyDb::AllRowsScan() const {
  std::vector<PolicyRow> out;
  for (const auto& [key, value] : table_->Scan("p/")) {
    MWS_ASSIGN_OR_RETURN(PolicyRow row, DecodeRow(value));
    out.push_back(std::move(row));
  }
  return out;
}

// --- Policy expressions ---

util::Result<uint64_t> PolicyDb::GrantExpression(
    const std::string& identity, const std::string& expression) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  uint64_t seq = 1;
  auto counter = table_->Get(kNextExprKey);
  if (counter.ok()) {
    util::Reader r(counter.value());
    if (!r.GetU64(&seq) || !r.Done()) {
      return util::Status::Corruption("bad expression counter");
    }
  }
  MWS_RETURN_IF_ERROR(table_->Put(ExprKey(identity, seq),
                                  util::BytesFromString(expression)));
  util::Writer w;
  w.PutU64(seq + 1);
  MWS_RETURN_IF_ERROR(table_->Put(kNextExprKey, w.Take()));
  if (options_.enable_index) {
    std::unique_lock<std::shared_mutex> index_lock(index_mutex_);
    exprs_[{identity, seq}] = expression;
  }
  return seq;
}

util::Status PolicyDb::RevokeExpression(const std::string& identity,
                                        uint64_t seq) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  const std::string key = ExprKey(identity, seq);
  if (!table_->Contains(key)) {
    return util::Status::NotFound("expression not present");
  }
  MWS_RETURN_IF_ERROR(table_->Delete(key));
  if (options_.enable_index) {
    std::unique_lock<std::shared_mutex> index_lock(index_mutex_);
    exprs_.erase({identity, seq});
  }
  // Revoke every row this expression materialized.
  MWS_ASSIGN_OR_RETURN(std::vector<PolicyRow> rows,
                       RowsForIdentity(identity));
  for (const PolicyRow& row : rows) {
    if (row.origin == seq) {
      MWS_RETURN_IF_ERROR(RevokeLocked(identity, row.attribute));
    }
  }
  return util::Status::Ok();
}

util::Result<std::vector<std::pair<uint64_t, std::string>>>
PolicyDb::ExpressionsForIdentity(const std::string& identity) const {
  if (!options_.enable_index) return ExpressionsForIdentityScan(identity);
  std::vector<std::pair<uint64_t, std::string>> out;
  std::shared_lock<std::shared_mutex> index_lock(index_mutex_);
  for (auto it = exprs_.lower_bound({identity, 0});
       it != exprs_.end() && it->first.first == identity; ++it) {
    out.emplace_back(it->first.second, it->second);
  }
  return out;
}

util::Result<std::vector<std::pair<uint64_t, std::string>>>
PolicyDb::ExpressionsForIdentityScan(const std::string& identity) const {
  std::vector<std::pair<uint64_t, std::string>> out;
  const std::string prefix = "e/" + identity + "/";
  for (const auto& [key, value] : table_->Scan(prefix)) {
    uint64_t seq =
        std::strtoull(key.substr(prefix.size()).c_str(), nullptr, 16);
    out.emplace_back(seq, util::StringFromBytes(value));
  }
  return out;
}

}  // namespace mws::store
