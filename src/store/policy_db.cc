#include "src/store/policy_db.h"

#include <cinttypes>
#include <cstdio>

#include "src/util/serde.h"

namespace mws::store {

namespace {

constexpr char kNextAidKey[] = "p.next";
constexpr char kNextExprKey[] = "e.next";

std::string GrantKey(const std::string& identity,
                     const std::string& attribute) {
  return "p/" + identity + "/" + attribute;
}

std::string AidKey(uint64_t aid) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "a/%016" PRIx64, aid);
  return buf;
}

util::Bytes EncodeRow(const PolicyRow& row) {
  util::Writer w;
  w.PutString(row.identity);
  w.PutString(row.attribute);
  w.PutU64(row.aid);
  w.PutU64(row.origin);
  return w.Take();
}

std::string ExprKey(const std::string& identity, uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%016" PRIx64, seq);
  return "e/" + identity + buf;
}

util::Result<PolicyRow> DecodeRow(const util::Bytes& data) {
  util::Reader r(data);
  PolicyRow row;
  r.GetString(&row.identity);
  r.GetString(&row.attribute);
  r.GetU64(&row.aid);
  r.GetU64(&row.origin);
  if (!r.Done()) return util::Status::Corruption("malformed policy row");
  return row;
}

}  // namespace

util::Result<uint64_t> PolicyDb::Grant(const std::string& identity,
                                       const std::string& attribute,
                                       uint64_t origin) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  const std::string key = GrantKey(identity, attribute);
  if (table_->Contains(key)) {
    return util::Status::AlreadyExists("grant already present");
  }
  uint64_t aid = 1;
  auto counter = table_->Get(kNextAidKey);
  if (counter.ok()) {
    util::Reader r(counter.value());
    if (!r.GetU64(&aid) || !r.Done()) {
      return util::Status::Corruption("bad AID counter");
    }
  }
  PolicyRow row{identity, attribute, aid, origin};
  MWS_RETURN_IF_ERROR(table_->Put(key, EncodeRow(row)));
  MWS_RETURN_IF_ERROR(table_->Put(AidKey(aid), EncodeRow(row)));
  util::Writer w;
  w.PutU64(aid + 1);
  MWS_RETURN_IF_ERROR(table_->Put(kNextAidKey, w.Take()));
  return aid;
}

util::Status PolicyDb::Revoke(const std::string& identity,
                              const std::string& attribute) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  return RevokeLocked(identity, attribute);
}

util::Status PolicyDb::RevokeLocked(const std::string& identity,
                                    const std::string& attribute) {
  const std::string key = GrantKey(identity, attribute);
  auto raw = table_->Get(key);
  if (!raw.ok()) return util::Status::NotFound("grant not present");
  MWS_ASSIGN_OR_RETURN(PolicyRow row, DecodeRow(raw.value()));
  MWS_RETURN_IF_ERROR(table_->Delete(key));
  return table_->Delete(AidKey(row.aid));
}

bool PolicyDb::HasAccess(const std::string& identity,
                         const std::string& attribute) const {
  return table_->Contains(GrantKey(identity, attribute));
}

util::Result<std::vector<PolicyRow>> PolicyDb::RowsForIdentity(
    const std::string& identity) const {
  std::vector<PolicyRow> out;
  for (const auto& [key, value] : table_->Scan("p/" + identity + "/")) {
    MWS_ASSIGN_OR_RETURN(PolicyRow row, DecodeRow(value));
    out.push_back(std::move(row));
  }
  return out;
}

util::Result<PolicyRow> PolicyDb::RowForAid(uint64_t aid) const {
  MWS_ASSIGN_OR_RETURN(util::Bytes raw, table_->Get(AidKey(aid)));
  return DecodeRow(raw);
}

util::Result<PolicyRow> PolicyDb::RowFor(const std::string& identity,
                                         const std::string& attribute) const {
  MWS_ASSIGN_OR_RETURN(util::Bytes raw,
                       table_->Get(GrantKey(identity, attribute)));
  return DecodeRow(raw);
}

util::Result<uint64_t> PolicyDb::GrantExpression(
    const std::string& identity, const std::string& expression) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  uint64_t seq = 1;
  auto counter = table_->Get(kNextExprKey);
  if (counter.ok()) {
    util::Reader r(counter.value());
    if (!r.GetU64(&seq) || !r.Done()) {
      return util::Status::Corruption("bad expression counter");
    }
  }
  MWS_RETURN_IF_ERROR(table_->Put(ExprKey(identity, seq),
                                  util::BytesFromString(expression)));
  util::Writer w;
  w.PutU64(seq + 1);
  MWS_RETURN_IF_ERROR(table_->Put(kNextExprKey, w.Take()));
  return seq;
}

util::Status PolicyDb::RevokeExpression(const std::string& identity,
                                        uint64_t seq) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  const std::string key = ExprKey(identity, seq);
  if (!table_->Contains(key)) {
    return util::Status::NotFound("expression not present");
  }
  MWS_RETURN_IF_ERROR(table_->Delete(key));
  // Revoke every row this expression materialized.
  MWS_ASSIGN_OR_RETURN(std::vector<PolicyRow> rows,
                       RowsForIdentity(identity));
  for (const PolicyRow& row : rows) {
    if (row.origin == seq) {
      MWS_RETURN_IF_ERROR(RevokeLocked(identity, row.attribute));
    }
  }
  return util::Status::Ok();
}

util::Result<std::vector<std::pair<uint64_t, std::string>>>
PolicyDb::ExpressionsForIdentity(const std::string& identity) const {
  std::vector<std::pair<uint64_t, std::string>> out;
  const std::string prefix = "e/" + identity + "/";
  for (const auto& [key, value] : table_->Scan(prefix)) {
    uint64_t seq =
        std::strtoull(key.substr(prefix.size()).c_str(), nullptr, 16);
    out.emplace_back(seq, util::StringFromBytes(value));
  }
  return out;
}

util::Result<std::vector<PolicyRow>> PolicyDb::AllRows() const {
  std::vector<PolicyRow> out;
  for (const auto& [key, value] : table_->Scan("p/")) {
    MWS_ASSIGN_OR_RETURN(PolicyRow row, DecodeRow(value));
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace mws::store
