#include "src/store/faulty_table.h"

#include <chrono>
#include <thread>

namespace mws::store {

template <typename Apply>
util::Status FaultyTable::FaultedWrite(const std::string& operation,
                                       Apply apply) {
  // Source 1: the armed countdown (legacy test behavior).
  if (armed_.load(std::memory_order_relaxed)) {
    if (countdown_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      faults_.fetch_add(1, std::memory_order_relaxed);
      return util::Status::IoError("injected write failure");
    }
  }
  // Source 2: the shared injector.
  if (injector_ != nullptr) {
    if (auto fault = injector_->Evaluate(operation)) {
      switch (fault->kind) {
        case util::FaultKind::kError:
        case util::FaultKind::kConnectionDrop:
          faults_.fetch_add(1, std::memory_order_relaxed);
          return fault->status;
        case util::FaultKind::kDiskFull:
          // Out of space: nothing is applied, and the failure persists
          // until the rule is disarmed (Heal()/ClearRules) — the caller
          // must shed or retry later, exactly like ENOSPC.
          faults_.fetch_add(1, std::memory_order_relaxed);
          disk_full_.fetch_add(1, std::memory_order_relaxed);
          return fault->status;
        case util::FaultKind::kTornWrite: {
          util::Status applied = apply();
          faults_.fetch_add(1, std::memory_order_relaxed);
          if (applied.ok()) {
            torn_writes_.fetch_add(1, std::memory_order_relaxed);
            return fault->status;  // applied, but the ack is lost
          }
          return applied;
        }
        case util::FaultKind::kDelay:
          if (fault->delay_micros > 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(fault->delay_micros));
          }
          break;
      }
    }
  }
  return apply();
}

util::Status FaultyTable::Put(const std::string& key,
                              const util::Bytes& value) {
  return FaultedWrite("table.put/" + key,
                      [&] { return base_->Put(key, value); });
}

util::Status FaultyTable::Delete(const std::string& key) {
  return FaultedWrite("table.delete/" + key,
                      [&] { return base_->Delete(key); });
}

util::Status FaultyTable::Flush() {
  return FaultedWrite("table.flush", [&] { return base_->Flush(); });
}

}  // namespace mws::store
