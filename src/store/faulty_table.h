#ifndef MWSIBE_STORE_FAULTY_TABLE_H_
#define MWSIBE_STORE_FAULTY_TABLE_H_

#include <atomic>
#include <string>

#include "src/store/table.h"
#include "src/util/fault.h"

namespace mws::store {

/// Table decorator that injects storage faults on the write path.
/// Promoted from the fault-injection tests so the resilience bench, the
/// simulator and the tests all share one implementation.
///
/// Faults come from two sources, checked in order:
///
///  1. the countdown armed with FailWritesAfter() — the original
///     test-local behavior: fail every write once the countdown runs out,
///     until Heal();
///  2. an optional shared util::FaultInjector, consulted with operation
///     tags "table.put/<key>", "table.delete/<key>", "table.flush".
///
/// Fault semantics on a Table: kError, kConnectionDrop and kDiskFull fail
/// the write without applying it (kDiskFull is counted separately — the
/// ENOSPC shape); kTornWrite applies the write and *then* reports
/// failure (ack lost — a correct caller retries and must dedupe);
/// kDelay sleeps `delay_micros`, then applies normally.
///
/// Reads delegate untouched: the failure domain under test is
/// durability, and read-side faults would only re-test the same Status
/// plumbing. Thread-safe over a thread-safe base table.
class FaultyTable : public Table {
 public:
  /// Borrows `base` (and `injector` if given); both must outlive this.
  explicit FaultyTable(Table* base, util::FaultInjector* injector = nullptr)
      : base_(base), injector_(injector) {}

  /// Arms the countdown: the next `countdown` writes succeed, everything
  /// after fails with kIoError until Heal().
  void FailWritesAfter(int countdown) {
    countdown_.store(countdown, std::memory_order_relaxed);
    armed_.store(true, std::memory_order_relaxed);
  }
  void Heal() { armed_.store(false, std::memory_order_relaxed); }

  /// Writes that reported failure (either source), torn writes that
  /// were applied anyway, and writes refused for lack of space.
  uint64_t faults() const { return faults_.load(std::memory_order_relaxed); }
  uint64_t torn_writes() const {
    return torn_writes_.load(std::memory_order_relaxed);
  }
  uint64_t disk_full_faults() const {
    return disk_full_.load(std::memory_order_relaxed);
  }

  util::Status Put(const std::string& key, const util::Bytes& value) override;
  util::Result<util::Bytes> Get(const std::string& key) const override {
    return base_->Get(key);
  }
  util::Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override {
    return base_->Contains(key);
  }
  std::vector<std::pair<std::string, util::Bytes>> Scan(
      const std::string& prefix) const override {
    return base_->Scan(prefix);
  }
  std::vector<std::string> ScanKeys(const std::string& prefix) const override {
    return base_->ScanKeys(prefix);
  }
  size_t CountPrefix(const std::string& prefix) const override {
    return base_->CountPrefix(prefix);
  }
  size_t Size() const override { return base_->Size(); }
  util::Status Flush() override;

 private:
  /// Runs one write through both fault sources. `apply` performs the
  /// real operation.
  template <typename Apply>
  util::Status FaultedWrite(const std::string& operation, Apply apply);

  Table* base_;
  util::FaultInjector* injector_;
  std::atomic<bool> armed_{false};
  std::atomic<int> countdown_{0};
  std::atomic<uint64_t> faults_{0};
  std::atomic<uint64_t> torn_writes_{0};
  std::atomic<uint64_t> disk_full_{0};
};

}  // namespace mws::store

#endif  // MWSIBE_STORE_FAULTY_TABLE_H_
