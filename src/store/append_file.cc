#include "src/store/append_file.h"

#include <filesystem>

namespace mws::store {

util::Result<std::unique_ptr<AppendFile>> AppendFile::Open(
    const Options& options) {
  auto file = std::unique_ptr<AppendFile>(new AppendFile(options));
  std::error_code ec;
  uintmax_t existing = std::filesystem::file_size(options.path, ec);
  file->size_ = ec ? 0 : static_cast<size_t>(existing);
  file->out_.open(options.path, std::ios::binary | std::ios::app);
  if (!file->out_) {
    return util::Status::IoError("cannot open for append: " + options.path);
  }
  return file;
}

util::Status AppendFile::Append(const util::Bytes& data) {
  if (options_.injector != nullptr) {
    if (auto fault =
            options_.injector->Evaluate("file.append/" + options_.path)) {
      switch (fault->kind) {
        case util::FaultKind::kError:
        case util::FaultKind::kConnectionDrop:
        case util::FaultKind::kDiskFull:
          return fault->status;
        case util::FaultKind::kTornWrite: {
          // Crash shape: a strict prefix of the record reaches the disk.
          size_t torn = data.size() / 2;
          out_.write(reinterpret_cast<const char*>(data.data()),
                     static_cast<std::streamsize>(torn));
          out_.flush();
          return fault->status;
        }
        case util::FaultKind::kDelay:
          break;
      }
    }
  }
  out_.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
  out_.flush();
  if (!out_) return util::Status::IoError("append failed: " + options_.path);
  size_ += data.size();
  return util::Status::Ok();
}

util::Status AppendFile::Flush() {
  out_.flush();
  if (!out_) return util::Status::IoError("flush failed: " + options_.path);
  return util::Status::Ok();
}

util::Result<util::Bytes> AppendFile::ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Status::NotFound("no such file: " + path);
  return util::Bytes((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

util::Status AppendFile::TruncateTo(const std::string& path, size_t size) {
  std::error_code ec;
  std::filesystem::resize_file(path, size, ec);
  if (ec) {
    return util::Status::IoError("cannot truncate " + path + ": " +
                                 ec.message());
  }
  return util::Status::Ok();
}

}  // namespace mws::store
