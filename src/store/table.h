#ifndef MWSIBE_STORE_TABLE_H_
#define MWSIBE_STORE_TABLE_H_

#include <string>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/result.h"

namespace mws::store {

/// Ordered key–value table. Two backends exist:
///
///  * KvStore      — append-only log + in-memory index with CRC-framed
///                   records and crash recovery (the DBMS direction the
///                   paper lists as future work),
///  * FlatFileStore — rewrite-the-file-per-mutation flat files, mirroring
///                   the paper's Perl prototype (§VI "Instead of
///                   databases, flat files are used").
///
/// The E11 ablation benchmarks one against the other.
///
/// Thread-safety contract: all operations of both backends are safe to
/// call concurrently from multiple threads. KvStore stripes its index
/// across shared_mutex-guarded shards so point reads run in parallel;
/// FlatFileStore serializes behind one mutex (it rewrites the whole file
/// per mutation anyway). Scans observe a consistent snapshot: no
/// concurrent mutation is partially visible within one Scan call.
class Table {
 public:
  virtual ~Table() = default;

  /// Inserts or overwrites `key`.
  virtual util::Status Put(const std::string& key,
                           const util::Bytes& value) = 0;

  /// Inserts or overwrites every entry. The default simply loops Put —
  /// decorators (FaultyTable) keep their per-key injection semantics —
  /// but backends may override to amortize locking and IO: KvStore takes
  /// each shard lock once per batch instead of once per key, FlatFileStore
  /// rewrites its file once instead of N times. Atomicity contract is the
  /// same as N Puts (a failure may leave a prefix applied); the returned
  /// status is the first failure.
  virtual util::Status PutBatch(
      const std::vector<std::pair<std::string, util::Bytes>>& entries) {
    for (const auto& [key, value] : entries) {
      MWS_RETURN_IF_ERROR(Put(key, value));
    }
    return util::Status::Ok();
  }

  /// NotFound if absent.
  virtual util::Result<util::Bytes> Get(const std::string& key) const = 0;

  /// Removes `key`; OK even if absent.
  virtual util::Status Delete(const std::string& key) = 0;

  virtual bool Contains(const std::string& key) const = 0;

  /// All entries whose key starts with `prefix`, in key order.
  virtual std::vector<std::pair<std::string, util::Bytes>> Scan(
      const std::string& prefix) const = 0;

  /// Keys (only) starting with `prefix`, in key order. Index tables whose
  /// values are empty (the x/ and t/ secondary indexes) should be read
  /// through this instead of Scan so no value buffers are copied.
  virtual std::vector<std::string> ScanKeys(const std::string& prefix) const {
    std::vector<std::string> out;
    for (auto& [key, value] : Scan(prefix)) out.push_back(std::move(key));
    return out;
  }

  /// Number of live entries whose key starts with `prefix`, without
  /// materializing keys or values.
  virtual size_t CountPrefix(const std::string& prefix) const {
    return ScanKeys(prefix).size();
  }

  /// Number of live entries.
  virtual size_t Size() const = 0;

  /// Forces buffered mutations to stable storage (no-op in memory).
  virtual util::Status Flush() = 0;
};

}  // namespace mws::store

#endif  // MWSIBE_STORE_TABLE_H_
