#ifndef MWSIBE_STORE_FLATFILE_H_
#define MWSIBE_STORE_FLATFILE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/store/table.h"

namespace mws::store {

/// The paper-prototype backend: one flat text file, rewritten in full on
/// every mutation (§VI used Perl flat files the same way). Lines are
/// "hex(key)<TAB>hex(value)". Deliberately naive — it exists to quantify
/// what the paper's own future-work item ("move to a DBMS") buys (E11).
///
/// Concurrency: one global mutex serializes everything. The backend
/// rewrites the whole file per mutation anyway, so finer locking would
/// only disguise the cost this store exists to demonstrate.
class FlatFileStore : public Table {
 public:
  struct Options {
    /// Empty path = in-memory only.
    std::string path;
  };

  static util::Result<std::unique_ptr<FlatFileStore>> Open(
      const Options& options);

  util::Status Put(const std::string& key, const util::Bytes& value) override;
  /// One file rewrite for the whole batch instead of one per key.
  util::Status PutBatch(const std::vector<std::pair<std::string, util::Bytes>>&
                            entries) override;
  util::Result<util::Bytes> Get(const std::string& key) const override;
  util::Status Delete(const std::string& key) override;
  bool Contains(const std::string& key) const override;
  std::vector<std::pair<std::string, util::Bytes>> Scan(
      const std::string& prefix) const override;
  std::vector<std::string> ScanKeys(const std::string& prefix) const override;
  size_t CountPrefix(const std::string& prefix) const override;
  size_t Size() const override;
  util::Status Flush() override;

 private:
  explicit FlatFileStore(Options options) : options_(std::move(options)) {}

  bool persistent() const { return !options_.path.empty(); }
  /// Rewrites the whole file from the in-memory map. Pre: mutex_ held.
  util::Status Rewrite();
  util::Status Load();

  Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, util::Bytes> entries_;
};

}  // namespace mws::store

#endif  // MWSIBE_STORE_FLATFILE_H_
