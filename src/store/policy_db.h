#ifndef MWSIBE_STORE_POLICY_DB_H_
#define MWSIBE_STORE_POLICY_DB_H_

#include <atomic>
#include <list>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/store/table.h"

namespace mws::store {

/// One row of the paper's Table 1: Identity – Attribute – Attribute ID.
/// Each grant gets a unique AID even when the same attribute is granted
/// to several identities (IDRC1/A1 -> 1 but IDRC2/A1 -> 3 in the paper).
struct PolicyRow {
  std::string identity;
  std::string attribute;
  uint64_t aid = 0;
  /// 0 for operator-created grants; otherwise the sequence number of the
  /// policy expression that materialized this row (see GrantExpression).
  uint64_t origin = 0;

  friend bool operator==(const PolicyRow& a, const PolicyRow& b) {
    return a.identity == b.identity && a.attribute == b.attribute &&
           a.aid == b.aid && a.origin == b.origin;
  }
};

/// Read-path tuning of the Policy Database.
struct PolicyDbOptions {
  /// Maintain an in-memory ordered secondary index over (identity,
  /// attribute) and over expressions, hydrated from the table at
  /// construction and updated transactionally with every mutation.
  /// Identity-scoped reads become one O(log n + k) range walk instead
  /// of a prefix scan that visits every shard of the backing KvStore.
  /// false routes reads to the retained scan paths (the E20 baseline).
  bool enable_index = true;
  /// Entries of the AID -> row resolution LRU fronting RowForAid (the
  /// token-issuance hot lookup). 0 disables the cache. Invalidated on
  /// Revoke, so a cached row is never served for a revoked AID.
  size_t aid_cache_capacity = 4096;
  /// Lock stripes of the AID cache.
  size_t aid_cache_stripes = 16;
  /// Optional instrumentation (must outlive the PolicyDb). Exposes
  /// `policy.aid_cache_hits` / `policy.aid_cache_misses`.
  obs::Registry* metrics = nullptr;
};

/// The Policy Database (PD component, Fig. 3): identity<->attribute
/// mappings plus the AID indirection that hides attribute strings from
/// receiving clients.
///
/// Thread-safe on top of a thread-safe Table: mutations (Grant/Revoke
/// and the expression variants) serialize behind one mutex so the AID
/// and expression counters never hand out duplicates; reads go through
/// the in-memory index under a shared lock (or straight to the table
/// when the index is disabled). Concurrent Grant calls for the same
/// (identity, attribute) are resolved to exactly one row — losers get
/// AlreadyExists, same as the sequential API.
///
/// The table stays the source of truth: the index holds no data the
/// table doesn't, is rebuilt from it on construction, and is only
/// updated after the table mutation succeeded.
class PolicyDb {
 public:
  /// Borrows `table`; the table must outlive the PolicyDb. Hydrates the
  /// index from existing rows when enabled.
  explicit PolicyDb(Table* table, PolicyDbOptions options = {});

  /// Grants `identity` access to `attribute`; returns the fresh AID.
  /// AlreadyExists if the grant is present. `origin` tags rows
  /// materialized from a policy expression (0 = manual grant).
  util::Result<uint64_t> Grant(const std::string& identity,
                               const std::string& attribute,
                               uint64_t origin = 0);

  /// Removes a grant (and its AID row). NotFound if absent.
  util::Status Revoke(const std::string& identity,
                      const std::string& attribute);

  /// True if the grant exists.
  bool HasAccess(const std::string& identity,
                 const std::string& attribute) const;

  /// All grants for one identity, in attribute order.
  util::Result<std::vector<PolicyRow>> RowsForIdentity(
      const std::string& identity) const;

  /// The row for one (identity, attribute) grant. NotFound if absent.
  util::Result<PolicyRow> RowFor(const std::string& identity,
                                 const std::string& attribute) const;

  /// Resolves an AID back to its row (the PKG-side lookup when building
  /// tickets). NotFound for revoked/unknown AIDs. Served from the LRU
  /// cache when hot.
  util::Result<PolicyRow> RowForAid(uint64_t aid) const;

  /// The full table, ordered by identity then attribute — exactly the
  /// paper's Table 1.
  util::Result<std::vector<PolicyRow>> AllRows() const;

  // --- Policy expressions (§VIII XACML-style enhancement) ---

  /// Attaches a policy expression (already validated by the caller) to
  /// `identity`; returns its sequence number.
  util::Result<uint64_t> GrantExpression(const std::string& identity,
                                         const std::string& expression);

  /// Removes an expression and every grant it materialized.
  /// NotFound if the expression does not exist.
  util::Status RevokeExpression(const std::string& identity, uint64_t seq);

  /// All (seq, expression) pairs attached to `identity`.
  util::Result<std::vector<std::pair<uint64_t, std::string>>>
  ExpressionsForIdentity(const std::string& identity) const;

  // --- Retained reference paths (equivalence tests, E20 baseline) ---

  /// RowsForIdentity via a table prefix scan, the pre-index read path.
  util::Result<std::vector<PolicyRow>> RowsForIdentityScan(
      const std::string& identity) const;
  /// AllRows via a table prefix scan.
  util::Result<std::vector<PolicyRow>> AllRowsScan() const;
  /// ExpressionsForIdentity via a table prefix scan.
  util::Result<std::vector<std::pair<uint64_t, std::string>>>
  ExpressionsForIdentityScan(const std::string& identity) const;
  /// RowForAid via a direct table point lookup (no cache).
  util::Result<PolicyRow> RowForAidUncached(uint64_t aid) const;

  uint64_t AidCacheHits() const {
    return aid_cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t AidCacheMisses() const {
    return aid_cache_misses_.load(std::memory_order_relaxed);
  }

 private:
  /// Core of Revoke: deletes both table rows, then drops the index
  /// entry and invalidates the AID cache. Pre: write_mutex_ held.
  util::Status RevokeLocked(const std::string& identity,
                            const std::string& attribute);

  /// Compact index payload; identity/attribute live in the map key.
  struct IndexEntry {
    uint64_t aid = 0;
    uint64_t origin = 0;
  };

  /// One stripe of the AID -> row LRU.
  struct CacheStripe {
    std::mutex mutex;
    /// Front = most recently used.
    std::list<uint64_t> lru;
    std::unordered_map<uint64_t,
                       std::pair<PolicyRow, std::list<uint64_t>::iterator>>
        map;

    CacheStripe() = default;
    CacheStripe(CacheStripe&&) noexcept {}  // only used during construction
  };

  CacheStripe& CacheStripeFor(uint64_t aid) const {
    return cache_stripes_[aid % cache_stripes_.size()];
  }
  void CacheInsert(const PolicyRow& row) const;
  bool CacheLookup(uint64_t aid, PolicyRow* row) const;
  void CacheInvalidate(uint64_t aid) const;

  /// Scans the table and (re)builds grants_/exprs_. Rows that fail to
  /// decode are skipped — the scan read paths surface the corruption.
  void HydrateIndex();

  Table* table_;
  PolicyDbOptions options_;
  /// Serializes mutations (counter read-modify-write + row writes).
  std::mutex write_mutex_;

  /// Ordered secondary indexes; shared lock for readers, exclusive for
  /// the (already write_mutex_-serialized) mutators.
  mutable std::shared_mutex index_mutex_;
  std::map<std::pair<std::string, std::string>, IndexEntry> grants_;
  std::map<std::pair<std::string, uint64_t>, std::string> exprs_;

  /// AID resolution cache (mutable: lookups reorder the LRU).
  mutable std::vector<CacheStripe> cache_stripes_;
  size_t cache_per_stripe_cap_ = 0;
  mutable std::atomic<uint64_t> aid_cache_hits_{0};
  mutable std::atomic<uint64_t> aid_cache_misses_{0};
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
};

}  // namespace mws::store

#endif  // MWSIBE_STORE_POLICY_DB_H_
