#ifndef MWSIBE_STORE_POLICY_DB_H_
#define MWSIBE_STORE_POLICY_DB_H_

#include <mutex>
#include <string>
#include <vector>

#include "src/store/table.h"

namespace mws::store {

/// One row of the paper's Table 1: Identity – Attribute – Attribute ID.
/// Each grant gets a unique AID even when the same attribute is granted
/// to several identities (IDRC1/A1 -> 1 but IDRC2/A1 -> 3 in the paper).
struct PolicyRow {
  std::string identity;
  std::string attribute;
  uint64_t aid = 0;
  /// 0 for operator-created grants; otherwise the sequence number of the
  /// policy expression that materialized this row (see GrantExpression).
  uint64_t origin = 0;

  friend bool operator==(const PolicyRow& a, const PolicyRow& b) {
    return a.identity == b.identity && a.attribute == b.attribute &&
           a.aid == b.aid && a.origin == b.origin;
  }
};

/// The Policy Database (PD component, Fig. 3): identity<->attribute
/// mappings plus the AID indirection that hides attribute strings from
/// receiving clients.
///
/// Thread-safe on top of a thread-safe Table: mutations (Grant/Revoke
/// and the expression variants) serialize behind one mutex so the AID
/// and expression counters never hand out duplicates; reads go straight
/// to the table. Concurrent Grant calls for the same (identity,
/// attribute) are resolved to exactly one row — losers get
/// AlreadyExists, same as the sequential API.
class PolicyDb {
 public:
  /// Borrows `table`; the table must outlive the PolicyDb.
  explicit PolicyDb(Table* table) : table_(table) {}

  /// Grants `identity` access to `attribute`; returns the fresh AID.
  /// AlreadyExists if the grant is present. `origin` tags rows
  /// materialized from a policy expression (0 = manual grant).
  util::Result<uint64_t> Grant(const std::string& identity,
                               const std::string& attribute,
                               uint64_t origin = 0);

  /// Removes a grant (and its AID row). NotFound if absent.
  util::Status Revoke(const std::string& identity,
                      const std::string& attribute);

  /// True if the grant exists.
  bool HasAccess(const std::string& identity,
                 const std::string& attribute) const;

  /// All grants for one identity, in attribute order.
  util::Result<std::vector<PolicyRow>> RowsForIdentity(
      const std::string& identity) const;

  /// The row for one (identity, attribute) grant. NotFound if absent.
  util::Result<PolicyRow> RowFor(const std::string& identity,
                                 const std::string& attribute) const;

  /// Resolves an AID back to its row (the PKG-side lookup when building
  /// tickets). NotFound for revoked/unknown AIDs.
  util::Result<PolicyRow> RowForAid(uint64_t aid) const;

  /// The full table, ordered by identity then attribute — exactly the
  /// paper's Table 1.
  util::Result<std::vector<PolicyRow>> AllRows() const;

  // --- Policy expressions (§VIII XACML-style enhancement) ---

  /// Attaches a policy expression (already validated by the caller) to
  /// `identity`; returns its sequence number.
  util::Result<uint64_t> GrantExpression(const std::string& identity,
                                         const std::string& expression);

  /// Removes an expression and every grant it materialized.
  /// NotFound if the expression does not exist.
  util::Status RevokeExpression(const std::string& identity, uint64_t seq);

  /// All (seq, expression) pairs attached to `identity`.
  util::Result<std::vector<std::pair<uint64_t, std::string>>>
  ExpressionsForIdentity(const std::string& identity) const;

 private:
  /// Core of Revoke. Pre: write_mutex_ held.
  util::Status RevokeLocked(const std::string& identity,
                            const std::string& attribute);

  Table* table_;
  /// Serializes mutations (counter read-modify-write + row writes).
  std::mutex write_mutex_;
};

}  // namespace mws::store

#endif  // MWSIBE_STORE_POLICY_DB_H_
