#include "src/store/flatfile.h"

#include <fstream>

#include "src/util/hex.h"

namespace mws::store {

util::Result<std::unique_ptr<FlatFileStore>> FlatFileStore::Open(
    const Options& options) {
  auto store = std::unique_ptr<FlatFileStore>(new FlatFileStore(options));
  if (store->persistent()) {
    MWS_RETURN_IF_ERROR(store->Load());
  }
  return store;
}

util::Status FlatFileStore::Load() {
  std::ifstream in(options_.path);
  if (!in) return util::Status::Ok();  // fresh file
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return util::Status::Corruption("flat file line missing separator");
    }
    auto key = util::HexDecode(std::string_view(line).substr(0, tab));
    auto value = util::HexDecode(std::string_view(line).substr(tab + 1));
    if (!key.ok() || !value.ok()) {
      return util::Status::Corruption("flat file line not hex");
    }
    entries_[util::StringFromBytes(key.value())] = value.value();
  }
  return util::Status::Ok();
}

util::Status FlatFileStore::Rewrite() {
  if (!persistent()) return util::Status::Ok();
  std::ofstream out(options_.path, std::ios::trunc);
  if (!out) return util::Status::IoError("cannot rewrite " + options_.path);
  for (const auto& [key, value] : entries_) {
    out << util::HexEncode(util::BytesFromString(key)) << '\t'
        << util::HexEncode(value) << '\n';
  }
  out.flush();
  if (!out) return util::Status::IoError("flat file write failed");
  return util::Status::Ok();
}

util::Status FlatFileStore::Put(const std::string& key,
                                const util::Bytes& value) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[key] = value;
  return Rewrite();
}

util::Status FlatFileStore::PutBatch(
    const std::vector<std::pair<std::string, util::Bytes>>& entries) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, value] : entries) entries_[key] = value;
  return Rewrite();
}

util::Result<util::Bytes> FlatFileStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return util::Status::NotFound("key not found: " + key);
  }
  return it->second;
}

util::Status FlatFileStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.erase(key) == 0) return util::Status::Ok();
  return Rewrite();
}

bool FlatFileStore::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(key) != entries_.end();
}

std::vector<std::pair<std::string, util::Bytes>> FlatFileStore::Scan(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, util::Bytes>> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

std::vector<std::string> FlatFileStore::ScanKeys(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

size_t FlatFileStore::CountPrefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = 0;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    ++count;
  }
  return count;
}

size_t FlatFileStore::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

util::Status FlatFileStore::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  return Rewrite();
}

}  // namespace mws::store
