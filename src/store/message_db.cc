#include "src/store/message_db.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>

#include "src/util/hex.h"
#include "src/util/serde.h"

namespace mws::store {

namespace {

constexpr char kNextIdKey[] = "m.next";

std::string MessageKey(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "m/%016" PRIx64, id);
  return buf;
}

std::string IndexKey(const std::string& attribute, uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%016" PRIx64, id);
  return "x/" + attribute + buf;
}

std::string IndexPrefix(const std::string& attribute) {
  return "x/" + attribute + "/";
}

std::string TimeIndexKey(const std::string& attribute, int64_t ts,
                         uint64_t id) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "/%016" PRIx64 "/%016" PRIx64,
                static_cast<uint64_t>(ts), id);
  return "t/" + attribute + buf;
}

std::string TimeIndexBound(const std::string& attribute, int64_t ts) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "/%016" PRIx64,
                static_cast<uint64_t>(ts));
  return "t/" + attribute + buf;
}

std::string DedupKey(const std::string& device_id, const util::Bytes& nonce) {
  return "n/" + device_id + "/" + util::HexEncode(nonce);
}

}  // namespace

util::Bytes StoredMessage::Encode() const {
  util::Writer w;
  w.PutU64(id);
  w.PutBytes(u);
  w.PutBytes(ciphertext);
  w.PutString(attribute);
  w.PutBytes(nonce);
  w.PutString(device_id);
  w.PutU64(static_cast<uint64_t>(timestamp_micros));
  return w.Take();
}

util::Result<StoredMessage> StoredMessage::Decode(const util::Bytes& data) {
  util::Reader r(data);
  StoredMessage m;
  uint64_t ts = 0;
  r.GetU64(&m.id);
  r.GetBytes(&m.u);
  r.GetBytes(&m.ciphertext);
  r.GetString(&m.attribute);
  r.GetBytes(&m.nonce);
  r.GetString(&m.device_id);
  r.GetU64(&ts);
  if (!r.Done()) {
    return util::Status::Corruption("malformed stored message record");
  }
  m.timestamp_micros = static_cast<int64_t>(ts);
  return m;
}

MessageDb::MessageDb(Table* table, obs::Registry* metrics) : table_(table) {
  if (metrics != nullptr) {
    appends_counter_ = metrics->GetCounter("md.appends");
    dedup_counter_ = metrics->GetCounter("md.dedup_hits");
    pruned_counter_ = metrics->GetCounter("md.pruned");
  }
  auto counter = table_->Get(kNextIdKey);
  if (counter.ok()) {
    uint64_t next = 0;
    util::Reader r(counter.value());
    if (r.GetU64(&next) && r.Done() && next > 0) {
      next_id_.store(next, std::memory_order_relaxed);
      persisted_next_ = next;
    }
  }
}

util::Status MessageDb::WriteRecords(const StoredMessage& stored) {
  MWS_RETURN_IF_ERROR(table_->Put(MessageKey(stored.id), stored.Encode()));
  MWS_RETURN_IF_ERROR(
      table_->Put(IndexKey(stored.attribute, stored.id), {}));
  MWS_RETURN_IF_ERROR(table_->Put(
      TimeIndexKey(stored.attribute, stored.timestamp_micros, stored.id),
      {}));
  return PersistCounter(stored.id + 1);
}

util::Status MessageDb::PersistCounter(uint64_t next) {
  // Appends can finish out of id order, so only ever write a value
  // larger than the last one persisted.
  std::lock_guard<std::mutex> lock(counter_mutex_);
  if (next > persisted_next_) {
    util::Writer w;
    w.PutU64(next);
    MWS_RETURN_IF_ERROR(table_->Put(kNextIdKey, w.Take()));
    persisted_next_ = next;
  }
  return util::Status::Ok();
}

util::Result<uint64_t> MessageDb::Append(const StoredMessage& message) {
  const uint64_t next = next_id_.fetch_add(1, std::memory_order_relaxed);
  StoredMessage stored = message;
  stored.id = next;

  util::Status write = WriteRecords(stored);
  if (!write.ok()) {
    // Hand the id back if no later append claimed one meanwhile, so a
    // healed retry reuses it. Under concurrency the id is simply skipped
    // — uniqueness and monotonicity hold either way.
    uint64_t expected = next + 1;
    next_id_.compare_exchange_strong(expected, next,
                                     std::memory_order_relaxed);
    return write;
  }
  if (appends_counter_ != nullptr) appends_counter_->Increment();
  return next;
}

util::Result<MessageDb::AppendOutcome> MessageDb::AppendDeduped(
    const StoredMessage& message) {
  if (message.device_id.empty() || message.nonce.empty()) {
    MWS_ASSIGN_OR_RETURN(uint64_t id, Append(message));
    return AppendOutcome{id, false};
  }
  const std::string dedup_key = DedupKey(message.device_id, message.nonce);
  StoredMessage stored = message;
  stored.id = 0;

  auto marker = table_->Get(dedup_key);
  if (marker.ok()) {
    uint64_t reserved = 0;
    util::Reader r(marker.value());
    if (r.GetU64(&reserved) && r.Done() && reserved > 0) {
      // Completeness check over every key the append writes: the
      // retransmit carries identical fields, so the keys reconstruct
      // exactly. All present -> pure retransmit, nothing to do.
      if (table_->Contains(MessageKey(reserved)) &&
          table_->Contains(IndexKey(stored.attribute, reserved)) &&
          table_->Contains(TimeIndexKey(stored.attribute,
                                        stored.timestamp_micros, reserved))) {
        dedup_hits_.fetch_add(1, std::memory_order_relaxed);
        if (dedup_counter_ != nullptr) dedup_counter_->Increment();
        return AppendOutcome{reserved, true};
      }
      // A torn earlier attempt: resume the reserved id and rewrite the
      // same keys (idempotent), so the partial records already visible
      // complete instead of duplicating under a fresh id.
      stored.id = reserved;
    }
  }
  if (stored.id == 0) {
    stored.id = next_id_.fetch_add(1, std::memory_order_relaxed);
    // Reserve before writing anything else: if any later write fails
    // the retry finds the marker and resumes this id.
    util::Writer w;
    w.PutU64(stored.id);
    MWS_RETURN_IF_ERROR(table_->Put(dedup_key, w.Take()));
  }
  MWS_RETURN_IF_ERROR(WriteRecords(stored));
  if (appends_counter_ != nullptr) appends_counter_->Increment();
  return AppendOutcome{stored.id, false};
}

util::Result<std::vector<MessageDb::AppendOutcome>>
MessageDb::AppendDedupedBatch(const std::vector<StoredMessage>& messages) {
  std::vector<AppendOutcome> outcomes(messages.size());
  // Classification pass: decide every message's id before writing
  // anything, mirroring what sequential AppendDeduped calls would do.
  // `batch_assigned` maps dedup keys claimed earlier in this batch so an
  // intra-batch retransmit resolves to the first occurrence's id — by the
  // time a sequential run reached it, the first copy's records would be
  // fully written and it would dedup.
  std::map<std::string, uint64_t> batch_assigned;
  struct Pending {
    StoredMessage stored;
  };
  std::vector<Pending> to_write;
  std::vector<std::pair<std::string, util::Bytes>> fresh_markers;
  size_t dedup_count = 0;

  for (size_t i = 0; i < messages.size(); ++i) {
    StoredMessage stored = messages[i];
    stored.id = 0;
    if (stored.device_id.empty() || stored.nonce.empty()) {
      // Non-dedupable message: plain Append semantics, no marker.
      stored.id = next_id_.fetch_add(1, std::memory_order_relaxed);
      outcomes[i] = AppendOutcome{stored.id, false};
      to_write.push_back(Pending{std::move(stored)});
      continue;
    }
    const std::string dedup_key = DedupKey(stored.device_id, stored.nonce);
    if (auto it = batch_assigned.find(dedup_key);
        it != batch_assigned.end()) {
      outcomes[i] = AppendOutcome{it->second, true};
      ++dedup_count;
      continue;
    }
    auto marker = table_->Get(dedup_key);
    uint64_t reserved = 0;
    if (marker.ok()) {
      util::Reader r(marker.value());
      uint64_t parsed = 0;
      if (r.GetU64(&parsed) && r.Done() && parsed > 0) reserved = parsed;
    }
    if (reserved != 0) {
      batch_assigned[dedup_key] = reserved;
      if (table_->Contains(MessageKey(reserved)) &&
          table_->Contains(IndexKey(stored.attribute, reserved)) &&
          table_->Contains(TimeIndexKey(stored.attribute,
                                        stored.timestamp_micros, reserved))) {
        outcomes[i] = AppendOutcome{reserved, true};
        ++dedup_count;
        continue;
      }
      // Torn earlier attempt: resume the reserved id, rewrite its keys.
      stored.id = reserved;
    } else {
      stored.id = next_id_.fetch_add(1, std::memory_order_relaxed);
      batch_assigned[dedup_key] = stored.id;
      util::Writer w;
      w.PutU64(stored.id);
      fresh_markers.emplace_back(dedup_key, w.Take());
    }
    outcomes[i] = AppendOutcome{stored.id, false};
    to_write.push_back(Pending{std::move(stored)});
  }

  // Phase 1: reserve every fresh id before any message record exists —
  // the batch-wide marker-first invariant. A crash after this point is
  // recovered by a retry resuming the reserved ids.
  if (!fresh_markers.empty()) {
    MWS_RETURN_IF_ERROR(table_->PutBatch(fresh_markers));
  }
  // Phase 2: all message + secondary-index records, then one counter
  // bump past the batch's highest id.
  std::vector<std::pair<std::string, util::Bytes>> records;
  records.reserve(to_write.size() * 3);
  uint64_t max_id = 0;
  for (const Pending& p : to_write) {
    records.emplace_back(MessageKey(p.stored.id), p.stored.Encode());
    records.emplace_back(IndexKey(p.stored.attribute, p.stored.id),
                         util::Bytes{});
    records.emplace_back(TimeIndexKey(p.stored.attribute,
                                      p.stored.timestamp_micros, p.stored.id),
                         util::Bytes{});
    max_id = std::max(max_id, p.stored.id);
  }
  if (!records.empty()) {
    MWS_RETURN_IF_ERROR(table_->PutBatch(records));
    MWS_RETURN_IF_ERROR(PersistCounter(max_id + 1));
  }
  if (dedup_count > 0) {
    dedup_hits_.fetch_add(dedup_count, std::memory_order_relaxed);
    if (dedup_counter_ != nullptr) dedup_counter_->Increment(dedup_count);
  }
  if (appends_counter_ != nullptr && !to_write.empty()) {
    appends_counter_->Increment(to_write.size());
  }
  return outcomes;
}

util::Result<StoredMessage> MessageDb::Get(uint64_t id) const {
  MWS_ASSIGN_OR_RETURN(util::Bytes raw, table_->Get(MessageKey(id)));
  return StoredMessage::Decode(raw);
}

util::Result<std::vector<StoredMessage>> MessageDb::FindByAttribute(
    const std::string& attribute) const {
  return FindByAttributeAfter(attribute, 0);
}

std::vector<uint64_t> MessageDb::IdsByAttributeAfter(
    const std::string& attribute, uint64_t after_id) const {
  std::vector<uint64_t> out;
  const std::string prefix = IndexPrefix(attribute);
  for (const std::string& key : table_->ScanKeys(prefix)) {
    // Key shape: "x/<attribute>/<016x id>"; parse the id in place.
    uint64_t id = std::strtoull(key.c_str() + prefix.size(), nullptr, 16);
    if (id <= after_id) continue;
    out.push_back(id);
  }
  return out;
}

std::vector<uint64_t> MessageDb::IdsByAttributeInTimeRange(
    const std::string& attribute, int64_t from_micros,
    int64_t to_micros) const {
  std::vector<uint64_t> out;
  if (from_micros >= to_micros) return out;
  const std::string lower = TimeIndexBound(attribute, from_micros);
  const std::string upper = TimeIndexBound(attribute, to_micros);
  for (const std::string& key : table_->ScanKeys("t/" + attribute + "/")) {
    // Keys sort by timestamp; stop once past the upper bound.
    if (key < lower) continue;
    if (key >= upper) break;
    uint64_t id = std::strtoull(key.c_str() + key.rfind('/') + 1, nullptr, 16);
    out.push_back(id);
  }
  return out;
}

util::Result<std::vector<StoredMessage>> MessageDb::FindByAttributeAfter(
    const std::string& attribute, uint64_t after_id) const {
  std::vector<StoredMessage> out;
  for (uint64_t id : IdsByAttributeAfter(attribute, after_id)) {
    MWS_ASSIGN_OR_RETURN(StoredMessage m, Get(id));
    out.push_back(std::move(m));
  }
  return out;
}

util::Result<std::vector<StoredMessage>> MessageDb::FindByAttributeInTimeRange(
    const std::string& attribute, int64_t from_micros,
    int64_t to_micros) const {
  std::vector<StoredMessage> out;
  for (uint64_t id :
       IdsByAttributeInTimeRange(attribute, from_micros, to_micros)) {
    MWS_ASSIGN_OR_RETURN(StoredMessage m, Get(id));
    out.push_back(std::move(m));
  }
  return out;
}

util::Result<std::vector<StoredMessage>> MessageDb::FindByAttributes(
    const std::vector<std::string>& attributes) const {
  std::set<uint64_t> seen;
  std::vector<StoredMessage> out;
  for (const std::string& attribute : attributes) {
    MWS_ASSIGN_OR_RETURN(std::vector<StoredMessage> batch,
                         FindByAttribute(attribute));
    for (auto& m : batch) {
      if (seen.insert(m.id).second) out.push_back(std::move(m));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const StoredMessage& a, const StoredMessage& b) {
              return a.id < b.id;
            });
  return out;
}

size_t MessageDb::Count() const { return table_->CountPrefix("m/"); }

util::Result<size_t> MessageDb::PruneThrough(uint64_t max_id) {
  size_t pruned = 0;
  for (const std::string& key : table_->ScanKeys("m/")) {
    // Key shape: "m/<016x id>".
    uint64_t id = std::strtoull(key.c_str() + 2, nullptr, 16);
    if (id == 0 || id > max_id) continue;
    auto message = Get(id);
    if (!message.ok()) continue;  // racing prune; indexes go with theirs
    const StoredMessage& m = message.value();
    // Indexes and marker first, message record last: a crash mid-prune
    // leaves at worst dangling index keys pointing at a still-present
    // message (retrieval stays correct); the next prune pass finishes.
    MWS_RETURN_IF_ERROR(table_->Delete(IndexKey(m.attribute, id)));
    MWS_RETURN_IF_ERROR(table_->Delete(
        TimeIndexKey(m.attribute, m.timestamp_micros, id)));
    if (!m.device_id.empty() && !m.nonce.empty()) {
      MWS_RETURN_IF_ERROR(table_->Delete(DedupKey(m.device_id, m.nonce)));
    }
    MWS_RETURN_IF_ERROR(table_->Delete(MessageKey(id)));
    ++pruned;
  }
  if (pruned > 0 && pruned_counter_ != nullptr) {
    pruned_counter_->Increment(pruned);
  }
  return pruned;
}

std::vector<std::string> MessageDb::DistinctAttributes() const {
  std::vector<std::string> out;
  for (const std::string& key : table_->ScanKeys("x/")) {
    // Key shape: "x/<attribute>/<016x id>"; attributes contain no '/'.
    size_t slash = key.rfind('/');
    std::string attribute = key.substr(2, slash - 2);
    if (out.empty() || out.back() != attribute) {
      out.push_back(std::move(attribute));
    }
  }
  return out;
}

}  // namespace mws::store
