#ifndef MWSIBE_STORE_APPEND_FILE_H_
#define MWSIBE_STORE_APPEND_FILE_H_

#include <fstream>
#include <memory>
#include <string>

#include "src/util/bytes.h"
#include "src/util/fault.h"
#include "src/util/result.h"

namespace mws::store {

/// A small append-only file: the storage primitive under the device
/// outbox segments (and the shape the KvStore WAL will migrate to).
/// Append-only means every durable state is a byte prefix of every later
/// state, which is what makes the torn-tail-truncation recovery
/// discipline (KvStore WAL, client::Outbox) sound.
///
/// An optional shared util::FaultInjector is consulted once per Append
/// with the tag "file.append/<path>":
///
///   kError / kConnectionDrop — fail without writing anything,
///   kDiskFull                — fail without writing (ENOSPC shape;
///                              counted separately by callers),
///   kTornWrite               — write a *prefix* of the record, then
///                              report failure: the on-disk crash shape
///                              a kill-at-any-byte leaves behind, which
///                              recovery must truncate,
///   kDelay                   — write normally (delays are a transport
///                              concern; a file append has no one to
///                              keep waiting deterministically).
///
/// Not thread-safe: an AppendFile belongs to one writer (the outbox
/// serializes appends behind its own mutex).
class AppendFile {
 public:
  struct Options {
    std::string path;
    /// Optional shared fault source; must outlive the file.
    util::FaultInjector* injector = nullptr;
  };

  /// Opens `path` for appending, creating it if absent. size() reflects
  /// the existing content.
  static util::Result<std::unique_ptr<AppendFile>> Open(
      const Options& options);

  /// Appends `data` and flushes it. On success the bytes are part of the
  /// durable prefix; on failure the file holds at most a prefix of
  /// `data` beyond the previous durable state (torn tail).
  util::Status Append(const util::Bytes& data);

  util::Status Flush();

  /// Bytes successfully appended (existing content + clean appends).
  /// A torn append's partial bytes are NOT counted: size() is the
  /// durable prefix a recovery scan should find intact.
  size_t size() const { return size_; }
  const std::string& path() const { return options_.path; }

  // --- Recovery helpers (plain path-level operations) ---
  /// Whole-file read; missing file yields kNotFound.
  static util::Result<util::Bytes> ReadAll(const std::string& path);
  /// Truncates `path` to `size` bytes (drops a torn tail).
  static util::Status TruncateTo(const std::string& path, size_t size);

 private:
  explicit AppendFile(Options options) : options_(std::move(options)) {}

  Options options_;
  std::ofstream out_;
  size_t size_ = 0;
};

}  // namespace mws::store

#endif  // MWSIBE_STORE_APPEND_FILE_H_
